(* Command-line front end for the PROSPECTOR library.

   Subcommands:
     topology    -- generate a network and print its spanning tree
     plan        -- build a query plan with a chosen planner and print it
     query       -- plan, then execute on a fresh epoch
     experiment  -- regenerate one of the paper's figures (see bench/) *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let nodes_arg =
  Arg.(value & opt int 80 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Network size.")

let k_arg =
  Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"Query size (top k).")

let samples_arg =
  Arg.(
    value & opt int 20
    & info [ "samples" ] ~docv:"N" ~doc:"Number of training samples.")

let budget_arg =
  Arg.(
    value
    & opt float 0.25
    & info [ "budget" ] ~docv:"FRAC"
        ~doc:"Energy budget as a fraction of the NAIVE-k cost.")

let planner_arg =
  let planners =
    [ ("greedy", `Greedy); ("lp-lf", `Lp_no_lf); ("lp+lf", `Lp_lf) ]
  in
  Arg.(
    value
    & opt (enum planners) `Lp_lf
    & info [ "planner" ] ~docv:"PLANNER"
        ~doc:"Planner: $(b,greedy), $(b,lp-lf) or $(b,lp+lf).")

type env = {
  topo : Sensor.Topology.t;
  cost : Sensor.Cost.t;
  mica : Sensor.Mica2.t;
  field : Sampling.Field.t;
  samples : Sampling.Sample_set.t;
  rng : Rng.t;
  budget_mj : float;
}

let build_env seed n k n_samples budget_fraction =
  let rng = Rng.create seed in
  let layout = Sensor.Placement.uniform rng ~n ~width:200. ~height:200. () in
  let range = Sensor.Topology.min_connecting_range layout *. 1.1 in
  let topo = Sensor.Topology.build layout ~range in
  let mica = Sensor.Mica2.default in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let field =
    Sampling.Field.random_gaussian rng ~n ~mean_lo:20. ~mean_hi:26.
      ~sigma_lo:1.5 ~sigma_hi:5.
  in
  let samples = Sampling.Sample_set.draw rng field ~k ~count:n_samples in
  let naive =
    (Prospector.Naive.naive_k topo cost ~k
       ~readings:(field.Sampling.Field.draw rng))
      .Prospector.Naive.collection_mj
  in
  { topo; cost; mica; field; samples; rng; budget_mj = budget_fraction *. naive }

let make_plan env planner k =
  match planner with
  | `Greedy ->
      Prospector.Greedy.plan env.topo env.cost env.samples ~budget:env.budget_mj
  | `Lp_no_lf ->
      (Prospector.Lp_no_lf.plan env.topo env.cost env.samples
         ~budget:env.budget_mj)
        .Prospector.Lp_no_lf.plan
  | `Lp_lf ->
      (Prospector.Lp_lf.plan env.topo env.cost env.samples ~budget:env.budget_mj
         ~k)
        .Prospector.Lp_lf.plan

let topology_cmd =
  let run seed n =
    let rng = Rng.create seed in
    let layout = Sensor.Placement.uniform rng ~n ~width:200. ~height:200. () in
    let range = Sensor.Topology.min_connecting_range layout *. 1.1 in
    let topo = Sensor.Topology.build layout ~range in
    Format.printf "%a@.radio range: %.1f m@." Sensor.Topology.pp topo range;
    let annotate i =
      Printf.sprintf "(depth %d, subtree %d)" topo.Sensor.Topology.depth.(i)
        topo.Sensor.Topology.subtree_size.(i)
    in
    Format.printf "%a" (Sensor.Render.pp_tree ~annotate) topo
  in
  Cmd.v (Cmd.info "topology" ~doc:"Generate a network and print its tree.")
    Term.(const run $ seed_arg $ nodes_arg)

let plan_cmd =
  let run seed n k n_samples budget planner =
    let env = build_env seed n k n_samples budget in
    let plan = make_plan env planner k in
    Format.printf "budget: %.1f mJ@." env.budget_mj;
    let annotate i =
      match Prospector.Plan.bandwidth plan i with
      | 0 when i <> env.topo.Sensor.Topology.root -> ""
      | 0 -> "[root]"
      | b -> Printf.sprintf "[bw %d]" b
    in
    Format.printf "%a" (Sensor.Render.pp_tree ~annotate) env.topo;
    Format.printf "static collection cost: %.1f mJ, trigger: %.1f mJ@."
      (Prospector.Plan.expected_collection_mj env.topo env.cost plan)
      (Prospector.Plan.trigger_mj env.topo env.mica plan)
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Build a top-k query plan and print it.")
    Term.(
      const run $ seed_arg $ nodes_arg $ k_arg $ samples_arg $ budget_arg
      $ planner_arg)

let query_cmd =
  let run seed n k n_samples budget planner =
    let env = build_env seed n k n_samples budget in
    let plan = make_plan env planner k in
    let readings = env.field.Sampling.Field.draw env.rng in
    let o = Prospector.Exec.collect env.topo env.cost plan ~k ~readings in
    Format.printf "answer:@.";
    List.iter
      (fun (i, v) -> Format.printf "  node %3d  %8.2f@." i v)
      o.Prospector.Exec.returned;
    Format.printf "accuracy %.0f%%, energy %.1f mJ, %d messages@."
      (100. *. Prospector.Exec.accuracy ~k ~readings o.Prospector.Exec.returned)
      o.Prospector.Exec.collection_mj o.Prospector.Exec.messages
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Plan and execute a top-k query on a fresh epoch.")
    Term.(
      const run $ seed_arg $ nodes_arg $ k_arg $ samples_arg $ budget_arg
      $ planner_arg)

let exact_cmd =
  let run seed n k n_samples budget =
    let env = build_env seed n k n_samples budget in
    let min_cost =
      Prospector.Plan.expected_collection_mj env.topo env.cost
        (Prospector.Proof_exec.min_bandwidth_plan env.topo)
    in
    let phase1_budget = Float.max env.budget_mj (1.2 *. min_cost) in
    let proof =
      Prospector.Lp_proof.plan env.topo env.cost env.samples
        ~budget:phase1_budget ~k
    in
    let readings = env.field.Sampling.Field.draw env.rng in
    let o =
      Prospector.Exact.run env.topo env.cost env.mica
        proof.Prospector.Lp_proof.plan ~k ~readings
    in
    Format.printf "exact top %d:@." k;
    List.iter
      (fun (i, v) -> Format.printf "  node %3d  %8.2f@." i v)
      o.Prospector.Exact.answer;
    Format.printf
      "phase 1: %.1f mJ (%d/%d proven);  mop-up: %.1f mJ;  total %.1f mJ@."
      o.Prospector.Exact.phase1_mj o.Prospector.Exact.proven_after_phase1 k
      o.Prospector.Exact.phase2_mj
      (Prospector.Exact.total_mj o);
    let naive =
      Prospector.Naive.naive_k env.topo env.cost ~k ~readings
    in
    Format.printf "NAIVE-k would spend %.1f mJ@."
      naive.Prospector.Naive.collection_mj
  in
  Cmd.v
    (Cmd.info "exact"
       ~doc:"Run the two-phase exact top-k query (proof plan + mop-up).")
    Term.(
      const run $ seed_arg $ nodes_arg $ k_arg $ samples_arg $ budget_arg)

let experiment_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            "Experiment name: fig3 fig4 fig5 fig7 fig8 fig9 samples failures drift rounding generalized lifetime modelgen.")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Small instances.")
  in
  let run name quick seed =
    let experiments =
      [
        ("fig3", Experiments.Fig3.run);
        ("fig4", Experiments.Fig4.run);
        ("fig5", Experiments.Fig5.run);
        ("fig7", Experiments.Fig7.run);
        ("fig8", Experiments.Fig8.run);
        ("fig9", Experiments.Fig9.run);
        ("samples", Experiments.Sample_size.run);
        ("failures", Experiments.Ablation_failures.run);
        ("drift", Experiments.Ablation_drift.run);
        ("rounding", Experiments.Ablation_rounding.run);
        ("generalized", Experiments.Generalized.run);
        ("lifetime", Experiments.Lifetime_exp.run);
        ("modelgen", Experiments.Model_sampling.run);
      ]
    in
    match List.assoc_opt name experiments with
    | Some runner ->
        Experiments.Series.print_all Format.std_formatter
          (runner ~quick ~seed ());
        `Ok ()
    | None -> `Error (false, "unknown experiment " ^ name)
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate one of the paper's figures.")
    Term.(ret (const run $ name_arg $ quick_arg $ seed_arg))

let () =
  let doc = "Sampling-based top-k query planning for sensor networks" in
  let info = Cmd.info "prospector" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ topology_cmd; plan_cmd; query_cmd; exact_cmd; experiment_cmd ]))

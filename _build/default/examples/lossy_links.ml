(* Coping with transient link failures (Section 4.4): fold the expected
   re-routing premium of flaky links into the planner's cost model, then
   watch both plans run on the discrete-event simulator with failures
   injected.

     dune exec examples/lossy_links.exe *)

let () =
  let rng = Rng.create 23 in
  let n = 70 in
  let k = 6 in
  let layout = Sensor.Placement.uniform rng ~n ~width:180. ~height:180. () in
  let range = Sensor.Topology.min_connecting_range layout *. 1.1 in
  let topo = Sensor.Topology.build layout ~range in
  let mica = Sensor.Mica2.default in
  let cost = Sensor.Cost.of_mica2 topo mica in

  (* A third of the deployment suffers from flaky links. *)
  let failure = Sensor.Failure.uniform rng ~n ~max_prob:0.4 ~max_factor:3. in
  let flaky =
    Array.to_list failure.Sensor.Failure.fail_prob
    |> List.filteri (fun i _ -> i <> topo.Sensor.Topology.root)
    |> List.filter (fun p -> p > 0.25)
    |> List.length
  in
  Format.printf "network: %d motes, %d edges with failure probability > 0.25@."
    n flaky;

  let field =
    Sampling.Field.random_gaussian rng ~n ~mean_lo:18. ~mean_hi:26.
      ~sigma_lo:1.5 ~sigma_hi:4.
  in
  let samples = Sampling.Sample_set.draw rng field ~k ~count:20 in
  let budget =
    0.3
    *. (Prospector.Naive.naive_k topo cost ~k
          ~readings:(field.Sampling.Field.draw rng))
         .Prospector.Naive.collection_mj
  in

  let oblivious =
    (Prospector.Lp_lf.plan topo cost samples ~budget ~k).Prospector.Lp_lf.plan
  in
  let aware_cost = Sensor.Cost.with_failures cost failure in
  let aware =
    (Prospector.Lp_lf.plan topo aware_cost samples ~budget ~k)
      .Prospector.Lp_lf.plan
  in

  let simulate name plan seed =
    let sim_rng = Rng.create seed in
    let epochs = Array.init 25 (fun _ -> field.Sampling.Field.draw rng) in
    let mj = ref 0. and acc = ref 0. and reroutes = ref 0 in
    Array.iter
      (fun readings ->
        let r =
          Prospector.Simnet_exec.collect topo mica ~failure:(failure, sim_rng)
            plan ~k ~readings
        in
        mj := !mj +. r.Prospector.Simnet_exec.total_mj;
        reroutes := !reroutes + r.Prospector.Simnet_exec.reroutes;
        acc :=
          !acc
          +. Prospector.Exec.accuracy ~k ~readings
               r.Prospector.Simnet_exec.returned)
      epochs;
    let d = float_of_int (Array.length epochs) in
    Format.printf
      "%-24s %6.1f mJ/run   %5.1f%% accuracy   %.1f re-routes/run@." name
      (!mj /. d)
      (100. *. !acc /. d)
      (float_of_int !reroutes /. d)
  in
  Format.printf "@.simulated with transient failures injected:@.";
  simulate "failure-oblivious plan" oblivious 1001;
  simulate "failure-aware plan" aware 1002;
  Format.printf
    "@.The failure-aware plan routes its bandwidth around flaky edges, so@.\
     it pays fewer re-routing premiums for the same accuracy.@."

(* Beyond top-k: the same samples + LP machinery planning other query
   classes (the generalization remark of the paper's Section 3).

   A building manager wants two things from the lab network each epoch:
   - an alarm list: every mote reading above a comfort threshold;
   - the building median temperature, to drive the HVAC.

     dune exec examples/building_monitor.exe *)

let () =
  let rng = Rng.create 31 in
  let lab = Sampling.Intel_lab.generate rng ~epochs:120 () in
  let layout = lab.Sampling.Intel_lab.layout in
  let range = Sensor.Topology.min_connecting_range layout +. 1e-9 in
  let topo = Sensor.Topology.build layout ~range in
  let mica = Sensor.Mica2.default in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let training = Sampling.Intel_lab.training_epochs lab ~count:80 in
  let live = Sampling.Intel_lab.test_epochs lab ~from_:80 in
  let threshold = 23.5 in
  Format.printf "building: %d motes; alarms above %.1f C@.@."
    (Sensor.Placement.n layout) threshold;

  (* One plan per query class, from the same samples. *)
  let alarms = Sampling.Answers.selection ~threshold training in
  let median = Sampling.Answers.quantile ~phi:0.5 ~window:2 training in
  let full_mj =
    (Prospector.Naive.naive_k topo cost ~k:54 ~readings:training.(0))
      .Prospector.Naive.collection_mj
  in
  let budget = 0.3 *. full_mj in
  let alarm_plan = Prospector.Subset_planner.plan topo cost alarms ~budget in
  let median_plan = Prospector.Subset_planner.plan topo cost median ~budget in
  Format.printf
    "budget %.1f mJ per query (full collection costs %.1f mJ)@.@." budget
    full_mj;

  let alarm_recall = ref 0. and alarm_mj = ref 0. in
  let median_err = ref 0. and median_mj = ref 0. in
  Array.iter
    (fun readings ->
      let a =
        Prospector.Subset_exec.collect topo cost
          ~chosen:alarm_plan.Prospector.Subset_planner.chosen ~readings
      in
      let truth = ref [] in
      Array.iteri (fun i v -> if v > threshold then truth := i :: !truth) readings;
      alarm_recall :=
        !alarm_recall
        +. Prospector.Subset_exec.recall
             ~truth:(Array.of_list !truth)
             a.Prospector.Subset_exec.received;
      alarm_mj := !alarm_mj +. a.Prospector.Subset_exec.collection_mj;
      let m =
        Prospector.Subset_exec.collect topo cost
          ~chosen:median_plan.Prospector.Subset_planner.chosen ~readings
      in
      let true_median = Sampling.Stats.percentile readings 0.5 in
      (match
         Prospector.Subset_exec.quantile_estimate ~phi:0.5
           m.Prospector.Subset_exec.received
       with
      | Some est -> median_err := !median_err +. Float.abs (est -. true_median)
      | None -> ());
      median_mj := !median_mj +. m.Prospector.Subset_exec.collection_mj)
    live;
  let d = float_of_int (Array.length live) in
  Format.printf "alarm query:  %.1f%% of hot motes caught at %.1f mJ/epoch@."
    (100. *. !alarm_recall /. d)
    (!alarm_mj /. d);
  Format.printf "median query: %.2f C mean error at %.1f mJ/epoch@."
    (!median_err /. d) (!median_mj /. d);
  Format.printf
    "@.Both plans were optimized by the same LP over the same samples —@.\
     only the Boolean answer matrix changed.@."

(* Quickstart: plan and run an approximate top-k query in five steps.

     dune exec examples/quickstart.exe

   1. Build a sensor network (random placement + min-hop spanning tree).
   2. Gather samples of past readings (the planner's only knowledge).
   3. Ask PROSPECTOR-LP+LF for a plan under an energy budget.
   4. Execute the plan on a fresh epoch and inspect the answer.
   5. Compare against the exact NAIVE-k baseline. *)

let () =
  let rng = Rng.create 42 in
  let k = 5 in

  (* 1. The network: 60 motes in a 150 x 150 m field, root at the center. *)
  let layout = Sensor.Placement.uniform rng ~n:60 ~width:150. ~height:150. () in
  let range = Sensor.Topology.min_connecting_range layout *. 1.15 in
  let topo = Sensor.Topology.build layout ~range in
  let mica = Sensor.Mica2.default in
  let cost = Sensor.Cost.of_mica2 topo mica in
  Format.printf "network: %a@." Sensor.Topology.pp topo;

  (* 2. Past behaviour: 20 full-network samples from the (hidden) field. *)
  let field =
    Sampling.Field.random_gaussian rng ~n:60 ~mean_lo:18. ~mean_hi:26.
      ~sigma_lo:1. ~sigma_hi:4.
  in
  let samples = Sampling.Sample_set.draw rng field ~k ~count:20 in

  (* 3. Plan under a budget: a quarter of what NAIVE-k would burn. *)
  let naive_cost =
    (Prospector.Naive.naive_k topo cost ~k ~readings:(field.Sampling.Field.draw rng))
      .Prospector.Naive.collection_mj
  in
  let budget = 0.25 *. naive_cost in
  let { Prospector.Lp_lf.plan; lp_objective; _ } =
    Prospector.Lp_lf.plan topo cost samples ~budget ~k
  in
  Format.printf "budget %.1f mJ (NAIVE-k spends %.1f); LP expects %.1f of %d ones covered@."
    budget naive_cost lp_objective
    (Array.fold_left ( + ) 0 samples.Sampling.Sample_set.colsum);
  Format.printf "%a@." Prospector.Plan.pp plan;

  (* 4. Execute on a fresh epoch. *)
  let readings = field.Sampling.Field.draw rng in
  let outcome = Prospector.Exec.collect topo cost plan ~k ~readings in
  Format.printf "@.answer (node, value):@.";
  List.iter
    (fun (i, v) -> Format.printf "  node %2d  %.2f@." i v)
    outcome.Prospector.Exec.returned;
  Format.printf "accuracy: %.0f%% of the true top %d, energy %.1f mJ, %d messages@."
    (100. *. Prospector.Exec.accuracy ~k ~readings outcome.Prospector.Exec.returned)
    k outcome.Prospector.Exec.collection_mj outcome.Prospector.Exec.messages;

  (* 5. The exact baseline for contrast. *)
  let naive = Prospector.Naive.naive_k topo cost ~k ~readings in
  Format.printf "NAIVE-k: 100%% accuracy, %.1f mJ, %d messages@."
    naive.Prospector.Naive.collection_mj naive.Prospector.Naive.messages

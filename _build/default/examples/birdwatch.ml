(* The paper's motivating scenario (Section 1): ornithologists place
   instrumented bird feeders around a forest and periodically ask for the
   k busiest feeders.  Territorial birds make feeder popularity negatively
   correlated inside each patch of forest — many feeders look promising,
   few can win at once — which is exactly the workload where local
   filtering (LP+LF) beats shipping chosen readings to the root (LP-LF).

     dune exec examples/birdwatch.exe *)

let () =
  let rng = Rng.create 7 in
  let k = 8 in
  let n_zones = 6 in
  (* Six feeding areas of 12 feeders each around the forest edge, 70
     scattered feeders elsewhere, and the field station in the middle. *)
  let layout =
    Sensor.Placement.zones rng ~n_zones ~per_zone:12 ~background:70
      ~width:300. ~height:300. ()
  in
  let range = Sensor.Topology.min_connecting_range layout *. 1.05 in
  let topo = Sensor.Topology.build layout ~range in
  let mica = Sensor.Mica2.default in
  let cost = Sensor.Cost.of_mica2 topo mica in
  Format.printf
    "forest: %d feeders, %d feeding areas, station at the center, tree height %d@."
    (Sensor.Placement.n layout) n_zones (Sensor.Topology.height topo);

  (* Feeders inside a feeding area attract birds in bursts: each has a 40%%
     chance of beating the background level on any given day. *)
  let field =
    Sampling.Field.contention_zones ~zone:layout.Sensor.Placement.zone
      ~background_mean:25. ~background_sigma:0.6 ~exceed_prob:0.45 ~mean_gap:2.
  in
  let samples = Sampling.Sample_set.draw rng field ~k ~count:25 in

  let today = field.Sampling.Field.draw rng in
  let naive = Prospector.Naive.naive_k topo cost ~k ~readings:today in
  let budget = 0.22 *. naive.Prospector.Naive.collection_mj in
  Format.printf "daily energy budget: %.1f mJ (NAIVE-k would need %.1f)@.@."
    budget naive.Prospector.Naive.collection_mj;

  let evaluate name plan =
    let days = Array.init 15 (fun _ -> field.Sampling.Field.draw rng) in
    let acc = ref 0. and mj = ref 0. in
    Array.iter
      (fun readings ->
        let o = Prospector.Exec.collect topo cost plan ~k ~readings in
        acc :=
          !acc
          +. Prospector.Exec.accuracy ~k ~readings o.Prospector.Exec.returned;
        mj := !mj +. o.Prospector.Exec.collection_mj)
      days;
    let n = float_of_int (Array.length days) in
    Format.printf "%-28s %5.1f%% of busiest feeders found, %6.1f mJ/day@."
      name
      (100. *. !acc /. n)
      (!mj /. n)
  in
  let lp_lf = Prospector.Lp_lf.plan topo cost samples ~budget ~k in
  let lp_no_lf = Prospector.Lp_no_lf.plan topo cost samples ~budget in
  let greedy = Prospector.Greedy.plan topo cost samples ~budget in
  evaluate "LP+LF (local filtering)" lp_lf.Prospector.Lp_lf.plan;
  evaluate "LP-LF (ship to station)" lp_no_lf.Prospector.Lp_no_lf.plan;
  evaluate "GREEDY" greedy;
  Format.printf
    "@.Local filtering visits whole feeding areas but forwards only each@.\
     area's winners, so the same budget covers more areas.@."

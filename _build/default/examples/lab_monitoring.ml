(* Lab monitoring with guarantees: proof-carrying queries, the two-phase
   exact algorithm, and the adaptive re-sampling policy of Section 4.4 on
   an Intel-lab-style temperature deployment.

     dune exec examples/lab_monitoring.exe *)

let () =
  let rng = Rng.create 11 in
  let k = 6 in
  let lab = Sampling.Intel_lab.generate rng ~epochs:160 () in
  let layout = lab.Sampling.Intel_lab.layout in
  let range = Sensor.Topology.min_connecting_range layout +. 1e-9 in
  let topo = Sensor.Topology.build layout ~range in
  let mica = Sensor.Mica2.default in
  let cost = Sensor.Cost.of_mica2 topo mica in
  Format.printf "lab: %d motes, radio range %.1f m, tree height %d@."
    (Sensor.Placement.n layout) range (Sensor.Topology.height topo);
  Format.printf "(%d missing readings were interpolated)@.@."
    lab.Sampling.Intel_lab.missing_filled;

  (* Train on the first 60 epochs.  The proof LP grows with (nodes x tree
     height x samples), so plan from a 12-sample slice — the sample-size
     experiment shows accuracy saturates well before that. *)
  let samples =
    Sampling.Sample_set.of_values ~k
      (Sampling.Intel_lab.training_epochs lab ~count:12)
  in
  let min_proof_cost =
    Prospector.Plan.expected_collection_mj topo cost
      (Prospector.Proof_exec.min_bandwidth_plan topo)
  in
  let proof_plan =
    Prospector.Lp_proof.plan topo cost samples
      ~budget:(1.4 *. min_proof_cost) ~k
  in
  Format.printf
    "proof plan: expects %.1f of %d answer values proven per run@.@."
    proof_plan.Prospector.Lp_proof.lp_objective k;

  (* Stream the remaining epochs: run the exact two-phase query and feed
     the observed phase-1 quality into the re-sampling policy. *)
  let policy = Sampling.Window.Policy.create ~target_accuracy:0.8 () in
  let window = Sampling.Window.create ~capacity:60 in
  Array.iter
    (fun e -> Sampling.Window.add window e)
    (Sampling.Intel_lab.training_epochs lab ~count:60);
  let test = Sampling.Intel_lab.test_epochs lab ~from_:60 in
  let resamples = ref 0 and total1 = ref 0. and total2 = ref 0. in
  Array.iteri
    (fun i readings ->
      let o =
        Prospector.Exact.run topo cost mica proof_plan.Prospector.Lp_proof.plan
          ~k ~readings
      in
      assert (
        List.map fst o.Prospector.Exact.answer
        = List.map fst (Prospector.Exec.true_top_k ~k readings));
      total1 := !total1 +. o.Prospector.Exact.phase1_mj;
      total2 := !total2 +. o.Prospector.Exact.phase2_mj;
      let phase1_quality =
        float_of_int o.Prospector.Exact.proven_after_phase1 /. float_of_int k
      in
      Sampling.Window.Policy.observe_accuracy policy phase1_quality;
      if Sampling.Window.Policy.should_sample policy rng then begin
        incr resamples;
        Sampling.Window.add window readings
      end;
      if i < 5 then
        Format.printf
          "epoch %3d: exact top-%d delivered, %d/%d proven in phase 1, \
           mop-up %.1f mJ@."
          i k o.Prospector.Exact.proven_after_phase1 k
          o.Prospector.Exact.phase2_mj)
    test;
  let n = float_of_int (Array.length test) in
  Format.printf
    "@.%d epochs: every answer was the exact top %d (proof or mop-up).@."
    (Array.length test) k;
  Format.printf "mean phase-1 cost %.1f mJ, mean mop-up cost %.1f mJ@."
    (!total1 /. n) (!total2 /. n);
  Format.printf
    "re-sampling policy triggered %d full-network samples (rate now %.3f)@."
    !resamples
    (Sampling.Window.Policy.rate policy);
  let naive =
    Prospector.Naive.naive_k topo cost ~k ~readings:test.(0)
  in
  Format.printf "for reference, NAIVE-k spends %.1f mJ per epoch@."
    naive.Prospector.Naive.collection_mj

examples/building_monitor.ml: Array Float Format Prospector Rng Sampling Sensor

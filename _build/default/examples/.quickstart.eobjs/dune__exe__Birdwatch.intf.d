examples/birdwatch.mli:

examples/building_monitor.mli:

examples/birdwatch.ml: Array Format Prospector Rng Sampling Sensor

examples/lossy_links.ml: Array Format List Prospector Rng Sampling Sensor

examples/quickstart.mli:

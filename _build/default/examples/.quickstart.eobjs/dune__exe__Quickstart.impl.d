examples/quickstart.ml: Array Format List Prospector Rng Sampling Sensor

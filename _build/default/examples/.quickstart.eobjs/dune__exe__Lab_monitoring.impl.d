examples/lab_monitoring.ml: Array Format List Prospector Rng Sampling Sensor

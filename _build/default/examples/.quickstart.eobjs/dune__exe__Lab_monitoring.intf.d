examples/lab_monitoring.mli:

(** Deterministic pseudo-random number generation.

    A small, self-contained xoshiro256** generator seeded through
    splitmix64.  Every experiment in this repository threads an explicit
    generator, so all results are reproducible from a single integer seed.
    [split] derives statistically independent substreams, letting parallel
    experiment arms draw without interfering with each other. *)

type t

val create : int -> t
(** [create seed] builds a generator from an integer seed (any value,
    including 0, is fine; splitmix64 whitening is applied). *)

val copy : t -> t

val split : t -> t
(** Derive an independent substream; the parent generator advances. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n-1].  @raise Invalid_argument if [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform on [0, x). *)

val uniform : t -> lo:float -> hi:float -> float

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via the Box–Muller transform (the spare deviate is
    cached). *)

val exponential : t -> rate:float -> float

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element. @raise Invalid_argument on an empty array. *)

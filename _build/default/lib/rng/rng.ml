type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable spare : float option;  (* cached Box-Muller deviate *)
}

(* splitmix64, used to expand the seed into generator state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; spare = None }

let copy t = { t with spare = t.spare }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next *)
let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) in
  create (seed lxor 0x5851F42D)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for n far
     below 2^63, which holds for every use in this codebase. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int n))

let float t x =
  (* 53 high bits -> uniform in [0, 1) *)
  let u = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float u /. 9007199254740992. *. x

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  match t.spare with
  | Some z ->
      t.spare <- None;
      mu +. (sigma *. z)
  | None ->
      let rec draw () =
        let u1 = float t 1. in
        if u1 <= 1e-300 then draw () else u1
      in
      let u1 = draw () in
      let u2 = float t 1. in
      let r = sqrt (-2. *. log u1) in
      let theta = 2. *. Float.pi *. u2 in
      t.spare <- Some (r *. sin theta);
      mu +. (sigma *. r *. cos theta)

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let rec draw () =
    let u = float t 1. in
    if u <= 1e-300 then draw () else u
  in
  -.log (draw ()) /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

(** Synthetic stand-in for the Intel Berkeley Research Lab temperature
    trace used in Figure 9.

    The real 54-mote trace is not distributable with this repository, so we
    generate a trace with the properties the paper's experiment relies on:
    - 54 motes on a lab-floor footprint (a 6 x 9 grid here);
    - temperatures with a diurnal cycle, a fixed spatial gradient (a "warm
      corner"), per-mote offsets and AR(1) noise — so the hottest locations
      are highly predictable across epochs, which is exactly why local
      filtering buys nothing on this dataset (Figure 9's finding);
    - occasional missing readings, filled with the average of the previous
      and next epoch at the same mote, as the paper does.

    See DESIGN.md for the substitution rationale. *)

type t = {
  layout : Sensor.Placement.t;
  epochs : float array array;  (** [epochs.(t).(i)]: mote [i] at epoch [t] *)
  missing_filled : int;  (** how many readings were missing and interpolated *)
}

val generate :
  Rng.t ->
  ?rows:int ->
  ?cols:int ->
  ?spacing:float ->
  ?missing_prob:float ->
  epochs:int ->
  unit ->
  t
(** Defaults: [rows = 6], [cols = 9] (54 motes), [spacing = 4.] meters,
    [missing_prob = 0.03]. *)

val training_epochs : t -> count:int -> float array array
(** The first [count] epochs (used as planner samples). *)

val test_epochs : t -> from_:int -> float array array
(** Epochs from index [from_] on (used to measure plan accuracy). *)

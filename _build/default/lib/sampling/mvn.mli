(** Multivariate normal value fields.

    Section 3: "if a model of the joint distribution is already available,
    we can use it to generate random samples directly" — the model-driven
    literature's model of choice being the multivariate Gaussian.  This
    module samples exact joint draws via a Cholesky factorization, so the
    planners can be fed model-generated samples instead of (or alongside)
    historical ones, and supplies a spatially-correlated covariance built
    from an exponential kernel over node positions. *)

val cholesky : float array array -> float array array
(** Lower-triangular [l] with [l l^T] equal to the given symmetric
    positive-definite matrix.
    @raise Invalid_argument if the matrix is not square, not symmetric
    (tolerance 1e-9), or not positive definite. *)

val field : means:float array -> covariance:float array array -> Field.t
(** Draws are [mu + L z] with [z] i.i.d. standard normal.
    @raise Invalid_argument on dimension mismatch or a bad covariance. *)

val spatial :
  positions:Sensor.Placement.point array ->
  means:float array ->
  ?sill:float ->
  ?range:float ->
  ?nugget:float ->
  unit ->
  Field.t
(** Exponential-kernel covariance over the deployment geometry:
    [cov(i,j) = sill * exp (-dist(i,j) / range)], plus [nugget] added to
    the diagonal (sensor noise; also keeps the matrix positive definite).
    Defaults: [sill = 4.], [range = 30.], [nugget = 0.1]. *)

val empirical_covariance : float array array -> float array array
(** Unbiased sample covariance of rows (one row = one epoch); used for
    fitting models to history and in tests.
    @raise Invalid_argument with fewer than two rows. *)

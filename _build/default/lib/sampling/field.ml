type t = { n : int; draw : Rng.t -> float array; describe : string }

let independent_gaussian ~means ~sigmas =
  if Array.length means <> Array.length sigmas then
    invalid_arg "Field.independent_gaussian: length mismatch";
  Array.iter
    (fun s ->
      if s < 0. then invalid_arg "Field.independent_gaussian: negative sigma")
    sigmas;
  let n = Array.length means in
  {
    n;
    draw =
      (fun rng ->
        Array.init n (fun i -> Rng.gaussian rng ~mu:means.(i) ~sigma:sigmas.(i)));
    describe = Printf.sprintf "independent gaussians over %d nodes" n;
  }

let random_gaussian rng ~n ~mean_lo ~mean_hi ~sigma_lo ~sigma_hi =
  let means = Array.init n (fun _ -> Rng.uniform rng ~lo:mean_lo ~hi:mean_hi) in
  let sigmas =
    Array.init n (fun _ -> Rng.uniform rng ~lo:sigma_lo ~hi:sigma_hi)
  in
  independent_gaussian ~means ~sigmas

let contention_zones ~zone ~background_mean ~background_sigma ~exceed_prob
    ~mean_gap =
  if exceed_prob <= 0. || exceed_prob >= 0.5 then
    invalid_arg "Field.contention_zones: exceed_prob must be in (0, 0.5)";
  if mean_gap <= 0. then
    invalid_arg "Field.contention_zones: mean_gap must be positive";
  let n = Array.length zone in
  (* P(N(mu, sigma) > background_mean) = exceed_prob with
     mu = background_mean - mean_gap  =>  sigma = gap / z_{1-p}. *)
  let z = Stats.normal_quantile (1. -. exceed_prob) in
  let zone_sigma = mean_gap /. z in
  let zone_mean = background_mean -. mean_gap in
  let means =
    Array.map (fun z -> if z >= 0 then zone_mean else background_mean) zone
  in
  let sigmas =
    Array.map (fun z -> if z >= 0 then zone_sigma else background_sigma) zone
  in
  let f = independent_gaussian ~means ~sigmas in
  {
    f with
    describe =
      Printf.sprintf
        "contention zones (%d nodes, zone sigma %.2f, exceed prob %.2f)" n
        zone_sigma exceed_prob;
  }

let scaled t ~sigma_scale =
  if sigma_scale < 0. then invalid_arg "Field.scaled: negative scale";
  {
    t with
    draw =
      (fun rng ->
        let xs = t.draw rng in
        let m = Stats.mean xs in
        Array.map (fun x -> m +. ((x -. m) *. sigma_scale)) xs);
    describe = Printf.sprintf "%s, sigma x%.2f" t.describe sigma_scale;
  }

(** Value-field models: joint distributions of the readings of all nodes.

    A field knows how to draw one epoch of readings for the whole network.
    Fields stand in for the "joint probability distribution over all sensor
    readings" of the paper; the PROSPECTOR planners never reason about a
    field directly — they only ever see samples drawn from it (Section 3). *)

type t = {
  n : int;  (** number of nodes *)
  draw : Rng.t -> float array;  (** one epoch of readings *)
  describe : string;
}

val independent_gaussian : means:float array -> sigmas:float array -> t
(** Each node reads from its own independent normal distribution. *)

val random_gaussian :
  Rng.t ->
  n:int ->
  mean_lo:float ->
  mean_hi:float ->
  sigma_lo:float ->
  sigma_hi:float ->
  t
(** Independent Gaussians whose means and standard deviations are chosen
    uniformly from small ranges (the synthetic setup of Figure 3). *)

val contention_zones :
  zone:int array ->
  background_mean:float ->
  background_sigma:float ->
  exceed_prob:float ->
  mean_gap:float ->
  t
(** The negatively-correlated workload of Figures 5-7.  Background nodes
    ([zone.(i) = -1]) read close to [background_mean].  Zone nodes have a
    mean [mean_gap] below it but a variance high enough that each exceeds
    the background level with probability [exceed_prob] — so every zone is
    full of apparently equally promising nodes, only a few of which can
    rank in the top k.
    @raise Invalid_argument unless [0 < exceed_prob < 0.5]. *)

val scaled : t -> sigma_scale:float -> t
(** Rescale the field's dispersion around its per-draw mean — used by the
    variance sweep of Figure 4.  Implemented by drawing an epoch and moving
    each reading away from the epoch mean by the given factor. *)

type t = {
  capacity : int;
  mutable samples : float array list;  (* newest first *)
  mutable count : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Window.create: capacity must be positive";
  { capacity; samples = []; count = 0 }

let add t sample =
  t.samples <- Array.copy sample :: t.samples;
  t.count <- t.count + 1;
  if t.count > t.capacity then begin
    (* Drop the oldest (last) element. *)
    t.samples <- List.filteri (fun i _ -> i < t.capacity) t.samples;
    t.count <- t.capacity
  end

let length t = t.count

let capacity t = t.capacity

let to_sample_set t ~k =
  if t.count = 0 then invalid_arg "Window.to_sample_set: empty window";
  Sample_set.of_values ~k (Array.of_list (List.rev t.samples))

module Policy = struct
  type t = {
    base_rate : float;
    max_rate : float;
    target_accuracy : float;
    mutable current : float;
  }

  let create ?(base_rate = 0.02) ?(max_rate = 0.5) ?(target_accuracy = 0.9) ()
      =
    if base_rate <= 0. || base_rate > max_rate || max_rate > 1. then
      invalid_arg "Window.Policy.create: bad rates";
    { base_rate; max_rate; target_accuracy; current = base_rate }

  let observe_accuracy t acc =
    if acc < t.target_accuracy then
      (* Escalate proportionally to the shortfall. *)
      t.current <-
        Float.min t.max_rate
          (t.current *. (1. +. (2. *. (t.target_accuracy -. acc))))
    else
      (* Geometric decay back towards the base rate. *)
      t.current <- Float.max t.base_rate (t.current *. 0.8)

  let rate t = t.current

  let should_sample t rng = Rng.float rng 1. < t.current
end

let cholesky a =
  let n = Array.length a in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Mvn.cholesky: not square")
    a;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Float.abs (a.(i).(j) -. a.(j).(i)) > 1e-9 then
        invalid_arg "Mvn.cholesky: not symmetric"
    done
  done;
  let l = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let s = ref a.(i).(j) in
      for p = 0 to j - 1 do
        s := !s -. (l.(i).(p) *. l.(j).(p))
      done;
      if i = j then begin
        if !s <= 1e-12 then invalid_arg "Mvn.cholesky: not positive definite";
        l.(i).(i) <- sqrt !s
      end
      else l.(i).(j) <- !s /. l.(j).(j)
    done
  done;
  l

let field ~means ~covariance =
  let n = Array.length means in
  if Array.length covariance <> n then
    invalid_arg "Mvn.field: dimension mismatch";
  let l = cholesky covariance in
  {
    Field.n;
    draw =
      (fun rng ->
        let z = Array.init n (fun _ -> Rng.gaussian rng ~mu:0. ~sigma:1.) in
        Array.init n (fun i ->
            let acc = ref means.(i) in
            for p = 0 to i do
              acc := !acc +. (l.(i).(p) *. z.(p))
            done;
            !acc));
    describe = Printf.sprintf "multivariate normal over %d nodes" n;
  }

let spatial ~positions ~means ?(sill = 4.) ?(range = 30.) ?(nugget = 0.1) () =
  if sill <= 0. || range <= 0. || nugget < 0. then
    invalid_arg "Mvn.spatial: bad kernel parameters";
  let n = Array.length positions in
  if Array.length means <> n then invalid_arg "Mvn.spatial: means length";
  let covariance =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let d = Sensor.Placement.dist positions.(i) positions.(j) in
            (sill *. exp (-.d /. range)) +. if i = j then nugget else 0.))
  in
  field ~means ~covariance

let empirical_covariance rows =
  let m = Array.length rows in
  if m < 2 then invalid_arg "Mvn.empirical_covariance: need >= 2 samples";
  let n = Array.length rows.(0) in
  let mean = Array.make n 0. in
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Mvn.empirical_covariance: ragged rows";
      Array.iteri (fun i v -> mean.(i) <- mean.(i) +. v) row)
    rows;
  Array.iteri (fun i s -> mean.(i) <- s /. float_of_int m) mean;
  let cov = Array.make_matrix n n 0. in
  Array.iter
    (fun row ->
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          cov.(i).(j) <-
            cov.(i).(j) +. ((row.(i) -. mean.(i)) *. (row.(j) -. mean.(j)))
        done
      done)
    rows;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      cov.(i).(j) <- cov.(i).(j) /. float_of_int (m - 1)
    done
  done;
  cov

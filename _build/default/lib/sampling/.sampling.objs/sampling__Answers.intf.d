lib/sampling/answers.mli:

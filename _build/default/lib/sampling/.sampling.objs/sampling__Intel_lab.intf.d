lib/sampling/intel_lab.mli: Rng Sensor

lib/sampling/window.ml: Array Float List Rng Sample_set

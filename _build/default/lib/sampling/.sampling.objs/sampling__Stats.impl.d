lib/sampling/stats.ml: Array Float Int

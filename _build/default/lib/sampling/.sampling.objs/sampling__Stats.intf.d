lib/sampling/stats.mli:

lib/sampling/intel_lab.ml: Array Float Rng Sensor

lib/sampling/mvn.mli: Field Sensor

lib/sampling/field.ml: Array Printf Rng Stats

lib/sampling/sample_set.mli: Field Rng

lib/sampling/mvn.ml: Array Field Float Printf Rng Sensor

lib/sampling/window.mli: Rng Sample_set

lib/sampling/field.mli: Rng

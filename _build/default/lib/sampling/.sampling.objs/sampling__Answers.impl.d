lib/sampling/answers.ml: Array Float Hashtbl Int List Printf Sample_set

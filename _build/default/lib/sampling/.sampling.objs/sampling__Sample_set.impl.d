lib/sampling/sample_set.ml: Array Field Hashtbl Int List

(** Generalized answer models (Section 3).

    The sampling framework is not top-k-specific: "in the general case, set
    S(j,i) = 1 iff node i contributes to the answer in the j-th sample".
    This module builds that Boolean matrix for any answer function, with
    ready-made models for the query classes the paper names — selection and
    quantile — plus top-k itself and a two-tail (extremes) variant. *)

type t = private {
  n : int;  (** number of nodes *)
  values : float array array;  (** the underlying samples *)
  ones : int array array;  (** per sample: nodes contributing to the answer *)
  is_one : bool array array;
  colsum : int array;
  max_answer : int;  (** largest answer cardinality over the samples *)
  describe : string;
}

val make :
  name:string -> answer:(float array -> int array) -> float array array -> t
(** Build the matrix from an answer function.
    @raise Invalid_argument on empty or ragged samples. *)

val top_k : k:int -> float array array -> t

val selection : threshold:float -> float array array -> t
(** Nodes whose reading strictly exceeds [threshold]. *)

val quantile : phi:float -> window:int -> float array array -> t
(** The nodes holding the [phi]-quantile reading and its [window] nearest
    neighbours in rank order — retrieving a small rank window is how an
    approximate quantile tolerates slightly wrong plans.
    @raise Invalid_argument unless [0 < phi < 1] and [window >= 0]. *)

val extremes : k:int -> float array array -> t
(** Both tails: the k largest and k smallest readings (min/max monitoring). *)

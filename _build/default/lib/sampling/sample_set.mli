(** Sets of past-readings samples and their Boolean top-k matrix (Section 3).

    A sample is one epoch of readings for every node.  The planner-facing
    view is the Boolean matrix [S] with [S(j, i) = 1] iff node [i]'s reading
    ranks in the top k of sample [j]; this module precomputes the matrix,
    its column sums (all P ROSPECTOR G REEDY and LP-LF need), and the
    [ones(j)] sets used by the LP formulations. *)

type t = private {
  n : int;  (** number of nodes *)
  k : int;
  values : float array array;  (** [values.(j).(i)]: node [i] in sample [j] *)
  ones : int array array;
      (** [ones.(j)]: nodes in the top k of sample [j], highest first *)
  is_one : bool array array;  (** the Boolean matrix itself *)
  colsum : int array;  (** per node: number of samples whose top k contains it *)
}

val top_k_nodes : k:int -> float array -> int array
(** Indices of the [k] largest readings, highest first; ties broken towards
    the smaller node id (so results are deterministic). *)

val of_values : k:int -> float array array -> t
(** Build from explicit epochs.  @raise Invalid_argument on ragged rows,
    an empty sample list, or [k < 1]. *)

val draw : Rng.t -> Field.t -> k:int -> count:int -> t
(** Draw [count] fresh samples from a field — the "spend extra energy to
    collect the whole network at random timesteps" maintenance scheme. *)

val n_samples : t -> int

val restrict : t -> count:int -> t
(** Keep only the first [count] samples (for sample-size experiments). *)

val slice : t -> offset:int -> count:int -> t
(** Keep [count] samples starting at [offset] (sample-size experiments
    average over several disjoint slices to damp which-samples noise). *)

val accuracy : t -> k:int -> returned:int list -> sample:int -> float
(** Fraction of sample [sample]'s true top [k] present in [returned]. *)

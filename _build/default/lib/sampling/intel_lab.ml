type t = {
  layout : Sensor.Placement.t;
  epochs : float array array;
  missing_filled : int;
}

let generate rng ?(rows = 6) ?(cols = 9) ?(spacing = 4.) ?(missing_prob = 0.03)
    ~epochs () =
  if epochs < 3 then invalid_arg "Intel_lab.generate: need at least 3 epochs";
  let layout = Sensor.Placement.grid ~rows ~cols ~spacing in
  let n = Sensor.Placement.n layout in
  let width = Float.max layout.Sensor.Placement.width 1. in
  let height = Float.max layout.Sensor.Placement.height 1. in
  (* Fixed spatial structure: a warm south-east corner plus per-mote
     offsets.  The gradient dominates the noise, making top-k locations
     persistent across epochs. *)
  let gradient =
    Array.map
      (fun p ->
        3.5 *. (p.Sensor.Placement.x /. width) *. (p.Sensor.Placement.y /. height))
      layout.Sensor.Placement.positions
  in
  let offset = Array.init n (fun _ -> Rng.gaussian rng ~mu:0. ~sigma:0.5) in
  let noise = Array.make n 0. in
  let raw =
    Array.init epochs (fun t ->
        let diurnal =
          2.5 *. sin (2. *. Float.pi *. float_of_int t /. 288.)
        in
        Array.init n (fun i ->
            (* AR(1) noise per mote. *)
            noise.(i) <-
              (0.8 *. noise.(i)) +. Rng.gaussian rng ~mu:0. ~sigma:0.25;
            19.5 +. diurnal +. gradient.(i) +. offset.(i) +. noise.(i)))
  in
  (* Knock out readings at random, then fill with the prev/next average. *)
  let missing = Array.make_matrix epochs n false in
  for t = 0 to epochs - 1 do
    for i = 0 to n - 1 do
      if Rng.float rng 1. < missing_prob then missing.(t).(i) <- true
    done
  done;
  let filled = ref 0 in
  let value_at t i =
    (* Nearest non-missing epochs before and after, as the paper fills
       with the average of the prior and subsequent readings. *)
    let rec back t = if t < 0 then None else if missing.(t).(i) then back (t - 1) else Some raw.(t).(i) in
    let rec fwd t = if t >= epochs then None else if missing.(t).(i) then fwd (t + 1) else Some raw.(t).(i) in
    match (back (t - 1), fwd (t + 1)) with
    | Some a, Some b -> (a +. b) /. 2.
    | Some a, None -> a
    | None, Some b -> b
    | None, None -> raw.(t).(i)
  in
  let final =
    Array.init epochs (fun t ->
        Array.init n (fun i ->
            if missing.(t).(i) then begin
              incr filled;
              value_at t i
            end
            else raw.(t).(i)))
  in
  { layout; epochs = final; missing_filled = !filled }

let training_epochs t ~count =
  if count < 1 || count > Array.length t.epochs then
    invalid_arg "Intel_lab.training_epochs: bad count";
  Array.sub t.epochs 0 count

let test_epochs t ~from_ =
  if from_ < 0 || from_ >= Array.length t.epochs then
    invalid_arg "Intel_lab.test_epochs: bad index";
  Array.sub t.epochs from_ (Array.length t.epochs - from_)

(** Sliding window of recent samples with an adaptive re-sampling policy
    (Section 4.4, "Re-sampling").

    The network is re-sampled at random timesteps; the window keeps the
    most recent samples and expires old ones, naturally adapting the
    planner's view to drift in the joint distribution.  The policy tracks
    the accuracy observed when a proof-carrying plan runs and raises the
    re-sampling rate when accuracy degrades. *)

type t

val create : capacity:int -> t
(** An empty window holding at most [capacity] samples. *)

val add : t -> float array -> unit
(** Append one full-network sample, expiring the oldest beyond capacity. *)

val length : t -> int

val capacity : t -> int

val to_sample_set : t -> k:int -> Sample_set.t
(** @raise Invalid_argument if the window is empty. *)

(** Adaptive re-sampling rate. *)
module Policy : sig
  type nonrec t

  val create :
    ?base_rate:float -> ?max_rate:float -> ?target_accuracy:float -> unit -> t
  (** Defaults: probe with probability [base_rate = 0.02] per epoch, at
      most [max_rate = 0.5], aiming for [target_accuracy = 0.9]. *)

  val observe_accuracy : t -> float -> unit
  (** Feed the accuracy measured by a proof-carrying (or exact) run; rates
      rise when accuracy is below target and decay back otherwise. *)

  val rate : t -> float

  val should_sample : t -> Rng.t -> bool
  (** Decide whether to spend the energy on a full-network sample at the
      current epoch. *)
end

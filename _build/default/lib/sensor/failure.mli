(** Transient link-failure statistics (Section 4.4).

    The paper's reliable protocol re-routes a message around a failed edge;
    the planner copes with frequent transient failures by inflating each
    edge's cost by (failure probability x extra re-routing cost), so no
    topology recomputation is needed.  This module holds the per-edge
    statistics and produces the inflation factors consumed by
    {!Cost.with_failures}. *)

type t = {
  fail_prob : float array;
      (** per edge (indexed by the child node), in [0, 1] *)
  reroute_factor : float array;
      (** multiplicative extra cost paid when the edge fails, e.g. 1.5
          means a re-routed message costs 1.5x more *)
}

val none : n:int -> t
(** No failures. *)

val uniform : Rng.t -> n:int -> max_prob:float -> max_factor:float -> t
(** Independent per-edge probabilities in [0, max_prob] and re-route
    factors in [1, max_factor]. *)

val expected_multiplier : t -> int -> float
(** [expected_multiplier t i] is the expected cost multiplier of the edge
    above node [i]: [1 + p_i * (f_i - 1)]. *)

val draw_failures : t -> Rng.t -> bool array
(** Sample which edges fail during one collection phase. *)

type t = { fail_prob : float array; reroute_factor : float array }

let none ~n = { fail_prob = Array.make n 0.; reroute_factor = Array.make n 1. }

let uniform rng ~n ~max_prob ~max_factor =
  if max_prob < 0. || max_prob > 1. then
    invalid_arg "Failure.uniform: max_prob out of range";
  if max_factor < 1. then invalid_arg "Failure.uniform: max_factor < 1";
  {
    fail_prob = Array.init n (fun _ -> Rng.float rng max_prob);
    reroute_factor = Array.init n (fun _ -> Rng.uniform rng ~lo:1. ~hi:max_factor);
  }

let expected_multiplier t i =
  1. +. (t.fail_prob.(i) *. (t.reroute_factor.(i) -. 1.))

let draw_failures t rng =
  Array.map (fun p -> Rng.float rng 1. < p) t.fail_prob

lib/sensor/failure.ml: Array Rng

lib/sensor/mica2.ml: Format

lib/sensor/failure.mli: Rng

lib/sensor/placement.mli: Format Rng

lib/sensor/render.ml: Array Buffer Format Printf Topology

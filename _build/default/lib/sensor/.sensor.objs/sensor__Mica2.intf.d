lib/sensor/mica2.mli: Format

lib/sensor/cost.ml: Array Failure Mica2 Topology

lib/sensor/topology.ml: Array Float Format Int List Placement Queue Stack

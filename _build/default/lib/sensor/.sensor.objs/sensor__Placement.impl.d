lib/sensor/placement.ml: Array Float Format Rng

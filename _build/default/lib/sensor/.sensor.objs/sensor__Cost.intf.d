lib/sensor/cost.mli: Failure Mica2 Topology

lib/sensor/topology.mli: Format Placement

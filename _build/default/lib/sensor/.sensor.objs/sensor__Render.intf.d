lib/sensor/render.mli: Format Topology

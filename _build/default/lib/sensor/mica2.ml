type t = {
  send_mw : float;
  recv_mw : float;
  bytes_per_sec : float;
  per_message_mj : float;
  bytes_per_value : int;
  plan_bytes_per_node : int;
  broadcast_overhead_mj : float;
}

(* MICA2 / CC1000: ~27 mA transmit and ~10 mA receive at 3 V, 38.4 kbaud
   Manchester-encoded air rate => ~4800 bytes/s of application throughput.
   A transmitted reading is a TinyDB-style tuple (16-bit value, node id,
   epoch, attribute tag): 8 bytes.  The per-message handshake still
   dominates a single value (0.9 vs 0.185 mJ), which drives every
   approximation result in the paper. *)
let default =
  {
    send_mw = 81.0;
    recv_mw = 30.0;
    bytes_per_sec = 4800.;
    per_message_mj = 0.9;
    bytes_per_value = 8;
    plan_bytes_per_node = 6;
    broadcast_overhead_mj = 0.15;
  }

let per_byte_mj t = (t.send_mw +. t.recv_mw) /. t.bytes_per_sec

let send_byte_mj t = t.send_mw /. t.bytes_per_sec

let recv_byte_mj t = t.recv_mw /. t.bytes_per_sec

let unicast_bytes_mj t ~bytes =
  if bytes < 0 then invalid_arg "Mica2.unicast_bytes_mj: negative size";
  t.per_message_mj +. (per_byte_mj t *. float_of_int bytes)

let unicast_values_mj t ~values =
  unicast_bytes_mj t ~bytes:(values * t.bytes_per_value)

let broadcast_mj t ~receivers ~bytes =
  if receivers < 0 || bytes < 0 then
    invalid_arg "Mica2.broadcast_mj: negative argument";
  t.broadcast_overhead_mj
  +. (send_byte_mj t *. float_of_int bytes)
  +. (recv_byte_mj t *. float_of_int (receivers * bytes))

let trigger_mj t ~receivers = broadcast_mj t ~receivers ~bytes:0

let plan_install_mj t = unicast_bytes_mj t ~bytes:t.plan_bytes_per_node

let pp ppf t =
  Format.fprintf ppf
    "@[<v>sending cost (s)        %8.1f mJ/sec@,\
     receiving cost (r)      %8.1f mJ/sec@,\
     byte rate (b)           %8.0f bytes/sec@,\
     per-byte cost (cb)      %8.4f mJ/byte@,\
     per-message cost (cm)   %8.2f mJ@,\
     bytes per value         %8d@]"
    t.send_mw t.recv_mw t.bytes_per_sec (per_byte_mj t) t.per_message_mj
    t.bytes_per_value

(** Plain-text rendering of spanning trees, for CLI output and debugging.

    Children are listed in id order with box-drawing guides; a caller
    annotation (e.g. a plan's bandwidth, a reading) is appended to each
    node's line. *)

val tree : ?annotate:(int -> string) -> Topology.t -> string
(** Multi-line rendering, root first.  [annotate] defaults to the empty
    annotation. *)

val pp_tree :
  ?annotate:(int -> string) -> Format.formatter -> Topology.t -> unit

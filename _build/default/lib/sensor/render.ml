let tree ?(annotate = fun _ -> "") topo =
  let buf = Buffer.create 1024 in
  let line prefix node =
    let note = annotate node in
    Buffer.add_string buf
      (Printf.sprintf "%s%d%s\n" prefix node
         (if note = "" then "" else " " ^ note))
  in
  let rec visit prefix child_prefix node =
    line prefix node;
    let kids = topo.Topology.children.(node) in
    let last = Array.length kids - 1 in
    Array.iteri
      (fun idx c ->
        if idx = last then
          visit (child_prefix ^ "`-- ") (child_prefix ^ "    ") c
        else visit (child_prefix ^ "|-- ") (child_prefix ^ "|   ") c)
      kids
  in
  visit "" "" topo.Topology.root;
  Buffer.contents buf

let pp_tree ?annotate ppf topo =
  Format.pp_print_string ppf (tree ?annotate topo)

(** The spanning tree a sensor network is organized as (Section 2).

    Queries are distributed down and results collected up a tree rooted at
    the query station.  [build] constructs a minimum-hop tree over the radio
    connectivity graph of a {!Placement.t} (each node is as few hops from
    the root as possible, ties broken by link distance), which matches the
    paper's construction. *)

type t = private {
  n : int;
  root : int;
  parent : int array;  (** [parent.(root) = -1] *)
  children : int array array;
  depth : int array;  (** [depth.(root) = 0] *)
  bfs_order : int array;  (** parents before children, root first *)
  subtree_size : int array;  (** includes the node itself *)
  tin : int array;
  tout : int array;  (** Euler intervals for O(1) ancestry tests *)
}

exception Disconnected of int list
(** Nodes unreachable from the root at the given radio range. *)

val of_parents : root:int -> int array -> t
(** Build from an explicit parent array ([-1] for the root).
    @raise Invalid_argument on cycles, bad root, or out-of-range entries. *)

val build : Placement.t -> range:float -> t
(** Minimum-hop spanning tree over the radio graph.
    @raise Disconnected if some node is out of reach. *)

val min_connecting_range : Placement.t -> float
(** The smallest radio range at which the network is connected (the paper
    shortens the Intel-lab radio range to the minimum that still connects
    the tree).  Computed exactly from the inter-node distances. *)

val is_ancestor : t -> anc:int -> desc:int -> bool
(** Reflexive: [is_ancestor t ~anc:i ~desc:i = true]. *)

val path_to_root : t -> int -> int list
(** The node itself first, the root last. *)

val descendants : t -> int -> int list
(** All nodes in the subtree rooted at the node, itself included. *)

val post_order : t -> int array
(** Children before parents; root last. *)

val non_root_nodes : t -> int list
(** Every node except the root; each identifies the edge to its parent. *)

val height : t -> int

val pp : Format.formatter -> t -> unit

type point = { x : float; y : float }

let dist a b = Float.hypot (a.x -. b.x) (a.y -. b.y)

type t = {
  positions : point array;
  root : int;
  width : float;
  height : float;
  zone : int array;
}

let n t = Array.length t.positions

let uniform rng ~n ~width ~height ?(root_at = `Center) () =
  if n < 1 then invalid_arg "Placement.uniform: need at least one node";
  let positions =
    Array.init n (fun _ ->
        { x = Rng.float rng width; y = Rng.float rng height })
  in
  (match root_at with
  | `Center -> positions.(0) <- { x = width /. 2.; y = height /. 2. }
  | `Corner -> positions.(0) <- { x = 0.; y = 0. });
  { positions; root = 0; width; height; zone = Array.make n (-1) }

let zones rng ~n_zones ~per_zone ~background ~width ~height () =
  if n_zones < 1 then invalid_arg "Placement.zones: need at least one zone";
  let total = 1 + (n_zones * per_zone) + background in
  let positions = Array.make total { x = 0.; y = 0. } in
  let zone = Array.make total (-1) in
  positions.(0) <- { x = width /. 2.; y = height /. 2. };
  (* Zone centers evenly around an inscribed ellipse near the perimeter. *)
  let rx = width *. 0.42 and ry = height *. 0.42 in
  let cx = width /. 2. and cy = height /. 2. in
  let idx = ref 1 in
  for z = 0 to n_zones - 1 do
    let theta = 2. *. Float.pi *. float_of_int z /. float_of_int n_zones in
    let zx = cx +. (rx *. cos theta) and zy = cy +. (ry *. sin theta) in
    let cluster_radius = 0.06 *. Float.min width height in
    for _ = 1 to per_zone do
      let a = Rng.float rng (2. *. Float.pi) in
      let r = cluster_radius *. sqrt (Rng.float rng 1.) in
      positions.(!idx) <- { x = zx +. (r *. cos a); y = zy +. (r *. sin a) };
      zone.(!idx) <- z;
      incr idx
    done
  done;
  for _ = 1 to background do
    positions.(!idx) <-
      { x = Rng.float rng width; y = Rng.float rng height };
    incr idx
  done;
  { positions; root = 0; width; height; zone }

let grid ~rows ~cols ~spacing =
  if rows < 1 || cols < 1 then invalid_arg "Placement.grid: empty grid";
  let n = rows * cols in
  let positions =
    Array.init n (fun i ->
        let r = i / cols and c = i mod cols in
        { x = float_of_int c *. spacing; y = float_of_int r *. spacing })
  in
  {
    positions;
    root = 0;
    width = float_of_int (cols - 1) *. spacing;
    height = float_of_int (rows - 1) *. spacing;
    zone = Array.make n (-1);
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>%d nodes in %.0fx%.0f, root %d@]"
    (Array.length t.positions) t.width t.height t.root

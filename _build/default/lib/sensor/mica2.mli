(** Energy model of a Crossbow MICA2 mote radio (Section 2 of the paper).

    Communication energy dominates in sensor networks, so query cost is
    measured as radio energy in millijoules.  A unicast message with [b]
    bytes of content costs [cm + cb * b]:
    - [cm] (per-message) covers the reliable-protocol handshake and header;
    - [cb] (per-byte) is [(send_mw + recv_mw) / bytes_per_sec].

    The paper's table of constants is derived from the MICA2 (CC1000
    radio) specification; the exact scanned values are illegible in our
    copy, so {!default} uses datasheet-derived numbers.  Every qualitative
    result depends only on the regime [cm >> cb * bytes_per_value] (merely
    contacting a node is expensive), which holds here as it does in the
    paper. *)

type t = {
  send_mw : float;  (** transmit power draw, mJ/s *)
  recv_mw : float;  (** receive power draw, mJ/s *)
  bytes_per_sec : float;  (** effective radio throughput *)
  per_message_mj : float;  (** [cm]: handshake + header per unicast *)
  bytes_per_value : int;  (** encoded size of one sensor reading *)
  plan_bytes_per_node : int;  (** subplan payload during plan install *)
  broadcast_overhead_mj : float;
      (** fixed sender-side cost of one local broadcast (no handshake) *)
}

val default : t

val per_byte_mj : t -> float
(** [cb]: energy to move one byte over one hop (sender + receiver). *)

val send_byte_mj : t -> float
(** Sender-side share of {!per_byte_mj}. *)

val recv_byte_mj : t -> float

val unicast_bytes_mj : t -> bytes:int -> float
(** Cost of a unicast message with a [bytes]-byte body: [cm + cb * bytes]. *)

val unicast_values_mj : t -> values:int -> float
(** Cost of a unicast carrying [values] readings. *)

val broadcast_mj : t -> receivers:int -> bytes:int -> float
(** Cost of one local broadcast heard by [receivers] children: fixed
    overhead + sender bytes + each receiver's bytes. *)

val trigger_mj : t -> receivers:int -> float
(** Cost of re-triggering execution of a stored plan at one node: an
    empty-body broadcast (Section 2, subsequent distribution phases). *)

val plan_install_mj : t -> float
(** Cost of unicasting one node's subplan during the initial distribution
    phase. *)

val pp : Format.formatter -> t -> unit
(** Print the constants as in the paper's Section 2 table. *)

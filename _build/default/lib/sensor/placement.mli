(** Node placement generators.

    A layout is a set of 2-D node positions with a designated root (the
    query station).  Generators cover the paper's experimental setups:
    uniform-random fields (Figure 3), "contention-zone" rings (Figures 5-7)
    and regular grids (the Intel-lab-style floor plan of Figure 9). *)

type point = { x : float; y : float }

val dist : point -> point -> float

type t = {
  positions : point array;
  root : int;
  width : float;
  height : float;
  zone : int array;
      (** [zone.(i)] is the contention zone of node [i], or [-1] for
          background nodes; all [-1] for non-zoned layouts *)
}

val n : t -> int

val uniform :
  Rng.t -> n:int -> width:float -> height:float ->
  ?root_at:[ `Center | `Corner ] -> unit -> t
(** [n] nodes placed uniformly at random; the root node is moved to the
    requested location (default [`Center]). *)

val zones :
  Rng.t ->
  n_zones:int ->
  per_zone:int ->
  background:int ->
  width:float ->
  height:float ->
  unit ->
  t
(** The layout of the paper's Figure 6: [n_zones] clusters of [per_zone]
    nodes spaced evenly around the perimeter of the rectangle, [background]
    nodes uniform in the interior, and the root at the center. *)

val grid : rows:int -> cols:int -> spacing:float -> t
(** A [rows] x [cols] grid with the root at the north-west corner, used for
    lab-floor-plan style deployments. *)

val pp : Format.formatter -> t -> unit

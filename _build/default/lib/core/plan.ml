type t = { bandwidth : int array }

let normalize topo bw =
  let root = topo.Sensor.Topology.root in
  bw.(root) <- 0;
  (* Top-down (BFS order, parents first): clear subtrees hanging below a
     zero-bandwidth edge — their values could never reach the root. *)
  Array.iter
    (fun u ->
      if u <> root then begin
        let p = topo.Sensor.Topology.parent.(u) in
        if p <> root && bw.(p) = 0 then bw.(u) <- 0
      end)
    topo.Sensor.Topology.bfs_order;
  (* Bottom-up: an edge cannot carry more than own reading + inflow. *)
  Array.iter
    (fun u ->
      if u <> root && bw.(u) > 0 then begin
        let inflow =
          Array.fold_left
            (fun acc c -> acc + bw.(c))
            0 topo.Sensor.Topology.children.(u)
        in
        bw.(u) <- Int.min bw.(u) (inflow + 1)
      end)
    (Sensor.Topology.post_order topo)

let make topo bandwidth =
  if Array.length bandwidth <> topo.Sensor.Topology.n then
    invalid_arg "Plan.make: length mismatch";
  Array.iter
    (fun b -> if b < 0 then invalid_arg "Plan.make: negative bandwidth")
    bandwidth;
  let bw = Array.copy bandwidth in
  normalize topo bw;
  { bandwidth = bw }

let of_fractional ?(round = `Nearest) topo fractional =
  if Array.length fractional <> topo.Sensor.Topology.n then
    invalid_arg "Plan.of_fractional: length mismatch";
  let round_one f =
    (* LP solutions carry numerical noise; clamp tiny negatives. *)
    if f < -1e-6 then invalid_arg "Plan.of_fractional: negative bandwidth";
    let f = Float.max 0. f in
    match round with
    | `Nearest -> int_of_float (Float.floor (f +. 0.5))
    | `Up -> int_of_float (Float.ceil (f -. 1e-6))
  in
  let bw = Array.map round_one fractional in
  normalize topo bw;
  { bandwidth = bw }

let of_chosen topo chosen =
  if Array.length chosen <> topo.Sensor.Topology.n then
    invalid_arg "Plan.of_chosen: length mismatch";
  let bw = Array.make topo.Sensor.Topology.n 0 in
  Array.iter
    (fun u ->
      let below =
        Array.fold_left
          (fun acc c -> acc + bw.(c))
          0 topo.Sensor.Topology.children.(u)
      in
      bw.(u) <- (below + if chosen.(u) then 1 else 0))
    (Sensor.Topology.post_order topo);
  bw.(topo.Sensor.Topology.root) <- 0;
  { bandwidth = bw }

let bandwidth t i = t.bandwidth.(i)

let participates t ~root i = i = root || t.bandwidth.(i) > 0

let participants topo t =
  let root = topo.Sensor.Topology.root in
  List.filter
    (fun u -> participates t ~root u)
    (Array.to_list topo.Sensor.Topology.bfs_order)

let expected_collection_mj topo cost t =
  let acc = ref 0. in
  Array.iteri
    (fun i b ->
      if b > 0 && i <> topo.Sensor.Topology.root then
        acc := !acc +. Sensor.Cost.message_mj cost ~node:i ~values:b)
    t.bandwidth;
  !acc

let trigger_mj topo mica t =
  let root = topo.Sensor.Topology.root in
  let acc = ref 0. in
  Array.iter
    (fun u ->
      if participates t ~root u then begin
        let participating_children =
          Array.fold_left
            (fun n c -> if t.bandwidth.(c) > 0 then n + 1 else n)
            0 topo.Sensor.Topology.children.(u)
        in
        if participating_children > 0 then
          acc :=
            !acc +. Sensor.Mica2.trigger_mj mica ~receivers:participating_children
      end)
    topo.Sensor.Topology.bfs_order;
  !acc

let install_mj topo mica t =
  let root = topo.Sensor.Topology.root in
  let edges =
    List.length (List.filter (fun u -> u <> root) (participants topo t))
  in
  float_of_int edges *. Sensor.Mica2.plan_install_mj mica

let total_bandwidth t = Array.fold_left ( + ) 0 t.bandwidth

let pp ppf t =
  Format.fprintf ppf "@[<h>plan:";
  Array.iteri
    (fun i b -> if b > 0 then Format.fprintf ppf " %d:%d" i b)
    t.bandwidth;
  Format.fprintf ppf "@]"

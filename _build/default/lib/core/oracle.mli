(** The non-plausible baselines of Section 5.

    ORACLE knows where the top k values are beforehand and runs the
    cheapest plan that retrieves exactly them: the minimal subtree spanning
    the top-k nodes, each edge carrying just the top-k values below it.
    Its cost lower-bounds every approximate algorithm.

    ORACLE-PROOF also knows the locations but must still prove its answer,
    so it visits all nodes: every edge carries the top-k values below it
    plus (when the subtree has more values) one witness — the largest
    non-answer value — so each ancestor can prove the answer values.  Its
    cost lower-bounds every exact algorithm. *)

val oracle :
  Sensor.Topology.t -> Sensor.Cost.t -> k:int -> readings:float array ->
  Exec.outcome
(** Always 100% accurate. *)

val oracle_plan : Sensor.Topology.t -> k:int -> readings:float array -> Plan.t

val oracle_proof_plan :
  Sensor.Topology.t -> k:int -> readings:float array -> Plan.t
(** The bandwidth assignment described above; running it through
    {!Proof_exec.run} proves all k answer values. *)

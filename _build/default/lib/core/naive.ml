type outcome = {
  returned : (int * float) list;
  collection_mj : float;
  messages : int;
  values_sent : int;
}

let take = Exec.take_prefix

let naive_k topo cost ~k ~readings =
  if k < 1 then invalid_arg "Naive.naive_k: k must be positive";
  let root = topo.Sensor.Topology.root in
  let outbox = Array.make topo.Sensor.Topology.n [] in
  let energy = ref 0. and messages = ref 0 and values_sent = ref 0 in
  Array.iter
    (fun u ->
      let pool =
        Array.fold_left
          (fun acc c -> List.rev_append outbox.(c) acc)
          [ (u, readings.(u)) ]
          topo.Sensor.Topology.children.(u)
      in
      let top = take k (List.sort Exec.value_order pool) in
      if u <> root then begin
        outbox.(u) <- top;
        let count = List.length top in
        energy := !energy +. Sensor.Cost.message_mj cost ~node:u ~values:count;
        incr messages;
        values_sent := !values_sent + count
      end
      else outbox.(u) <- top)
    (Sensor.Topology.post_order topo);
  {
    returned = outbox.(root);
    collection_mj = !energy;
    messages = !messages;
    values_sent = !values_sent;
  }

(* NAIVE-1 state per node: a heap of candidate values, one per source (the
   node itself and each non-exhausted child).  Refills are lazy — a missing
   child entry is fetched when the next request arrives, exactly as in the
   paper — so no value is ever pulled that the parent will not consume. *)
type puller = {
  mutable heap : (int * (int * float)) list;  (* (source, entry), sorted *)
  mutable initialized : bool;
  mutable done_children : int list;
  mutable missing : int list;  (* children owing the heap an entry *)
}

let naive_one topo cost ~k ~readings =
  if k < 1 then invalid_arg "Naive.naive_one: k must be positive";
  let n = topo.Sensor.Topology.n in
  let root = topo.Sensor.Topology.root in
  let states =
    Array.init n (fun _ ->
        { heap = []; initialized = false; done_children = []; missing = [] })
  in
  let energy = ref 0. and messages = ref 0 and values_sent = ref 0 in
  let charge_request child =
    (* Parent asks [child] for its next value: an empty-body unicast down
       the child's uplink edge. *)
    energy := !energy +. Sensor.Cost.message_mj cost ~node:child ~values:0;
    incr messages
  in
  let charge_response child has_value =
    energy :=
      !energy
      +. Sensor.Cost.message_mj cost ~node:child
           ~values:(if has_value then 1 else 0);
    incr messages;
    if has_value then incr values_sent
  in
  let heap_insert st source entry =
    st.heap <-
      List.sort
        (fun (_, a) (_, b) -> Exec.value_order a b)
        ((source, entry) :: st.heap)
  in
  (* Produce the next largest value of subtree(u), or None when drained.
     Communication is charged by the caller except for the recursive
     request/response pairs charged here. *)
  let rec pull u =
    let st = states.(u) in
    if not st.initialized then begin
      st.initialized <- true;
      heap_insert st u (u, readings.(u));
      st.missing <- Array.to_list topo.Sensor.Topology.children.(u)
    end;
    (* Ensure the heap holds one entry per non-exhausted child. *)
    List.iter (fun c -> refill u c) st.missing;
    st.missing <- [];
    match st.heap with
    | [] -> None
    | (source, entry) :: rest ->
        st.heap <- rest;
        if source <> u then st.missing <- [ source ];
        Some entry
  and refill u child =
    let st = states.(u) in
    if not (List.mem child st.done_children) then begin
      charge_request child;
      match pull child with
      | Some entry ->
          charge_response child true;
          heap_insert st child entry
      | None ->
          charge_response child false;
          st.done_children <- child :: st.done_children
    end
  in
  let answer = ref [] in
  let rec draw remaining =
    if remaining > 0 then
      match pull root with
      | None -> ()
      | Some entry ->
          answer := entry :: !answer;
          draw (remaining - 1)
  in
  draw k;
  {
    returned = List.rev !answer;
    collection_mj = !energy;
    messages = !messages;
    values_sent = !values_sent;
  }

let flood_trigger_mj topo mica =
  let acc = ref 0. in
  Array.iter
    (fun u ->
      let kids = Array.length topo.Sensor.Topology.children.(u) in
      if kids > 0 then acc := !acc +. Sensor.Mica2.trigger_mj mica ~receivers:kids)
    topo.Sensor.Topology.bfs_order;
  !acc

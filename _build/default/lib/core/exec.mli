(** Execution of approximate plans over one epoch of readings.

    [collect] walks the tree bottom-up exactly as the collection phase
    would run in the network: each participating node merges its own
    reading with its children's lists and forwards the top [bandwidth]
    values.  Energy is charged per actual message with the same constants
    the planners optimize against, so measured cost is directly comparable
    to the planning budget.  A {!Simnet}-backed executor with identical
    semantics lives in {!Simnet_exec}; the test suite checks they agree. *)

type outcome = {
  returned : (int * float) list;
      (** the root's answer: (origin node, value), best first, at most [k] *)
  collection_mj : float;  (** energy of the collection phase *)
  messages : int;  (** unicasts in the collection phase *)
  values_sent : int;  (** total readings transmitted *)
}

val take_prefix : int -> 'a list -> 'a list
(** First [n] elements (the whole list when shorter) — the "top b" step
    shared by every executor. *)

val value_order : (int * float) -> (int * float) -> int
(** Total order used everywhere to rank readings: larger value first, ties
    to the smaller node id.  Having one global total order makes top-k sets
    and proof comparisons deterministic. *)

val collect :
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Plan.t ->
  k:int ->
  readings:float array ->
  outcome

val true_top_k : k:int -> float array -> (int * float) list
(** Ground truth under {!value_order}. *)

val accuracy : k:int -> readings:float array -> (int * float) list -> float
(** Fraction of the true top k present in an answer. *)

type t = {
  runs : float;
  bottleneck : int;
  bottleneck_mj_per_run : float;
  mean_mj_per_run : float;
}

let of_profile ~battery_j per_node_mj =
  if battery_j <= 0. then invalid_arg "Lifetime.of_profile: battery_j";
  Array.iter
    (fun e -> if e < 0. then invalid_arg "Lifetime.of_profile: negative drain")
    per_node_mj;
  let bottleneck = ref (-1) and worst = ref 0. in
  Array.iteri
    (fun i e ->
      if e > !worst then begin
        worst := e;
        bottleneck := i
      end)
    per_node_mj;
  if !bottleneck < 0 then
    invalid_arg "Lifetime.of_profile: no node consumes energy";
  let n = Array.length per_node_mj in
  {
    runs = battery_j *. 1000. /. !worst;
    bottleneck = !bottleneck;
    bottleneck_mj_per_run = !worst;
    mean_mj_per_run = Array.fold_left ( +. ) 0. per_node_mj /. float_of_int n;
  }

let of_plan topo mica plan ~k ~readings ~battery_j =
  let r = Simnet_exec.collect topo mica plan ~k ~readings in
  of_profile ~battery_j r.Simnet_exec.per_node_mj

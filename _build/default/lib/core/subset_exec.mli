(** Execution for generalized subset queries: ship exactly the chosen
    nodes' readings to the root, unfiltered (relays forward what they
    receive, adding their own reading only if chosen).  This is the correct
    collection semantics when the answer is not "the largest values" — a
    local top-b filter could drop the median or a below-threshold witness
    the query actually wants. *)

type outcome = {
  received : (int * float) list;  (** (origin, value), root's own included *)
  collection_mj : float;
  messages : int;
  values_sent : int;
}

val collect :
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  chosen:bool array ->
  readings:float array ->
  outcome

val recall : truth:int array -> (int * float) list -> float
(** Fraction of the true answer set present among the received origins
    (1. when the truth is empty). *)

val quantile_estimate : phi:float -> (int * float) list -> float option
(** The [phi]-quantile of the received values — the root's best estimate
    of the network quantile. *)

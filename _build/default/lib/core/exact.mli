(** PROSPECTOR-EXACT: the two-phase exact top-k algorithm (Section 4.3).

    Phase 1 executes a proof-carrying plan ({!Proof_exec}).  If the root
    proves all k answer values, the query is done.  Otherwise a mop-up
    phase retrieves the missing values: range requests [(count, lo, hi)]
    are pushed down the tree, and every node services as much of a request
    as it can from the values it retrieved and proved during phase 1,
    forwarding a narrowed request to its children only when its own
    knowledge cannot complete the answer.  Children that already forwarded
    their whole subtree in phase 1 are never re-contacted.

    The answer is always the exact top k — the plan (and the samples
    behind it) only affect cost, never correctness. *)

type outcome = {
  answer : (int * float) list;  (** the exact top k, best first *)
  proven_after_phase1 : int;
  phase1_mj : float;
  phase2_mj : float;
  phase1_messages : int;
  phase2_messages : int;
  phase2_values : int;  (** readings transmitted during mop-up *)
}

val total_mj : outcome -> float

val run :
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Sensor.Mica2.t ->
  Plan.t ->
  k:int ->
  readings:float array ->
  outcome
(** [Plan] is the phase-1 proof plan (bandwidth >= 1 on every edge). *)

(** Approximate top-k query plans (Section 2).

    A single-pass approximate plan assigns a bandwidth to every edge of the
    spanning tree: [bandwidth.(i)] is the number of values node [i] may
    send on the edge to its parent.  During collection each participating
    node sorts the values received from its children together with its own
    reading and forwards the top [bandwidth.(i)] of them — bandwidth lower
    than the inflow realizes the paper's local filtering.

    A node participates iff its bandwidth is positive (the root always
    participates).  [normalize] restores the two invariants that LP
    rounding can break:
    - no dead branches: a subtree whose uplink bandwidth is 0 sends
      nothing, so all bandwidth inside it is cleared;
    - no over-allocation: an edge never needs more bandwidth than one plus
      the total bandwidth of the node's children (its own reading plus
      everything it can receive). *)

type t = private { bandwidth : int array }

val make : Sensor.Topology.t -> int array -> t
(** Build a plan from per-node bandwidths (the root's entry is forced to
    0; it has no uplink).  The array is copied and normalized.
    @raise Invalid_argument on negative entries or length mismatch. *)

val of_fractional :
  ?round:[ `Nearest | `Up ] -> Sensor.Topology.t -> float array -> t
(** Round an LP bandwidth solution, then normalize.  [`Nearest] (default)
    is the paper's round-at-1/2 scheme for approximate plans; [`Up] is used
    for proof plans, where a fractional bandwidth certifies a fractional
    witness and only the ceiling preserves provability. *)

val of_chosen : Sensor.Topology.t -> bool array -> t
(** The no-local-filtering plan that ships every chosen node's value all
    the way to the root: each edge's bandwidth is the number of chosen
    nodes in the subtree below it (used by GREEDY and LP-LF). *)

val bandwidth : t -> int -> int

val participates : t -> root:int -> int -> bool

val participants : Sensor.Topology.t -> t -> int list
(** All participating nodes, the root included, in BFS order. *)

val expected_collection_mj : Sensor.Topology.t -> Sensor.Cost.t -> t -> float
(** Static upper bound on one collection phase: every participating edge
    pays its per-message cost plus its full bandwidth in values.  Actual
    executions can be cheaper when fewer values than the bandwidth are
    available. *)

val trigger_mj : Sensor.Topology.t -> Sensor.Mica2.t -> t -> float
(** Cost of re-triggering the stored plan: one empty broadcast per
    participating node that has participating children, plus one from the
    root if any of its children participate. *)

val install_mj : Sensor.Topology.t -> Sensor.Mica2.t -> t -> float
(** Cost of the initial distribution phase: one subplan unicast per
    participating edge. *)

val total_bandwidth : t -> int

val pp : Format.formatter -> t -> unit

(** Network-lifetime estimation.

    The paper's introduction motivates energy efficiency through network
    lifetime: the network lives until its first mote dies.  Because all
    traffic funnels through the root's children, lifetime is governed by
    the hottest node's per-execution drain, not the total.  This module
    turns per-node energy profiles (from the discrete-event executor) into
    executions-until-first-death. *)

type t = {
  runs : float;  (** executions until the first battery is empty *)
  bottleneck : int;  (** the node that dies first *)
  bottleneck_mj_per_run : float;
  mean_mj_per_run : float;  (** network-wide mean drain per execution *)
}

val of_profile : battery_j:float -> float array -> t
(** [of_profile ~battery_j per_node_mj] with one entry per node; entries
    that are 0 (idle nodes) never die.  The root (typically mains-powered
    in deployments, but battery-powered here) is included like any node.
    @raise Invalid_argument if all entries are 0 or any is negative. *)

val of_plan :
  Sensor.Topology.t ->
  Sensor.Mica2.t ->
  Plan.t ->
  k:int ->
  readings:float array ->
  battery_j:float ->
  t
(** Profile one plan execution on the simulator and extrapolate. *)

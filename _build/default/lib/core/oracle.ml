let oracle_plan topo ~k ~readings =
  let chosen = Array.make topo.Sensor.Topology.n false in
  List.iter (fun (i, _) -> chosen.(i) <- true) (Exec.true_top_k ~k readings);
  Plan.of_chosen topo chosen

let oracle topo cost ~k ~readings =
  Exec.collect topo cost (oracle_plan topo ~k ~readings) ~k ~readings

let oracle_proof_plan topo ~k ~readings =
  let n = topo.Sensor.Topology.n in
  let in_top = Array.make n false in
  List.iter (fun (i, _) -> in_top.(i) <- true) (Exec.true_top_k ~k readings);
  (* Per edge: all answer values below it, plus one witness value if the
     subtree holds anything else. *)
  let bw = Array.make n 0 in
  Array.iter
    (fun u ->
      if u <> topo.Sensor.Topology.root then begin
        let answers_below =
          List.fold_left
            (fun acc d -> if in_top.(d) then acc + 1 else acc)
            0
            (Sensor.Topology.descendants topo u)
        in
        let size = topo.Sensor.Topology.subtree_size.(u) in
        bw.(u) <- Int.min size (answers_below + 1)
      end)
    (Sensor.Topology.post_order topo);
  Plan.make topo bw

(** Execution of proof-carrying top-k plans (Section 4.3).

    Every node forwards the top [bandwidth] values of its subtree (so every
    edge needs bandwidth at least 1) and determines which of them it can
    {e prove} to be the true largest values of its subtree: a value [v] is
    proven at node [u] iff for every child [c], either [v] originates in
    [c]'s subtree and is proven by [c], or [c] proved some value ranking
    below [v], or [c] forwarded its entire subtree.  Lemma 1: the values
    proven by a node are exactly the top values of its subtree — the test
    suite checks this on random executions.

    The per-node states are retained because the mop-up phase of
    {!Exact} resumes from them. *)

type node_state = {
  retrieved : (int * float) list;
      (** everything the node saw: its reading + all values received,
          sorted by {!Exec.value_order} *)
  sent : (int * float) list;  (** what it passed up (top [bandwidth]) *)
  proven : (int * float) list;  (** prefix of [sent] proven by this node *)
  sent_all : bool;  (** [sent] is the node's entire subtree *)
}

type outcome = {
  result : (int * float) list;
      (** the root's answer: top [k] of everything it retrieved *)
  proven_count : int;  (** how many leading answer values are proven *)
  states : node_state array;
  collection_mj : float;
  messages : int;
  values_sent : int;
}

val run :
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Plan.t ->
  k:int ->
  readings:float array ->
  outcome
(** @raise Invalid_argument if some edge has zero bandwidth — a
    proof-carrying plan must visit every node. *)

val min_bandwidth_plan : Sensor.Topology.t -> Plan.t
(** The cheapest valid proof-carrying plan: bandwidth 1 everywhere. *)

(** The naive exact top-k algorithms of Section 2.

    NAIVE-k answers in one bottom-up pass: every node forwards the top
    [min k (subtree size)] values of its subtree, so messages are minimal
    but most transmitted values are wasted.  NAIVE-1 pipelines: a node
    pulls values from its children one at a time through a local heap, so
    transmitted values are minimal but every value costs a request/response
    message pair.  Both always return the exact answer. *)

type outcome = {
  returned : (int * float) list;  (** exact top k, best first *)
  collection_mj : float;
  messages : int;
  values_sent : int;
}

val naive_k :
  Sensor.Topology.t -> Sensor.Cost.t -> k:int -> readings:float array -> outcome

val naive_one :
  Sensor.Topology.t -> Sensor.Cost.t -> k:int -> readings:float array -> outcome

val flood_trigger_mj : Sensor.Topology.t -> Sensor.Mica2.t -> float
(** Cost of waking the whole network with a recursive empty broadcast (the
    trigger phase of NAIVE-k, whose "plan" involves every node). *)

type point = {
  accuracy : float;
  collection_mj : float;
  trigger_mj : float;
  install_mj : float;
  messages : float;
}

let total_per_run_mj p = p.collection_mj +. p.trigger_mj

let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let check_epochs epochs =
  if Array.length epochs = 0 then invalid_arg "Evaluate: no test epochs"

let approx topo cost mica plan ~k ~epochs =
  check_epochs epochs;
  let outcomes =
    Array.to_list
      (Array.map (fun readings -> Exec.collect topo cost plan ~k ~readings) epochs)
  in
  let accuracies =
    List.map2
      (fun o readings -> Exec.accuracy ~k ~readings o.Exec.returned)
      outcomes
      (Array.to_list epochs)
  in
  {
    accuracy = mean accuracies;
    collection_mj = mean (List.map (fun o -> o.Exec.collection_mj) outcomes);
    trigger_mj = Plan.trigger_mj topo mica plan;
    install_mj = Plan.install_mj topo mica plan;
    messages = mean (List.map (fun o -> float_of_int o.Exec.messages) outcomes);
  }

let naive_k topo cost mica ~k ~epochs =
  check_epochs epochs;
  let outcomes =
    Array.to_list
      (Array.map (fun readings -> Naive.naive_k topo cost ~k ~readings) epochs)
  in
  {
    accuracy = 1.;
    collection_mj = mean (List.map (fun o -> o.Naive.collection_mj) outcomes);
    trigger_mj = Naive.flood_trigger_mj topo mica;
    install_mj = 0.;
    messages = mean (List.map (fun o -> float_of_int o.Naive.messages) outcomes);
  }

let naive_one topo cost ~k ~epochs =
  check_epochs epochs;
  let outcomes =
    Array.to_list
      (Array.map (fun readings -> Naive.naive_one topo cost ~k ~readings) epochs)
  in
  {
    accuracy = 1.;
    collection_mj = mean (List.map (fun o -> o.Naive.collection_mj) outcomes);
    trigger_mj = 0.;
    install_mj = 0.;
    messages = mean (List.map (fun o -> float_of_int o.Naive.messages) outcomes);
  }

let oracle topo cost mica ~k ~epochs =
  check_epochs epochs;
  let outcomes =
    Array.to_list
      (Array.map (fun readings -> Oracle.oracle topo cost ~k ~readings) epochs)
  in
  let installs =
    Array.to_list
      (Array.map
         (fun readings ->
           Plan.install_mj topo mica (Oracle.oracle_plan topo ~k ~readings))
         epochs)
  in
  let triggers =
    Array.to_list
      (Array.map
         (fun readings ->
           Plan.trigger_mj topo mica (Oracle.oracle_plan topo ~k ~readings))
         epochs)
  in
  {
    accuracy = 1.;
    collection_mj = mean (List.map (fun o -> o.Exec.collection_mj) outcomes);
    trigger_mj = mean triggers;
    install_mj = mean installs;
    messages = mean (List.map (fun o -> float_of_int o.Exec.messages) outcomes);
  }

let oracle_proof topo cost mica ~k ~epochs =
  check_epochs epochs;
  let outcomes =
    Array.to_list
      (Array.map
         (fun readings ->
           let plan = Oracle.oracle_proof_plan topo ~k ~readings in
           Proof_exec.run topo cost plan ~k ~readings)
         epochs)
  in
  {
    accuracy = 1.;
    collection_mj =
      mean (List.map (fun o -> o.Proof_exec.collection_mj) outcomes);
    trigger_mj = Naive.flood_trigger_mj topo mica;
    install_mj = 0.;
    messages = mean (List.map (fun o -> float_of_int o.Proof_exec.messages) outcomes);
  }

let exact topo cost mica plan ~k ~epochs =
  check_epochs epochs;
  let outcomes =
    Array.to_list
      (Array.map
         (fun readings -> Exact.run topo cost mica plan ~k ~readings)
         epochs)
  in
  let trigger = Plan.trigger_mj topo mica plan in
  let phase1 =
    {
      accuracy = 1.;
      collection_mj = mean (List.map (fun o -> o.Exact.phase1_mj) outcomes);
      trigger_mj = trigger;
      install_mj = Plan.install_mj topo mica plan;
      messages =
        mean (List.map (fun o -> float_of_int o.Exact.phase1_messages) outcomes);
    }
  in
  let phase2 =
    {
      accuracy = 1.;
      collection_mj = mean (List.map (fun o -> o.Exact.phase2_mj) outcomes);
      trigger_mj = 0.;
      install_mj = 0.;
      messages =
        mean (List.map (fun o -> float_of_int o.Exact.phase2_messages) outcomes);
    }
  in
  (phase1, phase2)

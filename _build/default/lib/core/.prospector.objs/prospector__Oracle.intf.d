lib/core/oracle.mli: Exec Plan Sensor

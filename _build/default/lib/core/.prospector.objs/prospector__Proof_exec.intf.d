lib/core/proof_exec.mli: Plan Sensor

lib/core/proof_exec.ml: Array Exec Hashtbl List Plan Sensor

lib/core/evaluate.ml: Array Exact Exec List Naive Oracle Plan Proof_exec

lib/core/exec.mli: Plan Sensor

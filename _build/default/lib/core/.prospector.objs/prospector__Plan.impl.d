lib/core/plan.ml: Array Float Format Int List Sensor

lib/core/lifetime.mli: Plan Sensor

lib/core/replan.ml: Array Exec Float Lp_lf Plan Sampling

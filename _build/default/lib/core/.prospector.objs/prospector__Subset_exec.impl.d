lib/core/subset_exec.ml: Array Exec Float Hashtbl Int List Sensor

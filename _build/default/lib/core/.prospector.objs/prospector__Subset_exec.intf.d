lib/core/subset_exec.mli: Sensor

lib/core/lifetime.ml: Array Simnet_exec

lib/core/simnet_exec.mli: Plan Rng Sensor

lib/core/naive.ml: Array Exec List Sensor

lib/core/lp_lf.ml: Array Hashtbl Int List Lp Option Plan Printf Sampling Sensor

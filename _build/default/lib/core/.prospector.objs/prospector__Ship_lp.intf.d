lib/core/ship_lp.mli: Lp Sensor

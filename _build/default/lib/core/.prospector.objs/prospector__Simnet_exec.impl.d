lib/core/simnet_exec.ml: Array Exec List Plan Sensor Simnet

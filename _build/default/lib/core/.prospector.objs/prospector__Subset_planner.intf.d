lib/core/subset_planner.mli: Lp Plan Sampling Sensor

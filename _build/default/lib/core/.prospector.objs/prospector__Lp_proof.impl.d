lib/core/lp_proof.ml: Array Exec Float Hashtbl Int List Lp Option Plan Printf Sampling Sensor

lib/core/plan.mli: Format Sensor

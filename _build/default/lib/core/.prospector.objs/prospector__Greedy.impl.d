lib/core/greedy.ml: Array List Plan Sampling Sensor

lib/core/oracle.ml: Array Exec Int List Plan Sensor

lib/core/lp_proof.mli: Lp Plan Sampling Sensor

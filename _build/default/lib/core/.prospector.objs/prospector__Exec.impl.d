lib/core/exec.ml: Array Hashtbl List Plan Sensor

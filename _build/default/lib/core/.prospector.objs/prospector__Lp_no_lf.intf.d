lib/core/lp_no_lf.mli: Lp Plan Sampling Sensor

lib/core/ship_lp.ml: Array List Lp Option Printf Sensor

lib/core/lp_lf.mli: Lp Plan Sampling Sensor

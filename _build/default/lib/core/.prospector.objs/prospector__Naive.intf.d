lib/core/naive.mli: Sensor

lib/core/simnet_protocols.ml: Array Exec Hashtbl List Plan Sensor Simnet

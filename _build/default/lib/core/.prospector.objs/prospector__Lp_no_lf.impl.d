lib/core/lp_no_lf.ml: Lp Plan Sampling Ship_lp

lib/core/replan.mli: Plan Sampling Sensor

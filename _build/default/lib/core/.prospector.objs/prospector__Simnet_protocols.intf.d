lib/core/simnet_protocols.mli: Plan Rng Sensor

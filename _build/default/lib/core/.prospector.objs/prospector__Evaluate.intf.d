lib/core/evaluate.mli: Plan Sensor

lib/core/greedy.mli: Plan Sampling Sensor

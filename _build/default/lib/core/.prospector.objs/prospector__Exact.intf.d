lib/core/exact.mli: Plan Sensor

lib/core/exact.ml: Array Exec Hashtbl List Proof_exec Sensor

lib/core/subset_planner.ml: Lp Plan Sampling Sensor Ship_lp

(** Measurement harness: run plans against held-out epochs and report the
    averages that the paper's figures plot (accuracy in % of the true top
    k, measured energy in mJ). *)

type point = {
  accuracy : float;  (** mean fraction of the true top k returned, in [0,1] *)
  collection_mj : float;  (** mean per-execution collection energy *)
  trigger_mj : float;  (** per-execution trigger energy *)
  install_mj : float;  (** one-off plan installation energy *)
  messages : float;  (** mean unicasts per execution *)
}

val total_per_run_mj : point -> float
(** [collection + trigger] — the per-execution cost the paper plots
    (the install cost is amortized over many runs and reported apart). *)

val approx :
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Sensor.Mica2.t ->
  Plan.t ->
  k:int ->
  epochs:float array array ->
  point
(** Evaluate an approximate plan over test epochs. *)

val naive_k :
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Sensor.Mica2.t ->
  k:int ->
  epochs:float array array ->
  point

val naive_one :
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  k:int ->
  epochs:float array array ->
  point

val oracle :
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Sensor.Mica2.t ->
  k:int ->
  epochs:float array array ->
  point
(** The oracle re-plans per epoch (it knows the answer locations), so its
    install cost is counted per run. *)

val oracle_proof :
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Sensor.Mica2.t ->
  k:int ->
  epochs:float array array ->
  point

val exact :
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Sensor.Mica2.t ->
  Plan.t ->
  k:int ->
  epochs:float array array ->
  point * point
(** PROSPECTOR-EXACT with the given phase-1 proof plan.  Returns
    (phase-1 point, phase-2 point); both have accuracy 1 by construction
    (the algorithm is exact; the test suite asserts it). *)

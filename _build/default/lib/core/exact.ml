type outcome = {
  answer : (int * float) list;
  proven_after_phase1 : int;
  phase1_mj : float;
  phase2_mj : float;
  phase1_messages : int;
  phase2_messages : int;
  phase2_values : int;
}

let total_mj o = o.phase1_mj +. o.phase2_mj

let take = Exec.take_prefix

(* Range bounds are optional (origin, value) pairs compared with the global
   value order; [None] means unbounded on that side.  A value [v] lies in
   (lo, hi) iff it ranks strictly below [hi] and strictly above [lo] —
   where "above" means earlier under {!Exec.value_order}. *)
let in_range ~lo ~hi v =
  (match hi with None -> true | Some h -> Exec.value_order h v < 0)
  && match lo with None -> true | Some l -> Exec.value_order v l < 0

let run topo cost mica plan ~k ~readings =
  let phase1 = Proof_exec.run topo cost plan ~k ~readings in
  let states = phase1.Proof_exec.states in
  let root = topo.Sensor.Topology.root in
  let phase2_mj = ref 0. and phase2_msgs = ref 0 and phase2_vals = ref 0 in
  (* Request payload: a count and two range bounds. *)
  let request_bytes = (2 * mica.Sensor.Mica2.bytes_per_value) + 2 in
  (* answer_request u c lo hi: the true top [c] values of subtree(u) lying
     strictly inside (lo, hi), best first.  Sound because:
     - every subtree value ranking above min(proven(u)) is already in
       retrieved(u) (Lemma 1), and
     - children are asked for their top [c'] below that threshold, which
       covers anything retrieved(u) is missing. *)
  let rec answer_request u c ~lo ~hi =
    if c <= 0 then []
    else begin
      let st = states.(u) in
      let known_in_range =
        List.filter (in_range ~lo ~hi) st.Proof_exec.retrieved
      in
      let proven_in_range =
        List.filter (in_range ~lo ~hi) st.Proof_exec.proven
      in
      (* Knowledge below the smallest proven value may be incomplete. *)
      let pmin =
        match List.rev st.Proof_exec.proven with [] -> None | last :: _ -> Some last
      in
      (* If c values in range are proven, everything ranking above the c-th
         of them is known (Lemma 1), so the answer is already in memory. *)
      if List.length proven_in_range >= c then take c known_in_range
      else begin
        (* Narrow the forwarded range:
           - nothing above min(proven) is needed (it is already known);
           - nothing at or below the c-th known in-range value can make
             the top c (u already holds c better candidates). *)
        let hi' =
          match (hi, pmin) with
          | None, p -> p
          | h, None -> h
          | Some h, Some p -> if Exec.value_order h p < 0 then Some p else Some h
        in
        let lo' =
          match List.nth_opt known_in_range (c - 1) with
          | None -> lo
          | Some w -> (
              match lo with
              | None -> Some w
              | Some l -> if Exec.value_order w l < 0 then Some w else Some l)
        in
        let range_empty =
          match (lo', hi') with
          | Some l, Some h -> Exec.value_order h l >= 0
          | _ -> false
        in
        let targets =
          if range_empty then []
          else
            Array.to_list topo.Sensor.Topology.children.(u)
            |> List.filter (fun ch -> not states.(ch).Proof_exec.sent_all)
        in
        let gathered =
          if targets = [] then []
          else begin
            (* One request broadcast, one response unicast per child. *)
            phase2_mj :=
              !phase2_mj
              +. Sensor.Mica2.broadcast_mj mica ~receivers:(List.length targets)
                   ~bytes:request_bytes;
            incr phase2_msgs;
            List.concat_map
              (fun ch ->
                let sub = answer_request ch c ~lo:lo' ~hi:hi' in
                let count = List.length sub in
                phase2_mj :=
                  !phase2_mj +. Sensor.Cost.message_mj cost ~node:ch ~values:count;
                incr phase2_msgs;
                phase2_vals := !phase2_vals + count;
                sub)
              targets
          end
        in
        (* Merge: origins are unique network-wide, so dedup by origin. *)
        let seen = Hashtbl.create 16 in
        let merged =
          List.filter
            (fun (i, _) ->
              if Hashtbl.mem seen i then false
              else begin
                Hashtbl.replace seen i ();
                true
              end)
            (List.sort Exec.value_order (known_in_range @ gathered))
        in
        take c merged
      end
    end
  in
  let answer =
    if phase1.Proof_exec.proven_count >= k then phase1.Proof_exec.result
    else begin
      let root_state = states.(root) in
      let pmin =
        match List.rev root_state.Proof_exec.proven with
        | [] -> None
        | last :: _ -> Some last
      in
      (* Any new answer value must beat the current k-th candidate. *)
      let lo = List.nth_opt root_state.Proof_exec.retrieved (k - 1) in
      let missing = k - phase1.Proof_exec.proven_count in
      let range_empty =
        match (lo, pmin) with
        | Some l, Some h -> Exec.value_order h l >= 0
        | _ -> false
      in
      let targets =
        if range_empty then []
        else
          Array.to_list topo.Sensor.Topology.children.(root)
          |> List.filter (fun ch -> not states.(ch).Proof_exec.sent_all)
      in
      let gathered =
        if targets = [] then []
        else begin
          phase2_mj :=
            !phase2_mj
            +. Sensor.Mica2.broadcast_mj mica ~receivers:(List.length targets)
                 ~bytes:request_bytes;
          incr phase2_msgs;
          List.concat_map
            (fun ch ->
              let sub = answer_request ch missing ~lo ~hi:pmin in
              let count = List.length sub in
              phase2_mj :=
                !phase2_mj +. Sensor.Cost.message_mj cost ~node:ch ~values:count;
              incr phase2_msgs;
              phase2_vals := !phase2_vals + count;
              sub)
            targets
        end
      in
      let seen = Hashtbl.create 16 in
      let merged =
        List.filter
          (fun (i, _) ->
            if Hashtbl.mem seen i then false
            else begin
              Hashtbl.replace seen i ();
              true
            end)
          (List.sort Exec.value_order (root_state.Proof_exec.retrieved @ gathered))
      in
      take k merged
    end
  in
  {
    answer;
    proven_after_phase1 = phase1.Proof_exec.proven_count;
    phase1_mj = phase1.Proof_exec.collection_mj;
    phase2_mj = !phase2_mj;
    phase1_messages = phase1.Proof_exec.messages;
    phase2_messages = !phase2_msgs;
    phase2_values = !phase2_vals;
  }

type t = {
  values : float array;
  touched : bool array;
  mutable stack : int list;
  dim : int;
}

let create dim =
  { values = Array.make dim 0.; touched = Array.make dim false; stack = []; dim }

let dim t = t.dim

let get t i = t.values.(i)

let touch t i =
  if not t.touched.(i) then begin
    t.touched.(i) <- true;
    t.stack <- i :: t.stack
  end

let set t i x =
  touch t i;
  t.values.(i) <- x

let add t i x =
  touch t i;
  t.values.(i) <- t.values.(i) +. x

let scatter t v = Sparse_vec.iter (fun i x -> add t i x) v

let scatter_scaled t a v = Sparse_vec.iter (fun i x -> add t i (a *. x)) v

let iter_touched t f = List.iter (fun i -> f i t.values.(i)) t.stack

let sweep t =
  List.iter
    (fun i ->
      t.values.(i) <- 0.;
      t.touched.(i) <- false)
    t.stack;
  t.stack <- []

let to_sparse ?(drop = 1e-12) t =
  let entries = ref [] in
  iter_touched t (fun i x ->
      if Float.abs x > drop then entries := (i, x) :: !entries);
  let v = Sparse_vec.of_assoc !entries in
  sweep t;
  v

(* Gaussian elimination on a hash-based sparse working matrix.
   Invariants maintained during elimination:
   - [values] holds exactly the non-zero entries of the remaining (active)
     submatrix, keyed by [row * dim + col];
   - [row_set.(r)] / [col_set.(c)] are the active column/row index sets of
     row [r] / column [c], consistent with [values];
   - eliminated rows and columns are absent from all three structures. *)

type step = {
  pivot_row : int;
  pivot_col : int;
  pivot_val : float;
  (* Multipliers of the L factor: row_r <- row_r -. f *. row_{pivot_row}. *)
  l_rows : int array;
  l_factors : float array;
  (* Remaining entries of the pivot row (the U row), pivot excluded. *)
  u_cols : int array;
  u_vals : float array;
}

type t = {
  dim : int;
  steps : step array;
  (* For the transpose solve: [u_by_step.(k)] lists [(j, v)] with [j < k]
     such that U has entry [v] at (row of step j, pivot column of step k). *)
  u_by_step : (int * float) array array;
}

exception Singular of int

let drop_tol = 1e-13
let abs_pivot_tol = 1e-11
let threshold = 0.01

let key dim r c = (r * dim) + c

let factor ~dim cols =
  if Array.length cols <> dim then invalid_arg "Lu.factor: column count";
  let values : (int, float) Hashtbl.t = Hashtbl.create (dim * 4) in
  let row_set = Array.init dim (fun _ -> Hashtbl.create 4) in
  let col_set = Array.init dim (fun _ -> Hashtbl.create 4) in
  let insert r c v =
    Hashtbl.replace values (key dim r c) v;
    Hashtbl.replace row_set.(r) c ();
    Hashtbl.replace col_set.(c) r ()
  in
  let remove r c =
    Hashtbl.remove values (key dim r c);
    Hashtbl.remove row_set.(r) c;
    Hashtbl.remove col_set.(c) r
  in
  Array.iteri
    (fun c v -> Sparse_vec.iter (fun r x -> insert r c x) v)
    cols;
  let row_active = Array.make dim true in
  let col_active = Array.make dim true in
  (* Stacks of candidate singleton rows/columns; entries are revalidated
     when popped, so stale entries are harmless. *)
  let singleton_cols = ref [] in
  let singleton_rows = ref [] in
  for i = 0 to dim - 1 do
    if Hashtbl.length col_set.(i) = 1 then
      singleton_cols := i :: !singleton_cols;
    if Hashtbl.length row_set.(i) = 1 then
      singleton_rows := i :: !singleton_rows
  done;
  let col_max c =
    Hashtbl.fold
      (fun r () acc ->
        let a = Float.abs (Hashtbl.find values (key dim r c)) in
        if a > acc then a else acc)
      col_set.(c) 0.
  in
  (* Pop a valid singleton column (count 1, acceptable pivot magnitude). *)
  let rec pop_singleton_col () =
    match !singleton_cols with
    | [] -> None
    | c :: rest ->
        singleton_cols := rest;
        if col_active.(c) && Hashtbl.length col_set.(c) = 1 then begin
          let r = Hashtbl.fold (fun r () _ -> r) col_set.(c) (-1) in
          let v = Hashtbl.find values (key dim r c) in
          if Float.abs v > abs_pivot_tol then Some (r, c, v)
          else pop_singleton_col ()
        end
        else pop_singleton_col ()
  in
  let rec pop_singleton_row () =
    match !singleton_rows with
    | [] -> None
    | r :: rest ->
        singleton_rows := rest;
        if row_active.(r) && Hashtbl.length row_set.(r) = 1 then begin
          let c = Hashtbl.fold (fun c () _ -> c) row_set.(r) (-1) in
          let v = Hashtbl.find values (key dim r c) in
          (* A row singleton must still respect threshold pivoting within
             its column to bound element growth. *)
          if
            Float.abs v > abs_pivot_tol
            && Float.abs v >= threshold *. col_max c
          then Some (r, c, v)
          else pop_singleton_row ()
        end
        else pop_singleton_row ()
  in
  (* Full Markowitz scan: minimize (row_count-1)*(col_count-1) over entries
     with acceptable magnitude.  Only used when no singleton exists. *)
  let markowitz_scan step =
    let best = ref None in
    let best_cost = ref max_int in
    for c = 0 to dim - 1 do
      if col_active.(c) then begin
        let cc = Hashtbl.length col_set.(c) in
        if cc > 0 && (cc - 1) < !best_cost then begin
          let cmax = col_max c in
          Hashtbl.iter
            (fun r () ->
              let rc = Hashtbl.length row_set.(r) in
              let cost = (rc - 1) * (cc - 1) in
              if cost < !best_cost then begin
                let v = Hashtbl.find values (key dim r c) in
                if
                  Float.abs v > abs_pivot_tol
                  && Float.abs v >= threshold *. cmax
                then begin
                  best := Some (r, c, v);
                  best_cost := cost
                end
              end)
            col_set.(c)
        end
      end
    done;
    match !best with
    | Some pivot -> pivot
    | None -> raise (Singular step)
  in
  let steps = Array.make dim None in
  for k = 0 to dim - 1 do
    let r_hat, c_hat, v_hat =
      match pop_singleton_col () with
      | Some p -> p
      | None -> (
          match pop_singleton_row () with
          | Some p -> p
          | None -> markowitz_scan k)
    in
    (* Snapshot the pivot row (U row), pivot excluded. *)
    let u_entries = ref [] in
    Hashtbl.iter
      (fun c () ->
        if c <> c_hat then
          u_entries := (c, Hashtbl.find values (key dim r_hat c)) :: !u_entries)
      row_set.(r_hat);
    let u_entries = !u_entries in
    (* Eliminate every other row having an entry in the pivot column. *)
    let elim_rows = ref [] in
    Hashtbl.iter
      (fun r () -> if r <> r_hat then elim_rows := r :: !elim_rows)
      col_set.(c_hat);
    let l_entries = ref [] in
    List.iter
      (fun r ->
        let f = Hashtbl.find values (key dim r c_hat) /. v_hat in
        l_entries := (r, f) :: !l_entries;
        remove r c_hat;
        List.iter
          (fun (c, u) ->
            let k' = key dim r c in
            match Hashtbl.find_opt values k' with
            | Some old ->
                let next = old -. (f *. u) in
                if Float.abs next <= drop_tol then begin
                  remove r c;
                  if Hashtbl.length col_set.(c) = 1 then
                    singleton_cols := c :: !singleton_cols;
                  if Hashtbl.length row_set.(r) = 1 then
                    singleton_rows := r :: !singleton_rows
                end
                else Hashtbl.replace values k' next
            | None ->
                let next = -.f *. u in
                if Float.abs next > drop_tol then insert r c next)
          u_entries;
        if Hashtbl.length row_set.(r) = 1 then
          singleton_rows := r :: !singleton_rows)
      !elim_rows;
    (* Retire the pivot row and column. *)
    List.iter
      (fun (c, _) ->
        remove r_hat c;
        if Hashtbl.length col_set.(c) = 1 then
          singleton_cols := c :: !singleton_cols)
      u_entries;
    remove r_hat c_hat;
    row_active.(r_hat) <- false;
    col_active.(c_hat) <- false;
    let l_rows = Array.of_list (List.map fst !l_entries) in
    let l_factors = Array.of_list (List.map snd !l_entries) in
    let u_cols = Array.of_list (List.map fst u_entries) in
    let u_vals = Array.of_list (List.map snd u_entries) in
    steps.(k) <-
      Some
        {
          pivot_row = r_hat;
          pivot_col = c_hat;
          pivot_val = v_hat;
          l_rows;
          l_factors;
          u_cols;
          u_vals;
        }
  done;
  let steps =
    Array.map
      (function Some s -> s | None -> assert false)
      steps
  in
  (* Index the U entries by the step at which their column is pivoted. *)
  let step_of_col = Array.make dim (-1) in
  Array.iteri (fun k s -> step_of_col.(s.pivot_col) <- k) steps;
  let u_by_step = Array.make dim [] in
  Array.iteri
    (fun j s ->
      Array.iteri
        (fun p c ->
          let k = step_of_col.(c) in
          u_by_step.(k) <- (j, s.u_vals.(p)) :: u_by_step.(k))
        s.u_cols)
    steps;
  { dim; steps; u_by_step = Array.map Array.of_list u_by_step }

let dim t = t.dim

let solve t b =
  let n = t.dim in
  let b = Array.copy b in
  (* Forward: apply the recorded row operations to b. *)
  for k = 0 to n - 1 do
    let s = t.steps.(k) in
    let br = b.(s.pivot_row) in
    if br <> 0. then
      for p = 0 to Array.length s.l_rows - 1 do
        b.(s.l_rows.(p)) <- b.(s.l_rows.(p)) -. (s.l_factors.(p) *. br)
      done
  done;
  (* Backward: solve U x = b in reverse pivot order. *)
  let x = Array.make n 0. in
  for k = n - 1 downto 0 do
    let s = t.steps.(k) in
    let acc = ref b.(s.pivot_row) in
    for p = 0 to Array.length s.u_cols - 1 do
      acc := !acc -. (s.u_vals.(p) *. x.(s.u_cols.(p)))
    done;
    x.(s.pivot_col) <- !acc /. s.pivot_val
  done;
  x

let solve_transpose t c =
  let n = t.dim in
  let z = Array.make n 0. in
  (* Forward: solve U^T z = c in pivot order. *)
  for k = 0 to n - 1 do
    let s = t.steps.(k) in
    let acc = ref c.(s.pivot_col) in
    let deps = t.u_by_step.(k) in
    for p = 0 to Array.length deps - 1 do
      let j, v = deps.(p) in
      acc := !acc -. (v *. z.(t.steps.(j).pivot_row))
    done;
    z.(s.pivot_row) <- !acc /. s.pivot_val
  done;
  (* Backward: apply the transposed row operations in reverse. *)
  for k = n - 1 downto 0 do
    let s = t.steps.(k) in
    let acc = ref 0. in
    for p = 0 to Array.length s.l_rows - 1 do
      acc := !acc +. (s.l_factors.(p) *. z.(s.l_rows.(p)))
    done;
    z.(s.pivot_row) <- z.(s.pivot_row) -. !acc
  done;
  z

let fill_nnz t =
  Array.fold_left
    (fun acc s -> acc + 1 + Array.length s.l_rows + Array.length s.u_cols)
    0 t.steps

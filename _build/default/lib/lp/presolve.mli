(** Presolve: cheap problem reductions applied before the simplex.

    The planning LPs contain many rows and columns that can be removed
    without changing the optimum:
    - fixed variables (lower = upper) are substituted out;
    - empty rows are checked for consistency and dropped;
    - empty columns are set to their best bound (or detected unbounded);
    - singleton rows ([a x_j <= b] etc.) are turned into bounds on [x_j].

    [apply] returns the reduced problem plus a postsolve function mapping a
    reduced solution vector back to the original column space. *)

type outcome =
  | Reduced of Problem.t * (float array -> float array)
      (** reduced problem and the postsolve mapping *)
  | Infeasible_detected
  | Unbounded_detected

val apply : Problem.t -> outcome

val stats : Problem.t -> Problem.t -> string
(** Human-readable summary of the reduction (rows/cols/nnz before/after). *)

type outcome =
  | Reduced of Problem.t * (float array -> float array)
  | Infeasible_detected
  | Unbounded_detected

exception Infeasible

exception Unbounded

let tol = 1e-9

let apply prob =
  let m = prob.Problem.nrows and n = prob.Problem.ncols in
  let lower = Array.copy prob.Problem.lower in
  let upper = Array.copy prob.Problem.upper in
  let rhs = Array.copy prob.Problem.rhs in
  let fixed = Array.make n None in
  let row_alive = Array.make m true in
  (* Row-wise view of the live submatrix. *)
  let rows = Array.make m [] in
  Array.iteri
    (fun j col ->
      Sparse_vec.iter (fun i a -> rows.(i) <- (j, a) :: rows.(i)) col)
    prob.Problem.cols;
  let fix j v =
    if v < lower.(j) -. tol || v > upper.(j) +. tol then raise Infeasible;
    fixed.(j) <- Some v;
    (* Move the column's contribution into the right-hand sides. *)
    Sparse_vec.iter
      (fun i a -> if row_alive.(i) then rhs.(i) <- rhs.(i) -. (a *. v))
      prob.Problem.cols.(j)
  in
  let try_round () =
    let changed = ref false in
    (* Fix variables whose bounds have collapsed. *)
    for j = 0 to n - 1 do
      if fixed.(j) = None && upper.(j) -. lower.(j) <= tol then begin
        fix j lower.(j);
        changed := true
      end
    done;
    (* Fix empty (or fully-substituted) columns at their best bound. *)
    for j = 0 to n - 1 do
      if fixed.(j) = None then begin
        let live_entries =
          Sparse_vec.fold
            (fun acc i _ -> if row_alive.(i) then acc + 1 else acc)
            0 prob.Problem.cols.(j)
        in
        if live_entries = 0 then begin
          let c = prob.Problem.obj.(j) in
          let v =
            if c > tol then
              if lower.(j) > neg_infinity then lower.(j) else raise Unbounded
            else if c < -.tol then
              if upper.(j) < infinity then upper.(j) else raise Unbounded
            else if lower.(j) > neg_infinity then lower.(j)
            else if upper.(j) < infinity then upper.(j)
            else 0.
          in
          fix j v;
          changed := true
        end
      end
    done;
    (* Row reductions. *)
    for i = 0 to m - 1 do
      if row_alive.(i) then begin
        rows.(i) <- List.filter (fun (j, _) -> fixed.(j) = None) rows.(i);
        match rows.(i) with
        | [] ->
            if Float.abs rhs.(i) > 1e-7 then raise Infeasible;
            row_alive.(i) <- false;
            changed := true
        | [ (j, a) ] ->
            (* Singleton equality row pins the variable. *)
            let v = rhs.(i) /. a in
            if v < lower.(j) -. 1e-7 || v > upper.(j) +. 1e-7 then
              raise Infeasible;
            lower.(j) <- v;
            upper.(j) <- v;
            row_alive.(i) <- false;
            changed := true
        | _ :: _ :: _ -> ()
      end
    done;
    !changed
  in
  match
    let continue_ = ref true in
    while !continue_ do
      continue_ := try_round ()
    done
  with
  | exception Infeasible -> Infeasible_detected
  | exception Unbounded -> Unbounded_detected
  | () ->
      (* Build the reduced problem over surviving rows and columns. *)
      let row_map = Array.make m (-1) in
      let new_m = ref 0 in
      for i = 0 to m - 1 do
        if row_alive.(i) then begin
          row_map.(i) <- !new_m;
          incr new_m
        end
      done;
      let col_map = Array.make n (-1) in
      let kept_cols = ref [] in
      for j = n - 1 downto 0 do
        if fixed.(j) = None then kept_cols := j :: !kept_cols
      done;
      List.iteri (fun j' j -> col_map.(j) <- j') !kept_cols;
      let kept = Array.of_list !kept_cols in
      let new_n = Array.length kept in
      let cols =
        Array.map
          (fun j ->
            Sparse_vec.of_assoc
              (Sparse_vec.fold
                 (fun acc i a ->
                   if row_alive.(i) then (row_map.(i), a) :: acc else acc)
                 [] prob.Problem.cols.(j)))
          kept
      in
      let new_rhs = Array.make !new_m 0. in
      for i = 0 to m - 1 do
        if row_alive.(i) then new_rhs.(row_map.(i)) <- rhs.(i)
      done;
      let basis_hint =
        Option.map
          (fun hint ->
            let h = Array.make !new_m (-1) in
            for i = 0 to m - 1 do
              if row_alive.(i) && hint.(i) >= 0 && col_map.(hint.(i)) >= 0
              then h.(row_map.(i)) <- col_map.(hint.(i))
            done;
            h)
          prob.Problem.basis_hint
      in
      let reduced =
        {
          Problem.nrows = !new_m;
          ncols = new_n;
          cols;
          obj = Array.map (fun j -> prob.Problem.obj.(j)) kept;
          lower = Array.map (fun j -> lower.(j)) kept;
          upper = Array.map (fun j -> upper.(j)) kept;
          rhs = new_rhs;
          basis_hint;
        }
      in
      let postsolve x_reduced =
        Array.init n (fun j ->
            match fixed.(j) with
            | Some v -> v
            | None -> x_reduced.(col_map.(j)))
      in
      Reduced (reduced, postsolve)

let stats before after =
  Printf.sprintf "presolve: rows %d -> %d, cols %d -> %d, nnz %d -> %d"
    before.Problem.nrows after.Problem.nrows before.Problem.ncols
    after.Problem.ncols (Problem.nnz before) (Problem.nnz after)

(** Sparse accumulator ("SPA"): a dense work vector with an explicit list of
    touched positions, allowing repeated sparse gather/scatter operations in
    O(nnz) instead of O(dimension).

    A single accumulator is typically reused across all iterations of a
    solve; [sweep] (or [to_sparse]) resets it for the next use. *)

type t

val create : int -> t
(** [create dim] allocates an accumulator over indices [0 .. dim-1]. *)

val dim : t -> int

val get : t -> int -> float

val set : t -> int -> float -> unit

val add : t -> int -> float -> unit
(** [add t i x] accumulates [x] into position [i]. *)

val scatter : t -> Sparse_vec.t -> unit
(** [scatter t v] adds every entry of [v] into the accumulator. *)

val scatter_scaled : t -> float -> Sparse_vec.t -> unit
(** [scatter_scaled t a v] adds [a *. v] into the accumulator. *)

val iter_touched : t -> (int -> float -> unit) -> unit
(** Visit every touched position (including any that cancelled to zero). *)

val to_sparse : ?drop:float -> t -> Sparse_vec.t
(** Extract the touched entries with magnitude above [drop] (default
    [1e-12]) as a sparse vector, then reset the accumulator. *)

val sweep : t -> unit
(** Reset all touched positions to zero. *)

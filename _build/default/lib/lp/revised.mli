(** Revised simplex method with bounded variables.

    Solves a {!Problem.t} (minimization over [A x = rhs], [l <= x <= u])
    using the revised simplex method: the basis inverse is maintained as a
    sparse {!Lu} factorization refreshed periodically, with product-form eta
    updates in between.  Infeasible starting bases are handled by an
    artificial-variable phase 1.  Dantzig pricing with an automatic switch
    to Bland's rule under sustained degeneracy guarantees termination. *)

type status = Optimal | Infeasible | Unbounded | Iteration_limit

type stats = {
  iterations : int;           (** total simplex pivots (both phases) *)
  phase1_iterations : int;
  refactorizations : int;
  degenerate_pivots : int;
  bound_flips : int;
}

type result = {
  status : status;
  x : float array;
      (** primal values for the problem's columns (length [ncols]);
          meaningful when [status = Optimal] *)
  objective : float;  (** objective value of [x] *)
  duals : float array;
      (** row dual values [y] with [B^T y = c_B] at the final basis *)
  stats : stats;
}

val solve :
  ?max_iterations:int ->
  ?feas_tol:float ->
  ?opt_tol:float ->
  ?refactor_interval:int ->
  Problem.t ->
  result
(** Solve the problem.  Defaults: [max_iterations = 200_000],
    [feas_tol = 1e-7], [opt_tol = 1e-7], [refactor_interval = 64]. *)

val pp_status : Format.formatter -> status -> unit

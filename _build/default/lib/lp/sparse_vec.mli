(** Immutable sparse vectors indexed by [int], sorted by index.

    Used for the columns of constraint matrices.  Indices are strictly
    increasing and values are non-zero (entries below a drop tolerance are
    removed at construction). *)

type t = private {
  idx : int array;    (** strictly increasing indices *)
  value : float array; (** same length as [idx]; all non-zero *)
}

val empty : t

val nnz : t -> int
(** Number of stored entries. *)

val of_assoc : (int * float) list -> t
(** Build from an unsorted association list.  Duplicate indices are summed;
    entries with magnitude below [1e-12] are dropped.
    @raise Invalid_argument on a negative index. *)

val of_arrays : int array -> float array -> t
(** Adopt pre-sorted arrays (checked).  The arrays are not copied. *)

val to_assoc : t -> (int * float) list

val get : t -> int -> float
(** [get v i] is the coefficient at index [i] (0. when absent);
    binary search, O(log nnz). *)

val dot_dense : t -> float array -> float
(** [dot_dense v d] is the inner product with the dense array [d]. *)

val axpy_dense : float -> t -> float array -> unit
(** [axpy_dense a v d] performs [d.(i) <- d.(i) +. a *. v.(i)] for each
    stored entry. *)

val iter : (int -> float -> unit) -> t -> unit

val fold : ('a -> int -> float -> 'a) -> 'a -> t -> 'a

val map_values : (float -> float) -> t -> t
(** Apply a function to every stored value; entries mapped to (near-)zero
    are dropped. *)

val max_abs : t -> float
(** Largest entry magnitude, 0. for the empty vector. *)

val scale : float -> t -> t

val pp : Format.formatter -> t -> unit

let src = Logs.Src.create "lp.revised" ~doc:"Revised simplex"

module Log = (val Logs.src_log src : Logs.LOG)

type status = Optimal | Infeasible | Unbounded | Iteration_limit

type stats = {
  iterations : int;
  phase1_iterations : int;
  refactorizations : int;
  degenerate_pivots : int;
  bound_flips : int;
}

type result = {
  status : status;
  x : float array;
  objective : float;
  duals : float array;
  stats : stats;
}

let pp_status ppf = function
  | Optimal -> Format.pp_print_string ppf "optimal"
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | Iteration_limit -> Format.pp_print_string ppf "iteration-limit"

(* Eta update for the product-form basis inverse.  [rows]/[vals] are the
   entries of the pivot (FTRAN) column w excluding the pivot slot. *)
type eta = { slot : int; wp : float; rows : int array; vals : float array }

type state = {
  prob : Problem.t;
  m : int;  (* rows *)
  ntot : int;  (* structural+slack columns plus m artificials *)
  cols : Sparse_vec.t array;  (* length ntot *)
  lower : float array;
  upper : float array;
  xval : float array;
  basis : int array;  (* slot -> variable *)
  where : int array;  (* variable -> slot, or -1 if nonbasic *)
  at_upper : bool array;  (* for nonbasic variables *)
  mutable lu : Lu.t;
  mutable etas : eta list;  (* oldest first *)
  mutable n_etas : int;
  mutable iterations : int;
  mutable phase1_iterations : int;
  mutable refactorizations : int;
  mutable degenerate_pivots : int;
  mutable bound_flips : int;
  mutable consecutive_degenerate : int;
  mutable bland : bool;
  feas_tol : float;
  opt_tol : float;
  refactor_interval : int;
}

let is_free st j =
  st.lower.(j) = neg_infinity && st.upper.(j) = infinity

let is_fixed st j = st.lower.(j) = st.upper.(j)

(* Apply B^{-1} to a dense row-indexed vector, yielding a slot-indexed one. *)
let ftran st v =
  let v = Lu.solve st.lu v in
  List.iter
    (fun e ->
      let t = v.(e.slot) /. e.wp in
      v.(e.slot) <- t;
      if t <> 0. then
        for p = 0 to Array.length e.rows - 1 do
          v.(e.rows.(p)) <- v.(e.rows.(p)) -. (e.vals.(p) *. t)
        done)
    st.etas;
  v

(* Apply B^{-T} to a dense slot-indexed vector, yielding a row-indexed one.
   Etas are applied newest-first, then the LU transpose solve. *)
let btran st c =
  let c = Array.copy c in
  let apply e =
    let acc = ref 0. in
    for p = 0 to Array.length e.rows - 1 do
      acc := !acc +. (e.vals.(p) *. c.(e.rows.(p)))
    done;
    c.(e.slot) <- (c.(e.slot) -. !acc) /. e.wp
  in
  List.iter apply (List.rev st.etas);
  Lu.solve_transpose st.lu c

let refactorize st =
  let basis_cols = Array.map (fun j -> st.cols.(j)) st.basis in
  st.lu <- Lu.factor ~dim:st.m basis_cols;
  st.etas <- [];
  st.n_etas <- 0;
  st.refactorizations <- st.refactorizations + 1;
  (* Recompute the basic values from scratch to purge accumulated drift. *)
  let r = Array.copy st.prob.Problem.rhs in
  for j = 0 to st.ntot - 1 do
    if st.where.(j) < 0 && st.xval.(j) <> 0. then
      Sparse_vec.axpy_dense (-.st.xval.(j)) st.cols.(j) r
  done;
  let xb = Lu.solve st.lu r in
  Array.iteri (fun slot j -> st.xval.(j) <- xb.(slot)) st.basis

(* Choose the entering variable under the current objective [c].
   Returns [Some (j, dir)] where [dir] is +1. (increase from lower/free) or
   -1. (decrease from upper/free), or [None] at optimality. *)
let price st c banned =
  let y = btran st (Array.map (fun j -> c.(j)) st.basis) in
  let best = ref None in
  let best_score = ref st.opt_tol in
  (try
     for j = 0 to st.ntot - 1 do
       if st.where.(j) < 0 && (not (is_fixed st j)) && not (List.mem j banned)
       then begin
         let d = c.(j) -. Sparse_vec.dot_dense st.cols.(j) y in
         let candidate =
           if is_free st j then
             if d < -.st.opt_tol then Some (j, 1., -.d)
             else if d > st.opt_tol then Some (j, -1., d)
             else None
           else if st.at_upper.(j) then
             if d > st.opt_tol then Some (j, -1., d) else None
           else if d < -.st.opt_tol then Some (j, 1., -.d)
           else None
         in
         match candidate with
         | None -> ()
         | Some (j, dir, score) ->
             if st.bland then begin
               (* Bland: first eligible index. *)
               best := Some (j, dir);
               raise Exit
             end
             else if score > !best_score then begin
               best := Some (j, dir);
               best_score := score
             end
       end
     done
   with Exit -> ());
  !best

type ratio_outcome =
  | Flip
  | Pivot of { slot : int; t : float; to_upper : bool }
  | Ray  (* unbounded direction *)

(* Bounded-variable ratio test for entering variable [q] moving in
   direction [dir] with FTRAN column [w]. *)
let ratio_test st q dir w =
  let pivot_tol = 1e-9 in
  let t_flip = st.upper.(q) -. st.lower.(q) in
  let best_t = ref infinity in
  let best_slot = ref (-1) in
  let best_to_upper = ref false in
  let best_wabs = ref 0. in
  for slot = 0 to st.m - 1 do
    let wv = w.(slot) in
    if Float.abs wv > pivot_tol then begin
      let i = st.basis.(slot) in
      let delta = dir *. wv in
      let t, to_upper =
        if delta > 0. then
          (* basic variable decreases towards its lower bound *)
          if st.lower.(i) = neg_infinity then (infinity, false)
          else (Float.max 0. (st.xval.(i) -. st.lower.(i)) /. delta, false)
        else if st.upper.(i) = infinity then (infinity, true)
        else (Float.max 0. (st.upper.(i) -. st.xval.(i)) /. -.delta, true)
      in
      let wabs = Float.abs wv in
      let better =
        if st.bland then
          t < !best_t -. 1e-12
          || (t <= !best_t +. 1e-12 && (!best_slot < 0 || i < st.basis.(!best_slot)))
        else
          t < !best_t -. 1e-12 || (t <= !best_t +. 1e-12 && wabs > !best_wabs)
      in
      if t < infinity && better then begin
        best_t := t;
        best_slot := slot;
        best_to_upper := to_upper;
        best_wabs := wabs
      end
    end
  done;
  if !best_slot < 0 && t_flip = infinity then Ray
  else if t_flip <= !best_t then Flip
  else Pivot { slot = !best_slot; t = !best_t; to_upper = !best_to_upper }

let apply_flip st q dir w =
  let range = st.upper.(q) -. st.lower.(q) in
  let delta = dir *. range in
  for slot = 0 to st.m - 1 do
    if w.(slot) <> 0. then begin
      let i = st.basis.(slot) in
      st.xval.(i) <- st.xval.(i) -. (delta *. w.(slot))
    end
  done;
  st.at_upper.(q) <- not st.at_upper.(q);
  st.xval.(q) <- (if st.at_upper.(q) then st.upper.(q) else st.lower.(q));
  st.bound_flips <- st.bound_flips + 1

let apply_pivot st q dir w slot t to_upper =
  let leaving = st.basis.(slot) in
  for s = 0 to st.m - 1 do
    if w.(s) <> 0. then begin
      let i = st.basis.(s) in
      st.xval.(i) <- st.xval.(i) -. (t *. dir *. w.(s))
    end
  done;
  st.xval.(q) <- st.xval.(q) +. (t *. dir);
  (* Land the leaving variable exactly on its bound. *)
  st.xval.(leaving) <-
    (if to_upper then st.upper.(leaving) else st.lower.(leaving));
  st.where.(leaving) <- -1;
  st.at_upper.(leaving) <- to_upper;
  st.basis.(slot) <- q;
  st.where.(q) <- slot;
  (* Record the eta factor. *)
  let rows = ref [] in
  for s = 0 to st.m - 1 do
    if s <> slot && Float.abs w.(s) > 1e-12 then rows := (s, w.(s)) :: !rows
  done;
  let eta =
    {
      slot;
      wp = w.(slot);
      rows = Array.of_list (List.map fst !rows);
      vals = Array.of_list (List.map snd !rows);
    }
  in
  st.etas <- st.etas @ [ eta ];
  st.n_etas <- st.n_etas + 1;
  if t <= 1e-10 then begin
    st.degenerate_pivots <- st.degenerate_pivots + 1;
    st.consecutive_degenerate <- st.consecutive_degenerate + 1
  end
  else st.consecutive_degenerate <- 0;
  if st.consecutive_degenerate > 2000 && not st.bland then begin
    Log.debug (fun f -> f "switching to Bland's rule after degeneracy");
    st.bland <- true
  end;
  if st.n_etas >= st.refactor_interval then refactorize st

(* Run the simplex loop with objective [c] until optimality or trouble.
   [phase1] only affects iteration bookkeeping. *)
let optimize st c ~phase1 ~max_iterations =
  let rec loop banned =
    if st.iterations >= max_iterations then Iteration_limit
    else
      match price st c banned with
      | None -> Optimal
      | Some (q, dir) -> (
          let aq = Array.make st.m 0. in
          Sparse_vec.iter (fun i x -> aq.(i) <- x) st.cols.(q);
          let w = ftran st aq in
          match ratio_test st q dir w with
          | Ray -> if phase1 then Optimal (* cannot happen; be safe *) else Unbounded
          | Flip ->
              st.iterations <- st.iterations + 1;
              if phase1 then st.phase1_iterations <- st.phase1_iterations + 1;
              apply_flip st q dir w;
              loop []
          | Pivot { slot; t; to_upper } ->
              if Float.abs w.(slot) < 1e-7 && st.n_etas > 0 then begin
                (* Numerically dubious pivot: refactorize and retry. *)
                refactorize st;
                loop banned
              end
              else if Float.abs w.(slot) < 1e-9 then
                (* Still tiny with a fresh factorization: avoid this column. *)
                loop (q :: banned)
              else begin
                st.iterations <- st.iterations + 1;
                if phase1 then
                  st.phase1_iterations <- st.phase1_iterations + 1;
                apply_pivot st q dir w slot t to_upper;
                loop []
              end)
  in
  loop []

let solve ?(max_iterations = 200_000) ?(feas_tol = 1e-7) ?(opt_tol = 1e-7)
    ?(refactor_interval = 64) prob =
  Problem.validate prob;
  let m = prob.Problem.nrows and n = prob.Problem.ncols in
  let ntot = n + m in
  let cols = Array.make ntot Sparse_vec.empty in
  Array.blit prob.Problem.cols 0 cols 0 n;
  for i = 0 to m - 1 do
    cols.(n + i) <- Sparse_vec.of_assoc [ (i, 1.) ]
  done;
  let lower = Array.make ntot 0. and upper = Array.make ntot 0. in
  Array.blit prob.Problem.lower 0 lower 0 n;
  Array.blit prob.Problem.upper 0 upper 0 n;
  let xval = Array.make ntot 0. in
  (* Nonbasic starting point: finite lower bound if any, else finite upper,
     else 0 for free variables. *)
  let at_upper = Array.make ntot false in
  for j = 0 to n - 1 do
    if lower.(j) > neg_infinity then xval.(j) <- lower.(j)
    else if upper.(j) < infinity then begin
      xval.(j) <- upper.(j);
      at_upper.(j) <- true
    end
    else xval.(j) <- 0.
  done;
  (* Residual with hinted columns held at zero. *)
  let hint =
    match prob.Problem.basis_hint with
    | Some h -> h
    | None -> Array.make m (-1)
  in
  let hinted = Array.make n false in
  Array.iter (fun j -> if j >= 0 then hinted.(j) <- true) hint;
  let residual = Array.copy prob.Problem.rhs in
  for j = 0 to n - 1 do
    if (not hinted.(j)) && xval.(j) <> 0. then
      Sparse_vec.axpy_dense (-.xval.(j)) cols.(j) residual
  done;
  let basis = Array.make m (-1) in
  let where = Array.make ntot (-1) in
  let need_phase1 = ref false in
  for i = 0 to m - 1 do
    let r = residual.(i) in
    let h = hint.(i) in
    if h >= 0 && lower.(h) -. feas_tol <= r && r <= upper.(h) +. feas_tol
    then begin
      basis.(i) <- h;
      xval.(h) <- r;
      (* artificial for this row stays nonbasic, fixed at zero *)
      lower.(n + i) <- 0.;
      upper.(n + i) <- 0.
    end
    else begin
      (* Use the artificial; if there was a hint column it stays nonbasic at
         its initial bound value of 0 (all slack bounds include 0). *)
      basis.(i) <- n + i;
      xval.(n + i) <- r;
      if r >= 0. then begin
        lower.(n + i) <- 0.;
        upper.(n + i) <- infinity
      end
      else begin
        lower.(n + i) <- neg_infinity;
        upper.(n + i) <- 0.
      end;
      if Float.abs r > feas_tol then need_phase1 := true
    end
  done;
  Array.iteri (fun slot j -> where.(j) <- slot) basis;
  let st =
    {
      prob;
      m;
      ntot;
      cols;
      lower;
      upper;
      xval;
      basis;
      where;
      at_upper;
      lu = Lu.factor ~dim:m (Array.map (fun j -> cols.(j)) basis);
      etas = [];
      n_etas = 0;
      iterations = 0;
      phase1_iterations = 0;
      refactorizations = 0;
      degenerate_pivots = 0;
      bound_flips = 0;
      consecutive_degenerate = 0;
      bland = false;
      feas_tol;
      opt_tol;
      refactor_interval;
    }
  in
  let finish status =
    let x = Array.sub st.xval 0 n in
    let objective = Problem.objective_value prob x in
    let duals =
      btran st (Array.map (fun j -> if j < n then prob.Problem.obj.(j) else 0.) st.basis)
    in
    {
      status;
      x;
      objective;
      duals;
      stats =
        {
          iterations = st.iterations;
          phase1_iterations = st.phase1_iterations;
          refactorizations = st.refactorizations;
          degenerate_pivots = st.degenerate_pivots;
          bound_flips = st.bound_flips;
        };
    }
  in
  let phase2 () =
    let c = Array.make ntot 0. in
    Array.blit prob.Problem.obj 0 c 0 n;
    match optimize st c ~phase1:false ~max_iterations with
    | Optimal -> finish Optimal
    | Unbounded -> finish Unbounded
    | Iteration_limit -> finish Iteration_limit
    | Infeasible -> assert false
  in
  if not !need_phase1 then phase2 ()
  else begin
    (* Phase 1: minimize the total artificial infeasibility. *)
    let c1 = Array.make ntot 0. in
    for i = 0 to m - 1 do
      if st.where.(n + i) >= 0 then
        c1.(n + i) <- (if st.xval.(n + i) >= 0. then 1. else -1.)
      else c1.(n + i) <- 1.
    done;
    match optimize st c1 ~phase1:true ~max_iterations with
    | Iteration_limit -> finish Iteration_limit
    | Unbounded -> assert false
    | Infeasible -> assert false
    | Optimal ->
        let infeas = ref 0. in
        for i = 0 to m - 1 do
          infeas := !infeas +. Float.abs st.xval.(n + i)
        done;
        if !infeas > Float.max 1e-6 (st.feas_tol *. float_of_int m) then
          finish Infeasible
        else begin
          (* Pin all artificials to zero and re-optimize the true cost. *)
          for i = 0 to m - 1 do
            st.lower.(n + i) <- 0.;
            st.upper.(n + i) <- 0.;
            if st.where.(n + i) < 0 then begin
              st.xval.(n + i) <- 0.;
              st.at_upper.(n + i) <- false
            end
          done;
          phase2 ()
        end
  end

(** Export models in the CPLEX LP text format, for debugging planning
    programs with external solvers or by eye.  Only the subset needed for
    our problems is emitted (objective, constraints, bounds). *)

val to_string : Model.t -> string
(** Render the model.  Variable names are sanitized ([a-zA-Z0-9_] only,
    uniquified by index); constraints are named [c0, c1, ...]. *)

val to_channel : out_channel -> Model.t -> unit

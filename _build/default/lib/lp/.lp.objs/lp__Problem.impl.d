lib/lp/problem.ml: Array Float Printf Sparse_vec

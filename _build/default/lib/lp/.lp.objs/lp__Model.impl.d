lib/lp/model.ml: Array Dense_simplex Float Format List Presolve Problem Revised Sparse_vec

lib/lp/problem.mli: Sparse_vec

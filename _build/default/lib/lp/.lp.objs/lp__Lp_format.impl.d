lib/lp/lp_format.ml: Array Buffer List Model Printf String

lib/lp/lu.mli: Sparse_vec

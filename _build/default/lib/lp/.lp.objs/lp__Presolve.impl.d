lib/lp/presolve.ml: Array Float List Option Printf Problem Sparse_vec

lib/lp/model.mli: Format Revised

lib/lp/sparse_vec.ml: Array Float Format List

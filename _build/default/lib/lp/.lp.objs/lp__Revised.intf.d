lib/lp/revised.mli: Format Problem

lib/lp/lu.ml: Array Float Hashtbl List Sparse_vec

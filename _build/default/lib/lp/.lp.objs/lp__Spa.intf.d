lib/lp/spa.mli: Sparse_vec

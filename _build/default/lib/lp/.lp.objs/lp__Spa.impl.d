lib/lp/spa.ml: Array Float List Sparse_vec

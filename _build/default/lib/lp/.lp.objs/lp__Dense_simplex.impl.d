lib/lp/dense_simplex.ml: Array Float List

lib/lp/sparse_vec.mli: Format

lib/lp/presolve.mli: Problem

lib/lp/revised.ml: Array Float Format List Logs Lu Problem Sparse_vec

let sanitize name idx =
  let buf = Buffer.create (String.length name + 4) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  let base = Buffer.contents buf in
  let base = if base = "" || (base.[0] >= '0' && base.[0] <= '9') then "v" ^ base else base in
  Printf.sprintf "%s_%d" base idx

let term_string names terms =
  match terms with
  | [] -> "0"
  | _ ->
      String.concat " "
        (List.mapi
           (fun pos (c, v) ->
             let sign, mag =
               if c >= 0. then ((if pos = 0 then "" else "+ "), c)
               else ("- ", -.c)
             in
             Printf.sprintf "%s%.12g %s" sign mag names.(Model.var_index v))
           terms)

let to_buffer buf model =
  let n = Model.n_vars model in
  let names =
    Array.init n (fun j -> sanitize (Model.var_name model (Model.var_of_index model j)) j)
  in
  Buffer.add_string buf
    (match Model.direction model with
    | Model.Minimize -> "Minimize\n obj: "
    | Model.Maximize -> "Maximize\n obj: ");
  let obj_terms =
    List.filter (fun (c, _) -> c <> 0.)
      (List.init n (fun j ->
         let v = Model.var_of_index model j in
         (Model.obj_coeff model v, v)))
  in
  Buffer.add_string buf (term_string names obj_terms);
  Buffer.add_string buf "\nSubject To\n";
  let row = ref 0 in
  Model.iter_constraints model (fun ~name terms sense rhs ->
      let label = if name = "" then Printf.sprintf "c%d" !row else sanitize name !row in
      incr row;
      let op =
        match sense with Model.Le -> "<=" | Model.Ge -> ">=" | Model.Eq -> "="
      in
      Buffer.add_string buf
        (Printf.sprintf " %s: %s %s %.12g\n" label (term_string names terms) op
           rhs));
  Buffer.add_string buf "Bounds\n";
  for j = 0 to n - 1 do
    let lo, hi = Model.var_bounds model (Model.var_of_index model j) in
    let line =
      match (lo = neg_infinity, hi = infinity) with
      | true, true -> Printf.sprintf " %s free\n" names.(j)
      | true, false -> Printf.sprintf " -inf <= %s <= %.12g\n" names.(j) hi
      | false, true ->
          if lo = 0. then "" (* the LP-format default *)
          else Printf.sprintf " %s >= %.12g\n" names.(j) lo
      | false, false -> Printf.sprintf " %.12g <= %s <= %.12g\n" lo names.(j) hi
    in
    Buffer.add_string buf line
  done;
  Buffer.add_string buf "End\n"

let to_string model =
  let buf = Buffer.create 4096 in
  to_buffer buf model;
  Buffer.contents buf

let to_channel oc model = output_string oc (to_string model)

type 'msg api = {
  self : int;
  time : unit -> float;
  send : dst:int -> 'msg -> unit;
  broadcast_children : 'msg -> unit;
  multicast : dsts:int list -> 'msg -> unit;
  set_timer : delay:float -> (unit -> unit) -> unit;
}

type 'msg event =
  | Deliver of { dst : int; src : int; msg : 'msg }
  | Timer of { node : int; callback : unit -> unit }

type 'msg t = {
  topo : Sensor.Topology.t;
  mica : Sensor.Mica2.t;
  failure : (Sensor.Failure.t * Rng.t) option;
  payload_bytes : 'msg -> int;
  queue : 'msg event Event_queue.t;
  handlers : ('msg api -> src:int -> 'msg -> unit) option array;
  energy : float array;
  mutable now : float;
  mutable unicasts : int;
  mutable broadcasts : int;
  mutable reroutes : int;
}

(* Fixed MAC overhead per transmission, seconds. *)
let mac_delay = 0.005

let create topo mica ?failure ~payload_bytes () =
  {
    topo;
    mica;
    failure;
    payload_bytes;
    queue = Event_queue.create ();
    handlers = Array.make topo.Sensor.Topology.n None;
    energy = Array.make topo.Sensor.Topology.n 0.;
    now = 0.;
    unicasts = 0;
    broadcasts = 0;
    reroutes = 0;
  }

let on_message t ~node handler = t.handlers.(node) <- Some handler

let is_neighbor t a b =
  t.topo.Sensor.Topology.parent.(a) = b || t.topo.Sensor.Topology.parent.(b) = a

let transmission_delay t bytes =
  mac_delay +. (float_of_int bytes /. t.mica.Sensor.Mica2.bytes_per_sec)

(* The per-message cost is split between sender and receiver in proportion
   to their power draws, so ledgers sum exactly to the Mica2 unicast cost. *)
let charge_unicast t ~src ~dst ~bytes ~multiplier =
  let total = Sensor.Mica2.unicast_bytes_mj t.mica ~bytes *. multiplier in
  let s = t.mica.Sensor.Mica2.send_mw in
  let r = t.mica.Sensor.Mica2.recv_mw in
  let sender_share = s /. (s +. r) in
  t.energy.(src) <- t.energy.(src) +. (total *. sender_share);
  t.energy.(dst) <- t.energy.(dst) +. (total *. (1. -. sender_share))

let unicast t ~src ~dst msg =
  if not (is_neighbor t src dst) then
    invalid_arg
      (Printf.sprintf "Engine.send: %d and %d are not tree neighbours" src dst);
  let bytes = t.payload_bytes msg in
  (* Edge identity: the non-parent endpoint owns the edge. *)
  let edge = if t.topo.Sensor.Topology.parent.(src) = dst then src else dst in
  let multiplier, extra_delay =
    match t.failure with
    | None -> (1., 0.)
    | Some (f, rng) ->
        if Rng.float rng 1. < f.Sensor.Failure.fail_prob.(edge) then begin
          t.reroutes <- t.reroutes + 1;
          (f.Sensor.Failure.reroute_factor.(edge), transmission_delay t bytes)
        end
        else (1., 0.)
  in
  charge_unicast t ~src ~dst ~bytes ~multiplier;
  t.unicasts <- t.unicasts + 1;
  Event_queue.add t.queue
    ~time:(t.now +. transmission_delay t bytes +. extra_delay)
    (Deliver { dst; src; msg })

let broadcast_to t ~src kids msg =
  let bytes = t.payload_bytes msg in
  let cost =
    Sensor.Mica2.broadcast_mj t.mica ~receivers:(Array.length kids) ~bytes
  in
  (* The sender fronts the overhead and its bytes; receivers pay theirs. *)
  let recv_share =
    Sensor.Mica2.recv_byte_mj t.mica *. float_of_int bytes
  in
  t.energy.(src) <- t.energy.(src) +. (cost -. (recv_share *. float_of_int (Array.length kids)));
  Array.iter
    (fun child ->
      t.energy.(child) <- t.energy.(child) +. recv_share;
      Event_queue.add t.queue
        ~time:(t.now +. transmission_delay t bytes)
        (Deliver { dst = child; src; msg }))
    kids;
  t.broadcasts <- t.broadcasts + 1

let broadcast t ~src msg =
  broadcast_to t ~src t.topo.Sensor.Topology.children.(src) msg

let multicast t ~src ~dsts msg =
  List.iter
    (fun d ->
      if t.topo.Sensor.Topology.parent.(d) <> src then
        invalid_arg "Engine.multicast: destination is not a child")
    dsts;
  broadcast_to t ~src (Array.of_list dsts) msg

let api_for t node =
  {
    self = node;
    time = (fun () -> t.now);
    send = (fun ~dst msg -> unicast t ~src:node ~dst msg);
    broadcast_children = (fun msg -> broadcast t ~src:node msg);
    multicast = (fun ~dsts msg -> multicast t ~src:node ~dsts msg);
    set_timer =
      (fun ~delay callback ->
        if delay < 0. then invalid_arg "Engine.set_timer: negative delay";
        Event_queue.add t.queue ~time:(t.now +. delay)
          (Timer { node; callback }));
  }

let inject t ~node ?at msg =
  let time = match at with Some x -> x | None -> t.now in
  Event_queue.add t.queue ~time (Deliver { dst = node; src = -1; msg })

let run ?(max_events = 10_000_000) t =
  let events = ref 0 in
  let rec loop () =
    match Event_queue.pop t.queue with
    | None -> t.now
    | Some (time, event) ->
        incr events;
        if !events > max_events then
          failwith "Engine.run: event budget exceeded (livelock?)";
        t.now <- Float.max t.now time;
        (match event with
        | Timer { callback; _ } -> callback ()
        | Deliver { dst; src; msg } -> (
            match t.handlers.(dst) with
            | None -> ()
            | Some handler -> handler (api_for t dst) ~src msg));
        loop ()
  in
  loop ()

let energy_of t node = t.energy.(node)

let total_energy t = Array.fold_left ( +. ) 0. t.energy

let unicasts_sent t = t.unicasts

let broadcasts_sent t = t.broadcasts

let reroutes t = t.reroutes

lib/simnet/engine.mli: Rng Sensor

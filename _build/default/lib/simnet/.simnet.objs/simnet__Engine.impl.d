lib/simnet/engine.ml: Array Event_queue Float List Printf Rng Sensor

(** Discrete-event simulator of a mote network organized as a spanning tree.

    Nodes exchange messages only with tree neighbours (parent and
    children), matching the paper's collection/distribution phases.  The
    engine charges every transmission to per-node energy ledgers using the
    {!Sensor.Mica2} model — the same constants the planners use — so
    analytic plan costs can be validated against simulated executions.
    Transient link failures (if a {!Sensor.Failure} model is supplied) make
    the reliable protocol re-route, inflating cost and latency but never
    dropping a message.

    The engine is polymorphic in the message type; the [payload_bytes]
    function supplied at creation determines the wire size of each
    message. *)

type 'msg t

type 'msg api = {
  self : int;  (** the node running the handler *)
  time : unit -> float;  (** current simulation time, seconds *)
  send : dst:int -> 'msg -> unit;
      (** unicast to the parent or a child.
          @raise Invalid_argument if [dst] is not a tree neighbour *)
  broadcast_children : 'msg -> unit;
      (** one local broadcast heard by all children *)
  multicast : dsts:int list -> 'msg -> unit;
      (** one local broadcast heard only by the listed children (the
          others are assumed asleep and pay nothing).
          @raise Invalid_argument if some destination is not a child *)
  set_timer : delay:float -> (unit -> unit) -> unit;
}

val create :
  Sensor.Topology.t ->
  Sensor.Mica2.t ->
  ?failure:Sensor.Failure.t * Rng.t ->
  payload_bytes:('msg -> int) ->
  unit ->
  'msg t

val on_message : 'msg t -> node:int -> ('msg api -> src:int -> 'msg -> unit) -> unit
(** Install the message handler of a node (replacing any previous one).
    Messages to a node without a handler are counted but dropped. *)

val inject : 'msg t -> node:int -> ?at:float -> 'msg -> unit
(** Deliver a message to [node] from outside the network (e.g. the query
    station kicking off execution at the root); no radio energy is
    charged. *)

val run : ?max_events:int -> 'msg t -> float
(** Process events until the queue drains; returns the final simulation
    time.  @raise Failure if [max_events] (default 10_000_000) is
    exceeded, which indicates a protocol that never quiesces. *)

val energy_of : 'msg t -> int -> float
(** Total energy charged to one node so far, mJ. *)

val total_energy : 'msg t -> float

val unicasts_sent : 'msg t -> int

val broadcasts_sent : 'msg t -> int

val reroutes : 'msg t -> int
(** Number of transmissions that hit a transient failure and paid the
    re-routing premium. *)

type t = {
  layout : Sensor.Placement.t;
  topo : Sensor.Topology.t;
  cost : Sensor.Cost.t;
  mica : Sensor.Mica2.t;
  samples : Sampling.Sample_set.t;
  test_epochs : float array array;
  k : int;
}

let mica = Sensor.Mica2.default

let finish rng layout topo field ~k ~n_samples ~n_test =
  let cost = Sensor.Cost.of_mica2 topo mica in
  let samples = Sampling.Sample_set.draw rng field ~k ~count:n_samples in
  let test_epochs =
    Array.init n_test (fun _ -> field.Sampling.Field.draw rng)
  in
  { layout; topo; cost; mica; samples; test_epochs; k }

let uniform_gaussian ~seed ~n ~k ~n_samples ~n_test ?(mean_lo = 20.)
    ?(mean_hi = 26.) ?(sigma_lo = 1.5) ?(sigma_hi = 5.) () =
  let rng = Rng.create seed in
  let layout = Sensor.Placement.uniform rng ~n ~width:200. ~height:200. () in
  let range = Sensor.Topology.min_connecting_range layout *. 1.1 in
  let topo = Sensor.Topology.build layout ~range in
  let field =
    Sampling.Field.random_gaussian rng ~n ~mean_lo ~mean_hi ~sigma_lo ~sigma_hi
  in
  finish rng layout topo field ~k ~n_samples ~n_test

let contention ~seed ~n_zones ~per_zone ~background ~k ~n_samples ~n_test
    ?(exceed_prob = 0.4) () =
  let rng = Rng.create seed in
  let layout =
    Sensor.Placement.zones rng ~n_zones ~per_zone ~background ~width:200.
      ~height:200. ()
  in
  let range = Sensor.Topology.min_connecting_range layout *. 1.1 in
  let topo = Sensor.Topology.build layout ~range in
  let field =
    Sampling.Field.contention_zones ~zone:layout.Sensor.Placement.zone
      ~background_mean:20. ~background_sigma:0.5 ~exceed_prob ~mean_gap:2.
  in
  finish rng layout topo field ~k ~n_samples ~n_test

let intel_lab ~seed ~k ~n_samples ~n_test () =
  let rng = Rng.create seed in
  let lab = Sampling.Intel_lab.generate rng ~epochs:(n_samples + n_test) () in
  let layout = lab.Sampling.Intel_lab.layout in
  (* The paper shortens the radio range to the minimum that still yields a
     fully connected tree, to force hierarchy onto the small lab. *)
  let range = Sensor.Topology.min_connecting_range layout +. 1e-9 in
  let topo = Sensor.Topology.build layout ~range in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let samples =
    Sampling.Sample_set.of_values ~k
      (Sampling.Intel_lab.training_epochs lab ~count:n_samples)
  in
  let test_epochs = Sampling.Intel_lab.test_epochs lab ~from_:n_samples in
  { layout; topo; cost; mica; samples; test_epochs; k }

let replan_samples t samples = { t with samples }

let run ?(quick = false) ~seed () =
  let n = if quick then 50 else 90 in
  let s =
    Setup.uniform_gaussian ~seed ~n ~k:10
      ~n_samples:(if quick then 12 else 25)
      ~n_test:(if quick then 10 else 25)
      ()
  in
  let anchor = Planner_eval.naive_k_cost s in
  let fractions =
    if quick then [ 0.1; 0.25; 0.5 ] else [ 0.05; 0.1; 0.2; 0.35; 0.5; 0.75 ]
  in
  let training = s.Setup.samples.Sampling.Sample_set.values in
  (* Selection: readings above the samples' 85th percentile. *)
  let threshold =
    let pool = Array.concat (Array.to_list training) in
    Sampling.Stats.percentile pool 0.85
  in
  let selection = Sampling.Answers.selection ~threshold training in
  let selection_rows =
    List.map
      (fun f ->
        let budget = f *. anchor in
        let r =
          Prospector.Subset_planner.plan s.Setup.topo s.Setup.cost selection
            ~budget
        in
        let recalls, costs =
          Array.fold_left
            (fun (rs, cs) readings ->
              let o =
                Prospector.Subset_exec.collect s.Setup.topo s.Setup.cost
                  ~chosen:r.Prospector.Subset_planner.chosen ~readings
              in
              let truth = ref [] in
              Array.iteri
                (fun i v -> if v > threshold then truth := i :: !truth)
                readings;
              ( rs
                +. Prospector.Subset_exec.recall
                     ~truth:(Array.of_list !truth)
                     o.Prospector.Subset_exec.received,
                cs +. o.Prospector.Subset_exec.collection_mj ))
            (0., 0.) s.Setup.test_epochs
        in
        let d = float_of_int (Array.length s.Setup.test_epochs) in
        [ budget; costs /. d; 100. *. recalls /. d ])
      fractions
  in
  (* Quantile: estimate the network median from the shipped subset. *)
  let quantile = Sampling.Answers.quantile ~phi:0.5 ~window:3 training in
  let quantile_rows =
    List.map
      (fun f ->
        let budget = f *. anchor in
        let r =
          Prospector.Subset_planner.plan s.Setup.topo s.Setup.cost quantile
            ~budget
        in
        let errs, costs =
          Array.fold_left
            (fun (es, cs) readings ->
              let o =
                Prospector.Subset_exec.collect s.Setup.topo s.Setup.cost
                  ~chosen:r.Prospector.Subset_planner.chosen ~readings
              in
              let truth =
                Sampling.Stats.percentile readings 0.5
              in
              let err =
                match
                  Prospector.Subset_exec.quantile_estimate ~phi:0.5
                    o.Prospector.Subset_exec.received
                with
                | Some est -> Float.abs (est -. truth)
                | None -> Float.abs truth
              in
              (es +. err, cs +. o.Prospector.Subset_exec.collection_mj))
            (0., 0.) s.Setup.test_epochs
        in
        let d = float_of_int (Array.length s.Setup.test_epochs) in
        [ budget; costs /. d; errs /. d ])
      fractions
  in
  [
    Series.make
      ~title:"Generalization: selection query (recall of readings above threshold)"
      ~columns:[ "budget_mJ"; "energy_mJ"; "recall_%" ]
      ~notes:
        [
          Printf.sprintf "threshold %.2f (85th percentile of training data)"
            threshold;
          Printf.sprintf "NAIVE full collection costs %.1f mJ" anchor;
        ]
      selection_rows;
    Series.make
      ~title:"Generalization: median query (absolute estimation error)"
      ~columns:[ "budget_mJ"; "energy_mJ"; "abs_error" ]
      ~notes:[ "plans target a +/-3 rank window around the median" ]
      quantile_rows;
  ]

(** Figure 8 — "PROSPECTOR-EXACT": phase-1/phase-2 cost breakdown across
    trial instances that allocate increasing energy to the proof-carrying
    first phase, against the NAIVE-k and ORACLE-PROOF exact baselines.
    Too little phase-1 energy forces an expensive mop-up; too much
    over-fetches; the optimum sits in the middle. *)

val run : ?quick:bool -> seed:int -> unit -> Series.t list

let run ?(quick = false) ~seed () =
  let k = if quick then 5 else 10 in
  let per_zone = 2 * k in
  let background = if quick then 30 else 60 in
  let n_samples = if quick then 12 else 25 in
  let n_test = if quick then 8 else 20 in
  let zone_counts = if quick then [ 1; 3; 6 ] else [ 1; 2; 3; 4; 5; 6 ] in
  (* Fix the budget at the level that separates LP+LF from LP-LF in the
     six-zone experiment (the paper's protocol). *)
  let base =
    Setup.contention ~seed ~n_zones:6 ~per_zone ~background ~k ~n_samples
      ~n_test ()
  in
  let budget = 0.25 *. Planner_eval.naive_k_cost base in
  let rows =
    List.map
      (fun n_zones ->
        let s =
          Setup.contention ~seed ~n_zones ~per_zone ~background ~k ~n_samples
            ~n_test ()
        in
        let lf = Planner_eval.lp_lf s ~budget in
        let no_lf = Planner_eval.lp_no_lf s ~budget in
        [
          float_of_int n_zones;
          100. *. lf.Prospector.Evaluate.accuracy;
          100. *. no_lf.Prospector.Evaluate.accuracy;
        ])
      zone_counts
  in
  [
    Series.make ~title:"Figure 7: varying the number of contention zones"
      ~columns:[ "zones"; "LP+LF_acc_%"; "LP-LF_acc_%" ]
      ~notes:[ Printf.sprintf "budget fixed at %.1f mJ" budget ]
      rows;
  ]

let run ?(quick = false) ~seed () =
  let k = 10 in
  let n_samples = if quick then 30 else 100 in
  let n_test = if quick then 15 else 50 in
  let s = Setup.intel_lab ~seed ~k ~n_samples ~n_test () in
  let anchor = Planner_eval.naive_k_cost s in
  let fractions =
    if quick then [ 0.08; 0.15; 0.3; 0.5 ]
    else [ 0.04; 0.08; 0.12; 0.18; 0.25; 0.35; 0.5; 0.65 ]
  in
  let sweep name plan_at =
    Series.make
      ~title:(Printf.sprintf "Figure 9: %s on Intel-lab-style data" name)
      ~columns:[ "budget_mJ"; "energy_mJ"; "accuracy_%" ]
      (List.map
         (fun f ->
           let budget = f *. anchor in
           let p = plan_at ~budget in
           [
             budget;
             Prospector.Evaluate.total_per_run_mj p;
             100. *. p.Prospector.Evaluate.accuracy;
           ])
         fractions)
  in
  let naive = Planner_eval.naive_k s ~k in
  [
    sweep "GREEDY" (fun ~budget -> Planner_eval.greedy s ~budget);
    sweep "LP-LF" (fun ~budget -> Planner_eval.lp_no_lf s ~budget);
    sweep "LP+LF" (fun ~budget -> Planner_eval.lp_lf s ~budget);
    Series.make ~title:"Figure 9: NAIVE-k reference"
      ~columns:[ "energy_mJ"; "accuracy_%" ]
      ~notes:
        [
          "LP+LF and LP-LF should be nearly identical on this dataset";
          "the approximate planners should reach ~100% far below NAIVE-k's cost";
        ]
      [
        [
          Prospector.Evaluate.total_per_run_mj naive;
          100. *. naive.Prospector.Evaluate.accuracy;
        ];
      ];
  ]

(** Figure 4 — "Effect of variance": LP+LF vs LP-LF accuracy as per-node
    variance grows from "top-k fully predictable" to "all nodes equally
    likely".  The energy budget is fixed at a level where LP+LF is nearly
    perfect under negligible variance. *)

val run : ?quick:bool -> seed:int -> unit -> Series.t list

let run ?(quick = false) ~seed () =
  let n = if quick then 50 else 80 in
  let k = if quick then 8 else 15 in
  let n_samples = if quick then 12 else 25 in
  let n_test = if quick then 8 else 20 in
  let sigmas =
    if quick then [ 0.25; 1.; 4.; 10. ]
    else [ 0.25; 0.5; 1.; 2.; 4.; 7.; 10.; 14. ]
  in
  (* Fix the budget from the lowest-variance instance: enough for LP+LF to
     be near-exact there (the paper's protocol). *)
  let setup_for sigma =
    Setup.uniform_gaussian ~seed ~n ~k ~n_samples ~n_test ~mean_lo:20.
      ~mean_hi:26. ~sigma_lo:(0.75 *. sigma) ~sigma_hi:(1.25 *. sigma) ()
  in
  let base = setup_for (List.hd sigmas) in
  let budget = 0.3 *. Planner_eval.naive_k_cost base in
  let rows =
    List.map
      (fun sigma ->
        let s = setup_for sigma in
        let lf = Planner_eval.lp_lf s ~budget in
        let no_lf = Planner_eval.lp_no_lf s ~budget in
        [
          sigma *. sigma;
          100. *. lf.Prospector.Evaluate.accuracy;
          100. *. no_lf.Prospector.Evaluate.accuracy;
        ])
      sigmas
  in
  [
    Series.make ~title:"Figure 4: effect of variance (fixed energy budget)"
      ~columns:[ "variance"; "LP+LF_acc_%"; "LP-LF_acc_%" ]
      ~notes:
        [
          Printf.sprintf "budget fixed at %.1f mJ" budget;
          "LP+LF should degrade more slowly as variance rises";
        ]
      rows;
  ]

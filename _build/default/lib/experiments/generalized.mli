(** Extension experiment (Section 3's generalization remark): plan
    selection and quantile queries with the same sampling + LP machinery.
    Reports recall vs budget for a selection query and quantile estimation
    error vs budget, against a ship-everything baseline. *)

val run : ?quick:bool -> seed:int -> unit -> Series.t list

(** Ablation (Section 4.4, "Coping with failures"): does folding expected
    re-routing costs into the planner's edge costs pay off?

    Two LP+LF plans are built for the same network and budget — one with
    the plain cost model, one with failure-inflated edge costs — and both
    are executed on the discrete-event simulator with transient failures
    injected.  The failure-aware plan should hold the same accuracy while
    spending measurably less energy on flaky edges. *)

val run : ?quick:bool -> seed:int -> unit -> Series.t list

(** Section 2's table of MICA2 energy constants, printed from the model the
    whole repository computes with. *)

val run : unit -> unit
(** Print the table to stdout. *)

(** Figure 3 — "Comparison of algorithms": accuracy vs energy for ORACLE,
    LP+LF, LP-LF, GREEDY and NAIVE-k on the synthetic independent-Gaussian
    workload.  Approximate planners sweep the energy budget; exact
    baselines sweep how many of the top-k values they fetch. *)

val run : ?quick:bool -> seed:int -> unit -> Series.t list

(** Extension: network lifetime.  The paper motivates energy saving through
    lifetime; this experiment turns per-node energy profiles (from the
    discrete-event simulator) into executions-until-first-death for
    NAIVE-k-style full collection vs a PROSPECTOR-LP+LF plan, and reports
    the bottleneck node. *)

val run : ?quick:bool -> seed:int -> unit -> Series.t list

(** Ablation: distribution drift vs the Section 4.4 adaptivity machinery
    (sliding sample window, adaptive re-sampling rate, conditional plan
    re-dissemination).  A wandering hot spot defeats a static plan; the
    adaptive policy should recover most of the periodic re-planner's
    accuracy at a fraction of its sampling/installation energy. *)

val run : ?quick:bool -> seed:int -> unit -> Series.t list

let run ?(quick = false) ~seed () =
  let k = if quick then 5 else 10 in
  let s =
    Setup.contention ~seed ~n_zones:6 ~per_zone:(2 * k)
      ~background:(if quick then 30 else 60)
      ~k
      ~n_samples:(if quick then 12 else 25)
      ~n_test:(if quick then 8 else 20)
      ()
  in
  let anchor = Planner_eval.naive_k_cost s in
  let fractions = if quick then [ 0.15; 0.35 ] else [ 0.1; 0.2; 0.35; 0.55 ] in
  let rows =
    List.concat_map
      (fun f ->
        let budget = f *. anchor in
        let r =
          Prospector.Lp_lf.plan s.Setup.topo s.Setup.cost s.Setup.samples
            ~budget ~k
        in
        let evaluate round =
          let plan =
            Prospector.Plan.of_fractional ~round s.Setup.topo
              r.Prospector.Lp_lf.fractional
          in
          Prospector.Evaluate.approx s.Setup.topo s.Setup.cost s.Setup.mica
            plan ~k ~epochs:s.Setup.test_epochs
        in
        let nearest = evaluate `Nearest in
        let up = evaluate `Up in
        [
          [
            budget;
            0.;
            Prospector.Evaluate.total_per_run_mj nearest;
            100. *. nearest.Prospector.Evaluate.accuracy;
          ];
          [
            budget;
            1.;
            Prospector.Evaluate.total_per_run_mj up;
            100. *. up.Prospector.Evaluate.accuracy;
          ];
        ])
      fractions
  in
  [
    Series.make ~title:"Ablation: rounding the fractional LP+LF bandwidths"
      ~columns:[ "budget_mJ"; "scheme"; "energy_mJ"; "accuracy_%" ]
      ~notes:
        [
          "scheme 0 = round at 1/2 (the paper's), 1 = ceiling";
          "same fractional solution rounded both ways, contention workload";
        ]
      rows;
  ]

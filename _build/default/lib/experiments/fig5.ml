let run ?(quick = false) ~seed () =
  let k = if quick then 5 else 10 in
  let per_zone = 2 * k in
  let n_zones = 6 in
  let background = if quick then 30 else 60 in
  let n_samples = if quick then 12 else 25 in
  let n_test = if quick then 8 else 20 in
  let s =
    Setup.contention ~seed ~n_zones ~per_zone ~background ~k ~n_samples
      ~n_test ()
  in
  let anchor = Planner_eval.naive_k_cost s in
  let fractions =
    if quick then [ 0.1; 0.2; 0.35; 0.55 ]
    else [ 0.05; 0.1; 0.15; 0.25; 0.35; 0.5; 0.65; 0.8 ]
  in
  let sweep name plan_at =
    Series.make
      ~title:(Printf.sprintf "Figure 5: %s on contention zones" name)
      ~columns:[ "budget_mJ"; "energy_mJ"; "accuracy_%" ]
      (List.map
         (fun f ->
           let budget = f *. anchor in
           let p = plan_at ~budget in
           [
             budget;
             Prospector.Evaluate.total_per_run_mj p;
             100. *. p.Prospector.Evaluate.accuracy;
           ])
         fractions)
  in
  [
    Series.make ~title:"Figure 6: contention-zone layout"
      ~columns:[ "zones"; "nodes_per_zone"; "background"; "total_nodes" ]
      ~notes:[ "zones spaced around the perimeter, root at the center" ]
      [
        [
          float_of_int n_zones;
          float_of_int per_zone;
          float_of_int background;
          float_of_int (Sensor.Placement.n s.Setup.layout);
        ];
      ];
    sweep "LP+LF" (fun ~budget -> Planner_eval.lp_lf s ~budget);
    sweep "LP-LF" (fun ~budget -> Planner_eval.lp_no_lf s ~budget);
  ]

(** Shared experiment scaffolding: builds the network, the training sample
    set and the held-out test epochs for each of the paper's workloads. *)

type t = {
  layout : Sensor.Placement.t;
  topo : Sensor.Topology.t;
  cost : Sensor.Cost.t;
  mica : Sensor.Mica2.t;
  samples : Sampling.Sample_set.t;  (** training samples for the planners *)
  test_epochs : float array array;  (** held-out epochs for measurement *)
  k : int;
}

val uniform_gaussian :
  seed:int ->
  n:int ->
  k:int ->
  n_samples:int ->
  n_test:int ->
  ?mean_lo:float ->
  ?mean_hi:float ->
  ?sigma_lo:float ->
  ?sigma_hi:float ->
  unit ->
  t
(** The synthetic setup of Figure 3: [n] nodes uniform in a square, the
    root at the center, independent per-node Gaussians with means and
    deviations from small ranges (defaults: means 20-30, sigmas 1-4). *)

val contention :
  seed:int ->
  n_zones:int ->
  per_zone:int ->
  background:int ->
  k:int ->
  n_samples:int ->
  n_test:int ->
  ?exceed_prob:float ->
  unit ->
  t
(** The contention-zone setup of Figures 5-7: zones around the perimeter,
    the root in the center, zone nodes exceeding the background level with
    probability [exceed_prob] (default 0.4) so zones brim with candidates
    of which only a few can rank. *)

val intel_lab :
  seed:int -> k:int -> n_samples:int -> n_test:int -> unit -> t
(** The Figure 9 setup: 54 lab motes, radio range shortened to the minimum
    that keeps the network connected, first epochs as samples. *)

val replan_samples : t -> Sampling.Sample_set.t -> t
(** Swap the training sample set (used by the sample-size experiment). *)

let measure (s : Setup.t) failure plan seed =
  (* Run every test epoch on the simulator with fresh failure draws. *)
  let rng = Rng.create (seed * 7919) in
  let energies, accuracies, reroutes =
    Array.fold_left
      (fun (es, accs, rr) readings ->
        let r =
          Prospector.Simnet_exec.collect s.Setup.topo s.Setup.mica
            ~failure:(failure, rng) plan ~k:s.Setup.k ~readings
        in
        let acc =
          Prospector.Exec.accuracy ~k:s.Setup.k ~readings
            r.Prospector.Simnet_exec.returned
        in
        ( es +. r.Prospector.Simnet_exec.total_mj,
          accs +. acc,
          rr + r.Prospector.Simnet_exec.reroutes ))
      (0., 0., 0) s.Setup.test_epochs
  in
  let n = float_of_int (Array.length s.Setup.test_epochs) in
  (energies /. n, 100. *. accuracies /. n, float_of_int reroutes /. n)

let run ?(quick = false) ~seed () =
  let n = if quick then 40 else 80 in
  let k = if quick then 8 else 15 in
  let s =
    Setup.uniform_gaussian ~seed ~n ~k
      ~n_samples:(if quick then 10 else 25)
      ~n_test:(if quick then 8 else 20)
      ()
  in
  let failure_rng = Rng.create (seed + 1) in
  let failure =
    Sensor.Failure.uniform failure_rng ~n ~max_prob:0.5 ~max_factor:5.
  in
  let budget = 0.25 *. Planner_eval.naive_k_cost s in
  (* The oblivious planner budgets with clean edge costs, so under real
     failures it overspends.  The aware planner is then given the
     oblivious plan's *realized* spend as its (inflated-cost) budget: the
     comparison is at equal energy actually drawn from the batteries. *)
  let oblivious_plan =
    (Prospector.Lp_lf.plan s.Setup.topo s.Setup.cost s.Setup.samples ~budget
       ~k)
      .Prospector.Lp_lf.plan
  in
  let e_obl, a_obl, r_obl = measure s failure oblivious_plan seed in
  let aware_cost = Sensor.Cost.with_failures s.Setup.cost failure in
  let aware_plan =
    (Prospector.Lp_lf.plan s.Setup.topo aware_cost s.Setup.samples
       ~budget:e_obl ~k)
      .Prospector.Lp_lf.plan
  in
  let e_aware, a_aware, r_aware = measure s failure aware_plan (seed + 1) in
  [
    Series.make
      ~title:
        "Ablation: failure-aware planning (Section 4.4) under injected failures"
      ~columns:[ "plan"; "energy_mJ"; "accuracy_%"; "reroutes/run" ]
      ~notes:
        [
          "plan 0 = failure-oblivious cost model; plan 1 = failure-inflated,";
          "granted plan 0's realized spend so both burn equal energy";
          Printf.sprintf
            "nominal budget %.1f mJ; per-edge failure prob up to 0.5, premium up to 5x"
            budget;
        ]
      [ [ 0.; e_obl; a_obl; r_obl ]; [ 1.; e_aware; a_aware; r_aware ] ];
  ]

type t = {
  title : string;
  columns : string list;
  rows : float list list;
  notes : string list;
}

let make ~title ~columns ?(notes = []) rows =
  List.iter
    (fun row ->
      if List.length row <> List.length columns then
        invalid_arg "Series.make: row width mismatch")
    rows;
  { title; columns; rows; notes }

let print ppf t =
  let width = 12 in
  Format.fprintf ppf "@.== %s ==@." t.title;
  List.iter (fun c -> Format.fprintf ppf "%*s" width c) t.columns;
  Format.fprintf ppf "@.";
  List.iter
    (fun row ->
      List.iter (fun v -> Format.fprintf ppf "%*.2f" width v) row;
      Format.fprintf ppf "@.")
    t.rows;
  List.iter (fun n -> Format.fprintf ppf "   %s@." n) t.notes

let print_all ppf = List.iter (print ppf)

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," t.columns);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (List.map (Printf.sprintf "%.4f") row));
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

lib/experiments/fig9.ml: List Planner_eval Printf Prospector Series Setup

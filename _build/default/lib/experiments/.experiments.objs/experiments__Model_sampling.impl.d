lib/experiments/model_sampling.ml: Array Int Printf Prospector Rng Sampling Sensor Series

lib/experiments/fig8.ml: List Planner_eval Printf Prospector Series Setup

lib/experiments/ablation_failures.ml: Array Planner_eval Printf Prospector Rng Sensor Series Setup

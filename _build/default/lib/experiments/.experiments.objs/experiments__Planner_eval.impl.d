lib/experiments/planner_eval.ml: Array Evaluate Exec Greedy Lp_lf Lp_no_lf Lp_proof Prospector Setup

lib/experiments/fig5.ml: List Planner_eval Printf Prospector Sensor Series Setup

lib/experiments/ablation_drift.ml: Array Float Printf Prospector Rng Sampling Sensor Series

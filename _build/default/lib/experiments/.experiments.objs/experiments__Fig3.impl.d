lib/experiments/fig3.ml: List Planner_eval Printf Prospector Series Setup

lib/experiments/planner_eval.mli: Prospector Setup

lib/experiments/model_sampling.mli: Series

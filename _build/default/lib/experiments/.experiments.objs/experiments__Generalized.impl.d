lib/experiments/generalized.ml: Array Float List Planner_eval Printf Prospector Sampling Series Setup

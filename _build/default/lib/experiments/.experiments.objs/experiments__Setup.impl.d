lib/experiments/setup.ml: Array Rng Sampling Sensor

lib/experiments/sample_size.ml: Int List Planner_eval Printf Prospector Sampling Series Setup

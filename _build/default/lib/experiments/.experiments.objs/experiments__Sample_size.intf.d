lib/experiments/sample_size.mli: Series

lib/experiments/lifetime_exp.ml: Array Int List Planner_eval Printf Prospector Sensor Series Setup

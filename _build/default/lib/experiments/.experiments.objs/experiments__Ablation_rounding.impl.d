lib/experiments/ablation_rounding.ml: List Planner_eval Prospector Series Setup

lib/experiments/lifetime_exp.mli: Series

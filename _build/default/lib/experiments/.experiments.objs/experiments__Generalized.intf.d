lib/experiments/generalized.mli: Series

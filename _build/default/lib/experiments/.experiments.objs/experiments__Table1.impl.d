lib/experiments/table1.ml: Format Sensor

lib/experiments/fig5.mli: Series

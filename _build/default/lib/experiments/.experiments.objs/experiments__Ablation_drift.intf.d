lib/experiments/ablation_drift.mli: Series

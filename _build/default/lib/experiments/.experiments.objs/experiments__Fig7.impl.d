lib/experiments/fig7.ml: List Planner_eval Printf Prospector Series Setup

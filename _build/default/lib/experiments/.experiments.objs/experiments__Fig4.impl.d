lib/experiments/fig4.ml: List Planner_eval Printf Prospector Series Setup

lib/experiments/setup.mli: Sampling Sensor

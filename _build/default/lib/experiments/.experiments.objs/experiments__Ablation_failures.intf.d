lib/experiments/ablation_failures.mli: Series

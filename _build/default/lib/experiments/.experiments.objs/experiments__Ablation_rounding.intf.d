lib/experiments/ablation_rounding.mli: Series

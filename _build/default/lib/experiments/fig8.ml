let run ?(quick = false) ~seed () =
  let n = if quick then 30 else 45 in
  let k = if quick then 5 else 8 in
  let n_samples = if quick then 8 else 12 in
  let n_test = if quick then 6 else 12 in
  let s =
    Setup.uniform_gaussian ~seed ~n ~k ~n_samples ~n_test ~sigma_lo:3.
      ~sigma_hi:8. ()
  in
  (* The cheapest proof plan fixes the floor of phase-1 budgets. *)
  let min_cost =
    Prospector.Plan.expected_collection_mj s.Setup.topo s.Setup.cost
      (Prospector.Proof_exec.min_bandwidth_plan s.Setup.topo)
  in
  let multipliers =
    if quick then [ 1.0; 1.05; 1.2; 1.6 ]
    else [ 1.0; 1.02; 1.05; 1.1; 1.2; 1.4; 1.8 ]
  in
  let rows =
    List.mapi
      (fun i m ->
        let budget = m *. min_cost in
        let p1, p2 = Planner_eval.exact s ~budget in
        let c1 = Prospector.Evaluate.total_per_run_mj p1 in
        let c2 = Prospector.Evaluate.total_per_run_mj p2 in
        [ float_of_int (i + 1); c1; c2; c1 +. c2 ])
      multipliers
  in
  let naive = Planner_eval.naive_k s ~k in
  let oracle_proof = Planner_eval.oracle_proof s in
  [
    Series.make ~title:"Figure 8: PROSPECTOR-EXACT phase breakdown"
      ~columns:[ "trial"; "phase1_mJ"; "phase2_mJ"; "total_mJ" ]
      ~notes:
        [
          Printf.sprintf "NAIVE-k (exact) costs %.1f mJ per run"
            (Prospector.Evaluate.total_per_run_mj naive);
          Printf.sprintf "ORACLE-PROOF baseline costs %.1f mJ per run"
            (Prospector.Evaluate.total_per_run_mj oracle_proof);
          "trials allocate increasing energy to the proof-carrying phase 1";
        ]
      rows;
  ]

(** Result series: the printable tables behind each reproduced figure.

    Each experiment returns one or more named series; [print] renders them
    in an aligned, grep-friendly layout so the repository's EXPERIMENTS.md
    can quote them directly.  [to_csv] is provided for external plotting. *)

type t = {
  title : string;
  columns : string list;
  rows : float list list;
  notes : string list;  (** free-form commentary printed under the table *)
}

val make : title:string -> columns:string list -> ?notes:string list ->
  float list list -> t

val print : Format.formatter -> t -> unit

val print_all : Format.formatter -> t list -> unit

val to_csv : t -> string

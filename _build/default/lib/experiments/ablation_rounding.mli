(** Ablation: LP rounding schemes.  The same fractional LP+LF solution is
    rounded with the paper's round-at-1/2 rule and with ceiling rounding;
    nearest rounding tracks the budget faithfully while ceiling buys a
    little accuracy for measurable extra energy (and is what proof plans
    require — see DESIGN.md). *)

val run : ?quick:bool -> seed:int -> unit -> Series.t list

let run () =
  Format.printf "@.== Table (Section 2): MICA2 energy constants ==@.%a@.@."
    Sensor.Mica2.pp Sensor.Mica2.default

(** Extension (Section 3): samples may come from history {e or} from an
    explicit model.  On a spatially-correlated Gaussian field, LP+LF plans
    built from (a) historical epochs, (b) samples drawn from a model fitted
    to those epochs, and (c) samples from the true model are compared at
    equal sample counts — the sampling-based planner should be indifferent
    to the samples' provenance. *)

val run : ?quick:bool -> seed:int -> unit -> Series.t list

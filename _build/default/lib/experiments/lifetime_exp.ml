let run ?(quick = false) ~seed () =
  let n = if quick then 40 else 80 in
  let k = if quick then 6 else 10 in
  let s =
    Setup.uniform_gaussian ~seed ~n ~k
      ~n_samples:(if quick then 10 else 20)
      ~n_test:1 ()
  in
  let readings = s.Setup.test_epochs.(0) in
  let battery_j = 10_000. in
  (* 2 AA cells, radio share *)
  let naive_plan =
    Prospector.Plan.make s.Setup.topo
      (Array.mapi
         (fun i size ->
           if i = s.Setup.topo.Sensor.Topology.root then 0 else Int.min size k)
         s.Setup.topo.Sensor.Topology.subtree_size)
  in
  let lp_plan =
    (Prospector.Lp_lf.plan s.Setup.topo s.Setup.cost s.Setup.samples
       ~budget:(0.3 *. Planner_eval.naive_k_cost s)
       ~k)
      .Prospector.Lp_lf.plan
  in
  let profile label plan =
    let lt =
      Prospector.Lifetime.of_plan s.Setup.topo s.Setup.mica plan ~k ~readings
        ~battery_j
    in
    ( label,
      lt.Prospector.Lifetime.runs /. 1000.,
      float_of_int s.Setup.topo.Sensor.Topology.depth.(lt.Prospector.Lifetime.bottleneck),
      lt.Prospector.Lifetime.bottleneck_mj_per_run,
      lt.Prospector.Lifetime.mean_mj_per_run )
  in
  let rows =
    [ profile 0. naive_plan; profile 1. lp_plan ]
    |> List.map (fun (label, kruns, depth, worst, mean) ->
           [ label; kruns; depth; worst; mean ])
  in
  [
    Series.make ~title:"Extension: network lifetime (executions until first death)"
      ~columns:
        [ "plan"; "k_runs"; "bottleneck_depth"; "worst_mJ/run"; "mean_mJ/run" ]
      ~notes:
        [
          "plan 0 = NAIVE-k full collection, plan 1 = LP+LF at 30% budget";
          Printf.sprintf "battery %.0f J per mote" battery_j;
          "the bottleneck is always near the root, where traffic funnels";
        ]
      rows;
  ]

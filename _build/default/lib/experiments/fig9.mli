(** Figure 9 — "Intel Lab data": GREEDY vs LP-LF on the lab temperature
    workload (LP+LF is also run to confirm the paper's observation that it
    matches LP-LF here: the hot spots are so predictable that local
    filtering has nothing to add). *)

val run : ?quick:bool -> seed:int -> unit -> Series.t list

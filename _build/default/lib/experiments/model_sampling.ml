let run ?(quick = false) ~seed () =
  let rng = Rng.create seed in
  let n = if quick then 40 else 70 in
  let k = if quick then 6 else 10 in
  let n_samples = if quick then 10 else 20 in
  let n_test = if quick then 10 else 25 in
  let layout = Sensor.Placement.uniform rng ~n ~width:200. ~height:200. () in
  let range = Sensor.Topology.min_connecting_range layout *. 1.1 in
  let topo = Sensor.Topology.build layout ~range in
  let mica = Sensor.Mica2.default in
  let cost = Sensor.Cost.of_mica2 topo mica in
  (* The true world: a spatially-correlated Gaussian field. *)
  let means =
    Array.init n (fun _ -> Rng.uniform rng ~lo:20. ~hi:26.)
  in
  let truth =
    Sampling.Mvn.spatial ~positions:layout.Sensor.Placement.positions ~means
      ~sill:6. ~range:40. ~nugget:0.3 ()
  in
  let history =
    Array.init (Int.max n_samples (n + 5)) (fun _ ->
        truth.Sampling.Field.draw rng)
  in
  let test_epochs = Array.init n_test (fun _ -> truth.Sampling.Field.draw rng) in
  let budget =
    0.3
    *. (Prospector.Naive.naive_k topo cost ~k ~readings:test_epochs.(0))
         .Prospector.Naive.collection_mj
  in
  (* (a) history: the first n_samples epochs, as the paper maintains. *)
  let from_history =
    Sampling.Sample_set.of_values ~k (Array.sub history 0 n_samples)
  in
  (* (b) fitted model: mean + covariance estimated from all of history,
     then sampled — "if a model is available, generate samples from it". *)
  let fitted =
    let cov = Sampling.Mvn.empirical_covariance history in
    (* Regularize: shrink off-diagonals to keep the estimate PD. *)
    let nn = Array.length cov in
    for i = 0 to nn - 1 do
      for j = 0 to nn - 1 do
        if i <> j then cov.(i).(j) <- 0.9 *. cov.(i).(j)
        else cov.(i).(j) <- cov.(i).(j) +. 0.05
      done
    done;
    let mean =
      Array.init n (fun i ->
          Array.fold_left (fun acc row -> acc +. row.(i)) 0. history
          /. float_of_int (Array.length history))
    in
    Sampling.Mvn.field ~means:mean ~covariance:cov
  in
  let from_fitted =
    Sampling.Sample_set.draw rng fitted ~k ~count:n_samples
  in
  (* (c) the true model itself. *)
  let from_truth = Sampling.Sample_set.draw rng truth ~k ~count:n_samples in
  let evaluate samples =
    let plan = (Prospector.Lp_lf.plan topo cost samples ~budget ~k).Prospector.Lp_lf.plan in
    let p =
      Prospector.Evaluate.approx topo cost mica plan ~k ~epochs:test_epochs
    in
    ( 100. *. p.Prospector.Evaluate.accuracy,
      Prospector.Evaluate.total_per_run_mj p )
  in
  let a_h, e_h = evaluate from_history in
  let a_f, e_f = evaluate from_fitted in
  let a_t, e_t = evaluate from_truth in
  [
    Series.make
      ~title:"Extension: sample provenance (history vs model-generated)"
      ~columns:[ "source"; "accuracy_%"; "energy_mJ" ]
      ~notes:
        [
          "source 0 = historical epochs, 1 = samples from a fitted MVN model,";
          "2 = samples from the true model; equal sample counts";
          Printf.sprintf "spatially correlated field, budget %.1f mJ" budget;
        ]
      [ [ 0.; a_h; e_h ]; [ 1.; a_f; e_f ]; [ 2.; a_t; e_t ] ];
  ]

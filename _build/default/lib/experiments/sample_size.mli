(** "Other results" — impact of the sample-set size: accuracy of LP+LF as
    the number of training samples grows.  A single sample plans poorly;
    accuracy climbs steeply to a handful of samples and levels out by a few
    dozen, on both the synthetic and lab workloads. *)

val run : ?quick:bool -> seed:int -> unit -> Series.t list

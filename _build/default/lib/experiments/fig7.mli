(** Figure 7 — "Varying the number of contention zones": accuracy of LP+LF
    and LP-LF at a fixed energy budget as zones go from 1 to 6; both
    degrade, LP-LF faster (each zone it enters costs a full acquisition). *)

val run : ?quick:bool -> seed:int -> unit -> Series.t list

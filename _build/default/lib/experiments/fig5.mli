(** Figures 5 & 6 — "Contention zones": accuracy vs energy for LP+LF and
    LP-LF on the negatively-correlated workload (six zones of candidates
    around the perimeter, Figure 6's layout).  Local filtering should win
    decisively here. *)

val run : ?quick:bool -> seed:int -> unit -> Series.t list

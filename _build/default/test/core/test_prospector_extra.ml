(* Second PROSPECTOR test battery: cost accounting details, proof theory
   corollaries, reliability under failures, rounding bounds, and planner
   edge cases not covered by the main suite. *)

let check_float = Alcotest.(check (float 1e-6))

let mica = Sensor.Mica2.default

let chain n = Sensor.Topology.of_parents ~root:0 (Array.init n (fun i -> i - 1))

let star n =
  let parent = Array.make n 0 in
  parent.(0) <- -1;
  Sensor.Topology.of_parents ~root:0 parent

let random_tree rng n =
  let parent = Array.init n (fun i -> if i = 0 then -1 else Rng.int rng i) in
  Sensor.Topology.of_parents ~root:0 parent

let random_readings rng n =
  Array.init n (fun _ -> Rng.gaussian rng ~mu:20. ~sigma:5.)

let ids answer = List.map fst answer

(* ---------- Plan cost accounting ---------- *)

let test_trigger_star () =
  let topo = star 6 in
  let plan = Prospector.Plan.make topo [| 0; 1; 1; 0; 1; 0 |] in
  (* Only the root broadcasts, to its three participating children. *)
  check_float "one broadcast, three receivers"
    (Sensor.Mica2.trigger_mj mica ~receivers:3)
    (Prospector.Plan.trigger_mj topo mica plan)

let test_trigger_empty_plan () =
  let topo = star 4 in
  let plan = Prospector.Plan.make topo [| 0; 0; 0; 0 |] in
  check_float "no participants, no trigger" 0.
    (Prospector.Plan.trigger_mj topo mica plan)

let test_install_counts_edges () =
  let topo = chain 5 in
  let plan = Prospector.Plan.make topo [| 0; 1; 1; 0; 0 |] in
  check_float "two participating edges"
    (2. *. Sensor.Mica2.plan_install_mj mica)
    (Prospector.Plan.install_mj topo mica plan)

let test_total_bandwidth () =
  let topo = chain 4 in
  let plan = Prospector.Plan.make topo [| 0; 3; 2; 1 |] in
  Alcotest.(check int) "sum" 6 (Prospector.Plan.total_bandwidth plan)

let test_of_fractional_up_mode () =
  let topo = chain 4 in
  let plan =
    Prospector.Plan.of_fractional ~round:`Up topo [| 0.; 2.1; 1.01; 0.2 |]
  in
  Alcotest.(check int) "2.1 ceils to 3 (capped by inflow 2+1)" 3
    (Prospector.Plan.bandwidth plan 1);
  Alcotest.(check int) "1.01 ceils to 2" 2 (Prospector.Plan.bandwidth plan 2);
  Alcotest.(check int) "0.2 ceils to 1" 1 (Prospector.Plan.bandwidth plan 3)

let test_plan_length_mismatch () =
  let topo = chain 3 in
  Alcotest.check_raises "length checked"
    (Invalid_argument "Plan.make: length mismatch") (fun () ->
      ignore (Prospector.Plan.make topo [| 0; 1 |]))

(* ---------- Exec details ---------- *)

let test_exec_k_larger_than_network () =
  let topo = chain 3 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let plan = Prospector.Plan.make topo [| 0; 2; 1 |] in
  let o =
    Prospector.Exec.collect topo cost plan ~k:10 ~readings:[| 1.; 2.; 3. |]
  in
  Alcotest.(check int) "returns all values" 3
    (List.length o.Prospector.Exec.returned)

let test_exec_rejects_bad_lengths () =
  let topo = chain 3 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let plan = Prospector.Plan.make topo [| 0; 1; 1 |] in
  Alcotest.check_raises "readings length checked"
    (Invalid_argument "Exec.collect: readings length mismatch") (fun () ->
      ignore (Prospector.Exec.collect topo cost plan ~k:1 ~readings:[| 1. |]))

let exec_message_count_is_participants =
  QCheck.Test.make
    ~name:"one message per participating non-root node" ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 21) in
      let n = 2 + Rng.int rng 30 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let bw =
        Array.init n (fun i -> if i = 0 then 0 else Rng.int rng 3)
      in
      let plan = Prospector.Plan.make topo bw in
      let o =
        Prospector.Exec.collect topo cost plan ~k:5
          ~readings:(random_readings rng n)
      in
      let participants =
        List.length (Prospector.Plan.participants topo plan) - 1
      in
      o.Prospector.Exec.messages = participants)

let exec_values_sent_bounded_by_bandwidth =
  QCheck.Test.make ~name:"no edge exceeds its bandwidth" ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 22) in
      let n = 2 + Rng.int rng 30 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let bw = Array.init n (fun i -> if i = 0 then 0 else Rng.int rng 4) in
      let plan = Prospector.Plan.make topo bw in
      let o =
        Prospector.Exec.collect topo cost plan ~k:6
          ~readings:(random_readings rng n)
      in
      o.Prospector.Exec.values_sent
      <= Prospector.Plan.total_bandwidth plan)

(* ---------- Naive details ---------- *)

let test_naive_one_chain_messages () =
  (* Chain 0<-1<-2, k=1: root asks node 1, which asks node 2; node 2 sends
     one value; node 1 forwards its max.  Messages: 2 requests + 2
     responses (the protocol pulls exactly one value per edge). *)
  let topo = chain 3 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let o = Prospector.Naive.naive_one topo cost ~k:1 ~readings:[| 1.; 2.; 3. |] in
  Alcotest.(check int) "messages" 4 o.Prospector.Naive.messages;
  Alcotest.(check int) "values" 2 o.Prospector.Naive.values_sent;
  Alcotest.(check (list int)) "answer" [ 2 ] (ids o.Prospector.Naive.returned)

let test_naive_one_star_messages () =
  (* Star with 3 leaves, k=1: the root must fill its heap from every leaf:
     3 requests + 3 one-value responses. *)
  let topo = star 4 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let o =
    Prospector.Naive.naive_one topo cost ~k:1 ~readings:[| 0.; 3.; 2.; 1. |]
  in
  Alcotest.(check int) "messages" 6 o.Prospector.Naive.messages;
  Alcotest.(check int) "values" 3 o.Prospector.Naive.values_sent

let test_naive_k_exhausts_small_subtrees () =
  let topo = star 3 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let o = Prospector.Naive.naive_k topo cost ~k:5 ~readings:[| 1.; 2.; 3. |] in
  (* Leaves have single values; they send exactly one each. *)
  Alcotest.(check int) "values" 2 o.Prospector.Naive.values_sent

let test_flood_trigger () =
  let topo = chain 4 in
  check_float "three broadcasts of one receiver"
    (3. *. Sensor.Mica2.trigger_mj mica ~receivers:1)
    (Prospector.Naive.flood_trigger_mj topo mica)

(* ---------- Proof theory corollaries ---------- *)

let min_plan_proves_the_maximum =
  QCheck.Test.make
    ~name:"bandwidth-1 proof plans always prove the network maximum"
    ~count:300
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 23) in
      let n = 2 + Rng.int rng 40 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let plan = Prospector.Proof_exec.min_bandwidth_plan topo in
      let o = Prospector.Proof_exec.run topo cost plan ~k:3 ~readings in
      o.Prospector.Proof_exec.proven_count >= 1
      && List.hd (ids o.Prospector.Proof_exec.result)
         = fst (List.hd (Prospector.Exec.true_top_k ~k:1 readings)))

let proven_counts_monotone_in_bandwidth =
  QCheck.Test.make
    ~name:"raising every bandwidth never proves fewer values" ~count:150
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 24) in
      let n = 2 + Rng.int rng 25 in
      let k = 1 + Rng.int rng 6 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let base_bw =
        Array.mapi
          (fun i size ->
            if i = 0 then 0 else 1 + Rng.int rng (Int.min size (k + 1)))
          topo.Sensor.Topology.subtree_size
      in
      let bigger_bw =
        Array.mapi
          (fun i b -> if i = 0 then 0 else b + 1)
          base_bw
      in
      let run bw =
        (Prospector.Proof_exec.run topo cost (Prospector.Plan.make topo bw) ~k
           ~readings)
          .Prospector.Proof_exec.proven_count
      in
      run bigger_bw >= run base_bw)

let test_proof_exec_energy_matches_sent () =
  let topo = chain 3 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let plan = Prospector.Plan.make topo [| 0; 2; 1 |] in
  let o = Prospector.Proof_exec.run topo cost plan ~k:2 ~readings:[| 1.; 2.; 3. |] in
  check_float "energy is per-message + per-value of what was sent"
    (Sensor.Cost.message_mj cost ~node:2 ~values:1
    +. Sensor.Cost.message_mj cost ~node:1 ~values:2)
    o.Prospector.Proof_exec.collection_mj

(* ---------- Exact extras ---------- *)

let exact_agrees_with_naive =
  QCheck.Test.make ~name:"EXACT and NAIVE-k return identical answers"
    ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 25) in
      let n = 2 + Rng.int rng 25 in
      let k = 1 + Rng.int rng 6 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let plan = Prospector.Proof_exec.min_bandwidth_plan topo in
      let e = Prospector.Exact.run topo cost mica plan ~k ~readings in
      let nk = Prospector.Naive.naive_k topo cost ~k ~readings in
      ids e.Prospector.Exact.answer = ids nk.Prospector.Naive.returned)

let test_exact_total () =
  let topo = chain 4 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let plan = Prospector.Proof_exec.min_bandwidth_plan topo in
  let o =
    Prospector.Exact.run topo cost mica plan ~k:2
      ~readings:[| 1.; 4.; 3.; 2. |]
  in
  check_float "total is the sum of phases"
    (o.Prospector.Exact.phase1_mj +. o.Prospector.Exact.phase2_mj)
    (Prospector.Exact.total_mj o)

(* ---------- Reliability ---------- *)

let failures_never_lose_answers =
  QCheck.Test.make
    ~name:"the reliable protocol delivers the same answer under failures"
    ~count:100
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 26) in
      let n = 2 + Rng.int rng 25 in
      let k = 1 + Rng.int rng 5 in
      let topo = random_tree rng n in
      let readings = random_readings rng n in
      let bw =
        Array.mapi
          (fun i size -> if i = 0 then 0 else Rng.int rng (Int.min size k + 1))
          topo.Sensor.Topology.subtree_size
      in
      let plan = Prospector.Plan.make topo bw in
      let clean = Prospector.Simnet_exec.collect topo mica plan ~k ~readings in
      let failure =
        Sensor.Failure.uniform (Rng.create seed) ~n ~max_prob:0.6 ~max_factor:4.
      in
      let lossy =
        Prospector.Simnet_exec.collect topo mica
          ~failure:(failure, Rng.create (seed + 1))
          plan ~k ~readings
      in
      ids clean.Prospector.Simnet_exec.returned
      = ids lossy.Prospector.Simnet_exec.returned
      && lossy.Prospector.Simnet_exec.total_mj
         >= clean.Prospector.Simnet_exec.total_mj -. 1e-9)

(* ---------- Planner extras ---------- *)

let lp_lf_cost_within_rounding_bound =
  QCheck.Test.make
    ~name:"rounded LP+LF plans stay within ~2x the budget" ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 27) in
      let n = 4 + Rng.int rng 25 in
      let k = 1 + Rng.int rng 5 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let f =
        Sampling.Field.random_gaussian rng ~n ~mean_lo:10. ~mean_hi:30.
          ~sigma_lo:0.5 ~sigma_hi:5.
      in
      let samples = Sampling.Sample_set.draw rng f ~k ~count:8 in
      let budget = 1. +. Rng.float rng 30. in
      let r = Prospector.Lp_lf.plan topo cost samples ~budget ~k in
      Prospector.Plan.expected_collection_mj topo cost r.Prospector.Lp_lf.plan
      <= (2. *. budget) +. 2.)

let greedy_only_picks_useful_nodes =
  QCheck.Test.make ~name:"GREEDY ships only nodes that appear in samples"
    ~count:150
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 28) in
      let n = 3 + Rng.int rng 25 in
      let k = 1 + Rng.int rng 5 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let f =
        Sampling.Field.random_gaussian rng ~n ~mean_lo:0. ~mean_hi:30.
          ~sigma_lo:0.5 ~sigma_hi:4.
      in
      let samples = Sampling.Sample_set.draw rng f ~k ~count:6 in
      let plan = Prospector.Greedy.plan topo cost samples ~budget:1e9 in
      (* The number of shipped values equals the chosen-node count, and
         only positive-colsum nodes are chosen; leaf bandwidths witness
         the selection. *)
      let ok = ref true in
      Array.iteri
        (fun i bw ->
          if
            Array.length topo.Sensor.Topology.children.(i) = 0
            && bw > 0
            && samples.Sampling.Sample_set.colsum.(i) = 0
          then ok := false)
        (Array.init n (fun i -> Prospector.Plan.bandwidth plan i));
      !ok)

let test_lp_lf_zero_budget () =
  let topo = star 5 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let rng = Rng.create 3 in
  let f =
    Sampling.Field.random_gaussian rng ~n:5 ~mean_lo:0. ~mean_hi:10.
      ~sigma_lo:1. ~sigma_hi:2.
  in
  let samples = Sampling.Sample_set.draw rng f ~k:2 ~count:5 in
  let r = Prospector.Lp_lf.plan topo cost samples ~budget:0. ~k:2 in
  Alcotest.(check int) "empty plan" 0
    (Prospector.Plan.total_bandwidth r.Prospector.Lp_lf.plan)

let test_simnet_latency_positive () =
  let topo = chain 4 in
  let plan = Prospector.Plan.make topo [| 0; 1; 1; 1 |] in
  let r =
    Prospector.Simnet_exec.collect topo mica plan ~k:2
      ~readings:[| 1.; 2.; 3.; 4. |]
  in
  Alcotest.(check bool) "latency grows with depth" true
    (r.Prospector.Simnet_exec.latency_s > 0.01);
  Alcotest.(check int) "one unicast per participant" 3
    r.Prospector.Simnet_exec.unicasts

(* ---------- Evaluate extras ---------- *)

let test_evaluate_baselines () =
  let rng = Rng.create 5 in
  let n = 20 in
  let topo = random_tree rng n in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let epochs = Array.init 4 (fun _ -> random_readings rng n) in
  let o = Prospector.Evaluate.oracle topo cost mica ~k:3 ~epochs in
  Alcotest.(check bool) "oracle replans per epoch: install > 0" true
    (o.Prospector.Evaluate.install_mj > 0.);
  let n1 = Prospector.Evaluate.naive_one topo cost ~k:3 ~epochs in
  check_float "naive-1 has no trigger" 0. n1.Prospector.Evaluate.trigger_mj;
  let op = Prospector.Evaluate.oracle_proof topo cost mica ~k:3 ~epochs in
  Alcotest.(check bool) "oracle-proof visits everyone" true
    (op.Prospector.Evaluate.messages = float_of_int (n - 1))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      exec_message_count_is_participants;
      exec_values_sent_bounded_by_bandwidth;
      min_plan_proves_the_maximum;
      proven_counts_monotone_in_bandwidth;
      exact_agrees_with_naive;
      failures_never_lose_answers;
      lp_lf_cost_within_rounding_bound;
      greedy_only_picks_useful_nodes;
    ]

let () =
  Alcotest.run "prospector_extra"
    [
      ( "plan_costs",
        [
          Alcotest.test_case "trigger on star" `Quick test_trigger_star;
          Alcotest.test_case "trigger of empty plan" `Quick test_trigger_empty_plan;
          Alcotest.test_case "install counts edges" `Quick test_install_counts_edges;
          Alcotest.test_case "total bandwidth" `Quick test_total_bandwidth;
          Alcotest.test_case "ceil rounding mode" `Quick test_of_fractional_up_mode;
          Alcotest.test_case "length mismatch" `Quick test_plan_length_mismatch;
        ] );
      ( "exec_extra",
        [
          Alcotest.test_case "k larger than network" `Quick test_exec_k_larger_than_network;
          Alcotest.test_case "bad readings length" `Quick test_exec_rejects_bad_lengths;
        ] );
      ( "naive_extra",
        [
          Alcotest.test_case "NAIVE-1 chain message count" `Quick test_naive_one_chain_messages;
          Alcotest.test_case "NAIVE-1 star message count" `Quick test_naive_one_star_messages;
          Alcotest.test_case "NAIVE-k exhausts small subtrees" `Quick
            test_naive_k_exhausts_small_subtrees;
          Alcotest.test_case "flood trigger" `Quick test_flood_trigger;
        ] );
      ( "proof_extra",
        [
          Alcotest.test_case "proof energy accounting" `Quick
            test_proof_exec_energy_matches_sent;
        ] );
      ( "exact_extra",
        [ Alcotest.test_case "total = phase1 + phase2" `Quick test_exact_total ] );
      ( "planner_extra",
        [
          Alcotest.test_case "LP+LF zero budget" `Quick test_lp_lf_zero_budget;
          Alcotest.test_case "simnet latency & unicasts" `Quick test_simnet_latency_positive;
        ] );
      ( "evaluate_extra",
        [ Alcotest.test_case "baseline points" `Quick test_evaluate_baselines ] );
      ("properties", qcheck_cases);
    ]

test/core/test_protocols.mli:

test/core/test_prospector.mli:

test/core/test_extensions.mli:

test/core/test_prospector_extra.ml: Alcotest Array Int List Prospector QCheck QCheck_alcotest Rng Sampling Sensor

test/core/test_extensions.ml: Alcotest Array Int List Prospector QCheck QCheck_alcotest Rng Sampling Sensor

test/core/test_protocols.ml: Alcotest Array Float Int List Prospector QCheck QCheck_alcotest Rng Sensor

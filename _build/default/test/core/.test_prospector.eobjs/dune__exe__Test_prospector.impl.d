test/core/test_prospector.ml: Alcotest Array Float Int List Prospector QCheck QCheck_alcotest Rng Sampling Sensor

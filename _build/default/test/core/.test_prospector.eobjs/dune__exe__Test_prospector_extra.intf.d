test/core/test_prospector_extra.mli:

(* Message-level protocol implementations vs the analytic executors: the
   strongest check that the planners' cost accounting matches what a real
   network of motes would spend. *)

let mica = Sensor.Mica2.default

let random_tree rng n =
  let parent = Array.init n (fun i -> if i = 0 then -1 else Rng.int rng i) in
  Sensor.Topology.of_parents ~root:0 parent

let random_readings rng n =
  Array.init n (fun _ -> Rng.gaussian rng ~mu:20. ~sigma:5.)

let ids answer = List.map fst answer

let naive_one_protocol_matches_analytic =
  QCheck.Test.make
    ~name:"NAIVE-1 protocol: same answer and energy as the analytic model"
    ~count:150
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 51) in
      let n = 2 + Rng.int rng 30 in
      let k = 1 + Rng.int rng 8 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let analytic = Prospector.Naive.naive_one topo cost ~k ~readings in
      let proto = Prospector.Simnet_protocols.naive_one topo mica ~k ~readings () in
      ids analytic.Prospector.Naive.returned
      = ids proto.Prospector.Simnet_protocols.returned
      && Float.abs
           (proto.Prospector.Simnet_protocols.total_mj
           -. analytic.Prospector.Naive.collection_mj)
         < 1e-6
      && proto.Prospector.Simnet_protocols.unicasts
         = analytic.Prospector.Naive.messages)

let naive_k_via_simnet_matches =
  QCheck.Test.make
    ~name:"NAIVE-k as a full-bandwidth simnet plan: same answer and energy"
    ~count:150
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 52) in
      let n = 2 + Rng.int rng 30 in
      let k = 1 + Rng.int rng 8 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let analytic = Prospector.Naive.naive_k topo cost ~k ~readings in
      let plan =
        Prospector.Plan.make topo
          (Array.mapi
             (fun i size ->
               if i = topo.Sensor.Topology.root then 0 else Int.min size k)
             topo.Sensor.Topology.subtree_size)
      in
      let proto = Prospector.Simnet_exec.collect topo mica plan ~k ~readings in
      let expected =
        analytic.Prospector.Naive.collection_mj
        +. Prospector.Naive.flood_trigger_mj topo mica
      in
      ids analytic.Prospector.Naive.returned
      = ids proto.Prospector.Simnet_exec.returned
      && Float.abs (proto.Prospector.Simnet_exec.total_mj -. expected) < 1e-6)

let proof_protocol_matches_analytic =
  QCheck.Test.make
    ~name:"proof protocol: same result, proven count and energy as Proof_exec"
    ~count:150
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 53) in
      let n = 2 + Rng.int rng 25 in
      let k = 1 + Rng.int rng 6 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let plan =
        Prospector.Plan.make topo
          (Array.mapi
             (fun i size ->
               if i = topo.Sensor.Topology.root then 0
               else 1 + Rng.int rng (Int.min size (k + 2)))
             topo.Sensor.Topology.subtree_size)
      in
      let analytic = Prospector.Proof_exec.run topo cost plan ~k ~readings in
      let proto =
        Prospector.Simnet_protocols.proof_collect topo mica plan ~k ~readings ()
      in
      let expected_mj =
        analytic.Prospector.Proof_exec.collection_mj
        +. Prospector.Naive.flood_trigger_mj topo mica
      in
      ids analytic.Prospector.Proof_exec.result
      = ids proto.Prospector.Simnet_protocols.base.Prospector.Simnet_protocols.returned
      && proto.Prospector.Simnet_protocols.proven_count
         = analytic.Prospector.Proof_exec.proven_count
      && Float.abs
           (proto.Prospector.Simnet_protocols.base
              .Prospector.Simnet_protocols.total_mj
           -. expected_mj)
         < 1e-6)

let protocols_survive_failures =
  QCheck.Test.make
    ~name:"protocols deliver identical answers under transient failures"
    ~count:80
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 54) in
      let n = 2 + Rng.int rng 20 in
      let k = 1 + Rng.int rng 5 in
      let topo = random_tree rng n in
      let readings = random_readings rng n in
      let failure =
        Sensor.Failure.uniform (Rng.create seed) ~n ~max_prob:0.5 ~max_factor:3.
      in
      let clean = Prospector.Simnet_protocols.naive_one topo mica ~k ~readings () in
      let lossy =
        Prospector.Simnet_protocols.naive_one topo mica
          ~failure:(failure, Rng.create (seed + 1))
          ~k ~readings ()
      in
      ids clean.Prospector.Simnet_protocols.returned
      = ids lossy.Prospector.Simnet_protocols.returned
      && lossy.Prospector.Simnet_protocols.total_mj
         >= clean.Prospector.Simnet_protocols.total_mj -. 1e-9)

let test_naive_one_latency_exceeds_naive_k () =
  (* Pipelining pays in latency: k sequential round trips dwarf the single
     bottom-up wave. *)
  let rng = Rng.create 7 in
  let n = 25 and k = 6 in
  let topo = random_tree rng n in
  let readings = random_readings rng n in
  let pull = Prospector.Simnet_protocols.naive_one topo mica ~k ~readings () in
  let plan =
    Prospector.Plan.make topo
      (Array.mapi
         (fun i size -> if i = 0 then 0 else Int.min size k)
         topo.Sensor.Topology.subtree_size)
  in
  let wave = Prospector.Simnet_exec.collect topo mica plan ~k ~readings in
  Alcotest.(check bool) "pull latency higher" true
    (pull.Prospector.Simnet_protocols.latency_s
    > wave.Prospector.Simnet_exec.latency_s)

let test_proof_protocol_rejects_zero_bandwidth () =
  let topo = random_tree (Rng.create 9) 5 in
  let plan = Prospector.Plan.make topo (Array.make 5 0) in
  Alcotest.check_raises "zero bandwidth"
    (Invalid_argument "Simnet_protocols.proof_collect: proof plans use every edge")
    (fun () ->
      ignore
        (Prospector.Simnet_protocols.proof_collect topo mica plan ~k:2
           ~readings:(Array.make 5 1.) ()))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      naive_one_protocol_matches_analytic;
      naive_k_via_simnet_matches;
      proof_protocol_matches_analytic;
      protocols_survive_failures;
    ]

(* The two-phase exact protocol vs the analytic Exact. *)
let exact_protocol_matches_analytic =
  QCheck.Test.make
    ~name:"exact protocol: same answer, proven count and energy as Exact.run"
    ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 55) in
      let n = 2 + Rng.int rng 25 in
      let k = 1 + Rng.int rng 7 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let plan =
        Prospector.Plan.make topo
          (Array.mapi
             (fun i size ->
               if i = topo.Sensor.Topology.root then 0
               else 1 + Rng.int rng (Int.min size (k + 2)))
             topo.Sensor.Topology.subtree_size)
      in
      let analytic = Prospector.Exact.run topo cost mica plan ~k ~readings in
      let proto =
        Prospector.Simnet_protocols.exact topo mica plan ~k ~readings ()
      in
      let expected_mj =
        Prospector.Exact.total_mj analytic
        +. Prospector.Naive.flood_trigger_mj topo mica
      in
      ids analytic.Prospector.Exact.answer
      = ids proto.Prospector.Simnet_protocols.answer
      && proto.Prospector.Simnet_protocols.proven_after_phase1
         = analytic.Prospector.Exact.proven_after_phase1
      && Float.abs (proto.Prospector.Simnet_protocols.total_mj -. expected_mj)
         < 1e-6)

let exact_protocol_is_exact =
  QCheck.Test.make ~name:"exact protocol answers are the true top k"
    ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 56) in
      let n = 2 + Rng.int rng 30 in
      let k = 1 + Rng.int rng 7 in
      let topo = random_tree rng n in
      let readings = random_readings rng n in
      let plan = Prospector.Proof_exec.min_bandwidth_plan topo in
      let proto =
        Prospector.Simnet_protocols.exact topo mica plan ~k ~readings ()
      in
      ids proto.Prospector.Simnet_protocols.answer
      = ids (Prospector.Exec.true_top_k ~k readings))

let () =
  Alcotest.run "protocols"
    [
      ( "protocols",
        [
          Alcotest.test_case "pipelining costs latency" `Quick
            test_naive_one_latency_exceeds_naive_k;
          Alcotest.test_case "proof plan validation" `Quick
            test_proof_protocol_rejects_zero_bandwidth;
        ] );
      ( "properties",
        qcheck_cases
        @ List.map QCheck_alcotest.to_alcotest
            [ exact_protocol_matches_analytic; exact_protocol_is_exact ] );
    ]

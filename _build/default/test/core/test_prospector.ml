(* Tests for the PROSPECTOR core: plans, executors (analytic and simulated),
   the naive and oracle baselines, proof-carrying execution (Lemma 1), the
   two-phase exact algorithm, and the LP planners. *)

let check_float = Alcotest.(check (float 1e-6))

let mica = Sensor.Mica2.default

(* ---------- fixtures ---------- *)

let chain n = Sensor.Topology.of_parents ~root:0 (Array.init n (fun i -> i - 1))

let star n =
  let parent = Array.make n 0 in
  parent.(0) <- -1;
  Sensor.Topology.of_parents ~root:0 parent

(* A random recursive tree: node i >= 1 attaches to a uniform earlier node. *)
let random_tree rng n =
  let parent = Array.init n (fun i -> if i = 0 then -1 else Rng.int rng i) in
  Sensor.Topology.of_parents ~root:0 parent

let random_readings rng n =
  Array.init n (fun _ -> Rng.gaussian rng ~mu:20. ~sigma:5.)

let ids answer = List.map fst answer

(* ---------- Plan ---------- *)

let test_plan_normalize_prunes () =
  let topo = chain 4 in
  (* Edge 1 is closed, so the bandwidth at 2 and 3 is unreachable. *)
  let plan = Prospector.Plan.make topo [| 0; 0; 5; 2 |] in
  Alcotest.(check int) "dead branch cleared (2)" 0
    (Prospector.Plan.bandwidth plan 2);
  Alcotest.(check int) "dead branch cleared (3)" 0
    (Prospector.Plan.bandwidth plan 3)

let test_plan_normalize_caps () =
  let topo = chain 3 in
  (* Node 1 receives at most 1 value from node 2 plus its own. *)
  let plan = Prospector.Plan.make topo [| 0; 9; 1 |] in
  Alcotest.(check int) "capped at inflow+1" 2 (Prospector.Plan.bandwidth plan 1)

let test_plan_of_chosen () =
  let topo = chain 4 in
  let chosen = [| false; false; false; true |] in
  let plan = Prospector.Plan.of_chosen topo chosen in
  Alcotest.(check int) "leaf edge" 1 (Prospector.Plan.bandwidth plan 3);
  Alcotest.(check int) "relay edge" 1 (Prospector.Plan.bandwidth plan 1)

let test_plan_of_fractional () =
  let topo = star 4 in
  let plan = Prospector.Plan.of_fractional topo [| 0.; 0.4; 0.5; 1.6 |] in
  Alcotest.(check int) "0.4 rounds down" 0 (Prospector.Plan.bandwidth plan 1);
  Alcotest.(check int) "0.5 rounds up" 1 (Prospector.Plan.bandwidth plan 2);
  Alcotest.(check int) "1.6 rounds to 2... capped at own+inflow=1" 1
    (Prospector.Plan.bandwidth plan 3)

let test_plan_costs_chain () =
  let topo = chain 3 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let plan = Prospector.Plan.make topo [| 0; 2; 1 |] in
  check_float "static cost"
    (Sensor.Cost.message_mj cost ~node:1 ~values:2
    +. Sensor.Cost.message_mj cost ~node:2 ~values:1)
    (Prospector.Plan.expected_collection_mj topo cost plan);
  check_float "trigger: two hops with one child each"
    (2. *. Sensor.Mica2.trigger_mj mica ~receivers:1)
    (Prospector.Plan.trigger_mj topo mica plan);
  check_float "install: one subplan per participating edge"
    (2. *. Sensor.Mica2.plan_install_mj mica)
    (Prospector.Plan.install_mj topo mica plan)

let test_plan_participants () =
  let topo = star 4 in
  let plan = Prospector.Plan.make topo [| 0; 1; 0; 1 |] in
  Alcotest.(check (list int)) "participants" [ 0; 1; 3 ]
    (List.sort compare (Prospector.Plan.participants topo plan))

(* ---------- Exec ---------- *)

let test_exec_chain_filtering () =
  let topo = chain 4 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  (* Full pipe at the leaf, but node 1 filters down to one value. *)
  let plan = Prospector.Plan.make topo [| 0; 1; 2; 1 |] in
  let readings = [| 5.; 1.; 9.; 7. |] in
  let o = Prospector.Exec.collect topo cost plan ~k:3 ~readings in
  (* Node 3 sends 7; node 2 sends [9;7]; node 1 filters to [9];
     root merges with its own 5. *)
  Alcotest.(check (list int)) "answer ids" [ 2; 0 ]
    (ids o.Prospector.Exec.returned);
  Alcotest.(check int) "messages" 3 o.Prospector.Exec.messages;
  Alcotest.(check int) "values sent" 4 o.Prospector.Exec.values_sent;
  check_float "energy"
    (Sensor.Cost.message_mj cost ~node:3 ~values:1
    +. Sensor.Cost.message_mj cost ~node:2 ~values:2
    +. Sensor.Cost.message_mj cost ~node:1 ~values:1)
    o.Prospector.Exec.collection_mj

let test_exec_empty_plan () =
  let topo = star 5 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let plan = Prospector.Plan.make topo (Array.make 5 0) in
  let readings = [| 1.; 9.; 9.; 9.; 9. |] in
  let o = Prospector.Exec.collect topo cost plan ~k:2 ~readings in
  Alcotest.(check (list int)) "root answers alone" [ 0 ]
    (ids o.Prospector.Exec.returned);
  check_float "free" 0. o.Prospector.Exec.collection_mj

let test_value_order_ties () =
  Alcotest.(check bool) "ties break to smaller id" true
    (Prospector.Exec.value_order (1, 5.) (2, 5.) < 0);
  Alcotest.(check bool) "larger value first" true
    (Prospector.Exec.value_order (9, 6.) (2, 5.) < 0)

let test_true_top_k_and_accuracy () =
  let readings = [| 1.; 3.; 2. |] in
  Alcotest.(check (list int)) "top 2" [ 1; 2 ]
    (ids (Prospector.Exec.true_top_k ~k:2 readings));
  Alcotest.(check (float 1e-9)) "half right" 0.5
    (Prospector.Exec.accuracy ~k:2 ~readings [ (1, 3.); (0, 1.) ])

let full_bandwidth_plan topo k =
  Prospector.Plan.make topo
    (Array.map (fun s -> Int.min s k) topo.Sensor.Topology.subtree_size)

let exec_full_plan_is_exact =
  QCheck.Test.make ~name:"full-bandwidth plans return the exact top k"
    ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 40 in
      let k = 1 + Rng.int rng 10 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let o =
        Prospector.Exec.collect topo cost (full_bandwidth_plan topo k) ~k
          ~readings
      in
      ids o.Prospector.Exec.returned
      = ids (Prospector.Exec.true_top_k ~k readings))

(* ---------- Naive ---------- *)

let naive_k_exact =
  QCheck.Test.make ~name:"NAIVE-k returns the exact top k" ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 40 in
      let k = 1 + Rng.int rng 10 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let o = Prospector.Naive.naive_k topo cost ~k ~readings in
      ids o.Prospector.Naive.returned
      = ids (Prospector.Exec.true_top_k ~k readings))

let naive_one_exact =
  QCheck.Test.make ~name:"NAIVE-1 returns the exact top k" ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 1) in
      let n = 2 + Rng.int rng 40 in
      let k = 1 + Rng.int rng 10 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let o = Prospector.Naive.naive_one topo cost ~k ~readings in
      ids o.Prospector.Naive.returned
      = ids (Prospector.Exec.true_top_k ~k readings))

let naive_tradeoff =
  QCheck.Test.make
    ~name:"NAIVE-1 sends fewer values but more messages than NAIVE-k"
    ~count:100
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 2) in
      let n = 10 + Rng.int rng 40 in
      let k = 2 + Rng.int rng 8 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let ok = Prospector.Naive.naive_k topo cost ~k ~readings in
      let o1 = Prospector.Naive.naive_one topo cost ~k ~readings in
      o1.Prospector.Naive.values_sent <= ok.Prospector.Naive.values_sent
      && o1.Prospector.Naive.messages >= ok.Prospector.Naive.messages)

let test_naive_k_message_count () =
  let topo = chain 5 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let o = Prospector.Naive.naive_k topo cost ~k:3 ~readings:[| 1.; 2.; 3.; 4.; 5. |] in
  (* Every non-root node sends exactly one message. *)
  Alcotest.(check int) "n-1 messages" 4 o.Prospector.Naive.messages;
  (* Chain: node 4 sends 1 value, 3 sends 2, 2 and 1 send 3 each. *)
  Alcotest.(check int) "values" (1 + 2 + 3 + 3) o.Prospector.Naive.values_sent

(* ---------- Oracle ---------- *)

let oracle_perfect_and_cheap =
  QCheck.Test.make
    ~name:"ORACLE is exact and no dearer than NAIVE-k" ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 3) in
      let n = 2 + Rng.int rng 40 in
      let k = 1 + Rng.int rng 10 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let o = Prospector.Oracle.oracle topo cost ~k ~readings in
      let nk = Prospector.Naive.naive_k topo cost ~k ~readings in
      ids o.Prospector.Exec.returned
      = ids (Prospector.Exec.true_top_k ~k readings)
      && o.Prospector.Exec.collection_mj
         <= nk.Prospector.Naive.collection_mj +. 1e-9)

let oracle_proof_proves_k =
  QCheck.Test.make ~name:"ORACLE-PROOF proves the whole answer" ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 4) in
      let n = 2 + Rng.int rng 30 in
      let k = 1 + Rng.int rng 8 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let plan = Prospector.Oracle.oracle_proof_plan topo ~k ~readings in
      let o = Prospector.Proof_exec.run topo cost plan ~k ~readings in
      o.Prospector.Proof_exec.proven_count = Int.min k n
      && ids o.Prospector.Proof_exec.result
         = ids (Prospector.Exec.true_top_k ~k readings))

(* ---------- Proof_exec: Lemma 1 ---------- *)

let random_proof_plan rng topo k =
  Prospector.Plan.make topo
    (Array.mapi
       (fun i size ->
         if i = topo.Sensor.Topology.root then 0
         else 1 + Rng.int rng (Int.min size (k + 2)))
       topo.Sensor.Topology.subtree_size)

let lemma1_proven_are_subtree_top =
  QCheck.Test.make
    ~name:"Lemma 1: proven values are exactly the subtree's top values"
    ~count:300
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 5) in
      let n = 2 + Rng.int rng 25 in
      let k = 1 + Rng.int rng 6 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let plan = random_proof_plan rng topo k in
      let o = Prospector.Proof_exec.run topo cost plan ~k ~readings in
      let ok = ref true in
      Array.iteri
        (fun u st ->
          let proven = st.Prospector.Proof_exec.proven in
          let m = List.length proven in
          if m > 0 then begin
            let subtree = Sensor.Topology.descendants topo u in
            let subtree_values =
              List.map (fun d -> (d, readings.(d))) subtree
              |> List.sort Prospector.Exec.value_order
            in
            let rec take n = function
              | [] -> []
              | _ when n = 0 -> []
              | x :: rest -> x :: take (n - 1) rest
            in
            if proven <> take m subtree_values then ok := false
          end)
        o.Prospector.Proof_exec.states;
      !ok)

let proof_rejects_zero_bandwidth () =
  let topo = chain 3 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let plan = Prospector.Plan.make topo [| 0; 1; 0 |] in
  Alcotest.check_raises "zero bandwidth rejected"
    (Invalid_argument "Proof_exec.run: proof plans must use every edge")
    (fun () ->
      ignore
        (Prospector.Proof_exec.run topo cost plan ~k:1
           ~readings:[| 1.; 2.; 3. |]))

let test_proof_figure2_scenario () =
  (* The paper's Figure 2: a node with reading 7 receives (9,8) proven from
     one child, a partial list from another, and (6,4) style values; the
     fifth value cannot be proven because the middle subtree may hide a
     value between 6 and 7. *)
  (* Build: root 0 with child 1 (reading 7); node 1 has children 2,3,4.
     Subtree of 2 = {2,5}: readings 9,8 -> sends both (sent_all).
     Subtree of 3 = {3,6,7}: readings 4,2,0 -> bandwidth 2, sends 4,2 (not all).
     Subtree of 4 = {4,8}: readings 8,6 -> sends both (sent_all). *)
  let parent = [| -1; 0; 1; 1; 1; 2; 3; 3; 4 |] in
  let topo = Sensor.Topology.of_parents ~root:0 parent in
  let readings = [| 0.; 7.; 9.; 4.; 8.; 8.5; 2.; 0.5; 6. |] in
  let bw = [| 0; 5; 2; 2; 2; 1; 1; 1; 1 |] in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let plan = Prospector.Plan.make topo bw in
  let o = Prospector.Proof_exec.run topo cost plan ~k:5 ~readings in
  let st1 = o.Prospector.Proof_exec.states.(1) in
  (* Node 1 passes up its top 5: 9, 8.5, 8, 7, 6. *)
  Alcotest.(check (list int)) "sent ids" [ 2; 5; 4; 1; 8 ]
    (ids st1.Prospector.Proof_exec.sent);
  (* 9, 8.5, 8, 7 are provable; 6... child 3 proved 4 < 6, child 2 sent
     all, child 4 sent all -> actually provable.  The unprovable case needs
     child 3 to have proven nothing below 6: tighten by checking 7:
     all children have witnesses below 7 (4 from child 3). *)
  Alcotest.(check bool) "at least the top four proven" true
    (List.length st1.Prospector.Proof_exec.proven >= 4)

(* ---------- Exact ---------- *)

let exact_always_correct =
  QCheck.Test.make ~name:"PROSPECTOR-EXACT returns the exact top k"
    ~count:300
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 6) in
      let n = 2 + Rng.int rng 30 in
      let k = 1 + Rng.int rng 8 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let plan = random_proof_plan rng topo k in
      let o = Prospector.Exact.run topo cost mica plan ~k ~readings in
      ids o.Prospector.Exact.answer
      = ids (Prospector.Exec.true_top_k ~k readings))

let exact_no_mopup_when_proven =
  QCheck.Test.make
    ~name:"mop-up costs nothing when phase 1 proves everything" ~count:100
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 7) in
      let n = 2 + Rng.int rng 30 in
      let k = 1 + Rng.int rng 8 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let plan = Prospector.Oracle.oracle_proof_plan topo ~k ~readings in
      let o = Prospector.Exact.run topo cost mica plan ~k ~readings in
      o.Prospector.Exact.phase2_mj = 0.
      && o.Prospector.Exact.proven_after_phase1 >= Int.min k n)

let exact_minimal_plan_correct =
  QCheck.Test.make
    ~name:"exact with the minimal (bandwidth-1) proof plan is still exact"
    ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 8) in
      let n = 2 + Rng.int rng 30 in
      let k = 1 + Rng.int rng 8 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let plan = Prospector.Proof_exec.min_bandwidth_plan topo in
      let o = Prospector.Exact.run topo cost mica plan ~k ~readings in
      ids o.Prospector.Exact.answer
      = ids (Prospector.Exec.true_top_k ~k readings))

(* ---------- Simnet equivalence ---------- *)

let simnet_matches_analytic =
  QCheck.Test.make
    ~name:"simulated execution matches the analytic executor" ~count:150
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 9) in
      let n = 2 + Rng.int rng 30 in
      let k = 1 + Rng.int rng 8 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let bw =
        Array.mapi
          (fun i size ->
            if i = topo.Sensor.Topology.root then 0
            else Rng.int rng (Int.min (size + 1) (k + 2)))
          topo.Sensor.Topology.subtree_size
      in
      let plan = Prospector.Plan.make topo bw in
      let analytic = Prospector.Exec.collect topo cost plan ~k ~readings in
      let simulated = Prospector.Simnet_exec.collect topo mica plan ~k ~readings in
      let expected_total =
        analytic.Prospector.Exec.collection_mj
        +. Prospector.Plan.trigger_mj topo mica plan
      in
      ids analytic.Prospector.Exec.returned
      = ids simulated.Prospector.Simnet_exec.returned
      && Float.abs (simulated.Prospector.Simnet_exec.total_mj -. expected_total)
         < 1e-6)

(* ---------- Greedy ---------- *)

let test_greedy_zero_budget () =
  let topo = star 5 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let rng = Rng.create 11 in
  let f =
    Sampling.Field.random_gaussian rng ~n:5 ~mean_lo:0. ~mean_hi:10.
      ~sigma_lo:0.5 ~sigma_hi:2.
  in
  let samples = Sampling.Sample_set.draw rng f ~k:2 ~count:10 in
  let plan = Prospector.Greedy.plan topo cost samples ~budget:0. in
  Alcotest.(check int) "nothing chosen" 0 (Prospector.Plan.total_bandwidth plan)

let test_greedy_unbounded_budget () =
  let topo = star 5 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let rng = Rng.create 12 in
  let f =
    Sampling.Field.random_gaussian rng ~n:5 ~mean_lo:0. ~mean_hi:10.
      ~sigma_lo:0.5 ~sigma_hi:2.
  in
  let samples = Sampling.Sample_set.draw rng f ~k:3 ~count:20 in
  let plan = Prospector.Greedy.plan topo cost samples ~budget:1e9 in
  (* Every node with a positive column sum is shipped to the root. *)
  let expected =
    Array.to_list samples.Sampling.Sample_set.colsum
    |> List.mapi (fun i c -> (i, c))
    |> List.filter (fun (i, c) -> i <> 0 && c > 0)
    |> List.length
  in
  Alcotest.(check int) "all useful nodes chosen" expected
    (Prospector.Plan.total_bandwidth plan)

let greedy_respects_budget =
  QCheck.Test.make ~name:"GREEDY plans cost at most the budget" ~count:150
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 10) in
      let n = 3 + Rng.int rng 30 in
      let k = 1 + Rng.int rng 6 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let f =
        Sampling.Field.random_gaussian rng ~n ~mean_lo:0. ~mean_hi:30.
          ~sigma_lo:0.5 ~sigma_hi:4.
      in
      let samples = Sampling.Sample_set.draw rng f ~k ~count:10 in
      let budget = Rng.float rng 30. in
      let plan = Prospector.Greedy.plan topo cost samples ~budget in
      Prospector.Plan.expected_collection_mj topo cost plan <= budget +. 1e-6)

(* ---------- LP planners ---------- *)

let small_instance seed =
  let rng = Rng.create seed in
  let n = 4 + Rng.int rng 14 in
  let k = 1 + Rng.int rng 4 in
  let topo = random_tree rng n in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let f =
    Sampling.Field.random_gaussian rng ~n ~mean_lo:10. ~mean_hi:30.
      ~sigma_lo:0.5 ~sigma_hi:5.
  in
  let samples = Sampling.Sample_set.draw rng f ~k ~count:8 in
  (topo, cost, samples, k, rng)

let test_lp_no_lf_star () =
  (* Star with one dominant node: with budget for exactly one value, the LP
     must pick it. *)
  let topo = star 4 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let samples =
    Sampling.Sample_set.of_values ~k:1
      [| [| 0.; 1.; 9.; 2. |]; [| 0.; 1.; 8.; 3. |]; [| 0.; 2.; 9.; 1. |] |]
  in
  let budget = Sensor.Cost.message_mj cost ~node:2 ~values:1 in
  let r = Prospector.Lp_no_lf.plan topo cost samples ~budget in
  Alcotest.(check bool) "node 2 chosen" true r.Prospector.Lp_no_lf.chosen.(2);
  Alcotest.(check bool) "node 1 not chosen" false r.Prospector.Lp_no_lf.chosen.(1);
  check_float "covers all three samples" 3. r.Prospector.Lp_no_lf.lp_objective

let lp_lf_dominates_lp_no_lf =
  QCheck.Test.make
    ~name:"LP+LF's relaxation objective >= LP-LF's" ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let topo, cost, samples, k, rng = small_instance (seed + 11) in
      let budget = 2. +. Rng.float rng 30. in
      let a = Prospector.Lp_no_lf.plan topo cost samples ~budget in
      let b = Prospector.Lp_lf.plan topo cost samples ~budget ~k in
      b.Prospector.Lp_lf.lp_objective
      >= a.Prospector.Lp_no_lf.lp_objective -. 1e-6)

let lp_objectives_bounded =
  QCheck.Test.make
    ~name:"LP objectives are bounded by total ones" ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let topo, cost, samples, k, rng = small_instance (seed + 12) in
      let budget = Rng.float rng 40. in
      let total_ones =
        float_of_int (Array.fold_left ( + ) 0 samples.Sampling.Sample_set.colsum)
      in
      let a = Prospector.Lp_no_lf.plan topo cost samples ~budget in
      let b = Prospector.Lp_lf.plan topo cost samples ~budget ~k in
      a.Prospector.Lp_no_lf.lp_objective <= total_ones +. 1e-6
      && b.Prospector.Lp_lf.lp_objective <= total_ones +. 1e-6
      && a.Prospector.Lp_no_lf.lp_objective >= -1e-9
      && b.Prospector.Lp_lf.lp_objective >= -1e-9)

let lp_objective_monotone_in_budget =
  QCheck.Test.make ~name:"LP objective grows with budget" ~count:40
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let topo, cost, samples, k, rng = small_instance (seed + 13) in
      let b1 = Rng.float rng 15. in
      let b2 = b1 +. 5. in
      let r1 = Prospector.Lp_lf.plan topo cost samples ~budget:b1 ~k in
      let r2 = Prospector.Lp_lf.plan topo cost samples ~budget:b2 ~k in
      r2.Prospector.Lp_lf.lp_objective
      >= r1.Prospector.Lp_lf.lp_objective -. 1e-6)

let test_lp_lf_generous_budget_covers_everything () =
  let topo, cost, samples, k, _ = small_instance 424242 in
  let r = Prospector.Lp_lf.plan topo cost samples ~budget:1e6 ~k in
  let total_ones =
    float_of_int (Array.fold_left ( + ) 0 samples.Sampling.Sample_set.colsum)
  in
  (* Root-owned ones are free; everything else is affordable. *)
  Alcotest.(check bool) "covers nearly all ones" true
    (r.Prospector.Lp_lf.lp_objective
    >= total_ones -. float_of_int (samples.Sampling.Sample_set.colsum.(0)) -. 1e-6)

let test_lp_proof_budget_too_small () =
  let topo = chain 4 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let samples =
    Sampling.Sample_set.of_values ~k:1 [| [| 1.; 2.; 3.; 4. |] |]
  in
  (try
     ignore (Prospector.Lp_proof.plan topo cost samples ~budget:0.1 ~k:1);
     Alcotest.fail "expected Budget_too_small"
   with Prospector.Lp_proof.Budget_too_small min_cost ->
     Alcotest.(check bool) "minimum reported" true (min_cost > 0.))

let lp_proof_plans_are_valid =
  QCheck.Test.make
    ~name:"LP-PROOF plans have bandwidth >= 1 everywhere and prove a lot"
    ~count:25
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let topo, cost, samples, k, _ = small_instance (seed + 14) in
      let root = topo.Sensor.Topology.root in
      (* Generous budget: the LP should prove nearly everything. *)
      let r = Prospector.Lp_proof.plan topo cost samples ~budget:1e6 ~k in
      let bw_ok = ref true in
      for i = 0 to topo.Sensor.Topology.n - 1 do
        if i <> root && Prospector.Plan.bandwidth r.Prospector.Lp_proof.plan i < 1
        then bw_ok := false
      done;
      (* Execute the plan on the training samples: everything proven. *)
      let all_proven = ref true in
      Array.iter
        (fun readings ->
          let o =
            Prospector.Proof_exec.run topo cost r.Prospector.Lp_proof.plan ~k
              ~readings
          in
          if
            o.Prospector.Proof_exec.proven_count
            < Int.min k topo.Sensor.Topology.n
          then all_proven := false)
        samples.Sampling.Sample_set.values;
      !bw_ok && !all_proven)

(* ---------- Evaluate ---------- *)

let test_evaluate_points () =
  let topo, cost, samples, k, rng = small_instance 777 in
  let plan =
    (Prospector.Lp_lf.plan topo cost samples ~budget:20. ~k).Prospector.Lp_lf.plan
  in
  let f =
    Sampling.Field.random_gaussian rng ~n:topo.Sensor.Topology.n ~mean_lo:10.
      ~mean_hi:30. ~sigma_lo:0.5 ~sigma_hi:5.
  in
  let epochs = Array.init 5 (fun _ -> f.Sampling.Field.draw rng) in
  let p = Prospector.Evaluate.approx topo cost mica plan ~k ~epochs in
  Alcotest.(check bool) "accuracy in range" true
    (p.Prospector.Evaluate.accuracy >= 0. && p.Prospector.Evaluate.accuracy <= 1.);
  Alcotest.(check bool) "cost non-negative" true
    (Prospector.Evaluate.total_per_run_mj p >= 0.);
  let nk = Prospector.Evaluate.naive_k topo cost mica ~k ~epochs in
  Alcotest.(check (float 1e-9)) "naive accuracy" 1. nk.Prospector.Evaluate.accuracy;
  let e1, e2 =
    Prospector.Evaluate.exact topo cost mica
      (Prospector.Proof_exec.min_bandwidth_plan topo)
      ~k ~epochs
  in
  Alcotest.(check bool) "exact phases non-negative" true
    (e1.Prospector.Evaluate.collection_mj >= 0.
    && e2.Prospector.Evaluate.collection_mj >= 0.)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      exec_full_plan_is_exact;
      naive_k_exact;
      naive_one_exact;
      naive_tradeoff;
      oracle_perfect_and_cheap;
      oracle_proof_proves_k;
      lemma1_proven_are_subtree_top;
      exact_always_correct;
      exact_no_mopup_when_proven;
      exact_minimal_plan_correct;
      simnet_matches_analytic;
      greedy_respects_budget;
      lp_lf_dominates_lp_no_lf;
      lp_objectives_bounded;
      lp_objective_monotone_in_budget;
      lp_proof_plans_are_valid;
    ]

let () =
  Alcotest.run "prospector"
    [
      ( "plan",
        [
          Alcotest.test_case "normalize prunes dead branches" `Quick test_plan_normalize_prunes;
          Alcotest.test_case "normalize caps inflow" `Quick test_plan_normalize_caps;
          Alcotest.test_case "of_chosen" `Quick test_plan_of_chosen;
          Alcotest.test_case "of_fractional rounding" `Quick test_plan_of_fractional;
          Alcotest.test_case "chain costs" `Quick test_plan_costs_chain;
          Alcotest.test_case "participants" `Quick test_plan_participants;
        ] );
      ( "exec",
        [
          Alcotest.test_case "chain with filtering" `Quick test_exec_chain_filtering;
          Alcotest.test_case "empty plan" `Quick test_exec_empty_plan;
          Alcotest.test_case "value order" `Quick test_value_order_ties;
          Alcotest.test_case "truth and accuracy" `Quick test_true_top_k_and_accuracy;
        ] );
      ( "naive",
        [ Alcotest.test_case "NAIVE-k message count" `Quick test_naive_k_message_count ] );
      ( "proof",
        [
          Alcotest.test_case "zero bandwidth rejected" `Quick proof_rejects_zero_bandwidth;
          Alcotest.test_case "figure 2 scenario" `Quick test_proof_figure2_scenario;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "zero budget" `Quick test_greedy_zero_budget;
          Alcotest.test_case "unbounded budget" `Quick test_greedy_unbounded_budget;
        ] );
      ( "lp_planners",
        [
          Alcotest.test_case "LP-LF picks the dominant node" `Quick test_lp_no_lf_star;
          Alcotest.test_case "LP+LF with generous budget" `Quick
            test_lp_lf_generous_budget_covers_everything;
          Alcotest.test_case "LP-PROOF budget check" `Quick test_lp_proof_budget_too_small;
        ] );
      ( "evaluate",
        [ Alcotest.test_case "points are sane" `Quick test_evaluate_points ] );
      ("properties", qcheck_cases);
    ]

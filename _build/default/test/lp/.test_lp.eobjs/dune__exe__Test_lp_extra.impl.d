test/lp/test_lp_extra.ml: Alcotest Array Float List Lp Printf QCheck QCheck_alcotest Random

test/lp/test_lp_presolve.ml: Alcotest Array Float List Lp Printf QCheck QCheck_alcotest Random String

test/lp/test_lp.mli:

test/lp/test_lp_extra.mli:

test/lp/test_lp_presolve.mli:

(* Tests for the LP substrate: sparse vectors, the sparse accumulator, the
   sparse LU factorization, the dense reference simplex, and the revised
   simplex (including a randomized cross-check between the two solvers). *)

let check_float = Alcotest.(check (float 1e-6))

(* ---------- Sparse_vec ---------- *)

let test_vec_of_assoc () =
  let v = Lp.Sparse_vec.of_assoc [ (3, 1.); (1, 2.); (3, 4.); (0, 0.) ] in
  Alcotest.(check int) "nnz" 2 (Lp.Sparse_vec.nnz v);
  check_float "dup summed" 5. (Lp.Sparse_vec.get v 3);
  check_float "kept" 2. (Lp.Sparse_vec.get v 1);
  check_float "absent" 0. (Lp.Sparse_vec.get v 2)

let test_vec_cancel () =
  let v = Lp.Sparse_vec.of_assoc [ (2, 1.5); (2, -1.5) ] in
  Alcotest.(check int) "cancelled entries dropped" 0 (Lp.Sparse_vec.nnz v)

let test_vec_dot_axpy () =
  let v = Lp.Sparse_vec.of_assoc [ (0, 2.); (3, -1.) ] in
  let d = [| 1.; 10.; 10.; 4. |] in
  check_float "dot" (2. -. 4.) (Lp.Sparse_vec.dot_dense v d);
  Lp.Sparse_vec.axpy_dense 2. v d;
  check_float "axpy idx0" 5. d.(0);
  check_float "axpy idx3" 2. d.(3);
  check_float "axpy untouched" 10. d.(1)

let test_vec_negative_index () =
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Sparse_vec.of_assoc: negative index") (fun () ->
      ignore (Lp.Sparse_vec.of_assoc [ (-1, 1.) ]))

let test_vec_of_arrays_unsorted () =
  Alcotest.check_raises "unsorted rejected"
    (Invalid_argument "Sparse_vec.of_arrays: indices not strictly increasing")
    (fun () -> ignore (Lp.Sparse_vec.of_arrays [| 2; 1 |] [| 1.; 1. |]))

let test_vec_max_abs_scale () =
  let v = Lp.Sparse_vec.of_assoc [ (1, -3.); (2, 2.) ] in
  check_float "max_abs" 3. (Lp.Sparse_vec.max_abs v);
  let w = Lp.Sparse_vec.scale (-2.) v in
  check_float "scaled" 6. (Lp.Sparse_vec.get w 1);
  check_float "empty max_abs" 0. (Lp.Sparse_vec.max_abs Lp.Sparse_vec.empty)

(* ---------- Spa ---------- *)

let test_spa_roundtrip () =
  let spa = Lp.Spa.create 10 in
  Lp.Spa.add spa 3 1.;
  Lp.Spa.add spa 3 2.;
  Lp.Spa.set spa 7 (-1.);
  Lp.Spa.add spa 5 1e-15;
  let v = Lp.Spa.to_sparse spa in
  Alcotest.(check int) "tiny dropped" 2 (Lp.Sparse_vec.nnz v);
  check_float "accumulated" 3. (Lp.Sparse_vec.get v 3);
  check_float "set" (-1.) (Lp.Sparse_vec.get v 7);
  (* accumulator was reset by to_sparse *)
  check_float "reset" 0. (Lp.Spa.get spa 3);
  Lp.Spa.scatter spa (Lp.Sparse_vec.of_assoc [ (0, 1.) ]);
  Lp.Spa.scatter_scaled spa 3. (Lp.Sparse_vec.of_assoc [ (0, 2.) ]);
  check_float "scatter" 7. (Lp.Spa.get spa 0)

(* ---------- Lu ---------- *)

let dense_of_cols dim cols =
  let a = Array.make_matrix dim dim 0. in
  Array.iteri (fun c v -> Lp.Sparse_vec.iter (fun r x -> a.(r).(c) <- x) v) cols;
  a

let mat_vec a x =
  Array.map (fun row -> Array.fold_left ( +. ) 0. (Array.mapi (fun j v -> v *. x.(j)) row)) a

let mat_transpose_vec a y =
  let n = Array.length a in
  Array.init n (fun j ->
      let acc = ref 0. in
      for i = 0 to n - 1 do
        acc := !acc +. (a.(i).(j) *. y.(i))
      done;
      !acc)

let max_abs_diff u v =
  let m = ref 0. in
  Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. v.(i)))) u;
  !m

let random_nonsingular_cols rand dim =
  (* Diagonal dominance guarantees nonsingularity. *)
  Array.init dim (fun c ->
      let entries = ref [ (c, 4. +. Random.State.float rand 4.) ] in
      for _ = 1 to 3 do
        let r = Random.State.int rand dim in
        if r <> c then
          entries := (r, Random.State.float rand 1.6 -. 0.8) :: !entries
      done;
      Lp.Sparse_vec.of_assoc !entries)

let test_lu_identity () =
  let dim = 5 in
  let cols = Array.init dim (fun c -> Lp.Sparse_vec.of_assoc [ (c, 1.) ]) in
  let lu = Lp.Lu.factor ~dim cols in
  let b = [| 1.; -2.; 3.; 0.; 5. |] in
  Alcotest.(check (float 1e-12)) "identity solve" 0.
    (max_abs_diff (Lp.Lu.solve lu b) b);
  Alcotest.(check (float 1e-12)) "identity transpose" 0.
    (max_abs_diff (Lp.Lu.solve_transpose lu b) b)

let test_lu_permutation () =
  let dim = 4 in
  let perm = [| 2; 0; 3; 1 |] in
  let cols =
    Array.init dim (fun c -> Lp.Sparse_vec.of_assoc [ (perm.(c), 1.) ])
  in
  let lu = Lp.Lu.factor ~dim cols in
  let b = [| 1.; 2.; 3.; 4. |] in
  let x = Lp.Lu.solve lu b in
  (* column c has a 1 in row perm.(c), so x.(c) = b.(perm.(c)) *)
  Array.iteri
    (fun c p -> check_float "permuted solve" b.(p) x.(c))
    perm

let test_lu_random () =
  let rand = Random.State.make [| 42 |] in
  for _ = 1 to 50 do
    let dim = 1 + Random.State.int rand 40 in
    let cols = random_nonsingular_cols rand dim in
    let a = dense_of_cols dim cols in
    let lu = Lp.Lu.factor ~dim cols in
    let b = Array.init dim (fun _ -> Random.State.float rand 10. -. 5.) in
    let x = Lp.Lu.solve lu b in
    Alcotest.(check (float 1e-7)) "residual A x = b" 0.
      (max_abs_diff (mat_vec a x) b);
    let y = Lp.Lu.solve_transpose lu b in
    Alcotest.(check (float 1e-7)) "residual A' y = b" 0.
      (max_abs_diff (mat_transpose_vec a y) b)
  done

let test_lu_singular () =
  let dim = 3 in
  (* Column 2 equals column 0: singular. *)
  let col = Lp.Sparse_vec.of_assoc [ (0, 1.); (1, 2.) ] in
  let cols = [| col; Lp.Sparse_vec.of_assoc [ (2, 1.) ]; col |] in
  (try
     ignore (Lp.Lu.factor ~dim cols);
     Alcotest.fail "expected Singular"
   with Lp.Lu.Singular _ -> ())

let test_lu_fill_nnz () =
  let dim = 3 in
  let cols = Array.init dim (fun c -> Lp.Sparse_vec.of_assoc [ (c, 2.) ]) in
  let lu = Lp.Lu.factor ~dim cols in
  Alcotest.(check int) "diagonal factors have no fill" 3 (Lp.Lu.fill_nnz lu)

(* ---------- Dense_simplex ---------- *)

let test_dense_basic_max () =
  (* max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2,6), obj 36 *)
  let r =
    Lp.Dense_simplex.solve ~maximize:true ~obj:[| 3.; 5. |]
      ~constraints:
        [|
          ([| 1.; 0. |], Lp.Dense_simplex.Le, 4.);
          ([| 0.; 2. |], Lp.Dense_simplex.Le, 12.);
          ([| 3.; 2. |], Lp.Dense_simplex.Le, 18.);
        |]
      ()
  in
  Alcotest.(check bool) "optimal" true (r.Lp.Dense_simplex.status = Lp.Dense_simplex.Optimal);
  check_float "objective" 36. r.Lp.Dense_simplex.objective;
  check_float "x" 2. r.Lp.Dense_simplex.x.(0);
  check_float "y" 6. r.Lp.Dense_simplex.x.(1)

let test_dense_min_with_ge () =
  (* min 2x + 3y st x + y >= 4, x >= 1 -> (4,0)? obj: 2*4=8 vs (1,3): 2+9=11.
     So optimum (4,0) obj 8. *)
  let r =
    Lp.Dense_simplex.solve ~obj:[| 2.; 3. |]
      ~constraints:
        [|
          ([| 1.; 1. |], Lp.Dense_simplex.Ge, 4.);
          ([| 1.; 0. |], Lp.Dense_simplex.Ge, 1.);
        |]
      ()
  in
  Alcotest.(check bool) "optimal" true (r.Lp.Dense_simplex.status = Lp.Dense_simplex.Optimal);
  check_float "objective" 8. r.Lp.Dense_simplex.objective

let test_dense_eq () =
  (* min x + y st x + 2y = 4, x - y = 1 -> x = 2, y = 1, obj 3 *)
  let r =
    Lp.Dense_simplex.solve ~obj:[| 1.; 1. |]
      ~constraints:
        [|
          ([| 1.; 2. |], Lp.Dense_simplex.Eq, 4.);
          ([| 1.; -1. |], Lp.Dense_simplex.Eq, 1.);
        |]
      ()
  in
  check_float "objective" 3. r.Lp.Dense_simplex.objective;
  check_float "x" 2. r.Lp.Dense_simplex.x.(0);
  check_float "y" 1. r.Lp.Dense_simplex.x.(1)

let test_dense_infeasible () =
  let r =
    Lp.Dense_simplex.solve ~obj:[| 1. |]
      ~constraints:
        [|
          ([| 1. |], Lp.Dense_simplex.Le, 1.);
          ([| 1. |], Lp.Dense_simplex.Ge, 2.);
        |]
      ()
  in
  Alcotest.(check bool) "infeasible" true
    (r.Lp.Dense_simplex.status = Lp.Dense_simplex.Infeasible)

let test_dense_unbounded () =
  let r =
    Lp.Dense_simplex.solve ~maximize:true ~obj:[| 1.; 0. |]
      ~constraints:[| ([| 0.; 1. |], Lp.Dense_simplex.Le, 1.) |]
      ()
  in
  Alcotest.(check bool) "unbounded" true
    (r.Lp.Dense_simplex.status = Lp.Dense_simplex.Unbounded)

let test_dense_degenerate () =
  (* Classic degenerate LP; Bland's rule must terminate. *)
  let r =
    Lp.Dense_simplex.solve ~maximize:true
      ~obj:[| 10.; -57.; -9.; -24. |]
      ~constraints:
        [|
          ([| 0.5; -5.5; -2.5; 9. |], Lp.Dense_simplex.Le, 0.);
          ([| 0.5; -1.5; -0.5; 1. |], Lp.Dense_simplex.Le, 0.);
          ([| 1.; 0.; 0.; 0. |], Lp.Dense_simplex.Le, 1.);
        |]
      ()
  in
  Alcotest.(check bool) "optimal" true (r.Lp.Dense_simplex.status = Lp.Dense_simplex.Optimal);
  check_float "objective" 1. r.Lp.Dense_simplex.objective

(* ---------- Model + Revised ---------- *)

let test_model_basic_max () =
  let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let x = Lp.Model.add_var m ~obj:3. "x" in
  let y = Lp.Model.add_var m ~obj:5. "y" in
  Lp.Model.add_le m [ (1., x) ] 4.;
  Lp.Model.add_le m [ (2., y) ] 12.;
  Lp.Model.add_le m [ (3., x); (2., y) ] 18.;
  let sol = Lp.Model.solve m in
  Alcotest.(check bool) "optimal" true (sol.Lp.Model.status = Lp.Model.Optimal);
  check_float "objective" 36. sol.Lp.Model.objective;
  check_float "x" 2. (Lp.Model.value sol x);
  check_float "y" 6. (Lp.Model.value sol y)

let test_model_bounds () =
  (* max x + y with 1 <= x <= 3, 0 <= y <= 2, x + y <= 4 -> obj 4 at e.g. (2,2) *)
  let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let x = Lp.Model.add_var m ~lower:1. ~upper:3. ~obj:1. "x" in
  let y = Lp.Model.add_var m ~upper:2. ~obj:1. "y" in
  Lp.Model.add_le m [ (1., x); (1., y) ] 4.;
  let sol = Lp.Model.solve m in
  check_float "objective" 4. sol.Lp.Model.objective;
  Alcotest.(check bool) "x within bounds" true
    (Lp.Model.value sol x >= 1. -. 1e-9 && Lp.Model.value sol x <= 3. +. 1e-9)

let test_model_free_var () =
  (* min x st x >= -5 as a row, x free -> x = -5 *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~lower:neg_infinity ~obj:1. "x" in
  Lp.Model.add_ge m [ (1., x) ] (-5.);
  let sol = Lp.Model.solve m in
  check_float "objective" (-5.) sol.Lp.Model.objective

let test_model_fixed_var () =
  let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let x = Lp.Model.add_var m ~lower:2. ~upper:2. ~obj:1. "x" in
  let y = Lp.Model.add_var m ~upper:10. ~obj:1. "y" in
  Lp.Model.add_le m [ (1., x); (1., y) ] 5.;
  let sol = Lp.Model.solve m in
  check_float "objective" 5. sol.Lp.Model.objective;
  check_float "fixed var" 2. (Lp.Model.value sol x)

let test_model_infeasible () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m "x" in
  Lp.Model.add_le m [ (1., x) ] 1.;
  Lp.Model.add_ge m [ (1., x) ] 2.;
  let sol = Lp.Model.solve m in
  Alcotest.(check bool) "infeasible" true (sol.Lp.Model.status = Lp.Model.Infeasible)

let test_model_unbounded () =
  let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let x = Lp.Model.add_var m ~obj:1. "x" in
  let y = Lp.Model.add_var m "y" in
  ignore x;
  Lp.Model.add_le m [ (1., y) ] 1.;
  let sol = Lp.Model.solve m in
  Alcotest.(check bool) "unbounded" true (sol.Lp.Model.status = Lp.Model.Unbounded)

let test_model_negative_rhs () =
  (* Rows with negative rhs exercise phase 1 in the revised solver:
     min x + y st -x - y <= -3 (i.e. x + y >= 3) *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~obj:1. "x" in
  let y = Lp.Model.add_var m ~obj:1. "y" in
  Lp.Model.add_le m [ (-1., x); (-1., y) ] (-3.);
  let sol = Lp.Model.solve m in
  Alcotest.(check bool) "optimal" true (sol.Lp.Model.status = Lp.Model.Optimal);
  check_float "objective" 3. sol.Lp.Model.objective

let test_model_eq_rows () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~obj:1. "x" in
  let y = Lp.Model.add_var m ~obj:1. "y" in
  Lp.Model.add_eq m [ (1., x); (2., y) ] 4.;
  Lp.Model.add_eq m [ (1., x); (-1., y) ] 1.;
  let sol = Lp.Model.solve m in
  check_float "objective" 3. sol.Lp.Model.objective;
  check_float "x" 2. (Lp.Model.value sol x)

let test_model_resolve_after_adding () =
  let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let x = Lp.Model.add_var m ~obj:1. ~upper:10. "x" in
  let sol1 = Lp.Model.solve m in
  check_float "first solve" 10. sol1.Lp.Model.objective;
  Lp.Model.add_le m [ (1., x) ] 7.;
  let sol2 = Lp.Model.solve m in
  check_float "second solve" 7. sol2.Lp.Model.objective

(* Randomized cross-check: the revised solver agrees with the dense
   reference on status and objective for random bounded LPs. *)
let random_lp_agrees =
  let gen =
    QCheck.make ~print:(fun seed -> Printf.sprintf "seed=%d" seed)
      QCheck.Gen.(0 -- 100_000)
  in
  QCheck.Test.make ~name:"revised simplex agrees with dense reference"
    ~count:300 gen (fun seed ->
      let rand = Random.State.make [| seed |] in
      let nvars = 1 + Random.State.int rand 7 in
      let nrows = 1 + Random.State.int rand 7 in
      let dir =
        if Random.State.bool rand then Lp.Model.Maximize else Lp.Model.Minimize
      in
      let m = Lp.Model.create ~direction:dir () in
      let vars =
        Array.init nvars (fun i ->
            (* Finite upper bounds keep the LP bounded, so statuses are
               either Optimal or Infeasible. *)
            Lp.Model.add_var m
              ~upper:(float_of_int (1 + Random.State.int rand 10))
              ~obj:(Random.State.float rand 8. -. 4.)
              (Printf.sprintf "x%d" i))
      in
      for _ = 1 to nrows do
        let terms = ref [] in
        for v = 0 to nvars - 1 do
          if Random.State.float rand 1. < 0.6 then
            terms :=
              (Random.State.float rand 6. -. 3., vars.(v)) :: !terms
        done;
        let rhs = Random.State.float rand 12. -. 2. in
        match Random.State.int rand 3 with
        | 0 -> Lp.Model.add_le m !terms rhs
        | 1 -> Lp.Model.add_ge m !terms (rhs -. 6.)
        | _ -> if !terms <> [] then Lp.Model.add_le m !terms rhs
      done;
      let sol_r = Lp.Model.solve ~solver:`Revised m in
      let sol_d = Lp.Model.solve ~solver:`Dense m in
      match (sol_r.Lp.Model.status, sol_d.Lp.Model.status) with
      | Lp.Model.Optimal, Lp.Model.Optimal ->
          Float.abs (sol_r.Lp.Model.objective -. sol_d.Lp.Model.objective)
          <= 1e-5 *. (1. +. Float.abs sol_d.Lp.Model.objective)
      | Lp.Model.Infeasible, Lp.Model.Infeasible -> true
      | _, _ -> false)

(* Random LPs: the revised solution is primal-feasible for the lowered
   problem (checked against the model rows directly). *)
let random_lp_feasible =
  let gen = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000) in
  QCheck.Test.make ~name:"revised solutions satisfy all constraints"
    ~count:300 gen (fun seed ->
      let rand = Random.State.make [| seed + 7_777 |] in
      let nvars = 1 + Random.State.int rand 10 in
      let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
      let vars =
        Array.init nvars (fun i ->
            Lp.Model.add_var m ~upper:5. ~obj:(Random.State.float rand 2.)
              (Printf.sprintf "x%d" i))
      in
      let rows = ref [] in
      for _ = 1 to 1 + Random.State.int rand 10 do
        let terms =
          Array.to_list vars
          |> List.filter_map (fun v ->
                 if Random.State.float rand 1. < 0.5 then
                   Some (Random.State.float rand 4., v)
                 else None)
        in
        let rhs = Random.State.float rand 10. in
        Lp.Model.add_le m terms rhs;
        rows := (terms, rhs) :: !rows
      done;
      let sol = Lp.Model.solve m in
      match sol.Lp.Model.status with
      | Lp.Model.Optimal ->
          List.for_all
            (fun (terms, rhs) ->
              let lhs =
                List.fold_left
                  (fun acc (c, v) -> acc +. (c *. Lp.Model.value sol v))
                  0. terms
              in
              lhs <= rhs +. 1e-6)
            !rows
          && Array.for_all
               (fun v ->
                 let x = Lp.Model.value sol v in
                 x >= -1e-6 && x <= 5. +. 1e-6)
               vars
      | _ -> false)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ random_lp_agrees; random_lp_feasible ]

let () =
  Alcotest.run "lp"
    [
      ( "sparse_vec",
        [
          Alcotest.test_case "of_assoc dedups and sorts" `Quick test_vec_of_assoc;
          Alcotest.test_case "cancelling entries drop" `Quick test_vec_cancel;
          Alcotest.test_case "dot and axpy" `Quick test_vec_dot_axpy;
          Alcotest.test_case "negative index rejected" `Quick test_vec_negative_index;
          Alcotest.test_case "of_arrays checks order" `Quick test_vec_of_arrays_unsorted;
          Alcotest.test_case "max_abs and scale" `Quick test_vec_max_abs_scale;
        ] );
      ( "spa",
        [ Alcotest.test_case "accumulate and extract" `Quick test_spa_roundtrip ] );
      ( "lu",
        [
          Alcotest.test_case "identity" `Quick test_lu_identity;
          Alcotest.test_case "permutation" `Quick test_lu_permutation;
          Alcotest.test_case "random systems solve" `Quick test_lu_random;
          Alcotest.test_case "singular detected" `Quick test_lu_singular;
          Alcotest.test_case "fill accounting" `Quick test_lu_fill_nnz;
        ] );
      ( "dense_simplex",
        [
          Alcotest.test_case "textbook max" `Quick test_dense_basic_max;
          Alcotest.test_case "min with >=" `Quick test_dense_min_with_ge;
          Alcotest.test_case "equality rows" `Quick test_dense_eq;
          Alcotest.test_case "infeasible" `Quick test_dense_infeasible;
          Alcotest.test_case "unbounded" `Quick test_dense_unbounded;
          Alcotest.test_case "degenerate (Bland terminates)" `Quick test_dense_degenerate;
        ] );
      ( "model_revised",
        [
          Alcotest.test_case "textbook max" `Quick test_model_basic_max;
          Alcotest.test_case "variable bounds" `Quick test_model_bounds;
          Alcotest.test_case "free variable" `Quick test_model_free_var;
          Alcotest.test_case "fixed variable" `Quick test_model_fixed_var;
          Alcotest.test_case "infeasible" `Quick test_model_infeasible;
          Alcotest.test_case "unbounded" `Quick test_model_unbounded;
          Alcotest.test_case "negative rhs (phase 1)" `Quick test_model_negative_rhs;
          Alcotest.test_case "equality rows" `Quick test_model_eq_rows;
          Alcotest.test_case "incremental re-solve" `Quick test_model_resolve_after_adding;
        ] );
      ("properties", qcheck_cases);
    ]

(* Tests for value fields, sample sets, the Intel-lab-like generator and
   the sliding window. *)

let check_float = Alcotest.(check (float 1e-9))

(* ---- Field ---- *)

let test_independent_gaussian_moments () =
  let f =
    Sampling.Field.independent_gaussian ~means:[| 0.; 10. |] ~sigmas:[| 1.; 2. |]
  in
  let rng = Rng.create 1 in
  let a = Array.init 30_000 (fun _ -> (f.Sampling.Field.draw rng).(1)) in
  Alcotest.(check bool) "mean near 10" true
    (Float.abs (Sampling.Stats.mean a -. 10.) < 0.05);
  Alcotest.(check bool) "variance near 4" true
    (Float.abs (Sampling.Stats.variance a -. 4.) < 0.2)

let test_field_length_mismatch () =
  Alcotest.check_raises "mismatch rejected"
    (Invalid_argument "Field.independent_gaussian: length mismatch") (fun () ->
      ignore (Sampling.Field.independent_gaussian ~means:[| 0. |] ~sigmas:[||]))

let test_contention_exceed_prob () =
  (* Empirically verify that zone nodes exceed the background mean with the
     configured probability. *)
  let zone = [| -1; 0; 0; 0; 0 |] in
  let f =
    Sampling.Field.contention_zones ~zone ~background_mean:20.
      ~background_sigma:0.3 ~exceed_prob:0.4 ~mean_gap:2.
  in
  let rng = Rng.create 2 in
  let exceed = ref 0 and total = ref 0 in
  for _ = 1 to 20_000 do
    let xs = f.Sampling.Field.draw rng in
    for i = 1 to 4 do
      incr total;
      if xs.(i) > 20. then incr exceed
    done
  done;
  let p = float_of_int !exceed /. float_of_int !total in
  Alcotest.(check bool) "exceed prob near 0.4" true (Float.abs (p -. 0.4) < 0.01)

let test_contention_rejects_bad_prob () =
  Alcotest.check_raises "p >= 0.5 rejected"
    (Invalid_argument "Field.contention_zones: exceed_prob must be in (0, 0.5)")
    (fun () ->
      ignore
        (Sampling.Field.contention_zones ~zone:[| 0 |] ~background_mean:0.
           ~background_sigma:1. ~exceed_prob:0.5 ~mean_gap:1.))

let test_scaled_field () =
  let f = Sampling.Field.independent_gaussian ~means:[| 0.; 100. |] ~sigmas:[| 1.; 1. |] in
  let z = Sampling.Field.scaled f ~sigma_scale:0. in
  let rng = Rng.create 3 in
  let xs = z.Sampling.Field.draw rng in
  (* With scale 0 every reading collapses to the epoch mean. *)
  check_float "collapsed" xs.(0) xs.(1)

(* ---- Sample_set ---- *)

let test_top_k_nodes () =
  let top = Sampling.Sample_set.top_k_nodes ~k:2 [| 1.; 5.; 3.; 5. |] in
  Alcotest.(check (array int)) "ties to smaller id" [| 1; 3 |] top

let test_top_k_larger_than_n () =
  let top = Sampling.Sample_set.top_k_nodes ~k:10 [| 1.; 2. |] in
  Alcotest.(check int) "clipped at n" 2 (Array.length top)

let test_sample_set_matrix () =
  let values = [| [| 1.; 9.; 5. |]; [| 7.; 2.; 6. |] |] in
  let s = Sampling.Sample_set.of_values ~k:2 values in
  Alcotest.(check (array int)) "ones of sample 0" [| 1; 2 |]
    s.Sampling.Sample_set.ones.(0);
  Alcotest.(check (array int)) "ones of sample 1" [| 0; 2 |]
    s.Sampling.Sample_set.ones.(1);
  Alcotest.(check (array int)) "column sums" [| 1; 1; 2 |]
    s.Sampling.Sample_set.colsum;
  Alcotest.(check bool) "is_one matches" true s.Sampling.Sample_set.is_one.(0).(1);
  Alcotest.(check bool) "is_one matches 2" false
    s.Sampling.Sample_set.is_one.(0).(0)

let test_sample_set_rejects_ragged () =
  Alcotest.check_raises "ragged rejected"
    (Invalid_argument "Sample_set.of_values: ragged samples") (fun () ->
      ignore (Sampling.Sample_set.of_values ~k:1 [| [| 1. |]; [| 1.; 2. |] |]))

let test_sample_set_restrict () =
  let values = [| [| 1.; 2. |]; [| 2.; 1. |]; [| 1.; 2. |] |] in
  let s = Sampling.Sample_set.of_values ~k:1 values in
  let r = Sampling.Sample_set.restrict s ~count:2 in
  Alcotest.(check int) "restricted" 2 (Sampling.Sample_set.n_samples r);
  Alcotest.(check (array int)) "recomputed colsum" [| 1; 1 |]
    r.Sampling.Sample_set.colsum

let colsum_invariant =
  QCheck.Test.make ~name:"each sample contributes exactly k ones" ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 30 in
      let k = 1 + Rng.int rng n in
      let count = 1 + Rng.int rng 20 in
      let f =
        Sampling.Field.random_gaussian rng ~n ~mean_lo:0. ~mean_hi:10.
          ~sigma_lo:0.5 ~sigma_hi:3.
      in
      let s = Sampling.Sample_set.draw rng f ~k ~count in
      let total = Array.fold_left ( + ) 0 s.Sampling.Sample_set.colsum in
      total = count * Int.min k n
      && Array.for_all
           (fun ones -> Array.length ones = Int.min k n)
           s.Sampling.Sample_set.ones)

let accuracy_bounds =
  QCheck.Test.make ~name:"sample accuracy lies in [0,1]" ~count:100
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create seed in
      let n = 3 + Rng.int rng 20 in
      let k = 1 + Rng.int rng 5 in
      let f =
        Sampling.Field.random_gaussian rng ~n ~mean_lo:0. ~mean_hi:5.
          ~sigma_lo:0.1 ~sigma_hi:2.
      in
      let s = Sampling.Sample_set.draw rng f ~k ~count:3 in
      let some_nodes = List.init (Int.min 4 n) Fun.id in
      let a = Sampling.Sample_set.accuracy s ~k ~returned:some_nodes ~sample:0 in
      a >= 0. && a <= 1.)

(* ---- Intel_lab ---- *)

let test_intel_lab_shape () =
  let rng = Rng.create 4 in
  let lab = Sampling.Intel_lab.generate rng ~epochs:200 () in
  Alcotest.(check int) "54 motes" 54
    (Sensor.Placement.n lab.Sampling.Intel_lab.layout);
  Alcotest.(check int) "epoch count" 200
    (Array.length lab.Sampling.Intel_lab.epochs);
  Alcotest.(check bool) "some readings were interpolated" true
    (lab.Sampling.Intel_lab.missing_filled > 0)

let test_intel_lab_predictable_topk () =
  (* The defining property: top-k locations are stable across epochs. *)
  let rng = Rng.create 5 in
  let lab = Sampling.Intel_lab.generate rng ~epochs:300 () in
  let k = 10 in
  let tops =
    Array.map
      (fun epoch -> Sampling.Sample_set.top_k_nodes ~k epoch)
      lab.Sampling.Intel_lab.epochs
  in
  (* Union of all top-k sets across epochs should be small relative to n. *)
  let union = Hashtbl.create 54 in
  Array.iter (Array.iter (fun i -> Hashtbl.replace union i ())) tops;
  Alcotest.(check bool) "top-k support is concentrated" true
    (Hashtbl.length union <= (5 * k / 2))

let test_intel_lab_training_split () =
  let rng = Rng.create 6 in
  let lab = Sampling.Intel_lab.generate rng ~epochs:50 () in
  let train = Sampling.Intel_lab.training_epochs lab ~count:30 in
  let test = Sampling.Intel_lab.test_epochs lab ~from_:30 in
  Alcotest.(check int) "train size" 30 (Array.length train);
  Alcotest.(check int) "test size" 20 (Array.length test)

(* ---- Window ---- *)

let test_window_expiry () =
  let w = Sampling.Window.create ~capacity:3 in
  List.iter
    (fun v -> Sampling.Window.add w [| v; -.v |])
    [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check int) "capped at capacity" 3 (Sampling.Window.length w);
  let s = Sampling.Window.to_sample_set w ~k:1 in
  (* Oldest two (1., 2.) expired; newest three remain in order. *)
  Alcotest.(check (float 1e-9)) "oldest kept sample" 3.
    s.Sampling.Sample_set.values.(0).(0);
  Alcotest.(check (float 1e-9)) "newest sample" 5.
    s.Sampling.Sample_set.values.(2).(0)

let test_window_empty () =
  let w = Sampling.Window.create ~capacity:2 in
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Window.to_sample_set: empty window") (fun () ->
      ignore (Sampling.Window.to_sample_set w ~k:1))

let test_policy_adapts () =
  let p = Sampling.Window.Policy.create () in
  let base = Sampling.Window.Policy.rate p in
  Sampling.Window.Policy.observe_accuracy p 0.2;
  let raised = Sampling.Window.Policy.rate p in
  Alcotest.(check bool) "rate rises on bad accuracy" true (raised > base);
  for _ = 1 to 50 do
    Sampling.Window.Policy.observe_accuracy p 1.0
  done;
  Alcotest.(check (float 1e-9)) "rate decays back to base" base
    (Sampling.Window.Policy.rate p)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ colsum_invariant; accuracy_bounds ]

let () =
  Alcotest.run "sampling"
    [
      ( "field",
        [
          Alcotest.test_case "gaussian moments" `Quick test_independent_gaussian_moments;
          Alcotest.test_case "length mismatch" `Quick test_field_length_mismatch;
          Alcotest.test_case "contention exceed prob" `Quick test_contention_exceed_prob;
          Alcotest.test_case "bad exceed prob" `Quick test_contention_rejects_bad_prob;
          Alcotest.test_case "scaled field" `Quick test_scaled_field;
        ] );
      ( "sample_set",
        [
          Alcotest.test_case "top_k ties" `Quick test_top_k_nodes;
          Alcotest.test_case "top_k clipped" `Quick test_top_k_larger_than_n;
          Alcotest.test_case "boolean matrix" `Quick test_sample_set_matrix;
          Alcotest.test_case "ragged rejected" `Quick test_sample_set_rejects_ragged;
          Alcotest.test_case "restrict" `Quick test_sample_set_restrict;
        ] );
      ( "intel_lab",
        [
          Alcotest.test_case "shape" `Quick test_intel_lab_shape;
          Alcotest.test_case "predictable top-k" `Quick test_intel_lab_predictable_topk;
          Alcotest.test_case "train/test split" `Quick test_intel_lab_training_split;
        ] );
      ( "window",
        [
          Alcotest.test_case "expiry" `Quick test_window_expiry;
          Alcotest.test_case "empty" `Quick test_window_empty;
          Alcotest.test_case "policy adapts" `Quick test_policy_adapts;
        ] );
      ("properties", qcheck_cases);
    ]

test/sampling/test_sampling.mli:

test/sampling/test_mvn.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Rng Sampling Sensor

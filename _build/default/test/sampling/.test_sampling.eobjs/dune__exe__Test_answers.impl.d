test/sampling/test_answers.ml: Alcotest Array List QCheck QCheck_alcotest Rng Sampling

test/sampling/test_answers.mli:

test/sampling/test_sampling.ml: Alcotest Array Float Fun Hashtbl Int List QCheck QCheck_alcotest Rng Sampling Sensor

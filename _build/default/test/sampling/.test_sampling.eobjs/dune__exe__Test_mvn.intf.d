test/sampling/test_mvn.mli:

(* Tests for the multivariate-normal model substrate. *)

let check_float = Alcotest.(check (float 1e-9))

let mat_mul_t l =
  let n = Array.length l in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let acc = ref 0. in
          for p = 0 to n - 1 do
            acc := !acc +. (l.(i).(p) *. l.(j).(p))
          done;
          !acc))

let test_cholesky_identity () =
  let eye = Array.init 4 (fun i -> Array.init 4 (fun j -> if i = j then 1. else 0.)) in
  let l = Sampling.Mvn.cholesky eye in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v -> check_float "identity factor" (if i = j then 1. else 0.) v)
        row)
    l

let test_cholesky_roundtrip () =
  let a = [| [| 4.; 2.; 0.6 |]; [| 2.; 3.; 1. |]; [| 0.6; 1.; 2. |] |] in
  let l = Sampling.Mvn.cholesky a in
  let back = mat_mul_t l in
  for i = 0 to 2 do
    for j = 0 to 2 do
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "a[%d][%d]" i j)
        a.(i).(j) back.(i).(j)
    done
  done;
  (* Lower triangular. *)
  check_float "upper zero" 0. l.(0).(2)

let test_cholesky_rejects_asymmetric () =
  Alcotest.check_raises "asymmetric"
    (Invalid_argument "Mvn.cholesky: not symmetric") (fun () ->
      ignore (Sampling.Mvn.cholesky [| [| 1.; 2. |]; [| 0.; 1. |] |]))

let test_cholesky_rejects_indefinite () =
  Alcotest.check_raises "indefinite"
    (Invalid_argument "Mvn.cholesky: not positive definite") (fun () ->
      ignore (Sampling.Mvn.cholesky [| [| 1.; 2. |]; [| 2.; 1. |] |]))

let test_field_moments () =
  let covariance = [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  let f = Sampling.Mvn.field ~means:[| 5.; -3. |] ~covariance in
  let rng = Rng.create 1 in
  let count = 40_000 in
  let draws = Array.init count (fun _ -> f.Sampling.Field.draw rng) in
  let est = Sampling.Mvn.empirical_covariance draws in
  let m0 =
    Array.fold_left (fun a r -> a +. r.(0)) 0. draws /. float_of_int count
  in
  Alcotest.(check bool) "mean recovered" true (Float.abs (m0 -. 5.) < 0.05);
  Alcotest.(check bool) "variance recovered" true
    (Float.abs (est.(0).(0) -. 2.) < 0.1);
  Alcotest.(check bool) "correlation recovered" true
    (Float.abs (est.(0).(1) -. 1.) < 0.1)

let test_spatial_kernel_decay () =
  let positions =
    [|
      { Sensor.Placement.x = 0.; y = 0. };
      { Sensor.Placement.x = 5.; y = 0. };
      { Sensor.Placement.x = 100.; y = 0. };
    |]
  in
  let f =
    Sampling.Mvn.spatial ~positions ~means:[| 0.; 0.; 0. |] ~sill:4.
      ~range:20. ~nugget:0.01 ()
  in
  let rng = Rng.create 2 in
  let draws = Array.init 30_000 (fun _ -> f.Sampling.Field.draw rng) in
  let cov = Sampling.Mvn.empirical_covariance draws in
  Alcotest.(check bool) "near pair strongly correlated" true
    (cov.(0).(1) > 2.5);
  Alcotest.(check bool) "far pair nearly independent" true
    (Float.abs cov.(0).(2) < 0.3);
  Alcotest.(check bool) "correlation decays with distance" true
    (cov.(0).(1) > cov.(0).(2))

let test_empirical_covariance_small () =
  Alcotest.check_raises "one sample rejected"
    (Invalid_argument "Mvn.empirical_covariance: need >= 2 samples")
    (fun () -> ignore (Sampling.Mvn.empirical_covariance [| [| 1. |] |]))

let cholesky_roundtrip_random =
  QCheck.Test.make ~name:"cholesky round-trips random SPD matrices" ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 10 in
      (* SPD by construction: B B^T + eps I. *)
      let b =
        Array.init n (fun _ ->
            Array.init n (fun _ -> Rng.uniform rng ~lo:(-1.) ~hi:1.))
      in
      let a =
        Array.init n (fun i ->
            Array.init n (fun j ->
                let acc = ref (if i = j then 0.1 else 0.) in
                for p = 0 to n - 1 do
                  acc := !acc +. (b.(i).(p) *. b.(j).(p))
                done;
                !acc))
      in
      let l = Sampling.Mvn.cholesky a in
      let back = mat_mul_t l in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Float.abs (a.(i).(j) -. back.(i).(j)) > 1e-8 then ok := false
        done
      done;
      !ok)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ cholesky_roundtrip_random ]

let () =
  Alcotest.run "mvn"
    [
      ( "cholesky",
        [
          Alcotest.test_case "identity" `Quick test_cholesky_identity;
          Alcotest.test_case "round trip" `Quick test_cholesky_roundtrip;
          Alcotest.test_case "asymmetric rejected" `Quick test_cholesky_rejects_asymmetric;
          Alcotest.test_case "indefinite rejected" `Quick test_cholesky_rejects_indefinite;
        ] );
      ( "field",
        [
          Alcotest.test_case "moments" `Quick test_field_moments;
          Alcotest.test_case "spatial kernel decay" `Quick test_spatial_kernel_decay;
          Alcotest.test_case "small sample rejected" `Quick test_empirical_covariance_small;
        ] );
      ("properties", qcheck_cases);
    ]

(* Tests for the generalized answer models (Section 3's remark). *)

let samples = [| [| 1.; 9.; 5.; 7.; 3. |]; [| 8.; 2.; 6.; 4.; 0. |] |]

let test_top_k_matches_sample_set () =
  let a = Sampling.Answers.top_k ~k:2 samples in
  let s = Sampling.Sample_set.of_values ~k:2 samples in
  Alcotest.(check (array int)) "same ones row 0" s.Sampling.Sample_set.ones.(0)
    a.Sampling.Answers.ones.(0);
  Alcotest.(check (array int)) "same colsum" s.Sampling.Sample_set.colsum
    a.Sampling.Answers.colsum

let test_selection_answers () =
  let a = Sampling.Answers.selection ~threshold:5. samples in
  Alcotest.(check (array int)) "sample 0: >5" [| 1; 3 |]
    a.Sampling.Answers.ones.(0);
  Alcotest.(check (array int)) "sample 1: >5" [| 0; 2 |]
    a.Sampling.Answers.ones.(1);
  Alcotest.(check int) "max answer" 2 a.Sampling.Answers.max_answer;
  Alcotest.(check bool) "is_one consistent" true
    a.Sampling.Answers.is_one.(0).(1)

let test_selection_empty_answer () =
  let a = Sampling.Answers.selection ~threshold:100. samples in
  Alcotest.(check int) "no ones" 0 (Array.length a.Sampling.Answers.ones.(0));
  Alcotest.(check int) "max answer 0" 0 a.Sampling.Answers.max_answer

let test_quantile_answers () =
  (* Sample 0 sorted ascending: 1(n0) 3(n4) 5(n2) 7(n3) 9(n1); the median
     (phi=0.5) is node 2; window 1 adds nodes 4 and 3. *)
  let a = Sampling.Answers.quantile ~phi:0.5 ~window:1 samples in
  Alcotest.(check (list int)) "median window of sample 0" [ 2; 3; 4 ]
    (List.sort compare (Array.to_list a.Sampling.Answers.ones.(0)))

let test_quantile_window_zero () =
  let a = Sampling.Answers.quantile ~phi:0.5 ~window:0 samples in
  Alcotest.(check (array int)) "exact median node" [| 2 |]
    a.Sampling.Answers.ones.(0)

let test_quantile_bad_phi () =
  Alcotest.check_raises "phi out of range"
    (Invalid_argument "Answers.quantile: phi must be in (0, 1)") (fun () ->
      ignore (Sampling.Answers.quantile ~phi:1. ~window:0 samples))

let test_extremes_answers () =
  let a = Sampling.Answers.extremes ~k:1 samples in
  (* Sample 0: min at node 0, max at node 1. *)
  Alcotest.(check (list int)) "both tails" [ 0; 1 ]
    (List.sort compare (Array.to_list a.Sampling.Answers.ones.(0)))

let test_extremes_overlap_dedup () =
  (* With k at least half of n the tails overlap; entries must be unique. *)
  let a = Sampling.Answers.extremes ~k:4 samples in
  let row = Array.to_list a.Sampling.Answers.ones.(0) in
  Alcotest.(check int) "no duplicates" (List.length row)
    (List.length (List.sort_uniq compare row))

let test_make_rejects_bad_answer () =
  Alcotest.check_raises "out-of-range index"
    (Invalid_argument "Answers.make: answer index out of range") (fun () ->
      ignore
        (Sampling.Answers.make ~name:"bad" ~answer:(fun _ -> [| 99 |]) samples))

let quantile_window_bounds =
  QCheck.Test.make ~name:"quantile windows have the right size" ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create seed in
      let n = 3 + Rng.int rng 30 in
      let window = Rng.int rng 4 in
      let phi = 0.1 +. Rng.float rng 0.8 in
      let values =
        Array.init 3 (fun _ ->
            Array.init n (fun _ -> Rng.gaussian rng ~mu:0. ~sigma:5.))
      in
      let a = Sampling.Answers.quantile ~phi ~window values in
      Array.for_all
        (fun ones ->
          let len = Array.length ones in
          len >= 1 && len <= (2 * window) + 1)
        a.Sampling.Answers.ones)

let selection_colsum_counts =
  QCheck.Test.make ~name:"selection colsums count threshold crossings"
    ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 1) in
      let n = 2 + Rng.int rng 20 in
      let count = 1 + Rng.int rng 10 in
      let values =
        Array.init count (fun _ ->
            Array.init n (fun _ -> Rng.gaussian rng ~mu:0. ~sigma:3.))
      in
      let a = Sampling.Answers.selection ~threshold:1. values in
      let expected = Array.make n 0 in
      Array.iter
        (Array.iteri (fun i v -> if v > 1. then expected.(i) <- expected.(i) + 1))
        values;
      a.Sampling.Answers.colsum = expected)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ quantile_window_bounds; selection_colsum_counts ]

let () =
  Alcotest.run "answers"
    [
      ( "answers",
        [
          Alcotest.test_case "top-k matches Sample_set" `Quick test_top_k_matches_sample_set;
          Alcotest.test_case "selection" `Quick test_selection_answers;
          Alcotest.test_case "selection can be empty" `Quick test_selection_empty_answer;
          Alcotest.test_case "quantile window" `Quick test_quantile_answers;
          Alcotest.test_case "quantile exact" `Quick test_quantile_window_zero;
          Alcotest.test_case "quantile bad phi" `Quick test_quantile_bad_phi;
          Alcotest.test_case "extremes" `Quick test_extremes_answers;
          Alcotest.test_case "extremes dedup" `Quick test_extremes_overlap_dedup;
          Alcotest.test_case "bad answer rejected" `Quick test_make_rejects_bad_answer;
        ] );
      ("properties", qcheck_cases);
    ]

(* Tests for the discrete-event engine: event ordering, message delivery,
   energy conservation, failures and timers. *)

let check_float = Alcotest.(check (float 1e-9))

(* ---- Event_queue ---- *)

let test_queue_order () =
  let q = Simnet.Event_queue.create () in
  Simnet.Event_queue.add q ~time:3. "c";
  Simnet.Event_queue.add q ~time:1. "a";
  Simnet.Event_queue.add q ~time:2. "b";
  let order = List.init 3 (fun _ -> snd (Option.get (Simnet.Event_queue.pop q))) in
  Alcotest.(check (list string)) "sorted by time" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "drained" true (Simnet.Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Simnet.Event_queue.create () in
  for i = 0 to 9 do
    Simnet.Event_queue.add q ~time:1. i
  done;
  let order = List.init 10 (fun _ -> snd (Option.get (Simnet.Event_queue.pop q))) in
  Alcotest.(check (list int)) "insertion order on ties" (List.init 10 Fun.id) order

let test_queue_nan_rejected () =
  let q = Simnet.Event_queue.create () in
  Alcotest.check_raises "NaN rejected"
    (Invalid_argument "Event_queue.add: NaN time") (fun () ->
      Simnet.Event_queue.add q ~time:Float.nan ())

let test_queue_interleaved () =
  let q = Simnet.Event_queue.create () in
  let rng = Rng.create 1 in
  let last = ref neg_infinity in
  for _ = 1 to 200 do
    Simnet.Event_queue.add q ~time:(Rng.float rng 100.) ()
  done;
  let ok = ref true in
  let rec drain () =
    match Simnet.Event_queue.pop q with
    | None -> ()
    | Some (t, ()) ->
        if t < !last then ok := false;
        last := t;
        drain ()
  in
  drain ();
  Alcotest.(check bool) "monotone pops" true !ok

(* ---- Engine ---- *)

let chain n = Sensor.Topology.of_parents ~root:0 (Array.init n (fun i -> i - 1))

let mica = Sensor.Mica2.default

let test_engine_delivery () =
  let topo = chain 3 in
  let engine =
    Simnet.Engine.create topo mica ~payload_bytes:(fun _ -> 4) ()
  in
  let log = ref [] in
  (* Leaf 2 sends "hello" up to 1, which forwards to the root. *)
  Simnet.Engine.on_message engine ~node:1 (fun api ~src msg ->
      log := (1, src, msg) :: !log;
      api.Simnet.Engine.send ~dst:0 msg);
  Simnet.Engine.on_message engine ~node:0 (fun _ ~src msg ->
      log := (0, src, msg) :: !log);
  Simnet.Engine.on_message engine ~node:2 (fun api ~src:_ msg ->
      api.Simnet.Engine.send ~dst:1 msg);
  Simnet.Engine.inject engine ~node:2 "hello";
  let end_time = Simnet.Engine.run engine in
  Alcotest.(check (list (triple int int string)))
    "relay order" [ (0, 1, "hello"); (1, 2, "hello") ] !log;
  Alcotest.(check int) "two unicasts" 2 (Simnet.Engine.unicasts_sent engine);
  Alcotest.(check bool) "time advanced" true (end_time > 0.)

let test_engine_energy_conservation () =
  let topo = chain 2 in
  let engine =
    Simnet.Engine.create topo mica ~payload_bytes:(fun _ -> 10) ()
  in
  Simnet.Engine.on_message engine ~node:1 (fun api ~src:_ () ->
      api.Simnet.Engine.send ~dst:0 ());
  Simnet.Engine.on_message engine ~node:0 (fun _ ~src:_ () -> ());
  Simnet.Engine.inject engine ~node:1 ();
  ignore (Simnet.Engine.run engine);
  check_float "ledgers sum to the unicast cost"
    (Sensor.Mica2.unicast_bytes_mj mica ~bytes:10)
    (Simnet.Engine.total_energy engine)

let test_engine_rejects_non_neighbor () =
  let topo = chain 3 in
  let engine = Simnet.Engine.create topo mica ~payload_bytes:(fun _ -> 0) () in
  let failed = ref false in
  Simnet.Engine.on_message engine ~node:2 (fun api ~src:_ () ->
      try api.Simnet.Engine.send ~dst:0 () with Invalid_argument _ -> failed := true);
  Simnet.Engine.inject engine ~node:2 ();
  ignore (Simnet.Engine.run engine);
  Alcotest.(check bool) "skip-level send rejected" true !failed

let test_engine_broadcast_and_multicast () =
  let topo = Sensor.Topology.of_parents ~root:0 [| -1; 0; 0; 0 |] in
  let engine = Simnet.Engine.create topo mica ~payload_bytes:(fun _ -> 0) () in
  let heard = ref [] in
  for i = 1 to 3 do
    Simnet.Engine.on_message engine ~node:i (fun api ~src:_ () ->
        heard := api.Simnet.Engine.self :: !heard)
  done;
  Simnet.Engine.on_message engine ~node:0 (fun api ~src:_ () ->
      api.Simnet.Engine.multicast ~dsts:[ 1; 3 ] ());
  Simnet.Engine.inject engine ~node:0 ();
  ignore (Simnet.Engine.run engine);
  Alcotest.(check (list int)) "only multicast targets heard" [ 1; 3 ]
    (List.sort compare !heard);
  Alcotest.(check int) "one broadcast" 1 (Simnet.Engine.broadcasts_sent engine);
  check_float "multicast cost"
    (Sensor.Mica2.broadcast_mj mica ~receivers:2 ~bytes:0)
    (Simnet.Engine.total_energy engine)

let test_engine_timer () =
  let topo = chain 1 in
  let engine = Simnet.Engine.create topo mica ~payload_bytes:(fun _ -> 0) () in
  let fired = ref [] in
  Simnet.Engine.on_message engine ~node:0 (fun api ~src:_ () ->
      api.Simnet.Engine.set_timer ~delay:5. (fun () -> fired := 5 :: !fired);
      api.Simnet.Engine.set_timer ~delay:1. (fun () -> fired := 1 :: !fired));
  Simnet.Engine.inject engine ~node:0 ();
  let t = Simnet.Engine.run engine in
  Alcotest.(check (list int)) "timers fire in order" [ 5; 1 ] !fired;
  Alcotest.(check bool) "final time past last timer" true (t >= 5.)

let test_engine_failures_inflate () =
  let topo = chain 2 in
  let failure =
    {
      Sensor.Failure.fail_prob = [| 0.; 1. |];  (* edge 1 always fails *)
      reroute_factor = [| 1.; 2. |];
    }
  in
  let rng = Rng.create 1 in
  let engine =
    Simnet.Engine.create topo mica ~failure:(failure, rng)
      ~payload_bytes:(fun _ -> 10)
      ()
  in
  Simnet.Engine.on_message engine ~node:1 (fun api ~src:_ () ->
      api.Simnet.Engine.send ~dst:0 ());
  Simnet.Engine.on_message engine ~node:0 (fun _ ~src:_ () -> ());
  Simnet.Engine.inject engine ~node:1 ();
  ignore (Simnet.Engine.run engine);
  Alcotest.(check int) "reroute recorded" 1 (Simnet.Engine.reroutes engine);
  check_float "cost doubled"
    (2. *. Sensor.Mica2.unicast_bytes_mj mica ~bytes:10)
    (Simnet.Engine.total_energy engine)

let test_engine_livelock_guard () =
  let topo = chain 2 in
  let engine = Simnet.Engine.create topo mica ~payload_bytes:(fun _ -> 0) () in
  (* Two nodes bounce a message forever. *)
  Simnet.Engine.on_message engine ~node:0 (fun api ~src:_ () ->
      api.Simnet.Engine.send ~dst:1 ());
  Simnet.Engine.on_message engine ~node:1 (fun api ~src:_ () ->
      api.Simnet.Engine.send ~dst:0 ());
  Simnet.Engine.inject engine ~node:0 ();
  (try
     ignore (Simnet.Engine.run ~max_events:1000 engine);
     Alcotest.fail "expected livelock failure"
   with Failure _ -> ())

let () =
  Alcotest.run "simnet"
    [
      ( "event_queue",
        [
          Alcotest.test_case "time order" `Quick test_queue_order;
          Alcotest.test_case "FIFO on ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "NaN rejected" `Quick test_queue_nan_rejected;
          Alcotest.test_case "random interleaving" `Quick test_queue_interleaved;
        ] );
      ( "engine",
        [
          Alcotest.test_case "hop-by-hop delivery" `Quick test_engine_delivery;
          Alcotest.test_case "energy conservation" `Quick test_engine_energy_conservation;
          Alcotest.test_case "non-neighbor rejected" `Quick test_engine_rejects_non_neighbor;
          Alcotest.test_case "broadcast and multicast" `Quick test_engine_broadcast_and_multicast;
          Alcotest.test_case "timers" `Quick test_engine_timer;
          Alcotest.test_case "failures inflate cost" `Quick test_engine_failures_inflate;
          Alcotest.test_case "livelock guard" `Quick test_engine_livelock_guard;
        ] );
    ]

test/sensor/test_render.ml: Alcotest Array List QCheck QCheck_alcotest Rng Sensor String

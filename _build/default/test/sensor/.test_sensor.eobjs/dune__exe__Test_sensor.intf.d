test/sensor/test_sensor.mli:

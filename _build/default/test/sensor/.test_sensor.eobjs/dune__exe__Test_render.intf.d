test/sensor/test_render.mli:

test/sensor/test_sensor.ml: Alcotest Array List Printf QCheck QCheck_alcotest Rng Sensor

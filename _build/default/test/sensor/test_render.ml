(* Tests for the ASCII tree renderer. *)

let test_render_chain () =
  let topo = Sensor.Topology.of_parents ~root:0 [| -1; 0; 1 |] in
  Alcotest.(check string) "chain" "0\n`-- 1\n    `-- 2\n"
    (Sensor.Render.tree topo)

let test_render_star_with_annotations () =
  let topo = Sensor.Topology.of_parents ~root:0 [| -1; 0; 0 |] in
  let annotate i = if i = 2 then "[x]" else "" in
  Alcotest.(check string) "star" "0\n|-- 1\n`-- 2 [x]\n"
    (Sensor.Render.tree ~annotate topo)

let render_mentions_every_node =
  QCheck.Test.make ~name:"every node appears exactly once" ~count:100
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 30 in
      let parent = Array.init n (fun i -> if i = 0 then -1 else Rng.int rng i) in
      let topo = Sensor.Topology.of_parents ~root:0 parent in
      let text = Sensor.Render.tree topo in
      let lines = String.split_on_char '\n' text in
      List.length (List.filter (fun l -> l <> "") lines) = n)

let () =
  Alcotest.run "render"
    [
      ( "render",
        [
          Alcotest.test_case "chain" `Quick test_render_chain;
          Alcotest.test_case "annotations" `Quick test_render_star_with_annotations;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest render_mentions_every_node ]);
    ]

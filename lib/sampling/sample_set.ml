type t = {
  n : int;
  k : int;
  values : float array array;
  ones : int array array;
  is_one : bool array array;
  colsum : int array;
}

let top_k_nodes ~k values =
  let n = Array.length values in
  let order = Array.init n (fun i -> i) in
  (* Sort by value descending, node id ascending on ties. *)
  Array.sort
    (fun a b ->
      match Float.compare values.(b) values.(a) with
      | 0 -> Int.compare a b
      | c -> c)
    order;
  Array.sub order 0 (Int.min k n)

let of_values ~k values =
  if k < 1 then invalid_arg "Sample_set.of_values: k must be positive";
  let count = Array.length values in
  if count = 0 then invalid_arg "Sample_set.of_values: no samples";
  let n = Array.length values.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Sample_set.of_values: ragged samples")
    values;
  let ones = Array.map (fun row -> top_k_nodes ~k row) values in
  let is_one =
    Array.map
      (fun one_row ->
        let flags = Array.make n false in
        Array.iter (fun i -> flags.(i) <- true) one_row;
        flags)
      ones
  in
  let colsum = Array.make n 0 in
  Array.iter
    (Array.iter (fun i -> colsum.(i) <- colsum.(i) + 1))
    ones;
  { n; k; values; ones; is_one; colsum }

let draw rng field ~k ~count =
  of_values ~k (Array.init count (fun _ -> field.Field.draw rng))

let n_samples t = Array.length t.values

let restrict t ~count =
  if count < 1 || count > n_samples t then
    invalid_arg "Sample_set.restrict: bad count";
  of_values ~k:t.k (Array.sub t.values 0 count)

let slice t ~offset ~count =
  if offset < 0 || count < 1 || offset + count > n_samples t then
    invalid_arg "Sample_set.slice: bad range";
  of_values ~k:t.k (Array.sub t.values offset count)

let accuracy t ~k ~returned ~sample =
  let truth = top_k_nodes ~k t.values.(sample) in
  let returned_set = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace returned_set i ()) returned;
  let hit = Array.fold_left
      (fun acc i -> if Hashtbl.mem returned_set i then acc + 1 else acc)
      0 truth
  in
  float_of_int hit /. float_of_int (Array.length truth)

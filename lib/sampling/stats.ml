let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty array";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.variance: empty array";
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    ss /. float_of_int (n - 1)
  end

(* Abramowitz & Stegun 7.1.26; absolute error below 1.5e-7. *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let a1 = 0.254829592
  and a2 = -0.284496736
  and a3 = 1.421413741
  and a4 = -1.453152027
  and a5 = 1.061405429 in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let poly = ((((((a5 *. t) +. a4) *. t) +. a3) *. t) +. a2) *. t +. a1 in
  sign *. (1. -. (poly *. t *. exp (-.x *. x)))

let normal_cdf x = 0.5 *. (1. +. erf (x /. sqrt 2.))

(* Acklam's inverse normal CDF approximation; relative error < 1.15e-9. *)
let normal_quantile p =
  if p <= 0. || p >= 1. then
    invalid_arg "Stats.normal_quantile: p must be in (0, 1)";
  let a0 = -3.969683028665376e+01
  and a1 = 2.209460984245205e+02
  and a2 = -2.759285104469687e+02
  and a3 = 1.383577518672690e+02
  and a4 = -3.066479806614716e+01
  and a5 = 2.506628277459239e+00 in
  let b0 = -5.447609879822406e+01
  and b1 = 1.615858368580409e+02
  and b2 = -1.556989798598866e+02
  and b3 = 6.680131188771972e+01
  and b4 = -1.328068155288572e+01 in
  let c0 = -7.784894002430293e-03
  and c1 = -3.223964580411365e-01
  and c2 = -2.400758277161838e+00
  and c3 = -2.549732539343734e+00
  and c4 = 4.374664141464968e+00
  and c5 = 2.938163982698783e+00 in
  let d0 = 7.784695709041462e-03
  and d1 = 3.224671290700398e-01
  and d2 = 2.445134137142996e+00
  and d3 = 3.754408661907416e+00 in
  let p_low = 0.02425 in
  let tail q =
    let num =
      (((((((((c0 *. q) +. c1) *. q) +. c2) *. q) +. c3) *. q) +. c4) *. q)
      +. c5
    in
    let den = (((((((d0 *. q) +. d1) *. q) +. d2) *. q) +. d3) *. q) +. 1. in
    num /. den
  in
  if p < p_low then tail (sqrt (-2. *. log p))
  else if p > 1. -. p_low then -.tail (sqrt (-2. *. log (1. -. p)))
  else begin
    let q = p -. 0.5 in
    let r = q *. q in
    let num =
      ((((((((((a0 *. r) +. a1) *. r) +. a2) *. r) +. a3) *. r) +. a4) *. r)
      +. a5)
      *. q
    in
    let den =
      (((((((((b0 *. r) +. b1) *. r) +. b2) *. r) +. b3) *. r) +. b4) *. r)
      +. 1.
    in
    num /. den
  end

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 1. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = Int.min (lo + 1) (n - 1) in
  let frac = pos -. float_of_int lo in
  (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

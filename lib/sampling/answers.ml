type t = {
  n : int;
  values : float array array;
  ones : int array array;
  is_one : bool array array;
  colsum : int array;
  max_answer : int;
  describe : string;
}

let make ~name ~answer values =
  let count = Array.length values in
  if count = 0 then invalid_arg "Answers.make: no samples";
  let n = Array.length values.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Answers.make: ragged samples")
    values;
  let ones = Array.map answer values in
  Array.iter
    (Array.iter (fun i ->
         if i < 0 || i >= n then
           invalid_arg "Answers.make: answer index out of range"))
    ones;
  let is_one =
    Array.map
      (fun one_row ->
        let flags = Array.make n false in
        Array.iter (fun i -> flags.(i) <- true) one_row;
        flags)
      ones
  in
  let colsum = Array.make n 0 in
  Array.iter (Array.iter (fun i -> colsum.(i) <- colsum.(i) + 1)) ones;
  let max_answer =
    Array.fold_left (fun acc o -> Int.max acc (Array.length o)) 0 ones
  in
  { n; values; ones; is_one; colsum; max_answer; describe = name }

let top_k ~k values =
  if k < 1 then invalid_arg "Answers.top_k: k must be positive";
  make
    ~name:(Printf.sprintf "top-%d" k)
    ~answer:(fun row -> Sample_set.top_k_nodes ~k row)
    values

let selection ~threshold values =
  make
    ~name:(Printf.sprintf "selection > %g" threshold)
    ~answer:(fun row ->
      let hits = ref [] in
      Array.iteri (fun i v -> if v > threshold then hits := i :: !hits) row;
      Array.of_list (List.rev !hits))
    values

(* Rank order used for quantiles: ascending value, ties to smaller id. *)
let ranked row =
  let order = Array.init (Array.length row) (fun i -> i) in
  Array.sort
    (fun a b ->
      match Float.compare row.(a) row.(b) with 0 -> Int.compare a b | c -> c)
    order;
  order

let quantile ~phi ~window values =
  if phi <= 0. || phi >= 1. then
    invalid_arg "Answers.quantile: phi must be in (0, 1)";
  if window < 0 then invalid_arg "Answers.quantile: negative window";
  make
    ~name:(Printf.sprintf "%g-quantile (rank window %d)" phi window)
    ~answer:(fun row ->
      let order = ranked row in
      let n = Array.length order in
      let center = int_of_float (Float.round (phi *. float_of_int (n - 1))) in
      let lo = Int.max 0 (center - window) in
      let hi = Int.min (n - 1) (center + window) in
      Array.sub order lo (hi - lo + 1))
    values

let extremes ~k values =
  if k < 1 then invalid_arg "Answers.extremes: k must be positive";
  make
    ~name:(Printf.sprintf "extremes (top and bottom %d)" k)
    ~answer:(fun row ->
      let order = ranked row in
      let n = Array.length order in
      let k = Int.min k n in
      let bottom = Array.sub order 0 k in
      let top = Array.sub order (Int.max 0 (n - k)) (Int.min k n) in
      let seen = Hashtbl.create (2 * k) in
      let keep i =
        if Hashtbl.mem seen i then false
        else begin
          Hashtbl.replace seen i ();
          true
        end
      in
      Array.of_list
        (List.filter keep (Array.to_list bottom @ Array.to_list top)))
    values

(** Small statistics toolbox: normal distribution functions and moment
    helpers used by the field generators and the test suite. *)

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument ([Stats.mean: empty array])
    on empty input — a silent 0 would poison downstream bounds. *)

val variance : float array -> float
(** Unbiased sample variance; 0. for a single observation.
    @raise Invalid_argument ([Stats.variance: empty array]) on empty
    input. *)

val normal_cdf : float -> float
(** Standard normal CDF, via an Abramowitz–Stegun erf approximation
    (absolute error below 1.5e-7). *)

val normal_quantile : float -> float
(** Inverse standard normal CDF (Acklam's approximation, relative error
    below 1.15e-9).  @raise Invalid_argument outside (0, 1). *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 1]; linear interpolation between
    order statistics.  The input array is not modified.
    @raise Invalid_argument ([Stats.percentile: empty array] /
    [Stats.percentile: p out of range]) instead of indexing out of
    bounds. *)

type 'msg api = {
  self : int;
  time : unit -> float;
  send : dst:int -> 'msg -> unit;
  broadcast_children : 'msg -> unit;
  multicast : dsts:int list -> 'msg -> unit;
  set_timer : delay:float -> (unit -> unit) -> unit;
}

type 'msg event =
  | Deliver of { dst : int; src : int; msg : 'msg }
      (* direct delivery: the lossless legacy path and [inject] *)
  | Data of { dst : int; src : int; seq : int; msg : 'msg; recv_mj : float }
      (* a sequenced data frame on the air (fault-injection mode) *)
  | AckFrame of { dst : int; src : int; seq : int }
      (* dst is the original data sender; src the acknowledging receiver *)
  | Retransmit of { src : int; dst : int; seq : int }
      (* timeout check; stale once the frame has been acknowledged *)
  | GaveUp of { src : int; dst : int; msg : 'msg }
      (* retry budget exhausted: notify the sender's give-up handler *)
  | Timer of { node : int; callback : unit -> unit }

type 'msg fault_ctx = {
  fstate : Fault.state;
  links : 'msg Reliable.t;
  policy : Reliable.policy;
  mutable retransmissions : int;
  mutable dropped : int;
  mutable duplicates : int;
  mutable gave_up : int;
}

type 'msg t = {
  topo : Sensor.Topology.t;
  mica : Sensor.Mica2.t;
  failure : (Sensor.Failure.t * Rng.t) option;
  fault : 'msg fault_ctx option;
  payload_bytes : 'msg -> int;
  queue : 'msg event Event_queue.t;
  handlers : ('msg api -> src:int -> 'msg -> unit) option array;
  give_up_handlers : ('msg api -> dst:int -> 'msg -> unit) option array;
  energy : float array;
  mutable now : float;
  mutable unicasts : int;
  mutable broadcasts : int;
  mutable reroutes : int;
  mutable bytes_sent : int;
  mutable epochs : int;
}

(* Process-wide telemetry: gated counters mirror the per-instance ledgers
   so a whole run's traffic shows up in one [Obs.Metrics.snapshot];
   the per-instance fields keep backing the public accessors exactly. *)
let m_unicasts = Obs.Metrics.counter "simnet.unicasts"
let m_broadcasts = Obs.Metrics.counter "simnet.broadcasts"
let m_retransmissions = Obs.Metrics.counter "simnet.retransmissions"
let m_bytes = Obs.Metrics.counter "simnet.bytes_sent"
let m_dropped = Obs.Metrics.counter "simnet.dropped_frames"
let m_gave_up = Obs.Metrics.counter "simnet.gave_up"
let m_epochs = Obs.Metrics.counter "simnet.epochs"
let f_energy = Obs.Metrics.fsum "simnet.energy_mj"

(* Fixed MAC overhead per transmission, seconds. *)
let mac_delay = 0.005

let create topo mica ?failure ?fault ?(policy = Reliable.default_policy)
    ~payload_bytes () =
  let n = topo.Sensor.Topology.n in
  let fault =
    match fault with
    | None -> None
    | Some (f, rng) ->
        if Fault.n f <> n then
          invalid_arg "Engine.create: fault model size mismatch";
        Some
          {
            fstate = Fault.start f rng;
            links = Reliable.create ~n;
            policy;
            retransmissions = 0;
            dropped = 0;
            duplicates = 0;
            gave_up = 0;
          }
  in
  {
    topo;
    mica;
    failure;
    fault;
    payload_bytes;
    queue = Event_queue.create ();
    handlers = Array.make n None;
    give_up_handlers = Array.make n None;
    energy = Array.make n 0.;
    now = 0.;
    unicasts = 0;
    broadcasts = 0;
    reroutes = 0;
    bytes_sent = 0;
    epochs = 0;
  }

let on_message t ~node handler = t.handlers.(node) <- Some handler

let on_give_up t ~node handler = t.give_up_handlers.(node) <- Some handler

let is_neighbor t a b =
  t.topo.Sensor.Topology.parent.(a) = b || t.topo.Sensor.Topology.parent.(b) = a

(* Edge identity: the non-parent endpoint owns the edge. *)
let edge_of t a b = if t.topo.Sensor.Topology.parent.(a) = b then a else b

let transmission_delay t bytes =
  mac_delay +. (float_of_int bytes /. t.mica.Sensor.Mica2.bytes_per_sec)

let sender_share t =
  let s = t.mica.Sensor.Mica2.send_mw in
  let r = t.mica.Sensor.Mica2.recv_mw in
  s /. (s +. r)

(* The per-message cost is split between sender and receiver in proportion
   to their power draws, so ledgers sum exactly to the Mica2 unicast cost. *)
let charge_unicast t ~src ~dst ~bytes ~multiplier =
  let total = Sensor.Mica2.unicast_bytes_mj t.mica ~bytes *. multiplier in
  let share = sender_share t in
  t.energy.(src) <- t.energy.(src) +. (total *. share);
  t.energy.(dst) <- t.energy.(dst) +. (total *. (1. -. share))

(* Reliable transmission of one frame: the sender pays its share per
   attempt, the receiver pays per copy that actually arrives, and ACKs are
   free (the Mica2 per-message cost cm already covers the handshake), so a
   lossless run costs exactly what the legacy path charges. *)
let transmit_reliable t fc ~src ~dst ~seq ~msg ~bytes ~recv_mj ~attempt =
  let d_data = transmission_delay t bytes in
  let rto0 = d_data +. transmission_delay t 0 in
  Event_queue.add t.queue ~time:(t.now +. d_data)
    (Data { dst; src; seq; msg; recv_mj });
  Event_queue.add t.queue
    ~time:(t.now +. Reliable.timeout fc.policy ~rto0 ~attempt)
    (Retransmit { src; dst; seq })

let unicast t ~src ~dst msg =
  if not (is_neighbor t src dst) then
    invalid_arg
      (Printf.sprintf "Engine.send: %d and %d are not tree neighbours" src dst);
  let bytes = t.payload_bytes msg in
  match t.fault with
  | None ->
      let edge = edge_of t src dst in
      let multiplier, extra_delay =
        match t.failure with
        | None -> (1., 0.)
        | Some (f, rng) ->
            if Rng.float rng 1. < f.Sensor.Failure.fail_prob.(edge) then begin
              t.reroutes <- t.reroutes + 1;
              (f.Sensor.Failure.reroute_factor.(edge), transmission_delay t bytes)
            end
            else (1., 0.)
      in
      charge_unicast t ~src ~dst ~bytes ~multiplier;
      t.unicasts <- t.unicasts + 1;
      t.bytes_sent <- t.bytes_sent + bytes;
      Obs.Metrics.incr m_unicasts;
      Obs.Metrics.add m_bytes bytes;
      Event_queue.add t.queue
        ~time:(t.now +. transmission_delay t bytes +. extra_delay)
        (Deliver { dst; src; msg })
  | Some fc ->
      if Reliable.is_dead fc.links ~src ~dst then
        (* Fast-fail: the link was already declared dead, nothing is put on
           the air.  The give-up is still an event so handlers never re-enter
           each other. *)
        Event_queue.add t.queue ~time:t.now (GaveUp { src; dst; msg })
      else begin
        let total = Sensor.Mica2.unicast_bytes_mj t.mica ~bytes in
        let share = sender_share t in
        t.energy.(src) <- t.energy.(src) +. (total *. share);
        t.unicasts <- t.unicasts + 1;
        t.bytes_sent <- t.bytes_sent + bytes;
        Obs.Metrics.incr m_unicasts;
        Obs.Metrics.add m_bytes bytes;
        let recv_mj = total *. (1. -. share) in
        let seq = Reliable.alloc_seq fc.links ~src ~dst in
        let rto0 =
          transmission_delay t bytes +. transmission_delay t 0
        in
        Reliable.register fc.links ~src ~dst ~seq
          { Reliable.msg; bytes; rto0; attempts = 1; recv_mj };
        transmit_reliable t fc ~src ~dst ~seq ~msg ~bytes ~recv_mj ~attempt:1
      end

let broadcast_to t ~src kids msg =
  let bytes = t.payload_bytes msg in
  let cost =
    Sensor.Mica2.broadcast_mj t.mica ~receivers:(Array.length kids) ~bytes
  in
  (* The sender fronts the overhead and its bytes; receivers pay theirs. *)
  let recv_share = Sensor.Mica2.recv_byte_mj t.mica *. float_of_int bytes in
  t.energy.(src) <-
    t.energy.(src) +. (cost -. (recv_share *. float_of_int (Array.length kids)));
  (match t.fault with
  | None ->
      Array.iter
        (fun child ->
          t.energy.(child) <- t.energy.(child) +. recv_share;
          Event_queue.add t.queue
            ~time:(t.now +. transmission_delay t bytes)
            (Deliver { dst = child; src; msg }))
        kids
  | Some fc ->
      (* Reliable local broadcast: one transmission, but each child runs its
         own ACK state machine; a child that misses the frame is re-served
         by unicast retransmissions. *)
      Array.iter
        (fun child ->
          if Reliable.is_dead fc.links ~src ~dst:child then
            Event_queue.add t.queue ~time:t.now
              (GaveUp { src; dst = child; msg })
          else begin
            let seq = Reliable.alloc_seq fc.links ~src ~dst:child in
            let rto0 =
              transmission_delay t bytes +. transmission_delay t 0
            in
            Reliable.register fc.links ~src ~dst:child ~seq
              { Reliable.msg; bytes; rto0; attempts = 1; recv_mj = recv_share };
            transmit_reliable t fc ~src ~dst:child ~seq ~msg ~bytes
              ~recv_mj:recv_share ~attempt:1
          end)
        kids);
  t.broadcasts <- t.broadcasts + 1;
  (* One transmission on the air regardless of how many ACK machines
     track it. *)
  t.bytes_sent <- t.bytes_sent + bytes;
  Obs.Metrics.incr m_broadcasts;
  Obs.Metrics.add m_bytes bytes

let broadcast t ~src msg =
  broadcast_to t ~src t.topo.Sensor.Topology.children.(src) msg

let multicast t ~src ~dsts msg =
  List.iter
    (fun d ->
      if t.topo.Sensor.Topology.parent.(d) <> src then
        invalid_arg "Engine.multicast: destination is not a child")
    dsts;
  broadcast_to t ~src (Array.of_list dsts) msg

let api_for t node =
  {
    self = node;
    time = (fun () -> t.now);
    send = (fun ~dst msg -> unicast t ~src:node ~dst msg);
    broadcast_children = (fun msg -> broadcast t ~src:node msg);
    multicast = (fun ~dsts msg -> multicast t ~src:node ~dsts msg);
    set_timer =
      (fun ~delay callback ->
        if delay < 0. then invalid_arg "Engine.set_timer: negative delay";
        Event_queue.add t.queue ~time:(t.now +. delay)
          (Timer { node; callback }));
  }

let inject t ~node ?at msg =
  let time = match at with Some x -> x | None -> t.now in
  Event_queue.add t.queue ~time (Deliver { dst = node; src = -1; msg })

let deliver t ~dst ~src msg =
  match t.handlers.(dst) with
  | None -> ()
  | Some handler -> handler (api_for t dst) ~src msg

(* A frame survives the air iff the receiver's radio is listening and the
   edge doesn't eat it.  The order of checks is fixed so the per-seed
   stream of random draws — and hence the whole simulation — is
   reproducible. *)
let frame_arrives t fc ~src ~dst ~at =
  if not (Fault.node_up (Fault.config fc.fstate) ~node:dst ~at) then begin
    fc.dropped <- fc.dropped + 1;
    Obs.Metrics.incr m_dropped;
    false
  end
  else if Fault.drops_frame fc.fstate ~edge:(edge_of t src dst) ~at then begin
    fc.dropped <- fc.dropped + 1;
    Obs.Metrics.incr m_dropped;
    false
  end
  else true

let handle_data t fc ~time ~dst ~src ~seq ~msg ~recv_mj =
  if frame_arrives t fc ~src ~dst ~at:time then begin
    (* The radio heard the copy: pay for it even if it is a duplicate. *)
    t.energy.(dst) <- t.energy.(dst) +. recv_mj;
    Event_queue.add t.queue
      ~time:(time +. transmission_delay t 0)
      (AckFrame { dst = src; src = dst; seq });
    match Reliable.on_data fc.links ~src ~dst ~seq ~payload:(msg, recv_mj) with
    | `Duplicate -> fc.duplicates <- fc.duplicates + 1
    | `Buffered -> ()
    | `Deliver ready -> List.iter (fun (m, _) -> deliver t ~dst ~src m) ready
  end

let handle_retransmit t fc ~time:_ ~src ~dst ~seq =
  match Reliable.find fc.links ~src ~dst ~seq with
  | None -> () (* acknowledged in the meantime: stale timer *)
  | Some p ->
      if
        p.Reliable.attempts >= fc.policy.Reliable.max_attempts
        || Reliable.is_dead fc.links ~src ~dst
      then begin
        Reliable.ack fc.links ~src ~dst ~seq;
        Reliable.mark_dead fc.links ~src ~dst;
        fc.gave_up <- fc.gave_up + 1;
        Obs.Metrics.incr m_gave_up;
        Event_queue.add t.queue ~time:t.now
          (GaveUp { src; dst; msg = p.Reliable.msg })
      end
      else begin
        p.Reliable.attempts <- p.Reliable.attempts + 1;
        fc.retransmissions <- fc.retransmissions + 1;
        t.unicasts <- t.unicasts + 1;
        t.bytes_sent <- t.bytes_sent + p.Reliable.bytes;
        Obs.Metrics.incr m_retransmissions;
        Obs.Metrics.incr m_unicasts;
        Obs.Metrics.add m_bytes p.Reliable.bytes;
        if Obs.Trace.active () then
          Obs.Trace.emit Obs.Trace.Retransmit ~name:"simnet.engine"
            [
              ("src", Obs.Trace.Int src);
              ("dst", Obs.Trace.Int dst);
              ("seq", Obs.Trace.Int seq);
              ("attempt", Obs.Trace.Int p.Reliable.attempts);
              ("bytes", Obs.Trace.Int p.Reliable.bytes);
            ];
        (* Retransmissions are unicasts with the full handshake, whatever
           the original frame was. *)
        let total =
          Sensor.Mica2.unicast_bytes_mj t.mica ~bytes:p.Reliable.bytes
        in
        let share = sender_share t in
        t.energy.(src) <- t.energy.(src) +. (total *. share);
        p.Reliable.recv_mj <- total *. (1. -. share);
        transmit_reliable t fc ~src ~dst ~seq ~msg:p.Reliable.msg
          ~bytes:p.Reliable.bytes ~recv_mj:p.Reliable.recv_mj
          ~attempt:p.Reliable.attempts
      end

let fault_stat t pick = match t.fault with None -> 0 | Some fc -> pick fc

(* Reliability events (Data/AckFrame/Retransmit) are only ever scheduled
   by the fault layer, so a missing fault context here is a scheduler
   invariant violation; fail with the event and link rather than a bare
   [Option.get] backtrace. *)
let fault_ctx t ~event ~src ~dst =
  match t.fault with
  | Some fc -> fc
  | None ->
      failwith
        (Printf.sprintf
           "Simnet.Engine: %s event on link %d->%d but no fault model is \
            installed"
           event src dst)

let run ?(max_events = 10_000_000) t =
  (* Snapshot the ledgers so the epoch span reports this run's deltas even
     when the same engine executes several collection rounds. *)
  let telemetry = Obs.Metrics.enabled () || Obs.Trace.active () in
  let wall0 = if telemetry then Obs.Trace.now () else 0. in
  let sim0 = t.now
  and u0 = t.unicasts
  and b0 = t.broadcasts
  and by0 = t.bytes_sent
  and rr0 = t.reroutes
  and r0 = fault_stat t (fun fc -> fc.retransmissions)
  and d0 = fault_stat t (fun fc -> fc.dropped)
  and du0 = fault_stat t (fun fc -> fc.duplicates)
  and g0 = fault_stat t (fun fc -> fc.gave_up)
  and e0 = Array.fold_left ( +. ) 0. t.energy in
  let events = ref 0 in
  let rec loop () =
    match Event_queue.pop t.queue with
    | None -> t.now
    | Some (time, event) ->
        incr events;
        if !events > max_events then
          failwith "Engine.run: event budget exceeded (livelock?)";
        (* A retransmission timer whose frame was acknowledged is a no-op;
           skipping it without advancing the clock keeps the final
           simulation time equal to the moment real work finished. *)
        let stale =
          match (event, t.fault) with
          | Retransmit { src; dst; seq }, Some fc ->
              Reliable.find fc.links ~src ~dst ~seq = None
          | _ -> false
        in
        if not stale then begin
          t.now <- Float.max t.now time;
          match event with
          | Timer { callback; _ } -> callback ()
          | Deliver { dst; src; msg } -> deliver t ~dst ~src msg
          | Data { dst; src; seq; msg; recv_mj } ->
              let fc = fault_ctx t ~event:"Data" ~src ~dst in
              handle_data t fc ~time:t.now ~dst ~src ~seq ~msg ~recv_mj
          | AckFrame { dst; src; seq } ->
              let fc = fault_ctx t ~event:"AckFrame" ~src ~dst in
              (* [dst] sent the data originally; [src] is acknowledging. *)
              if frame_arrives t fc ~src ~dst ~at:t.now then
                Reliable.ack fc.links ~src:dst ~dst:src ~seq
          | Retransmit { src; dst; seq } ->
              let fc = fault_ctx t ~event:"Retransmit" ~src ~dst in
              handle_retransmit t fc ~time:t.now ~src ~dst ~seq
          | GaveUp { src; dst; msg } -> (
              match t.give_up_handlers.(src) with
              | None -> ()
              | Some handler -> handler (api_for t src) ~dst msg)
        end;
        loop ()
  in
  let finished = loop () in
  t.epochs <- t.epochs + 1;
  if telemetry then begin
    let e1 = Array.fold_left ( +. ) 0. t.energy in
    Obs.Metrics.incr m_epochs;
    Obs.Metrics.accum f_energy (e1 -. e0);
    if Obs.Trace.active () then
      Obs.Trace.emit Obs.Trace.Epoch ~name:"simnet.engine" ~start_s:wall0
        ~dur_s:(Obs.Trace.now () -. wall0)
        [
          ("epoch", Obs.Trace.Int (t.epochs - 1));
          ("unicasts", Obs.Trace.Int (t.unicasts - u0));
          ("broadcasts", Obs.Trace.Int (t.broadcasts - b0));
          ("bytes", Obs.Trace.Int (t.bytes_sent - by0));
          ("reroutes", Obs.Trace.Int (t.reroutes - rr0));
          ( "retransmissions",
            Obs.Trace.Int (fault_stat t (fun fc -> fc.retransmissions) - r0)
          );
          ("dropped", Obs.Trace.Int (fault_stat t (fun fc -> fc.dropped) - d0));
          ( "duplicates",
            Obs.Trace.Int (fault_stat t (fun fc -> fc.duplicates) - du0) );
          ("gave_up", Obs.Trace.Int (fault_stat t (fun fc -> fc.gave_up) - g0));
          ("energy_mj", Obs.Trace.Float (e1 -. e0));
          ("sim_time_s", Obs.Trace.Float (finished -. sim0));
        ]
  end;
  finished

let energy_of t node = t.energy.(node)

let total_energy t = Array.fold_left ( +. ) 0. t.energy

let unicasts_sent t = t.unicasts

let broadcasts_sent t = t.broadcasts

let reroutes t = t.reroutes

let bytes_sent t = t.bytes_sent

let epochs_run t = t.epochs

let retransmissions_sent t =
  match t.fault with None -> 0 | Some fc -> fc.retransmissions

let dropped_frames t = match t.fault with None -> 0 | Some fc -> fc.dropped

let duplicate_frames t =
  match t.fault with None -> 0 | Some fc -> fc.duplicates

let gave_up t = match t.fault with None -> 0 | Some fc -> fc.gave_up

let dead_links t =
  match t.fault with None -> [] | Some fc -> Reliable.dead_links fc.links

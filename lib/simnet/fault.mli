(** Execution-layer fault injection for the discrete-event engine.

    {!Sensor.Failure} describes link trouble the way the {e planner} sees it
    (Section 4.4: inflate edge costs, assume the reliable protocol always
    recovers).  This module describes what the {e execution} layer actually
    suffers: frames that vanish on the air.  Three fault classes compose:

    - {b Bernoulli drop}: every frame crossing an edge is lost independently
      with a per-edge probability (indexed by the child endpoint, like every
      other per-edge array in the repository);
    - {b burst loss}: a lost frame may open an outage window on its edge
      during which every subsequent frame is also lost, modelling
      interference bursts rather than independent bit errors;
    - {b node crash/restart}: scheduled intervals during which a node's
      radio hears nothing.  Frames sent to it are lost; the node's own
      already-queued transmissions still drain (the mote reboots with its
      RAM intact, so a crash is a reception outage, not an amnesia event).

    All randomness flows through the {!Rng.t} handed to {!start}, so a
    simulation under fault injection is reproducible bit-for-bit from its
    seed.  The model ([t]) is immutable; the mutable sampling state (burst
    windows, generator position) lives in {!state}. *)

type t

val none : n:int -> t
(** No faults on an [n]-node network. *)

val bernoulli : n:int -> drop:float -> t
(** The same independent drop probability on every edge.
    @raise Invalid_argument unless [drop] is in [0, 1]. *)

val of_probs : float array -> t
(** Per-edge drop probabilities, indexed by the child endpoint (the root's
    entry is ignored: it has no uplink edge).
    @raise Invalid_argument on a probability outside [0, 1]. *)

val of_failure : Sensor.Failure.t -> t
(** Lift the planner-side statistics into an execution-layer fault model
    using the {!Sensor.Failure} [drop_prob] field. *)

val with_burst : t -> mean_length:float -> t
(** Every Bernoulli drop additionally opens an outage window of
    exponentially distributed length (mean [mean_length] seconds) on its
    edge; frames arriving inside the window are dropped without a fresh
    coin flip.  @raise Invalid_argument if [mean_length <= 0]. *)

val with_crashes : t -> (int * float * float) list -> t
(** [(node, down_at, up_at)] outage intervals; use [infinity] for a crash
    the node never recovers from.  Intervals are half-open
    [\[down_at, up_at)] and may overlap.
    @raise Invalid_argument on a bad node id or an inverted interval. *)

val n : t -> int

val drop_prob : t -> int -> float

val node_up : t -> node:int -> at:float -> bool
(** Whether the node's radio is listening at simulation time [at]. *)

(** {1 Sampling state} *)

type state

val start : t -> Rng.t -> state
(** Begin a simulation run; the generator is owned by the caller and
    advanced deterministically, one draw per Bernoulli decision. *)

val config : state -> t

val drops_frame : state -> edge:int -> at:float -> bool
(** Decide the fate of one frame crossing [edge] at time [at]: inside an
    open burst window it is dropped outright; otherwise a Bernoulli draw is
    made (and, on a drop with bursts enabled, a new window is opened).
    Calls must be made in event order for reproducibility — the engine's
    event queue guarantees this. *)

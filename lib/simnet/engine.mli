(** Discrete-event simulator of a mote network organized as a spanning tree.

    Nodes exchange messages only with tree neighbours (parent and
    children), matching the paper's collection/distribution phases.  The
    engine charges every transmission to per-node energy ledgers using the
    {!Sensor.Mica2} model — the same constants the planners use — so
    analytic plan costs can be validated against simulated executions.

    Two failure regimes are available, matching the two sides of the
    paper's Section 4.4:

    - the {e planning-side} model ([?failure], a {!Sensor.Failure}):
      transient failures make the reliable protocol re-route, inflating
      cost and latency but never dropping a message;
    - the {e execution-side} model ([?fault], a {!Fault}): frames are
      actually lost (Bernoulli drops, loss bursts, node outages).  The
      engine then runs every [send]/[broadcast_children]/[multicast] over
      a reliability sublayer — per-frame ACKs, timeout-based
      retransmission with capped exponential backoff ([?policy]),
      duplicate suppression and per-link FIFO restoration via sequence
      numbers (see {!Reliable}) — transparently to the message handlers.
      A message whose retry budget is exhausted is abandoned: its link is
      declared dead and the sender's give-up handler ({!on_give_up}) is
      told, so protocols can degrade gracefully instead of hanging.  In a
      lossless run the sublayer charges exactly the legacy energy (ACKs
      ride in the Mica2 per-message cost [cm]); every retransmission pays
      the full unicast cost again.  When [?fault] is supplied, [?failure]
      re-routing is not applied — the two models answer different
      questions and are never active together.

    The engine is polymorphic in the message type; the [payload_bytes]
    function supplied at creation determines the wire size of each
    message. *)

type 'msg t

type 'msg api = {
  self : int;  (** the node running the handler *)
  time : unit -> float;  (** current simulation time, seconds *)
  send : dst:int -> 'msg -> unit;
      (** unicast to the parent or a child.
          @raise Invalid_argument if [dst] is not a tree neighbour *)
  broadcast_children : 'msg -> unit;
      (** one local broadcast heard by all children *)
  multicast : dsts:int list -> 'msg -> unit;
      (** one local broadcast heard only by the listed children (the
          others are assumed asleep and pay nothing).
          @raise Invalid_argument if some destination is not a child *)
  set_timer : delay:float -> (unit -> unit) -> unit;
}

val create :
  Sensor.Topology.t ->
  Sensor.Mica2.t ->
  ?failure:Sensor.Failure.t * Rng.t ->
  ?fault:Fault.t * Rng.t ->
  ?policy:Reliable.policy ->
  payload_bytes:('msg -> int) ->
  unit ->
  'msg t
(** @raise Invalid_argument if the fault model's size differs from the
    topology's. *)

val on_message : 'msg t -> node:int -> ('msg api -> src:int -> 'msg -> unit) -> unit
(** Install the message handler of a node (replacing any previous one).
    Messages to a node without a handler are counted but dropped. *)

val on_give_up : 'msg t -> node:int -> ('msg api -> dst:int -> 'msg -> unit) -> unit
(** Install the give-up handler of a node: called (as an ordinary event,
    never re-entrantly) each time the reliability sublayer abandons a
    message this node sent, with the unreachable destination and the
    original message.  Only ever invoked when a [?fault] model is
    active. *)

val inject : 'msg t -> node:int -> ?at:float -> 'msg -> unit
(** Deliver a message to [node] from outside the network (e.g. the query
    station kicking off execution at the root); no radio energy is
    charged and no loss is applied (the station link is wired). *)

val run : ?max_events:int -> 'msg t -> float
(** Process events until the queue drains; returns the final simulation
    time.  Stale retransmission timers (frames acknowledged before their
    timeout) are discarded without advancing the clock.  @raise Failure
    if [max_events] (default 10_000_000) is exceeded, which indicates a
    protocol that never quiesces. *)

val energy_of : 'msg t -> int -> float
(** Total energy charged to one node so far, mJ. *)

val total_energy : 'msg t -> float

val unicasts_sent : 'msg t -> int
(** Unicast transmissions, retransmissions included. *)

val broadcasts_sent : 'msg t -> int

val reroutes : 'msg t -> int
(** Number of transmissions that hit a transient failure and paid the
    re-routing premium (planning-side [?failure] model only). *)

val bytes_sent : 'msg t -> int
(** Payload bytes put on the air so far: unicasts and retransmissions at
    their frame size, each local broadcast counted once (one transmission
    however many children listen). *)

val epochs_run : 'msg t -> int
(** Completed {!run} calls — one per collection epoch in the paper's
    terms.  Each completed run also emits an [Epoch] span (per-round
    message/byte/energy deltas) when an {!Obs.Trace} sink is installed. *)

val retransmissions_sent : 'msg t -> int
(** Data frames re-sent by the reliability sublayer. *)

val dropped_frames : 'msg t -> int
(** Frames (data and ACK) lost to the fault model, outages included. *)

val duplicate_frames : 'msg t -> int
(** Data frames that arrived more than once (their first ACK was lost)
    and were suppressed by the sequence-number filter. *)

val gave_up : 'msg t -> int
(** Messages abandoned after exhausting their retry budget. *)

val dead_links : 'msg t -> (int * int) list
(** Directed links declared dead by the reliability sublayer, in
    declaration order. *)

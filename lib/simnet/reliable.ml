type policy = {
  rto_scale : float;
  backoff : float;
  rto_max : float;
  max_attempts : int;
}

let default_policy =
  { rto_scale = 4.; backoff = 2.; rto_max = 2.; max_attempts = 12 }

let timeout p ~rto0 ~attempt =
  if attempt < 1 then invalid_arg "Reliable.timeout: attempt < 1";
  Float.min p.rto_max
    (p.rto_scale *. rto0 *. (p.backoff ** float_of_int (attempt - 1)))

let worst_case_recovery p ~rto0 =
  let total = ref 0. in
  for attempt = 1 to p.max_attempts do
    total := !total +. timeout p ~rto0 ~attempt
  done;
  !total

let expected_cost_multiplier ~drop ~sender_share =
  if Float.is_nan drop || drop < 0. || drop >= 1. then
    invalid_arg "Reliable.expected_cost_multiplier: drop must be in [0, 1)";
  let q = 1. -. drop in
  (sender_share /. (q *. q)) +. ((1. -. sender_share) /. q)

type 'msg pending = {
  msg : 'msg;
  bytes : int;
  rto0 : float;
  mutable attempts : int;
  mutable recv_mj : float;
}

(* One record per directed link: the sender-side fields (sequence counter,
   pending frames, dead flag) logically live at [src], the receiver-side
   fields (next expected sequence number, reorder buffer) at [dst]. *)
type 'msg link = {
  mutable next_seq : int;
  pending : (int, 'msg pending) Hashtbl.t;
  mutable dead : bool;
  mutable expected : int;
  buffer : (int, 'msg * float) Hashtbl.t;
}

type 'msg t = {
  n : int;
  links : (int, 'msg link) Hashtbl.t;
  mutable dead_list : (int * int) list;
}

let create ~n = { n; links = Hashtbl.create 64; dead_list = [] }

let link t ~src ~dst =
  let key = (src * t.n) + dst in
  match Hashtbl.find_opt t.links key with
  | Some l -> l
  | None ->
      let l =
        {
          next_seq = 0;
          pending = Hashtbl.create 4;
          dead = false;
          expected = 0;
          buffer = Hashtbl.create 4;
        }
      in
      Hashtbl.add t.links key l;
      l

let alloc_seq t ~src ~dst =
  let l = link t ~src ~dst in
  let seq = l.next_seq in
  l.next_seq <- seq + 1;
  seq

let register t ~src ~dst ~seq p = Hashtbl.replace (link t ~src ~dst).pending seq p

let find t ~src ~dst ~seq = Hashtbl.find_opt (link t ~src ~dst).pending seq

let ack t ~src ~dst ~seq = Hashtbl.remove (link t ~src ~dst).pending seq

let mark_dead t ~src ~dst =
  let l = link t ~src ~dst in
  if not l.dead then begin
    l.dead <- true;
    t.dead_list <- (src, dst) :: t.dead_list
  end

let is_dead t ~src ~dst = (link t ~src ~dst).dead

let dead_links t = List.rev t.dead_list

let on_data t ~src ~dst ~seq ~payload =
  let l = link t ~src ~dst in
  if seq < l.expected || Hashtbl.mem l.buffer seq then `Duplicate
  else if seq > l.expected then begin
    Hashtbl.replace l.buffer seq payload;
    `Buffered
  end
  else begin
    let ready = ref [ payload ] in
    l.expected <- l.expected + 1;
    let rec drain () =
      match Hashtbl.find_opt l.buffer l.expected with
      | Some p ->
          Hashtbl.remove l.buffer l.expected;
          l.expected <- l.expected + 1;
          ready := p :: !ready;
          drain ()
      | None -> ()
    in
    drain ();
    `Deliver (List.rev !ready)
  end

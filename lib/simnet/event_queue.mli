(** Priority queue of timestamped events for the discrete-event engine.

    Events with equal timestamps are delivered in insertion order (a
    monotone sequence number breaks ties), which keeps simulations
    deterministic.  The FIFO guarantee holds across arbitrary
    interleavings of [add] and [pop] — in particular for retransmission
    timers re-armed mid-drain at timestamps that collide with queued
    deliveries (pinned by regression tests).  The backing array shrinks as
    the queue drains, so a burst of events does not pin its payloads for
    the rest of a long simulation. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val add : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument on a NaN time. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option

(** Reliability sublayer: per-link ARQ state for the engine.

    When fault injection is active, the engine sends every application
    message as a sequenced data frame and expects a per-frame ACK from the
    receiver.  This module holds the bookkeeping both endpoints need, per
    {e directed} link:

    - the sender side allocates consecutive sequence numbers, remembers
      unacknowledged frames ([pending]) for timeout-based retransmission
      with capped exponential backoff, and marks the link dead once a frame
      exhausts its attempts;
    - the receiver side suppresses duplicates (a retransmitted frame whose
      original arrived but whose ACK was lost) and restores FIFO order: a
      frame is released to the application only once every earlier sequence
      number on that link has been released, so retry backoff can never
      reorder a node's sends.

    ACK frames carry no payload bytes and are charged no energy: the MICA2
    per-message cost [cm] already covers the reliable-protocol handshake
    (see {!Sensor.Mica2}), which keeps a lossless run's measured energy
    identical to the analytic executors'.  Retransmissions, by contrast,
    pay the full unicast cost again — that surcharge is exactly what the
    loss ablation measures.

    The module is pure bookkeeping: timers, energy and the event loop stay
    in {!Engine}. *)

type policy = {
  rto_scale : float;
      (** initial retransmission timeout, as a multiple of the frame's
          round-trip estimate (data + ACK transmission delays) *)
  backoff : float;  (** timeout multiplier per failed attempt, >= 1 *)
  rto_max : float;  (** timeout ceiling, seconds *)
  max_attempts : int;
      (** total transmissions (first send included) before the link is
          declared dead and the message abandoned *)
}

val default_policy : policy
(** [{ rto_scale = 4.; backoff = 2.; rto_max = 2.; max_attempts = 12 }] —
    at a 20% frame-drop rate a message is abandoned with probability
    [0.2^12 < 1e-8], so recoverable loss virtually never degrades an
    answer, while a crashed subtree is detected within a few seconds of
    simulated time. *)

val timeout : policy -> rto0:float -> attempt:int -> float
(** Timeout armed after transmission number [attempt] (1-based):
    [min rto_max (rto_scale * rto0 * backoff^(attempt-1))].
    @raise Invalid_argument if [attempt < 1]. *)

val worst_case_recovery : policy -> rto0:float -> float
(** Sum of every timeout the policy can arm: an upper bound on the time a
    message can stay in flight before delivery or abandonment. *)

val expected_cost_multiplier : drop:float -> sender_share:float -> float
(** Expected energy of one reliably delivered message, relative to its
    lossless cost, under independent per-frame drop probability [drop] for
    both data and ACK frames and an unbounded retry budget: the sender
    retransmits until a round succeeds end-to-end (expected [1/(1-p)^2]
    attempts), the receiver pays for every data frame that arrives
    (expected [1/(1-p)]).  [sender_share] is the sender's fraction of a
    unicast's cost, as split by the engine's energy ledgers. *)

(** {1 Per-link state} *)

type 'msg pending = {
  msg : 'msg;
  bytes : int;
  rto0 : float;  (** round-trip estimate the timeouts scale from *)
  mutable attempts : int;
  mutable recv_mj : float;
      (** energy the receiver is charged per arriving copy; updated when a
          broadcast frame is retransmitted as a unicast *)
}

type 'msg t

val create : n:int -> 'msg t
(** Fresh state for an [n]-node network. *)

val alloc_seq : 'msg t -> src:int -> dst:int -> int
(** Next sequence number on the directed link [src -> dst]. *)

val register : 'msg t -> src:int -> dst:int -> seq:int -> 'msg pending -> unit

val find : 'msg t -> src:int -> dst:int -> seq:int -> 'msg pending option

val ack : 'msg t -> src:int -> dst:int -> seq:int -> unit
(** Retire a pending frame (its retransmission timer, if still queued,
    becomes a stale no-op). *)

val mark_dead : 'msg t -> src:int -> dst:int -> unit

val is_dead : 'msg t -> src:int -> dst:int -> bool

val dead_links : 'msg t -> (int * int) list
(** Links declared dead so far, in declaration order. *)

val on_data :
  'msg t ->
  src:int ->
  dst:int ->
  seq:int ->
  payload:'msg * float ->
  [ `Duplicate | `Buffered | `Deliver of ('msg * float) list ]
(** Receiver-side processing of an arriving data frame.  [`Deliver]
    returns the frames now releasable in FIFO order (the arriving one,
    plus any buffered successors it unblocks); [`Buffered] means an
    earlier frame is still missing; [`Duplicate] means this sequence
    number was already received (the caller should still ACK it — the
    sender evidently missed the first ACK). *)

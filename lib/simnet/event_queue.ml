type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;  (* 1-based binary heap in heap.(1..size) *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0

let length t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.heap in
  if t.size + 1 >= cap then begin
    let bigger = Array.make (Int.max 16 (2 * cap)) entry in
    Array.blit t.heap 0 bigger 0 cap;
    t.heap <- bigger
  end

let add t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.add: NaN time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.size <- t.size + 1;
  t.heap.(t.size) <- entry;
  (* Sift up. *)
  let i = ref t.size in
  while !i > 1 && before t.heap.(!i) t.heap.(!i / 2) do
    let parent = !i / 2 in
    let tmp = t.heap.(parent) in
    t.heap.(parent) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := parent
  done

(* Halve the backing array when occupancy falls below a quarter: a burst
   of events (e.g. retransmission timers during a loss episode) would
   otherwise leave a large array whose dead slots pin every popped event's
   payload for the rest of the simulation. *)
let shrink t top =
  let cap = Array.length t.heap in
  if cap >= 64 && 4 * (t.size + 1) <= cap then begin
    let smaller = Array.make (cap / 2) top in
    Array.blit t.heap 0 smaller 0 (t.size + 1);
    t.heap <- smaller
  end

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(1) in
    t.heap.(1) <- t.heap.(t.size);
    t.size <- t.size - 1;
    (* Sift down. *)
    let i = ref 1 in
    let continue = ref true in
    while !continue do
      let l = 2 * !i and r = (2 * !i) + 1 in
      let smallest = ref !i in
      if l <= t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
      if r <= t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = t.heap.(!smallest) in
        t.heap.(!smallest) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := !smallest
      end
    done;
    shrink t top;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(1).time

type t = {
  n : int;
  drop_prob : float array;  (* per edge, indexed by the child endpoint *)
  burst_mean : float;  (* 0. disables burst extension *)
  crashes : (int * float * float) list;
}

let check_prob context p =
  if Float.is_nan p || p < 0. || p > 1. then
    invalid_arg (context ^ ": drop probability out of [0, 1]")

let none ~n =
  { n; drop_prob = Array.make n 0.; burst_mean = 0.; crashes = [] }

let bernoulli ~n ~drop =
  check_prob "Fault.bernoulli" drop;
  { n; drop_prob = Array.make n drop; burst_mean = 0.; crashes = [] }

let of_probs probs =
  Array.iter (check_prob "Fault.of_probs") probs;
  {
    n = Array.length probs;
    drop_prob = Array.copy probs;
    burst_mean = 0.;
    crashes = [];
  }

let of_failure (f : Sensor.Failure.t) = of_probs f.Sensor.Failure.drop_prob

let with_burst t ~mean_length =
  if not (mean_length > 0.) then
    invalid_arg "Fault.with_burst: mean_length must be positive";
  { t with burst_mean = mean_length }

let with_crashes t schedule =
  List.iter
    (fun (node, down_at, up_at) ->
      if node < 0 || node >= t.n then
        invalid_arg "Fault.with_crashes: node out of range";
      if Float.is_nan down_at || Float.is_nan up_at || down_at < 0.
         || up_at < down_at
      then invalid_arg "Fault.with_crashes: bad outage interval")
    schedule;
  { t with crashes = schedule @ t.crashes }

let n t = t.n

let drop_prob t e = t.drop_prob.(e)

let node_up t ~node ~at =
  List.for_all
    (fun (m, down_at, up_at) -> m <> node || at < down_at || at >= up_at)
    t.crashes

type state = { config : t; rng : Rng.t; burst_until : float array }

let start config rng =
  { config; rng; burst_until = Array.make config.n neg_infinity }

let config s = s.config

let drops_frame s ~edge ~at =
  if at < s.burst_until.(edge) then true
  else
    let p = s.config.drop_prob.(edge) in
    p > 0.
    && Rng.float s.rng 1. < p
    &&
    (if s.config.burst_mean > 0. then
       s.burst_until.(edge) <-
         at +. Rng.exponential s.rng ~rate:(1. /. s.config.burst_mean);
     true)

let m_greedy_fallbacks = Obs.Metrics.counter "planner.greedy_fallbacks"
let m_plans = Obs.Metrics.counter "planner.plans"

type result = {
  plan : Plan.t;
  lp_objective : float;
  lp_stats : Lp.Revised.stats option;
  fractional : float array;
  budget_shadow_price : float;
  basis : Lp.Model.basis option;
  provenance : Robust_plan.provenance;
  certify : Lp.Certify.report option;
  guarantee : Guarantee.t option;
}

let check_alive topo alive =
  match alive with
  | None -> ()
  | Some a ->
      if Array.length a <> topo.Sensor.Topology.n then
        invalid_arg "Lp_lf.plan: alive mask length mismatch";
      if not a.(topo.Sensor.Topology.root) then
        invalid_arg "Lp_lf.plan: root cannot be dead"

let is_alive alive i =
  match alive with None -> true | Some a -> a.(i)

let build ?alive topo cost samples ~budget ~k =
  if budget < 0. then invalid_arg "Lp_lf.plan: negative budget";
  if k < 1 then invalid_arg "Lp_lf.plan: k must be positive";
  check_alive topo alive;
  let n = topo.Sensor.Topology.n in
  let root = topo.Sensor.Topology.root in
  let ones = samples.Sampling.Sample_set.ones in
  let n_samples = Array.length ones in
  let model = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let z = Array.make n None and b = Array.make n None in
  for i = 0 to n - 1 do
    if i <> root then begin
      (* Dead nodes keep their variables — same model shape, so PR-1
         warm-start tokens from the undamaged solve still apply — but
         their edge can never activate: z's upper bound drops to 0, the
         activation row forces b = 0, y <= z forces coverage to 0 and
         z-monotonicity shuts every descendant's edge. *)
      let z_upper = if is_alive alive i then 1. else 0. in
      z.(i) <-
        Some (Lp.Model.add_var model ~upper:z_upper (Printf.sprintf "z%d" i));
      let cap =
        float_of_int (Int.min k topo.Sensor.Topology.subtree_size.(i))
      in
      b.(i) <-
        Some (Lp.Model.add_var model ~upper:cap (Printf.sprintf "b%d" i))
    end
  done;
  let getz i =
    match z.(i) with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Lp_lf.plan: no z variable for node %d" i)
  and getb i =
    match b.(i) with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Lp_lf.plan: no b variable for node %d" i)
  in
  (* y variables, one per (sample, non-root one). *)
  let y = Hashtbl.create (n_samples * k) in
  for j = 0 to n_samples - 1 do
    Array.iter
      (fun i ->
        if i <> root then
          Hashtbl.replace y (j, i)
            (Lp.Model.add_var model ~upper:1. ~obj:1.
               (Printf.sprintf "y%d_%d" j i)))
      ones.(j)
  done;
  (* Edge activation and monotonicity. *)
  for i = 0 to n - 1 do
    if i <> root then begin
      let cap =
        float_of_int (Int.min k topo.Sensor.Topology.subtree_size.(i))
      in
      Lp.Model.add_le model [ (1., getb i); (-.cap, getz i) ] 0.;
      let p = topo.Sensor.Topology.parent.(i) in
      if p <> root then
        Lp.Model.add_le model [ (1., getz i); (-1., getz p) ] 0.
    end
  done;
  (* y_{j,i} <= z_i on the node's own uplink.  Rows are added in sorted
     (sample, node) order so the LP's row layout — and therefore the
     solver's pivot trajectory — never depends on hash-table order. *)
  Hashtbl.fold (fun k yv acc -> (k, yv) :: acc) y []
  |> List.sort (fun (((j1 : int), (i1 : int)), _) ((j2, i2), _) ->
         match Int.compare j1 j2 with 0 -> Int.compare i1 i2 | c -> c)
  |> List.iter (fun ((_, i), yv) ->
         Lp.Model.add_le model [ (1., yv); (-1., getz i) ] 0.);
  (* Bandwidth rows: per (edge, sample), the covered ones below the edge
     cannot exceed its bandwidth.  Rows with no ones below are skipped. *)
  for i = 0 to n - 1 do
    if i <> root then begin
      let desc = Sensor.Topology.descendants topo i in
      for j = 0 to n_samples - 1 do
        let terms =
          List.filter_map
            (fun u -> Option.map (fun yv -> (1., yv)) (Hashtbl.find_opt y (j, u)))
            desc
        in
        if terms <> [] then
          Lp.Model.add_le model ((-1., getb i) :: terms) 0.
      done
    end
  done;
  (* Budget. *)
  let budget_terms = ref [] in
  for i = 0 to n - 1 do
    if i <> root then
      budget_terms :=
        (cost.Sensor.Cost.per_message.(i), getz i)
        :: (cost.Sensor.Cost.per_value.(i), getb i)
        :: !budget_terms
  done;
  Lp.Model.add_le model !budget_terms budget;
  (model, getb)

let lp_model ?alive topo cost samples ~budget ~k =
  fst (build ?alive topo cost samples ~budget ~k)

(* Emit one [Plan] span per planning decision, carrying where the plan
   came from and what the LP claimed for it. *)
let traced_plan ~topo ~budget ~k f =
  if not (Obs.Metrics.enabled () || Obs.Trace.active ()) then f ()
  else begin
    let t0 = Obs.Trace.now () in
    let r = f () in
    Obs.Metrics.incr m_plans;
    if Obs.Trace.active () then
      Obs.Trace.emit Obs.Trace.Plan ~name:"planner.lp_lf" ~start_s:t0
        ~dur_s:(Obs.Trace.now () -. t0)
        [
          ( "provenance",
            Obs.Trace.Str
              (Format.asprintf "%a" Robust_plan.pp_provenance r.provenance) );
          ("lp_objective", Obs.Trace.Float r.lp_objective);
          ("budget", Obs.Trace.Float budget);
          ("k", Obs.Trace.Int k);
          ("nodes", Obs.Trace.Int topo.Sensor.Topology.n);
        ];
    r
  end

let plan_plain ?alive ?warm_start ?max_lp_iterations ?lp_deadline topo cost
    samples ~budget ~k =
  let n = topo.Sensor.Topology.n in
  let root = topo.Sensor.Topology.root in
  traced_plan ~topo ~budget ~k @@ fun () ->
  let model, getb = build ?alive topo cost samples ~budget ~k in
  match
    Robust_plan.solve ?warm_start ?max_iterations:max_lp_iterations
      ?deadline:lp_deadline model
  with
  | Error _ ->
      Obs.Metrics.incr m_greedy_fallbacks;
      (* No certified LP solution: ship the greedy selection without local
         filtering.  Its objective is the covered-ones count the selection
         achieves on the samples (the same currency as the LP's). *)
      let colsum =
        (* The greedy fallback must honour the mask too: a dead node's
           column count drops to 0, which excludes it from selection. *)
        match alive with
        | None -> samples.Sampling.Sample_set.colsum
        | Some a ->
            Array.mapi
              (fun i c -> if a.(i) then c else 0)
              samples.Sampling.Sample_set.colsum
      in
      let chosen = Greedy.chosen_by_colsum topo cost ~colsum ~budget in
      let plan = Plan.of_chosen topo chosen in
      let lp_objective = ref 0. in
      for i = 0 to n - 1 do
        if chosen.(i) && i <> root then
          lp_objective := !lp_objective +. float_of_int colsum.(i)
      done;
      {
        plan;
        lp_objective = !lp_objective;
        lp_stats = None;
        fractional =
          Array.init n (fun i -> float_of_int (Plan.bandwidth plan i));
        budget_shadow_price = 0.;
        basis = None;
        provenance = Robust_plan.Fell_back_greedy;
        certify = None;
        guarantee = None;
      }
  | Ok r ->
  let sol = r.Robust_plan.solution in
  let fractional = Array.make n 0. in
  for i = 0 to n - 1 do
    if i <> root then fractional.(i) <- Lp.Model.value sol (getb i)
  done;
  (* The budget row is the last constraint added. *)
  let budget_shadow_price =
    match sol.Lp.Model.row_duals with
    | Some duals -> duals.(Array.length duals - 1)
    | None -> 0.
  in
  {
    plan = Plan.of_fractional topo fractional;
    lp_objective = sol.Lp.Model.objective;
    lp_stats = sol.Lp.Model.stats;
    fractional;
    budget_shadow_price;
    basis = sol.Lp.Model.basis;
    provenance = r.Robust_plan.provenance;
    certify = Some r.Robust_plan.report;
    guarantee = None;
  }

let plan ?alive ?warm_start ?max_lp_iterations ?lp_deadline ?guarantee topo
    cost samples ~budget ~k =
  match guarantee with
  | None ->
      plan_plain ?alive ?warm_start ?max_lp_iterations ?lp_deadline topo cost
        samples ~budget ~k
  | Some (eps, delta) ->
      (* Escalation rungs re-solve the same LP shape with a perturbed
         budget row: chain each rung's final basis into the next so the
         ladder rides the warm-start fast path. *)
      let warm = ref warm_start in
      let g =
        Robust_plan.plan_with_guarantee ~eps ~delta
          ~planner:(fun ~samples ~budget ->
            let r =
              plan_plain ?alive ?warm_start:!warm ?max_lp_iterations
                ?lp_deadline topo cost samples ~budget ~k
            in
            (match r.basis with Some _ -> warm := r.basis | None -> ());
            r)
          ~describe:(fun r -> (r.plan, r.certify, Some r.lp_objective))
          topo cost ~k samples ~budget
      in
      let chosen = g.Robust_plan.chosen in
      {
        chosen.Robust_plan.result with
        guarantee = Some chosen.Robust_plan.guarantee;
      }

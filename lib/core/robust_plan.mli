(** Certified LP solving with a fallback chain (robustness layer).

    The LP planners treat the simplex solvers as untrusted components:
    every claimed solution is re-checked by {!Lp.Certify} against nothing
    but the problem data, and a failed check triggers a fallback instead of
    a crash or a silently wrong plan.  The chain is

    {v revised simplex -> certify -> dense tableau -> certify -> greedy v}

    where the greedy step lives in the individual planners (it needs
    planner-specific inputs); this module covers the two LP stages and
    tells the planner, via {!provenance}, which stage produced the answer
    it is about to ship. *)

type provenance =
  | Certified_revised
      (** the revised simplex solution passed independent certification *)
  | Certified_dense
      (** the revised solution failed certification (or hit its budget);
          the dense reference tableau's solution passed instead *)
  | Fell_back_greedy
      (** neither LP stage produced a certified solution; the planner used
          its combinatorial greedy fallback.  Never disseminated by
          {!Replan}. *)

type lp_result = {
  solution : Lp.Model.solution;
  report : Lp.Certify.report;  (** the certification that admitted it *)
  provenance : provenance;  (** {!Certified_revised} or {!Certified_dense} *)
}

type failure =
  | Proved_infeasible of Lp.Certify.report
      (** the model is infeasible, with a certified Farkas certificate *)
  | Proved_unbounded of Lp.Certify.report
      (** the model is unbounded, with a certified improving ray *)
  | No_certified_solution of string list
      (** neither solver produced a certifiable claim; the reasons from
          both certification attempts, in chain order *)

val solve :
  ?warm_start:Lp.Model.basis ->
  ?max_iterations:int ->
  ?deadline:float ->
  Lp.Model.t ->
  (lp_result, failure) result
(** Run the chain on a model.  [max_iterations] caps the revised solver's
    pivots and the dense solver's total pivots alike (so tests can cripple
    both stages); [deadline] is a wall-clock budget for the revised stage.
    [warm_start] is validated against the model with the LP layer's shared
    {!Lp.Model.basis_compatible} predicate — the single implementation of
    the shape rule for every planner routing through this chain ([Replan],
    [Repair], the serving layer's warm-basis pool); an incompatible token
    is dropped (counted as [planner.warm_incompatible]) and the solve
    starts cold.  Never raises on solver failure: the worst outcome is
    [Error (No_certified_solution _)], which a planner answers with its
    greedy fallback. *)

val provenance_equal : provenance -> provenance -> bool
(** Structural equality on {!provenance} (avoids polymorphic [=]). *)

val pp_provenance : Format.formatter -> provenance -> unit
val pp_failure : Format.formatter -> failure -> unit

(** {1 Planning to a certified (ε, δ) target}

    [plan_with_guarantee] wraps any planner in a budget-escalation loop
    that stops when the plan's {!Guarantee} certifies the requested
    target "expected top-k accuracy at least [1 - eps], with failure
    probability at most [delta]" — or declares the target unattainable
    within the escalation ladder, returning the best attempt.

    Soundness measures baked into the loop (see DESIGN.md, "Error
    guarantees"):
    - the sample window is split — plans are optimized on the first half
      and certified on the disjoint second half, so the certification
      samples are independent of the plan they certify (windows shorter
      than 4 samples cannot be split; the full window is then used for
      both and the resulting bound carries the reuse bias);
    - picking the first of up to [max_escalations + 1] data-dependent
      attempts is itself a selection, so each rung's bound is computed at
      level [delta / (max_escalations + 1)]; a union bound then makes the
      {e chosen} plan's certificate valid at level [delta]. *)

type 'r attempt = {
  result : 'r;  (** the planner's full result at this rung *)
  plan : Plan.t;
  guarantee : Guarantee.t;
  budget : float;  (** the budget this rung planned against *)
}

type 'r guaranteed = {
  chosen : 'r attempt;
      (** the first attempt meeting the target, or — when unattained —
          the attempt with the highest certified lower bound (earliest,
          hence cheapest, on ties) *)
  attained : bool;
  escalations : int;  (** budget raises actually performed *)
}

val plan_with_guarantee :
  ?max_escalations:int ->
  ?growth:float ->
  eps:float ->
  delta:float ->
  planner:(samples:Sampling.Sample_set.t -> budget:float -> 'r) ->
  describe:('r -> Plan.t * Lp.Certify.report option * float option) ->
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  k:int ->
  Sampling.Sample_set.t ->
  budget:float ->
  'r guaranteed
(** Run the ladder [budget, budget * growth, ...] ([max_escalations]
    raises, default 6; [growth] default 1.5).  [planner] is called with
    the plan-window slice and the rung's budget; [describe] projects its
    result to the plan, the certification report that admitted the LP
    solution (to fold the duality gap into the bound) and the LP
    objective.  Deterministic: same inputs, same ladder, same choice.
    @raise Invalid_argument on [eps <= 0], [delta] outside (0, 1),
    [growth < 1] or negative [max_escalations]. *)

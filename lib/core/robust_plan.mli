(** Certified LP solving with a fallback chain (robustness layer).

    The LP planners treat the simplex solvers as untrusted components:
    every claimed solution is re-checked by {!Lp.Certify} against nothing
    but the problem data, and a failed check triggers a fallback instead of
    a crash or a silently wrong plan.  The chain is

    {v revised simplex -> certify -> dense tableau -> certify -> greedy v}

    where the greedy step lives in the individual planners (it needs
    planner-specific inputs); this module covers the two LP stages and
    tells the planner, via {!provenance}, which stage produced the answer
    it is about to ship. *)

type provenance =
  | Certified_revised
      (** the revised simplex solution passed independent certification *)
  | Certified_dense
      (** the revised solution failed certification (or hit its budget);
          the dense reference tableau's solution passed instead *)
  | Fell_back_greedy
      (** neither LP stage produced a certified solution; the planner used
          its combinatorial greedy fallback.  Never disseminated by
          {!Replan}. *)

type lp_result = {
  solution : Lp.Model.solution;
  report : Lp.Certify.report;  (** the certification that admitted it *)
  provenance : provenance;  (** {!Certified_revised} or {!Certified_dense} *)
}

type failure =
  | Proved_infeasible of Lp.Certify.report
      (** the model is infeasible, with a certified Farkas certificate *)
  | Proved_unbounded of Lp.Certify.report
      (** the model is unbounded, with a certified improving ray *)
  | No_certified_solution of string list
      (** neither solver produced a certifiable claim; the reasons from
          both certification attempts, in chain order *)

val solve :
  ?warm_start:Lp.Model.basis ->
  ?max_iterations:int ->
  ?deadline:float ->
  Lp.Model.t ->
  (lp_result, failure) result
(** Run the chain on a model.  [max_iterations] caps the revised solver's
    pivots and the dense solver's total pivots alike (so tests can cripple
    both stages); [deadline] is a wall-clock budget for the revised stage.
    Never raises on solver failure: the worst outcome is
    [Error (No_certified_solution _)], which a planner answers with its
    greedy fallback. *)

val pp_provenance : Format.formatter -> provenance -> unit
val pp_failure : Format.formatter -> failure -> unit

type node_state = {
  retrieved : (int * float) list;
  sent : (int * float) list;
  proven : (int * float) list;
  sent_all : bool;
}

type outcome = {
  result : (int * float) list;
  proven_count : int;
  states : node_state array;
  collection_mj : float;
  messages : int;
  values_sent : int;
}

let take = Exec.take_prefix

(* [v] ranks strictly above [w] in the global value order. *)
let ranks_above v w = Exec.value_order v w < 0

let min_bandwidth_plan topo =
  Plan.make topo (Array.make topo.Sensor.Topology.n 1)

(* A value [v] (possibly the node's own) is proven at node [u] iff every
   child subtree certifies that it holds nothing ranking above [v] that
   [u] has not seen. *)
let proven_at topo states ~origin_sets u v =
  Array.for_all
    (fun c ->
      let st = states.(c) in
      match st with
      | None -> assert false
      | Some st ->
          let from_c = Hashtbl.mem origin_sets.(c) (fst v) in
          (from_c && List.exists (fun w -> w = v) st.proven)
          || List.exists (fun w -> ranks_above v w) st.proven
          || st.sent_all)
    topo.Sensor.Topology.children.(u)

let run topo cost plan ~k ~readings =
  if k < 1 then invalid_arg "Proof_exec.run: k must be positive";
  let n = topo.Sensor.Topology.n in
  let root = topo.Sensor.Topology.root in
  Array.iteri
    (fun i _ ->
      if i <> root && Plan.bandwidth plan i < 1 then
        invalid_arg "Proof_exec.run: proof plans must use every edge")
    readings;
  let states = Array.make n None in
  (* origin_sets.(u): node ids contained in subtree(u), for provenance. *)
  let origin_sets = Array.init n (fun _ -> Hashtbl.create 8) in
  Array.iter
    (fun u ->
      Hashtbl.replace origin_sets.(u) u ();
      Array.iter
        (fun c ->
          (* Set union: insertion order cannot affect the resulting set. *)
          (Hashtbl.iter [@lint.allow "R2"])
            (fun i () -> Hashtbl.replace origin_sets.(u) i ())
            origin_sets.(c))
        topo.Sensor.Topology.children.(u))
    (Sensor.Topology.post_order topo);
  let energy = ref 0. and messages = ref 0 and values_sent = ref 0 in
  Array.iter
    (fun u ->
      let received =
        Array.fold_left
          (fun acc c ->
            match states.(c) with
            | Some st -> List.rev_append st.sent acc
            | None -> assert false)
          [] topo.Sensor.Topology.children.(u)
      in
      let retrieved =
        List.sort Exec.value_order ((u, readings.(u)) :: received)
      in
      if u = root then begin
        let result = take k retrieved in
        let proven_flags =
          List.map (proven_at topo states ~origin_sets u) result
        in
        let rec prefix_len = function
          | true :: rest -> 1 + prefix_len rest
          | [] | false :: _ -> 0
        in
        let proven_count = prefix_len proven_flags in
        states.(u) <-
          Some
            {
              retrieved;
              sent = result;
              proven = take proven_count result;
              sent_all = false;
            }
      end
      else begin
        let sent = take (Plan.bandwidth plan u) retrieved in
        let sent_all = List.length sent = topo.Sensor.Topology.subtree_size.(u) in
        let proven_flags = List.map (proven_at topo states ~origin_sets u) sent in
        let rec proven_prefix values flags =
          match (values, flags) with
          | v :: vs, true :: fs -> v :: proven_prefix vs fs
          | _, _ -> []
        in
        let proven = proven_prefix sent proven_flags in
        states.(u) <- Some { retrieved; sent; proven; sent_all };
        let count = List.length sent in
        energy := !energy +. Sensor.Cost.message_mj cost ~node:u ~values:count;
        incr messages;
        values_sent := !values_sent + count
      end)
    (Sensor.Topology.post_order topo);
  let root_state =
    match states.(root) with Some st -> st | None -> assert false
  in
  let states =
    Array.map (function Some st -> st | None -> assert false) states
  in
  {
    result = root_state.sent;
    proven_count = List.length root_state.proven;
    states;
    collection_mj = !energy;
    messages = !messages;
    values_sent = !values_sent;
  }

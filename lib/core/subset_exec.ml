type outcome = {
  received : (int * float) list;
  collection_mj : float;
  messages : int;
  values_sent : int;
}

let collect topo cost ~chosen ~readings =
  let n = topo.Sensor.Topology.n in
  if Array.length chosen <> n || Array.length readings <> n then
    invalid_arg "Subset_exec.collect: length mismatch";
  let root = topo.Sensor.Topology.root in
  let outbox = Array.make n [] in
  let energy = ref 0. and messages = ref 0 and values_sent = ref 0 in
  Array.iter
    (fun u ->
      if u <> root then begin
        let received =
          Array.fold_left
            (fun acc c -> List.rev_append outbox.(c) acc)
            [] topo.Sensor.Topology.children.(u)
        in
        let load =
          if chosen.(u) then (u, readings.(u)) :: received else received
        in
        if load <> [] then begin
          outbox.(u) <- load;
          let count = List.length load in
          energy :=
            !energy +. Sensor.Cost.message_mj cost ~node:u ~values:count;
          incr messages;
          values_sent := !values_sent + count
        end
      end)
    (Sensor.Topology.post_order topo);
  let received =
    Array.fold_left
      (fun acc c -> List.rev_append outbox.(c) acc)
      [ (root, readings.(root)) ]
      topo.Sensor.Topology.children.(root)
  in
  {
    received = List.sort Exec.value_order received;
    collection_mj = !energy;
    messages = !messages;
    values_sent = !values_sent;
  }

let recall ~truth received =
  if Array.length truth = 0 then 1.
  else begin
    let have = Hashtbl.create 16 in
    List.iter (fun (i, _) -> Hashtbl.replace have i ()) received;
    let hits =
      Array.fold_left
        (fun acc i -> if Hashtbl.mem have i then acc + 1 else acc)
        0 truth
    in
    float_of_int hits /. float_of_int (Array.length truth)
  end

let quantile_estimate ~phi received =
  if phi <= 0. || phi >= 1. then
    invalid_arg "Subset_exec.quantile_estimate: phi out of range";
  match received with
  | [] -> None
  | _ ->
      let values =
        List.map snd received |> List.sort Float.compare |> Array.of_list
      in
      let pos = phi *. float_of_int (Array.length values - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = Int.min (lo + 1) (Array.length values - 1) in
      let frac = pos -. float_of_int lo in
      Some ((values.(lo) *. (1. -. frac)) +. (values.(hi) *. frac))

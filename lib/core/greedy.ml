let chosen_by_colsum topo cost ~colsum ~budget =
  if budget < 0. then invalid_arg "Greedy.chosen_by_colsum: negative budget";
  let n = topo.Sensor.Topology.n in
  let root = topo.Sensor.Topology.root in
  (* Candidates by decreasing column sum, node id breaking ties. *)
  let candidates =
    List.init n (fun i -> i)
    |> List.filter (fun i -> i <> root && colsum.(i) > 0)
    |> List.sort (fun a b ->
           match Int.compare colsum.(b) colsum.(a) with
           | 0 -> Int.compare a b
           | c -> c)
  in
  let chosen = Array.make n false in
  chosen.(root) <- true;
  (* Incremental cost: count of chosen descendants per edge. *)
  let carried = Array.make n 0 in
  let current_cost = ref 0. in
  let parent = topo.Sensor.Topology.parent in
  let value_to_root = Sensor.Cost.value_to_root cost topo in
  let try_add node =
    (* Marginal cost of routing [node]'s value to the root: a new
       per-message cost on every edge not yet used, plus one more value on
       every edge of the path (the precomputed prefix sum). *)
    let marginal =
      let acc = ref value_to_root.(node) in
      let u = ref node in
      while !u <> root do
        if carried.(!u) = 0 then
          acc := !acc +. cost.Sensor.Cost.per_message.(!u);
        u := parent.(!u)
      done;
      !acc
    in
    if !current_cost +. marginal <= budget +. 1e-9 then begin
      chosen.(node) <- true;
      current_cost := !current_cost +. marginal;
      let u = ref node in
      while !u <> root do
        carried.(!u) <- carried.(!u) + 1;
        u := parent.(!u)
      done;
      true
    end
    else false
  in
  (* Paper semantics: stop at the first candidate that does not fit. *)
  let rec add_all = function
    | [] -> ()
    | node :: rest -> if try_add node then add_all rest
  in
  add_all candidates;
  chosen

let plan topo cost samples ~budget =
  if budget < 0. then invalid_arg "Greedy.plan: negative budget";
  Plan.of_chosen topo
    (chosen_by_colsum topo cost ~colsum:samples.Sampling.Sample_set.colsum
       ~budget)

(** Approximate-plan execution on the {!Simnet} discrete-event engine.

    Semantically identical to {!Exec.collect}, but the collection phase
    actually runs as messages between mote processes: the root broadcasts a
    trigger down the participating subtree, leaves respond, and each inner
    node forwards its local filter's output once all participating children
    have reported.  Used to validate the analytic executor (the test suite
    asserts both return the same answer and the same collection energy) and
    to study latency and per-node energy, which the analytic path cannot
    provide.

    With a [?fault] model the run goes over the engine's ACK/retransmission
    sublayer: recoverable frame loss changes nothing but energy and
    latency, while a child that stays unreachable past the retry budget has
    its whole subtree reported in [dark] and the collection completes
    without it instead of hanging. *)

type result = {
  returned : (int * float) list;
  total_mj : float;  (** trigger + collection energy, summed over nodes *)
  per_node_mj : float array;
  latency_s : float;  (** simulated time until the root has its answer *)
  unicasts : int;  (** retransmissions included *)
  reroutes : int;
  retransmissions : int;  (** frames re-sent by the reliability sublayer *)
  dark : int list;
      (** nodes cut off by dead links (sorted, deduplicated); empty when
          every loss was recovered *)
  give_ups : (int * float) list;
      (** one entry per give-up event, in event order: the unreachable
          endpoint and the simulated time the sender abandoned it.  The
          same endpoint can appear once per frame that gave up on it. *)
  gave_up_frames : int;
      (** the engine's own give-up counter ({!Simnet.Engine.gave_up});
          fast-fails on links already declared dead are not counted
          there, but each directed link carries at most one frame per
          collection, so here it always equals [List.length give_ups] *)
}

val collect :
  Sensor.Topology.t ->
  Sensor.Mica2.t ->
  ?failure:Sensor.Failure.t * Rng.t ->
  ?fault:Simnet.Fault.t * Rng.t ->
  ?policy:Simnet.Reliable.policy ->
  Plan.t ->
  k:int ->
  readings:float array ->
  result

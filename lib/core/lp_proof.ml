type result = {
  plan : Plan.t;
  lp_objective : float;
  lp_stats : Lp.Revised.stats option;
  basis : Lp.Model.basis option;
  provenance : Robust_plan.provenance;
}

exception Budget_too_small of float

let plan ?warm_start ?max_lp_iterations ?lp_deadline topo cost samples ~budget
    ~k =
  if k < 1 then invalid_arg "Lp_proof.plan: k must be positive";
  let n = topo.Sensor.Topology.n in
  let root = topo.Sensor.Topology.root in
  let values = samples.Sampling.Sample_set.values in
  let n_samples = Array.length values in
  (* Feasibility: every edge must at least carry one value. *)
  let min_cost = ref 0. in
  for i = 0 to n - 1 do
    if i <> root then
      min_cost := !min_cost +. Sensor.Cost.message_mj cost ~node:i ~values:1
  done;
  if budget < !min_cost -. 1e-9 then raise (Budget_too_small !min_cost);
  let model = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let b = Array.make n None in
  for i = 0 to n - 1 do
    if i <> root then begin
      let cap =
        float_of_int (Int.min topo.Sensor.Topology.subtree_size.(i) (k + 1))
      in
      (* The epsilon bonus breaks ties among optimal plans towards ones
         that use the allocated energy: extra phase-1 values cannot hurt
         and often spare the mop-up phase when reality departs from the
         samples (visible in Figure 8's rising phase-1 curve). *)
      b.(i) <-
        Some
          (Lp.Model.add_var model ~lower:1. ~upper:cap ~obj:1e-4
             (Printf.sprintf "b%d" i))
    end
  done;
  let getb i =
    match b.(i) with
    | Some v -> v
    | None ->
        failwith (Printf.sprintf "Lp_proof.plan: no b variable for node %d" i)
  in
  (* p variables: (sample, node, ancestor) -> var.  The ancestor list of a
     node includes itself and ends at the root. *)
  let p = Hashtbl.create (n_samples * n * 4) in
  let is_one = samples.Sampling.Sample_set.is_one in
  for j = 0 to n_samples - 1 do
    for u = 0 to n - 1 do
      List.iter
        (fun a ->
          if not (u = root && a <> root) then
            let obj = if a = root && is_one.(j).(u) then 1. else 0. in
            Hashtbl.replace p (j, u, a)
              (Lp.Model.add_var model ~upper:1. ~obj
                 (Printf.sprintf "p%d_%d_%d" j u a)))
        (Sensor.Topology.path_to_root topo u)
    done
  done;
  let getp j u a =
    match Hashtbl.find_opt p (j, u, a) with
    | Some v -> v
    | None ->
        failwith
          (Printf.sprintf
             "Lp_proof.plan: no p variable for sample %d, node %d, ancestor %d"
             j u a)
  in
  (* Chain constraints (13): going up the path, provenness cannot grow. *)
  for j = 0 to n_samples - 1 do
    for u = 0 to n - 1 do
      let rec chain = function
        | below :: above :: rest ->
            Lp.Model.add_le model
              [ (1., getp j u above); (-1., getp j u below) ]
              0.;
            chain (above :: rest)
        | [ _ ] | [] -> ()
      in
      chain (Sensor.Topology.path_to_root topo u)
    done
  done;
  (* Bandwidth constraints (12): per edge and sample, the number of values
     proven at the node is at most its bandwidth. *)
  let desc = Array.init n (fun i -> Sensor.Topology.descendants topo i) in
  for i = 0 to n - 1 do
    if i <> root then
      for j = 0 to n_samples - 1 do
        let terms = List.map (fun u -> (1., getp j u i)) desc.(i) in
        Lp.Model.add_le model ((-1., getb i) :: terms) 0.
      done
  done;
  (* Dominance chains (Lemma 1): the values a node proves are a top-prefix
     of its subtree, so within each subtree provenness is monotone in the
     value order.  Without these rows the LP could "prove" a deep small
     value while the local filter would in fact forward the larger ones
     above it. *)
  for i = 0 to n - 1 do
    for j = 0 to n_samples - 1 do
      let order =
        List.sort
          (fun u w ->
            Exec.value_order (u, values.(j).(u)) (w, values.(j).(w)))
          desc.(i)
      in
      let rec chain = function
        | above :: below :: rest ->
            Lp.Model.add_le model
              [ (1., getp j below i); (-1., getp j above i) ]
              0.;
            chain (below :: rest)
        | [ _ ] | [] -> ()
      in
      if i <> root then chain order
    done
  done;
  (* Proof constraints (14).  For value owner u, prover a, and each child s
     of a whose subtree does not contain u: some strictly smaller value of
     s's subtree must be proven at s. *)
  let ranks_above v w = Exec.value_order v w < 0 in
  (* Certification of value (owned by u, sample j) by child subtree s:
     - normal case: some strictly smaller value below s is proven at s;
     - no smaller value exists below s (the paper's "exception"): the value
       is certifiable only if s ships its entire subtree, which we encode
       linearly as p <= b_s - |subtree(s)| + 1 (the paper merely skips the
       row here, which lets the LP overestimate what plans can prove);
     - when the bandwidth cap prevents s from ever shipping everything,
       the value is simply unprovable at this prover. *)
  let certification j u a s pvar =
    let witnesses =
      List.filter
        (fun w -> ranks_above (u, values.(j).(u)) (w, values.(j).(w)))
        desc.(s)
    in
    if witnesses <> [] then
      Lp.Model.add_le model
        ((1., pvar) :: List.map (fun w -> (-1., getp j w s)) witnesses)
        0.
    else begin
      ignore a;
      let size = topo.Sensor.Topology.subtree_size.(s) in
      if size = 1 then ()  (* a singleton subtree always ships itself *)
      else if size <= k + 1 then begin
        (* p <= (b_s - 1)/(size - 1): zero at the minimum bandwidth, one
           exactly when s ships its whole subtree. *)
        let s1 = float_of_int (size - 1) in
        Lp.Model.add_le model
          [ (1., pvar); (-1. /. s1, getb s) ]
          (-1. /. s1)
      end
      else Lp.Model.add_le model [ (1., pvar) ] 0.
    end
  in
  for j = 0 to n_samples - 1 do
    for u = 0 to n - 1 do
      if not (u = root) then
        List.iter
          (fun a ->
            Array.iter
              (fun s ->
                if not (Sensor.Topology.is_ancestor topo ~anc:s ~desc:u) then
                  certification j u a s (getp j u a))
              topo.Sensor.Topology.children.(a))
          (Sensor.Topology.path_to_root topo u)
    done
  done;
  (* The root's own value needs the same treatment (a = root, u = root). *)
  for j = 0 to n_samples - 1 do
    Array.iter
      (fun s -> certification j root root s (getp j root root))
      topo.Sensor.Topology.children.(root)
  done;
  (* Budget (11): all edges pay their per-message cost; bandwidth pays per
     value. *)
  let fixed =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      if i <> root then acc := !acc +. cost.Sensor.Cost.per_message.(i)
    done;
    !acc
  in
  let budget_terms = ref [] in
  let min_value_spend = ref 0. in
  for i = 0 to n - 1 do
    if i <> root then begin
      budget_terms := (cost.Sensor.Cost.per_value.(i), getb i) :: !budget_terms;
      min_value_spend := !min_value_spend +. cost.Sensor.Cost.per_value.(i)
    end
  done;
  (* Budgets at (or a whisker below) the mandatory minimum must stay
     feasible despite floating-point accumulation in [fixed]. *)
  let rhs = Float.max (budget -. fixed) (!min_value_spend *. (1. +. 1e-9)) in
  Lp.Model.add_le model !budget_terms rhs;
  match
    Robust_plan.solve ?warm_start ?max_iterations:max_lp_iterations
      ?deadline:lp_deadline model
  with
  | Error _ ->
      (* No certified LP solution.  The budget check above guarantees the
         minimum proof plan (bandwidth 1 everywhere) is affordable, and it
         is always executable — its provable count is just not optimized,
         so the reported relaxation objective claims nothing. *)
      {
        plan = Proof_exec.min_bandwidth_plan topo;
        lp_objective = 0.;
        lp_stats = None;
        basis = None;
        provenance = Robust_plan.Fell_back_greedy;
      }
  | Ok r ->
  let sol = r.Robust_plan.solution in
  let fractional = Array.make n 0. in
  let bonus = ref 0. in
  for i = 0 to n - 1 do
    if i <> root then begin
      let v = Float.max 1. (Lp.Model.value sol (getb i)) in
      fractional.(i) <- v;
      bonus := !bonus +. (1e-4 *. v)
    end
  done;
  {
    plan = Plan.of_fractional ~round:`Up topo fractional;
    lp_objective =
      (sol.Lp.Model.objective -. !bonus) /. float_of_int n_samples;
    lp_stats = sol.Lp.Model.stats;
    basis = sol.Lp.Model.basis;
    provenance = r.Robust_plan.provenance;
  }

type result = {
  returned : (int * float) list;
  total_mj : float;
  per_node_mj : float array;
  latency_s : float;
  unicasts : int;
  retransmissions : int;
  dark : int list;
}

let take = Exec.take_prefix

(* Nodes cut off by a dead link are dark: the whole subtree under the
   unreachable endpoint.  Collected in event order (deterministic per
   seed), reported sorted and deduplicated. *)
let darkness topo =
  let acc = ref [] in
  let mark node =
    acc := List.rev_append (Sensor.Topology.descendants topo node) !acc
  in
  let get () = List.sort_uniq Int.compare !acc in
  (mark, get)

(* ---------------- NAIVE-1: the pull pipeline ---------------- *)

type pull_msg = Req | Resp of (int * float) option

(* Per-node pipeline state.  The heap holds at most one candidate per
   source (the node itself or a child); a popped child entry is refilled
   lazily when the next request arrives, as in the paper. *)
type puller = {
  mutable heap : (int * (int * float)) list;  (* (source, entry), best first *)
  mutable initialized : bool;
  mutable exhausted : int list;  (* children with nothing left *)
  mutable missing : int list;  (* children owing the heap an entry *)
  mutable pending : int;  (* outstanding child requests *)
  mutable serving : bool;  (* a parent request awaits our response *)
}

let naive_one topo mica ?failure ?fault ?policy ~k ~readings () =
  if k < 1 then invalid_arg "Simnet_protocols.naive_one: k must be positive";
  let n = topo.Sensor.Topology.n in
  let root = topo.Sensor.Topology.root in
  let payload_bytes = function
    | Req | Resp None -> 0
    | Resp (Some _) -> mica.Sensor.Mica2.bytes_per_value
  in
  let engine =
    Simnet.Engine.create topo mica ?failure ?fault ?policy ~payload_bytes ()
  in
  let mark_dark, dark = darkness topo in
  let states =
    Array.init n (fun _ ->
        {
          heap = [];
          initialized = false;
          exhausted = [];
          missing = [];
          pending = 0;
          serving = false;
        })
  in
  let answer = ref [] and remaining = ref k in
  let heap_insert st source entry =
    st.heap <-
      List.sort
        (fun (_, a) (_, b) -> Exec.value_order a b)
        ((source, entry) :: st.heap)
  in
  (* Try to satisfy the current obligation of node [u]: refill missing
     child slots first, then pop and deliver. *)
  let rec progress api u =
    let st = states.(u) in
    if not st.initialized then begin
      st.initialized <- true;
      heap_insert st u (u, readings.(u));
      st.missing <- Array.to_list topo.Sensor.Topology.children.(u)
    end;
    let to_ask =
      List.filter (fun c -> not (List.mem c st.exhausted)) st.missing
    in
    st.missing <- [];
    List.iter
      (fun c ->
        st.pending <- st.pending + 1;
        api.Simnet.Engine.send ~dst:c Req)
      to_ask;
    if st.pending = 0 && st.serving then begin
      st.serving <- false;
      let popped =
        match st.heap with
        | [] -> None
        | (source, entry) :: rest ->
            st.heap <- rest;
            if source <> u then st.missing <- [ source ];
            Some entry
      in
      if u = root then begin
        (match popped with
        | Some entry ->
            answer := entry :: !answer;
            decr remaining
        | None -> remaining := 0);
        if !remaining > 0 then begin
          st.serving <- true;
          progress api u
        end
      end
      else api.Simnet.Engine.send ~dst:topo.Sensor.Topology.parent.(u) (Resp popped)
    end
  in
  for u = 0 to n - 1 do
    Simnet.Engine.on_message engine ~node:u (fun api ~src msg ->
        let st = states.(u) in
        match msg with
        | Req ->
            st.serving <- true;
            progress api u
        | Resp r ->
            st.pending <- st.pending - 1;
            (match r with
            | Some entry -> heap_insert st src entry
            | None -> st.exhausted <- src :: st.exhausted);
            progress api u);
    (* Degradation: an unreachable child behaves like an exhausted one (it
       can contribute nothing more); an unreachable parent orphans this
       node's whole branch. *)
    Simnet.Engine.on_give_up engine ~node:u (fun api ~dst msg ->
        mark_dark dst;
        match msg with
        | Req ->
            let st = states.(u) in
            st.pending <- st.pending - 1;
            st.exhausted <- dst :: st.exhausted;
            progress api u
        | Resp _ -> ())
  done;
  states.(root).serving <- true;
  Simnet.Engine.inject engine ~node:root Req;
  (* The injected Req lands in the root's handler as [Req]. *)
  let latency = Simnet.Engine.run engine in
  {
    returned = List.rev !answer;
    total_mj = Simnet.Engine.total_energy engine;
    per_node_mj = Array.init n (fun i -> Simnet.Engine.energy_of engine i);
    latency_s = latency;
    unicasts = Simnet.Engine.unicasts_sent engine;
    retransmissions = Simnet.Engine.retransmissions_sent engine;
    dark = dark ();
  }

(* ---------------- proof-carrying collection ---------------- *)

type proof_result = { base : result; proven_count : int }

type proof_msg =
  | Trigger
  | PValues of {
      values : (int * float) list;  (* best first *)
      proven : int;  (* length of the proven prefix *)
      sent_all : bool;
    }

let proof_collect topo mica ?failure ?fault ?policy plan ~k ~readings () =
  if k < 1 then invalid_arg "Simnet_protocols.proof_collect: k must be positive";
  let n = topo.Sensor.Topology.n in
  let root = topo.Sensor.Topology.root in
  for i = 0 to n - 1 do
    if i <> root && Plan.bandwidth plan i < 1 then
      invalid_arg "Simnet_protocols.proof_collect: proof plans use every edge"
  done;
  let payload_bytes = function
    | Trigger -> 0
    (* The proven count and flag ride in the header (the paper reserves a
       fixed cm allowance for them), so content is the values alone. *)
    | PValues { values; _ } ->
        List.length values * mica.Sensor.Mica2.bytes_per_value
  in
  let engine =
    Simnet.Engine.create topo mica ?failure ?fault ?policy ~payload_bytes ()
  in
  let mark_dark, dark = darkness topo in
  (* Per node: messages received so far, tagged by the child they came
     from, plus that child's proven prefix and sent_all flag. *)
  let inbox = Array.make n [] in
  let pending =
    Array.init n (fun u -> Array.length topo.Sensor.Topology.children.(u))
  in
  let answer = ref [] and root_proven = ref 0 in
  let ranks_above v w = Exec.value_order v w < 0 in
  let report api u =
    let children_info = inbox.(u) in
    let pool =
      List.concat_map
        (fun (child, values, proven, _) ->
          List.mapi (fun rank v -> (v, Some (child, rank < proven))) values)
        children_info
      @ [ ((u, readings.(u)), None) ]
    in
    let sorted = List.sort (fun (a, _) (b, _) -> Exec.value_order a b) pool in
    let cap = if u = root then k else Plan.bandwidth plan u in
    let sent = take cap sorted in
    (* A value is proven here iff every child certifies it. *)
    let proven_at (v, origin) =
      List.for_all
        (fun (child, values, proven, sent_all) ->
          let proven_values = take proven values in
          (match origin with
          | Some (c, was_proven) when c = child -> was_proven
          | _ -> false)
          || List.exists (fun w -> ranks_above v w) proven_values
          || sent_all)
        children_info
    in
    let rec proven_prefix = function
      | entry :: rest when proven_at entry -> 1 + proven_prefix rest
      | _ -> 0
    in
    let proven = proven_prefix sent in
    let values = List.map fst sent in
    if u = root then begin
      answer := values;
      root_proven := proven
    end
    else begin
      let sent_all =
        List.length values = topo.Sensor.Topology.subtree_size.(u)
      in
      api.Simnet.Engine.send ~dst:topo.Sensor.Topology.parent.(u)
        (PValues { values; proven; sent_all })
    end
  in
  for u = 0 to n - 1 do
    Simnet.Engine.on_message engine ~node:u (fun api ~src msg ->
        match msg with
        | Trigger ->
            if pending.(u) = 0 then report api u
            else
              api.Simnet.Engine.multicast
                ~dsts:(Array.to_list topo.Sensor.Topology.children.(u))
                Trigger
        | PValues { values; proven; sent_all } ->
            inbox.(u) <- (src, values, proven, sent_all) :: inbox.(u);
            pending.(u) <- pending.(u) - 1;
            if pending.(u) = 0 then report api u);
    (* Degradation: an unreachable child counts as having sent an empty,
       unproven report — [sent_all = false] keeps provenness conservative
       (nothing can be certified against a dark subtree). *)
    Simnet.Engine.on_give_up engine ~node:u (fun api ~dst msg ->
        mark_dark dst;
        match msg with
        | Trigger ->
            inbox.(u) <- (dst, [], 0, false) :: inbox.(u);
            pending.(u) <- pending.(u) - 1;
            if pending.(u) = 0 then report api u
        | PValues _ -> ())
  done;
  Simnet.Engine.inject engine ~node:root Trigger;
  let latency = Simnet.Engine.run engine in
  {
    base =
      {
        returned = !answer;
        total_mj = Simnet.Engine.total_energy engine;
        per_node_mj = Array.init n (fun i -> Simnet.Engine.energy_of engine i);
        latency_s = latency;
        unicasts = Simnet.Engine.unicasts_sent engine;
        retransmissions = Simnet.Engine.retransmissions_sent engine;
        dark = dark ();
      };
    proven_count = !root_proven;
  }

(* ---------------- two-phase exact as messages ---------------- *)

type exact_result = {
  answer : (int * float) list;
  proven_after_phase1 : int;
  total_mj : float;
  latency_s : float;
  unicasts : int;
  retransmissions : int;
  dark : int list;
}

type bound = (int * float) option

type exact_msg =
  | XTrigger
  | XValues of { values : (int * float) list; proven : int; sent_all : bool }
  | MopReq of { c : int; lo : bound; hi : bound }
  | MopResp of (int * float) list

(* Mirrors Exact.in_range: strictly inside (lo, hi) under the value order. *)
let in_range ~lo ~hi v =
  (match hi with None -> true | Some h -> Exec.value_order h v < 0)
  && match lo with None -> true | Some l -> Exec.value_order v l < 0

let range_empty ~lo ~hi =
  match (lo, hi) with
  | Some l, Some h -> Exec.value_order h l >= 0
  | _ -> false

type exact_state = {
  (* phase 1 *)
  mutable inbox : (int * (int * float) list * int * bool) list;
  mutable pending : int;
  mutable retrieved : (int * float) list;  (* sorted, own value included *)
  mutable proven : (int * float) list;  (* the node's proven prefix *)
  mutable child_sent_all : (int * bool) list;
  (* phase 2 *)
  mutable mop_pending : int;
  mutable mop_acc : (int * float) list;
  mutable mop_c : int;
  mutable mop_lo : bound;
  mutable mop_hi : bound;
}

let dedup_by_origin values =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (i, _) ->
      if Hashtbl.mem seen i then false
      else begin
        Hashtbl.replace seen i ();
        true
      end)
    values

let exact topo mica ?failure ?fault ?policy plan ~k ~readings () =
  if k < 1 then invalid_arg "Simnet_protocols.exact: k must be positive";
  let n = topo.Sensor.Topology.n in
  let root = topo.Sensor.Topology.root in
  for i = 0 to n - 1 do
    if i <> root && Plan.bandwidth plan i < 1 then
      invalid_arg "Simnet_protocols.exact: proof plans use every edge"
  done;
  let bpv = mica.Sensor.Mica2.bytes_per_value in
  let payload_bytes = function
    | XTrigger -> 0
    | XValues { values; _ } -> List.length values * bpv
    | MopReq _ -> (2 * bpv) + 2
    | MopResp values -> List.length values * bpv
  in
  let engine =
    Simnet.Engine.create topo mica ?failure ?fault ?policy ~payload_bytes ()
  in
  let mark_dark, dark = darkness topo in
  let states =
    Array.init n (fun u ->
        {
          inbox = [];
          pending = Array.length topo.Sensor.Topology.children.(u);
          retrieved = [];
          proven = [];
          child_sent_all = [];
          mop_pending = 0;
          mop_acc = [];
          mop_c = 0;
          mop_lo = None;
          mop_hi = None;
        })
  in
  let answer = ref [] and root_proven = ref 0 in
  let ranks_above v w = Exec.value_order v w < 0 in
  (* ---- phase 1: proof-carrying collection, retaining state ---- *)
  let phase1_report api u =
    let st = states.(u) in
    let pool =
      List.concat_map
        (fun (child, values, proven, _) ->
          List.mapi (fun rank v -> (v, Some (child, rank < proven))) values)
        st.inbox
      @ [ ((u, readings.(u)), None) ]
    in
    let sorted = List.sort (fun (a, _) (b, _) -> Exec.value_order a b) pool in
    st.retrieved <- List.map fst sorted;
    st.child_sent_all <-
      List.map (fun (child, _, _, sent_all) -> (child, sent_all)) st.inbox;
    let cap = if u = root then k else Plan.bandwidth plan u in
    let sent = take cap sorted in
    let proven_at (v, origin) =
      List.for_all
        (fun (child, values, proven, sent_all) ->
          let proven_values = take proven values in
          (match origin with
          | Some (c, was_proven) when c = child -> was_proven
          | _ -> false)
          || List.exists (fun w -> ranks_above v w) proven_values
          || sent_all)
        st.inbox
    in
    let rec proven_prefix = function
      | entry :: rest when proven_at entry -> 1 + proven_prefix rest
      | _ -> 0
    in
    let proven = proven_prefix sent in
    let values = List.map fst sent in
    st.proven <- take proven values;
    if u = root then begin
      root_proven := proven;
      (* Start the mop-up, or finish outright. *)
      if proven >= k then answer := values
      else begin
        let lo = List.nth_opt st.retrieved (k - 1) in
        let hi =
          match List.rev st.proven with [] -> None | last :: _ -> Some last
        in
        let missing = k - proven in
        let targets =
          if range_empty ~lo ~hi then []
          else
            Array.to_list topo.Sensor.Topology.children.(root)
            |> List.filter (fun ch -> not (List.assoc ch st.child_sent_all))
        in
        if targets = [] then answer := take k st.retrieved
        else begin
          st.mop_pending <- List.length targets;
          st.mop_acc <- [];
          api.Simnet.Engine.multicast ~dsts:targets
            (MopReq { c = missing; lo; hi })
        end
      end
    end
    else begin
      let sent_all =
        List.length values = topo.Sensor.Topology.subtree_size.(u)
      in
      api.Simnet.Engine.send ~dst:topo.Sensor.Topology.parent.(u)
        (XValues { values; proven; sent_all })
    end
  in
  (* ---- phase 2: range requests served from retained state ---- *)
  let mop_reply api u values =
    if u = root then
      answer :=
        take k
          (dedup_by_origin
             (List.sort Exec.value_order (states.(u).retrieved @ values)))
    else api.Simnet.Engine.send ~dst:topo.Sensor.Topology.parent.(u) (MopResp values)
  in
  let handle_mop_req api u ~c ~lo ~hi =
    let st = states.(u) in
    let known_in_range = List.filter (in_range ~lo ~hi) st.retrieved in
    let proven_in_range = List.filter (in_range ~lo ~hi) st.proven in
    if List.length proven_in_range >= c then
      mop_reply api u (take c known_in_range)
    else begin
      let pmin =
        match List.rev st.proven with [] -> None | last :: _ -> Some last
      in
      let hi' =
        match (hi, pmin) with
        | None, p -> p
        | h, None -> h
        | Some h, Some p -> if Exec.value_order h p < 0 then Some p else Some h
      in
      let lo' =
        match List.nth_opt known_in_range (c - 1) with
        | None -> lo
        | Some w -> (
            match lo with
            | None -> Some w
            | Some l -> if Exec.value_order w l < 0 then Some w else Some l)
      in
      let targets =
        if range_empty ~lo:lo' ~hi:hi' then []
        else
          Array.to_list topo.Sensor.Topology.children.(u)
          |> List.filter (fun ch -> not (List.assoc ch st.child_sent_all))
      in
      if targets = [] then mop_reply api u (take c known_in_range)
      else begin
        st.mop_pending <- List.length targets;
        st.mop_acc <- [];
        st.mop_c <- c;
        st.mop_lo <- lo;
        st.mop_hi <- hi;
        api.Simnet.Engine.multicast ~dsts:targets
          (MopReq { c; lo = lo'; hi = hi' })
      end
    end
  in
  let handle_mop_resp api u values =
    let st = states.(u) in
    st.mop_acc <- List.rev_append values st.mop_acc;
    st.mop_pending <- st.mop_pending - 1;
    if st.mop_pending = 0 then
      if u = root then mop_reply api u st.mop_acc
      else begin
        let known_in_range =
          List.filter (in_range ~lo:st.mop_lo ~hi:st.mop_hi) st.retrieved
        in
        let merged =
          dedup_by_origin
            (List.sort Exec.value_order (known_in_range @ st.mop_acc))
        in
        mop_reply api u (take st.mop_c merged)
      end
  in
  for u = 0 to n - 1 do
    Simnet.Engine.on_message engine ~node:u (fun api ~src msg ->
        let st = states.(u) in
        match msg with
        | XTrigger ->
            if st.pending = 0 then phase1_report api u
            else
              api.Simnet.Engine.multicast
                ~dsts:(Array.to_list topo.Sensor.Topology.children.(u))
                XTrigger
        | XValues { values; proven; sent_all } ->
            st.inbox <- (src, values, proven, sent_all) :: st.inbox;
            st.pending <- st.pending - 1;
            if st.pending = 0 then phase1_report api u
        | MopReq { c; lo; hi } -> handle_mop_req api u ~c ~lo ~hi
        | MopResp values -> handle_mop_resp api u values);
    (* Degradation: phase-1 treats an unreachable child as an empty,
       unproven report; a phase-2 range request to a dead subtree comes
       back empty (the subtree was already marked dark in phase 1). *)
    Simnet.Engine.on_give_up engine ~node:u (fun api ~dst msg ->
        let st = states.(u) in
        match msg with
        | XTrigger ->
            mark_dark dst;
            st.inbox <- (dst, [], 0, false) :: st.inbox;
            st.pending <- st.pending - 1;
            if st.pending = 0 then phase1_report api u
        | MopReq _ -> handle_mop_resp api u []
        | XValues _ | MopResp _ -> mark_dark dst)
  done;
  Simnet.Engine.inject engine ~node:root XTrigger;
  let latency = Simnet.Engine.run engine in
  {
    answer = !answer;
    proven_after_phase1 = !root_proven;
    total_mj = Simnet.Engine.total_energy engine;
    latency_s = latency;
    unicasts = Simnet.Engine.unicasts_sent engine;
    retransmissions = Simnet.Engine.retransmissions_sent engine;
    dark = dark ();
  }

(* Self-healing execution: churn detection with hysteresis, LP plan
   surgery masked to the survivors, and degraded re-certification.

   Surgery deliberately re-solves the *same* LP shape as the undamaged
   instance — dead nodes keep their variables, only their activation
   upper bound drops to 0 (see Lp_lf ?alive) — so the warm-start basis
   from the previous solve stays applicable and a repair is a perturbed
   re-solve, not a cold one.  Whether a token actually fits is decided by
   the LP layer's one shape predicate (Lp.Model.basis_compatible), applied
   inside Robust_plan.solve on the way to the solver. *)

let m_surgeries = Obs.Metrics.counter "repair.surgeries"
let m_unnecessary = Obs.Metrics.counter "repair.unnecessary"
let m_repaired = Obs.Metrics.counter "repair.repaired"
let m_refused_floor = Obs.Metrics.counter "repair.refused_floor"
let m_refused_uncertified = Obs.Metrics.counter "repair.refused_uncertified"
let m_install_mj = Obs.Metrics.fsum "repair.delta_install_mj"
let t_surgery = Obs.Metrics.timer "repair.surgery"

module Health = struct
  type t = {
    confirm_after : int;
    clear_after : int;
    dark_streak : int array;
    alive_streak : int array;
    confirmed : bool array;
    mutable epochs : int;
  }

  let create ?(confirm_after = 2) ?(clear_after = 2) ~n () =
    if confirm_after < 1 then
      invalid_arg "Repair.Health.create: confirm_after must be positive";
    if clear_after < 1 then
      invalid_arg "Repair.Health.create: clear_after must be positive";
    if n < 1 then invalid_arg "Repair.Health.create: n must be positive";
    {
      confirm_after;
      clear_after;
      dark_streak = Array.make n 0;
      alive_streak = Array.make n 0;
      confirmed = Array.make n false;
      epochs = 0;
    }

  let observe ?probed t ~dark =
    let n = Array.length t.confirmed in
    let dark_now = Array.make n false in
    List.iter
      (fun i ->
        if i < 0 || i >= n then
          invalid_arg "Repair.Health.observe: node out of range";
        dark_now.(i) <- true)
      dark;
    (* A node that was neither probed nor reported dark yields no
       evidence this epoch: its streaks freeze.  Without this an epoch
       that simply skipped a confirmed-dead subtree (the repaired plan
       no longer routes through it) would read as "alive" and clear the
       confirmation, oscillating repair and un-repair forever. *)
    let probed_now =
      match probed with
      | None -> fun _ -> true
      | Some l ->
          let a = Array.make n false in
          List.iter
            (fun i ->
              if i < 0 || i >= n then
                invalid_arg "Repair.Health.observe: probed node out of range";
              a.(i) <- true)
            l;
          fun i -> a.(i)
    in
    for i = 0 to n - 1 do
      if dark_now.(i) then begin
        t.dark_streak.(i) <- t.dark_streak.(i) + 1;
        t.alive_streak.(i) <- 0;
        if t.dark_streak.(i) >= t.confirm_after then t.confirmed.(i) <- true
      end
      else if probed_now i then begin
        t.alive_streak.(i) <- t.alive_streak.(i) + 1;
        t.dark_streak.(i) <- 0;
        if t.alive_streak.(i) >= t.clear_after then t.confirmed.(i) <- false
      end
    done;
    t.epochs <- t.epochs + 1

  let confirmed_dead t =
    let acc = ref [] in
    for i = Array.length t.confirmed - 1 downto 0 do
      if t.confirmed.(i) then acc := i :: !acc
    done;
    !acc

  let is_confirmed t i = t.confirmed.(i)

  let dark_streak t i = t.dark_streak.(i)

  let epochs t = t.epochs
end

type repaired = {
  plan : Plan.t;
  guarantee : Guarantee.t;
  provenance : Robust_plan.provenance;
  dropped : int list;
  changed : int list;
  delta_install_mj : float;
  repair_s : float;
  basis : Lp.Model.basis option;
}

type refusal =
  | Floor_below_threshold of { floor : float; threshold : float }
  | Uncertified

type outcome =
  | Unnecessary
  | Repaired of repaired
  | Refused of { reason : refusal; attempt : repaired option }

(* A dead node takes its whole subtree with it: nothing below can reach
   the root.  Surgery reasons about that closure throughout. *)
let closure topo dead =
  List.concat_map (fun i -> Sensor.Topology.descendants topo i) dead
  |> List.sort_uniq Int.compare

let emit_span ~t0 ~dead ~outcome_str ~dropped ~changed ~floor ~delta_mj =
  if Obs.Trace.active () then
    Obs.Trace.emit Obs.Trace.Repair ~name:"repair.surgery" ~start_s:t0
      ~dur_s:(Obs.Trace.now () -. t0)
      [
        ("outcome", Obs.Trace.Str outcome_str);
        ("dead", Obs.Trace.Int (List.length dead));
        ("dropped", Obs.Trace.Int dropped);
        ("changed", Obs.Trace.Int changed);
        ("floor", Obs.Trace.Float floor);
        ("delta_install_mj", Obs.Trace.Float delta_mj);
      ]

let surgery ?warm_start ?max_lp_iterations ?lp_deadline ?(delta = 1e-6)
    ?(min_floor = 0.) ?(assumed_dead = []) topo cost mica samples ~current
    ~dead ~k ~budget =
  let n = topo.Sensor.Topology.n in
  let root = topo.Sensor.Topology.root in
  if List.exists (fun i -> i = root) dead then
    invalid_arg "Repair.surgery: the root cannot be dead";
  let now_closure = closure topo dead in
  let prev_closure = closure topo assumed_dead in
  let in_list x l = List.exists (fun y -> Int.equal x y) l in
  let recovered = List.filter (fun i -> not (in_list i now_closure)) prev_closure in
  let newly = List.filter (fun i -> not (in_list i prev_closure)) now_closure in
  (* Surgery is warranted exactly when the situation the installed plan
     was built for changed in a way that matters: a node it relied on
     went dark, or capacity it was denied came back. *)
  let affects = recovered <> [] || List.exists (fun i -> Plan.bandwidth current i > 0) newly in
  if not affects then begin
    Obs.Metrics.incr m_unnecessary;
    Unnecessary
  end
  else begin
    Obs.Metrics.incr m_surgeries;
    let t0 = Obs.Trace.now () in
    let alive = Array.make n true in
    List.iter (fun i -> alive.(i) <- false) now_closure;
    (* Independence split, as in Robust_plan.plan_with_guarantee: plan on
       the first half, certify the repaired plan on the disjoint second
       half.  Windows too short to split reuse the full window and the
       bound carries the documented bias. *)
    let m = Sampling.Sample_set.n_samples samples in
    let plan_w, cert_w =
      if m >= 4 then
        ( Sampling.Sample_set.slice samples ~offset:0 ~count:(m / 2),
          Sampling.Sample_set.slice samples ~offset:(m / 2)
            ~count:(m - (m / 2)) )
      else (samples, samples)
    in
    let r =
      Lp_lf.plan ~alive ?warm_start ?max_lp_iterations ?lp_deadline topo cost
        plan_w ~budget ~k
    in
    if r.Lp_lf.provenance = Robust_plan.Fell_back_greedy then begin
      Obs.Metrics.incr m_refused_uncertified;
      let dur = Obs.Trace.now () -. t0 in
      Obs.Metrics.record_s t_surgery dur;
      emit_span ~t0 ~dead ~outcome_str:"refused_uncertified" ~dropped:0
        ~changed:0 ~floor:0. ~delta_mj:0.;
      Refused { reason = Uncertified; attempt = None }
    end
    else begin
      let repaired_plan = r.Lp_lf.plan in
      (* The degraded bound: computed on the survivors' answers against
         the full truth, so excluded subtrees honestly depress the
         empirical accuracy instead of being quietly forgotten. *)
      let g =
        Guarantee.compute ~delta ?report:r.Lp_lf.certify
          ~objective:r.Lp_lf.lp_objective topo cost repaired_plan ~k cert_w
      in
      let dropped =
        List.filter (fun i -> Plan.bandwidth current i > 0) now_closure
      in
      let changed = ref [] in
      for i = n - 1 downto 0 do
        if Plan.bandwidth current i <> Plan.bandwidth repaired_plan i then
          changed := i :: !changed
      done;
      let changed = !changed in
      (* Install covers only the delta: one subplan unicast per live
         changed node (a live node whose bandwidth drops to 0 still
         needs the stop message; dead ones are unreachable and free). *)
      let live_changed =
        List.filter (fun i -> alive.(i) && i <> root) changed
      in
      let delta_install_mj =
        float_of_int (List.length live_changed)
        *. Sensor.Mica2.plan_install_mj mica
      in
      let repair_s = Obs.Trace.now () -. t0 in
      Obs.Metrics.record_s t_surgery repair_s;
      let rep =
        {
          plan = repaired_plan;
          guarantee = g;
          provenance = r.Lp_lf.provenance;
          dropped;
          changed;
          delta_install_mj;
          repair_s;
          basis = r.Lp_lf.basis;
        }
      in
      if g.Guarantee.certified_lower < min_floor then begin
        Obs.Metrics.incr m_refused_floor;
        emit_span ~t0 ~dead ~outcome_str:"refused_floor"
          ~dropped:(List.length dropped) ~changed:(List.length changed)
          ~floor:g.Guarantee.certified_lower ~delta_mj:0.;
        Refused
          {
            reason =
              Floor_below_threshold
                { floor = g.Guarantee.certified_lower; threshold = min_floor };
            attempt = Some rep;
          }
      end
      else begin
        Obs.Metrics.incr m_repaired;
        Obs.Metrics.accum m_install_mj delta_install_mj;
        emit_span ~t0 ~dead ~outcome_str:"repaired"
          ~dropped:(List.length dropped) ~changed:(List.length changed)
          ~floor:g.Guarantee.certified_lower ~delta_mj:delta_install_mj;
        Repaired rep
      end
    end
  end

type controller = {
  topo : Sensor.Topology.t;
  cost : Sensor.Cost.t;
  mica : Sensor.Mica2.t;
  k : int;
  budget : float;
  delta : float;
  min_floor : float;
  c_health : Health.t;
  mutable c_plan : Plan.t;
  mutable c_guarantee : Guarantee.t option;
  mutable installed_dead : int list;
  mutable warm : Lp.Model.basis option;
  mutable c_repairs : int;
  mutable c_refusals : int;
  mutable c_repair_mj : float;
}

let create ?confirm_after ?clear_after ?(delta = 1e-6) ?(min_floor = 0.) topo
    cost mica ~initial ?guarantee ~k ~budget () =
  {
    topo;
    cost;
    mica;
    k;
    budget;
    delta;
    min_floor;
    c_health =
      Health.create ?confirm_after ?clear_after ~n:topo.Sensor.Topology.n ();
    c_plan = initial;
    c_guarantee = guarantee;
    installed_dead = [];
    warm = None;
    c_repairs = 0;
    c_refusals = 0;
    c_repair_mj = 0.;
  }

let observe ?probed c samples ~dark =
  Health.observe ?probed c.c_health ~dark;
  (* The root can be reported dark under extreme loss (a child gave up
     on its uplink), but a plan without the root is meaningless and
     surgery rejects it: with no root there is no query to degrade. *)
  let dead =
    List.filter
      (fun i -> i <> c.topo.Sensor.Topology.root)
      (Health.confirmed_dead c.c_health)
  in
  let outcome =
    surgery ?warm_start:c.warm ~delta:c.delta ~min_floor:c.min_floor
      ~assumed_dead:c.installed_dead c.topo c.cost c.mica samples
      ~current:c.c_plan ~dead ~k:c.k ~budget:c.budget
  in
  (match outcome with
  | Unnecessary -> ()
  | Repaired r ->
      c.c_plan <- r.plan;
      c.c_guarantee <- Some r.guarantee;
      c.installed_dead <- dead;
      (match r.basis with Some _ -> c.warm <- r.basis | None -> ());
      c.c_repairs <- c.c_repairs + 1;
      c.c_repair_mj <- c.c_repair_mj +. r.delta_install_mj
  | Refused _ ->
      (* The installed plan stays; the next epoch's observation will try
         again (the dead set may have shrunk, or the caller may lower the
         floor).  Refusals are counted so campaigns can assert on them. *)
      c.c_refusals <- c.c_refusals + 1);
  outcome

let plan c = c.c_plan

let guarantee c = c.c_guarantee

let health c = c.c_health

let dead c = c.installed_dead

let repairs c = c.c_repairs

let refusals c = c.c_refusals

let repair_energy_mj c = c.c_repair_mj

(** PROSPECTOR-LP-LF: topology-aware planning without local filtering
    (Section 4.1).

    One 0/1-relaxed variable [x_i] per node (ship node [i]'s value to the
    root) and [z_i] per edge (edge carries any traffic).  The objective
    maximizes the number of sample top-k entries covered; the budget row
    charges a per-message cost on every used edge and per-value costs along
    each chosen node's whole path.  The paper's per-ancestor edge
    constraints are encoded equivalently (and much more compactly) as
    [x_i <= z_i] plus edge-usage monotonicity [z_child <= z_parent] — valid
    because all traffic flows to the root over the tree.

    The fractional solution is rounded at 1/2 (the paper's scheme); any
    budget left over is then spent on the most fractional remaining nodes,
    highest LP value first, which matters on deep trees where the
    relaxation spreads mass below the threshold.  Measured costs are
    always taken from actual executions. *)

type result = {
  plan : Plan.t;
  lp_objective : float;  (** optimal covered-ones count of the relaxation *)
  lp_stats : Lp.Revised.stats option;
  chosen : bool array;  (** rounded node selection *)
  basis : Lp.Model.basis option;
      (** warm-start token for re-planning the same-shaped LP *)
  provenance : Robust_plan.provenance;
      (** which stage of the certified fallback chain produced the plan *)
}

val plan :
  ?warm_start:Lp.Model.basis ->
  ?max_lp_iterations:int ->
  ?lp_deadline:float ->
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Sampling.Sample_set.t ->
  budget:float ->
  result
(** [warm_start] is best-effort: incompatible tokens are ignored.
    [max_lp_iterations]/[lp_deadline] bound the LP stages; when both
    stages fail certification the plan comes from {!Greedy} (see
    {!Robust_plan}) and the call never raises on solver failure. *)

(** Plan re-calculation policy (Section 4.4, "Plan Re-calculation").

    Disseminating a new plan costs a unicast per participating node, so it
    is prohibitive to re-install on every change.  The base station instead
    re-optimizes locally (it has power to spare) and disseminates only when
    the candidate plan beats the installed one by a clear margin on the
    current sample window — enough that the expected accuracy gain repays
    the installation cost over the plan's lifetime. *)

type t

type decision =
  | Kept  (** candidate not convincingly better; nothing transmitted *)
  | Disseminated of { plan : Plan.t; guarantee : Guarantee.t option }
      (** new plan installed (the caller pays {!Plan.install_mj}); every
          disseminated plan records the certified (ε, δ) bound it was
          admitted under — from the split-window escalation when a
          [?guarantee] target was given, otherwise computed on the
          current window at the default confidence (that bound reuses the
          window that chose the plan, a bias documented in
          {!Guarantee}) *)

val create :
  ?min_gain:float ->
  ?amortization_runs:int ->
  initial:Plan.t ->
  unit ->
  t
(** [min_gain] (default 0.05) is the minimum improvement in expected
    accuracy (fraction of sample answer entries covered) that justifies
    dissemination; [amortization_runs] (default 50) is how many executions
    a plan is expected to serve, used to weigh the installation cost. *)

val current : t -> Plan.t

val force :
  t ->
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Plan.t ->
  k:int ->
  Sampling.Sample_set.t ->
  Guarantee.t
(** Install a plan unconditionally (used by periodic re-planning
    baselines); counts as a dissemination.  Like {!consider}'s
    dissemination path it computes and returns the default-confidence
    {!Guarantee.t} on the given window, so even forced installs carry a
    machine-checkable bound (with no LP certificate to fold in, the
    bound's [lp_eps] is 0). *)

val replans : t -> int
(** How many times a new plan has been disseminated. *)

val expected_accuracy :
  Sensor.Topology.t -> Sensor.Cost.t -> Plan.t -> k:int ->
  Sampling.Sample_set.t -> float
(** Mean fraction of each sample's top k that the plan returns when
    executed on that sample — the score the policy compares. *)

val consider :
  ?max_lp_iterations:int ->
  ?lp_deadline:float ->
  ?guarantee:float * float ->
  t ->
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Sensor.Mica2.t ->
  Sampling.Sample_set.t ->
  k:int ->
  budget:float ->
  decision
(** Re-optimize (PROSPECTOR-LP+LF) against the given samples and decide.
    A candidate must beat the incumbent by [min_gain] expected accuracy
    {e and} offer a per-run energy headroom that repays the install cost
    within [amortization_runs] executions.  A candidate whose provenance is
    {!Robust_plan.Fell_back_greedy} (no LP stage could be certified, e.g.
    under a crippled [max_lp_iterations]/[lp_deadline]) is never
    disseminated: the answer is always [Kept] and the stored warm-start
    token survives for the next certified solve.

    [guarantee:(eps, delta)] additionally demands the candidate certify
    "expected accuracy >= [1 - eps] w.p. >= [1 - delta]" (see
    {!Lp_lf.plan}); a candidate whose bound falls short of the target is
    treated like an uncertified one — [Kept], never disseminated.  Note
    the escalation ladder may plan the candidate at a higher energy
    budget than [budget] (that is the guarantee/energy trade). *)

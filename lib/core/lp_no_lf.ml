type result = {
  plan : Plan.t;
  lp_objective : float;
  lp_stats : Lp.Revised.stats option;
  chosen : bool array;
  basis : Lp.Model.basis option;
  provenance : Robust_plan.provenance;
}

let plan ?warm_start ?max_lp_iterations ?lp_deadline topo cost samples ~budget
    =
  if budget < 0. then invalid_arg "Lp_no_lf.plan: negative budget";
  let r =
    Ship_lp.plan_by_colsum ?warm_start ?max_lp_iterations ?lp_deadline topo
      cost ~colsum:samples.Sampling.Sample_set.colsum ~budget
  in
  {
    plan = Plan.of_chosen topo r.Ship_lp.chosen;
    lp_objective = r.Ship_lp.lp_objective;
    lp_stats = r.Ship_lp.lp_stats;
    chosen = r.Ship_lp.chosen;
    basis = r.Ship_lp.basis;
    provenance = r.Ship_lp.provenance;
  }

(** Self-healing execution: plan surgery under node churn.

    The paper's plans are computed once and assume the participant set
    stays alive; under churn a crashed subtree is merely reported [dark]
    by {!Simnet_exec.collect}, which silently voids the certified
    (ε, δ) floor the plan was disseminated with.  This module closes the
    loop in three stages:

    - {b detection} ({!Health}): a per-node view fed by the executor's
      dark-subtree and give-up signals, with hysteresis so one epoch of
      burst loss does not trigger surgery;
    - {b plan surgery} ({!surgery}): restrict the LP to the surviving
      nodes — same model shape, so PR-1 warm-start tokens from the
      undamaged solve still apply — re-solve through the PR-3 certified
      chain, and emit a repaired plan whose install cost covers only the
      changed nodes.  Orphaned coverage moves to live siblings exactly
      when the freed budget lets their edges activate;
    - {b degraded guarantees}: the repaired plan is re-certified on a
      window slice disjoint from the one that planned it, so every
      answer after a repair still carries an honest certified floor.
      Repairs whose degraded floor falls below the caller's threshold
      are {e refused} — the attempt is reported but never installed.

    {!create}/{!observe} package the three stages as a per-deployment
    controller driven once per epoch. *)

(** {1 Detection} *)

module Health : sig
  (** Hysteresis over per-epoch darkness reports.

      A node is {e confirmed dead} after [confirm_after] consecutive
      epochs dark, and cleared again after [clear_after] consecutive
      epochs alive — so a single burst-loss epoch (recoverable, and
      recovered by the ARQ sublayer most of the time) never triggers
      surgery, while a crashed node is confirmed within a bounded
      detection latency. *)

  type t

  val create : ?confirm_after:int -> ?clear_after:int -> n:int -> unit -> t
  (** [confirm_after] (default 2) and [clear_after] (default 2) are the
      hysteresis windows, both at least 1.  [n] is the node count. *)

  val observe : ?probed:int list -> t -> dark:int list -> unit
  (** Feed one epoch's dark set ({!Simnet_exec.result.dark}).  A node in
      [probed] (default: every node) but not in [dark] counts as
      observed alive; a node in neither yields no evidence and keeps
      its streaks — pass the executed plan's participants as [probed]
      when the collection no longer routes through excluded subtrees,
      or confirmed-dead nodes would read as silently recovered. *)

  val confirmed_dead : t -> int list
  (** Nodes currently confirmed dead, sorted ascending. *)

  val is_confirmed : t -> int -> bool

  val dark_streak : t -> int -> int
  (** Consecutive epochs the node has been dark (0 when alive). *)

  val epochs : t -> int
  (** Epochs observed so far. *)
end

(** {1 Plan surgery} *)

type repaired = {
  plan : Plan.t;  (** the repaired plan, masked to survivors *)
  guarantee : Guarantee.t;
      (** the degraded bound, certified on a window slice disjoint from
          the one that planned the repair (when the window splits) *)
  provenance : Robust_plan.provenance;
  dropped : int list;
      (** nodes that participated in the old plan but are dead (or cut
          off below a dead node) in the new one, sorted *)
  changed : int list;
      (** nodes whose bandwidth differs between old and new plan,
          sorted — the only nodes an install must touch *)
  delta_install_mj : float;
      (** install cost of the repair: one subplan unicast per {e live}
          changed node (dead nodes are unreachable and pay nothing);
          at most {!Plan.install_mj} of the repaired plan *)
  repair_s : float;  (** wall-clock spent in surgery (measurement only) *)
  basis : Lp.Model.basis option;
      (** warm-start token from the repair solve, for the next one *)
}

type refusal =
  | Floor_below_threshold of { floor : float; threshold : float }
      (** the degraded certified floor fell below [min_floor] *)
  | Uncertified
      (** no LP stage could be certified; a greedy repair is never
          worth an install *)

type outcome =
  | Unnecessary
      (** the dead-set change does not affect the installed plan: no
          newly-dead participant and no recovered node *)
  | Repaired of repaired
  | Refused of { reason : refusal; attempt : repaired option }
      (** the repair was computed but must not be installed; [attempt]
          carries it (with its honest bound) for callers that prefer a
          weak certified answer over none — absent when uncertified *)

val surgery :
  ?warm_start:Lp.Model.basis ->
  ?max_lp_iterations:int ->
  ?lp_deadline:float ->
  ?delta:float ->
  ?min_floor:float ->
  ?assumed_dead:int list ->
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Sensor.Mica2.t ->
  Sampling.Sample_set.t ->
  current:Plan.t ->
  dead:int list ->
  k:int ->
  budget:float ->
  outcome
(** One repair pass.  [dead] is the confirmed-dead set; [assumed_dead]
    (default []) is the set [current] was last planned against, so both
    degradation (new deaths) and restoration (recoveries) trigger
    surgery while an unchanged situation returns [Unnecessary].
    [delta] (default 1e-6) is the failure budget of the degraded bound;
    [min_floor] (default 0) refuses repairs whose certified lower bound
    falls below it.  Deterministic given its inputs (only [repair_s]
    carries wall-clock).
    @raise Invalid_argument if [dead] contains the root. *)

(** {1 Controller} *)

type controller
(** Detection, surgery and install policy packaged per deployment:
    feed it each epoch's dark set and it keeps the installed plan and
    its degraded bound current. *)

val create :
  ?confirm_after:int ->
  ?clear_after:int ->
  ?delta:float ->
  ?min_floor:float ->
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Sensor.Mica2.t ->
  initial:Plan.t ->
  ?guarantee:Guarantee.t ->
  k:int ->
  budget:float ->
  unit ->
  controller
(** [initial] is the plan currently installed (planned with everyone
    alive); [guarantee] its bound, if it shipped with one. *)

val observe :
  ?probed:int list -> controller -> Sampling.Sample_set.t -> dark:int list ->
  outcome
(** Record one epoch's dark set (optionally restricted to the [probed]
    nodes, see {!Health.observe}), run surgery when the confirmed-dead
    set's effect on the installed plan changed, and install the repair
    unless refused.  [samples] is the current sample window (used to
    plan and re-certify).  Warm-start tokens chain across repairs; a
    confirmed-dark root is ignored (an unreachable root means no query
    at all, not a repairable plan). *)

val plan : controller -> Plan.t
(** The currently installed plan. *)

val guarantee : controller -> Guarantee.t option
(** The installed plan's current certified bound ([None] only when the
    initial plan shipped without one and no repair has landed). *)

val health : controller -> Health.t

val dead : controller -> int list
(** The confirmed-dead set the installed plan was last repaired
    against, sorted. *)

val repairs : controller -> int
(** Repairs installed so far. *)

val refusals : controller -> int

val repair_energy_mj : controller -> float
(** Total install energy spent on repairs ([delta_install_mj] summed) —
    the "energy to recover" the chaos harness bounds. *)

type result = {
  returned : (int * float) list;
  total_mj : float;
  per_node_mj : float array;
  latency_s : float;
  unicasts : int;
  reroutes : int;
  retransmissions : int;
  dark : int list;
  give_ups : (int * float) list;
  gave_up_frames : int;
}

type msg = Trigger | Values of (int * float) list

let take = Exec.take_prefix

(* Nodes cut off by a dead link are dark: the whole subtree under the
   unreachable endpoint.  Collected in event order (deterministic per
   seed), reported sorted and deduplicated. *)
let darkness topo =
  let acc = ref [] in
  let mark node =
    acc := List.rev_append (Sensor.Topology.descendants topo node) !acc
  in
  let get () = List.sort_uniq Int.compare !acc in
  (mark, get)

let collect topo mica ?failure ?fault ?policy plan ~k ~readings =
  if Array.length readings <> topo.Sensor.Topology.n then
    invalid_arg "Simnet_exec.collect: readings length mismatch";
  let root = topo.Sensor.Topology.root in
  let payload_bytes = function
    | Trigger -> 0
    | Values vs -> List.length vs * mica.Sensor.Mica2.bytes_per_value
  in
  let engine =
    Simnet.Engine.create topo mica ?failure ?fault ?policy ~payload_bytes ()
  in
  let n = topo.Sensor.Topology.n in
  let participating_children =
    Array.init n (fun u ->
        Array.to_list topo.Sensor.Topology.children.(u)
        |> List.filter (fun c -> Plan.bandwidth plan c > 0))
  in
  let pending = Array.init n (fun u -> List.length participating_children.(u)) in
  let inbox = Array.make n [] in
  let answer = ref [] in
  let mark_dark, dark = darkness topo in
  (* Give-up instants in event order: (unreachable endpoint, sim time).
     One entry per handler invocation, so detection latency is
     measurable per node rather than inferred from the final dark set. *)
  let give_ups = ref [] in
  let report api u =
    let pool =
      List.sort Exec.value_order ((u, readings.(u)) :: inbox.(u))
    in
    if u = root then answer := take k pool
    else
      api.Simnet.Engine.send ~dst:topo.Sensor.Topology.parent.(u)
        (Values (take (Plan.bandwidth plan u) pool))
  in
  for u = 0 to n - 1 do
    if u = root || Plan.bandwidth plan u > 0 then begin
      Simnet.Engine.on_message engine ~node:u (fun api ~src msg ->
          match msg with
          | Trigger ->
              let kids = participating_children.(u) in
              if kids = [] then report api u
              else api.Simnet.Engine.multicast ~dsts:kids Trigger
          | Values vs ->
              ignore src;
              inbox.(u) <- List.rev_append vs inbox.(u);
              pending.(u) <- pending.(u) - 1;
              if pending.(u) = 0 then report api u);
      (* Degradation: an unreachable child's subtree goes dark and the
         collection proceeds without it; an unreachable parent orphans this
         node's whole branch. *)
      Simnet.Engine.on_give_up engine ~node:u (fun api ~dst msg ->
          give_ups := (dst, api.Simnet.Engine.time ()) :: !give_ups;
          mark_dark dst;
          match msg with
          | Trigger ->
              pending.(u) <- pending.(u) - 1;
              if pending.(u) = 0 then report api u
          | Values _ -> ())
    end
  done;
  Simnet.Engine.inject engine ~node:root Trigger;
  let latency = Simnet.Engine.run engine in
  {
    returned = !answer;
    total_mj = Simnet.Engine.total_energy engine;
    per_node_mj =
      Array.init n (fun i -> Simnet.Engine.energy_of engine i);
    latency_s = latency;
    unicasts = Simnet.Engine.unicasts_sent engine;
    reroutes = Simnet.Engine.reroutes engine;
    retransmissions = Simnet.Engine.retransmissions_sent engine;
    dark = dark ();
    give_ups = List.rev !give_ups;
    gave_up_frames = Simnet.Engine.gave_up engine;
  }

(** Shared core of the "ship chosen nodes to the root" LP planners
    ({!Lp_no_lf} for top-k, {!Subset_planner} for generalized subset
    queries).  The formulation only depends on how often each node
    contributes to sample answers (its column sum). *)

type result = {
  chosen : bool array;
  lp_objective : float;
  lp_stats : Lp.Revised.stats option;
  basis : Lp.Model.basis option;
      (** warm-start token for re-planning the same-shaped LP *)
}

val plan_by_colsum :
  ?warm_start:Lp.Model.basis ->
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  colsum:int array ->
  budget:float ->
  result
(** Solve the relaxation, round at 1/2, then spend leftover budget on the
    most fractional remaining nodes.  [warm_start] is best-effort: tokens
    from a differently shaped model are ignored.  @raise Invalid_argument
    on a negative budget; @raise Failure if the LP solver fails (cannot
    happen for these always-feasible programs unless iteration limits are
    hit). *)

(** Shared core of the "ship chosen nodes to the root" LP planners
    ({!Lp_no_lf} for top-k, {!Subset_planner} for generalized subset
    queries).  The formulation only depends on how often each node
    contributes to sample answers (its column sum). *)

type result = {
  chosen : bool array;
  lp_objective : float;
  lp_stats : Lp.Revised.stats option;
  basis : Lp.Model.basis option;
      (** warm-start token for re-planning the same-shaped LP *)
  provenance : Robust_plan.provenance;
      (** which stage of the fallback chain produced [chosen] *)
}

val plan_by_colsum :
  ?warm_start:Lp.Model.basis ->
  ?max_lp_iterations:int ->
  ?lp_deadline:float ->
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  colsum:int array ->
  budget:float ->
  result
(** Solve the relaxation through the {!Robust_plan} certified chain, round
    at 1/2, then spend leftover budget on the most fractional remaining
    nodes.  When no LP stage yields a certified solution (e.g. a crippled
    [max_lp_iterations] or exhausted [lp_deadline]) the node selection
    comes from {!Greedy.chosen_by_colsum} instead and [provenance] says
    so — the function never raises on solver failure.  [warm_start] is
    best-effort: tokens from a differently shaped model are ignored.
    @raise Invalid_argument on a negative budget. *)

(** PROSPECTOR-PROOF: optimizing bandwidths of proof-carrying plans
    (Section 4.3).

    Variables: a bandwidth [b_e >= 1] per edge (a proof plan must visit
    every node) and a relaxed indicator [p_{u,a,j}] for sample [j], node
    [u] and ancestor [a] — "the value of [u] is proven by [a] when the plan
    runs on sample [j]".  The objective maximizes the expected number of
    top-k values proven by the root.  Constraints follow the paper:
    - bandwidth (12): values proven by a node are among the values it
      forwards, so [sum_u p_{u,i,j} <= b_i] per edge and sample;
    - chain (13): proven at [a] requires proven at every node between the
      owner and [a];
    - proof (14): for a value to be proven at [a], every child subtree of
      [a] not containing it must prove some smaller value (the constraint
      is skipped when that subtree holds no smaller value in the sample —
      the paper's exception);
    - budget (11) over all edges.

    Bandwidths are capped at [min (subtree size) (k + 1)]: a subtree never
    usefully forwards more than its top-k members plus one witness. *)

type result = {
  plan : Plan.t;  (** rounded bandwidths, at least 1 everywhere *)
  lp_objective : float;  (** expected proven top-k count (relaxation) *)
  lp_stats : Lp.Revised.stats option;
  basis : Lp.Model.basis option;
      (** warm-start token for re-planning the same-shaped LP *)
  provenance : Robust_plan.provenance;
      (** which stage of the certified fallback chain produced the plan *)
}

exception Budget_too_small of float
(** Raised when the budget cannot pay for the mandatory
    bandwidth-1-everywhere plan; carries that minimum cost. *)

val plan :
  ?warm_start:Lp.Model.basis ->
  ?max_lp_iterations:int ->
  ?lp_deadline:float ->
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Sampling.Sample_set.t ->
  budget:float ->
  k:int ->
  result
(** [warm_start] is best-effort: incompatible tokens are ignored.
    [max_lp_iterations]/[lp_deadline] bound the LP stages; when both fail
    certification the result is the minimum proof plan (bandwidth 1 on
    every edge, always executable and affordable past the
    {!Budget_too_small} gate) with provenance
    {!Robust_plan.Fell_back_greedy}. *)

(** Certified (ε, δ) error guarantees for approximate top-k plans.

    The paper's planners are best-effort: a plan's expected accuracy is
    whatever the sample window suggests, with no stated confidence.  This
    module turns the sample window into a {e certified} statistical claim
    about a fixed plan [P] evaluated over a fresh sample set of [m] i.i.d.
    epochs drawn from the (unknown) value field:

    {v with probability >= 1 - delta over the draw of the m samples,
       E[top-k accuracy of P]  >=  certified_lower v}

    equivalently "the expected missed top-k mass is at most
    [1 - certified_lower]".  The slack [eps] between the window's
    empirical accuracy and [certified_lower] is the minimum over three
    one-sided tail-bound families, each given an equal [delta / 3] share
    of the failure budget (so the minimum is valid by a union bound):

    - {b Hoeffding}: per-sample accuracies are i.i.d. in [0, 1], so
      [sqrt (ln (3/delta) / 2m)] always applies.  (The DKW inequality
      gives the same [1/sqrt m] rate with a worse constant, so it is
      dominated and not computed.)
    - {b Empirical Bernstein} (Maurer–Pontil): variance-adaptive; wins
      for large windows whose per-sample accuracy is nearly constant.
    - {b Per-node union}: expected accuracy decomposes over nodes as
      [(1/k) sum_i q_i] with [q_i] the probability that node [i] is both
      in the sample's true top k and returned by the plan.  Only the
      plan's participants can contribute, so a per-node empirical
      Bernstein bound at level [delta / (3 |participants|)] composed by a
      union bound over that candidate set certifies the sum.  Wins for
      concentrated plans (few participants, each hit almost always).

    The PR-3 LP certificate feeds the bound instead of being discarded:
    when the plan came from a certified LP solve, the certified duality
    gap is converted to accuracy units and added to [eps] ([lp_eps]), so
    the guarantee covers solver numerics end-to-end — and because
    certification bounds the gap near machine precision, the certificate
    {e tightens} the claim relative to the conservative alternative of
    not trusting the solve at all.

    Soundness requires the certification sample set to be independent of
    the plan (a plan optimized on the same window overfits it);
    {!Robust_plan.plan_with_guarantee} enforces this with a plan/certify
    window split.  [compute] itself is agnostic and documents the caller's
    obligation. *)

type family = Hoeffding | Empirical_bernstein | Per_node_union

type t = {
  eps : float;  (** total certified slack, [stat_eps + lp_eps] *)
  delta : float;  (** failure probability of the whole claim *)
  samples : int;  (** [m], size of the certification window *)
  k : int;
  empirical_accuracy : float;  (** mean per-sample accuracy on the window *)
  certified_lower : float;
      (** [max 0 (empirical_accuracy - eps)]: the certified lower bound on
          the plan's expected accuracy *)
  stat_eps : float;  (** statistical component (winning family) *)
  lp_eps : float;  (** certified LP duality-gap slack, in accuracy units *)
  family : family;  (** which bound family achieved [stat_eps] *)
  candidates : int;
      (** size of the union-bound candidate set (plan participants) *)
  lp_certified : bool;
      (** whether a certified LP solution backs the plan ([lp_eps] is only
          meaningful when true) *)
}

(** {1 Tail-bound primitives}

    Exposed so the test suite can check the metamorphic properties
    (monotone in [m], [delta] and [k]) directly.  All raise
    [Invalid_argument] on [m < 1], [delta] outside (0, 1), negative
    variance, or non-positive [candidates]/[k]. *)

val hoeffding_slack : m:int -> delta:float -> float
(** One-sided Hoeffding slack for a mean of [m] i.i.d. [0, 1] variables:
    [sqrt (ln (1/delta) / (2 m))]. *)

val bernstein_slack : m:int -> variance:float -> delta:float -> float
(** One-sided empirical-Bernstein slack (Maurer–Pontil) for [m] i.i.d.
    [0, 1] variables with sample variance [variance]:
    [sqrt (2 v ln (2/delta) / m) + 7 ln (2/delta) / (3 (m - 1))].
    [infinity] when [m < 2] (the sample variance needs two points). *)

val union_slack : m:int -> candidates:int -> k:int -> delta:float -> float
(** Worst-case per-node union-bound slack: [candidates] per-node Hoeffding
    bounds at level [delta / candidates], aggregated through the [1/k]
    accuracy normalization: [(candidates / k) * hoeffding (delta /
    candidates)].  The slack actually achieved by {!compute} is at most
    this (it caps each node's term by its empirical hit rate and uses
    variance-adaptive per-node bounds). *)

(** {1 Computing and checking guarantees} *)

val compute :
  ?delta:float ->
  ?report:Lp.Certify.report ->
  ?objective:float ->
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Plan.t ->
  k:int ->
  Sampling.Sample_set.t ->
  t
(** Certify the plan against the given sample window.  [delta] defaults to
    1e-6.  Pass the {!Lp.Certify.report} that admitted the plan's LP
    solution together with the LP [objective] to fold the certified
    duality gap into the bound ([lp_eps]); without them [lp_eps] is 0 and
    [lp_certified] false.  The bound is exact only when the window is
    independent of the plan (see the module preamble).
    @raise Invalid_argument if [delta] is outside (0, 1) or [k < 1]. *)

val meets : t -> eps:float -> delta:float -> bool
(** Does this guarantee certify the target "expected accuracy at least
    [1 - eps], with failure probability at most [delta]"? *)

val holds_against : t -> observed_accuracy:float -> bool
(** [observed_accuracy >= certified_lower] — what the bound-violation
    harness checks against ground truth. *)

val validate : t -> (unit, string) result
(** Machine-check the record's internal consistency: field ranges, the
    [eps = stat_eps + lp_eps] and [certified_lower] identities, and that
    [stat_eps] does not beat the Hoeffding member of its own minimum
    (no guarantee can claim less statistical slack than its tightest
    admissible family).  [Error reason] names the first failed check. *)

val equal : t -> t -> bool

val compare_family : family -> family -> int

val family_to_string : family -> string

val family_of_string : string -> family option

val to_json : t -> Obs.Json.t
(** Schema ["guarantee/1"]: a flat object holding every field, suitable
    for provenance records and CI artifacts. *)

val of_json : Obs.Json.t -> t option

val pp : Format.formatter -> t -> unit

(** The query algorithms as actual message protocols on the {!Simnet}
    discrete-event engine.

    {!Simnet_exec} covers single-pass approximate plans; this module adds
    the pull-based NAIVE-1 pipeline and proof-carrying collection, each
    driven purely by request/response messages between mote processes.
    The test suite checks they return exactly what the analytic executors
    ({!Naive.naive_one}, {!Proof_exec.run}) compute, at exactly the same
    radio energy — the strongest evidence that the analytic cost accounting
    used by the planners matches a message-level execution.

    All three protocols also run over the engine's fault-injection regime
    ([?fault] with an optional retransmission [?policy]): recoverable frame
    loss leaves the answers bit-identical (the ACK/retransmit sublayer
    recovers every frame) at a higher measured energy, while links declared
    dead degrade the protocols gracefully — the affected subtree is
    reported in [dark] and execution still terminates. *)

type result = {
  returned : (int * float) list;
  total_mj : float;
  per_node_mj : float array;
  latency_s : float;
  unicasts : int;  (** retransmissions included *)
  retransmissions : int;  (** frames re-sent by the reliability sublayer *)
  dark : int list;
      (** nodes cut off by dead links (sorted, deduplicated); empty when
          every loss was recovered *)
}

val naive_one :
  Sensor.Topology.t ->
  Sensor.Mica2.t ->
  ?failure:Sensor.Failure.t * Rng.t ->
  ?fault:Simnet.Fault.t * Rng.t ->
  ?policy:Simnet.Reliable.policy ->
  k:int ->
  readings:float array ->
  unit ->
  result
(** The pipelined exact algorithm: parents pull one value at a time from
    their children through per-node heaps; every pull is a real
    request/response message pair. *)

type proof_result = {
  base : result;
  proven_count : int;  (** leading answer values proven at the root *)
}

val proof_collect :
  Sensor.Topology.t ->
  Sensor.Mica2.t ->
  ?failure:Sensor.Failure.t * Rng.t ->
  ?fault:Simnet.Fault.t * Rng.t ->
  ?policy:Simnet.Reliable.policy ->
  Plan.t ->
  k:int ->
  readings:float array ->
  unit ->
  proof_result
(** Proof-carrying collection: each upward message carries the values, the
    sender's proven-prefix length and its sent-everything flag; provenness
    is recomputed hop by hop exactly as in {!Proof_exec}.
    @raise Invalid_argument if some edge has zero bandwidth. *)

type exact_result = {
  answer : (int * float) list;  (** the exact top k *)
  proven_after_phase1 : int;
  total_mj : float;  (** both phases, triggers and requests included *)
  latency_s : float;
  unicasts : int;  (** retransmissions included *)
  retransmissions : int;
  dark : int list;
      (** with dead links the "exact" answer is only exact over the
          reachable nodes; [dark] lists the ones it could not see *)
}

val exact :
  Sensor.Topology.t ->
  Sensor.Mica2.t ->
  ?failure:Sensor.Failure.t * Rng.t ->
  ?fault:Simnet.Fault.t * Rng.t ->
  ?policy:Simnet.Reliable.policy ->
  Plan.t ->
  k:int ->
  readings:float array ->
  unit ->
  exact_result
(** The full two-phase exact algorithm as messages: proof-carrying
    collection, then — when the root proves fewer than [k] values — a
    mop-up wave of range-request broadcasts answered bottom-up, nodes
    serving what they can from the values they retained in phase 1.  The
    answer always equals the true top k (asserted against {!Exact.run} in
    the test suite). *)

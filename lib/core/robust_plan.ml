let src = Logs.Src.create "prospector.robust" ~doc:"Certified LP fallback chain"

module Log = (val Logs.src_log src : Logs.LOG)

type provenance = Certified_revised | Certified_dense | Fell_back_greedy

(* Provenance tally across every solve in a run: how often the fast path
   sufficed, how often the dense reference had to rescue it, and how often
   the whole chain failed (the planner's greedy fallback is counted at its
   use site in [Lp_lf]). *)
let m_certified_revised = Obs.Metrics.counter "planner.certified_revised"
let m_certified_dense = Obs.Metrics.counter "planner.certified_dense"
let m_chain_failures = Obs.Metrics.counter "planner.chain_failures"

type lp_result = {
  solution : Lp.Model.solution;
  report : Lp.Certify.report;
  provenance : provenance;
}

type failure =
  | Proved_infeasible of Lp.Certify.report
  | Proved_unbounded of Lp.Certify.report
  | No_certified_solution of string list

let solve ?warm_start ?max_iterations ?deadline model =
  let sol, report =
    Lp.Model.solve_certified ?warm_start ?max_iterations ?deadline model
  in
  if report.Lp.Certify.certified then
    match sol.Lp.Model.status with
    | Lp.Model.Optimal ->
        Obs.Metrics.incr m_certified_revised;
        Ok { solution = sol; report; provenance = Certified_revised }
    | Lp.Model.Infeasible -> Error (Proved_infeasible report)
    | Lp.Model.Unbounded -> Error (Proved_unbounded report)
    | Lp.Model.Iteration_limit ->
        (* [solve_certified] rejects limit statuses outright. *)
        assert false
  else begin
    let revised_reasons = report.Lp.Certify.reasons in
    Log.warn (fun m ->
        m "revised solve not certified (%s); retrying with the dense reference"
          (String.concat "; " revised_reasons));
    let dsol, dreport =
      Lp.Model.solve_dense_certified ?max_pivots:max_iterations model
    in
    if dreport.Lp.Certify.certified then begin
      Obs.Metrics.incr m_certified_dense;
      Ok { solution = dsol; report = dreport; provenance = Certified_dense }
    end
    else begin
      Log.warn (fun m ->
          m "dense solve not certified either (%s); planner must fall back"
            (String.concat "; " dreport.Lp.Certify.reasons));
      Obs.Metrics.incr m_chain_failures;
      Error
        (No_certified_solution
           (revised_reasons @ dreport.Lp.Certify.reasons))
    end
  end

let pp_provenance ppf = function
  | Certified_revised -> Format.pp_print_string ppf "certified-revised"
  | Certified_dense -> Format.pp_print_string ppf "certified-dense"
  | Fell_back_greedy -> Format.pp_print_string ppf "fell-back-greedy"

let pp_failure ppf = function
  | Proved_infeasible _ -> Format.pp_print_string ppf "proved-infeasible"
  | Proved_unbounded _ -> Format.pp_print_string ppf "proved-unbounded"
  | No_certified_solution reasons ->
      Format.fprintf ppf "no-certified-solution (%s)"
        (String.concat "; " reasons)

let src = Logs.Src.create "prospector.robust" ~doc:"Certified LP fallback chain"

module Log = (val Logs.src_log src : Logs.LOG)

type provenance = Certified_revised | Certified_dense | Fell_back_greedy

(* Provenance tally across every solve in a run: how often the fast path
   sufficed, how often the dense reference had to rescue it, and how often
   the whole chain failed (the planner's greedy fallback is counted at its
   use site in [Lp_lf]). *)
let m_certified_revised = Obs.Metrics.counter "planner.certified_revised"
let m_certified_dense = Obs.Metrics.counter "planner.certified_dense"
let m_chain_failures = Obs.Metrics.counter "planner.chain_failures"
let m_warm_incompatible = Obs.Metrics.counter "planner.warm_incompatible"

type lp_result = {
  solution : Lp.Model.solution;
  report : Lp.Certify.report;
  provenance : provenance;
}

type failure =
  | Proved_infeasible of Lp.Certify.report
  | Proved_unbounded of Lp.Certify.report
  | No_certified_solution of string list

let solve ?warm_start ?max_iterations ?deadline model =
  (* Every planner (Replan, Repair, the serving layer's warm-basis pool)
     funnels its warm-start tokens through here, so this one call to the
     LP layer's shared predicate is the basis-compatibility check for all
     of them: a stale token from a differently shaped instance is dropped
     — and counted — instead of relying on each caller to re-derive the
     shape rule. *)
  let warm_start =
    match warm_start with
    | Some b when not (Lp.Model.basis_compatible model b) ->
        Obs.Metrics.incr m_warm_incompatible;
        None
    | w -> w
  in
  let sol, report =
    Lp.Model.solve_certified ?warm_start ?max_iterations ?deadline model
  in
  if report.Lp.Certify.certified then
    match sol.Lp.Model.status with
    | Lp.Model.Optimal ->
        Obs.Metrics.incr m_certified_revised;
        Ok { solution = sol; report; provenance = Certified_revised }
    | Lp.Model.Infeasible -> Error (Proved_infeasible report)
    | Lp.Model.Unbounded -> Error (Proved_unbounded report)
    | Lp.Model.Iteration_limit ->
        (* [solve_certified] rejects limit statuses outright. *)
        assert false
  else begin
    let revised_reasons = report.Lp.Certify.reasons in
    Log.warn (fun m ->
        m "revised solve not certified (%s); retrying with the dense reference"
          (String.concat "; " revised_reasons));
    let dsol, dreport =
      Lp.Model.solve_dense_certified ?max_pivots:max_iterations model
    in
    if dreport.Lp.Certify.certified then begin
      Obs.Metrics.incr m_certified_dense;
      Ok { solution = dsol; report = dreport; provenance = Certified_dense }
    end
    else begin
      Log.warn (fun m ->
          m "dense solve not certified either (%s); planner must fall back"
            (String.concat "; " dreport.Lp.Certify.reasons));
      Obs.Metrics.incr m_chain_failures;
      Error
        (No_certified_solution
           (revised_reasons @ dreport.Lp.Certify.reasons))
    end
  end

(* ---- planning to a certified (eps, delta) target ---- *)

type 'r attempt = {
  result : 'r;
  plan : Plan.t;
  guarantee : Guarantee.t;
  budget : float;
}

type 'r guaranteed = { chosen : 'r attempt; attained : bool; escalations : int }

let m_target_met = Obs.Metrics.counter "guarantee.target_met"
let m_target_unattainable = Obs.Metrics.counter "guarantee.target_unattainable"
let h_escalations = Obs.Metrics.histogram "guarantee.escalations"

let plan_with_guarantee ?(max_escalations = 6) ?(growth = 1.5) ~eps ~delta
    ~planner ~describe topo cost ~k samples ~budget =
  if eps <= 0. then invalid_arg "Robust_plan.plan_with_guarantee: eps <= 0";
  if delta <= 0. || delta >= 1. then
    invalid_arg "Robust_plan.plan_with_guarantee: delta must be in (0, 1)";
  if growth < 1. then
    invalid_arg "Robust_plan.plan_with_guarantee: growth must be >= 1";
  if max_escalations < 0 then
    invalid_arg "Robust_plan.plan_with_guarantee: negative max_escalations";
  let m = Sampling.Sample_set.n_samples samples in
  (* Plan on the first half, certify on the disjoint second half.  Tiny
     windows cannot be split; the bound then reuses the planning samples
     and carries the (documented) selection bias. *)
  let plan_window, cert_window =
    if m >= 4 then
      ( Sampling.Sample_set.slice samples ~offset:0 ~count:(m / 2),
        Sampling.Sample_set.slice samples ~offset:(m / 2) ~count:(m - (m / 2))
      )
    else (samples, samples)
  in
  (* Each rung is one data-dependent look at the certification window;
     certifying every rung at delta / rungs keeps the chosen plan's bound
     valid at delta by a union bound over the ladder. *)
  let rungs = max_escalations + 1 in
  let delta_rung = delta /. float_of_int rungs in
  let certify_rung ~rung_budget =
    let result = planner ~samples:plan_window ~budget:rung_budget in
    let plan, report, objective = describe result in
    let guarantee =
      Guarantee.compute ~delta:delta_rung ?report ?objective topo cost plan ~k
        cert_window
    in
    { result; plan; guarantee; budget = rung_budget }
  in
  let rec ladder e best =
    if e >= rungs then begin
      Obs.Metrics.incr m_target_unattainable;
      Obs.Metrics.observe h_escalations (float_of_int max_escalations);
      Log.warn (fun msg ->
          msg
            "guarantee target (eps = %g, delta = %g) unattainable within %d \
             escalations; best certified lower bound %.4f"
            eps delta max_escalations best.guarantee.Guarantee.certified_lower);
      { chosen = best; attained = false; escalations = max_escalations }
    end
    else begin
      let a = certify_rung ~rung_budget:(budget *. (growth ** float_of_int e)) in
      if Guarantee.meets a.guarantee ~eps ~delta then begin
        Obs.Metrics.incr m_target_met;
        Obs.Metrics.observe h_escalations (float_of_int e);
        { chosen = a; attained = true; escalations = e }
      end
      else begin
        let best =
          (* Strict improvement only: ties keep the earlier (cheaper)
             rung, making the reported fallback deterministic. *)
          if
            a.guarantee.Guarantee.certified_lower
            > best.guarantee.Guarantee.certified_lower
          then a
          else best
        in
        ladder (e + 1) best
      end
    end
  in
  let first = certify_rung ~rung_budget:budget in
  if Guarantee.meets first.guarantee ~eps ~delta then begin
    Obs.Metrics.incr m_target_met;
    Obs.Metrics.observe h_escalations 0.;
    { chosen = first; attained = true; escalations = 0 }
  end
  else ladder 1 first

let provenance_equal a b =
  match (a, b) with
  | Certified_revised, Certified_revised
  | Certified_dense, Certified_dense
  | Fell_back_greedy, Fell_back_greedy ->
      true
  | (Certified_revised | Certified_dense | Fell_back_greedy), _ -> false

let pp_provenance ppf = function
  | Certified_revised -> Format.pp_print_string ppf "certified-revised"
  | Certified_dense -> Format.pp_print_string ppf "certified-dense"
  | Fell_back_greedy -> Format.pp_print_string ppf "fell-back-greedy"

let pp_failure ppf = function
  | Proved_infeasible _ -> Format.pp_print_string ppf "proved-infeasible"
  | Proved_unbounded _ -> Format.pp_print_string ppf "proved-unbounded"
  | No_certified_solution reasons ->
      Format.fprintf ppf "no-certified-solution (%s)"
        (String.concat "; " reasons)

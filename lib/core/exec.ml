type outcome = {
  returned : (int * float) list;
  collection_mj : float;
  messages : int;
  values_sent : int;
}

let value_order (i, x) (j, y) =
  match Float.compare y x with 0 -> Int.compare i j | c -> c

let take_prefix n xs =
  let rec go n xs acc =
    match (n, xs) with
    | 0, _ | _, [] -> List.rev acc
    | n, x :: rest -> go (n - 1) rest (x :: acc)
  in
  go n xs []

let take = take_prefix

let collect topo cost plan ~k ~readings =
  if Array.length readings <> topo.Sensor.Topology.n then
    invalid_arg "Exec.collect: readings length mismatch";
  if k < 1 then invalid_arg "Exec.collect: k must be positive";
  let root = topo.Sensor.Topology.root in
  (* outbox.(i): the sorted list node i sends to its parent. *)
  let outbox = Array.make topo.Sensor.Topology.n [] in
  let energy = ref 0. in
  let messages = ref 0 in
  let values_sent = ref 0 in
  Array.iter
    (fun u ->
      if u <> root && Plan.bandwidth plan u > 0 then begin
        let received =
          Array.fold_left
            (fun acc c -> List.rev_append outbox.(c) acc)
            [] topo.Sensor.Topology.children.(u)
        in
        let pool = List.sort value_order ((u, readings.(u)) :: received) in
        let sent = take (Plan.bandwidth plan u) pool in
        outbox.(u) <- sent;
        let count = List.length sent in
        energy := !energy +. Sensor.Cost.message_mj cost ~node:u ~values:count;
        incr messages;
        values_sent := !values_sent + count
      end)
    (Sensor.Topology.post_order topo);
  let at_root =
    Array.fold_left
      (fun acc c -> List.rev_append outbox.(c) acc)
      [ (root, readings.(root)) ]
      topo.Sensor.Topology.children.(root)
  in
  let returned = take k (List.sort value_order at_root) in
  {
    returned;
    collection_mj = !energy;
    messages = !messages;
    values_sent = !values_sent;
  }

let true_top_k ~k readings =
  let all = Array.to_list (Array.mapi (fun i v -> (i, v)) readings) in
  take k (List.sort value_order all)

let accuracy ~k ~readings answer =
  let truth = true_top_k ~k readings in
  let answered = Hashtbl.create 16 in
  List.iter (fun (i, _) -> Hashtbl.replace answered i ()) answer;
  let hits =
    List.fold_left
      (fun acc (i, _) -> if Hashtbl.mem answered i then acc + 1 else acc)
      0 truth
  in
  float_of_int hits /. float_of_int (List.length truth)

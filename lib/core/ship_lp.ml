type result = {
  chosen : bool array;
  lp_objective : float;
  lp_stats : Lp.Revised.stats option;
  basis : Lp.Model.basis option;
  provenance : Robust_plan.provenance;
}

let plan_by_colsum ?warm_start ?max_lp_iterations ?lp_deadline topo cost
    ~colsum ~budget =
  if budget < 0. then invalid_arg "Ship_lp.plan_by_colsum: negative budget";
  let n = topo.Sensor.Topology.n in
  if Array.length colsum <> n then
    invalid_arg "Ship_lp.plan_by_colsum: colsum length";
  let root = topo.Sensor.Topology.root in
  let parent = topo.Sensor.Topology.parent in
  let value_to_root = Sensor.Cost.value_to_root cost topo in
  let model = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let x = Array.make n None and z = Array.make n None in
  for i = 0 to n - 1 do
    if i <> root then begin
      x.(i) <-
        Some
          (Lp.Model.add_var model ~upper:1.
             ~obj:(float_of_int colsum.(i))
             (Printf.sprintf "x%d" i));
      z.(i) <- Some (Lp.Model.add_var model ~upper:1. (Printf.sprintf "z%d" i))
    end
  done;
  let getx i =
    match x.(i) with
    | Some v -> v
    | None ->
        failwith (Printf.sprintf "Ship_lp.plan: no x variable for node %d" i)
  and getz i =
    match z.(i) with
    | Some v -> v
    | None ->
        failwith (Printf.sprintf "Ship_lp.plan: no z variable for node %d" i)
  in
  (* x_i <= z_i and edge-usage monotonicity z_i <= z_parent(i). *)
  for i = 0 to n - 1 do
    if i <> root then begin
      Lp.Model.add_le model [ (1., getx i); (-1., getz i) ] 0.;
      let p = parent.(i) in
      if p <> root then
        Lp.Model.add_le model [ (1., getz i); (-1., getz p) ] 0.
    end
  done;
  (* Budget: per-message on used edges, per-value along each chosen path. *)
  let budget_terms = ref [] in
  for i = 0 to n - 1 do
    if i <> root then begin
      budget_terms :=
        (cost.Sensor.Cost.per_message.(i), getz i) :: !budget_terms;
      budget_terms := (value_to_root.(i), getx i) :: !budget_terms
    end
  done;
  Lp.Model.add_le model !budget_terms budget;
  match
    Robust_plan.solve ?warm_start ?max_iterations:max_lp_iterations
      ?deadline:lp_deadline model
  with
  | Error _ ->
      (* No certified LP solution (or a certified infeasible/unbounded
         verdict, which these always-feasible programs cannot honestly
         produce): plan combinatorially instead of crashing. *)
      let chosen = Greedy.chosen_by_colsum topo cost ~colsum ~budget in
      let lp_objective = ref 0. in
      for i = 0 to n - 1 do
        if chosen.(i) && i <> root then
          lp_objective := !lp_objective +. float_of_int colsum.(i)
      done;
      {
        chosen;
        lp_objective = !lp_objective;
        lp_stats = None;
        basis = None;
        provenance = Robust_plan.Fell_back_greedy;
      }
  | Ok r ->
  let sol = r.Robust_plan.solution in
  let chosen = Array.make n false in
  chosen.(root) <- true;
  for i = 0 to n - 1 do
    if i <> root && Lp.Model.value sol (getx i) >= 0.5 then chosen.(i) <- true
  done;
  (* Threshold rounding can leave an empty (or very light) plan when the
     relaxation spreads mass below 1/2 — common on deep trees where many
     nodes share path costs.  Spend the remaining budget on the
     highest-valued fractional nodes, most promising first. *)
  let carried = Array.make n 0 in
  let current_cost = ref 0. in
  let marginal node =
    (* Per-value cost of the whole path at once, plus a per-message cost on
       every edge not yet carrying traffic. *)
    let acc = ref value_to_root.(node) in
    let u = ref node in
    while !u <> root do
      if carried.(!u) = 0 then
        acc := !acc +. cost.Sensor.Cost.per_message.(!u);
      u := parent.(!u)
    done;
    !acc
  in
  let commit node =
    current_cost := !current_cost +. marginal node;
    let u = ref node in
    while !u <> root do
      carried.(!u) <- carried.(!u) + 1;
      u := parent.(!u)
    done
  in
  for i = 0 to n - 1 do
    if chosen.(i) && i <> root then commit i
  done;
  let fractional_candidates =
    List.init n (fun i -> i)
    |> List.filter (fun i ->
           i <> root
           && (not chosen.(i))
           && Lp.Model.value sol (getx i) > 0.05
           && colsum.(i) > 0)
    |> List.sort (fun a b ->
           Float.compare
             (Lp.Model.value sol (getx b))
             (Lp.Model.value sol (getx a)))
  in
  List.iter
    (fun i ->
      if !current_cost +. marginal i <= budget +. 1e-9 then begin
        chosen.(i) <- true;
        commit i
      end)
    fractional_candidates;
  {
    chosen;
    lp_objective = sol.Lp.Model.objective;
    lp_stats = sol.Lp.Model.stats;
    basis = sol.Lp.Model.basis;
    provenance = r.Robust_plan.provenance;
  }

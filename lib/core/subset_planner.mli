(** Generalized subset-query planning (the paper's Section 3 remark).

    For query classes whose answer is an arbitrary subset of the readings
    (selection, quantile, extremes, ...), the "ship chosen nodes to the
    root" formulation of LP-LF carries over verbatim: maximize the number
    of sample answer entries covered by the chosen nodes, subject to the
    energy budget.  Local filtering does not generalize — forwarding a
    subtree's top values is only meaningful when the answer is the top — so
    this planner is topology-aware but filter-free, and execution ships the
    chosen readings unmodified ({!Subset_exec}). *)

type result = {
  plan : Plan.t;
  chosen : bool array;
  lp_objective : float;
  lp_stats : Lp.Revised.stats option;
  provenance : Robust_plan.provenance;
      (** which stage of the certified fallback chain produced the plan *)
}

val plan :
  ?max_lp_iterations:int ->
  ?lp_deadline:float ->
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Sampling.Answers.t ->
  budget:float ->
  result
(** The root's own reading is always available and is never planned for.
    [max_lp_iterations]/[lp_deadline] bound the LP stages (see
    {!Robust_plan}); the call never raises on solver failure. *)

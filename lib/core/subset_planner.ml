type result = {
  plan : Plan.t;
  chosen : bool array;
  lp_objective : float;
  lp_stats : Lp.Revised.stats option;
  provenance : Robust_plan.provenance;
}

let plan ?max_lp_iterations ?lp_deadline topo cost answers ~budget =
  if budget < 0. then invalid_arg "Subset_planner.plan: negative budget";
  if answers.Sampling.Answers.n <> topo.Sensor.Topology.n then
    invalid_arg "Subset_planner.plan: network size mismatch";
  let r =
    Ship_lp.plan_by_colsum ?max_lp_iterations ?lp_deadline topo cost
      ~colsum:answers.Sampling.Answers.colsum ~budget
  in
  {
    plan = Plan.of_chosen topo r.Ship_lp.chosen;
    chosen = r.Ship_lp.chosen;
    lp_objective = r.Ship_lp.lp_objective;
    lp_stats = r.Ship_lp.lp_stats;
    provenance = r.Ship_lp.provenance;
  }

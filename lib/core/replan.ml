type t = {
  min_gain : float;
  amortization_runs : int;
  mutable plan : Plan.t;
  mutable replans : int;
  mutable warm : Lp.Model.basis option;
}

type decision =
  | Kept
  | Disseminated of { plan : Plan.t; guarantee : Guarantee.t option }

let m_considered = Obs.Metrics.counter "replan.considered"
let m_guarantee_refused = Obs.Metrics.counter "replan.guarantee_refused"
let m_warm_hits = Obs.Metrics.counter "replan.warm_hits"
let m_warm_misses = Obs.Metrics.counter "replan.warm_misses"
let m_disseminated = Obs.Metrics.counter "replan.disseminated"
let m_kept = Obs.Metrics.counter "replan.kept"

let create ?(min_gain = 0.05) ?(amortization_runs = 50) ~initial () =
  if min_gain < 0. then invalid_arg "Replan.create: negative min_gain";
  if amortization_runs < 1 then
    invalid_arg "Replan.create: amortization_runs must be positive";
  { min_gain; amortization_runs; plan = initial; replans = 0; warm = None }

let current t = t.plan

let replans t = t.replans

let expected_accuracy topo cost plan ~k samples =
  let epochs = samples.Sampling.Sample_set.values in
  let total =
    Array.fold_left
      (fun acc readings ->
        let o = Exec.collect topo cost plan ~k ~readings in
        acc +. Exec.accuracy ~k ~readings o.Exec.returned)
      0. epochs
  in
  total /. float_of_int (Array.length epochs)

let force t topo cost plan ~k samples =
  (* An unconditional install is still a dissemination: it must carry the
     same default-confidence bound [consider] attaches, or the periodic
     baselines would ship bound-free plans.  No LP ran here, so there is
     no certification report to fold in (lp_eps = 0) and no objective. *)
  let g = Guarantee.compute topo cost plan ~k samples in
  t.plan <- plan;
  t.replans <- t.replans + 1;
  Obs.Metrics.incr m_disseminated;
  g

let consider ?max_lp_iterations ?lp_deadline ?guarantee t topo cost mica
    samples ~k ~budget =
  (* Successive epochs re-solve nearly identical LPs: reuse the previous
     epoch's final basis.  When the sample window changes the LP's shape,
     Robust_plan.solve drops the token via the LP layer's shared
     Lp.Model.basis_compatible predicate and the solve starts cold. *)
  Obs.Metrics.incr m_considered;
  Obs.Metrics.incr (if t.warm <> None then m_warm_hits else m_warm_misses);
  let r =
    Lp_lf.plan ?warm_start:t.warm ?max_lp_iterations ?lp_deadline ?guarantee
      topo cost samples ~budget ~k
  in
  (* A fallback result carries no basis; keep the previous token so the
     next epoch can still warm-start from the last certified solve. *)
  (match r.Lp_lf.basis with Some _ -> t.warm <- r.Lp_lf.basis | None -> ());
  let target_met =
    match (guarantee, r.Lp_lf.guarantee) with
    | None, _ -> true
    | Some (eps, delta), Some g -> Guarantee.meets g ~eps ~delta
    | Some _, None -> false
  in
  if r.Lp_lf.provenance = Robust_plan.Fell_back_greedy then begin
    (* Never disseminate an uncertified candidate: the greedy fallback is a
       safety net for answering queries, not a plan worth an install. *)
    Obs.Metrics.incr m_kept;
    Kept
  end
  else if not target_met then begin
    (* The (eps, delta) target could not be certified even after budget
       escalation: an unbacked promise is never disseminated. *)
    Obs.Metrics.incr m_guarantee_refused;
    Obs.Metrics.incr m_kept;
    Kept
  end
  else begin
  let candidate = r.Lp_lf.plan in
  let incumbent_score = expected_accuracy topo cost t.plan ~k samples in
  let candidate_score = expected_accuracy topo cost candidate ~k samples in
  let gain = candidate_score -. incumbent_score in
  (* The install cost is amortized over the plan's expected lifetime; it
     raises the gain a candidate must show, but only slightly (installs
     are one unicast per participating node).  Both plans already live
     within the same per-run budget, so running cost needs no gate. *)
  let install = Plan.install_mj topo mica candidate in
  let install_penalty =
    install /. (float_of_int t.amortization_runs *. Float.max budget 1e-9)
  in
  if gain >= t.min_gain +. install_penalty then begin
    t.plan <- candidate;
    t.replans <- t.replans + 1;
    Obs.Metrics.incr m_disseminated;
    (* Every disseminated plan ships with its certified bound: the
       escalation ladder's bound when a target was requested, otherwise a
       default-confidence bound on the current window. *)
    let g =
      match r.Lp_lf.guarantee with
      | Some _ as g -> g
      | None ->
          Some
            (Guarantee.compute ?report:r.Lp_lf.certify
               ~objective:r.Lp_lf.lp_objective topo cost candidate ~k samples)
    in
    Disseminated { plan = candidate; guarantee = g }
  end
  else begin
    Obs.Metrics.incr m_kept;
    Kept
  end
  end

type family = Hoeffding | Empirical_bernstein | Per_node_union

type t = {
  eps : float;
  delta : float;
  samples : int;
  k : int;
  empirical_accuracy : float;
  certified_lower : float;
  stat_eps : float;
  lp_eps : float;
  family : family;
  candidates : int;
  lp_certified : bool;
}

(* Guarantee-tightness telemetry: how many bounds were computed, how much
   slack they carry and how high the certified floor lands.  Gated like
   every other registered instrument. *)
let m_computed = Obs.Metrics.counter "guarantee.computed"
let h_eps = Obs.Metrics.histogram "guarantee.eps"
let h_lower = Obs.Metrics.histogram "guarantee.certified_lower"

let family_rank = function
  | Hoeffding -> 0
  | Empirical_bernstein -> 1
  | Per_node_union -> 2

let compare_family a b = Int.compare (family_rank a) (family_rank b)

let family_to_string = function
  | Hoeffding -> "hoeffding"
  | Empirical_bernstein -> "empirical-bernstein"
  | Per_node_union -> "per-node-union"

let family_of_string = function
  | "hoeffding" -> Some Hoeffding
  | "empirical-bernstein" -> Some Empirical_bernstein
  | "per-node-union" -> Some Per_node_union
  | _ -> None

let check_delta ~who delta =
  if not (delta > 0. && delta < 1.) then
    invalid_arg (Printf.sprintf "Guarantee.%s: delta must be in (0, 1)" who)

let hoeffding_slack ~m ~delta =
  if m < 1 then invalid_arg "Guarantee.hoeffding_slack: m must be positive";
  check_delta ~who:"hoeffding_slack" delta;
  sqrt (log (1. /. delta) /. (2. *. float_of_int m))

let bernstein_slack ~m ~variance ~delta =
  if m < 1 then invalid_arg "Guarantee.bernstein_slack: m must be positive";
  if variance < 0. then
    invalid_arg "Guarantee.bernstein_slack: negative variance";
  check_delta ~who:"bernstein_slack" delta;
  if m < 2 then infinity
  else begin
    let l = log (2. /. delta) in
    sqrt (2. *. variance *. l /. float_of_int m)
    +. (7. *. l /. (3. *. float_of_int (m - 1)))
  end

let union_slack ~m ~candidates ~k ~delta =
  if candidates < 1 then
    invalid_arg "Guarantee.union_slack: candidates must be positive";
  if k < 1 then invalid_arg "Guarantee.union_slack: k must be positive";
  check_delta ~who:"union_slack" delta;
  float_of_int candidates /. float_of_int k
  *. hoeffding_slack ~m ~delta:(delta /. float_of_int candidates)

(* Convert the certified *scaled* duality gap back to objective units.
   Certify scales the gap by [1 + |primal| + |dual|]; the dual objective is
   not part of the report, but at a certified optimum it is within the
   unscaled gap of the primal, so with [g] the scaled gap and [p] the
   primal objective:

     unscaled <= g * (1 + |p| + |d|) <= g * (1 + 2|p|) + g * unscaled

   giving [unscaled <= g * (1 + 2|p|) / (1 - g)] for [g < 1].  Certified
   gaps sit near machine precision, so the denominator is benign; an
   uncertifiable gap >= 1 yields [infinity], which honestly voids the
   claim rather than understating it. *)
let gap_to_objective_units ~gap ~objective =
  if gap >= 1. then infinity
  else gap *. (1. +. (2. *. Float.abs objective)) /. (1. -. gap)

let compute ?(delta = 1e-6) ?report ?objective topo cost plan ~k samples =
  check_delta ~who:"compute" delta;
  if k < 1 then invalid_arg "Guarantee.compute: k must be positive";
  let m = Sampling.Sample_set.n_samples samples in
  let n = samples.Sampling.Sample_set.n in
  (* Useful answer size: a sample's true top k can hold at most n nodes. *)
  let k_eff = Int.min k n in
  let participants = Plan.participants topo plan in
  let hits = Array.make n 0 in
  let acc = Array.make m 0. in
  for j = 0 to m - 1 do
    let readings = samples.Sampling.Sample_set.values.(j) in
    let o = Exec.collect topo cost plan ~k ~readings in
    acc.(j) <- Exec.accuracy ~k ~readings o.Exec.returned;
    List.iter
      (fun (i, _) ->
        if samples.Sampling.Sample_set.is_one.(j).(i) then
          hits.(i) <- hits.(i) + 1)
      o.Exec.returned
  done;
  let a_hat = Sampling.Stats.mean acc in
  let a_var = Sampling.Stats.variance acc in
  let d3 = delta /. 3. in
  let eps_h = hoeffding_slack ~m ~delta:d3 in
  let eps_b = bernstein_slack ~m ~variance:a_var ~delta:d3 in
  let c = List.length participants in
  (* Per-node route: E[acc] = (1/k_eff) sum_i q_i, and only participants
     can be returned, so bounding each participant's q_i at level
     [d3 / c] and summing is a valid union bound.  Each node's slack is
     capped by its empirical rate (a probability cannot go below 0). *)
  let fm = float_of_int m in
  let eps_u =
    if c = 0 then eps_h
    else begin
      let dn = d3 /. float_of_int c in
      let total =
        List.fold_left
          (fun acc_slack i ->
            let q = float_of_int hits.(i) /. fm in
            if q <= 0. then acc_slack
            else begin
              let v =
                if m < 2 then infinity
                else q *. (1. -. q) *. fm /. float_of_int (m - 1)
              in
              acc_slack +. Float.min q (bernstein_slack ~m ~variance:v ~delta:dn)
            end)
          0. participants
      in
      total /. float_of_int k_eff
    end
  in
  let stat_eps, family =
    if eps_h <= eps_b && eps_h <= eps_u then (eps_h, Hoeffding)
    else if eps_b <= eps_u then (eps_b, Empirical_bernstein)
    else (eps_u, Per_node_union)
  in
  let lp_certified =
    match report with Some r -> r.Lp.Certify.certified | None -> false
  in
  let lp_eps =
    match (report, objective) with
    | Some r, Some obj when r.Lp.Certify.certified ->
        (* The LP objective counts covered ones over the window (at most
           k_eff per sample); dividing by [k_eff * m] lands the certified
           gap in the same units as the accuracy slack. *)
        gap_to_objective_units ~gap:r.Lp.Certify.duality_gap ~objective:obj
        /. (float_of_int k_eff *. fm)
    | _ -> 0.
  in
  let eps = stat_eps +. lp_eps in
  let certified_lower = Float.max 0. (a_hat -. eps) in
  let g =
    {
      eps;
      delta;
      samples = m;
      k;
      empirical_accuracy = a_hat;
      certified_lower;
      stat_eps;
      lp_eps;
      family;
      candidates = Int.max c 1;
      lp_certified;
    }
  in
  Obs.Metrics.incr m_computed;
  Obs.Metrics.observe h_eps eps;
  Obs.Metrics.observe h_lower certified_lower;
  if Obs.Trace.active () then
    Obs.Trace.emit Obs.Trace.Guarantee ~name:"planner.guarantee"
      [
        ("eps", Obs.Trace.Float eps);
        ("delta", Obs.Trace.Float delta);
        ("certified_lower", Obs.Trace.Float certified_lower);
        ("empirical_accuracy", Obs.Trace.Float a_hat);
        ("family", Obs.Trace.Str (family_to_string family));
        ("samples", Obs.Trace.Int m);
        ("k", Obs.Trace.Int k);
        ("lp_certified", Obs.Trace.Bool lp_certified);
      ];
  g

let meets t ~eps ~delta = t.certified_lower >= 1. -. eps && t.delta <= delta

let holds_against t ~observed_accuracy = observed_accuracy >= t.certified_lower

let validate t =
  let check cond reason = if cond then Ok () else Error reason in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let* () = check (t.delta > 0. && t.delta < 1.) "delta outside (0, 1)" in
  let* () = check (t.samples >= 1) "non-positive sample count" in
  let* () = check (t.k >= 1) "non-positive k" in
  let* () = check (t.candidates >= 1) "non-positive candidate count" in
  let* () =
    check
      (t.empirical_accuracy >= 0. && t.empirical_accuracy <= 1.)
      "empirical accuracy outside [0, 1]"
  in
  let* () = check (t.stat_eps >= 0.) "negative statistical slack" in
  let* () = check (t.lp_eps >= 0.) "negative LP slack" in
  let* () =
    check
      (Float.abs (t.eps -. (t.stat_eps +. t.lp_eps)) <= 1e-12 *. (1. +. t.eps))
      "eps does not equal stat_eps + lp_eps"
  in
  let* () =
    check
      (Float.abs (t.certified_lower -. Float.max 0. (t.empirical_accuracy -. t.eps))
      <= 1e-12)
      "certified_lower does not match max 0 (accuracy - eps)"
  in
  let* () =
    check
      (t.lp_certified || t.lp_eps = 0.)
      "LP slack claimed without a certified LP solution"
  in
  (* The statistical slack is a minimum that always includes the Hoeffding
     member, so it can never beat it. *)
  let hoeffding_floor = hoeffding_slack ~m:t.samples ~delta:(t.delta /. 3.) in
  check
    (t.stat_eps <= hoeffding_floor +. 1e-12)
    "statistical slack tighter than the Hoeffding member of its minimum"

let equal a b =
  Float.equal a.eps b.eps
  && Float.equal a.delta b.delta
  && Int.equal a.samples b.samples
  && Int.equal a.k b.k
  && Float.equal a.empirical_accuracy b.empirical_accuracy
  && Float.equal a.certified_lower b.certified_lower
  && Float.equal a.stat_eps b.stat_eps
  && Float.equal a.lp_eps b.lp_eps
  && compare_family a.family b.family = 0
  && Int.equal a.candidates b.candidates
  && Bool.equal a.lp_certified b.lp_certified

let schema = "guarantee/1"

let to_json t =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str schema);
      ("eps", Obs.Json.Num t.eps);
      ("delta", Obs.Json.Num t.delta);
      ("samples", Obs.Json.Num (float_of_int t.samples));
      ("k", Obs.Json.Num (float_of_int t.k));
      ("empirical_accuracy", Obs.Json.Num t.empirical_accuracy);
      ("certified_lower", Obs.Json.Num t.certified_lower);
      ("stat_eps", Obs.Json.Num t.stat_eps);
      ("lp_eps", Obs.Json.Num t.lp_eps);
      ("family", Obs.Json.Str (family_to_string t.family));
      ("candidates", Obs.Json.Num (float_of_int t.candidates));
      ("lp_certified", Obs.Json.Bool t.lp_certified);
    ]

let of_json j =
  let ( let* ) o f = Option.bind o f in
  let num name = Option.bind (Obs.Json.member name j) Obs.Json.to_num in
  let* s = Option.bind (Obs.Json.member "schema" j) Obs.Json.to_str in
  if not (String.equal s schema) then None
  else
    let* eps = num "eps" in
    let* delta = num "delta" in
    let* samples = num "samples" in
    let* k = num "k" in
    let* empirical_accuracy = num "empirical_accuracy" in
    let* certified_lower = num "certified_lower" in
    let* stat_eps = num "stat_eps" in
    let* lp_eps = num "lp_eps" in
    let* family =
      Option.bind
        (Option.bind (Obs.Json.member "family" j) Obs.Json.to_str)
        family_of_string
    in
    let* candidates = num "candidates" in
    let* lp_certified =
      Option.bind (Obs.Json.member "lp_certified" j) Obs.Json.to_bool
    in
    Some
      {
        eps;
        delta;
        samples = int_of_float samples;
        k = int_of_float k;
        empirical_accuracy;
        certified_lower;
        stat_eps;
        lp_eps;
        family;
        candidates = int_of_float candidates;
        lp_certified;
      }

let pp ppf t =
  Format.fprintf ppf
    "@[<h>E[accuracy] >= %.4f (missed mass <= %.4f) w.p. >= %g over %d \
     samples; eps = %.4f (%s%s)@]"
    t.certified_lower (1. -. t.certified_lower) (1. -. t.delta) t.samples t.eps
    (family_to_string t.family)
    (if t.lp_certified then Format.sprintf " + %.2e LP gap" t.lp_eps else "")

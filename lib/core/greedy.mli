(** PROSPECTOR-GREEDY (Section 3).

    Builds an approximate plan incrementally: repeatedly pick the
    not-yet-chosen node that appears most often in the sample top-k sets
    (largest column sum) and add it to the plan, as long as the static cost
    of the expanded plan stays within the energy budget.  Topology-blind:
    each chosen value travels all the way to the root, paying per-message
    costs on every edge of its path that the plan was not already using. *)

val plan :
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Sampling.Sample_set.t ->
  budget:float ->
  Plan.t
(** Stops at the first candidate whose addition would exceed [budget]
    (matching the paper's description).  Nodes that never appear in any
    sample's top k are never added. *)

val chosen_by_colsum :
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  colsum:int array ->
  budget:float ->
  bool array
(** The node selection behind {!plan}, parameterized directly by column
    sums (how often each node appears in sample answers).  The root is
    always chosen.  Also serves as the last-resort fallback of the
    {!Robust_plan} chain, where it replaces an LP solution that could not
    be certified. *)

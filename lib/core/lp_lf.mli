(** PROSPECTOR-LP+LF: topology-aware planning with local filtering
    (Section 4.2).

    The plan is a bandwidth assignment [b_e] per edge.  One relaxed 0/1
    variable [y_{j,i}] exists per (sample [j], node [i] in [ones(j)]) —
    "the plan returns [i]'s value when executed on sample [j]" — so the
    plan can make run-time decisions per sample: a subtree that reliably
    contains some top-k values, each time in a different node, can be
    covered with a small bandwidth (the local filter passes whichever
    values win that day).

    Constraints: [y <= z] on the node's own edge plus z-monotonicity up the
    tree (compact equivalent of the paper's per-ancestor rows), a bandwidth
    row per (edge, sample) limiting how many covered ones can flow through
    the edge, activation [b_e <= cap * z_e], and the energy budget charging
    [cm] per used edge and per-value cost per unit bandwidth. *)

type result = {
  plan : Plan.t;
  lp_objective : float;
  lp_stats : Lp.Revised.stats option;
  fractional : float array;  (** the raw LP bandwidths, for rounding studies *)
  budget_shadow_price : float;
      (** marginal covered-ones per mJ of extra budget at the optimum — the
          number a deployment engineer reads to decide whether raising the
          energy budget is still worth it *)
  basis : Lp.Model.basis option;
      (** warm-start token: feed it back as [?warm_start] to a later [plan]
          call over the same topology and sample-set shape (e.g. a re-plan
          with a perturbed budget) to reuse this solve's final basis *)
  provenance : Robust_plan.provenance;
      (** which stage of the certified fallback chain produced the plan *)
  certify : Lp.Certify.report option;
      (** the PR-3 certification that admitted the LP solution; [None] for
          the greedy fallback (which makes no LP claim) *)
  guarantee : Guarantee.t option;
      (** the certified (ε, δ) bound attached to the plan; present exactly
          when the [?guarantee] target was supplied *)
}

val plan :
  ?alive:bool array ->
  ?warm_start:Lp.Model.basis ->
  ?max_lp_iterations:int ->
  ?lp_deadline:float ->
  ?guarantee:float * float ->
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Sampling.Sample_set.t ->
  budget:float ->
  k:int ->
  result
(** [k] caps the useful bandwidth of any edge (sending more than [k]
    values cannot improve a top-k answer).

    [alive] (default: everyone) masks dead nodes out of the plan without
    changing the LP's shape: a dead node's activation variable gets an
    upper bound of 0, which zeroes its bandwidth, its sample coverage
    and — through z-monotonicity — every edge below it, so warm-start
    tokens from the undamaged instance still apply.  The greedy fallback
    honours the same mask.  The mask must keep the root alive and, being
    tree-structured, a dead node makes its whole subtree unplannable
    whether or not the descendants are masked.

    [warm_start] is best-effort:
    incompatible tokens are ignored.  [max_lp_iterations]/[lp_deadline]
    bound the LP stages; when both fail certification the plan is the
    greedy selection shipped without local filtering (provenance
    {!Robust_plan.Fell_back_greedy}) and the call never raises on solver
    failure.

    [guarantee:(eps, delta)] requests a certified accuracy target and
    routes planning through {!Robust_plan.plan_with_guarantee}: the
    window is split into a planning half and a certification half, the
    budget escalates (warm-starting each rung from the previous one)
    until the bound "expected accuracy >= [1 - eps] w.p. >= [1 - delta]"
    is met, and the result carries the (best) certified bound in
    [guarantee].  Check attainment with {!Guarantee.meets} — an
    unattainable target still returns the best attempt rather than
    raising. *)

val lp_model :
  ?alive:bool array ->
  Sensor.Topology.t ->
  Sensor.Cost.t ->
  Sampling.Sample_set.t ->
  budget:float ->
  k:int ->
  Lp.Model.t
(** The LP+LF relaxation as a bare {!Lp.Model.t}, without solving or
    rounding — for benchmarks and diagnostics (e.g. measuring certification
    overhead on the exact model the planner solves). *)

(** Shared warm-basis pool with nearest-instance lookup.

    Generalizes what [Replan] does for successive replans of one query to
    the whole serving population: every certified solve deposits its final
    simplex basis under its LP-shape bucket ({!Fingerprint.shape_key}),
    and a {e similar} query — same shape, perturbed budget or refreshed
    samples — starts from the pooled basis whose budget is nearest to its
    own instead of from scratch.

    The pool only ever hands out solver {e hints}: the LP layer's shared
    [Lp.Model.basis_compatible] predicate (applied inside
    [Robust_plan.solve] on the way to the solver) remains the authority on
    whether a token fits, and the PR-3 certifier independently checks
    whatever solution the warm start leads to.  A wrong pool entry can
    cost pivots, never correctness.

    Buckets are homogeneous by construction — the shape key determines the
    LP's dimensions — and {!insert} additionally drops tokens whose
    [Lp.Model.basis_shape] disagrees with the bucket's (counted, never
    raised).  All eviction and tie-breaking is deterministic. *)

type t

val create : capacity:int -> t
(** [capacity] bounds each shape bucket (not the pool as a whole); 0
    disables the pool ({!insert} is a no-op, {!lookup} always misses). *)

val insert : t -> shape:string -> budget:float -> Lp.Model.basis -> unit
(** Deposit a basis under its shape bucket.  An entry with the same budget
    is replaced (newest wins); a full bucket evicts the oldest entry
    (smallest insertion sequence number). *)

val lookup : t -> shape:string -> budget:float -> Lp.Model.basis option
(** The pooled basis whose budget is nearest to [budget] (ties towards the
    lower budget, then the older entry — fully deterministic). *)

val size : t -> int
(** Total entries across all buckets. *)

val dropped_shape_mismatches : t -> int
(** Tokens refused by {!insert} because their shape disagreed with the
    bucket's — should stay 0; anything else is a fingerprinting bug
    surfaced rather than silently swallowed. *)

(* Canonical query identities.  FNV-1a 64-bit over explicit bit patterns:
   deterministic across runs, processes and machines, unlike the runtime's
   polymorphic hash. *)

type t = {
  network : int;
  window : int;
  k : int;
  budget_bits : int64;
  guarantee_bits : int64;
  topo_hash : int64;
  samples : int;
}

let fnv_offset = 0xcbf29ce484222325L

let fnv_prime = 0x100000001b3L

let fnv1a_int64 acc v =
  (* Fold the value in byte by byte, as FNV specifies. *)
  let acc = ref acc in
  for shift = 0 to 7 do
    let byte = Int64.to_int (Int64.shift_right_logical v (8 * shift)) land 0xff in
    acc := Int64.mul (Int64.logxor !acc (Int64.of_int byte)) fnv_prime
  done;
  !acc

let fnv1a_int acc v = fnv1a_int64 acc (Int64.of_int v)

let canonical_budget b = if b = 0. then 0. else b (* maps -0. to 0. *)

let hash_parents ~root parents =
  let acc = ref (fnv1a_int fnv_offset root) in
  Array.iter (fun p -> acc := fnv1a_int !acc p) parents;
  !acc

let make ~network ~window ~k ~budget ~guarantee ~topo_hash ~samples =
  let budget_bits = Int64.bits_of_float (canonical_budget budget) in
  let guarantee_bits =
    match guarantee with
    | None -> 0L
    | Some (eps, delta) ->
        fnv1a_int64
          (fnv1a_int64 fnv_offset (Int64.bits_of_float eps))
          (Int64.bits_of_float delta)
  in
  { network; window; k; budget_bits; guarantee_bits; topo_hash; samples }

let family_key t =
  Printf.sprintf "n%d/w%d/k%d/m%d/t%Lx/g%Lx" t.network t.window t.k t.samples
    t.topo_hash t.guarantee_bits

let exact_key t = Printf.sprintf "%s/b%Lx" (family_key t) t.budget_bits

let shape_key t = Printf.sprintf "t%Lx/m%d/k%d" t.topo_hash t.samples t.k

let pp ppf t =
  Format.fprintf ppf "query %s (budget %g)" (family_key t)
    (Int64.float_of_bits t.budget_bits)

type 'a entry = { payload : 'a; mutable last_used : int; seq : int }

type family = {
  mutable basis : Lp.Model.basis;
  mutable lo : float;
  mutable hi : float;
  mutable f_last_used : int;
  f_seq : int;
}

type 'a t = {
  capacity : int;
  entries : (string, 'a entry) Hashtbl.t;
  families : (string, family) Hashtbl.t;
  mutable clock : int;
  mutable seq : int;
  mutable evicted : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Plan_cache.create: negative capacity";
  {
    capacity;
    entries = Hashtbl.create 64;
    families = Hashtbl.create 64;
    clock = 0;
    seq = 0;
    evicted = 0;
  }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let find t ~key =
  match Hashtbl.find_opt t.entries key with
  | None -> None
  | Some e ->
      e.last_used <- tick t;
      Some e.payload

(* Deterministic LRU victim: smallest (last_used, seq).  The O(n) scan is
   fine at serving-cache sizes (hundreds); the fold feeds a sort so no
   hash order leaks into the choice. *)
let evict_lru table =
  let victims =
    Hashtbl.fold (fun key e acc -> (key, e.last_used, e.seq) :: acc) table []
    |> List.sort (fun (_, u1, s1) (_, u2, s2) ->
           match Int.compare u1 u2 with 0 -> Int.compare s1 s2 | c -> c)
  in
  match victims with
  | [] -> ()
  | (key, _, _) :: _ -> Hashtbl.remove table key

let add t ~key payload =
  if t.capacity > 0 then begin
    (match Hashtbl.find_opt t.entries key with
    | Some _ -> Hashtbl.remove t.entries key
    | None ->
        if Hashtbl.length t.entries >= t.capacity then begin
          evict_lru t.entries;
          t.evicted <- t.evicted + 1
        end);
    Hashtbl.replace t.entries key
      { payload; last_used = tick t; seq = next_seq t }
  end

let family t ~key =
  match Hashtbl.find_opt t.families key with
  | None -> None
  | Some f ->
      f.f_last_used <- tick t;
      Some (f.basis, f.lo, f.hi)

let evict_lru_family table =
  let victims =
    Hashtbl.fold (fun key f acc -> (key, f.f_last_used, f.f_seq) :: acc) table []
    |> List.sort (fun (_, u1, s1) (_, u2, s2) ->
           match Int.compare u1 u2 with 0 -> Int.compare s1 s2 | c -> c)
  in
  match victims with
  | [] -> ()
  | (key, _, _) :: _ -> Hashtbl.remove table key

let anchor_family t ~key ~basis ~budget =
  if t.capacity > 0 then
    match Hashtbl.find_opt t.families key with
    | Some f ->
        f.basis <- basis;
        f.lo <- budget;
        f.hi <- budget;
        f.f_last_used <- tick t
    | None ->
        if Hashtbl.length t.families >= t.capacity then
          evict_lru_family t.families;
        Hashtbl.replace t.families key
          {
            basis;
            lo = budget;
            hi = budget;
            f_last_used = tick t;
            f_seq = next_seq t;
          }

let extend_family t ~key ~basis ~budget =
  if t.capacity > 0 then
    match Hashtbl.find_opt t.families key with
    | None -> anchor_family t ~key ~basis ~budget
    | Some f ->
        f.basis <- basis;
        f.lo <- Float.min f.lo budget;
        f.hi <- Float.max f.hi budget;
        f.f_last_used <- tick t

let size t = Hashtbl.length t.entries

let evictions t = t.evicted

type config = {
  cache_capacity : int;
  pool_capacity : int;
  batch : int;
  domains : int;
  max_lp_iterations : int option;
  lp_deadline : float option;
}

let default_config =
  {
    cache_capacity = 256;
    pool_capacity = 8;
    batch = 32;
    domains = 1;
    max_lp_iterations = None;
    lp_deadline = None;
  }

type network = {
  topo : Sensor.Topology.t;
  cost : Sensor.Cost.t;
  mutable window : Sampling.Sample_set.t;
  mutable version : int;
  topo_hash : int64;
  (* the window re-ranked for each queried k, built lazily on the
     coordinator and cleared on window updates *)
  by_k : (int, Sampling.Sample_set.t) Hashtbl.t;
}

type query = {
  network : int;
  k : int;
  budget : float;
  guarantee : (float * float) option;
}

let query ?guarantee ~network ~k budget = { network; k; budget; guarantee }

type source = Cache_hit | Range_hit | Pool_warm | Cold

let source_to_string = function
  | Cache_hit -> "cache"
  | Range_hit -> "range"
  | Pool_warm -> "pool"
  | Cold -> "cold"

type response = {
  plan : Prospector.Plan.t;
  objective : float;
  provenance : Prospector.Robust_plan.provenance;
  certify : Lp.Certify.report;
  guarantee : Prospector.Guarantee.t option;
  source : source;
  coalesced : bool;
  solve_ms : float;
  budget : float;
}

type outcome = Served of response | Refused of string

type stats = {
  queries : int;
  batches : int;
  cache_hits : int;
  range_hits : int;
  pool_hits : int;
  cold_misses : int;
  coalesced : int;
  refused : int;
  solves : int;
  evictions : int;
}

type arena = { mutable a_solves : int; mutable a_busy : float }

type t = {
  config : config;
  networks : (int, network) Hashtbl.t;
  mutable next_network : int;
  cache : response Plan_cache.t;
  pool : Basis_pool.t;
  arenas : arena array;
  mutable trace_rev : (string * string) list;
  mutable s_queries : int;
  mutable s_batches : int;
  mutable s_cache_hits : int;
  mutable s_range_hits : int;
  mutable s_pool_hits : int;
  mutable s_cold : int;
  mutable s_coalesced : int;
  mutable s_refused : int;
  mutable s_solves : int;
}

(* Gated mirrors of the always-on tallies; incremented coordinator-side
   only (the Obs registry is single-domain). *)
let m_queries = Obs.Metrics.counter "serve.queries"
let m_batches = Obs.Metrics.counter "serve.batches"
let m_cache_hits = Obs.Metrics.counter "serve.cache_hits"
let m_range_hits = Obs.Metrics.counter "serve.range_hits"
let m_pool_hits = Obs.Metrics.counter "serve.pool_hits"
let m_cold = Obs.Metrics.counter "serve.cold_misses"
let m_coalesced = Obs.Metrics.counter "serve.coalesced"
let m_refused = Obs.Metrics.counter "serve.refused"
let t_batch = Obs.Metrics.timer "serve.batch_s"

let create ?(config = default_config) () =
  if config.batch < 1 then invalid_arg "Server.create: batch < 1";
  if config.domains < 1 then invalid_arg "Server.create: domains < 1";
  {
    config;
    networks = Hashtbl.create 8;
    next_network = 0;
    cache = Plan_cache.create ~capacity:config.cache_capacity;
    pool = Basis_pool.create ~capacity:config.pool_capacity;
    arenas = Array.init config.domains (fun _ -> { a_solves = 0; a_busy = 0. });
    trace_rev = [];
    s_queries = 0;
    s_batches = 0;
    s_cache_hits = 0;
    s_range_hits = 0;
    s_pool_hits = 0;
    s_cold = 0;
    s_coalesced = 0;
    s_refused = 0;
    s_solves = 0;
  }

let register t topo cost samples =
  let open Sensor.Topology in
  if samples.Sampling.Sample_set.n <> topo.n then
    invalid_arg "Server.register: sample window and topology disagree on n";
  let id = t.next_network in
  t.next_network <- id + 1;
  let net =
    {
      topo;
      cost;
      window = samples;
      version = 0;
      topo_hash = Fingerprint.hash_parents ~root:topo.root topo.parent;
      by_k = Hashtbl.create 4;
    }
  in
  Hashtbl.replace net.by_k samples.Sampling.Sample_set.k samples;
  Hashtbl.replace t.networks id net;
  id

let update_window t ~network samples =
  match Hashtbl.find_opt t.networks network with
  | None -> invalid_arg "Server.update_window: unknown network"
  | Some net ->
      if samples.Sampling.Sample_set.n <> net.topo.Sensor.Topology.n then
        invalid_arg "Server.update_window: sample window disagrees on n";
      net.window <- samples;
      net.version <- net.version + 1;
      Hashtbl.reset net.by_k;
      Hashtbl.replace net.by_k samples.Sampling.Sample_set.k samples

let network_count t = Hashtbl.length t.networks

let samples_for_k net ~k =
  match Hashtbl.find_opt net.by_k k with
  | Some s -> s
  | None ->
      let s =
        Sampling.Sample_set.of_values ~k net.window.Sampling.Sample_set.values
      in
      Hashtbl.replace net.by_k k s;
      s

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

type task = {
  fp : Fingerprint.t;
  t_query : query;
  t_net : network;
  t_samples : Sampling.Sample_set.t;
  t_source : source;  (* Range_hit | Pool_warm | Cold *)
  warm : Lp.Model.basis option;
  (* the warm token is the query's own family basis: a certified 0-pivot
     re-solve then extends the family's budget range (see commit) *)
  t_family_warm : bool;
}

type decision =
  | D_refuse of string
  | D_cached of string * response  (* exact key, the re-served payload *)
  | D_task of int  (* leader: index into the batch's task array *)
  | D_follow of int  (* coalesced follower of task [i] *)

let validate t q =
  match Hashtbl.find_opt t.networks q.network with
  | None -> Error "unknown network"
  | Some net ->
      if q.k < 1 || q.k > net.topo.Sensor.Topology.n then Error "bad k"
      else if not (Float.is_finite q.budget) || q.budget < 0. then
        Error "bad budget"
      else
        let guarantee_ok =
          match q.guarantee with
          | None -> true
          | Some (eps, delta) ->
              Float.is_finite eps && eps > 0. && delta > 0. && delta < 1.
        in
        if not guarantee_ok then Error "bad guarantee target" else Ok net

(* Decide one batch sequentially: every cache, pool and coalescing choice
   is made here, on the coordinator, before any solve runs. *)
let admit t queries =
  let tasks = ref [] in
  let ntasks = ref 0 in
  let leaders = Hashtbl.create 16 in
  let decisions =
    Array.map
      (fun q ->
        match validate t q with
        | Error reason -> D_refuse reason
        | Ok net -> (
            let samples = samples_for_k net ~k:q.k in
            let fp =
              Fingerprint.make ~network:q.network ~window:net.version ~k:q.k
                ~budget:q.budget ~guarantee:q.guarantee
                ~topo_hash:net.topo_hash
                ~samples:(Sampling.Sample_set.n_samples samples)
            in
            let key = Fingerprint.exact_key fp in
            match Hashtbl.find_opt leaders key with
            | Some i -> D_follow i
            | None -> (
                match Plan_cache.find t.cache ~key with
                | Some r ->
                    D_cached
                      ( key,
                        { r with source = Cache_hit; coalesced = false; solve_ms = 0. }
                      )
                | None ->
                    let t_source, warm, t_family_warm =
                      match q.guarantee with
                      | Some _ -> (
                          (* guarantee planning escalates the budget rung by
                             rung, so family-range evidence does not apply;
                             the pool still provides a warm hint *)
                          match
                            Basis_pool.lookup t.pool
                              ~shape:(Fingerprint.shape_key fp) ~budget:q.budget
                          with
                          | Some b -> (Pool_warm, Some b, false)
                          | None -> (Cold, None, false))
                      | None -> (
                          match
                            Plan_cache.family t.cache
                              ~key:(Fingerprint.family_key fp)
                          with
                          | Some (b, lo, hi) when q.budget >= lo && q.budget <= hi
                            ->
                              (Range_hit, Some b, true)
                          | Some (b, _, _) ->
                              (* outside the certified range: still warm from
                                 the family basis — a certified 0-pivot
                                 re-solve is exactly the evidence that lets
                                 the commit phase widen the range to here *)
                              (Pool_warm, Some b, true)
                          | None -> (
                              match
                                Basis_pool.lookup t.pool
                                  ~shape:(Fingerprint.shape_key fp)
                                  ~budget:q.budget
                              with
                              | Some b -> (Pool_warm, Some b, false)
                              | None -> (Cold, None, false)))
                    in
                    let i = !ntasks in
                    ntasks := i + 1;
                    Hashtbl.replace leaders key i;
                    tasks :=
                      { fp; t_query = q; t_net = net; t_samples = samples;
                        t_source; warm; t_family_warm }
                      :: !tasks;
                    D_task i)))
      queries
  in
  (decisions, Array.of_list (List.rev !tasks))

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

let effective_domains t ntasks =
  (* the Obs registry and trace sink are single-domain by design *)
  if Obs.Metrics.enabled () || Obs.Trace.active () then 1
  else Int.max 1 (Int.min t.config.domains ntasks)

let run_tasks t tasks =
  let ntasks = Array.length tasks in
  let results = Array.make ntasks None in
  let run_one slot i =
    let task = tasks.(i) in
    let t0 = Obs.Trace.now () in
    let r =
      try
        Ok
          (Prospector.Lp_lf.plan ?warm_start:task.warm
             ?max_lp_iterations:t.config.max_lp_iterations
             ?lp_deadline:t.config.lp_deadline ?guarantee:task.t_query.guarantee
             task.t_net.topo task.t_net.cost task.t_samples
             ~budget:task.t_query.budget ~k:task.t_query.k)
      with e -> Error (Printexc.to_string e)
    in
    let dt = Obs.Trace.now () -. t0 in
    results.(i) <- Some (r, dt);
    let a = t.arenas.(slot) in
    a.a_solves <- a.a_solves + 1;
    a.a_busy <- a.a_busy +. dt
  in
  let nd = effective_domains t ntasks in
  (if nd <= 1 then
     for i = 0 to ntasks - 1 do
       run_one 0 i
     done
   else
     (* Deterministic work stealing: tasks are claimed in admission order
        through one atomic cursor; which domain claims which index is
        timing-dependent, but each result lands in its own slot and every
        decision about the results happens after the join. *)
     let cursor = Atomic.make 0 in
     let worker slot () =
       let rec loop () =
         let i = Atomic.fetch_and_add cursor 1 in
         if i < ntasks then begin
           run_one slot i;
           loop ()
         end
       in
       loop ()
     in
     let spawned =
       Array.init (nd - 1) (fun w -> Domain.spawn (worker (w + 1)))
     in
     worker 0 ();
     Array.iter Domain.join spawned);
  results

(* ------------------------------------------------------------------ *)
(* Commit                                                              *)

let commit_task t task (result, dt) =
  match result with
  | Error msg -> Refused ("planner-exception: " ^ msg)
  | Ok (res : Prospector.Lp_lf.result) -> (
      match (res.certify, res.provenance) with
      | None, _ | _, Prospector.Robust_plan.Fell_back_greedy ->
          Refused "uncertified: no LP stage passed certification"
      | Some report, provenance -> (
          let serve guarantee =
            let resp =
              {
                plan = res.plan;
                objective = res.lp_objective;
                provenance;
                certify = report;
                guarantee;
                source = task.t_source;
                coalesced = false;
                solve_ms = dt *. 1000.;
                budget = task.t_query.budget;
              }
            in
            Plan_cache.add t.cache ~key:(Fingerprint.exact_key task.fp) resp;
            (match res.basis with
            | None -> ()
            | Some basis ->
                (match task.t_query.guarantee with
                | Some _ -> ()
                | None ->
                    let fkey = Fingerprint.family_key task.fp in
                    let zero_pivots =
                      match res.lp_stats with
                      | Some s -> s.Lp.Revised.iterations = 0
                      | None -> false
                    in
                    let extend =
                      (* certified 0-pivot warm re-solve from the family's
                         own basis: the convexity evidence the range logic
                         requires (see Plan_cache) — the basis is optimal at
                         the family's certified points and now at this
                         budget, hence on their convex hull *)
                      match provenance with
                      | Prospector.Robust_plan.Certified_revised ->
                          task.t_family_warm && zero_pivots
                      | _ -> false
                    in
                    if extend then
                      Plan_cache.extend_family t.cache ~key:fkey ~basis
                        ~budget:task.t_query.budget
                    else
                      Plan_cache.anchor_family t.cache ~key:fkey ~basis
                        ~budget:task.t_query.budget);
                Basis_pool.insert t.pool
                  ~shape:(Fingerprint.shape_key task.fp)
                  ~budget:task.t_query.budget basis);
            Served resp
          in
          match task.t_query.guarantee with
          | None -> serve None
          | Some (eps, delta) -> (
              match res.guarantee with
              | Some g when Prospector.Guarantee.meets g ~eps ~delta -> serve (Some g)
              | _ -> Refused "guarantee-unattainable at this budget")))

let push_trace t key tag = t.trace_rev <- (key, tag) :: t.trace_rev

let run_batch t queries outcomes ~offset ~len =
  let batch = Array.sub queries offset len in
  let t0 = Obs.Trace.now () in
  let decisions, tasks = admit t batch in
  let results = run_tasks t tasks in
  t.s_solves <- t.s_solves + Array.length tasks;
  (* Commit leaders in task (= admission) order, then answer every query in
     admission order — all sequential, all deterministic. *)
  let task_outcomes =
    Array.mapi
      (fun i task ->
        match results.(i) with
        | Some r -> commit_task t task r
        | None -> Refused "internal: task never ran")
      tasks
  in
  Array.iteri
    (fun i d ->
      let outcome, key, tag =
        match d with
        | D_refuse reason -> (Refused reason, "-", "refused")
        | D_cached (key, r) -> (Served r, key, "cache")
        | D_task ti -> (
            let key = Fingerprint.exact_key tasks.(ti).fp in
            match task_outcomes.(ti) with
            | Served r -> (Served r, key, source_to_string r.source)
            | Refused _ as o -> (o, key, "refused"))
        | D_follow ti -> (
            let key = Fingerprint.exact_key tasks.(ti).fp in
            match task_outcomes.(ti) with
            | Served r -> (Served { r with coalesced = true }, key, "coalesced")
            | Refused _ as o -> (o, key, "refused"))
      in
      t.s_queries <- t.s_queries + 1;
      Obs.Metrics.incr m_queries;
      (match outcome with
      | Refused _ ->
          t.s_refused <- t.s_refused + 1;
          Obs.Metrics.incr m_refused
      | Served r ->
          if r.coalesced then begin
            t.s_coalesced <- t.s_coalesced + 1;
            Obs.Metrics.incr m_coalesced
          end
          else begin
            match r.source with
            | Cache_hit ->
                t.s_cache_hits <- t.s_cache_hits + 1;
                Obs.Metrics.incr m_cache_hits
            | Range_hit ->
                t.s_range_hits <- t.s_range_hits + 1;
                Obs.Metrics.incr m_range_hits
            | Pool_warm ->
                t.s_pool_hits <- t.s_pool_hits + 1;
                Obs.Metrics.incr m_pool_hits
            | Cold ->
                t.s_cold <- t.s_cold + 1;
                Obs.Metrics.incr m_cold
          end);
      push_trace t key tag;
      outcomes.(offset + i) <- outcome)
    decisions;
  t.s_batches <- t.s_batches + 1;
  Obs.Metrics.incr m_batches;
  let dur = Obs.Trace.now () -. t0 in
  Obs.Metrics.record_s t_batch dur;
  Obs.Trace.emit Serve ~name:"serve.batch" ~start_s:t0 ~dur_s:dur
    [
      ("queries", Obs.Trace.Int len);
      ("tasks", Obs.Trace.Int (Array.length tasks));
      ("domains", Obs.Trace.Int (effective_domains t (Array.length tasks)));
    ]

let run t queries =
  let n = Array.length queries in
  let outcomes = Array.make n (Refused "unprocessed") in
  let offset = ref 0 in
  while !offset < n do
    let len = Int.min t.config.batch (n - !offset) in
    run_batch t queries outcomes ~offset:!offset ~len;
    offset := !offset + len
  done;
  outcomes

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let stats t =
  {
    queries = t.s_queries;
    batches = t.s_batches;
    cache_hits = t.s_cache_hits;
    range_hits = t.s_range_hits;
    pool_hits = t.s_pool_hits;
    cold_misses = t.s_cold;
    coalesced = t.s_coalesced;
    refused = t.s_refused;
    solves = t.s_solves;
    evictions = Plan_cache.evictions t.cache;
  }

let trace t = List.rev t.trace_rev

let clear_trace t = t.trace_rev <- []

let arena_stats t = Array.map (fun a -> (a.a_solves, a.a_busy)) t.arenas

type entry = { basis : Lp.Model.basis; budget : float; seq : int }

type t = {
  capacity : int;
  (* bucket lists are kept sorted by budget (ties by seq) so every scan
     below is over a canonically ordered list — no insertion-order leaks *)
  buckets : (string, entry list) Hashtbl.t;
  mutable seq : int;
  mutable mismatches : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Basis_pool.create: negative capacity";
  { capacity; buckets = Hashtbl.create 64; seq = 0; mismatches = 0 }

let by_budget a b =
  match Float.compare a.budget b.budget with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let bucket t shape = Option.value (Hashtbl.find_opt t.buckets shape) ~default:[]

let insert t ~shape ~budget basis =
  if t.capacity > 0 then begin
    let existing = bucket t shape in
    (* Buckets are homogeneous (the shape key determines the LP's
       dimensions); a disagreeing token means a fingerprinting bug, so it
       is counted and refused rather than handed to solvers. *)
    let shape_ok =
      match existing with
      | [] -> true
      | e :: _ ->
          let bn, bm = Lp.Model.basis_shape basis in
          let en, em = Lp.Model.basis_shape e.basis in
          bn = en && bm = em
    in
    if not shape_ok then t.mismatches <- t.mismatches + 1
    else begin
      let seq = t.seq in
      t.seq <- seq + 1;
      let kept = List.filter (fun e -> e.budget <> budget) existing in
      let kept =
        if List.length kept >= t.capacity then
          (* evict the oldest entry to make room for the newcomer *)
          match
            List.stable_sort
              (fun (a : entry) (b : entry) -> Int.compare a.seq b.seq)
              kept
          with
          | [] -> []
          | _oldest :: rest -> rest
        else kept
      in
      Hashtbl.replace t.buckets shape
        (List.stable_sort by_budget ({ basis; budget; seq } :: kept))
    end
  end

let lookup t ~shape ~budget =
  match bucket t shape with
  | [] -> None
  | entries ->
      (* Nearest budget; the sorted bucket makes ties resolve to the lower
         budget, then the older entry. *)
      let best =
        List.fold_left
          (fun acc e ->
            let d = Float.abs (e.budget -. budget) in
            match acc with
            | None -> Some (d, e)
            | Some (bd, _) when d < bd -> Some (d, e)
            | Some _ -> acc)
          None entries
      in
      Option.map (fun (_, e) -> e.basis) best

let size t =
  (* order-insensitive sum *)
  (Hashtbl.fold [@lint.allow "R2"])
    (fun _ entries acc -> acc + List.length entries)
    t.buckets 0

let dropped_shape_mismatches t = t.mismatches

(** Fingerprint-keyed plan cache with budget-range validity and
    deterministic LRU eviction.

    Two layers, both keyed by {!Fingerprint} renderings:

    - {e exact entries} ({!find}/{!add}): one served payload per exact
      fingerprint (budget included).  Re-serving one is free — no model
      build, no solve, no re-certification (the payload already carries
      the PR-3 report computed at exactly this budget).

    - {e families} ({!family}/{!anchor_family}/{!extend_family}): per
      budget-stripped fingerprint, the latest certified basis together
      with the closed budget interval [lo, hi] on which that basis is
      known optimal.  The range logic is sound by LP convexity: dual
      feasibility of a basis does not depend on the budget row's
      right-hand side, and the basic solution is affine in it, so a basis
      primal-feasible (certified, with zero pivots) at two budgets is
      optimal on the whole interval between them.  The serving layer
      therefore extends a family's range exactly when a warm re-solve at a
      new budget finishes in 0 iterations with the revised solver and
      passes certification — every extension is certifier-checked
      evidence, never an extrapolation.

    Eviction is deterministic: the least-recently-used entry goes first,
    ties broken towards the smaller insertion sequence number.  "Recently"
    is a logical clock ticked by cache operations, not wall time. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] bounds the exact entries and the families independently;
    0 disables the cache (every operation is a no-op / miss). *)

val find : 'a t -> key:string -> 'a option
(** Exact lookup; refreshes the entry's LRU stamp. *)

val add : 'a t -> key:string -> 'a -> unit
(** Insert or replace; evicts the LRU exact entry when over capacity. *)

val family : 'a t -> key:string -> (Lp.Model.basis * float * float) option
(** [(basis, lo, hi)] for a family key; refreshes the family's LRU
    stamp. *)

val anchor_family : 'a t -> key:string -> basis:Lp.Model.basis -> budget:float -> unit
(** Install (or reset) a family: the budget interval collapses to the
    single certified point [budget]. *)

val extend_family : 'a t -> key:string -> basis:Lp.Model.basis -> budget:float -> unit
(** Widen the family's interval to include [budget] and refresh its basis.
    Caller obligation: only after a certified 0-pivot re-solve at
    [budget] (see the preamble); installs the family if absent. *)

val size : 'a t -> int
(** Exact entries currently held. *)

val evictions : 'a t -> int
(** Exact entries evicted since creation. *)

(** Multi-tenant top-k query serving.

    The paper's planners are batch jobs: one PROSPECTOR run plans one
    query on one network.  This module turns them into a service: tenants
    {!register} networks (topology + cost model + sample window), then
    submit streams of top-k queries against them; the server admits
    queries in deterministic batches, canonicalizes each to a
    {!Fingerprint}, coalesces duplicates in flight, serves repeats from a
    {!Plan_cache} (exact hits and certified budget-range hits), warm-starts
    misses from a shared {!Basis_pool}, and fans the remaining LP solves
    across OCaml 5 domains.

    {b Certification discipline}: an uncertified plan is never served.
    Every {!Served} response carries the PR-3 certification report that
    admitted its LP solution — including responses served from the cache,
    whose report was computed at exactly the served budget — and, when the
    query requested an (ε, δ) target, a PR-7 {!Prospector.Guarantee.t} meeting it.
    Greedy fallbacks, failed certifications and unattainable guarantee
    targets yield {!Refused}, never a silently weaker answer.

    {b Determinism}: all admission, cache, pool and coalescing decisions
    happen on the coordinating domain between fan-out barriers, and every
    solve is a pure function of coordinator-chosen inputs (model + warm
    basis).  Worker domains only decide {e when} work runs, never {e what}
    it computes, so identical query streams produce bit-identical
    responses and hit/miss traces whatever [domains] is.  Tasks are
    claimed from a fixed-order queue through one atomic cursor — a
    deterministic work-stealing order: the claim sequence is the admission
    order even though the claimant identities are timing-dependent.

    {b Telemetry}: the server keeps its own always-on tallies ({!stats})
    and mirrors them to gated [serve.*] Obs counters, with one [Serve]
    trace span per admission batch.  The Obs registry is single-domain by
    design, so while telemetry or tracing is enabled the server runs its
    solves inline (effective [domains] = 1); parallel fan-out is for the
    telemetry-off serving configuration. *)

type config = {
  cache_capacity : int;  (** exact plan-cache entries (and families); 0 disables *)
  pool_capacity : int;  (** warm-basis pool entries per LP shape; 0 disables *)
  batch : int;  (** admission batch size *)
  domains : int;  (** worker domains for miss fan-out (>= 1) *)
  max_lp_iterations : int option;  (** per-solve pivot cap (tests) *)
  lp_deadline : float option;  (** per-solve wall-clock budget, seconds *)
}

val default_config : config
(** cache 256, pool 8 per shape, batch 32, domains 1, no solver caps. *)

type t

val create : ?config:config -> unit -> t

val register :
  t -> Sensor.Topology.t -> Sensor.Cost.t -> Sampling.Sample_set.t -> int
(** Register a tenant network and its sample window; returns the network
    id queries name.  The window's raw values are re-ranked per queried
    [k], so tenants may ask any [1 <= k <= n] regardless of the [k] the
    window was drawn at. *)

val update_window : t -> network:int -> Sampling.Sample_set.t -> unit
(** Install a fresh sample window and bump the network's window version:
    cached plans for older windows age out of the LRU naturally (their
    fingerprints can no longer be formed), while pooled bases of the same
    shape remain available as warm-start hints. *)

val network_count : t -> int

type query = {
  network : int;
  k : int;
  budget : float;
  guarantee : (float * float) option;  (** optional (ε, δ) target *)
}

val query : ?guarantee:float * float -> network:int -> k:int -> float -> query
(** [query ~network ~k budget] names a top-k query against a registered
    network. *)

(** How a served plan was obtained. *)
type source =
  | Cache_hit  (** exact fingerprint: no model build, no solve *)
  | Range_hit
      (** same family, budget inside the certified budget-range: warm
          re-solve from the family basis (usually 0 pivots) + certify *)
  | Pool_warm
      (** miss warm-started from a pooled basis — the query's own family
          basis when its budget falls outside the family's certified
          range (a certified 0-pivot re-solve then widens the range to
          cover it), otherwise the shared pool's nearest-budget basis *)
  | Cold  (** miss solved from scratch *)

val source_to_string : source -> string

type response = {
  plan : Prospector.Plan.t;
  objective : float;  (** LP objective (expected covered ones) *)
  provenance : Prospector.Robust_plan.provenance;
  certify : Lp.Certify.report;  (** always present: uncertified is refused *)
  guarantee : Prospector.Guarantee.t option;
      (** present iff the query requested a target; always meets it *)
  source : source;
  coalesced : bool;
      (** served by riding an identical in-flight query's solve *)
  solve_ms : float;  (** this query's own solve time; 0 when not solved *)
  budget : float;  (** the budget the plan is certified at (the query's) *)
}

type outcome = Served of response | Refused of string

val run : t -> query array -> outcome array
(** Serve a stream: split into admission batches, decide, fan out, commit.
    [outcomes.(i)] answers [queries.(i)].  Never raises on solver failure
    or bad queries — both are {!Refused}. *)

type stats = {
  queries : int;
  batches : int;
  cache_hits : int;
  range_hits : int;
  pool_hits : int;
  cold_misses : int;
  coalesced : int;
  refused : int;
  solves : int;  (** LP plans actually computed (tasks executed) *)
  evictions : int;  (** plan-cache evictions *)
}

val stats : t -> stats
(** Always-on tallies since creation (independent of Obs gating). *)

val trace : t -> (string * string) list
(** One [(exact fingerprint key, tag)] pair per admitted query, in
    admission order — the determinism witness the tests compare across
    domain counts.  Tags: ["cache"], ["range"], ["pool"], ["cold"],
    ["coalesced"], ["refused"]. *)

val clear_trace : t -> unit

val arena_stats : t -> (int * float) array
(** Per-domain-slot solver-arena rollup: (solves executed, busy seconds),
    index 0 being the coordinator's inline slot. *)

(** Canonical query identities for the serving layer.

    Every admitted query is canonicalized to a fingerprint over
    (network, sample-window version, [k], budget, guarantee target).  Two
    queries with equal fingerprints are the {e same} query: they coalesce
    in flight and share a plan-cache entry.  The fingerprint minus the
    budget — the {!family_key} — identifies the set of queries whose LPs
    differ only in the budget row's right-hand side, which is the unit of
    budget-range plan validity and of warm-basis reuse.

    All hashing is explicit FNV-1a over the canonical bit patterns: no
    [Hashtbl.hash], no dependence on in-memory layout, stable across runs
    and processes (R1 determinism). *)

type t = private {
  network : int;  (** registered network id *)
  window : int;  (** the network's sample-window version when admitted *)
  k : int;
  budget_bits : int64;  (** IEEE-754 bits of the canonicalized budget *)
  guarantee_bits : int64;  (** hash of the (ε, δ) target; 0 when absent *)
  topo_hash : int64;  (** structural hash of the network's spanning tree *)
  samples : int;  (** window size — with [topo_hash] and [k], the LP shape *)
}

val make :
  network:int ->
  window:int ->
  k:int ->
  budget:float ->
  guarantee:(float * float) option ->
  topo_hash:int64 ->
  samples:int ->
  t
(** Canonicalize (negative zero budgets become [0.]).  The caller has
    already validated the query; this never raises. *)

val hash_parents : root:int -> int array -> int64
(** Structural hash of a spanning tree (root + parent array).  Equal trees
    hash equal whatever process built them, so tenants registering the
    same physical network share warm-basis pool buckets. *)

val exact_key : t -> string
(** The full identity, budget included — the plan-cache key. *)

val family_key : t -> string
(** The identity minus the budget — the budget-range validity family. *)

val shape_key : t -> string
(** (topo_hash, window size, k) — the LP-shape bucket of the warm-basis
    pool.  Deliberately excludes the window {e version}: a basis from an
    older window of the same shape is still a valid (and useful) warm
    start for the perturbed LP. *)

val pp : Format.formatter -> t -> unit

(** Per-run aggregation of a trace: one row per (kind, name) with counts,
    wall-clock totals and summed numeric attributes, plus a per-kind
    duration histogram so latency percentiles survive aggregation.  Used
    by [bin/obs_report] to pretty-print any exported trace file. *)

type row = {
  kind : Trace.kind;
  name : string;
  count : int;
  total_dur_s : float;
  max_dur_s : float;
  attr_sums : (string * float) list;  (** numeric attrs, summed *)
}

type t

val of_events : Trace.event list -> t

val rows : t -> row list
(** Sorted by (kind, name). *)

val duration_histogram : t -> Trace.kind -> Metrics.histogram option
(** Histogram over the [dur_s] of this kind's events ([> 0] only). *)

val pp : Format.formatter -> t -> unit

(* Process-wide metrics: counters, float accumulators, gauges and
   log-scale histograms behind one enable flag.

   Two cost regimes coexist:

   - {e registered} instruments live in a global registry and are gated on
     {!enabled}: while telemetry is off every operation is one load and a
     conditional branch, no allocation, no clock reads — cheap enough to
     leave in solver inner loops;
   - {e local} counters (from {!local}) always count and are never
     registered.  They are the substrate for per-call statistics that are
     part of a public API (e.g. the revised simplex [stats] record must be
     exact whether or not telemetry is collecting).

   The registry is deliberately not thread-safe: the whole repository is
   single-domain, and the instruments are plain mutable cells so the hot
   paths stay allocation-free. *)

let on = ref false

let enabled () = !on

let set_enabled b = on := b

type counter = { cname : string; mutable count : int; gated : bool }

type fsum = { fname : string; mutable total : float }

type gauge = { gname : string; mutable gvalue : float }

(* ---- log-scale histogram ----

   Fixed layout shared by every histogram so merges never need
   reconciliation: [buckets_per_decade] geometric buckets per decade from
   10^lo_decade up to 10^hi_decade, plus an underflow bucket 0 and an
   overflow bucket [n_buckets - 1].  Bucket i (1 <= i <= regular) spans
   [bound (i-1), bound i) with bound i = 10^(lo_decade + i/bpd). *)

let buckets_per_decade = 8

let lo_decade = -9 (* 1 ns, when observations are seconds *)

let hi_decade = 9

let regular_buckets = buckets_per_decade * (hi_decade - lo_decade)

let n_buckets = regular_buckets + 2

(* Lower bound of regular bucket [i] (1-based among regular buckets). *)
let bucket_lower i =
  10. ** (float_of_int lo_decade
         +. (float_of_int (i - 1) /. float_of_int buckets_per_decade))

let bucket_upper i = bucket_lower (i + 1)

type histogram = {
  hname : string;
  hgated : bool;
  buckets : int array; (* length n_buckets *)
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

let bucket_index v =
  if v < bucket_lower 1 then 0
  else if v >= bucket_lower (regular_buckets + 1) then n_buckets - 1
  else
    let idx =
      1
      + int_of_float
          (Float.floor
             (float_of_int buckets_per_decade
             *. (Float.log10 v -. float_of_int lo_decade)))
    in
    (* log10 rounding at exact bucket boundaries can land one off. *)
    let idx = Int.max 1 (Int.min regular_buckets idx) in
    if v < bucket_lower idx then idx - 1
    else if v >= bucket_upper idx then idx + 1
    else idx

let fresh_histogram ?(gated = true) name =
  {
    hname = name;
    hgated = gated;
    buckets = Array.make n_buckets 0;
    hcount = 0;
    hsum = 0.;
    hmin = infinity;
    hmax = neg_infinity;
  }

let observe_unchecked h v =
  let v = Float.max 0. v in
  let i = bucket_index v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. v;
  if v < h.hmin then h.hmin <- v;
  if v > h.hmax then h.hmax <- v

let observe h v = if (not h.hgated) || !on then observe_unchecked h v

let hist_count h = h.hcount

let hist_sum h = h.hsum

let hist_min h = if h.hcount = 0 then Float.nan else h.hmin

let hist_max h = if h.hcount = 0 then Float.nan else h.hmax

let hist_mean h =
  if h.hcount = 0 then Float.nan else h.hsum /. float_of_int h.hcount

let merge_into ~into src =
  for i = 0 to n_buckets - 1 do
    into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
  done;
  into.hcount <- into.hcount + src.hcount;
  into.hsum <- into.hsum +. src.hsum;
  if src.hcount > 0 then begin
    if src.hmin < into.hmin then into.hmin <- src.hmin;
    if src.hmax > into.hmax then into.hmax <- src.hmax
  end

(* Percentile by geometric interpolation inside the owning bucket, clamped
   to the observed [hmin, hmax] so a single observation reports itself
   exactly and no estimate escapes the data's range. *)
let percentile h p =
  if h.hcount = 0 then Float.nan
  else begin
    let p = Float.max 0. (Float.min 100. p) in
    let target =
      Int.max 1
        (int_of_float (Float.ceil (p /. 100. *. float_of_int h.hcount)))
    in
    let rec find i cum =
      if i >= n_buckets then (n_buckets - 1, h.hcount)
      else
        let cum' = cum + h.buckets.(i) in
        if cum' >= target then (i, cum) else find (i + 1) cum'
    in
    let i, cum_before = find 0 0 in
    let lo, hi =
      if i = 0 then (h.hmin, Float.min h.hmax (bucket_lower 1))
      else if i = n_buckets - 1 then (bucket_lower (regular_buckets + 1), h.hmax)
      else (bucket_lower i, bucket_upper i)
    in
    let lo = Float.max lo h.hmin and hi = Float.min hi h.hmax in
    let est =
      if h.buckets.(i) = 0 || lo <= 0. || hi <= lo then Float.max lo hi
      else
        let frac =
          (float_of_int (target - cum_before) -. 0.5)
          /. float_of_int h.buckets.(i)
        in
        lo *. ((hi /. lo) ** Float.max 0. (Float.min 1. frac))
    in
    Float.max h.hmin (Float.min h.hmax est)
  end

(* ---- timers ---- *)

type timer = { tname : string; hist : histogram }

let record_s t secs = if !on then observe_unchecked t.hist secs

let time t f =
  if !on then begin
    let t0 = Unix.gettimeofday () in
    let finally () = observe_unchecked t.hist (Unix.gettimeofday () -. t0) in
    Fun.protect ~finally f
  end
  else f ()

let timer_histogram t = t.hist

(* ---- registry ---- *)

type instrument =
  | Counter of counter
  | Fsum of fsum
  | Gauge of gauge
  | Histogram of histogram
  | Timer of timer

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

let intern name make classify =
  match Hashtbl.find_opt registry name with
  | Some i -> (
      match classify i with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf
               "Obs.Metrics: %S is already registered with another type" name))
  | None ->
      let x = make () in
      x

let counter name =
  intern name
    (fun () ->
      let c = { cname = name; count = 0; gated = true } in
      Hashtbl.replace registry name (Counter c);
      c)
    (function Counter c -> Some c | _ -> None)

let local name = { cname = name; count = 0; gated = false }

let fsum name =
  intern name
    (fun () ->
      let f = { fname = name; total = 0. } in
      Hashtbl.replace registry name (Fsum f);
      f)
    (function Fsum f -> Some f | _ -> None)

let gauge name =
  intern name
    (fun () ->
      let g = { gname = name; gvalue = Float.nan } in
      Hashtbl.replace registry name (Gauge g);
      g)
    (function Gauge g -> Some g | _ -> None)

let histogram name =
  intern name
    (fun () ->
      let h = fresh_histogram name in
      Hashtbl.replace registry name (Histogram h);
      h)
    (function Histogram h -> Some h | _ -> None)

let timer name =
  intern name
    (fun () ->
      let t = { tname = name; hist = fresh_histogram name } in
      Hashtbl.replace registry name (Timer t);
      t)
    (function Timer t -> Some t | _ -> None)

let local_histogram name = fresh_histogram ~gated:false name

(* ---- operations ---- *)

let add c n = if (not c.gated) || !on then c.count <- c.count + n

let incr c = add c 1

let value c = c.count

let counter_name c = c.cname

let accum f x = if !on then f.total <- f.total +. x

let fsum_value f = f.total

let set_gauge g x = if !on then g.gvalue <- x

let gauge_value g = g.gvalue

(* ---- snapshots ---- *)

type snapshot_value =
  | Count of int
  | Total of float
  | Level of float
  | Distribution of {
      count : int;
      sum : float;
      min : float;
      max : float;
      p50 : float;
      p90 : float;
      p99 : float;
    }

let snapshot_of_histogram h =
  Distribution
    {
      count = h.hcount;
      sum = h.hsum;
      min = hist_min h;
      max = hist_max h;
      p50 = percentile h 50.;
      p90 = percentile h 90.;
      p99 = percentile h 99.;
    }

let snapshot () =
  Hashtbl.fold
    (fun name i acc ->
      let v =
        match i with
        | Counter c -> Count c.count
        | Fsum f -> Total f.total
        | Gauge g -> Level g.gvalue
        | Histogram h -> snapshot_of_histogram h
        | Timer t -> snapshot_of_histogram t.hist
      in
      (name, v) :: acc)
    registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  (* Zeroing every instrument is order-insensitive. *)
  (Hashtbl.iter [@lint.allow "R2"])
    (fun _ i ->
      match i with
      | Counter c -> c.count <- 0
      | Fsum f -> f.total <- 0.
      | Gauge g -> g.gvalue <- Float.nan
      | Histogram h | Timer { hist = h; _ } ->
          Array.fill h.buckets 0 n_buckets 0;
          h.hcount <- 0;
          h.hsum <- 0.;
          h.hmin <- infinity;
          h.hmax <- neg_infinity)
    registry

(* Per-run aggregation of a trace: one row per (kind, name) with counts,
   wall-clock totals and the sums of every numeric attribute, plus a
   duration histogram per kind so percentiles survive aggregation. *)

type row = {
  kind : Trace.kind;
  name : string;
  count : int;
  total_dur_s : float;
  max_dur_s : float;
  attr_sums : (string * float) list; (* numeric attrs only, summed *)
}

type t = { rows : row list; dur_hists : (Trace.kind * Metrics.histogram) list }

let of_events evs =
  let tbl : (Trace.kind * string, row) Hashtbl.t = Hashtbl.create 16 in
  let hists : (Trace.kind, Metrics.histogram) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      let key = (e.Trace.kind, e.Trace.name) in
      let row =
        match Hashtbl.find_opt tbl key with
        | Some r -> r
        | None ->
            {
              kind = e.Trace.kind;
              name = e.Trace.name;
              count = 0;
              total_dur_s = 0.;
              max_dur_s = 0.;
              attr_sums = [];
            }
      in
      let attr_sums =
        List.fold_left
          (fun sums (k, _) ->
            match Trace.number e k with
            | None -> sums
            | Some x ->
                let prev = Option.value ~default:0. (List.assoc_opt k sums) in
                (k, prev +. x) :: List.remove_assoc k sums)
          row.attr_sums e.Trace.attrs
      in
      Hashtbl.replace tbl key
        {
          row with
          count = row.count + 1;
          total_dur_s = row.total_dur_s +. e.Trace.dur_s;
          max_dur_s = Float.max row.max_dur_s e.Trace.dur_s;
          attr_sums;
        };
      let h =
        match Hashtbl.find_opt hists e.Trace.kind with
        | Some h -> h
        | None ->
            let h =
              Metrics.local_histogram
                (Printf.sprintf "report.%s.dur_s"
                   (Trace.kind_to_string e.Trace.kind))
            in
            Hashtbl.replace hists e.Trace.kind h;
            h
      in
      if e.Trace.dur_s > 0. then Metrics.observe h e.Trace.dur_s)
    evs;
  (* Canonical order everywhere downstream (pp, JSONL/CSV exporters, the
     BENCH_PR4.json record): rows by (kind, name), attr totals by key,
     histograms by kind — never hash-table order. *)
  let rows =
    Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
    |> List.sort (fun a b ->
           match Trace.compare_kind a.kind b.kind with
           | 0 -> String.compare a.name b.name
           | c -> c)
    |> List.map (fun r ->
           {
             r with
             attr_sums =
               List.sort
                 (fun (a, _) (b, _) -> String.compare a b)
                 r.attr_sums;
           })
  in
  let dur_hists =
    Hashtbl.fold (fun k h acc -> (k, h) :: acc) hists []
    |> List.sort (fun (a, _) (b, _) -> Trace.compare_kind a b)
  in
  { rows; dur_hists }

let rows t = t.rows

let duration_histogram t kind = List.assoc_opt kind t.dur_hists

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "%-10s %-24s %8s %12s %12s@," "kind" "name" "count"
    "total_ms" "max_ms";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %-24s %8d %12.3f %12.3f@,"
        (Trace.kind_to_string r.kind)
        r.name r.count
        (1000. *. r.total_dur_s)
        (1000. *. r.max_dur_s))
    t.rows;
  List.iter
    (fun (k, h) ->
      if Metrics.hist_count h > 0 then
        Format.fprintf ppf
          "%s durations: n=%d p50=%.3fms p90=%.3fms p99=%.3fms max=%.3fms@,"
          (Trace.kind_to_string k) (Metrics.hist_count h)
          (1000. *. Metrics.percentile h 50.)
          (1000. *. Metrics.percentile h 90.)
          (1000. *. Metrics.percentile h 99.)
          (1000. *. Metrics.hist_max h))
    t.dur_hists;
  List.iter
    (fun r ->
      if r.attr_sums <> [] then begin
        Format.fprintf ppf "%s/%s attr totals:"
          (Trace.kind_to_string r.kind)
          r.name;
        List.iter
          (fun (k, v) -> Format.fprintf ppf " %s=%s" k (Json.number_to_string v))
          r.attr_sums;
        Format.fprintf ppf "@,"
      end)
    t.rows;
  Format.fprintf ppf "@]"

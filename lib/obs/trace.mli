(** Typed trace events (spans) with an installable in-memory sink and
    JSON-lines / CSV exporters.

    Instrumented code calls {!emit} unconditionally; with no sink
    installed — the default — the call costs one load and a branch.
    Install a sink with {!install} around a run, then export its events
    with {!to_file} (JSON-lines, re-readable with {!read_jsonl}) or
    {!to_csv_file}, or aggregate them with {!Report}. *)

(** The instrumented span kinds: LP solves, certification passes, planner
    decisions, whole simulated collection rounds, individual link-layer
    retransmissions, statistical (ε, δ) guarantee computations,
    self-healing plan-surgery passes, and serving-layer admission
    batches. *)
type kind =
  | Solve | Certify | Plan | Epoch | Retransmit | Guarantee | Repair | Serve

type attr = Int of int | Float of float | Str of string | Bool of bool

type event = {
  kind : kind;
  name : string;  (** instrumentation point, e.g. ["lp.revised"] *)
  start_s : float;  (** wall-clock start (Unix seconds); 0 when untimed *)
  dur_s : float;  (** wall-clock duration; 0 for point events *)
  attrs : (string * attr) list;
}

type sink

val create : unit -> sink

val install : sink option -> unit
(** Set or clear the global sink receiving subsequent {!emit} calls. *)

val active : unit -> bool
(** Whether a sink is installed — check before computing costly attrs. *)

val now : unit -> float
(** [Unix.gettimeofday], for span timestamps. *)

val emit :
  kind -> name:string -> ?start_s:float -> ?dur_s:float ->
  (string * attr) list -> unit
(** Record one event in the installed sink; no-op without one. *)

val events : sink -> event list
(** In emission order. *)

val length : sink -> int

val clear : sink -> unit

(** {1 Export / import} *)

val kind_to_string : kind -> string

val kind_of_string : string -> kind option

val compare_kind : kind -> kind -> int
(** Total order on kinds (declaration order); lets aggregators and
    exporters sort without polymorphic compare. *)

val event_to_json : event -> Json.t

val event_of_json : Json.t -> event option

val write_jsonl : out_channel -> event list -> unit

val to_file : string -> event list -> unit
(** JSON-lines: one event object per line. *)

val read_jsonl : string -> (event list, string) result
(** Parse a JSON-lines trace file back; blank lines are skipped.  Whole
    floats come back as [Int] attrs (JSON has one number type); use
    {!number} to consume numeric attrs uniformly. *)

val write_csv : out_channel -> event list -> unit

val to_csv_file : string -> event list -> unit
(** Columns [kind,name,start_s,dur_s,attrs]; attrs flattened to
    [k=v;k=v] in one RFC-4180-quoted field. *)

(** {1 Attr access} *)

val find_attr : event -> string -> attr option

val number : event -> string -> float option
(** Numeric attr as float, whether stored as [Int] or [Float]. *)

(** Process-wide metrics: counters, float accumulators, gauges, timers and
    log-scale histograms behind one enable flag.

    Registered instruments (made by {!counter}, {!fsum}, {!gauge},
    {!histogram}, {!timer}) are interned by name in a global registry and
    are {e gated}: while {!enabled} is false every update is a no-op
    costing one branch — no allocation, no clock read — so instrumentation
    can stay in solver and simulator hot paths unconditionally.  {!local}
    counters are the exception: never registered, never gated, they back
    per-call statistics that public APIs promise to report exactly (the
    revised simplex [stats] record) whether or not telemetry is on.

    Histograms use a fixed log-scale layout (8 buckets per decade over
    10{^-9}..10{^9}) shared by all instances, so {!merge_into} is a plain
    bucket-wise sum and percentiles of merged distributions are computed
    the same way as for single ones.  Not thread-safe by design: the
    repository is single-domain and the hot-path cost budget excludes
    locks. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Telemetry is off by default; {!set_enabled} [true] arms every
    registered instrument (and {!Trace} emission points check it too). *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Registered, gated counter; interned by name.
    @raise Invalid_argument if the name is registered with another type. *)

val local : string -> counter
(** Fresh unregistered counter that always counts, even when disabled. *)

val incr : counter -> unit

val add : counter -> int -> unit

val value : counter -> int

val counter_name : counter -> string

(** {1 Float accumulators and gauges} *)

type fsum

val fsum : string -> fsum
(** Registered, gated sum of float contributions (e.g. millijoules). *)

val accum : fsum -> float -> unit

val fsum_value : fsum -> float

type gauge

val gauge : string -> gauge
(** Registered, gated last-value instrument; reads NaN before any set. *)

val set_gauge : gauge -> float -> unit

val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : string -> histogram
(** Registered, gated histogram; interned by name. *)

val local_histogram : string -> histogram
(** Fresh unregistered histogram that records even while disabled (for
    offline aggregation, e.g. {!Report}). *)

val observe : histogram -> float -> unit
(** Record one sample (clamped below at 0); no-op while disabled for
    registered histograms, always recorded for local ones. *)

val percentile : histogram -> float -> float
(** [percentile h p] for [p] in [0, 100]: geometric interpolation inside
    the owning log-scale bucket, clamped to the observed min/max (so a
    single sample reports itself exactly).  NaN when empty. *)

val merge_into : into:histogram -> histogram -> unit
(** Bucket-wise sum; count/sum/min/max combine accordingly. *)

val hist_count : histogram -> int

val hist_sum : histogram -> float

val hist_mean : histogram -> float

val hist_min : histogram -> float

val hist_max : histogram -> float

val bucket_lower : int -> float
(** Lower bound of 1-based regular bucket [i]; exposed for boundary tests. *)

val bucket_upper : int -> float

val buckets_per_decade : int

(** {1 Timers} *)

type timer

val timer : string -> timer
(** A histogram of durations in seconds. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, recording its wall-clock duration.  While disabled the
    thunk runs untimed (no clock reads). *)

val record_s : timer -> float -> unit
(** Record an externally measured duration, seconds. *)

val timer_histogram : timer -> histogram

(** {1 Registry} *)

type snapshot_value =
  | Count of int
  | Total of float
  | Level of float
  | Distribution of {
      count : int;
      sum : float;
      min : float;
      max : float;
      p50 : float;
      p90 : float;
      p99 : float;
    }

val snapshot : unit -> (string * snapshot_value) list
(** Every registered instrument with its current value, sorted by name. *)

val reset : unit -> unit
(** Zero every registered instrument (local counters are untouched). *)

(* Typed trace events with an installable in-memory sink.

   Instrumentation points call {!emit}; with no sink installed (the
   default) the call is one load and a branch.  Sinks record events in
   emission order; exporters render JSON-lines (one event per line, parse
   it back with {!read_jsonl}) or CSV. *)

type kind =
  | Solve | Certify | Plan | Epoch | Retransmit | Guarantee | Repair | Serve

type attr =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type event = {
  kind : kind;
  name : string;
  start_s : float;
  dur_s : float;
  attrs : (string * attr) list;
}

type sink = { mutable rev_events : event list; mutable count : int }

let current : sink option ref = ref None

let create () = { rev_events = []; count = 0 }

let install s = current := s

let active () = !current <> None

let now () = Unix.gettimeofday ()

let emit kind ~name ?(start_s = 0.) ?(dur_s = 0.) attrs =
  match !current with
  | None -> ()
  | Some s ->
      s.rev_events <- { kind; name; start_s; dur_s; attrs } :: s.rev_events;
      s.count <- s.count + 1

let events s = List.rev s.rev_events

let length s = s.count

let clear s =
  s.rev_events <- [];
  s.count <- 0

let kind_to_string = function
  | Solve -> "solve"
  | Certify -> "certify"
  | Plan -> "plan"
  | Epoch -> "epoch"
  | Retransmit -> "retransmit"
  | Guarantee -> "guarantee"
  | Repair -> "repair"
  | Serve -> "serve"

(* Declaration-order rank, so aggregators can sort without polymorphic
   compare and exporter output has one canonical kind order. *)
let kind_rank = function
  | Solve -> 0
  | Certify -> 1
  | Plan -> 2
  | Epoch -> 3
  | Retransmit -> 4
  | Guarantee -> 5
  | Repair -> 6
  | Serve -> 7

let compare_kind a b = Int.compare (kind_rank a) (kind_rank b)

let kind_of_string = function
  | "solve" -> Some Solve
  | "certify" -> Some Certify
  | "plan" -> Some Plan
  | "epoch" -> Some Epoch
  | "retransmit" -> Some Retransmit
  | "guarantee" -> Some Guarantee
  | "repair" -> Some Repair
  | "serve" -> Some Serve
  | _ -> None

(* ---- JSON-lines ---- *)

let attr_to_json = function
  | Int i -> Json.Num (float_of_int i)
  | Float x -> Json.Num x
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

(* Ints and floats share JSON's single number type; integral numbers come
   back as [Int], so emit whole-valued floats as [Float] only if the
   distinction never matters to a consumer (it does not: every attr
   consumer goes through {!number}). *)
let attr_of_json = function
  | Json.Num x ->
      if Float.is_integer x && Float.abs x < 1e15 then
        Some (Int (int_of_float x))
      else Some (Float x)
  | Json.Str s -> Some (Str s)
  | Json.Bool b -> Some (Bool b)
  | _ -> None

let event_to_json e =
  Json.Obj
    [
      ("kind", Json.Str (kind_to_string e.kind));
      ("name", Json.Str e.name);
      ("start_s", Json.Num e.start_s);
      ("dur_s", Json.Num e.dur_s);
      ( "attrs",
        Json.Obj (List.map (fun (k, v) -> (k, attr_to_json v)) e.attrs) );
    ]

let event_of_json j =
  let ( let* ) = Option.bind in
  let* kind = Option.bind (Json.member "kind" j) Json.to_str in
  let* kind = kind_of_string kind in
  let* name = Option.bind (Json.member "name" j) Json.to_str in
  let* start_s = Option.bind (Json.member "start_s" j) Json.to_num in
  let* dur_s = Option.bind (Json.member "dur_s" j) Json.to_num in
  match Json.member "attrs" j with
  | Some (Json.Obj kvs) ->
      let attrs =
        List.filter_map
          (fun (k, v) -> Option.map (fun a -> (k, a)) (attr_of_json v))
          kvs
      in
      Some { kind; name; start_s; dur_s; attrs }
  | _ -> None

let write_jsonl oc evs =
  List.iter
    (fun e ->
      output_string oc (Json.to_string (event_to_json e));
      output_char oc '\n')
    evs

let to_file path evs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> write_jsonl oc evs)

let read_jsonl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc lineno =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> go acc (lineno + 1)
        | line -> (
            match Json.parse line with
            | Error msg ->
                Error (Printf.sprintf "line %d: %s" lineno msg)
            | Ok j -> (
                match event_of_json j with
                | Some e -> go (e :: acc) (lineno + 1)
                | None ->
                    Error (Printf.sprintf "line %d: not a trace event" lineno)))
      in
      go [] 1)

(* ---- CSV ----

   Fixed columns [kind,name,start_s,dur_s,attrs]; the attribute list is
   flattened to [k=v] pairs joined with ';' inside one quoted field, so
   the file stays loadable by anything that speaks RFC-4180. *)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let attr_value_to_string = function
  | Int i -> string_of_int i
  | Float x -> Json.number_to_string x
  | Str s -> s
  | Bool b -> string_of_bool b

let write_csv oc evs =
  output_string oc "kind,name,start_s,dur_s,attrs\n";
  List.iter
    (fun e ->
      let attrs =
        String.concat ";"
          (List.map
             (fun (k, v) -> k ^ "=" ^ attr_value_to_string v)
             e.attrs)
      in
      Printf.fprintf oc "%s,%s,%s,%s,%s\n"
        (kind_to_string e.kind)
        (csv_escape e.name)
        (Json.number_to_string e.start_s)
        (Json.number_to_string e.dur_s)
        (csv_escape attrs))
    evs

let to_csv_file path evs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> write_csv oc evs)

(* ---- attr helpers for consumers ---- *)

let find_attr e key = List.assoc_opt key e.attrs

let number e key =
  match find_attr e key with
  | Some (Int i) -> Some (float_of_int i)
  | Some (Float x) -> Some x
  | _ -> None

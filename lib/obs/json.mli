(** Minimal self-contained JSON reader/writer.

    Backs the {!Trace} JSON-lines exporter, the telemetry bench record and
    the bench-regression gate; exists because the build environment offers
    no JSON library.  Numbers are OCaml floats (exact for every integer up
    to 2{^53}, which covers all emitted counters). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact single-line rendering (the JSON-lines form). *)

val number_to_string : float -> string
(** Render one number the way {!to_string} does: integers without a
    decimal point, other values with enough digits to round-trip. *)

val to_string_pretty : t -> string
(** Indented rendering for committed artifacts; ends with a newline. *)

val parse : string -> (t, string) result

val parse_exn : string -> t
(** @raise Parse_error on malformed input. *)

val of_file : string -> (t, string) result
(** Parse a whole file.  I/O exceptions propagate. *)

val member : string -> t -> t option
(** Object member lookup; [None] on non-objects and absent keys. *)

val to_num : t -> float option

val to_str : t -> string option

val to_bool : t -> bool option

val to_list : t -> t list option

(* Performance-regression gate over BENCH_*.json records.

   Both files are flattened to dotted numeric paths; the gated keys —
   solve-time and iteration-count leaves — must agree within a relative
   tolerance, two-sided: a fresh value far {e below} the baseline also
   fails, because the committed baseline is the enforced trajectory and a
   large improvement means it must be refreshed (rerun the bench and
   commit the new record), not silently outrun.

   Timing keys whose values sit under [min_ms] on both sides are skipped:
   sub-millisecond measurements are noise-dominated and would make the
   gate flap.  Deterministic keys (iteration counts) get a small absolute
   slack instead, covering legitimate zero baselines (a perfect warm
   start re-solves in 0 iterations). *)

type key_class = Time_ms | Iterations | Energy_mj | Count

type outcome = {
  path : string;
  cls : key_class;
  baseline : float;
  fresh : float;
  ok : bool;
  skipped : bool; (* under the noise floor; reported but never failing *)
}

type verdict = {
  outcomes : outcome list;
  missing : string list; (* gated paths present in baseline, absent fresh *)
  pass : bool;
}

(* ---- flattening ---- *)

let flatten json =
  let rec go prefix acc = function
    | Json.Num x -> (prefix, x) :: acc
    | Json.Obj kvs ->
        List.fold_left
          (fun acc (k, v) ->
            let p = if prefix = "" then k else prefix ^ "." ^ k in
            go p acc v)
          acc kvs
    | Json.List xs ->
        List.fold_left
          (fun (acc, i) v ->
            (go (Printf.sprintf "%s[%d]" prefix i) acc v, i + 1))
          (acc, 0) xs
        |> fst
    | Json.Null | Json.Bool _ | Json.Str _ -> acc
  in
  List.rev (go "" [] json)

(* The gated keys, by final path segment.  [pr1_seed_baseline] is a frozen
   historical block re-embedded verbatim in every record: comparing it
   would always pass and only add noise to reports, so it is excluded. *)
let classify path =
  if String.length path >= 17 && String.sub path 0 17 = "pr1_seed_baseline"
  then None
  else
    let last =
      match String.rindex_opt path '.' with
      | None -> path
      | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    in
    match last with
    | "ms_per_solve" | "solve_ms" | "cold_ms" | "warm_ms" | "repair_ms"
    | "pooled_warm_ms" | "cache_hit_ms" | "makespan_ms" | "ms_per_query" ->
        Some Time_ms
    | "recovery_mj" | "delta_install_mj" -> Some Energy_mj
    (* Serving-layer cache/pool tallies: the workload is a fixed seeded
       stream, so every hit/miss/eviction count is deterministic and the
       gate holds it exactly — a count drift is a behavior change in
       admission, caching or eviction, never noise. *)
    | "cache_hits" | "cache_misses" | "range_hits" | "pool_hits"
    | "cold_misses" | "coalesced" | "evictions" | "refused" ->
        Some Count
    | _ ->
        let n = String.length last in
        if
          last = "iterations"
          || (n > 11 && String.sub last (n - 11) 11 = "_iterations")
        then Some Iterations
        else None

(* ---- comparison ---- *)

let default_tolerance = 0.30

let default_min_ms = 1.0

let default_iter_slack = 2.

let compare_values ?(tolerance = default_tolerance) ?(min_ms = default_min_ms)
    ?(iter_slack = default_iter_slack) ~baseline ~fresh () =
  let base_leaves = flatten baseline and fresh_leaves = flatten fresh in
  let outcomes = ref [] and missing = ref [] in
  List.iter
    (fun (path, b) ->
      match classify path with
      | None -> ()
      | Some cls -> (
          match List.assoc_opt path fresh_leaves with
          | None -> missing := path :: !missing
          | Some f ->
              let skipped = cls = Time_ms && b <= min_ms && f <= min_ms in
              let ok =
                if skipped then true
                else if cls = Iterations && Float.abs (f -. b) <= iter_slack
                then true
                else if cls = Count then
                  (* integer tallies of a deterministic workload: exact *)
                  Float.abs (f -. b) = 0.
                else if cls = Energy_mj then
                  (* model-derived, deterministic per seed: exact up to fp,
                     never the relative tolerance — an energy drift is a
                     behavior change, not measurement noise *)
                  Float.abs (f -. b) <= 1e-9
                else if b <= 0. || f <= 0. then b = f
                else
                  let r = f /. b in
                  Float.max r (1. /. r) <= 1. +. tolerance
              in
              outcomes :=
                { path; cls; baseline = b; fresh = f; ok; skipped }
                :: !outcomes))
    base_leaves;
  let outcomes = List.rev !outcomes and missing = List.rev !missing in
  {
    outcomes;
    missing;
    pass = missing = [] && List.for_all (fun o -> o.ok) outcomes;
  }

let compare_files ?tolerance ?min_ms ?iter_slack ~baseline ~fresh () =
  match (Json.of_file baseline, Json.of_file fresh) with
  | Error msg, _ -> Error (Printf.sprintf "%s: %s" baseline msg)
  | _, Error msg -> Error (Printf.sprintf "%s: %s" fresh msg)
  | Ok b, Ok f ->
      Ok (compare_values ?tolerance ?min_ms ?iter_slack ~baseline:b ~fresh:f ())

let pp_verdict ppf v =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun o ->
      let note =
        if o.skipped then "  (under noise floor)"
        else if o.baseline > 0. && o.fresh > 0. then
          Printf.sprintf "  (x%.2f)" (o.fresh /. o.baseline)
        else ""
      in
      Format.fprintf ppf "%-6s %-58s baseline %10.3f  fresh %10.3f%s@,"
        (if o.skipped then "skip" else if o.ok then "ok" else "FAIL")
        o.path o.baseline o.fresh note)
    v.outcomes;
  List.iter
    (fun path -> Format.fprintf ppf "FAIL   %-58s missing from fresh run@," path)
    v.missing;
  let gated = List.length v.outcomes + List.length v.missing in
  Format.fprintf ppf "%d gated keys, %d failing: %s@,"
    gated
    (List.length v.missing
    + List.length (List.filter (fun o -> not o.ok) v.outcomes))
    (if v.pass then "PASS" else "FAIL");
  Format.fprintf ppf "@]"

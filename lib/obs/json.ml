(* Minimal JSON reader/writer.  The repository has no JSON dependency and
   cannot grow one offline, yet three subsystems need the format: the
   trace exporter (JSON-lines), the bench gate (parsing committed
   BENCH_*.json baselines) and the telemetry bench record.  This covers
   the full JSON grammar; numbers are carried as OCaml floats, which is
   exact for every integer the instrumentation emits (|n| < 2^53). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---- printing ---- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let number_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else if Float.is_nan x then "null" (* NaN has no JSON spelling *)
  else if x = infinity then "1e999"
  else if x = neg_infinity then "-1e999"
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> Buffer.add_string buf (number_to_string x)
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\": ";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* Indented printer for committed artifacts: objects one member per line,
   leaf lists inline, so diffs between bench records stay reviewable. *)
let rec write_pretty buf indent = function
  | Obj kvs when kvs <> [] ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\": ";
          write_pretty buf (indent + 2) v)
        kvs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf '}'
  | List xs when List.exists (function Obj _ | List _ -> true | _ -> false) xs
    ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad';
          write_pretty buf (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_char buf ']'
  | t -> write buf t

let to_string_pretty t =
  let buf = Buffer.create 1024 in
  write_pretty buf 0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---- parsing ---- *)

type parser_state = { s : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected '%s'" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.s then
                  fail st "truncated \\u escape";
                let hex = String.sub st.s st.pos 4 in
                st.pos <- st.pos + 4;
                let cp =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail st "bad \\u escape"
                in
                (* Encode the BMP codepoint as UTF-8 (surrogate pairs are
                   not reassembled; nothing we emit uses them). *)
                if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
                else if cp < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
                end
            | _ -> fail st "bad escape");
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some x -> x
  | None -> fail st (Printf.sprintf "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' -> (
      advance st;
      skip_ws st;
      match peek st with
      | Some '}' ->
          advance st;
          Obj []
      | _ ->
          let rec members acc =
            skip_ws st;
            let k = parse_string st in
            skip_ws st;
            expect st ':';
            let v = parse_value st in
            skip_ws st;
            match peek st with
            | Some ',' ->
                advance st;
                members ((k, v) :: acc)
            | Some '}' ->
                advance st;
                List.rev ((k, v) :: acc)
            | _ -> fail st "expected ',' or '}'"
          in
          Obj (members []))
  | Some '[' -> (
      advance st;
      skip_ws st;
      match peek st with
      | Some ']' ->
          advance st;
          List []
      | _ ->
          let rec items acc =
            let v = parse_value st in
            skip_ws st;
            match peek st with
            | Some ',' ->
                advance st;
                items (v :: acc)
            | Some ']' ->
                advance st;
                List.rev (v :: acc)
            | _ -> fail st "expected ',' or ']'"
          in
          List (items []))
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then Error "trailing garbage after value"
      else Ok v
  | exception Parse_error msg -> Error msg

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> raise (Parse_error msg)

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* ---- accessors ---- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_num = function Num x -> Some x | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function List xs -> Some xs | _ -> None

(** Performance-regression gate over the committed BENCH_*.json records.

    Flattens baseline and fresh records to dotted numeric paths and checks
    every {e gated} key — solve-time leaves ([ms_per_solve], [solve_ms],
    [cold_ms], [warm_ms], [repair_ms], [pooled_warm_ms], [cache_hit_ms],
    [makespan_ms], [ms_per_query]) and iteration-count leaves
    ([*iterations]) —
    within a two-sided relative tolerance, plus energy leaves
    ([recovery_mj], [delta_install_mj]) which are model-derived and
    deterministic per seed, so the gate holds them exact (up to float
    noise) — an energy drift is a behavior change, never measurement
    noise — and serving-layer cache/pool tallies ([cache_hits],
    [cache_misses], [range_hits], [pool_hits], [cold_misses], [coalesced],
    [evictions], [refused]), integer counts of a deterministic workload
    that the gate holds exactly.  Two-sided on purpose: the
    baseline is an enforced trajectory, so a large improvement fails too
    until the baseline is refreshed and committed.  Sub-millisecond timing
    keys are skipped (noise-dominated); iteration keys carry a small
    absolute slack so a zero-iteration warm start compares cleanly.  The
    frozen [pr1_seed_baseline] block is never gated. *)

type key_class = Time_ms | Iterations | Energy_mj | Count

type outcome = {
  path : string;  (** dotted path, array elements as [name[i]] *)
  cls : key_class;
  baseline : float;
  fresh : float;
  ok : bool;
  skipped : bool;  (** under the noise floor: reported, never failing *)
}

type verdict = {
  outcomes : outcome list;
  missing : string list;
      (** gated paths present in the baseline but absent from the fresh
          run — always a failure *)
  pass : bool;
}

val flatten : Json.t -> (string * float) list
(** Numeric leaves with dotted paths, in document order. *)

val classify : string -> key_class option
(** Whether a path is gated, and as what. *)

val default_tolerance : float
(** 0.30: the ±30% band. *)

val default_min_ms : float

val default_iter_slack : float

val compare_values :
  ?tolerance:float ->
  ?min_ms:float ->
  ?iter_slack:float ->
  baseline:Json.t ->
  fresh:Json.t ->
  unit ->
  verdict

val compare_files :
  ?tolerance:float ->
  ?min_ms:float ->
  ?iter_slack:float ->
  baseline:string ->
  fresh:string ->
  unit ->
  (verdict, string) result
(** [Error] on unreadable/unparseable input. *)

val pp_verdict : Format.formatter -> verdict -> unit

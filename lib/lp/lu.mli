(** Sparse LU factorization of a basis matrix, for the revised simplex.

    The matrix is given column-wise; columns are indexed by "slot"
    [0 .. dim-1] and rows by [0 .. dim-1].  Factorization performs Gaussian
    elimination with a Markowitz-flavoured pivot order (column/row
    singletons first, then minimum fill-estimate with threshold pivoting),
    which keeps fill-in low on the slack-heavy, near-triangular bases that
    arise in the simplex method. *)

type t

exception Singular of int
(** Raised by {!factor} when no acceptable pivot exists at the given
    elimination step: the matrix is (numerically) singular. *)

val factor : dim:int -> Sparse_vec.t array -> t
(** [factor ~dim cols] factors the [dim] x [dim] matrix whose [p]-th column
    is [cols.(p)].
    @raise Singular if the matrix is singular.
    @raise Invalid_argument if [Array.length cols <> dim]. *)

val dim : t -> int

val solve : t -> float array -> float array
(** [solve t b] returns [x] with [B x = b].  [b] is indexed by row, [x] by
    column slot.  [b] is not modified. *)

val solve_mut : t -> float array -> float array
(** As {!solve}, but clobbers [b] (used as the forward-substitution work
    buffer) instead of copying it — for hot paths where the caller owns
    the array. *)

val solve_transpose : t -> float array -> float array
(** [solve_transpose t c] returns [y] with [B^T y = c].  [c] is indexed by
    column slot, [y] by row.  [c] is not modified. *)

val solve_transpose_mut : t -> float array -> float array
(** As {!solve_transpose}, but clobbers [c]. *)

val fill_nnz : t -> int
(** Total number of non-zeros stored in the L and U factors (a measure of
    fill-in). *)

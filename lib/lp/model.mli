(** High-level LP model builder.

    Variables carry optional bounds and objective coefficients; constraints
    are linear expressions compared to a constant.  [solve] lowers the model
    to a {!Problem.t} and runs the sparse {!Revised} simplex (default), or
    the independent {!Dense_simplex} reference for small models. *)

type t

type var
(** An opaque variable handle, valid only for the model that created it. *)

type sense = Le | Ge | Eq

type direction = Minimize | Maximize

type status = Optimal | Infeasible | Unbounded | Iteration_limit

val status_equal : status -> status -> bool
(** Structural equality on {!status}.  Use this (not polymorphic [=])
    when neither side is a literal; it stays correct if the variant
    grows payload-carrying cases. *)

type basis
(** Opaque warm-start token: the simplex basis a solve ended with.  It can
    be passed to a later {!solve} of a model with the same variable and
    constraint counts (the same model re-solved, or a freshly built model of
    identical shape) to start the simplex from that basis instead of from
    scratch.  Incompatible tokens are silently ignored. *)

val basis_shape : basis -> int * int
(** [(n_vars, n_constraints)] of the model the token came from — the shape
    a model must have for the token to apply (used by warm-basis pools to
    index tokens without holding a model). *)

val basis_compatible : t -> basis -> bool
(** Whether the token fits this model.  This is the single
    basis-compatibility predicate: {!solve} consults it before using a
    [?warm_start], the certified fallback chain ([Robust_plan.solve], and
    through it every planner: [Replan], [Repair], the serving layer) drops
    incompatible tokens with it, and basis pools validate candidates
    against it. *)

type solution = {
  status : status;
  objective : float;  (** in the model's direction (not negated) *)
  values : float array;  (** indexed by {!var_index} *)
  stats : Revised.stats option;  (** present when the revised solver ran *)
  row_duals : float array option;
      (** shadow prices, one per constraint in insertion order: the
          marginal change of the objective (in the model's direction) per
          unit increase of that constraint's right-hand side.  Present when
          the revised solver ran without presolve. *)
  basis : basis option;
      (** warm-start token for a subsequent solve; present when the revised
          solver ran without presolve *)
}

val create : ?direction:direction -> unit -> t
(** A fresh empty model; default direction is [Minimize]. *)

val direction : t -> direction

val add_var :
  t -> ?lower:float -> ?upper:float -> ?obj:float -> string -> var
(** [add_var t name] adds a variable.  Defaults: [lower = 0.],
    [upper = infinity], [obj = 0.].  Names are for diagnostics only and need
    not be unique. *)

val var_index : var -> int
(** Position of the variable in [solution.values]. *)

val var_name : t -> var -> string

val set_obj : t -> var -> float -> unit
(** Overwrite the objective coefficient of a variable. *)

val add_constraint : t -> ?name:string -> (float * var) list -> sense -> float -> unit
(** [add_constraint t terms sense rhs] adds [sum coeff*var  <sense>  rhs].
    Duplicate variables in [terms] are summed. *)

val add_le : t -> ?name:string -> (float * var) list -> float -> unit
val add_ge : t -> ?name:string -> (float * var) list -> float -> unit
val add_eq : t -> ?name:string -> (float * var) list -> float -> unit

val n_vars : t -> int
val n_constraints : t -> int

val var_of_index : t -> int -> var
(** Inverse of {!var_index}.  @raise Invalid_argument if out of range. *)

val var_bounds : t -> var -> float * float

val obj_coeff : t -> var -> float

val iter_constraints :
  t -> (name:string -> (float * var) list -> sense -> float -> unit) -> unit
(** Visit the constraints in insertion order (used by {!Lp_format}). *)

val to_problem : t -> Problem.t
(** The model lowered to computational standard form: variable [v] maps to
    column [v], and constraint [i] (insertion order) owns slack column
    [n_vars + i].  This is exactly the problem {!solve} hands to the
    revised solver, so external checkers ({!Certify}) can re-verify a
    solution against it. *)

val solve :
  ?solver:[ `Revised | `Dense ] ->
  ?presolve:bool ->
  ?max_iterations:int ->
  ?deadline:float ->
  ?bland_after:int ->
  ?warm_start:basis ->
  t ->
  solution
(** Optimize the model.  The model itself is not modified and may be solved
    again (e.g. after adding constraints).  [presolve] (default [false],
    revised solver only) applies {!Presolve} reductions first and maps the
    solution back.  [deadline] is a wall-clock budget in seconds for the
    revised solver (best effort; exceeded budgets yield
    [Iteration_limit]).  [warm_start] feeds a previous solution's basis
    token back to the revised solver; it is ignored when the shapes differ,
    when presolve is on, or with the dense solver.  [bland_after] tunes the
    degeneracy threshold for the Bland's-rule fallback (tests only). *)

val solve_certified :
  ?max_iterations:int ->
  ?deadline:float ->
  ?bland_after:int ->
  ?warm_start:basis ->
  t ->
  solution * Certify.report
(** Solve with the revised simplex (no presolve) and independently re-check
    the claim with {!Certify} against the lowered problem data: an optimal
    pair is checked for primal/dual feasibility and duality gap, an
    infeasible claim for a valid Farkas certificate, an unbounded claim for
    a valid improving ray.  [Iteration_limit] results are always rejected
    (nothing to certify).  The report says whether the solution deserves
    trust; the solution itself is the same one {!solve} would return. *)

val solve_dense_certified : ?max_pivots:int -> t -> solution * Certify.report
(** Solve with the dense reference tableau and certify what it can claim:
    the dense lowering carries no duals, so an [Optimal] result is checked
    for primal feasibility only (bounds and constraint residuals of the
    reconstructed full solution).  Non-optimal dense statuses are rejected
    as uncertified.  [max_pivots] caps total pivots (tests). *)

val value : solution -> var -> float
(** Value of a variable in a solution (0. unless [status = Optimal]). *)

val pp_solution : t -> Format.formatter -> solution -> unit

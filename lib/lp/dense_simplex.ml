type sense = Le | Ge | Eq

type status = Optimal | Infeasible | Unbounded | Iteration_limit

type result = { status : status; x : float array; objective : float }

let tol = 1e-9

(* Tableau layout: [tab] has [m] constraint rows and one objective row (the
   last), over [ncols] columns plus the rhs column (the last).  [basis.(i)]
   is the column basic in row [i]. *)
type tableau = {
  tab : float array array;
  basis : int array;
  m : int;
  ncols : int;
}

let pivot t ~row ~col =
  let p = t.tab.(row).(col) in
  let trow = t.tab.(row) in
  for j = 0 to t.ncols do
    trow.(j) <- trow.(j) /. p
  done;
  for i = 0 to t.m do
    if i <> row then begin
      let f = t.tab.(i).(col) in
      if f <> 0. then
        for j = 0 to t.ncols do
          t.tab.(i).(j) <- t.tab.(i).(j) -. (f *. trow.(j))
        done
    end
  done;
  t.basis.(row) <- col

(* One simplex phase with Bland's rule.  [allowed j] filters the columns
   that may enter; [budget] is the remaining pivot allowance shared across
   phases.  Returns [`Optimal], [`Unbounded] or [`Limit]. *)
let run_phase t ~budget ~allowed =
  let rec loop () =
    (* Entering: first allowed column with a negative reduced cost. *)
    let entering = ref (-1) in
    (try
       for j = 0 to t.ncols - 1 do
         if allowed j && t.tab.(t.m).(j) < -.tol then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      (* Leaving: minimum ratio; ties broken by the smallest basic index. *)
      let best_row = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to t.m - 1 do
        let a = t.tab.(i).(col) in
        if a > tol then begin
          let ratio = t.tab.(i).(t.ncols) /. a in
          if
            ratio < !best_ratio -. tol
            || (ratio < !best_ratio +. tol
               && (!best_row < 0 || t.basis.(i) < t.basis.(!best_row)))
          then begin
            best_ratio := ratio;
            best_row := i
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else if !budget <= 0 then `Limit
      else begin
        decr budget;
        pivot t ~row:!best_row ~col;
        loop ()
      end
    end
  in
  loop ()

let solve ?(maximize = false) ?(max_pivots = max_int) ~obj ~constraints () =
  let budget = ref max_pivots in
  let nvars = Array.length obj in
  let m = Array.length constraints in
  Array.iter
    (fun (row, _, _) ->
      if Array.length row <> nvars then
        invalid_arg "Dense_simplex.solve: row length")
    constraints;
  (* Normalize rows to a non-negative rhs. *)
  let rows =
    Array.map
      (fun (row, sense, rhs) ->
        if rhs < 0. then
          ( Array.map (fun a -> -.a) row,
            (match sense with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.rhs )
        else (Array.copy row, sense, rhs))
      constraints
  in
  (* Column layout: structural | slack/surplus | artificial | rhs. *)
  let n_slack =
    Array.fold_left
      (fun acc (_, sense, _) -> match sense with Le | Ge -> acc + 1 | Eq -> acc)
      0 rows
  in
  let n_artificial =
    Array.fold_left
      (fun acc (_, sense, _) -> match sense with Ge | Eq -> acc + 1 | Le -> acc)
      0 rows
  in
  let ncols = nvars + n_slack + n_artificial in
  let tab = Array.make_matrix (m + 1) (ncols + 1) 0. in
  let basis = Array.make m (-1) in
  let art_cols = ref [] in
  let slack_pos = ref nvars in
  let art_pos = ref (nvars + n_slack) in
  Array.iteri
    (fun i (row, sense, rhs) ->
      Array.blit row 0 tab.(i) 0 nvars;
      tab.(i).(ncols) <- rhs;
      (match sense with
      | Le ->
          tab.(i).(!slack_pos) <- 1.;
          basis.(i) <- !slack_pos;
          incr slack_pos
      | Ge ->
          tab.(i).(!slack_pos) <- -1.;
          incr slack_pos
      | Eq -> ());
      match sense with
      | Ge | Eq ->
          tab.(i).(!art_pos) <- 1.;
          basis.(i) <- !art_pos;
          art_cols := !art_pos :: !art_cols;
          incr art_pos
      | Le -> ())
    rows;
  let t = { tab; basis; m; ncols } in
  let is_artificial = Array.make ncols false in
  List.iter (fun j -> is_artificial.(j) <- true) !art_cols;
  let objective_row_from c =
    (* Reduced objective row: c minus the contribution of basic columns. *)
    Array.fill t.tab.(m) 0 (ncols + 1) 0.;
    Array.blit c 0 t.tab.(m) 0 (Array.length c);
    for i = 0 to m - 1 do
      let cb = t.tab.(m).(t.basis.(i)) in
      if cb <> 0. then
        for j = 0 to ncols do
          t.tab.(m).(j) <- t.tab.(m).(j) -. (cb *. t.tab.(i).(j))
        done
    done
  in
  let extract () =
    let x = Array.make nvars 0. in
    for i = 0 to m - 1 do
      if t.basis.(i) < nvars then x.(t.basis.(i)) <- t.tab.(i).(ncols)
    done;
    x
  in
  let real_obj = if maximize then Array.map (fun c -> -.c) obj else obj in
  let finish status =
    let x = extract () in
    let value =
      Array.to_list (Array.mapi (fun j c -> c *. x.(j)) obj)
      |> List.fold_left ( +. ) 0.
    in
    { status; x; objective = value }
  in
  (* Phase 1 if any artificial is present. *)
  let phase1_ok =
    if !art_cols = [] then `Feasible
    else begin
      let c1 = Array.make ncols 0. in
      List.iter (fun j -> c1.(j) <- 1.) !art_cols;
      objective_row_from c1;
      match run_phase t ~budget ~allowed:(fun _ -> true) with
      | `Unbounded -> assert false (* phase-1 objective is bounded below *)
      | `Limit -> `Limit
      | `Optimal ->
          (* -tab.(m).(ncols) is the phase-1 optimum. *)
          if Float.abs t.tab.(m).(ncols) <= 1e-7 then `Feasible
          else `Infeasible
    end
  in
  match phase1_ok with
  | `Limit ->
      { status = Iteration_limit; x = Array.make nvars 0.; objective = 0. }
  | `Infeasible ->
      { status = Infeasible; x = Array.make nvars 0.; objective = 0. }
  | `Feasible -> begin
    (* Pivot any artificial still basic (at zero) out when possible. *)
    for i = 0 to m - 1 do
      if is_artificial.(t.basis.(i)) then begin
        let found = ref (-1) in
        (try
           for j = 0 to ncols - 1 do
             if (not is_artificial.(j)) && Float.abs t.tab.(i).(j) > tol then begin
               found := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 then pivot t ~row:i ~col:!found
        (* else: redundant row; the artificial stays basic at zero. *)
      end
    done;
    let c2 = Array.make ncols 0. in
    Array.blit real_obj 0 c2 0 nvars;
    objective_row_from c2;
    match run_phase t ~budget ~allowed:(fun j -> not is_artificial.(j)) with
    | `Optimal -> finish Optimal
    | `Unbounded -> finish Unbounded
    | `Limit -> { status = Iteration_limit; x = Array.make nvars 0.; objective = 0. }
  end

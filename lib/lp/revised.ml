let src = Logs.Src.create "lp.revised" ~doc:"Revised simplex"

module Log = (val Logs.src_log src : Logs.LOG)

(* Process-wide telemetry (lib/obs): cumulative solver counters, the solve
   latency histogram and one [Solve] trace span per call.  All of it is
   gated — with telemetry disabled and no sink installed the only cost is
   the per-solve [Obs.Metrics.enabled] check.  The per-solve [stats]
   record is carried by ungated local counters so its public accessors
   stay exact either way. *)
let m_solves = Obs.Metrics.counter "lp.revised.solves"

let m_pivots = Obs.Metrics.counter "lp.revised.pivots"

let m_phase1_pivots = Obs.Metrics.counter "lp.revised.phase1_pivots"

let m_refactorizations = Obs.Metrics.counter "lp.revised.refactorizations"

let m_drift = Obs.Metrics.counter "lp.revised.drift_refactorizations"

let m_growth = Obs.Metrics.counter "lp.revised.growth_refactorizations"

let m_degenerate = Obs.Metrics.counter "lp.revised.degenerate_pivots"

let m_bound_flips = Obs.Metrics.counter "lp.revised.bound_flips"

let m_warm_attempts = Obs.Metrics.counter "lp.revised.warm_attempts"

let t_solve = Obs.Metrics.timer "lp.revised.solve_s"

type status = Optimal | Infeasible | Unbounded | Iteration_limit

let status_to_string = function
  | Optimal -> "optimal"
  | Infeasible -> "infeasible"
  | Unbounded -> "unbounded"
  | Iteration_limit -> "iteration_limit"

type stats = {
  iterations : int;
  phase1_iterations : int;
  refactorizations : int;
  degenerate_pivots : int;
  bound_flips : int;
  drift_refactorizations : int;
  growth_refactorizations : int;
}

type basis = { vars : int array; at_upper : bool array }

type result = {
  status : status;
  x : float array;
  objective : float;
  duals : float array;
  basis : basis;
  stats : stats;
  farkas : float array option;
  ray : float array option;
}

let pp_status ppf = function
  | Optimal -> Format.pp_print_string ppf "optimal"
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | Iteration_limit -> Format.pp_print_string ppf "iteration-limit"

(* Eta update for the product-form basis inverse.  [rows]/[vals] are the
   entries of the pivot (FTRAN) column w excluding the pivot slot. *)
type eta = { slot : int; wp : float; rows : int array; vals : float array }

let dummy_eta = { slot = 0; wp = 1.; rows = [||]; vals = [||] }

(* Size of the pricing candidate list (multiple pricing): between full
   scans, only these columns have their reduced costs kept current. *)
let cand_cap = 32

type state = {
  prob : Problem.t;
  m : int;  (* rows *)
  ntot : int;  (* structural+slack columns plus m artificials *)
  cols : Sparse_vec.t array;  (* length ntot *)
  lower : float array;
  upper : float array;
  xval : float array;
  basis : int array;  (* slot -> variable *)
  where : int array;  (* variable -> slot, or -1 if nonbasic *)
  at_upper : bool array;  (* for nonbasic variables *)
  mutable lu : Lu.t;
  mutable etas : eta array;  (* oldest first; only [0, n_etas) valid *)
  mutable n_etas : int;
  mutable eta_nnz : int;  (* total off-pivot entries across live etas *)
  mutable lu_fill : int;  (* fill of the current factorization *)
  (* -- pricing state -- *)
  banned : Bytes.t;  (* bitset over columns: 1 = skip in pricing *)
  weight : float array;  (* Devex-style reference weights *)
  dj : float array;  (* cached reduced costs *)
  dj_epoch : int array;  (* validity stamp for [dj] entries *)
  mutable epoch : int;  (* bumped per pivot / objective change *)
  mutable y_cache : float array;  (* duals for the pricing objective *)
  mutable y_epoch : int;
  cand : int array;  (* candidate list, length [cand_cap] *)
  mutable n_cand : int;
  mutable since_refill : int;  (* pivots taken from the current list *)
  wnz : int array;  (* scratch: nonzero slots of the current FTRAN column *)
  mutable n_wnz : int;
  (* -- counters / controls --
     Per-solve stats live in ungated obs counters: they are part of the
     public [stats] contract and must count with telemetry off. *)
  iterations : Obs.Metrics.counter;
  phase1_iterations : Obs.Metrics.counter;
  refactorizations : Obs.Metrics.counter;
  drift_refactorizations : Obs.Metrics.counter;
  growth_refactorizations : Obs.Metrics.counter;
  degenerate_pivots : Obs.Metrics.counter;
  bound_flips : Obs.Metrics.counter;
  mutable consecutive_degenerate : int;
  mutable bland : bool;
  mutable pivots_since_drift_check : int;
  mutable loop_ticks : int;  (* loop entries, for the deadline check *)
  mutable last_ray : float array option;  (* set when Unbounded is declared *)
  deadline_at : float;  (* absolute wall-clock limit, [infinity] if none *)
  feas_tol : float;
  opt_tol : float;
  refactor_interval : int;
  bland_after : int;
}

let is_free st j =
  st.lower.(j) = neg_infinity && st.upper.(j) = infinity

let is_fixed st j = st.lower.(j) = st.upper.(j)

let is_banned st j = Bytes.unsafe_get st.banned j <> '\000'
let ban st j = Bytes.unsafe_set st.banned j '\001'
let unban st j = Bytes.unsafe_set st.banned j '\000'

(* Apply B^{-1} to a dense row-indexed vector, yielding a slot-indexed one. *)
(* Callers of [ftran] pass a vector they own: it is clobbered as the
   substitution work buffer. *)
let ftran st v =
  let v = Lu.solve_mut st.lu v in
  for k = 0 to st.n_etas - 1 do
    let e = st.etas.(k) in
    let t = v.(e.slot) /. e.wp in
    v.(e.slot) <- t;
    if t <> 0. then
      for p = 0 to Array.length e.rows - 1 do
        v.(e.rows.(p)) <- v.(e.rows.(p)) -. (e.vals.(p) *. t)
      done
  done;
  v

(* Apply B^{-T} to a dense slot-indexed vector, yielding a row-indexed one.
   Etas are applied newest-first, then the LU transpose solve. *)
let btran st c =
  let c = Array.copy c in
  for k = st.n_etas - 1 downto 0 do
    let e = st.etas.(k) in
    let acc = ref 0. in
    for p = 0 to Array.length e.rows - 1 do
      acc := !acc +. (e.vals.(p) *. c.(e.rows.(p)))
    done;
    c.(e.slot) <- (c.(e.slot) -. !acc) /. e.wp
  done;
  Lu.solve_transpose_mut st.lu c

let push_eta st e =
  let cap = Array.length st.etas in
  if st.n_etas >= cap then begin
    let bigger = Array.make (2 * Int.max 1 cap) dummy_eta in
    Array.blit st.etas 0 bigger 0 st.n_etas;
    st.etas <- bigger
  end;
  st.etas.(st.n_etas) <- e;
  st.n_etas <- st.n_etas + 1;
  st.eta_nnz <- st.eta_nnz + Array.length e.rows

let refactorize st =
  let basis_cols = Array.map (fun j -> st.cols.(j)) st.basis in
  st.lu <- Lu.factor ~dim:st.m basis_cols;
  st.n_etas <- 0;
  st.eta_nnz <- 0;
  st.lu_fill <- Lu.fill_nnz st.lu;
  Obs.Metrics.incr st.refactorizations;
  (* Invalidate pricing caches: the fresh factorization purges drift, so
     reduced costs are recomputed from scratch on the next pricing call. *)
  st.epoch <- st.epoch + 1;
  (* Recompute the basic values from scratch to purge accumulated drift. *)
  let r = Array.copy st.prob.Problem.rhs in
  for j = 0 to st.ntot - 1 do
    if st.where.(j) < 0 && st.xval.(j) <> 0. then
      Sparse_vec.axpy_dense (-.st.xval.(j)) st.cols.(j) r
  done;
  let xb = Lu.solve st.lu r in
  Array.iteri (fun slot j -> st.xval.(j) <- xb.(slot)) st.basis

(* ---- pricing ---- *)

(* Duals for the current pricing objective [c]; cached per basis change. *)
let ensure_y st c =
  if st.y_epoch <> st.epoch then begin
    st.y_cache <- btran st (Array.map (fun j -> c.(j)) st.basis);
    st.y_epoch <- st.epoch
  end

let reduced_cost st c j =
  if st.dj_epoch.(j) = st.epoch then st.dj.(j)
  else begin
    let d = c.(j) -. Sparse_vec.dot_dense st.cols.(j) st.y_cache in
    st.dj.(j) <- d;
    st.dj_epoch.(j) <- st.epoch;
    d
  end

(* Direction in which nonbasic [j] with reduced cost [d] improves the
   objective: +1. (increase from lower/free) or -1. (decrease from
   upper/free); [None] when [j] prices out. *)
let entering_dir st j d =
  if is_free st j then
    if d < -.st.opt_tol then Some 1.
    else if d > st.opt_tol then Some (-1.)
    else None
  else if st.at_upper.(j) then if d > st.opt_tol then Some (-1.) else None
  else if d < -.st.opt_tol then Some 1.
  else None

let priceable st j = st.where.(j) < 0 && (not (is_fixed st j)) && not (is_banned st j)

(* Bland's rule: lowest-index eligible column, full scan.  Used under
   sustained degeneracy; termination matters more than pivot quality. *)
let price_bland st c =
  ensure_y st c;
  let found = ref None in
  (try
     for j = 0 to st.ntot - 1 do
       if priceable st j then
         match entering_dir st j (reduced_cost st c j) with
         | Some dir ->
             found := Some (j, dir);
             raise Exit
         | None -> ()
     done
   with Exit -> ());
  !found

(* How many pivots may be taken from one candidate list before a full
   rescan.  Stale lists pick globally poor pivots and inflate the iteration
   count; rescanning every pivot wastes the list.  A short leash keeps the
   pivot sequence near full-pricing quality while amortizing the
   whole-matrix pass over several iterations. *)
let refill_period = 4

(* Candidate-list ("multiple") pricing with Devex-style weights.

   Fast path: re-score only the candidate list — whose reduced costs are
   kept exactly current across pivots by {!apply_pivot} — and take the best
   Devex ratio d^2/w.  Every [refill_period] pivots (or when the list runs
   dry) one full scan harvests the globally best [cand_cap] eligible
   columns, so list-driven pivots stay close to full-pricing quality while
   the expensive whole-matrix pass is amortized.  Optimality is declared
   only by a full scan that finds no eligible column. *)
let price st c =
  if st.bland then price_bland st c
  else begin
    ensure_y st c;
    let best = ref None and best_score = ref 0. in
    let score j d =
      let s = d *. d /. st.weight.(j) in
      if s > !best_score then begin
        best := Some (j, d);
        best_score := s
      end
    in
    (* Harvest the candidate list, compacting out stale entries. *)
    let k = ref 0 in
    for i = 0 to st.n_cand - 1 do
      let j = st.cand.(i) in
      if priceable st j then begin
        let d = reduced_cost st c j in
        match entering_dir st j d with
        | Some _ ->
            st.cand.(!k) <- j;
            incr k;
            score j d
        | None -> ()
      end
    done;
    st.n_cand <- !k;
    if !best = None || st.n_cand < 4 || st.since_refill >= refill_period
    then begin
      (* Refill: full scan keeping the top-scoring eligible columns.  The
         list is rebuilt from scratch; [scores.(i)] mirrors [cand.(i)]. *)
      st.n_cand <- 0;
      st.since_refill <- 0;
      best := None;
      best_score := 0.;
      let scores = Array.make cand_cap 0. in
      let worst = ref 0 in
      for j = 0 to st.ntot - 1 do
        if priceable st j then begin
          let d = reduced_cost st c j in
          match entering_dir st j d with
          | Some _ ->
              let s = d *. d /. st.weight.(j) in
              score j d;
              if st.n_cand < cand_cap then begin
                st.cand.(st.n_cand) <- j;
                scores.(st.n_cand) <- s;
                st.n_cand <- st.n_cand + 1;
                if st.n_cand = cand_cap then begin
                  (* find the weakest entry to displace later *)
                  worst := 0;
                  for i = 1 to cand_cap - 1 do
                    if scores.(i) < scores.(!worst) then worst := i
                  done
                end
              end
              else if s > scores.(!worst) then begin
                st.cand.(!worst) <- j;
                scores.(!worst) <- s;
                worst := 0;
                for i = 1 to cand_cap - 1 do
                  if scores.(i) < scores.(!worst) then worst := i
                done
              end
          | None -> ()
        end
      done
    end;
    match !best with
    | None -> None
    | Some (j, d) -> (
        match entering_dir st j d with
        | Some dir -> Some (j, dir)
        | None -> None (* unreachable: best only holds eligible columns *))
  end

type ratio_outcome =
  | Flip
  | Pivot of { slot : int; t : float; to_upper : bool }
  | Ray  (* unbounded direction *)

(* Bounded-variable ratio test for entering variable [q] moving in
   direction [dir] with FTRAN column [w]. *)
let ratio_test st q dir w =
  let pivot_tol = 1e-9 in
  let t_flip = st.upper.(q) -. st.lower.(q) in
  let best_t = ref infinity in
  let best_slot = ref (-1) in
  let best_to_upper = ref false in
  let best_wabs = ref 0. in
  for p = 0 to st.n_wnz - 1 do
    let slot = st.wnz.(p) in
    let wv = w.(slot) in
    if Float.abs wv > pivot_tol then begin
      let i = st.basis.(slot) in
      let delta = dir *. wv in
      let t, to_upper =
        if delta > 0. then
          (* basic variable decreases towards its lower bound *)
          if st.lower.(i) = neg_infinity then (infinity, false)
          else (Float.max 0. (st.xval.(i) -. st.lower.(i)) /. delta, false)
        else if st.upper.(i) = infinity then (infinity, true)
        else (Float.max 0. (st.upper.(i) -. st.xval.(i)) /. -.delta, true)
      in
      let wabs = Float.abs wv in
      let better =
        if st.bland then
          t < !best_t -. 1e-12
          || (t <= !best_t +. 1e-12 && (!best_slot < 0 || i < st.basis.(!best_slot)))
        else
          t < !best_t -. 1e-12 || (t <= !best_t +. 1e-12 && wabs > !best_wabs)
      in
      if t < infinity && better then begin
        best_t := t;
        best_slot := slot;
        best_to_upper := to_upper;
        best_wabs := wabs
      end
    end
  done;
  if !best_slot < 0 && t_flip = infinity then Ray
  else if t_flip <= !best_t then Flip
  else Pivot { slot = !best_slot; t = !best_t; to_upper = !best_to_upper }

let apply_flip st q dir w =
  let range = st.upper.(q) -. st.lower.(q) in
  let delta = dir *. range in
  for p = 0 to st.n_wnz - 1 do
    let slot = st.wnz.(p) in
    let i = st.basis.(slot) in
    st.xval.(i) <- st.xval.(i) -. (delta *. w.(slot))
  done;
  st.at_upper.(q) <- not st.at_upper.(q);
  st.xval.(q) <- (if st.at_upper.(q) then st.upper.(q) else st.lower.(q));
  Obs.Metrics.incr st.bound_flips
(* A bound flip keeps the basis, so cached duals and reduced costs stay
   valid: no epoch bump. *)

let apply_pivot st q dir w slot t to_upper =
  let leaving = st.basis.(slot) in
  let wp = w.(slot) in
  (* -- pricing cache maintenance (uses the OLD basis, before mutation) --
     One BTRAN of the pivot row e_r serves three purposes: the incremental
     dual update y' = y + (d_q / w_p) rho, the per-pivot reduced-cost
     update of the candidate list, and the Devex weight propagation. *)
  let next = st.epoch + 1 in
  let dq = if st.dj_epoch.(q) = st.epoch then st.dj.(q) else 0. in
  if dq <> 0. && st.y_epoch = st.epoch then begin
    let er = Array.make st.m 0. in
    er.(slot) <- 1.;
    let rho = btran st er in
    let gamma_ref = Float.max 1. st.weight.(q) in
    for idx = 0 to st.n_cand - 1 do
      let j = st.cand.(idx) in
      if j <> q && st.where.(j) < 0 && st.dj_epoch.(j) = st.epoch then begin
        let alpha = Sparse_vec.dot_dense st.cols.(j) rho in
        st.dj.(j) <- st.dj.(j) -. (dq *. alpha /. wp);
        st.dj_epoch.(j) <- next;
        let wj = alpha /. wp *. (alpha /. wp) *. gamma_ref in
        if wj > st.weight.(j) then st.weight.(j) <- wj
      end
    done;
    let s = dq /. wp in
    for i = 0 to st.m - 1 do
      if rho.(i) <> 0. then
        st.y_cache.(i) <- st.y_cache.(i) +. (s *. rho.(i))
    done;
    st.y_epoch <- next;
    st.dj.(leaving) <- -.s;
    st.dj_epoch.(leaving) <- next;
    st.weight.(leaving) <- Float.max 1. (gamma_ref /. (wp *. wp));
    (* The entering column leaves the candidate list; the leaving variable
       takes its place (it is the freshest nonbasic column). *)
    let replaced = ref false in
    for idx = 0 to st.n_cand - 1 do
      if st.cand.(idx) = q then begin
        st.cand.(idx) <- leaving;
        replaced := true
      end
    done;
    if (not !replaced) && st.n_cand < cand_cap then begin
      st.cand.(st.n_cand) <- leaving;
      st.n_cand <- st.n_cand + 1
    end
  end;
  st.epoch <- next;
  st.since_refill <- st.since_refill + 1;
  (* -- the pivot proper -- *)
  for p = 0 to st.n_wnz - 1 do
    let s = st.wnz.(p) in
    let i = st.basis.(s) in
    st.xval.(i) <- st.xval.(i) -. (t *. dir *. w.(s))
  done;
  st.xval.(q) <- st.xval.(q) +. (t *. dir);
  (* Land the leaving variable exactly on its bound. *)
  st.xval.(leaving) <-
    (if to_upper then st.upper.(leaving) else st.lower.(leaving));
  st.where.(leaving) <- -1;
  st.at_upper.(leaving) <- to_upper;
  st.basis.(slot) <- q;
  st.where.(q) <- slot;
  (* Record the eta factor (two passes over the nonzero pattern: count,
     then fill). *)
  let nnz = ref 0 in
  for p = 0 to st.n_wnz - 1 do
    let s = st.wnz.(p) in
    if s <> slot && Float.abs w.(s) > 1e-12 then incr nnz
  done;
  let rows = Array.make !nnz 0 and vals = Array.make !nnz 0. in
  let idx = ref 0 in
  for p = 0 to st.n_wnz - 1 do
    let s = st.wnz.(p) in
    if s <> slot && Float.abs w.(s) > 1e-12 then begin
      rows.(!idx) <- s;
      vals.(!idx) <- w.(s);
      incr idx
    end
  done;
  push_eta st { slot; wp; rows; vals };
  if t <= 1e-10 then begin
    Obs.Metrics.incr st.degenerate_pivots;
    st.consecutive_degenerate <- st.consecutive_degenerate + 1
  end
  else st.consecutive_degenerate <- 0;
  if st.consecutive_degenerate > st.bland_after && not st.bland then begin
    Log.debug (fun f -> f "switching to Bland's rule after degeneracy");
    st.bland <- true
  end;
  st.pivots_since_drift_check <- st.pivots_since_drift_check + 1;
  if st.n_etas >= st.refactor_interval then refactorize st
  else if st.n_etas >= 16 && st.eta_nnz > 4 * (st.lu_fill + st.m) then begin
    (* Eta-file growth: the product-form updates have accumulated more
       fill than a fresh factorization would carry, so solves are both
       slower and numerically staler than a refactorization.  Fold them
       in early rather than waiting for the fixed interval. *)
    Obs.Metrics.incr st.growth_refactorizations;
    refactorize st
  end

(* How often (in pivots) the FTRAN result is verified against the basis
   columns, and the scaled residual above which the eta file is declared
   drifted.  A fresh LU keeps residuals near machine epsilon; a checked
   residual above [drift_tol] means the product-form updates have decayed
   enough to threaten the ratio test, so we refactorize and redo the
   FTRAN before committing the pivot. *)
let drift_check_interval = 25

let drift_tol = 1e-7

(* FTRAN of column [q] with periodic numerical self-checking: every
   [drift_check_interval] pivots (while etas are live) the result [w] is
   verified directly against the problem data via ‖B w - a_q‖∞; on a
   residual spike the basis is refactorized — which also recomputes the
   basic values from scratch — and the FTRAN is retried on fresh
   factors. *)
let ftran_checked st q =
  let spread st q =
    let aq = Array.make st.m 0. in
    Sparse_vec.iter (fun i x -> aq.(i) <- x) st.cols.(q);
    aq
  in
  let w = ftran st (spread st q) in
  if st.n_etas > 0 && st.pivots_since_drift_check >= drift_check_interval
  then begin
    st.pivots_since_drift_check <- 0;
    let r = Array.make st.m 0. in
    for s = 0 to st.m - 1 do
      if w.(s) <> 0. then Sparse_vec.axpy_dense w.(s) st.cols.(st.basis.(s)) r
    done;
    Sparse_vec.iter (fun i x -> r.(i) <- r.(i) -. x) st.cols.(q);
    let worst =
      Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0. r
    in
    if worst > drift_tol *. (1. +. Sparse_vec.max_abs st.cols.(q)) then begin
      Log.debug (fun f ->
          f "FTRAN residual %.3g after %d etas: refactorizing" worst st.n_etas);
      Obs.Metrics.incr st.drift_refactorizations;
      refactorize st;
      ftran st (spread st q)
    end
    else w
  end
  else w

let past_deadline st =
  st.loop_ticks <- st.loop_ticks + 1;
  st.deadline_at < infinity
  (* Check on the very first entry (an already-expired deadline must stop
     even a tiny solve) and every 32 ticks thereafter. *)
  && (st.loop_ticks = 1 || st.loop_ticks land 31 = 0)
  && Obs.Trace.now () >= st.deadline_at

(* Run the simplex loop with objective [c] until optimality or trouble.
   [phase1] only affects iteration bookkeeping. *)
let optimize st c ~phase1 ~max_iterations =
  (* A new objective invalidates every cached reduced cost and the
     candidate list. *)
  st.epoch <- st.epoch + 1;
  st.n_cand <- 0;
  let banned_list = ref [] in
  let clear_bans () =
    List.iter (unban st) !banned_list;
    banned_list := []
  in
  let rec loop () =
    if Obs.Metrics.value st.iterations >= max_iterations || past_deadline st
    then Iteration_limit
    else
      match price st c with
      | None -> Optimal
      | Some (q, dir) -> (
          let w = ftran_checked st q in
          (* One dense pass records the nonzero pattern; the ratio test,
             bound flips, pivot application and eta extraction all iterate
             the (typically short) pattern instead of all [m] slots. *)
          st.n_wnz <- 0;
          for s = 0 to st.m - 1 do
            if w.(s) <> 0. then begin
              st.wnz.(st.n_wnz) <- s;
              st.n_wnz <- st.n_wnz + 1
            end
          done;
          match ratio_test st q dir w with
          | Ray ->
              if phase1 then Optimal (* cannot happen; be safe *)
              else begin
                (* Record the improving direction as a checkable
                   certificate: the entering column moves by [dir], the
                   basic variables compensate along the FTRAN column. *)
                let ray = Array.make st.ntot 0. in
                ray.(q) <- dir;
                for p = 0 to st.n_wnz - 1 do
                  let s = st.wnz.(p) in
                  ray.(st.basis.(s)) <- -.dir *. w.(s)
                done;
                st.last_ray <- Some ray;
                Unbounded
              end
          | Flip ->
              Obs.Metrics.incr st.iterations;
              if phase1 then Obs.Metrics.incr st.phase1_iterations;
              apply_flip st q dir w;
              clear_bans ();
              loop ()
          | Pivot { slot; t; to_upper } ->
              if Float.abs w.(slot) < 1e-7 && st.n_etas > 0 then begin
                (* Numerically dubious pivot: refactorize and retry. *)
                refactorize st;
                loop ()
              end
              else if Float.abs w.(slot) < 1e-9 then begin
                (* Still tiny with a fresh factorization: avoid this column. *)
                ban st q;
                banned_list := q :: !banned_list;
                loop ()
              end
              else begin
                Obs.Metrics.incr st.iterations;
                if phase1 then Obs.Metrics.incr st.phase1_iterations;
                apply_pivot st q dir w slot t to_upper;
                clear_bans ();
                loop ()
              end)
  in
  let r = loop () in
  clear_bans ();
  r

(* ---- state construction ---- *)

exception Warm_start_failed

let make_state ?(bland_after = 2000) ~feas_tol ~opt_tol ~refactor_interval
    ~deadline_at prob basis where xval at_upper lower upper cols ntot =
  let m = prob.Problem.nrows in
  let lu = Lu.factor ~dim:m (Array.map (fun j -> cols.(j)) basis) in
  {
    prob;
    m;
    ntot;
    cols;
    lower;
    upper;
    xval;
    basis;
    where;
    at_upper;
    lu;
    etas = Array.make 16 dummy_eta;
    n_etas = 0;
    eta_nnz = 0;
    lu_fill = Lu.fill_nnz lu;
    banned = Bytes.make ntot '\000';
    weight = Array.make ntot 1.;
    dj = Array.make ntot 0.;
    dj_epoch = Array.make ntot (-1);
    epoch = 0;
    y_cache = Array.make m 0.;
    y_epoch = -1;
    cand = Array.make cand_cap (-1);
    n_cand = 0;
    since_refill = 0;
    wnz = Array.make m 0;
    n_wnz = 0;
    iterations = Obs.Metrics.local "iterations";
    phase1_iterations = Obs.Metrics.local "phase1_iterations";
    refactorizations = Obs.Metrics.local "refactorizations";
    drift_refactorizations = Obs.Metrics.local "drift_refactorizations";
    growth_refactorizations = Obs.Metrics.local "growth_refactorizations";
    degenerate_pivots = Obs.Metrics.local "degenerate_pivots";
    bound_flips = Obs.Metrics.local "bound_flips";
    consecutive_degenerate = 0;
    bland = false;
    pivots_since_drift_check = 0;
    loop_ticks = 0;
    last_ray = None;
    deadline_at;
    feas_tol;
    opt_tol;
    refactor_interval;
    bland_after;
  }

let solve ?(max_iterations = 200_000) ?deadline ?(feas_tol = 1e-7)
    ?(opt_tol = 1e-7) ?(refactor_interval = 128) ?(bland_after = 2000)
    ?basis:warm prob =
  Problem.validate prob;
  let deadline_at =
    match deadline with
    | None -> infinity
    | Some d -> Obs.Trace.now () +. Float.max 0. d
  in
  let m = prob.Problem.nrows and n = prob.Problem.ncols in
  let ntot = n + m in
  let finish ?farkas st status =
    let x = Array.sub st.xval 0 n in
    let objective = Problem.objective_value prob x in
    let duals =
      btran st
        (Array.map (fun j -> if j < n then prob.Problem.obj.(j) else 0.) st.basis)
    in
    let basis =
      {
        vars = Array.map (fun j -> if j < n then j else -1) st.basis;
        at_upper = Array.sub st.at_upper 0 n;
      }
    in
    let ray =
      match status with
      | Unbounded -> Option.map (fun r -> Array.sub r 0 n) st.last_ray
      | _ -> None
    in
    {
      status;
      x;
      objective;
      duals;
      basis;
      stats =
        {
          iterations = Obs.Metrics.value st.iterations;
          phase1_iterations = Obs.Metrics.value st.phase1_iterations;
          refactorizations = Obs.Metrics.value st.refactorizations;
          drift_refactorizations =
            Obs.Metrics.value st.drift_refactorizations;
          growth_refactorizations =
            Obs.Metrics.value st.growth_refactorizations;
          degenerate_pivots = Obs.Metrics.value st.degenerate_pivots;
          bound_flips = Obs.Metrics.value st.bound_flips;
        };
      farkas = (if status = Infeasible then farkas else None);
      ray;
    }
  in
  let phase2 st =
    let c = Array.make ntot 0. in
    Array.blit prob.Problem.obj 0 c 0 n;
    match optimize st c ~phase1:false ~max_iterations with
    | Optimal -> finish st Optimal
    | Unbounded -> finish st Unbounded
    | Iteration_limit -> finish st Iteration_limit
    | Infeasible -> assert false
  in
  let fresh_arrays () =
    let cols = Array.make ntot Sparse_vec.empty in
    Array.blit prob.Problem.cols 0 cols 0 n;
    for i = 0 to m - 1 do
      cols.(n + i) <- Sparse_vec.of_assoc [ (i, 1.) ]
    done;
    let lower = Array.make ntot 0. and upper = Array.make ntot 0. in
    Array.blit prob.Problem.lower 0 lower 0 n;
    Array.blit prob.Problem.upper 0 upper 0 n;
    (cols, lower, upper)
  in
  (* ---- cold start: bound-feasible nonbasic point, hinted or artificial
     basis, artificial-variable phase 1 when the start is infeasible ---- *)
  let solve_cold () =
    let cols, lower, upper = fresh_arrays () in
    let xval = Array.make ntot 0. in
    (* Nonbasic starting point: finite lower bound if any, else finite upper,
       else 0 for free variables. *)
    let at_upper = Array.make ntot false in
    for j = 0 to n - 1 do
      if lower.(j) > neg_infinity then xval.(j) <- lower.(j)
      else if upper.(j) < infinity then begin
        xval.(j) <- upper.(j);
        at_upper.(j) <- true
      end
      else xval.(j) <- 0.
    done;
    (* Residual with hinted columns held at zero. *)
    let hint =
      match prob.Problem.basis_hint with
      | Some h -> h
      | None -> Array.make m (-1)
    in
    let hinted = Array.make n false in
    Array.iter (fun j -> if j >= 0 then hinted.(j) <- true) hint;
    let residual = Array.copy prob.Problem.rhs in
    for j = 0 to n - 1 do
      if (not hinted.(j)) && xval.(j) <> 0. then
        Sparse_vec.axpy_dense (-.xval.(j)) cols.(j) residual
    done;
    let basis = Array.make m (-1) in
    let where = Array.make ntot (-1) in
    let need_phase1 = ref false in
    for i = 0 to m - 1 do
      let r = residual.(i) in
      let h = hint.(i) in
      if h >= 0 && lower.(h) -. feas_tol <= r && r <= upper.(h) +. feas_tol
      then begin
        basis.(i) <- h;
        xval.(h) <- r;
        (* artificial for this row stays nonbasic, fixed at zero *)
        lower.(n + i) <- 0.;
        upper.(n + i) <- 0.
      end
      else begin
        (* Use the artificial; if there was a hint column it stays nonbasic at
           its initial bound value of 0 (all slack bounds include 0). *)
        basis.(i) <- n + i;
        xval.(n + i) <- r;
        if r >= 0. then begin
          lower.(n + i) <- 0.;
          upper.(n + i) <- infinity
        end
        else begin
          lower.(n + i) <- neg_infinity;
          upper.(n + i) <- 0.
        end;
        if Float.abs r > feas_tol then need_phase1 := true
      end
    done;
    Array.iteri (fun slot j -> where.(j) <- slot) basis;
    let st =
      make_state ~bland_after ~feas_tol ~opt_tol ~refactor_interval
        ~deadline_at prob basis where xval at_upper lower upper cols ntot
    in
    if not !need_phase1 then phase2 st
    else begin
      (* Phase 1: minimize the total artificial infeasibility. *)
      let c1 = Array.make ntot 0. in
      for i = 0 to m - 1 do
        if st.where.(n + i) >= 0 then
          c1.(n + i) <- (if st.xval.(n + i) >= 0. then 1. else -1.)
        else c1.(n + i) <- 1.
      done;
      match optimize st c1 ~phase1:true ~max_iterations with
      | Iteration_limit -> finish st Iteration_limit
      | Unbounded -> assert false
      | Infeasible -> assert false
      | Optimal ->
          let infeas = ref 0. in
          for i = 0 to m - 1 do
            infeas := !infeas +. Float.abs st.xval.(n + i)
          done;
          if !infeas > Float.max 1e-6 (st.feas_tol *. float_of_int m) then begin
            (* The phase-1 duals are a Farkas certificate: at the phase-1
               optimum every problem column's reduced cost [-y'a_j] prices
               out against its bound, so [y'b - sup y'Ax] equals the
               residual infeasibility, which is positive. *)
            let farkas = btran st (Array.map (fun j -> c1.(j)) st.basis) in
            finish ~farkas st Infeasible
          end
          else begin
            (* Pin all artificials to zero and re-optimize the true cost. *)
            for i = 0 to m - 1 do
              st.lower.(n + i) <- 0.;
              st.upper.(n + i) <- 0.;
              if st.where.(n + i) < 0 then begin
                st.xval.(n + i) <- 0.;
                st.at_upper.(n + i) <- false
              end
            done;
            phase2 st
          end
    end
  in
  (* ---- warm start: adopt a prior basis, repair residual infeasibility
     with a bound-relaxation phase 1, fall back to cold on any trouble ---- *)
  let solve_warm wb =
    let cols, lower, upper = fresh_arrays () in
    let xval = Array.make ntot 0. in
    let at_upper = Array.make ntot false in
    let basis = Array.make m (-1) in
    let where = Array.make ntot (-1) in
    (* Artificials default to nonbasic, fixed at zero. *)
    for i = 0 to m - 1 do
      let j = wb.vars.(i) in
      basis.(i) <- (if j >= 0 then j else n + i)
    done;
    Array.iteri (fun slot j -> where.(j) <- slot) basis;
    (* Nonbasic structurals sit at the recorded bound. *)
    for j = 0 to n - 1 do
      if where.(j) < 0 then
        if wb.at_upper.(j) && upper.(j) < infinity then begin
          xval.(j) <- upper.(j);
          at_upper.(j) <- true
        end
        else if lower.(j) > neg_infinity then xval.(j) <- lower.(j)
        else if upper.(j) < infinity then begin
          xval.(j) <- upper.(j);
          at_upper.(j) <- true
        end
        else xval.(j) <- 0.
    done;
    let st =
      try
        make_state ~bland_after ~feas_tol ~opt_tol ~refactor_interval
          ~deadline_at prob basis where xval at_upper lower upper cols ntot
      with Lu.Singular _ -> raise Warm_start_failed
    in
    (* Basic values implied by the nonbasic point. *)
    let r = Array.copy prob.Problem.rhs in
    for j = 0 to ntot - 1 do
      if st.where.(j) < 0 && st.xval.(j) <> 0. then
        Sparse_vec.axpy_dense (-.st.xval.(j)) st.cols.(j) r
    done;
    let xb = Lu.solve st.lu r in
    Array.iteri (fun slot j -> st.xval.(j) <- xb.(slot)) st.basis;
    (* Collect bound violations of the warm basics. *)
    let relaxed = ref [] in
    let c1 = Array.make ntot 0. in
    let infeasible = ref false in
    Array.iter
      (fun j ->
        if st.xval.(j) > st.upper.(j) +. feas_tol then begin
          relaxed := (j, st.lower.(j), st.upper.(j)) :: !relaxed;
          st.upper.(j) <- infinity;
          c1.(j) <- 1.;
          infeasible := true
        end
        else if st.xval.(j) < st.lower.(j) -. feas_tol then begin
          relaxed := (j, st.lower.(j), st.upper.(j)) :: !relaxed;
          st.lower.(j) <- neg_infinity;
          c1.(j) <- -1.;
          infeasible := true
        end)
      st.basis;
    if not !infeasible then phase2 st
    else begin
      (* Repair: drive each violating basic back towards its bound.  The
         relaxation keeps the basis factorizable and needs no artificial
         columns; any residual violation afterwards means the warm basis
         was a bad guide, and the cold path decides feasibility. *)
      match optimize st c1 ~phase1:true ~max_iterations with
      | Iteration_limit -> finish st Iteration_limit
      | Unbounded | Infeasible -> raise Warm_start_failed
      | Optimal ->
          List.iter
            (fun (j, lo, hi) ->
              st.lower.(j) <- lo;
              st.upper.(j) <- hi)
            !relaxed;
          let ok =
            List.for_all
              (fun (j, _, _) ->
                st.xval.(j) >= st.lower.(j) -. feas_tol
                && st.xval.(j) <= st.upper.(j) +. feas_tol)
              !relaxed
          in
          if not ok then raise Warm_start_failed else phase2 st
    end
  in
  let warm_usable wb =
    Array.length wb.vars = m
    && Array.length wb.at_upper = n
    && Problem.compatible_basis prob wb.vars
  in
  let dispatch () =
    match warm with
    | Some wb when warm_usable wb -> (
        Obs.Metrics.incr m_warm_attempts;
        try solve_warm wb with Warm_start_failed -> solve_cold ())
    | _ -> solve_cold ()
  in
  if not (Obs.Metrics.enabled () || Obs.Trace.active ()) then dispatch ()
  else begin
    let t0 = Obs.Trace.now () in
    let res = dispatch () in
    let dur = Obs.Trace.now () -. t0 in
    Obs.Metrics.incr m_solves;
    Obs.Metrics.add m_pivots res.stats.iterations;
    Obs.Metrics.add m_phase1_pivots res.stats.phase1_iterations;
    Obs.Metrics.add m_refactorizations res.stats.refactorizations;
    Obs.Metrics.add m_drift res.stats.drift_refactorizations;
    Obs.Metrics.add m_growth res.stats.growth_refactorizations;
    Obs.Metrics.add m_degenerate res.stats.degenerate_pivots;
    Obs.Metrics.add m_bound_flips res.stats.bound_flips;
    Obs.Metrics.record_s t_solve dur;
    if Obs.Trace.active () then
      Obs.Trace.emit Obs.Trace.Solve ~name:"lp.revised" ~start_s:t0
        ~dur_s:dur
        [
          ("status", Obs.Trace.Str (status_to_string res.status));
          ("rows", Obs.Trace.Int m);
          ("cols", Obs.Trace.Int n);
          ("iterations", Obs.Trace.Int res.stats.iterations);
          ("phase1_iterations", Obs.Trace.Int res.stats.phase1_iterations);
          ("refactorizations", Obs.Trace.Int res.stats.refactorizations);
          ( "drift_refactorizations",
            Obs.Trace.Int res.stats.drift_refactorizations );
          ( "growth_refactorizations",
            Obs.Trace.Int res.stats.growth_refactorizations );
          ("degenerate_pivots", Obs.Trace.Int res.stats.degenerate_pivots);
          ("bound_flips", Obs.Trace.Int res.stats.bound_flips);
          ("warm", Obs.Trace.Bool (warm <> None));
        ];
    res
  end

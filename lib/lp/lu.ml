(* Gaussian elimination on a hash-based sparse working matrix.
   Invariants maintained during elimination:
   - [values] holds exactly the non-zero entries of the remaining (active)
     submatrix, keyed by [row * dim + col];
   - [row_set.(r)] / [col_set.(c)] are the active column/row index sets of
     row [r] / column [c], consistent with [values];
   - eliminated rows and columns are absent from all three structures. *)

type step = {
  pivot_row : int;
  pivot_col : int;
  pivot_val : float;
  (* Multipliers of the L factor: row_r <- row_r -. f *. row_{pivot_row}. *)
  l_rows : int array;
  l_factors : float array;
  (* Remaining entries of the pivot row (the U row), pivot excluded. *)
  u_cols : int array;
  u_vals : float array;
}

(* The factorization is stored flattened into parallel arrays: the solves
   walk every step once per call, and sequential unboxed reads of the pivot
   metadata (with the per-step entry arrays dereferenced only for nonzero
   positions) beat an array of step records by a wide margin. *)
type t = {
  dim : int;
  pivot_rows : int array;
  pivot_cols : int array;
  pivot_vals : float array;
  l_rows : int array array;  (* per step *)
  l_factors : float array array;
  u_cols : int array array;  (* per step: the U row, pivot excluded *)
  u_vals : float array array;
  (* The U column pivoted at step k, as target ROW indices (pivot rows of
     the earlier steps owning each entry) — the scatter form of the
     backward/transpose solves. *)
  ucol_rows : int array array;
  ucol_vals : float array array;
}

exception Singular of int

let drop_tol = 1e-13
let abs_pivot_tol = 1e-11
let threshold = 0.01

let key dim r c = (r * dim) + c

let factor ~dim cols =
  if Array.length cols <> dim then invalid_arg "Lu.factor: column count";
  let values : (int, float) Hashtbl.t = Hashtbl.create (dim * 4) in
  let row_set = Array.init dim (fun _ -> Hashtbl.create 4) in
  let col_set = Array.init dim (fun _ -> Hashtbl.create 4) in
  let insert r c v =
    Hashtbl.replace values (key dim r c) v;
    Hashtbl.replace row_set.(r) c ();
    Hashtbl.replace col_set.(c) r ()
  in
  let remove r c =
    Hashtbl.remove values (key dim r c);
    Hashtbl.remove row_set.(r) c;
    Hashtbl.remove col_set.(c) r
  in
  (* Total lookup for entries the row/col sets claim exist. *)
  let entry r c =
    match Hashtbl.find_opt values (key dim r c) with
    | Some v -> v
    | None ->
        failwith
          (Printf.sprintf
             "Lu.factor: missing matrix entry (%d,%d) during elimination" r c)
  in
  (* Members of a row/col occupancy set in ascending index order, so pivot
     tie-breaks and update arithmetic never depend on hash order. *)
  let sorted_members set =
    Hashtbl.fold (fun i () acc -> i :: acc) set []
    |> List.sort Int.compare
  in
  Array.iteri
    (fun c v -> Sparse_vec.iter (fun r x -> insert r c x) v)
    cols;
  let row_active = Array.make dim true in
  let col_active = Array.make dim true in
  (* Stacks of candidate singleton rows/columns; entries are revalidated
     when popped, so stale entries are harmless. *)
  let singleton_cols = ref [] in
  let singleton_rows = ref [] in
  for i = 0 to dim - 1 do
    if Hashtbl.length col_set.(i) = 1 then
      singleton_cols := i :: !singleton_cols;
    if Hashtbl.length row_set.(i) = 1 then
      singleton_rows := i :: !singleton_rows
  done;
  let col_max c =
    (* Running max is order-insensitive. *)
    (Hashtbl.fold [@lint.allow "R2"])
      (fun r () acc ->
        let a = Float.abs (entry r c) in
        if a > acc then a else acc)
      col_set.(c) 0.
  in
  (* Pop a valid singleton column (count 1, acceptable pivot magnitude). *)
  let rec pop_singleton_col () =
    match !singleton_cols with
    | [] -> None
    | c :: rest ->
        singleton_cols := rest;
        if col_active.(c) && Hashtbl.length col_set.(c) = 1 then begin
          (* Singleton table: the fold visits exactly one binding. *)
          let r = (Hashtbl.fold [@lint.allow "R2"]) (fun r () _ -> r) col_set.(c) (-1) in
          let v = entry r c in
          if Float.abs v > abs_pivot_tol then Some (r, c, v)
          else pop_singleton_col ()
        end
        else pop_singleton_col ()
  in
  let rec pop_singleton_row () =
    match !singleton_rows with
    | [] -> None
    | r :: rest ->
        singleton_rows := rest;
        if row_active.(r) && Hashtbl.length row_set.(r) = 1 then begin
          (* Singleton table: the fold visits exactly one binding. *)
          let c = (Hashtbl.fold [@lint.allow "R2"]) (fun c () _ -> c) row_set.(r) (-1) in
          let v = entry r c in
          (* A row singleton must still respect threshold pivoting within
             its column to bound element growth. *)
          if
            Float.abs v > abs_pivot_tol
            && Float.abs v >= threshold *. col_max c
          then Some (r, c, v)
          else pop_singleton_row ()
        end
        else pop_singleton_row ()
  in
  (* Full Markowitz scan: minimize (row_count-1)*(col_count-1) over entries
     with acceptable magnitude.  Only used when no singleton exists. *)
  let markowitz_scan step =
    let best = ref None in
    let best_cost = ref max_int in
    for c = 0 to dim - 1 do
      if col_active.(c) then begin
        let cc = Hashtbl.length col_set.(c) in
        if cc > 0 && (cc - 1) < !best_cost then begin
          let cmax = col_max c in
          (* Strict [<] keeps the first candidate on cost ties, so the
             scan order (ascending row index) is part of the tie-break
             and the chosen pivot is reproducible. *)
          List.iter
            (fun r ->
              let rc = Hashtbl.length row_set.(r) in
              let cost = (rc - 1) * (cc - 1) in
              if cost < !best_cost then begin
                let v = entry r c in
                if
                  Float.abs v > abs_pivot_tol
                  && Float.abs v >= threshold *. cmax
                then begin
                  best := Some (r, c, v);
                  best_cost := cost
                end
              end)
            (sorted_members col_set.(c))
        end
      end
    done;
    match !best with
    | Some pivot -> pivot
    | None -> raise (Singular step)
  in
  let steps = Array.make dim None in
  for k = 0 to dim - 1 do
    let r_hat, c_hat, v_hat =
      match pop_singleton_col () with
      | Some p -> p
      | None -> (
          match pop_singleton_row () with
          | Some p -> p
          | None -> markowitz_scan k)
    in
    (* Snapshot the pivot row (U row), pivot excluded, in column order so
       the update arithmetic below is performed in a fixed sequence. *)
    let u_entries =
      List.filter_map
        (fun c -> if c <> c_hat then Some (c, entry r_hat c) else None)
        (sorted_members row_set.(r_hat))
    in
    (* Eliminate every other row having an entry in the pivot column. *)
    let elim_rows =
      List.filter (fun r -> r <> r_hat) (sorted_members col_set.(c_hat))
    in
    let l_entries = ref [] in
    List.iter
      (fun r ->
        let f = entry r c_hat /. v_hat in
        l_entries := (r, f) :: !l_entries;
        remove r c_hat;
        List.iter
          (fun (c, u) ->
            let k' = key dim r c in
            match Hashtbl.find_opt values k' with
            | Some old ->
                let next = old -. (f *. u) in
                if Float.abs next <= drop_tol then begin
                  remove r c;
                  if Hashtbl.length col_set.(c) = 1 then
                    singleton_cols := c :: !singleton_cols;
                  if Hashtbl.length row_set.(r) = 1 then
                    singleton_rows := r :: !singleton_rows
                end
                else Hashtbl.replace values k' next
            | None ->
                let next = -.f *. u in
                if Float.abs next > drop_tol then insert r c next)
          u_entries;
        if Hashtbl.length row_set.(r) = 1 then
          singleton_rows := r :: !singleton_rows)
      elim_rows;
    (* Retire the pivot row and column. *)
    List.iter
      (fun (c, _) ->
        remove r_hat c;
        if Hashtbl.length col_set.(c) = 1 then
          singleton_cols := c :: !singleton_cols)
      u_entries;
    remove r_hat c_hat;
    row_active.(r_hat) <- false;
    col_active.(c_hat) <- false;
    let l_rows = Array.of_list (List.map fst !l_entries) in
    let l_factors = Array.of_list (List.map snd !l_entries) in
    let u_cols = Array.of_list (List.map fst u_entries) in
    let u_vals = Array.of_list (List.map snd u_entries) in
    steps.(k) <-
      Some
        {
          pivot_row = r_hat;
          pivot_col = c_hat;
          pivot_val = v_hat;
          l_rows;
          l_factors;
          u_cols;
          u_vals;
        }
  done;
  let steps =
    Array.map
      (function Some s -> s | None -> assert false)
      steps
  in
  (* Index the U entries by the step at which their column is pivoted,
     recording the owning step's pivot row directly. *)
  let step_of_col = Array.make dim (-1) in
  Array.iteri (fun k s -> step_of_col.(s.pivot_col) <- k) steps;
  let ucol = Array.make dim [] in
  Array.iteri
    (fun _ s ->
      Array.iteri
        (fun p c ->
          let k = step_of_col.(c) in
          ucol.(k) <- (s.pivot_row, s.u_vals.(p)) :: ucol.(k))
        s.u_cols)
    steps;
  {
    dim;
    pivot_rows = Array.map (fun (s : step) -> s.pivot_row) steps;
    pivot_cols = Array.map (fun (s : step) -> s.pivot_col) steps;
    pivot_vals = Array.map (fun (s : step) -> s.pivot_val) steps;
    l_rows = Array.map (fun (s : step) -> s.l_rows) steps;
    l_factors = Array.map (fun (s : step) -> s.l_factors) steps;
    u_cols = Array.map (fun (s : step) -> s.u_cols) steps;
    u_vals = Array.map (fun (s : step) -> s.u_vals) steps;
    ucol_rows =
      Array.map (fun l -> Array.of_list (List.map fst l)) ucol;
    ucol_vals =
      Array.map (fun l -> Array.of_list (List.map snd l)) ucol;
  }

let dim t = t.dim

let solve_mut t b =
  let n = t.dim in
  (* Forward: apply the recorded row operations to b.  Zero entries are
     skipped, so the cost tracks the sparsity of the right-hand side (an
     FTRAN of an entering column touches only a few rows). *)
  for k = 0 to n - 1 do
    let br = b.(Array.unsafe_get t.pivot_rows k) in
    if br <> 0. then begin
      let rows = t.l_rows.(k) and factors = t.l_factors.(k) in
      for p = 0 to Array.length rows - 1 do
        let r = Array.unsafe_get rows p in
        b.(r) <- b.(r) -. (Array.unsafe_get factors p *. br)
      done
    end
  done;
  (* Backward: solve U x = b in reverse pivot order, scatter form.  Once
     x at this step's pivot column is known, its contribution is pushed
     into the still-unsolved rows (all U-column entries belong to earlier
     steps); a zero solution entry costs one comparison. *)
  let x = Array.make n 0. in
  for k = n - 1 downto 0 do
    let xk =
      b.(Array.unsafe_get t.pivot_rows k) /. Array.unsafe_get t.pivot_vals k
    in
    x.(Array.unsafe_get t.pivot_cols k) <- xk;
    if xk <> 0. then begin
      let rows = t.ucol_rows.(k) and vals = t.ucol_vals.(k) in
      for p = 0 to Array.length rows - 1 do
        let r = Array.unsafe_get rows p in
        b.(r) <- b.(r) -. (Array.unsafe_get vals p *. xk)
      done
    end
  done;
  x

let solve t b = solve_mut t (Array.copy b)

let solve_transpose_mut t c =
  let n = t.dim in
  let z = Array.make n 0. in
  (* Forward: solve U^T z = c in pivot order, scatter form.  A step's
     [u_cols] all pivot at later steps, so pushing z's contribution into
     them keeps the remaining system consistent while zero entries are
     skipped entirely. *)
  for k = 0 to n - 1 do
    let zk =
      c.(Array.unsafe_get t.pivot_cols k) /. Array.unsafe_get t.pivot_vals k
    in
    z.(Array.unsafe_get t.pivot_rows k) <- zk;
    if zk <> 0. then begin
      let cols = t.u_cols.(k) and vals = t.u_vals.(k) in
      for p = 0 to Array.length cols - 1 do
        let cc = Array.unsafe_get cols p in
        c.(cc) <- c.(cc) -. (Array.unsafe_get vals p *. zk)
      done
    end
  done;
  (* Backward: apply the transposed row operations in reverse. *)
  for k = n - 1 downto 0 do
    let rows = t.l_rows.(k) and factors = t.l_factors.(k) in
    let acc = ref 0. in
    for p = 0 to Array.length rows - 1 do
      acc :=
        !acc +. (Array.unsafe_get factors p *. z.(Array.unsafe_get rows p))
    done;
    let r = Array.unsafe_get t.pivot_rows k in
    z.(r) <- z.(r) -. !acc
  done;
  z

let solve_transpose t c = solve_transpose_mut t (Array.copy c)

let fill_nnz t =
  let acc = ref 0 in
  for k = 0 to t.dim - 1 do
    acc := !acc + 1 + Array.length t.l_rows.(k) + Array.length t.u_cols.(k)
  done;
  !acc

(** Dense two-phase tableau simplex over non-negative variables.

    A deliberately independent reference implementation used to cross-check
    the sparse {!Revised} solver in tests, and to solve small problems.  All
    variables are implicitly constrained to [x >= 0]; upper bounds must be
    materialized as explicit rows by the caller.  Bland's rule is used
    throughout, so the method always terminates. *)

type sense = Le | Ge | Eq

type status = Optimal | Infeasible | Unbounded | Iteration_limit

type result = {
  status : status;
  x : float array;  (** variable values at the optimum *)
  objective : float;
}

val solve :
  ?maximize:bool ->
  ?max_pivots:int ->
  obj:float array ->
  constraints:(float array * sense * float) array ->
  unit ->
  result
(** [solve ~obj ~constraints ()] optimizes [obj . x] subject to the given
    dense rows and [x >= 0].  Default is minimization.  [max_pivots]
    (default unlimited) caps the total pivots across both phases; when
    exhausted the result is [Iteration_limit] with a zero [x] — primarily
    for exercising solver-failure paths in tests. *)

type t = {
  nrows : int;
  ncols : int;
  cols : Sparse_vec.t array;
  obj : float array;
  lower : float array;
  upper : float array;
  rhs : float array;
  basis_hint : int array option;
}

let validate ?(strict = false) t =
  let check c msg = if not c then invalid_arg ("Problem: " ^ msg) in
  let checkf c fmt = Printf.ksprintf (check c) fmt in
  check (t.nrows >= 0 && t.ncols >= 0) "negative dimensions";
  check (Array.length t.cols = t.ncols) "cols length";
  check (Array.length t.obj = t.ncols) "obj length";
  check (Array.length t.lower = t.ncols) "lower length";
  check (Array.length t.upper = t.ncols) "upper length";
  check (Array.length t.rhs = t.nrows) "rhs length";
  Array.iteri
    (fun j col ->
      Sparse_vec.iter
        (fun i a ->
          if i >= t.nrows then
            invalid_arg
              (Printf.sprintf "Problem: column %d has row index %d >= nrows %d"
                 j i t.nrows);
          if not (Float.is_finite a) then
            invalid_arg
              (Printf.sprintf
                 "Problem: column %d has non-finite coefficient %g at row %d" j
                 a i))
        col;
      if strict && Sparse_vec.nnz col = 0 then
        invalid_arg
          (Printf.sprintf
             "Problem: column %d is empty (appears in no constraint)" j))
    t.cols;
  for j = 0 to t.ncols - 1 do
    checkf
      (not (Float.is_nan t.lower.(j) || Float.is_nan t.upper.(j)))
      "NaN bound on column %d" j;
    checkf
      (t.lower.(j) <= t.upper.(j))
      "column %d has lower bound %g > upper bound %g" j t.lower.(j) t.upper.(j);
    checkf (t.lower.(j) < infinity) "column %d has lower bound +inf" j;
    checkf (t.upper.(j) > neg_infinity) "column %d has upper bound -inf" j;
    checkf (Float.is_finite t.obj.(j))
      "column %d has non-finite objective coefficient %g" j t.obj.(j)
  done;
  for i = 0 to t.nrows - 1 do
    checkf (Float.is_finite t.rhs.(i)) "row %d has non-finite rhs %g" i
      t.rhs.(i)
  done;
  match t.basis_hint with
  | None -> ()
  | Some hint ->
      check (Array.length hint = t.nrows) "basis_hint length";
      Array.iteri
        (fun i j ->
          if j >= 0 then begin
            check (j < t.ncols) "basis_hint column out of range";
            let col = t.cols.(j) in
            check (Sparse_vec.nnz col = 1) "basis_hint column not a unit vector";
            check (Sparse_vec.get col i = 1.) "basis_hint column not e_i"
          end)
        hint

let nnz t = Array.fold_left (fun acc c -> acc + Sparse_vec.nnz c) 0 t.cols

let compatible_basis t vars =
  Array.length vars = t.nrows
  &&
  let seen = Array.make t.ncols false in
  Array.for_all
    (fun j ->
      j = -1
      || (j >= 0 && j < t.ncols
          &&
          if seen.(j) then false
          else begin
            seen.(j) <- true;
            true
          end))
    vars

let activity t x =
  let act = Array.make t.nrows 0. in
  Array.iteri
    (fun j col -> if x.(j) <> 0. then Sparse_vec.axpy_dense x.(j) col act)
    t.cols;
  act

let objective_value t x =
  let acc = ref 0. in
  for j = 0 to t.ncols - 1 do
    acc := !acc +. (t.obj.(j) *. x.(j))
  done;
  !acc

let max_constraint_violation t x =
  let act = activity t x in
  let viol = ref 0. in
  for i = 0 to t.nrows - 1 do
    viol := Float.max !viol (Float.abs (act.(i) -. t.rhs.(i)))
  done;
  for j = 0 to t.ncols - 1 do
    viol := Float.max !viol (t.lower.(j) -. x.(j));
    viol := Float.max !viol (x.(j) -. t.upper.(j))
  done;
  Float.max !viol 0.

type t = { idx : int array; value : float array }

let drop_tol = 1e-12

let empty = { idx = [||]; value = [||] }

let nnz v = Array.length v.idx

let of_assoc pairs =
  let pairs = List.filter (fun (_, x) -> Float.abs x > 0.) pairs in
  List.iter
    (fun (i, _) ->
      if i < 0 then invalid_arg "Sparse_vec.of_assoc: negative index")
    pairs;
  let sorted = List.sort (fun (i, _) (j, _) -> Int.compare i j) pairs in
  (* Sum duplicates, then drop tiny entries. *)
  let rec merge acc = function
    | [] -> List.rev acc
    | ((i : int), x) :: rest -> (
        match acc with
        | (j, y) :: acc' when i = j -> merge ((j, y +. x) :: acc') rest
        | _ -> merge ((i, x) :: acc) rest)
  in
  let merged =
    List.filter (fun (_, x) -> Float.abs x > drop_tol) (merge [] sorted)
  in
  {
    idx = Array.of_list (List.map fst merged);
    value = Array.of_list (List.map snd merged);
  }

let of_arrays idx value =
  if Array.length idx <> Array.length value then
    invalid_arg "Sparse_vec.of_arrays: length mismatch";
  for p = 1 to Array.length idx - 1 do
    if idx.(p - 1) >= idx.(p) then
      invalid_arg "Sparse_vec.of_arrays: indices not strictly increasing"
  done;
  if Array.length idx > 0 && idx.(0) < 0 then
    invalid_arg "Sparse_vec.of_arrays: negative index";
  { idx; value }

let to_assoc v =
  List.init (nnz v) (fun p -> (v.idx.(p), v.value.(p)))

let get v i =
  let rec search lo hi =
    if lo >= hi then 0.
    else
      let mid = (lo + hi) / 2 in
      if v.idx.(mid) = i then v.value.(mid)
      else if v.idx.(mid) < i then search (mid + 1) hi
      else search lo mid
  in
  search 0 (nnz v)

let dot_dense v d =
  let acc = ref 0. in
  for p = 0 to nnz v - 1 do
    acc := !acc +. (v.value.(p) *. d.(v.idx.(p)))
  done;
  !acc

let axpy_dense a v d =
  for p = 0 to nnz v - 1 do
    d.(v.idx.(p)) <- d.(v.idx.(p)) +. (a *. v.value.(p))
  done

let iter f v =
  for p = 0 to nnz v - 1 do
    f v.idx.(p) v.value.(p)
  done

let fold f init v =
  let acc = ref init in
  for p = 0 to nnz v - 1 do
    acc := f !acc v.idx.(p) v.value.(p)
  done;
  !acc

let map_values f v =
  of_assoc (List.map (fun (i, x) -> (i, f x)) (to_assoc v))

let max_abs v =
  let m = ref 0. in
  for p = 0 to nnz v - 1 do
    let a = Float.abs v.value.(p) in
    if a > !m then m := a
  done;
  !m

let scale a v = map_values (fun x -> a *. x) v

let pp ppf v =
  Format.fprintf ppf "@[<h>[";
  iter (fun i x -> Format.fprintf ppf " %d:%g" i x) v;
  Format.fprintf ppf " ]@]"

(** Linear programs in computational standard form.

    A problem is [minimize c'x  subject to  A x = rhs,  lower <= x <= upper],
    where the columns of [A] include any slack columns (the {!Model} builder
    adds one slack per inequality row).  Bounds may be infinite. *)

type t = {
  nrows : int;
  ncols : int;
  cols : Sparse_vec.t array;  (** [ncols] columns of [A], each of height [nrows] *)
  obj : float array;          (** minimization objective, length [ncols] *)
  lower : float array;        (** lower bounds, may be [neg_infinity] *)
  upper : float array;        (** upper bounds, may be [infinity] *)
  rhs : float array;          (** right-hand side, length [nrows] *)
  basis_hint : int array option;
      (** Optional: [hint.(i)] is a column that is a pure unit vector on row
          [i] (e.g. that row's slack), used to warm-start the simplex with an
          identity basis.  [-1] entries mean "no hint for this row". *)
}

val validate : ?strict:bool -> t -> unit
(** Check structural invariants (array lengths, column heights, bound
    order, hint columns are unit vectors) and numerical sanity: every
    matrix coefficient, objective coefficient and rhs entry must be
    finite, bounds must not be NaN, no [lower > upper], no [lower = +inf]
    or [upper = -inf].  With [strict] (default [false]), additionally
    reject empty columns — variables appearing in no constraint are legal
    LP-wise (and are handled by {!Presolve} and both solvers) but are
    almost always a modelling bug in the planning LPs, so the robust
    planning pipeline opts in.
    @raise Invalid_argument with a descriptive message when an invariant
    is violated. *)

val nnz : t -> int
(** Total non-zeros in the constraint matrix. *)

val compatible_basis : t -> int array -> bool
(** [compatible_basis t vars] checks that a warm-start basis description is
    structurally usable for this problem: one entry per row, each either
    [-1] (meaning "use that row's artificial") or a distinct column index in
    [0, ncols).  Nonsingularity is {e not} checked here; the solver falls
    back to a cold start if factorization fails. *)

val activity : t -> float array -> float array
(** [activity t x] computes [A x] (length [nrows]). *)

val objective_value : t -> float array -> float

val max_constraint_violation : t -> float array -> float
(** Largest violation of [A x = rhs] or of a variable bound by the point
    [x]; 0. for a feasible point. *)

type var = int

let var_index v = v

type sense = Le | Ge | Eq

type direction = Minimize | Maximize

type status = Optimal | Infeasible | Unbounded | Iteration_limit

let status_equal a b =
  match (a, b) with
  | Optimal, Optimal
  | Infeasible, Infeasible
  | Unbounded, Unbounded
  | Iteration_limit, Iteration_limit ->
      true
  | (Optimal | Infeasible | Unbounded | Iteration_limit), _ -> false

type row = { terms : (float * var) list; sense : sense; rhs : float; rname : string }

type t = {
  dir : direction;
  mutable names : string list;  (* reversed *)
  mutable lowers : float list;  (* reversed *)
  mutable uppers : float list;  (* reversed *)
  mutable objs : float array;   (* grown on demand *)
  mutable nvars : int;
  mutable rows : row list;      (* reversed *)
  mutable nrows : int;
  (* O(1) per-variable views of the reversed building lists, materialized
     on first lookup or solve and invalidated by [add_var]; keeps
     [var_name]/[var_bounds] off the O(n) [List.nth] path. *)
  mutable finalized : finalized option;
}

and finalized = {
  f_names : string array;
  f_lowers : float array;
  f_uppers : float array;
}

type basis = { b_nvars : int; b_nrows : int; rb : Revised.basis }

let m_warm_supplied = Obs.Metrics.counter "lp.model.warm_supplied"
let m_warm_used = Obs.Metrics.counter "lp.model.warm_used"
let m_warm_shape_mismatch = Obs.Metrics.counter "lp.model.warm_shape_mismatch"
let m_certified = Obs.Metrics.counter "lp.model.certified"
let m_cert_rejected = Obs.Metrics.counter "lp.model.certify_rejected"
let t_certify = Obs.Metrics.timer "lp.model.certify_s"

type solution = {
  status : status;
  objective : float;
  values : float array;
  stats : Revised.stats option;
  row_duals : float array option;
  basis : basis option;
}

let create ?(direction = Minimize) () =
  {
    dir = direction;
    names = [];
    lowers = [];
    uppers = [];
    objs = Array.make 16 0.;
    nvars = 0;
    rows = [];
    nrows = 0;
    finalized = None;
  }

let finalize t =
  match t.finalized with
  | Some f -> f
  | None ->
      let n = t.nvars in
      let names = Array.make n "" in
      let lowers = Array.make n 0. and uppers = Array.make n 0. in
      List.iteri (fun k s -> names.(n - 1 - k) <- s) t.names;
      List.iteri (fun k l -> lowers.(n - 1 - k) <- l) t.lowers;
      List.iteri (fun k u -> uppers.(n - 1 - k) <- u) t.uppers;
      let f = { f_names = names; f_lowers = lowers; f_uppers = uppers } in
      t.finalized <- Some f;
      f

let direction t = t.dir

let add_var t ?(lower = 0.) ?(upper = infinity) ?(obj = 0.) name =
  if lower > upper then invalid_arg "Model.add_var: lower > upper";
  let v = t.nvars in
  t.names <- name :: t.names;
  t.lowers <- lower :: t.lowers;
  t.uppers <- upper :: t.uppers;
  if v >= Array.length t.objs then begin
    let bigger = Array.make (2 * (v + 1)) 0. in
    Array.blit t.objs 0 bigger 0 (Array.length t.objs);
    t.objs <- bigger
  end;
  t.objs.(v) <- obj;
  t.nvars <- v + 1;
  t.finalized <- None;
  v

let var_name t v =
  if v < 0 || v >= t.nvars then invalid_arg "Model.var_name: unknown var";
  (finalize t).f_names.(v)

let set_obj t v c =
  if v < 0 || v >= t.nvars then invalid_arg "Model.set_obj: unknown var";
  t.objs.(v) <- c

let add_constraint t ?(name = "") terms sense rhs =
  List.iter
    (fun (_, v) ->
      if v < 0 || v >= t.nvars then
        invalid_arg "Model.add_constraint: unknown var")
    terms;
  t.rows <- { terms; sense; rhs; rname = name } :: t.rows;
  t.nrows <- t.nrows + 1

let add_le t ?name terms rhs = add_constraint t ?name terms Le rhs
let add_ge t ?name terms rhs = add_constraint t ?name terms Ge rhs
let add_eq t ?name terms rhs = add_constraint t ?name terms Eq rhs

let n_vars t = t.nvars
let n_constraints t = t.nrows

let var_of_index t j =
  if j < 0 || j >= t.nvars then invalid_arg "Model.var_of_index: out of range";
  j

let var_bounds t v =
  if v < 0 || v >= t.nvars then invalid_arg "Model.var_bounds: unknown var";
  let f = finalize t in
  (f.f_lowers.(v), f.f_uppers.(v))

let obj_coeff t v =
  if v < 0 || v >= t.nvars then invalid_arg "Model.obj_coeff: unknown var";
  t.objs.(v)

let iter_constraints t f =
  List.iter
    (fun r -> f ~name:r.rname r.terms r.sense r.rhs)
    (List.rev t.rows)

let value sol v = sol.values.(v)

(* ---- lowering to the revised solver's computational form ---- *)

let to_problem t =
  let n = t.nvars and m = t.nrows in
  let f = finalize t in
  let rows = Array.of_list (List.rev t.rows) in
  let lower = Array.make (n + m) 0. and upper = Array.make (n + m) 0. in
  Array.blit f.f_lowers 0 lower 0 n;
  Array.blit f.f_uppers 0 upper 0 n;
  let obj = Array.make (n + m) 0. in
  let sign = match t.dir with Minimize -> 1. | Maximize -> -1. in
  for j = 0 to n - 1 do
    obj.(j) <- sign *. t.objs.(j)
  done;
  (* One slack column per row: A x + s = rhs. *)
  let col_entries = Array.make (n + m) [] in
  let rhs = Array.make m 0. in
  let hint = Array.make m (-1) in
  Array.iteri
    (fun i row ->
      List.iter
        (fun (c, v) -> col_entries.(v) <- (i, c) :: col_entries.(v))
        row.terms;
      rhs.(i) <- row.rhs;
      let s = n + i in
      col_entries.(s) <- [ (i, 1.) ];
      hint.(i) <- s;
      match row.sense with
      | Le ->
          lower.(s) <- 0.;
          upper.(s) <- infinity
      | Ge ->
          lower.(s) <- neg_infinity;
          upper.(s) <- 0.
      | Eq ->
          lower.(s) <- 0.;
          upper.(s) <- 0.)
    rows;
  {
    Problem.nrows = m;
    ncols = n + m;
    cols = Array.map Sparse_vec.of_assoc col_entries;
    obj;
    lower;
    upper;
    rhs;
    basis_hint = Some hint;
  }

let basis_shape b = (b.b_nvars, b.b_nrows)

(* THE basis-compatibility predicate.  The lowering maps variable [v] to
   column [v] and row [i]'s slack to column [nvars + i], so (nvars, nrows)
   equality is exactly what makes a basis portable across solves (and
   across freshly built models of the same shape).  Every consumer of a
   warm-start token — [solve] itself, the certified fallback chain, the
   serving layer's warm-basis pool — must route through this one
   implementation instead of re-deriving the shape check. *)
let basis_compatible t b = b.b_nvars = t.nvars && b.b_nrows = t.nrows

let objective_of t values =
  let acc = ref 0. in
  for j = 0 to t.nvars - 1 do
    acc := !acc +. (t.objs.(j) *. values.(j))
  done;
  !acc

let finish_revised t ?row_duals ?basis full_x status stats =
  (* Values are only meaningful at an optimum; zero them otherwise so no
     caller can accidentally consume a half-converged iterate. *)
  let values =
    if status = Optimal then Array.sub full_x 0 t.nvars
    else Array.make t.nvars 0.
  in
  { status; objective = objective_of t values; values; stats; row_duals; basis }

let map_status = function
  | Revised.Optimal -> Optimal
  | Revised.Infeasible -> Infeasible
  | Revised.Unbounded -> Unbounded
  | Revised.Iteration_limit -> Iteration_limit

(* Non-presolve revised solve, also returning the lowered problem and the
   raw solver result so {!solve_certified} can re-check them. *)
let solve_raw ?max_iterations ?deadline ?bland_after ?warm_start t =
  let prob = to_problem t in
  (* A warm basis is only meaningful for a model of identical shape; the
     shared {!basis_compatible} predicate decides. *)
  let basis =
    match warm_start with
    | Some w when basis_compatible t w ->
        Obs.Metrics.incr m_warm_supplied;
        Obs.Metrics.incr m_warm_used;
        Some w.rb
    | Some _ ->
        Obs.Metrics.incr m_warm_supplied;
        Obs.Metrics.incr m_warm_shape_mismatch;
        None
    | None -> None
  in
  let res = Revised.solve ?max_iterations ?deadline ?bland_after ?basis prob in
  (* Internal duals are for the minimized objective; convert to the
     model's direction. *)
  let sign = match t.dir with Minimize -> 1. | Maximize -> -1. in
  let row_duals = Array.map (fun y -> sign *. y) res.Revised.duals in
  let basis = { b_nvars = t.nvars; b_nrows = t.nrows; rb = res.Revised.basis } in
  let sol =
    finish_revised t ~row_duals ~basis res.Revised.x
      (map_status res.Revised.status)
      (Some res.Revised.stats)
  in
  (prob, res, sol)

let solve_revised ?(presolve = false) ?max_iterations ?deadline ?bland_after
    ?warm_start t =
  if not presolve then begin
    let _, _, sol = solve_raw ?max_iterations ?deadline ?bland_after ?warm_start t in
    sol
  end
  else begin
    let prob = to_problem t in
    let empty () = Array.make (t.nvars + t.nrows) 0. in
    match Presolve.apply prob with
    | Presolve.Infeasible_detected -> finish_revised t (empty ()) Infeasible None
    | Presolve.Unbounded_detected -> finish_revised t (empty ()) Unbounded None
    | Presolve.Reduced (reduced, postsolve) ->
        if reduced.Problem.ncols = 0 then
          (* Everything was pinned by presolve; the point is feasible. *)
          finish_revised t (postsolve [||]) Optimal None
        else begin
          let res = Revised.solve ?max_iterations ?deadline reduced in
          finish_revised t
            (postsolve res.Revised.x)
            (map_status res.Revised.status)
            (Some res.Revised.stats)
        end
  end

(* ---- lowering to the dense reference solver ----
   The dense solver only supports x >= 0, so general bounds are compiled
   away: finite lower bounds by shifting, finite upper bounds by extra rows,
   free variables by splitting into a difference of non-negatives. *)

let solve_dense ?max_pivots t =
  (* The revised path validates inside [Revised.solve]; the dense lowering
     bypasses it, so validate the lowered form here for the same guarantee
     (descriptive rejection of NaN/inf data instead of a garbage tableau). *)
  Problem.validate (to_problem t);
  let n = t.nvars in
  let fz = finalize t in
  let lower = fz.f_lowers and upper = fz.f_uppers in
  (* Variable v maps to column pos.(v); free variables additionally own a
     negative part at column neg.(v). *)
  let pos = Array.make n (-1) and neg = Array.make n (-1) in
  let ncols = ref 0 in
  let shift = Array.make n 0. in
  for v = 0 to n - 1 do
    pos.(v) <- !ncols;
    incr ncols;
    if lower.(v) = neg_infinity then begin
      neg.(v) <- !ncols;
      incr ncols
    end
    else shift.(v) <- lower.(v)
  done;
  let obj = Array.make !ncols 0. in
  let const = ref 0. in
  for v = 0 to n - 1 do
    obj.(pos.(v)) <- t.objs.(v);
    if neg.(v) >= 0 then obj.(neg.(v)) <- -.t.objs.(v);
    const := !const +. (t.objs.(v) *. shift.(v))
  done;
  let lower_row terms rhs =
    let row = Array.make !ncols 0. in
    let c = ref rhs in
    List.iter
      (fun (a, v) ->
        row.(pos.(v)) <- row.(pos.(v)) +. a;
        if neg.(v) >= 0 then row.(neg.(v)) <- row.(neg.(v)) -. a;
        c := !c -. (a *. shift.(v)))
      terms;
    (row, !c)
  in
  let rows = ref [] in
  List.iter
    (fun r ->
      let row, rhs = lower_row r.terms r.rhs in
      let sense =
        match r.sense with
        | Le -> Dense_simplex.Le
        | Ge -> Dense_simplex.Ge
        | Eq -> Dense_simplex.Eq
      in
      rows := (row, sense, rhs) :: !rows)
    (List.rev t.rows);
  (* Materialize finite upper bounds. *)
  for v = 0 to n - 1 do
    if upper.(v) < infinity then begin
      let row, rhs = lower_row [ (1., v) ] upper.(v) in
      rows := (row, Dense_simplex.Le, rhs) :: !rows
    end
  done;
  let res =
    Dense_simplex.solve
      ~maximize:(t.dir = Maximize)
      ?max_pivots ~obj
      ~constraints:(Array.of_list (List.rev !rows))
      ()
  in
  let status =
    match res.Dense_simplex.status with
    | Dense_simplex.Optimal -> Optimal
    | Dense_simplex.Infeasible -> Infeasible
    | Dense_simplex.Unbounded -> Unbounded
    | Dense_simplex.Iteration_limit -> Iteration_limit
  in
  let values = Array.make n 0. in
  if status = Optimal then
    for v = 0 to n - 1 do
      let x = res.Dense_simplex.x.(pos.(v)) in
      let x = if neg.(v) >= 0 then x -. res.Dense_simplex.x.(neg.(v)) else x in
      values.(v) <- x +. shift.(v)
    done;
  {
    status;
    objective = (if status = Optimal then res.Dense_simplex.objective +. !const else 0.);
    values;
    stats = None;
    row_duals = None;
    basis = None;
  }

let solve ?(solver = `Revised) ?presolve ?max_iterations ?deadline ?bland_after
    ?warm_start t =
  match solver with
  | `Revised ->
      solve_revised ?presolve ?max_iterations ?deadline ?bland_after
        ?warm_start t
  | `Dense -> solve_dense t

(* ---- certified solves ---- *)

let solve_certified ?max_iterations ?deadline ?bland_after ?warm_start t =
  let prob, res, sol = solve_raw ?max_iterations ?deadline ?bland_after ?warm_start t in
  let certify_t0 =
    if Obs.Metrics.enabled () || Obs.Trace.active () then Obs.Trace.now ()
    else 0.
  in
  let report =
    match res.Revised.status with
    | Revised.Optimal ->
        (* Certify in the lowered (minimization) form: the full primal
           vector including slacks against the raw internal duals. *)
        Certify.certify_optimal prob ~x:res.Revised.x ~duals:res.Revised.duals
    | Revised.Infeasible -> (
        match res.Revised.farkas with
        | Some farkas -> Certify.certify_infeasible prob ~farkas
        | None -> Certify.reject "infeasible claim carries no certificate")
    | Revised.Unbounded -> (
        match res.Revised.ray with
        | Some ray -> Certify.certify_unbounded ~x:res.Revised.x prob ~ray
        | None -> Certify.reject "unbounded claim carries no certificate")
    | Revised.Iteration_limit ->
        Certify.reject "iteration/time budget exhausted before optimality"
  in
  if Obs.Metrics.enabled () || Obs.Trace.active () then begin
    let dur = Obs.Trace.now () -. certify_t0 in
    Obs.Metrics.incr m_certified;
    if not report.Certify.certified then Obs.Metrics.incr m_cert_rejected;
    Obs.Metrics.record_s t_certify dur;
    Obs.Trace.emit Obs.Trace.Certify ~name:"lp.model" ~start_s:certify_t0
      ~dur_s:dur
      [
        ("certified", Obs.Trace.Bool report.Certify.certified);
        ("primal_residual", Obs.Trace.Float report.Certify.primal_residual);
        ("duality_gap", Obs.Trace.Float report.Certify.duality_gap);
      ]
  end;
  (sol, report)

let solve_dense_certified ?max_pivots t =
  let sol = solve_dense ?max_pivots t in
  let report =
    match sol.status with
    | Optimal ->
        let prob = to_problem t in
        (* The dense lowering discards duals, so only primal feasibility is
           independently checkable.  Reconstruct the slack block: row [i]'s
           slack is its residual [rhs_i - (A x)_i]. *)
        let full = Array.make (t.nvars + t.nrows) 0. in
        Array.blit sol.values 0 full 0 t.nvars;
        List.iteri
          (fun i r ->
            let act =
              List.fold_left
                (fun acc (c, v) -> acc +. (c *. sol.values.(v)))
                0. r.terms
            in
            full.(t.nvars + i) <- r.rhs -. act)
          (List.rev t.rows);
        Certify.certify_feasible prob ~x:full
    | Infeasible -> Certify.reject "dense solver reported infeasible (no certificate)"
    | Unbounded -> Certify.reject "dense solver reported unbounded (no certificate)"
    | Iteration_limit -> Certify.reject "dense pivot budget exhausted"
  in
  (sol, report)

let pp_solution t ppf sol =
  let status_str =
    match sol.status with
    | Optimal -> "optimal"
    | Infeasible -> "infeasible"
    | Unbounded -> "unbounded"
    | Iteration_limit -> "iteration-limit"
  in
  Format.fprintf ppf "@[<v>status: %s@,objective: %.6g@," status_str
    sol.objective;
  for v = 0 to t.nvars - 1 do
    if Float.abs sol.values.(v) > 1e-9 then
      Format.fprintf ppf "%s = %.6g@," (var_name t v) sol.values.(v)
  done;
  Format.fprintf ppf "@]"

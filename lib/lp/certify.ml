type report = {
  certified : bool;
  primal_residual : float;
  bound_violation : float;
  dual_violation : float;
  duality_gap : float;
  reasons : string list;
}

let blank =
  {
    certified = false;
    primal_residual = 0.;
    bound_violation = 0.;
    dual_violation = 0.;
    duality_gap = 0.;
    reasons = [];
  }

let reject reason = { blank with reasons = [ reason ] }

(* Scaled residual of [A x = rhs]: each row divided by
   [1 + |rhs_i| + sum_j |a_ij x_j|]. *)
let primal_residual (p : Problem.t) x =
  let act = Array.make p.Problem.nrows 0. in
  let mag = Array.make p.Problem.nrows 0. in
  Array.iteri
    (fun j col ->
      let xj = x.(j) in
      if xj <> 0. then
        Sparse_vec.iter
          (fun i a ->
            act.(i) <- act.(i) +. (a *. xj);
            mag.(i) <- mag.(i) +. Float.abs (a *. xj))
          col)
    p.Problem.cols;
  let worst = ref 0. in
  for i = 0 to p.Problem.nrows - 1 do
    let scale = 1. +. Float.abs p.Problem.rhs.(i) +. mag.(i) in
    worst := Float.max !worst (Float.abs (act.(i) -. p.Problem.rhs.(i)) /. scale)
  done;
  !worst

(* Scaled worst violation of [lower <= x <= upper]. *)
let bound_violation (p : Problem.t) x =
  let worst = ref 0. in
  for j = 0 to p.Problem.ncols - 1 do
    let scale = 1. +. Float.abs x.(j) in
    if p.Problem.lower.(j) > neg_infinity then
      worst := Float.max !worst ((p.Problem.lower.(j) -. x.(j)) /. scale);
    if p.Problem.upper.(j) < infinity then
      worst := Float.max !worst ((x.(j) -. p.Problem.upper.(j)) /. scale)
  done;
  Float.max !worst 0.

(* Reduced costs [d_j = c_j - y'a_j] with per-column scale
   [1 + |c_j| + sum_i |a_ij y_i|]. *)
let reduced_costs (p : Problem.t) y =
  Array.init p.Problem.ncols (fun j ->
      let zy = ref 0. and mag = ref 0. in
      Sparse_vec.iter
        (fun i a ->
          zy := !zy +. (a *. y.(i));
          mag := !mag +. Float.abs (a *. y.(i)))
        p.Problem.cols.(j);
      (p.Problem.obj.(j) -. !zy, 1. +. Float.abs p.Problem.obj.(j) +. !mag))

let finalize ~reasons report = { report with certified = reasons = []; reasons }

let certify_optimal ?(feas_tol = 1e-6) ?(opt_tol = 1e-6) (p : Problem.t) ~x
    ~duals =
  if Array.length x <> p.Problem.ncols then
    reject "x has the wrong length"
  else if Array.length duals <> p.Problem.nrows then
    reject "duals have the wrong length"
  else begin
    let reasons = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> reasons := s :: !reasons) fmt in
    let pr = primal_residual p x in
    if pr > feas_tol then fail "primal residual %.3g exceeds %.3g" pr feas_tol;
    let bv = bound_violation p x in
    if bv > feas_tol then fail "bound violation %.3g exceeds %.3g" bv feas_tol;
    (* Dual feasibility relative to where x sits, plus the dual objective
       bound.  For each column, [d_j x_j] is bounded below over the box by
       [d_j l_j] when [d_j > 0] and [d_j u_j] when [d_j < 0]; a positive
       reduced cost facing an infinite lower bound (or negative facing an
       infinite upper) makes the dual bound vacuous, so it must vanish. *)
    let dv = ref 0. in
    let dual_obj = ref 0. in
    let vacuous = ref false in
    for i = 0 to p.Problem.nrows - 1 do
      dual_obj := !dual_obj +. (duals.(i) *. p.Problem.rhs.(i))
    done;
    let rc = reduced_costs p duals in
    for j = 0 to p.Problem.ncols - 1 do
      let d, scale = rc.(j) in
      let rel = d /. scale in
      if rel > opt_tol then
        if p.Problem.lower.(j) > neg_infinity then
          dual_obj := !dual_obj +. (d *. p.Problem.lower.(j))
        else begin
          vacuous := true;
          dv := Float.max !dv rel
        end
      else if rel < -.opt_tol then
        if p.Problem.upper.(j) < infinity then
          dual_obj := !dual_obj +. (d *. p.Problem.upper.(j))
        else begin
          vacuous := true;
          dv := Float.max !dv (-.rel)
        end
      (* |rel| <= opt_tol: treated as zero; contributes nothing. *)
    done;
    if !vacuous then
      fail "dual infeasible: reduced-cost sign violation %.3g" !dv;
    let primal_obj = Problem.objective_value p x in
    let gap =
      Float.abs (primal_obj -. !dual_obj)
      /. (1. +. Float.abs primal_obj +. Float.abs !dual_obj)
    in
    if gap > opt_tol then fail "duality gap %.3g exceeds %.3g" gap opt_tol;
    finalize ~reasons:!reasons
      {
        blank with
        primal_residual = pr;
        bound_violation = bv;
        dual_violation = !dv;
        duality_gap = gap;
      }
  end

let certify_feasible ?(feas_tol = 1e-6) (p : Problem.t) ~x =
  if Array.length x <> p.Problem.ncols then reject "x has the wrong length"
  else begin
    let reasons = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> reasons := s :: !reasons) fmt in
    let pr = primal_residual p x in
    if pr > feas_tol then fail "primal residual %.3g exceeds %.3g" pr feas_tol;
    let bv = bound_violation p x in
    if bv > feas_tol then fail "bound violation %.3g exceeds %.3g" bv feas_tol;
    finalize ~reasons:!reasons
      { blank with primal_residual = pr; bound_violation = bv }
  end

let certify_infeasible ?(tol = 1e-6) (p : Problem.t) ~farkas =
  if Array.length farkas <> p.Problem.nrows then
    reject "certificate has the wrong length"
  else begin
    (* sup over the box of y'Ax, column by column.  [z_j] below the scaled
       tolerance is treated as zero (its box contribution is negligible
       relative to the certificate's slack); a meaningfully nonzero [z_j]
       facing an infinite bound makes the sup infinite and the certificate
       worthless. *)
    let cap = ref 0. and broken = ref None and scale = ref 1. in
    for i = 0 to p.Problem.nrows - 1 do
      scale := !scale +. Float.abs (farkas.(i) *. p.Problem.rhs.(i))
    done;
    (try
       for j = 0 to p.Problem.ncols - 1 do
         let z = ref 0. and mag = ref 0. in
         Sparse_vec.iter
           (fun i a ->
             z := !z +. (a *. farkas.(i));
             mag := !mag +. Float.abs (a *. farkas.(i)))
           p.Problem.cols.(j);
         let z = !z in
         if Float.abs z > tol *. (1. +. !mag) then begin
           let b =
             if z > 0. then p.Problem.upper.(j) else p.Problem.lower.(j)
           in
           if Float.abs b = infinity then begin
             broken := Some j;
             raise Exit
           end;
           cap := !cap +. (z *. b);
           scale := !scale +. Float.abs (z *. b)
         end
       done
     with Exit -> ());
    match !broken with
    | Some j ->
        reject
          (Printf.sprintf
             "certificate needs an infinite bound on column %d to cap y'Ax" j)
    | None ->
        let yb = ref 0. in
        for i = 0 to p.Problem.nrows - 1 do
          yb := !yb +. (farkas.(i) *. p.Problem.rhs.(i))
        done;
        let margin = (!yb -. !cap) /. !scale in
        if margin > tol then { blank with certified = true }
        else
          reject
            (Printf.sprintf "certificate margin %.3g not positive" margin)
  end

let certify_unbounded ?(tol = 1e-6) ?x (p : Problem.t) ~ray =
  if Array.length ray <> p.Problem.ncols then
    reject "ray has the wrong length"
  else begin
    let reasons = ref [] in
    let fail fmt = Printf.ksprintf (fun s -> reasons := s :: !reasons) fmt in
    (* Normalize so verdicts do not depend on the ray's magnitude. *)
    let norm =
      Array.fold_left (fun acc d -> Float.max acc (Float.abs d)) 0. ray
    in
    if norm <= 0. then fail "ray is identically zero"
    else begin
      let d = Array.map (fun v -> v /. norm) ray in
      let act = Array.make p.Problem.nrows 0. in
      let mag = Array.make p.Problem.nrows 0. in
      Array.iteri
        (fun j col ->
          if d.(j) <> 0. then
            Sparse_vec.iter
              (fun i a ->
                act.(i) <- act.(i) +. (a *. d.(j));
                mag.(i) <- mag.(i) +. Float.abs (a *. d.(j)))
              col)
        p.Problem.cols;
      let worst = ref 0. in
      for i = 0 to p.Problem.nrows - 1 do
        worst := Float.max !worst (Float.abs act.(i) /. (1. +. mag.(i)))
      done;
      if !worst > tol then fail "ray residual ‖Ad‖ %.3g exceeds %.3g" !worst tol;
      for j = 0 to p.Problem.ncols - 1 do
        if d.(j) > tol && p.Problem.upper.(j) < infinity then
          fail "ray increases bounded-above column %d" j
        else if d.(j) < -.tol && p.Problem.lower.(j) > neg_infinity then
          fail "ray decreases bounded-below column %d" j
      done;
      let cd = ref 0. and cmag = ref 0. in
      for j = 0 to p.Problem.ncols - 1 do
        cd := !cd +. (p.Problem.obj.(j) *. d.(j));
        cmag := !cmag +. Float.abs (p.Problem.obj.(j) *. d.(j))
      done;
      if !cd >= -.tol *. (1. +. !cmag) then
        fail "objective does not improve along the ray (c'd = %.3g)" !cd;
      match x with
      | None -> ()
      | Some x ->
          let fr = certify_feasible ~feas_tol:tol p ~x in
          if not fr.certified then
            fail "anchor point is not feasible (%s)"
              (String.concat "; " fr.reasons)
    end;
    finalize ~reasons:!reasons blank
  end

let pp ppf r =
  if r.certified then
    Format.fprintf ppf
      "certified (primal %.2g, bounds %.2g, dual %.2g, gap %.2g)"
      r.primal_residual r.bound_violation r.dual_violation r.duality_gap
  else
    Format.fprintf ppf "rejected: %s" (String.concat "; " r.reasons)

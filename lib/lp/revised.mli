(** Revised simplex method with bounded variables.

    Solves a {!Problem.t} (minimization over [A x = rhs], [l <= x <= u])
    using the revised simplex method: the basis inverse is maintained as a
    sparse {!Lu} factorization refreshed periodically, with product-form eta
    updates in between.  Infeasible starting bases are handled by an
    artificial-variable phase 1.

    Pricing is partial (candidate-list) pricing with Devex-style reference
    weights: between full scans only a small candidate list of nonbasic
    columns has its reduced costs computed, kept current across pivots by a
    per-pivot update along the pivot row; optimality is only declared after
    a rotating scan has examined every column.  Sustained degeneracy
    triggers an automatic switch to Bland's rule (full lowest-index scan),
    which guarantees termination.

    A previous solve's {!basis} can be fed back via [?basis] to warm-start
    a related problem (same dimensions, perturbed rhs/bounds/objective):
    the basis is refactorized, residual bound violations of the warm basic
    variables are repaired by a bound-relaxation phase 1, and any failure
    (singular basis, unrepairable violation) falls back to the cold path
    transparently. *)

type status = Optimal | Infeasible | Unbounded | Iteration_limit

type stats = {
  iterations : int;           (** total simplex pivots (both phases) *)
  phase1_iterations : int;
  refactorizations : int;
  degenerate_pivots : int;
  bound_flips : int;
  drift_refactorizations : int;
      (** refactorizations forced by an FTRAN residual spike (the factorized
          basis no longer reproduces the entering column to tolerance) *)
  growth_refactorizations : int;
      (** refactorizations forced by eta-file growth outpacing the LU fill *)
}

type basis = {
  vars : int array;
      (** [vars.(i)] is the column basic in row [i], or [-1] when that
          row's internal artificial variable is basic (pinned at zero) *)
  at_upper : bool array;
      (** length [ncols]; for nonbasic columns, whether the column sits at
          its upper bound (entries for basic columns are meaningless) *)
}
(** A snapshot of the final simplex basis, usable to warm-start a later
    solve of a problem with the same dimensions. *)

type result = {
  status : status;
  x : float array;
      (** primal values for the problem's columns (length [ncols]);
          meaningful when [status = Optimal] *)
  objective : float;  (** objective value of [x] *)
  duals : float array;
      (** row dual values [y] with [B^T y = c_B] at the final basis *)
  basis : basis;  (** final basis, for warm-starting a related solve *)
  stats : stats;
  farkas : float array option;
      (** when [status = Infeasible]: a Farkas-style certificate [y]
          (length [nrows]) checkable with {!Certify.certify_infeasible} *)
  ray : float array option;
      (** when [status = Unbounded]: an improving direction [d] (length
          [ncols]) checkable with {!Certify.certify_unbounded} *)
}

val solve :
  ?max_iterations:int ->
  ?deadline:float ->
  ?feas_tol:float ->
  ?opt_tol:float ->
  ?refactor_interval:int ->
  ?bland_after:int ->
  ?basis:basis ->
  Problem.t ->
  result
(** Solve the problem.  Defaults: [max_iterations = 200_000],
    [feas_tol = 1e-7], [opt_tol = 1e-7], [refactor_interval = 128],
    [bland_after = 2000] (consecutive degenerate pivots tolerated before
    switching to Bland's rule; lower it only to exercise the fallback in
    tests).  [deadline] is a wall-clock budget in seconds: once exceeded
    the solve stops at the next pivot boundary with
    [status = Iteration_limit] (best effort — the check is amortized, so a
    slow pivot can overrun slightly).  [basis] supplies a warm-start basis
    from a previous solve; it is ignored (cold start) when structurally
    incompatible, and abandoned transparently when singular or
    unrepairable. *)

val pp_status : Format.formatter -> status -> unit

(** Independent certification of LP solver results.

    The revised simplex ({!Revised}) maintains a factorized basis inverse
    that can drift numerically; the dense reference ({!Dense_simplex})
    re-derives everything per pivot but carries no proof either.  This
    module re-checks a claimed result against nothing but the problem data
    — never the solver's internal state — so a caller can treat both
    solvers as untrusted components.

    All residuals are {e scaled} (backward-error style): a row residual is
    divided by [1 + |rhs_i| + sum_j |a_ij x_j|], a reduced-cost violation
    by [1 + |c_j| + sum_i |a_ij y_i|], and the duality gap by
    [1 + |primal| + |dual|].  This keeps verdicts meaningful on badly
    scaled problems (coefficients spanning [1e-8 .. 1e8]) where absolute
    tolerances would be either blind or paranoid. *)

type report = {
  certified : bool;
  primal_residual : float;  (** scaled [max_i |(Ax - b)_i|] *)
  bound_violation : float;  (** scaled worst bound violation of [x] *)
  dual_violation : float;
      (** scaled worst sign-condition violation of the reduced costs *)
  duality_gap : float;  (** scaled [|c'x - dual objective|] *)
  reasons : string list;
      (** empty when [certified]; otherwise one entry per failed check *)
}

val certify_optimal :
  ?feas_tol:float ->
  ?opt_tol:float ->
  Problem.t ->
  x:float array ->
  duals:float array ->
  report
(** Certify a claimed optimal pair: [x] primal-feasible, the reduced
    costs [c_j - y'a_j] dual-feasible with respect to which bound each
    [x_j] sits on, and the duality gap (primal objective minus the bound
    [b'y + sum_j min over the box of d_j x_j]) within tolerance.
    Defaults: [feas_tol = 1e-6], [opt_tol = 1e-6]. *)

val certify_feasible : ?feas_tol:float -> Problem.t -> x:float array -> report
(** Primal feasibility only ([Ax = b] and bounds); used for solutions
    that come without duals (the dense reference solver).  The dual fields
    of the report are zero. *)

val certify_infeasible : ?tol:float -> Problem.t -> farkas:float array -> report
(** Check a Farkas-style infeasibility certificate [y]: writing
    [z_j = y'a_j], every [z_j] that needs an infinite bound to cap
    [z_j x_j] must vanish, and
    [y'b - sum_j (z_j > 0 ? z_j u_j : z_j l_j)] must be strictly
    positive — which no feasible [x] can allow. *)

val certify_unbounded :
  ?tol:float -> ?x:float array -> Problem.t -> ray:float array -> report
(** Check an unbounded-direction certificate [d]: [‖Ad‖∞] small, the
    direction respects the bound structure ([d_j > 0] only where
    [u_j = infinity], [d_j < 0] only where [l_j = neg_infinity]) and the
    objective strictly improves along it ([c'd < 0] for the minimization
    form).  When [x] is supplied its feasibility is checked too (an
    improving ray only proves unboundedness from a feasible point). *)

val reject : string -> report
(** A report that certifies nothing, with the given reason — for results
    that carry no checkable claim (e.g. an iteration-limit status). *)

val pp : Format.formatter -> report -> unit

type t = {
  n : int;
  root : int;
  parent : int array;
  children : int array array;
  depth : int array;
  bfs_order : int array;
  subtree_size : int array;
  tin : int array;
  tout : int array;
}

exception Disconnected of int list

let of_parents ~root parent =
  let n = Array.length parent in
  if root < 0 || root >= n then invalid_arg "Topology.of_parents: bad root";
  if parent.(root) <> -1 then
    invalid_arg "Topology.of_parents: root must have parent -1";
  Array.iteri
    (fun i p ->
      if i <> root && (p < 0 || p >= n || p = i) then
        invalid_arg "Topology.of_parents: bad parent entry")
    parent;
  let child_lists = Array.make n [] in
  Array.iteri
    (fun i p -> if i <> root then child_lists.(p) <- i :: child_lists.(p))
    parent;
  let children =
    Array.map (fun l -> Array.of_list (List.sort Int.compare l)) child_lists
  in
  (* BFS computes depth and detects unreachable nodes (cycles). *)
  let depth = Array.make n (-1) in
  let bfs_order = Array.make n (-1) in
  let queue = Queue.create () in
  Queue.add root queue;
  depth.(root) <- 0;
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    bfs_order.(!count) <- u;
    incr count;
    Array.iter
      (fun v ->
        depth.(v) <- depth.(u) + 1;
        Queue.add v queue)
      children.(u)
  done;
  if !count <> n then
    invalid_arg "Topology.of_parents: parent array contains a cycle";
  let subtree_size = Array.make n 1 in
  for i = n - 1 downto 1 do
    let u = bfs_order.(i) in
    subtree_size.(parent.(u)) <- subtree_size.(parent.(u)) + subtree_size.(u)
  done;
  (* Euler tour intervals via an explicit stack (avoids deep recursion). *)
  let tin = Array.make n 0 and tout = Array.make n 0 in
  let clock = ref 0 in
  let stack = Stack.create () in
  Stack.push (`Enter root) stack;
  while not (Stack.is_empty stack) do
    match Stack.pop stack with
    | `Enter u ->
        tin.(u) <- !clock;
        incr clock;
        Stack.push (`Exit u) stack;
        Array.iter (fun v -> Stack.push (`Enter v) stack) children.(u)
    | `Exit u ->
        tout.(u) <- !clock;
        incr clock
  done;
  { n; root; parent; children; depth; bfs_order; subtree_size; tin; tout }

let neighbors_within layout range =
  (* Simple O(n^2) adjacency; networks here are at most a few hundred
     nodes, so bucketing is unnecessary. *)
  let n = Placement.n layout in
  let adj = Array.make n [] in
  let pos = layout.Placement.positions in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = Placement.dist pos.(i) pos.(j) in
      if d <= range then begin
        adj.(i) <- (j, d) :: adj.(i);
        adj.(j) <- (i, d) :: adj.(j)
      end
    done
  done;
  adj

let build layout ~range =
  let n = Placement.n layout in
  let root = layout.Placement.root in
  let adj = neighbors_within layout range in
  let parent = Array.make n (-1) in
  let hops = Array.make n max_int in
  let linkd = Array.make n infinity in
  hops.(root) <- 0;
  (* BFS by hop count; among equal-hop parents prefer the shorter link. *)
  let frontier = ref [ root ] in
  while !frontier <> [] do
    let next = ref [] in
    List.iter
      (fun u ->
        List.iter
          (fun (v, d) ->
            if hops.(v) > hops.(u) + 1 then begin
              if hops.(v) = max_int then next := v :: !next;
              hops.(v) <- hops.(u) + 1;
              parent.(v) <- u;
              linkd.(v) <- d
            end
            else if hops.(v) = hops.(u) + 1 && d < linkd.(v) then begin
              parent.(v) <- u;
              linkd.(v) <- d
            end)
          adj.(u))
      !frontier;
    frontier := List.sort_uniq Int.compare !next
  done;
  let unreachable = ref [] in
  for i = n - 1 downto 0 do
    if hops.(i) = max_int then unreachable := i :: !unreachable
  done;
  if !unreachable <> [] then raise (Disconnected !unreachable);
  of_parents ~root parent

let min_connecting_range layout =
  (* The minimum range equals the largest edge of a minimum spanning tree
     of the complete distance graph (Prim's algorithm). *)
  let n = Placement.n layout in
  let pos = layout.Placement.positions in
  if n <= 1 then 0.
  else begin
    let in_tree = Array.make n false in
    let best = Array.make n infinity in
    in_tree.(0) <- true;
    for j = 1 to n - 1 do
      best.(j) <- Placement.dist pos.(0) pos.(j)
    done;
    let answer = ref 0. in
    for _ = 1 to n - 1 do
      let u = ref (-1) in
      for j = 0 to n - 1 do
        if (not in_tree.(j)) && (!u < 0 || best.(j) < best.(!u)) then u := j
      done;
      answer := Float.max !answer best.(!u);
      in_tree.(!u) <- true;
      for j = 0 to n - 1 do
        if not in_tree.(j) then
          best.(j) <- Float.min best.(j) (Placement.dist pos.(!u) pos.(j))
      done
    done;
    !answer
  end

let is_ancestor t ~anc ~desc =
  t.tin.(anc) <= t.tin.(desc) && t.tout.(desc) <= t.tout.(anc)

let path_to_root t node =
  let rec up u acc = if u = -1 then List.rev acc else up t.parent.(u) (u :: acc) in
  up node []

let descendants t node =
  let acc = ref [] in
  let rec visit u =
    acc := u :: !acc;
    Array.iter visit t.children.(u)
  in
  visit node;
  !acc

let post_order t =
  let order = Array.make t.n (-1) in
  let i = ref 0 in
  let rec visit u =
    Array.iter visit t.children.(u);
    order.(!i) <- u;
    incr i
  in
  visit t.root;
  order

let non_root_nodes t =
  List.filter (fun i -> i <> t.root) (List.init t.n (fun i -> i))

let height t = Array.fold_left Int.max 0 t.depth

let pp ppf t =
  Format.fprintf ppf "@[<v>tree: %d nodes, height %d, root %d@]" t.n (height t)
    t.root

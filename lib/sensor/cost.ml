type t = { per_message : float array; per_value : float array }

let of_mica2 topo mica =
  let n = topo.Topology.n in
  {
    per_message = Array.make n mica.Mica2.per_message_mj;
    per_value =
      Array.make n
        (Mica2.per_byte_mj mica *. float_of_int mica.Mica2.bytes_per_value);
  }

let with_failures t failure =
  let inflate arr =
    Array.mapi (fun i c -> c *. Failure.expected_multiplier failure i) arr
  in
  { per_message = inflate t.per_message; per_value = inflate t.per_value }

let value_to_root t topo =
  let n = topo.Topology.n in
  let acc = Array.make n 0. in
  (* bfs_order visits parents before children, so one pass suffices. *)
  Array.iter
    (fun i ->
      if i <> topo.Topology.root then
        acc.(i) <- acc.(topo.Topology.parent.(i)) +. t.per_value.(i))
    topo.Topology.bfs_order;
  acc

let message_mj t ~node ~values =
  t.per_message.(node) +. (float_of_int values *. t.per_value.(node))

let scale t f =
  {
    per_message = Array.map (fun c -> c *. f) t.per_message;
    per_value = Array.map (fun c -> c *. f) t.per_value;
  }

(** Per-edge communication cost model consumed by the query planners.

    Each non-root node [i] owns the edge to its parent; sending a message
    with [v] values over it costs [per_message.(i) + v * per_value.(i)].
    The plain model charges the {!Mica2} constants uniformly; failure
    statistics inflate individual edges (Section 4.4). *)

type t = {
  per_message : float array;  (** indexed by node; entry at the root unused *)
  per_value : float array;
}

val of_mica2 : Topology.t -> Mica2.t -> t

val with_failures : t -> Failure.t -> t
(** Inflate each edge by its expected failure multiplier. *)

val value_to_root : t -> Topology.t -> float array
(** [value_to_root t topo] gives, per node, the per-value cost summed over
    every edge on the node's path to the root (0 at the root): the cost of
    carrying one extra value from the node all the way up.  Computed once in
    O(n) by prefix sums down the tree; planners use it instead of walking
    the path for every marginal-cost evaluation. *)

val message_mj : t -> node:int -> values:int -> float
(** Cost of one unicast carrying [values] readings on the node's uplink. *)

val scale : t -> float -> t

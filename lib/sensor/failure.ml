type t = {
  fail_prob : float array;
  reroute_factor : float array;
  drop_prob : float array;
}

let none ~n =
  {
    fail_prob = Array.make n 0.;
    reroute_factor = Array.make n 1.;
    drop_prob = Array.make n 0.;
  }

let uniform ?(max_drop = 0.) rng ~n ~max_prob ~max_factor =
  if max_prob < 0. || max_prob > 1. then
    invalid_arg "Failure.uniform: max_prob out of range";
  if max_factor < 1. then invalid_arg "Failure.uniform: max_factor < 1";
  if max_drop < 0. || max_drop > 1. then
    invalid_arg "Failure.uniform: max_drop out of range";
  {
    fail_prob = Array.init n (fun _ -> Rng.float rng max_prob);
    reroute_factor = Array.init n (fun _ -> Rng.uniform rng ~lo:1. ~hi:max_factor);
    (* Draw nothing when drops are off, so seeds from before the drop model
       existed keep producing the same failure statistics. *)
    drop_prob =
      (if max_drop = 0. then Array.make n 0.
       else Array.init n (fun _ -> Rng.float rng max_drop));
  }

let with_drops t drop_prob =
  if Array.length drop_prob <> Array.length t.fail_prob then
    invalid_arg "Failure.with_drops: length mismatch";
  Array.iter
    (fun p ->
      if Float.is_nan p || p < 0. || p > 1. then
        invalid_arg "Failure.with_drops: probability out of [0, 1]")
    drop_prob;
  { t with drop_prob = Array.copy drop_prob }

let expected_multiplier t i =
  1. +. (t.fail_prob.(i) *. (t.reroute_factor.(i) -. 1.))

let expected_transmissions t i =
  let p = t.drop_prob.(i) in
  if p >= 1. then infinity else 1. /. (1. -. p)

let draw_failures t rng =
  Array.map (fun p -> Rng.float rng 1. < p) t.fail_prob

(** Transient link-failure statistics (Section 4.4).

    The paper's reliable protocol re-routes a message around a failed edge;
    the planner copes with frequent transient failures by inflating each
    edge's cost by (failure probability x extra re-routing cost), so no
    topology recomputation is needed.  This module holds the per-edge
    statistics and produces the inflation factors consumed by
    {!Cost.with_failures}.

    Two kinds of per-edge probability coexist:

    - [fail_prob] is the {e planning-side} statistic: how often a message
      must detour, inflating its cost by [reroute_factor];
    - [drop_prob] is the {e execution-side} statistic: how often a frame is
      actually lost on the air, forcing the execution layer's ACK/
      retransmission machinery (the simnet [Fault] model lifts it via
      [Fault.of_failure]).  [expected_transmissions] is the matching
      analytic prediction. *)

type t = {
  fail_prob : float array;
      (** per edge (indexed by the child node), in [0, 1] *)
  reroute_factor : float array;
      (** multiplicative extra cost paid when the edge fails, e.g. 1.5
          means a re-routed message costs 1.5x more *)
  drop_prob : float array;
      (** per-edge probability that a frame is lost outright and must be
          retransmitted by the execution layer, in [0, 1] *)
}

val none : n:int -> t
(** No failures. *)

val uniform :
  ?max_drop:float -> Rng.t -> n:int -> max_prob:float -> max_factor:float -> t
(** Independent per-edge probabilities in [0, max_prob], re-route factors
    in [1, max_factor], and (when [max_drop > 0], default 0) frame-drop
    probabilities in [0, max_drop].  With [max_drop] omitted the generator
    stream is exactly what it was before the drop model existed. *)

val with_drops : t -> float array -> t
(** Replace the drop probabilities.
    @raise Invalid_argument on a length mismatch or a probability outside
    [0, 1]. *)

val expected_multiplier : t -> int -> float
(** [expected_multiplier t i] is the expected cost multiplier of the edge
    above node [i]: [1 + p_i * (f_i - 1)]. *)

val expected_transmissions : t -> int -> float
(** Expected transmissions per delivered frame on the edge above node [i]
    under its drop probability: [1 / (1 - drop_prob)]; [infinity] when the
    edge drops everything. *)

val draw_failures : t -> Rng.t -> bool array
(** Sample which edges fail during one collection phase. *)

(** Ablation: energy actually burned by the ACK/retransmission layer under
    injected frame loss, against two analytic predictions — the reliability
    sublayer's own per-message cost model
    ({!Simnet.Reliable.expected_cost_multiplier}) and the paper's
    Section-4.4 planning-side inflation [1 + p(f-1)].  Answers must stay
    exact at every measured rate (the retry budget makes loss recoverable);
    only the energy and latency move. *)

val run : ?quick:bool -> seed:int -> unit -> Series.t list

(* Ablation: coping with distribution drift (Section 4.4, "Re-sampling" and
   "Plan Re-calculation").  A hot spot wanders around the field; a plan
   built from stale samples decays.  Three strategies face the same
   150-epoch stream:
   - static: never re-sample, never re-plan;
   - periodic: re-sample and unconditionally re-install every 25 epochs;
   - adaptive: the Window.Policy raises the sampling rate when observed
     accuracy drops, and Replan.consider disseminates only plans that are
     clearly better.
   Energy accounts for collections, full-network sampling sweeps, and plan
   installs. *)

let run ?(quick = false) ~seed () =
  let rng = Rng.create seed in
  let n = if quick then 40 else 70 in
  let k = if quick then 6 else 10 in
  let horizon = if quick then 60 else 160 in
  let layout = Sensor.Placement.uniform rng ~n ~width:200. ~height:200. () in
  let range = Sensor.Topology.min_connecting_range layout *. 1.1 in
  let topo = Sensor.Topology.build layout ~range in
  let mica = Sensor.Mica2.default in
  let cost = Sensor.Cost.of_mica2 topo mica in
  (* A Gaussian bump of +6 degrees orbits the field once per 240 epochs. *)
  let epoch_values t =
    let angle = 2. *. Float.pi *. float_of_int t /. 240. in
    let hot =
      {
        Sensor.Placement.x = 100. +. (70. *. cos angle);
        y = 100. +. (70. *. sin angle);
      }
    in
    Array.map
      (fun p ->
        let d = Sensor.Placement.dist p hot in
        20.
        +. (6. *. exp (-.(d *. d) /. (2. *. 35. *. 35.)))
        +. Rng.gaussian rng ~mu:0. ~sigma:0.7)
      layout.Sensor.Placement.positions
  in
  (* Cost of one full-network sampling sweep: everything ships to root. *)
  let full_plan =
    Prospector.Plan.make topo
      (Array.mapi
         (fun i size -> if i = topo.Sensor.Topology.root then 0 else size)
         topo.Sensor.Topology.subtree_size)
  in
  let sweep_mj = Prospector.Plan.expected_collection_mj topo cost full_plan in
  let budget = ref 0. in
  let warmup = Array.init 20 (fun t -> epoch_values (t - 20)) in
  let initial_samples = Sampling.Sample_set.of_values ~k warmup in
  budget :=
    0.3
    *. (Prospector.Naive.naive_k topo cost ~k ~readings:warmup.(0))
         .Prospector.Naive.collection_mj;
  let initial_plan =
    (Prospector.Lp_lf.plan topo cost initial_samples ~budget:!budget ~k)
      .Prospector.Lp_lf.plan
  in
  let run_strategy strategy =
    let window = Sampling.Window.create ~capacity:12 in
    Array.iter (fun e -> Sampling.Window.add window e) warmup;
    let policy =
      Sampling.Window.Policy.create ~base_rate:0.03 ~max_rate:0.25
        ~target_accuracy:0.55 ()
    in
    let state = Prospector.Replan.create ~initial:initial_plan () in
    let acc_total = ref 0. and energy = ref 0. and sweeps = ref 0 in
    let installs = ref 0 in
    for t = 0 to horizon - 1 do
      let readings = epoch_values t in
      let plan = Prospector.Replan.current state in
      let o = Prospector.Exec.collect topo cost plan ~k ~readings in
      let acc = Prospector.Exec.accuracy ~k ~readings o.Prospector.Exec.returned in
      acc_total := !acc_total +. acc;
      energy :=
        !energy +. o.Prospector.Exec.collection_mj
        +. Prospector.Plan.trigger_mj topo mica plan;
      let sample_now, replan_now =
        match strategy with
        | `Static -> (false, false)
        | `Periodic -> (t mod 25 = 24, t mod 25 = 24)
        | `Adaptive ->
            Sampling.Window.Policy.observe_accuracy policy acc;
            ( Sampling.Window.Policy.should_sample policy rng,
              t mod 10 = 9 )
      in
      if sample_now then begin
        incr sweeps;
        energy := !energy +. sweep_mj;
        Sampling.Window.add window readings
      end;
      if replan_now then begin
        let samples = Sampling.Window.to_sample_set window ~k in
        match strategy with
        | `Periodic ->
            (* Unconditional re-optimization and re-install. *)
            let plan =
              (Prospector.Lp_lf.plan topo cost samples ~budget:!budget ~k)
                .Prospector.Lp_lf.plan
            in
            ignore (Prospector.Replan.force state topo cost plan ~k samples);
            incr installs;
            energy := !energy +. Prospector.Plan.install_mj topo mica plan
        | `Static | `Adaptive -> (
            match
              Prospector.Replan.consider state topo cost mica samples ~k
                ~budget:!budget
            with
            | Prospector.Replan.Disseminated { plan; _ } ->
                incr installs;
                energy := !energy +. Prospector.Plan.install_mj topo mica plan
            | Prospector.Replan.Kept -> ())
      end
    done;
    let h = float_of_int horizon in
    ( 100. *. !acc_total /. h,
      !energy /. h,
      float_of_int !sweeps,
      float_of_int !installs )
  in
  let a_s, e_s, w_s, i_s = run_strategy `Static in
  let a_p, e_p, w_p, i_p = run_strategy `Periodic in
  let a_a, e_a, w_a, i_a = run_strategy `Adaptive in
  [
    Series.make
      ~title:"Ablation: drift — re-sampling and plan re-calculation policies"
      ~columns:
        [ "strategy"; "accuracy_%"; "mJ/epoch"; "sweeps"; "installs" ]
      ~notes:
        [
          "strategy 0 = static plan, 1 = periodic re-install, 2 = adaptive policy";
          "a +6-degree hot spot orbits the field once per 240 epochs";
          Printf.sprintf
            "full-network sampling sweep costs %.1f mJ; plan budget %.1f mJ"
            sweep_mj !budget;
        ]
      [
        [ 0.; a_s; e_s; w_s; i_s ];
        [ 1.; a_p; e_p; w_p; i_p ];
        [ 2.; a_a; e_a; w_a; i_a ];
      ];
  ]

(* table1's sole purpose is printing the Section-2 MICA2 constants table
   to stdout from the experiments CLI, so stdout hygiene is waived for
   the whole file. *)
[@@@lint.allow "R5"]

let run () =
  Format.printf "@.== Table (Section 2): MICA2 energy constants ==@.%a@.@."
    Sensor.Mica2.pp Sensor.Mica2.default

let rates = [ 0.; 0.05; 0.1; 0.2; 0.3 ]

(* Average collection energy, retransmission count and accuracy over the
   test epochs at one frame-drop rate, all from one deterministic seed. *)
let measure (s : Setup.t) plan ~drop seed =
  let n = s.Setup.topo.Sensor.Topology.n in
  let fault = Simnet.Fault.bernoulli ~n ~drop in
  let rng = Rng.create (seed * 6151) in
  let energy, retrans, acc =
    Array.fold_left
      (fun (es, rt, accs) readings ->
        let r =
          Prospector.Simnet_exec.collect s.Setup.topo s.Setup.mica
            ~fault:(fault, rng) plan ~k:s.Setup.k ~readings
        in
        assert (r.Prospector.Simnet_exec.dark = []);
        ( es +. r.Prospector.Simnet_exec.total_mj,
          rt + r.Prospector.Simnet_exec.retransmissions,
          accs
          +. Prospector.Exec.accuracy ~k:s.Setup.k ~readings
               r.Prospector.Simnet_exec.returned ))
      (0., 0, 0.) s.Setup.test_epochs
  in
  let epochs = float_of_int (Array.length s.Setup.test_epochs) in
  (energy /. epochs, float_of_int retrans /. epochs, 100. *. acc /. epochs)

let run ?(quick = false) ~seed () =
  let n = if quick then 30 else 60 in
  let k = if quick then 6 else 10 in
  let s =
    Setup.uniform_gaussian ~seed ~n ~k
      ~n_samples:(if quick then 5 else 10)
      ~n_test:(if quick then 6 else 15)
      ()
  in
  (* Full-bandwidth NAIVE-k plan: its lossless energy is the analytic
     baseline, so the measured inflation is purely the ARQ layer's doing. *)
  let plan =
    Prospector.Plan.make s.Setup.topo
      (Array.mapi
         (fun i size ->
           if i = s.Setup.topo.Sensor.Topology.root then 0 else Int.min size k)
         s.Setup.topo.Sensor.Topology.subtree_size)
  in
  let share =
    let m = s.Setup.mica in
    m.Sensor.Mica2.send_mw /. (m.Sensor.Mica2.send_mw +. m.Sensor.Mica2.recv_mw)
  in
  let base_mj, _, _ = measure s plan ~drop:0. seed in
  let rows =
    List.map
      (fun drop ->
        let mj, retrans, acc = measure s plan ~drop seed in
        let arq =
          Simnet.Reliable.expected_cost_multiplier ~drop ~sender_share:share
        in
        (* The planner's Section-4.4 inflation with a 2x re-route premium:
           one recovery retransmission costs one extra message. *)
        let sec44 = 1. +. drop in
        [ drop; mj /. base_mj; arq; sec44; retrans; acc ])
      rates
  in
  [
    Series.make
      ~title:
        "Ablation: measured ARQ energy under frame loss vs the analytic \
         predictions"
      ~columns:
        [
          "drop"; "measured_x"; "arq_model_x"; "sec4.4_x"; "retrans/run";
          "accuracy_%";
        ]
      ~notes:
        [
          "measured_x: collection energy at this drop rate over the lossless run";
          "arq_model_x: per-message Reliable.expected_cost_multiplier (unicast)";
          "sec4.4_x: the planner's 1 + p(f-1) inflation with a 2x premium";
          "broadcast triggers retransmit as unicasts, so measured_x tops the";
          "unicast-only arq_model_x at high loss; every answer stays exact";
        ]
      rows;
  ]

open Prospector

let greedy (s : Setup.t) ~budget =
  let plan = Greedy.plan s.Setup.topo s.Setup.cost s.Setup.samples ~budget in
  Evaluate.approx s.Setup.topo s.Setup.cost s.Setup.mica plan ~k:s.Setup.k
    ~epochs:s.Setup.test_epochs

let lp_no_lf ?lp_iterations (s : Setup.t) ~budget =
  let r =
    Lp_no_lf.plan ?max_lp_iterations:lp_iterations s.Setup.topo s.Setup.cost
      s.Setup.samples ~budget
  in
  Evaluate.approx s.Setup.topo s.Setup.cost s.Setup.mica r.Lp_no_lf.plan
    ~k:s.Setup.k ~epochs:s.Setup.test_epochs

let lp_lf ?lp_iterations (s : Setup.t) ~budget =
  let r =
    Lp_lf.plan ?max_lp_iterations:lp_iterations s.Setup.topo s.Setup.cost
      s.Setup.samples ~budget ~k:s.Setup.k
  in
  Evaluate.approx s.Setup.topo s.Setup.cost s.Setup.mica r.Lp_lf.plan
    ~k:s.Setup.k ~epochs:s.Setup.test_epochs

(* Baselines asked for only k' of the k values answer a k'-query; their
   accuracy against the true top k is measured, not assumed. *)
let partial_accuracy (s : Setup.t) ~k_fetched =
  let accs =
    Array.map
      (fun readings ->
        let top = Exec.true_top_k ~k:k_fetched readings in
        Exec.accuracy ~k:s.Setup.k ~readings top)
      s.Setup.test_epochs
  in
  Array.fold_left ( +. ) 0. accs /. float_of_int (Array.length accs)

let with_accuracy point accuracy = { point with Evaluate.accuracy }

let naive_k (s : Setup.t) ~k =
  let p =
    Evaluate.naive_k s.Setup.topo s.Setup.cost s.Setup.mica ~k
      ~epochs:s.Setup.test_epochs
  in
  with_accuracy p (partial_accuracy s ~k_fetched:k)

let naive_one (s : Setup.t) ~k =
  let p =
    Evaluate.naive_one s.Setup.topo s.Setup.cost ~k ~epochs:s.Setup.test_epochs
  in
  with_accuracy p (partial_accuracy s ~k_fetched:k)

let oracle (s : Setup.t) ~k =
  let p =
    Evaluate.oracle s.Setup.topo s.Setup.cost s.Setup.mica ~k
      ~epochs:s.Setup.test_epochs
  in
  with_accuracy p (partial_accuracy s ~k_fetched:k)

let oracle_proof (s : Setup.t) =
  Evaluate.oracle_proof s.Setup.topo s.Setup.cost s.Setup.mica ~k:s.Setup.k
    ~epochs:s.Setup.test_epochs

let exact ?lp_iterations (s : Setup.t) ~budget =
  let r =
    Lp_proof.plan ?max_lp_iterations:lp_iterations s.Setup.topo s.Setup.cost
      s.Setup.samples ~budget ~k:s.Setup.k
  in
  Evaluate.exact s.Setup.topo s.Setup.cost s.Setup.mica r.Lp_proof.plan
    ~k:s.Setup.k ~epochs:s.Setup.test_epochs

let naive_k_cost (s : Setup.t) =
  Evaluate.total_per_run_mj (naive_k s ~k:s.Setup.k)

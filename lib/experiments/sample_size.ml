(* Accuracy as a function of how many samples the planner sees.  For each
   count the plan is built from several disjoint slices of a large sample
   pool and the accuracies averaged, so the curve reflects the count, not
   which particular samples landed in the prefix. *)

let sweep name (full : Setup.t) counts budget =
  let total = Sampling.Sample_set.n_samples full.Setup.samples in
  let rows =
    List.map
      (fun count ->
        let offsets =
          if count >= total then [ 0 ]
          else
            let span = total - count in
            [ 0; span / 2; span ] |> List.sort_uniq Int.compare
        in
        let accs =
          List.map
            (fun offset ->
              let s =
                Setup.replan_samples full
                  (Sampling.Sample_set.slice full.Setup.samples ~offset ~count)
              in
              (Planner_eval.lp_lf s ~budget).Prospector.Evaluate.accuracy)
            offsets
        in
        let mean =
          List.fold_left ( +. ) 0. accs /. float_of_int (List.length accs)
        in
        [ float_of_int count; 100. *. mean ])
      counts
  in
  Series.make
    ~title:(Printf.sprintf "Sample-size impact: LP+LF on %s" name)
    ~columns:[ "samples"; "accuracy_%" ]
    ~notes:
      [
        Printf.sprintf "budget fixed at %.1f mJ" budget;
        "each point averages plans built from up to 3 disjoint sample slices";
      ]
    rows

let run ?(quick = false) ~seed () =
  let counts =
    if quick then [ 1; 3; 10; 25 ] else [ 1; 2; 3; 5; 10; 15; 25; 40; 50 ]
  in
  let max_count = List.fold_left Int.max 1 counts in
  let pool = 2 * max_count in
  let synth =
    Setup.uniform_gaussian ~seed
      ~n:(if quick then 40 else 80)
      ~sigma_lo:1. ~sigma_hi:3.
      ~k:(if quick then 8 else 15)
      ~n_samples:pool
      ~n_test:(if quick then 8 else 20)
      ()
  in
  let lab =
    Setup.intel_lab ~seed ~k:10 ~n_samples:pool
      ~n_test:(if quick then 10 else 30)
      ()
  in
  [
    sweep "synthetic Gaussians" synth counts
      (0.3 *. Planner_eval.naive_k_cost synth);
    sweep "Intel-lab-style data" lab counts
      (0.25 *. Planner_eval.naive_k_cost lab);
  ]

let run ?(quick = false) ~seed () =
  let n = if quick then 50 else 100 in
  let k = if quick then 10 else 20 in
  let n_samples = if quick then 15 else 30 in
  let n_test = if quick then 10 else 30 in
  let s = Setup.uniform_gaussian ~seed ~n ~k ~n_samples ~n_test () in
  let anchor = Planner_eval.naive_k_cost s in
  let fractions =
    if quick then [ 0.05; 0.1; 0.2; 0.35; 0.5 ]
    else [ 0.03; 0.06; 0.1; 0.15; 0.2; 0.3; 0.4; 0.55; 0.7 ]
  in
  let sweep name plan_at =
    Series.make
      ~title:(Printf.sprintf "Figure 3: %s (accuracy vs energy)" name)
      ~columns:[ "budget_mJ"; "energy_mJ"; "accuracy_%" ]
      (List.map
         (fun f ->
           let budget = f *. anchor in
           let p = plan_at ~budget in
           [
             budget;
             Prospector.Evaluate.total_per_run_mj p;
             100. *. p.Prospector.Evaluate.accuracy;
           ])
         fractions)
  in
  let baseline name point_at =
    let ks =
      List.filter (fun k' -> k' >= 1) (List.map (fun f -> int_of_float (f *. float_of_int k)) [ 0.25; 0.5; 0.75; 1.0 ])
    in
    Series.make
      ~title:(Printf.sprintf "Figure 3: %s (fetching k' of %d)" name k)
      ~columns:[ "k_fetched"; "energy_mJ"; "accuracy_%" ]
      (List.map
         (fun k' ->
           let p = point_at ~k:k' in
           [
             float_of_int k';
             Prospector.Evaluate.total_per_run_mj p;
             100. *. p.Prospector.Evaluate.accuracy;
           ])
         (List.sort_uniq Int.compare ks))
  in
  [
    sweep "GREEDY" (fun ~budget -> Planner_eval.greedy s ~budget);
    sweep "LP-LF" (fun ~budget -> Planner_eval.lp_no_lf s ~budget);
    sweep "LP+LF" (fun ~budget -> Planner_eval.lp_lf s ~budget);
    baseline "ORACLE" (fun ~k -> Planner_eval.oracle s ~k);
    baseline "NAIVE-k" (fun ~k -> Planner_eval.naive_k s ~k);
    baseline "NAIVE-1" (fun ~k -> Planner_eval.naive_one s ~k);
  ]

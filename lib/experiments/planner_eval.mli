(** Glue between {!Setup} workloads and the planners/baselines: plan under
    a budget, execute on the held-out epochs, return the measured point. *)

val greedy : Setup.t -> budget:float -> Prospector.Evaluate.point

val lp_no_lf :
  ?lp_iterations:int -> Setup.t -> budget:float -> Prospector.Evaluate.point

val lp_lf :
  ?lp_iterations:int -> Setup.t -> budget:float -> Prospector.Evaluate.point
(** [lp_iterations] caps the LP solver stages (see
    {!Prospector.Robust_plan}); a crippled budget exercises the planner's
    greedy fallback while still returning a measured point. *)

val naive_k : Setup.t -> k:int -> Prospector.Evaluate.point
(** [k] may differ from the setup's query size: the paper varies the
    baselines' accuracy by shrinking how many of the top values they fetch
    ([k' <= k] gives accuracy [k'/k]). *)

val naive_one : Setup.t -> k:int -> Prospector.Evaluate.point

val oracle : Setup.t -> k:int -> Prospector.Evaluate.point

val oracle_proof : Setup.t -> Prospector.Evaluate.point

val exact :
  ?lp_iterations:int ->
  Setup.t ->
  budget:float ->
  Prospector.Evaluate.point * Prospector.Evaluate.point
(** Plan phase 1 with PROSPECTOR-PROOF under [budget], run the two-phase
    exact query; returns the per-phase measured points. *)

val partial_accuracy : Setup.t -> k_fetched:int -> float
(** Accuracy of an exact algorithm asked for only the top [k_fetched]
    values when the query wants the setup's [k]. *)

val naive_k_cost : Setup.t -> float
(** Mean per-run cost of NAIVE-k at the setup's own [k]: the natural upper
    anchor for budget sweeps. *)

(* Serving-layer suite.

   The centrepiece is the determinism theorem the design leans on: the
   same query stream served over 1, 2 and 8 domains produces bit-identical
   outcomes and bit-identical cache hit/miss traces, because every cache,
   pool and coalescing decision is made sequentially on the coordinator
   and solves are pure functions of coordinator-chosen inputs.  Around it:
   source classification (cold / cache / pool / range), budget-range
   growth through certified 0-pivot re-solves, LRU and pool determinism,
   the certification discipline (crippled solvers and unattainable
   guarantee targets are refused, never served), and window rotation. *)

let mica = Sensor.Mica2.default

type env = {
  topo : Sensor.Topology.t;
  cost : Sensor.Cost.t;
  samples : Sampling.Sample_set.t;
  full_mj : float;  (** full-collection cost: the budget scale *)
}

let mk_env ?(n = 24) ?(k = 4) ?(count = 12) seed =
  let rng = Rng.create seed in
  let layout = Sensor.Placement.uniform rng ~n ~width:100. ~height:100. () in
  let range = Sensor.Topology.min_connecting_range layout *. 1.15 in
  let topo = Sensor.Topology.build layout ~range in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let field =
    Sampling.Field.random_gaussian rng ~n ~mean_lo:18. ~mean_hi:26. ~sigma_lo:1.
      ~sigma_hi:4.
  in
  let samples = Sampling.Sample_set.draw rng field ~k ~count in
  let full_mj =
    Prospector.Plan.expected_collection_mj topo cost
      (Prospector.Proof_exec.min_bandwidth_plan topo)
  in
  { topo; cost; samples; full_mj }

let config ?(cache = 64) ?(pool = 8) ?(batch = 8) ?(domains = 1) ?max_it () =
  {
    Serve.Server.default_config with
    cache_capacity = cache;
    pool_capacity = pool;
    batch;
    domains;
    max_lp_iterations = max_it;
  }

let server_of ?config:(c = config ()) envs =
  let t = Serve.Server.create ~config:c () in
  List.iter
    (fun e -> ignore (Serve.Server.register t e.topo e.cost e.samples))
    envs;
  t

let source = function
  | Serve.Server.Served r -> Serve.Server.source_to_string r.source
  | Serve.Server.Refused _ -> "refused"

let served = function
  | Serve.Server.Served r -> r
  | Serve.Server.Refused reason -> Alcotest.failf "refused: %s" reason

(* ------------------------------------------------------------------ *)

let test_sources_and_coalescing () =
  let e = mk_env 11 in
  let t = server_of [ e ] in
  let b = 0.5 *. e.full_mj in
  let q budget = Serve.Server.query ~network:0 ~k:4 budget in
  (* one batch: leader + coalesced follower + a distinct cold query *)
  let out = Serve.Server.run t [| q b; q b; q (0.9 *. b) |] in
  (* a coalesced follower reports its leader's source; only the trace tag
     and the [coalesced] flag say it rode along *)
  Alcotest.(check (list string))
    "first batch sources" [ "cold"; "cold"; "cold" ]
    (Array.to_list (Array.map source out));
  let r0 = served out.(0) and r1 = served out.(1) in
  Alcotest.(check bool) "leader not coalesced" false r0.coalesced;
  Alcotest.(check bool) "follower coalesced" true r1.coalesced;
  Alcotest.(check bool) "certified" true r0.certify.Lp.Certify.certified;
  Alcotest.(check (float 0.)) "follower shares the plan" r0.objective r1.objective;
  (* second call: exact repeat hits the cache, perturbed budget warms *)
  let out2 = Serve.Server.run t [| q b; q (0.95 *. b) |] in
  Alcotest.(check string) "exact repeat" "cache" (source out2.(0));
  Alcotest.(check string) "perturbed budget" "pool" (source out2.(1));
  Alcotest.(check (float 0.)) "cache hit solves nothing" 0.
    (served out2.(0)).solve_ms;
  let s = Serve.Server.stats t in
  Alcotest.(check int) "queries" 5 s.queries;
  Alcotest.(check int) "cache hits" 1 s.cache_hits;
  Alcotest.(check int) "coalesced" 1 s.coalesced;
  Alcotest.(check int) "pool hits" 1 s.pool_hits;
  Alcotest.(check int) "cold misses" 2 s.cold_misses;
  Alcotest.(check int) "solves = tasks" 3 s.solves;
  let trace = Serve.Server.trace t in
  Alcotest.(check int) "one trace entry per query" 5 (List.length trace);
  Alcotest.(check (list string))
    "trace tags"
    [ "cold"; "coalesced"; "cold"; "cache"; "pool" ]
    (List.map snd trace);
  (* arena accounting: single domain, every solve on slot 0 *)
  let arenas = Serve.Server.arena_stats t in
  Alcotest.(check int) "arena solves" s.solves (fst arenas.(0))

let test_range_growth () =
  let e = mk_env 12 in
  let t = server_of [ e ] in
  let b = 0.5 *. e.full_mj in
  let q budget = Serve.Server.query ~network:0 ~k:4 budget in
  (* anchor the family at b, then nudge the budget: the warm re-solve from
     the family basis should finish in 0 pivots (the basis stays optimal
     under a small RHS change) and widen the range to the hull *)
  ignore (Serve.Server.run t [| q b |]);
  let out1 = Serve.Server.run t [| q (1.001 *. b) |] in
  Alcotest.(check string) "nudge warms from family" "pool" (source out1.(0));
  let out2 = Serve.Server.run t [| q (1.0005 *. b) |] in
  Alcotest.(check string)
    "midpoint budget is a range hit" "range" (source out2.(0));
  let r = served out2.(0) in
  Alcotest.(check bool) "range hit certified" true
    r.certify.Lp.Certify.certified;
  Alcotest.(check (float 0.)) "served at its own budget" (1.0005 *. b) r.budget;
  let s = Serve.Server.stats t in
  Alcotest.(check int) "range hits" 1 s.range_hits

(* ------------------------------------------------------------------ *)

let same_response (a : Serve.Server.response) (b : Serve.Server.response) =
  let bits = Int64.bits_of_float in
  let plan_eq =
    let pa = (a.plan :> Prospector.Plan.t).Prospector.Plan.bandwidth
    and pb = (b.plan :> Prospector.Plan.t).Prospector.Plan.bandwidth in
    Array.length pa = Array.length pb
    && Array.for_all2 (fun (x : int) y -> x = y) pa pb
  in
  plan_eq
  && Int64.equal (bits a.objective) (bits b.objective)
  && String.equal
       (Serve.Server.source_to_string a.source)
       (Serve.Server.source_to_string b.source)
  && Bool.equal a.coalesced b.coalesced
  && Bool.equal a.certify.Lp.Certify.certified b.certify.Lp.Certify.certified
  && Int64.equal (bits a.budget) (bits b.budget)
  && (match (a.guarantee, b.guarantee) with
     | None, None -> true
     | Some ga, Some gb -> Prospector.Guarantee.equal ga gb
     | _ -> false)

let same_outcome a b =
  match (a, b) with
  | Serve.Server.Served ra, Serve.Server.Served rb -> same_response ra rb
  | Serve.Server.Refused ma, Serve.Server.Refused mb -> String.equal ma mb
  | _ -> false

let mixed_stream e1_full e2_full =
  (* repeats, perturbations, two networks, k variants, a guarantee query
     and an invalid one — enough to exercise every admission path *)
  let q ?guarantee ~network ~k budget =
    Serve.Server.query ?guarantee ~network ~k budget
  in
  let b1 = 0.5 *. e1_full and b2 = 0.4 *. e2_full in
  [|
    q ~network:0 ~k:4 b1;
    q ~network:1 ~k:4 b2;
    q ~network:0 ~k:4 b1;
    q ~network:0 ~k:3 b1;
    q ~network:0 ~k:4 (1.001 *. b1);
    q ~network:1 ~k:4 b2;
    q ~network:0 ~k:4 b1;
    q ~network:9 ~k:4 b1;
    q ~network:0 ~k:4 (1.0005 *. b1);
    q ~network:1 ~k:2 (0.8 *. b2);
    q ~network:0 ~k:4 ~guarantee:(0.9, 0.5) b1;
    q ~network:0 ~k:4 (0.999 *. b1);
    q ~network:1 ~k:4 (1.002 *. b2);
    q ~network:0 ~k:4 b1;
    q ~network:0 ~k:0 b1;
    q ~network:1 ~k:4 b2;
  |]

let run_stream ~domains =
  let e1 = mk_env 21 and e2 = mk_env ~n:18 ~k:3 ~count:10 22 in
  let t = server_of ~config:(config ~batch:4 ~domains ()) [ e1; e2 ] in
  let outcomes = Serve.Server.run t (mixed_stream e1.full_mj e2.full_mj) in
  (outcomes, Serve.Server.trace t, Serve.Server.stats t)

let check_same_run (o1, tr1, s1) (o2, tr2, s2) =
  Alcotest.(check int) "same length" (Array.length o1) (Array.length o2);
  Array.iteri
    (fun i a ->
      Alcotest.(check bool)
        (Printf.sprintf "outcome %d identical" i)
        true
        (same_outcome a o2.(i)))
    o1;
  Alcotest.(check (list (pair string string))) "identical traces" tr1 tr2;
  let open Serve.Server in
  Alcotest.(check int) "cache_hits" s1.cache_hits s2.cache_hits;
  Alcotest.(check int) "range_hits" s1.range_hits s2.range_hits;
  Alcotest.(check int) "pool_hits" s1.pool_hits s2.pool_hits;
  Alcotest.(check int) "cold" s1.cold_misses s2.cold_misses;
  Alcotest.(check int) "coalesced" s1.coalesced s2.coalesced;
  Alcotest.(check int) "refused" s1.refused s2.refused;
  Alcotest.(check int) "solves" s1.solves s2.solves

let test_determinism_across_domains () =
  let r1 = run_stream ~domains:1 in
  let r2 = run_stream ~domains:2 in
  let r8 = run_stream ~domains:8 in
  check_same_run r1 r2;
  check_same_run r1 r8;
  (* with >1 domain the work really fans out only when a batch has >1
     task, but the trace is the witness that the decisions didn't move *)
  let _, _, s = r8 in
  Alcotest.(check bool) "stream exercised the cache" true (s.cache_hits >= 3)

(* ------------------------------------------------------------------ *)

let test_certified_serving_property () =
  let e = mk_env ~n:16 ~k:3 ~count:8 31 in
  let budgets = [| 0.3; 0.45; 0.6 |] in
  let test =
    QCheck.Test.make ~count:10 ~name:"cache-served plans are always certified"
      QCheck.(pair small_nat (list_of_size Gen.(int_range 4 16) small_nat))
      (fun (_salt, picks) ->
        let t = server_of ~config:(config ~batch:4 ()) [ e ] in
        let queries =
          picks
          |> List.map (fun p ->
                 let b = budgets.(p mod Array.length budgets) *. e.full_mj in
                 let k = 2 + (p mod 2) in
                 let guarantee =
                   if p mod 5 = 0 then Some (0.95, 0.5) else None
                 in
                 Serve.Server.query ?guarantee ~network:0 ~k b)
          |> Array.of_list
        in
        let outcomes = Serve.Server.run t queries in
        Array.for_all2
          (fun (q : Serve.Server.query) o ->
            match o with
            | Serve.Server.Refused _ -> true
            | Serve.Server.Served r ->
                (* the served certification is the one computed at exactly
                   the budget the response claims, which is the query's *)
                r.certify.Lp.Certify.certified
                && Int64.equal
                     (Int64.bits_of_float r.budget)
                     (Int64.bits_of_float q.budget)
                && (match (q.guarantee, r.guarantee) with
                   | None, None -> true
                   | Some (eps, delta), Some g ->
                       Prospector.Guarantee.meets g ~eps ~delta
                   | _ -> false))
          queries outcomes)
  in
  QCheck_alcotest.to_alcotest test

(* ------------------------------------------------------------------ *)

let test_plan_cache_lru () =
  let c = Serve.Plan_cache.create ~capacity:2 in
  Serve.Plan_cache.add c ~key:"a" 1;
  Serve.Plan_cache.add c ~key:"b" 2;
  Alcotest.(check (option int)) "a cached" (Some 1)
    (Serve.Plan_cache.find c ~key:"a");
  (* b is now least-recently-used; inserting c must evict b, not a *)
  Serve.Plan_cache.add c ~key:"c" 3;
  Alcotest.(check (option int)) "b evicted" None
    (Serve.Plan_cache.find c ~key:"b");
  Alcotest.(check (option int)) "a survives" (Some 1)
    (Serve.Plan_cache.find c ~key:"a");
  Alcotest.(check (option int)) "c cached" (Some 3)
    (Serve.Plan_cache.find c ~key:"c");
  Alcotest.(check int) "one eviction" 1 (Serve.Plan_cache.evictions c);
  Alcotest.(check int) "size" 2 (Serve.Plan_cache.size c);
  (* capacity 0 disables without errors *)
  let z = Serve.Plan_cache.create ~capacity:0 in
  Serve.Plan_cache.add z ~key:"a" 1;
  Alcotest.(check (option int)) "disabled cache misses" None
    (Serve.Plan_cache.find z ~key:"a")

let test_pool_nearest () =
  let e = mk_env 41 in
  let solve budget =
    let r =
      Prospector.Lp_lf.plan e.topo e.cost e.samples ~budget ~k:4
    in
    Option.get r.Prospector.Lp_lf.basis
  in
  let b_lo = solve (0.4 *. e.full_mj) and b_hi = solve (0.7 *. e.full_mj) in
  let p = Serve.Basis_pool.create ~capacity:4 in
  Serve.Basis_pool.insert p ~shape:"s" ~budget:10. b_lo;
  Serve.Basis_pool.insert p ~shape:"s" ~budget:20. b_hi;
  let is b = function Some b' -> b' == b | None -> false in
  Alcotest.(check bool) "nearest low" true
    (is b_lo (Serve.Basis_pool.lookup p ~shape:"s" ~budget:12.));
  Alcotest.(check bool) "nearest high" true
    (is b_hi (Serve.Basis_pool.lookup p ~shape:"s" ~budget:19.));
  Alcotest.(check bool) "tie goes low" true
    (is b_lo (Serve.Basis_pool.lookup p ~shape:"s" ~budget:15.));
  Alcotest.(check bool) "other bucket misses" true
    (Serve.Basis_pool.lookup p ~shape:"t" ~budget:15. = None);
  (* a token of a different LP shape is refused, not handed out *)
  let e_small = mk_env ~n:12 ~k:2 ~count:6 42 in
  let alien =
    let r =
      Prospector.Lp_lf.plan e_small.topo e_small.cost e_small.samples
        ~budget:(0.5 *. e_small.full_mj) ~k:2
    in
    Option.get r.Prospector.Lp_lf.basis
  in
  Serve.Basis_pool.insert p ~shape:"s" ~budget:30. alien;
  Alcotest.(check int) "mismatch dropped" 1
    (Serve.Basis_pool.dropped_shape_mismatches p);
  Alcotest.(check int) "pool size unchanged" 2 (Serve.Basis_pool.size p)

(* ------------------------------------------------------------------ *)

let test_crippled_solver_refused () =
  let e = mk_env 51 in
  let t = server_of ~config:(config ~max_it:0 ()) [ e ] in
  let b = 0.5 *. e.full_mj in
  let q = Serve.Server.query ~network:0 ~k:4 b in
  let out = Serve.Server.run t [| q; q |] in
  Array.iter
    (fun o ->
      match o with
      | Serve.Server.Refused reason ->
          Alcotest.(check bool) "reason names certification" true
            (String.length reason > 0)
      | Serve.Server.Served _ ->
          Alcotest.fail "crippled solver must never be served")
    out;
  let s = Serve.Server.stats t in
  Alcotest.(check int) "both refused" 2 s.refused;
  Alcotest.(check int) "nothing cached or coalesced-served" 0
    (s.cache_hits + s.coalesced);
  (* refusals must not populate the cache: the retry still solves *)
  let out2 = Serve.Server.run t [| q |] in
  Alcotest.(check string) "retry is refused again" "refused" (source out2.(0))

let test_guarantee_paths () =
  let e = mk_env ~n:20 ~count:16 61 in
  let t = server_of [ e ] in
  let b = 0.7 *. e.full_mj in
  let loose = Serve.Server.query ~guarantee:(0.9, 0.5) ~network:0 ~k:4 b in
  let out = Serve.Server.run t [| loose |] in
  let r = served out.(0) in
  (match r.guarantee with
  | Some g ->
      Alcotest.(check bool) "meets the loose target" true
        (Prospector.Guarantee.meets g ~eps:0.9 ~delta:0.5)
  | None -> Alcotest.fail "guarantee requested but absent");
  let tight =
    Serve.Server.query ~guarantee:(1e-6, 1e-9) ~network:0 ~k:4 (0.1 *. b)
  in
  (match (Serve.Server.run t [| tight |]).(0) with
  | Serve.Server.Refused reason ->
      Alcotest.(check bool) "names the guarantee" true
        (String.length reason > 0)
  | Serve.Server.Served _ ->
      Alcotest.fail "unattainable target must be refused")

let test_invalid_queries () =
  let e = mk_env 71 in
  let t = server_of [ e ] in
  let b = 0.5 *. e.full_mj in
  let cases =
    [
      ("unknown network", Serve.Server.query ~network:7 ~k:4 b);
      ("k too small", Serve.Server.query ~network:0 ~k:0 b);
      ("k too large", Serve.Server.query ~network:0 ~k:1000 b);
      ("negative budget", Serve.Server.query ~network:0 ~k:4 (-1.));
      ("nan budget", Serve.Server.query ~network:0 ~k:4 Float.nan);
      ( "bad guarantee",
        Serve.Server.query ~guarantee:(0.1, 1.5) ~network:0 ~k:4 b );
    ]
  in
  List.iter
    (fun (name, q) ->
      match (Serve.Server.run t [| q |]).(0) with
      | Serve.Server.Refused _ -> ()
      | Serve.Server.Served _ -> Alcotest.failf "%s must be refused" name)
    cases;
  Alcotest.(check int) "all refused" (List.length cases)
    (Serve.Server.stats t).refused

let test_window_rotation () =
  let e = mk_env 81 in
  let t = server_of [ e ] in
  let b = 0.5 *. e.full_mj in
  let q = Serve.Server.query ~network:0 ~k:4 b in
  ignore (Serve.Server.run t [| q |]);
  Alcotest.(check string) "repeat hits" "cache"
    (source (Serve.Server.run t [| q |]).(0));
  (* a fresh window invalidates exact plans but keeps same-shape bases warm *)
  let rng = Rng.create 82 in
  let field =
    Sampling.Field.random_gaussian rng ~n:24 ~mean_lo:18. ~mean_hi:26.
      ~sigma_lo:1. ~sigma_hi:4.
  in
  Serve.Server.update_window t ~network:0
    (Sampling.Sample_set.draw rng field ~k:4 ~count:12);
  let out = Serve.Server.run t [| q |] in
  Alcotest.(check string) "stale plan not re-served, basis reused" "pool"
    (source out.(0));
  Alcotest.(check bool) "re-certified on the new window" true
    (served out.(0)).certify.Lp.Certify.certified

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "serving",
        [
          Alcotest.test_case "sources and coalescing" `Quick
            test_sources_and_coalescing;
          Alcotest.test_case "budget-range growth" `Quick test_range_growth;
          Alcotest.test_case "crippled solver refused" `Quick
            test_crippled_solver_refused;
          Alcotest.test_case "guarantee met and refused" `Quick
            test_guarantee_paths;
          Alcotest.test_case "invalid queries refused" `Quick
            test_invalid_queries;
          Alcotest.test_case "window rotation" `Quick test_window_rotation;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "identical streams across domain counts" `Quick
            test_determinism_across_domains;
          test_certified_serving_property ();
        ] );
      ( "structures",
        [
          Alcotest.test_case "plan-cache LRU" `Quick test_plan_cache_lru;
          Alcotest.test_case "pool nearest lookup" `Quick test_pool_nearest;
        ] );
    ]

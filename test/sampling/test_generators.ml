(* Coverage for the lib/sampling generators the guarantee harness leans
   on: determinism under an explicit seed (so every certified bound is
   reproducible from one integer), moment sanity for the field models, the
   sliding window's expiry semantics, and the Stats edge cases. *)

let check_float = Alcotest.(check (float 1e-9))

(* ---------- determinism under seed ---------- *)

let drawn field seed epochs =
  let rng = Rng.create seed in
  Array.init epochs (fun _ -> field.Sampling.Field.draw rng)

let same_matrix a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun r s -> Array.for_all2 Float.equal r s) a b

let test_field_deterministic () =
  let make seed =
    let rng = Rng.create seed in
    Sampling.Field.random_gaussian rng ~n:9 ~mean_lo:18. ~mean_hi:26.
      ~sigma_lo:1. ~sigma_hi:3.
  in
  Alcotest.(check bool) "same seed, same epochs" true
    (same_matrix (drawn (make 5) 77 6) (drawn (make 5) 77 6));
  Alcotest.(check bool) "different draw seed, different epochs" false
    (same_matrix (drawn (make 5) 77 6) (drawn (make 5) 78 6));
  Alcotest.(check bool) "different field seed, different epochs" false
    (same_matrix (drawn (make 5) 77 6) (drawn (make 6) 77 6))

let test_mvn_deterministic () =
  let means = [| 10.; 12.; 14.; 16. |] in
  let covariance =
    Array.init 4 (fun i ->
        Array.init 4 (fun j ->
            (3. *. exp (-.Float.abs (float_of_int (i - j)))) +.
            if i = j then 0.2 else 0.))
  in
  let field = Sampling.Mvn.field ~means ~covariance in
  Alcotest.(check bool) "same seed, same joint draws" true
    (same_matrix (drawn field 41 8) (drawn field 41 8));
  Alcotest.(check bool) "seeds decorrelate" false
    (same_matrix (drawn field 41 8) (drawn field 42 8))

let test_sample_set_draw_deterministic () =
  let field =
    Sampling.Field.independent_gaussian
      ~means:[| 20.; 21.; 22.; 23.; 24. |]
      ~sigmas:[| 1.; 2.; 1.; 2.; 1. |]
  in
  let s1 = Sampling.Sample_set.draw (Rng.create 9) field ~k:2 ~count:12 in
  let s2 = Sampling.Sample_set.draw (Rng.create 9) field ~k:2 ~count:12 in
  Alcotest.(check bool) "values identical" true
    (same_matrix s1.Sampling.Sample_set.values s2.Sampling.Sample_set.values);
  Alcotest.(check (array int)) "colsum identical"
    s1.Sampling.Sample_set.colsum s2.Sampling.Sample_set.colsum

(* ---------- moment sanity ---------- *)

let column epochs i = Array.map (fun row -> row.(i)) epochs

let test_independent_gaussian_moments () =
  let means = [| 5.; 20.; -3. |] and sigmas = [| 0.5; 2.; 1. |] in
  let field = Sampling.Field.independent_gaussian ~means ~sigmas in
  let epochs = drawn field 123 4000 in
  Array.iteri
    (fun i mu ->
      let xs = column epochs i in
      let sd = sigmas.(i) in
      (* Mean of 4000 draws has sd = sigma / sqrt 4000; 6 of those is a
         never-flaky margin for a fixed seed. *)
      Alcotest.(check bool) "mean close" true
        (Float.abs (Sampling.Stats.mean xs -. mu) < 6. *. sd /. sqrt 4000.);
      Alcotest.(check bool) "variance close" true
        (Float.abs (Sampling.Stats.variance xs -. (sd *. sd)) < 0.3 *. sd *. sd))
    means

let test_mvn_moments () =
  let means = [| 10.; 12.; 14.; 16.; 18. |] in
  let covariance =
    Array.init 5 (fun i ->
        Array.init 5 (fun j ->
            (4. *. exp (-.Float.abs (float_of_int (i - j)) /. 2.)) +.
            if i = j then 0.1 else 0.))
  in
  let field = Sampling.Mvn.field ~means ~covariance in
  let epochs = drawn field 321 4000 in
  let emp = Sampling.Mvn.empirical_covariance epochs in
  for i = 0 to 4 do
    Alcotest.(check bool) "marginal mean close" true
      (Float.abs (Sampling.Stats.mean (column epochs i) -. means.(i)) < 0.3);
    for j = 0 to 4 do
      Alcotest.(check bool) "covariance entry close" true
        (Float.abs (emp.(i).(j) -. covariance.(i).(j)) < 0.6)
    done
  done

let test_contention_zone_moments () =
  let zone = [| -1; 0; 0; 1; 1; -1 |] in
  let exceed_prob = 0.3 and background_mean = 20. in
  let field =
    Sampling.Field.contention_zones ~zone ~background_mean ~background_sigma:0.5
      ~exceed_prob ~mean_gap:3. in
  let epochs = drawn field 77 4000 in
  Array.iteri
    (fun i z ->
      let xs = column epochs i in
      if z >= 0 then begin
        (* Zone nodes are built to exceed the background level with the
           configured probability. *)
        let hits =
          Array.fold_left
            (fun c v -> if v > background_mean then c + 1 else c)
            0 xs
        in
        let rate = float_of_int hits /. 4000. in
        Alcotest.(check bool) "exceed probability close" true
          (Float.abs (rate -. exceed_prob) < 0.05);
        Alcotest.(check bool) "zone mean sits below background" true
          (Sampling.Stats.mean xs < background_mean)
      end
      else
        Alcotest.(check bool) "background mean close" true
          (Float.abs (Sampling.Stats.mean xs -. background_mean) < 0.1))
    zone

let test_scaled_field_dispersion () =
  let base =
    Sampling.Field.independent_gaussian
      ~means:[| 10.; 20.; 30.; 40. |]
      ~sigmas:[| 1.; 1.; 1.; 1. |]
  in
  let wide = Sampling.Field.scaled base ~sigma_scale:3. in
  let spread field seed =
    let epochs = drawn field seed 2000 in
    Sampling.Stats.mean
      (Array.map (fun row -> Sampling.Stats.variance row) epochs)
  in
  Alcotest.(check bool) "scaling widens per-epoch dispersion" true
    (spread wide 5 > 4. *. spread base 5)

(* ---------- sliding window ---------- *)

let test_window_expiry () =
  let w = Sampling.Window.create ~capacity:3 in
  Alcotest.(check int) "empty" 0 (Sampling.Window.length w);
  Alcotest.(check int) "capacity" 3 (Sampling.Window.capacity w);
  List.iter
    (fun v -> Sampling.Window.add w [| v; v +. 1. |])
    [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check int) "capped" 3 (Sampling.Window.length w);
  let s = Sampling.Window.to_sample_set w ~k:1 in
  (* Only the three most recent samples survive. *)
  Alcotest.(check int) "three samples" 3 (Sampling.Sample_set.n_samples s);
  let firsts =
    List.sort compare
      (Array.to_list (Array.map (fun row -> row.(0)) s.Sampling.Sample_set.values))
  in
  Alcotest.(check (list (float 1e-12))) "oldest expired" [ 3.; 4.; 5. ] firsts

let test_window_empty_raises () =
  let w = Sampling.Window.create ~capacity:2 in
  Alcotest.(check bool) "to_sample_set on empty raises Invalid_argument" true
    (match Sampling.Window.to_sample_set w ~k:1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Stats edge cases ---------- *)

let test_stats_empty_inputs_raise () =
  Alcotest.check_raises "empty mean"
    (Invalid_argument "Stats.mean: empty array") (fun () ->
      ignore (Sampling.Stats.mean [||]));
  Alcotest.check_raises "empty variance"
    (Invalid_argument "Stats.variance: empty array") (fun () ->
      ignore (Sampling.Stats.variance [||]));
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Sampling.Stats.percentile [||] 0.5))

let test_stats_singleton_and_bounds () =
  check_float "singleton mean" 7. (Sampling.Stats.mean [| 7. |]);
  check_float "singleton variance" 0. (Sampling.Stats.variance [| 7. |]);
  let xs = [| 3.; 1.; 2. |] in
  check_float "p = 0 is the min" 1. (Sampling.Stats.percentile xs 0.);
  check_float "p = 1 is the max" 3. (Sampling.Stats.percentile xs 1.);
  check_float "median interpolates" 2. (Sampling.Stats.percentile xs 0.5);
  Alcotest.(check (array (float 1e-12))) "input not modified" [| 3.; 1.; 2. |] xs;
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Sampling.Stats.percentile xs 1.5))

let () =
  Alcotest.run "generators"
    [
      ( "determinism",
        [
          Alcotest.test_case "gaussian field" `Quick test_field_deterministic;
          Alcotest.test_case "mvn field" `Quick test_mvn_deterministic;
          Alcotest.test_case "sample-set draw" `Quick
            test_sample_set_draw_deterministic;
        ] );
      ( "moments",
        [
          Alcotest.test_case "independent gaussian" `Quick
            test_independent_gaussian_moments;
          Alcotest.test_case "mvn" `Quick test_mvn_moments;
          Alcotest.test_case "contention zones" `Quick
            test_contention_zone_moments;
          Alcotest.test_case "scaled dispersion" `Quick
            test_scaled_field_dispersion;
        ] );
      ( "window",
        [
          Alcotest.test_case "expiry" `Quick test_window_expiry;
          Alcotest.test_case "empty raises" `Quick test_window_empty_raises;
        ] );
      ( "stats",
        [
          Alcotest.test_case "empty inputs raise" `Quick
            test_stats_empty_inputs_raise;
          Alcotest.test_case "singleton and bounds" `Quick
            test_stats_singleton_and_bounds;
        ] );
    ]

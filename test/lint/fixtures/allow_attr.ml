let ok tbl = (Hashtbl.fold [@lint.allow "R2"]) (fun k () acc -> k :: acc) tbl []
let bad tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl []
let also_ok s = (print_endline [@lint.allow "R5"]) s

let binding_ok tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl []
  [@@lint.allow "R2"]

[@@@lint.allow "R1"]

let quiet () = Random.bits ()

let keys tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl []
let dump tbl f = Hashtbl.iter (fun k v -> f k v) tbl

let shout s = print_endline s
let logf s = Printf.printf "%s" s
let fine ppf s = Format.fprintf ppf "%s" s

(* R6 suppression at expression and binding scope. *)

let problem () : Lp.Problem.t = failwith "fixture"
let plan_of (_ : Lp.Revised.result) : Prospector.Plan.t = failwith "fixture"

let expr_scope () =
  let plan = plan_of (Lp.Revised.solve (problem ())) in
  ignore (Prospector.Replan.create ~initial:plan () [@lint.allow "R6"])

let binding_scope () =
  let plan = plan_of (Lp.Revised.solve (problem ())) in
  let t = Prospector.Replan.create ~initial:plan () in
  ignore t
[@@lint.allow "R6"]

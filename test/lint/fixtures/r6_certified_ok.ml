(* R6 negative: the same flow through the certified chain is clean. *)

let model () : Lp.Model.t = failwith "fixture"
let topo () : Sensor.Topology.t = failwith "fixture"
let cost () : Sensor.Cost.t = failwith "fixture"
let mica () : Sensor.Mica2.t = failwith "fixture"
let samples () : Sampling.Sample_set.t = failwith "fixture"

let plan_of (_ : Lp.Model.solution) (_ : Lp.Certify.report) : Prospector.Plan.t
    =
  failwith "fixture"

let ok () =
  let sol, report = Lp.Model.solve_certified (model ()) in
  let plan = plan_of sol report in
  let t = Prospector.Replan.create ~initial:plan () in
  Prospector.Replan.consider t (topo ()) (cost ()) (mica ()) (samples ()) ~k:3
    ~budget:10.

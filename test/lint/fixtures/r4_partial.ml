let first l = List.hd l
let pick o = Option.get o
let nth l n = List.nth l n
let look tbl k = Hashtbl.find tbl k
let fine l = List.nth_opt l 0

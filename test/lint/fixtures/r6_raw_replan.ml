(* R6 fire: a raw Revised.solve result is laundered into Replan
   dissemination without ever passing the certified chain. *)

let problem () : Lp.Problem.t = failwith "fixture"
let topo () : Sensor.Topology.t = failwith "fixture"
let cost () : Sensor.Cost.t = failwith "fixture"
let mica () : Sensor.Mica2.t = failwith "fixture"
let samples () : Sampling.Sample_set.t = failwith "fixture"
let plan_of (_ : Lp.Revised.result) : Prospector.Plan.t = failwith "fixture"

let bad () =
  let raw = Lp.Revised.solve (problem ()) in
  let plan = plan_of raw in
  let t = Prospector.Replan.create ~initial:plan () in
  Prospector.Replan.consider t (topo ()) (cost ()) (mica ()) (samples ()) ~k:3
    ~budget:10.

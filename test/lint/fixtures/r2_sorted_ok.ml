(* Folds whose output is immediately re-sorted are order-safe. *)
let keys tbl =
  Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort Int.compare

let keys2 tbl =
  List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])

let keys3 tbl =
  List.sort Int.compare @@ Hashtbl.fold (fun k () acc -> k :: acc) tbl []

(* R7 fire one call deep: the spawned closure calls a local function
   that mutates a captured hash table. *)

let bad () =
  let hits = Hashtbl.create 8 in
  let bump () = Hashtbl.replace hits 0 1 in
  let d = Domain.spawn (fun () -> bump ()) in
  Domain.join d

(* R7 negative: linted under the logical path lib/serve/server.ml, the
   binding name run_tasks matches the allowlisted fan-out region. *)

let run_tasks () =
  let cursor = Atomic.make 0 in
  let d = Domain.spawn (fun () -> Atomic.incr cursor) in
  Domain.join d

(* R6 fire across modules: the tainted top-level value exported by
   taint_source.ml reaches a sink here. *)

let plan_of (_ : Lp.Revised.result) : Prospector.Plan.t = failwith "fixture"

let bad () =
  let plan = plan_of Taint_source.raw in
  ignore (Prospector.Replan.create ~initial:plan ())

(* R6 fire: a hand-built solution record mints taint like a raw solve. *)

let plan_of (_ : Lp.Model.solution) : Prospector.Plan.t = failwith "fixture"

let bad () =
  let sol : Lp.Model.solution =
    {
      status = Lp.Model.Optimal;
      objective = 0.;
      values = [||];
      stats = None;
      row_duals = None;
      basis = None;
    }
  in
  let plan = plan_of sol in
  ignore (Prospector.Replan.create ~initial:plan ())

(* R7: atomic captures are fine, but the spawn site itself is still
   outside every allowlisted fan-out region. *)

let nearly_ok () =
  let cursor = Atomic.make 0 in
  let d = Domain.spawn (fun () -> Atomic.incr cursor) in
  Domain.join d

[@@@lint.allow "R6"]

(* R6 suppression at file scope: everything below is allowed. *)

let problem () : Lp.Problem.t = failwith "fixture"
let plan_of (_ : Lp.Revised.result) : Prospector.Plan.t = failwith "fixture"

let bad () =
  let plan = plan_of (Lp.Revised.solve (problem ())) in
  ignore (Prospector.Replan.create ~initial:plan ())

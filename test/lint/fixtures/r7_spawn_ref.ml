(* R7 fire: spawn outside any allowlisted region, capturing a ref. *)

let bad () =
  let counter = ref 0 in
  let d = Domain.spawn (fun () -> incr counter) in
  Domain.join d

let let = in in

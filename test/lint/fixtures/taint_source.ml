(* Cross-module taint source: an uncertified solve exported at top
   level.  Consumed by r6_cross_module.ml via the summary pass. *)

let problem () : Lp.Problem.t = failwith "fixture"
let raw = Lp.Revised.solve (problem ())

type point = { px : int; py : float }

let worst (a : point) b = compare a b
let biggest (a : point option) b = max a b
let same (a : point) b = a = b
let anything a b = a = b
let fine = max 1 2
let fine2 a = a = 0
let fine3 s = List.sort String.compare s
let fine4 (l : int list) m = l = m
let fine5 (p : int * float) q = compare p q
let fine6 (xs : float array) = xs = [| 1.0 |]

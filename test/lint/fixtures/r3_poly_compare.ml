let worst a b = compare a b
let biggest a b = max a b
let same_pair a b c d = (a, b) = (c, d)
let fine = max 1 2
let fine2 a = a = 0
let fine3 s = List.sort String.compare s

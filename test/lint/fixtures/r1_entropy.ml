let roll () = Random.int 6
let now () = Unix.gettimeofday ()
let h x = Hashtbl.hash x
let t () = Sys.time ()
let seeded () = Random.State.int (Random.State.make [| 7 |]) 6

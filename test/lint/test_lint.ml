(* Fixture-driven tests for the repolint engine.  Each fixture is a tiny
   compilable (or deliberately broken) .ml file; we lint it under a
   synthetic logical path so the zone rules (R1 outside obs/bench, R4 in
   planner paths, R5 in lib/) are exercised without touching real code. *)

open Repolint_lib

let lint ~logical fixture =
  Lint_engine.lint_file ~file:("fixtures/" ^ fixture) logical

let hits findings =
  List.map (fun (f : Finding.t) -> (f.rule, f.line)) findings

let hit = Alcotest.(pair string int)

let check_hits name expected findings =
  Alcotest.check (Alcotest.list hit) name expected (hits findings)

(* ---- R1: determinism ---- *)

let test_r1_fires () =
  check_hits "R1 on each entropy primitive"
    [ ("R1", 1); ("R1", 2); ("R1", 3); ("R1", 4) ]
    (lint ~logical:"lib/core/r1_entropy.ml" "r1_entropy.ml")

let test_r1_zones () =
  check_hits "R1 exempt in bench/" []
    (lint ~logical:"bench/r1_entropy.ml" "r1_entropy.ml");
  check_hits "R1 exempt in lib/obs/" []
    (lint ~logical:"lib/obs/r1_entropy.ml" "r1_entropy.ml")

(* ---- R2: hash-order iteration ---- *)

let test_r2_fires () =
  check_hits "R2 on bare fold/iter"
    [ ("R2", 1); ("R2", 2) ]
    (lint ~logical:"lib/core/r2_hash_order.ml" "r2_hash_order.ml")

let test_r2_sort_feed () =
  check_hits "folds feeding a sort are exempt" []
    (lint ~logical:"lib/core/r2_sorted_ok.ml" "r2_sorted_ok.ml")

(* ---- R3: polymorphic comparison ---- *)

let test_r3 () =
  check_hits "R3 on comparator closures and structural =/<>"
    [ ("R3", 1); ("R3", 2); ("R3", 3) ]
    (lint ~logical:"lib/core/r3_poly_compare.ml" "r3_poly_compare.ml")

(* ---- R4: partial accessors in planner paths ---- *)

let test_r4_fires () =
  check_hits "R4 on each partial accessor"
    [ ("R4", 1); ("R4", 2); ("R4", 3); ("R4", 4) ]
    (lint ~logical:"lib/lp/r4_partial.ml" "r4_partial.ml")

let test_r4_zones () =
  check_hits "R4 only in lib/core + lib/lp" []
    (lint ~logical:"lib/sensor/r4_partial.ml" "r4_partial.ml")

(* ---- R5: stdout hygiene ---- *)

let test_r5_fires () =
  check_hits "R5 on stdout printers in lib/"
    [ ("R5", 1); ("R5", 2) ]
    (lint ~logical:"lib/experiments/r5_print.ml" "r5_print.ml")

let test_r5_zones () =
  check_hits "R5 inactive outside lib/" []
    (lint ~logical:"bin/r5_print.ml" "r5_print.ml")

(* ---- suppression: [@lint.allow] ---- *)

let test_allow_attr () =
  (* Expression, binding, and file-wide allows each suppress exactly
     their target; the unannotated fold on line 2 still fires. *)
  check_hits "attribute suppresses exactly its target"
    [ ("R2", 2) ]
    (lint ~logical:"lib/core/allow_attr.ml" "allow_attr.ml")

(* ---- parse failures ---- *)

let test_parse_error () =
  match lint ~logical:"lib/core/bad_syntax.ml" "bad_syntax.ml" with
  | [ f ] -> Alcotest.(check string) "PARSE rule" "PARSE" f.Finding.rule
  | fs ->
      Alcotest.failf "expected exactly one PARSE finding, got %d" (List.length fs)

(* ---- baseline semantics ---- *)

let test_baseline_suppresses_exactly () =
  let findings = lint ~logical:"lib/core/r2_hash_order.ml" "r2_hash_order.ml" in
  let first = List.hd findings in
  let baseline =
    Lint_baseline.parse_string
      (Printf.sprintf "# comment\n\n%s\n" (Finding.baseline_key first))
  in
  let fresh, accepted =
    List.partition (fun f -> not (Lint_baseline.mem baseline f)) findings
  in
  check_hits "only the keyed finding is accepted" [ ("R2", 1) ] accepted;
  check_hits "the other finding stays fresh" [ ("R2", 2) ] fresh

let test_baseline_stale () =
  let findings = lint ~logical:"lib/core/r2_hash_order.ml" "r2_hash_order.ml" in
  let baseline =
    Lint_baseline.parse_string "R2 lib/core/r2_hash_order.ml:999\n"
  in
  Alcotest.(check (list string))
    "unmatched entries are stale"
    [ "R2 lib/core/r2_hash_order.ml:999" ]
    (Lint_baseline.stale baseline findings)

let () =
  Alcotest.run "repolint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 fires" `Quick test_r1_fires;
          Alcotest.test_case "R1 zones" `Quick test_r1_zones;
          Alcotest.test_case "R2 fires" `Quick test_r2_fires;
          Alcotest.test_case "R2 sort-feed exemption" `Quick test_r2_sort_feed;
          Alcotest.test_case "R3" `Quick test_r3;
          Alcotest.test_case "R4 fires" `Quick test_r4_fires;
          Alcotest.test_case "R4 zones" `Quick test_r4_zones;
          Alcotest.test_case "R5 fires" `Quick test_r5_fires;
          Alcotest.test_case "R5 zones" `Quick test_r5_zones;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "[@lint.allow]" `Quick test_allow_attr;
          Alcotest.test_case "baseline keys" `Quick
            test_baseline_suppresses_exactly;
          Alcotest.test_case "stale baseline" `Quick test_baseline_stale;
        ] );
      ( "robustness",
        [ Alcotest.test_case "parse error" `Quick test_parse_error ] );
    ]

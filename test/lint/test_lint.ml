(* Fixture-driven tests for the typed repolint engine.  Each fixture is
   a tiny compilable (or deliberately broken) .ml file; the fixtures
   build as a library (see fixtures/dune) so dune produces .cmt
   typedtrees, and each test lints a fixture's .cmt under a synthetic
   logical path so the zone rules (R1 outside obs/bench, R4 in planner
   paths, R5 in lib/, R6/R7 outside test/) are exercised without
   touching real code. *)

open Repolint_lib

let cmt_of fixture =
  let base = Filename.remove_extension fixture in
  "fixtures/.lint_fixtures.objs/byte/lint_fixtures__"
  ^ String.capitalize_ascii base ^ ".cmt"

let result ?taint ~logical fixture =
  let taint = match taint with Some t -> t | None -> Lint_taint.create () in
  Lint_engine.lint_cmt ~taint ~path:logical (cmt_of fixture)

let lint ?taint ~logical fixture = (result ?taint ~logical fixture).findings

let hits findings =
  List.map (fun (f : Finding.t) -> (f.rule, f.line)) findings

let hit = Alcotest.(pair string int)

let check_hits name expected findings =
  Alcotest.check (Alcotest.list hit) name expected (hits findings)

let check_suppressed name expected (r : Lint_engine.result) =
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    name expected
    (List.sort compare r.suppressed)

(* ---- R1: determinism ---- *)

let test_r1_fires () =
  check_hits "R1 on each entropy primitive; seeded state also fires in lib"
    [ ("R1", 1); ("R1", 2); ("R1", 3); ("R1", 4); ("R1", 5); ("R1", 5) ]
    (lint ~logical:"lib/core/r1_entropy.ml" "r1_entropy.ml")

let test_r1_zones () =
  check_hits "R1 exempt in bench/" []
    (lint ~logical:"bench/r1_entropy.ml" "r1_entropy.ml");
  check_hits "R1 exempt in lib/obs/" []
    (lint ~logical:"lib/obs/r1_entropy.ml" "r1_entropy.ml");
  check_hits "in test/ only the seeded Random.State line is exempt"
    [ ("R1", 1); ("R1", 2); ("R1", 3); ("R1", 4) ]
    (lint ~logical:"test/core/r1_entropy.ml" "r1_entropy.ml")

(* ---- R2: hash-order iteration ---- *)

let test_r2_fires () =
  check_hits "R2 on bare fold/iter"
    [ ("R2", 1); ("R2", 2) ]
    (lint ~logical:"lib/core/r2_hash_order.ml" "r2_hash_order.ml")

let test_r2_sort_feed () =
  check_hits "folds feeding a sort are exempt" []
    (lint ~logical:"lib/core/r2_sorted_ok.ml" "r2_sorted_ok.ml")

(* ---- R3: typed polymorphic comparison ---- *)

let test_r3 () =
  (* Fires only on nominal/polymorphic instantiations (record, option of
     record, type variable); scalars and structural compositions of
     scalars (int list, int * float, float array) are typed-safe. *)
  check_hits "R3 on nominal or polymorphic instantiations"
    [ ("R3", 3); ("R3", 4); ("R3", 5); ("R3", 6) ]
    (lint ~logical:"lib/core/r3_poly_compare.ml" "r3_poly_compare.ml")

(* ---- R4: partial accessors in planner paths ---- *)

let test_r4_fires () =
  check_hits "R4 on each partial accessor"
    [ ("R4", 1); ("R4", 2); ("R4", 3); ("R4", 4) ]
    (lint ~logical:"lib/lp/r4_partial.ml" "r4_partial.ml")

let test_r4_zones () =
  check_hits "R4 only in lib/core + lib/lp" []
    (lint ~logical:"lib/sensor/r4_partial.ml" "r4_partial.ml")

(* ---- R5: stdout hygiene ---- *)

let test_r5_fires () =
  check_hits "R5 on stdout printers in lib/"
    [ ("R5", 1); ("R5", 2) ]
    (lint ~logical:"lib/experiments/r5_print.ml" "r5_print.ml")

let test_r5_zones () =
  check_hits "R5 inactive outside lib/" []
    (lint ~logical:"bin/r5_print.ml" "r5_print.ml")

(* ---- R6: certification taint ---- *)

let test_r6_raw_to_sink () =
  (* Replan.create gets the uncertified plan; Replan.consider then gets
     the policy value built from it. *)
  check_hits "raw Revised.solve reaching Replan fires at each sink"
    [ ("R6", 14); ("R6", 15) ]
    (lint ~logical:"lib/lintfix/r6_raw_replan.ml" "r6_raw_replan.ml")

let test_r6_certified_clean () =
  check_hits "the certified chain sanitizes the same flow" []
    (lint ~logical:"lib/lintfix/r6_certified_ok.ml" "r6_certified_ok.ml")

let test_r6_handbuilt () =
  check_hits "hand-built solution records mint taint"
    [ ("R6", 17) ]
    (lint ~logical:"lib/lintfix/r6_handbuilt.ml" "r6_handbuilt.ml")

let test_r6_zone () =
  check_hits "R6 is off in test/ (tests hand-build plans on purpose)" []
    (lint ~logical:"test/core/r6_raw_replan.ml" "r6_raw_replan.ml")

let test_r6_cross_module () =
  (* pass 1 summarizes the source module; pass 2 picks the taint up
     through the cross-module reference *)
  let taint = Lint_taint.create () in
  Lint_engine.summarize ~taint ~path:"lib/lintfix/taint_source.ml"
    (cmt_of "taint_source.ml");
  check_hits "taint crosses compilation units via summaries"
    [ ("R6", 8) ]
    (lint ~taint ~logical:"lib/lintfix/r6_cross_module.ml" "r6_cross_module.ml");
  check_hits "without the summary pass the reference is opaque" []
    (lint ~logical:"lib/lintfix/r6_cross_module.ml" "r6_cross_module.ml")

let test_r6_allow_scopes () =
  let r = result ~logical:"lib/lintfix/r6_allow.ml" "r6_allow.ml" in
  check_hits "expression- and binding-scope allows suppress" [] r.findings;
  check_suppressed "both suppressions are tallied" [ ("R6", 2) ] r;
  let r = result ~logical:"lib/lintfix/r6_allow_file.ml" "r6_allow_file.ml" in
  check_hits "file-scope allow suppresses" [] r.findings;
  check_suppressed "file-scope suppression is tallied" [ ("R6", 1) ] r

(* ---- R7: domain safety ---- *)

let test_r7_ref_capture () =
  check_hits "unlisted spawn + captured ref"
    [ ("R7", 5); ("R7", 5) ]
    (lint ~logical:"lib/lintfix/r7_spawn_ref.ml" "r7_spawn_ref.ml")

let test_r7_atomic_capture () =
  check_hits "atomic capture is fine but the region still fires"
    [ ("R7", 6) ]
    (lint ~logical:"lib/lintfix/r7_spawn_atomic.ml" "r7_spawn_atomic.ml")

let test_r7_allowlisted () =
  check_hits "the allowlisted (file, binding) region is exempt" []
    (lint ~logical:"lib/serve/server.ml" "r7_allowlisted.ml")

let test_r7_transitive () =
  check_hits "mutation one local call deep is still a capture"
    [ ("R7", 6); ("R7", 7) ]
    (lint ~logical:"lib/lintfix/r7_transitive.ml" "r7_transitive.ml")

(* ---- suppression: [@lint.allow] ---- *)

let test_allow_attr () =
  (* Expression, binding, and file-wide allows each suppress exactly
     their target; the unannotated fold on line 2 still fires. *)
  let r = result ~logical:"lib/core/allow_attr.ml" "allow_attr.ml" in
  check_hits "attribute suppresses exactly its target" [ ("R2", 2) ]
    r.findings;
  check_suppressed "per-rule suppression tally"
    [ ("R1", 1); ("R2", 2); ("R5", 1) ]
    r

(* ---- missing typedtrees ---- *)

let test_missing_cmt () =
  (* bad_syntax.ml is excluded from the fixture library (it does not
     parse), so it has no .cmt — exactly the shape of a file that fails
     to compile in a real run. *)
  (match lint ~logical:"lib/core/bad_syntax.ml" "bad_syntax.ml" with
  | [ f ] -> Alcotest.(check string) "PARSE rule" "PARSE" f.Finding.rule
  | fs ->
      Alcotest.failf "expected exactly one PARSE finding, got %d"
        (List.length fs));
  match Lint_engine.missing_cmt ~path:"lib/core/ghost.ml" with
  | { Lint_engine.findings = [ f ]; _ } ->
      Alcotest.(check string) "missing-cmt rule" "PARSE" f.Finding.rule
  | _ -> Alcotest.fail "expected exactly one PARSE finding"

(* ---- baseline semantics ---- *)

let test_baseline_suppresses_exactly () =
  let findings = lint ~logical:"lib/core/r2_hash_order.ml" "r2_hash_order.ml" in
  let first = List.hd findings in
  let baseline =
    Lint_baseline.parse_string
      (Printf.sprintf "# comment\n\n%s\n" (Finding.baseline_key first))
  in
  let fresh, accepted =
    List.partition (fun f -> not (Lint_baseline.mem baseline f)) findings
  in
  check_hits "only the keyed finding is accepted" [ ("R2", 1) ] accepted;
  check_hits "the other finding stays fresh" [ ("R2", 2) ] fresh

let test_baseline_stale () =
  let findings = lint ~logical:"lib/core/r2_hash_order.ml" "r2_hash_order.ml" in
  let baseline =
    Lint_baseline.parse_string "R2 lib/core/r2_hash_order.ml:999\n"
  in
  Alcotest.(check (list string))
    "unmatched entries are stale"
    [ "R2 lib/core/r2_hash_order.ml:999" ]
    (Lint_baseline.stale baseline findings)

let test_baseline_roundtrip () =
  let findings = lint ~logical:"lib/core/r2_hash_order.ml" "r2_hash_order.ml" in
  let tmp = Filename.temp_file "lint_baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Lint_baseline.write tmp findings;
      let reloaded = Lint_baseline.load tmp in
      Alcotest.(check (list string))
        "write/load round-trips the keys"
        (List.map Finding.baseline_key findings)
        reloaded;
      Alcotest.(check (list string))
        "a regenerated baseline is never stale" []
        (Lint_baseline.stale reloaded findings))

let () =
  Alcotest.run "repolint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 fires" `Quick test_r1_fires;
          Alcotest.test_case "R1 zones" `Quick test_r1_zones;
          Alcotest.test_case "R2 fires" `Quick test_r2_fires;
          Alcotest.test_case "R2 sort-feed exemption" `Quick test_r2_sort_feed;
          Alcotest.test_case "R3 typed" `Quick test_r3;
          Alcotest.test_case "R4 fires" `Quick test_r4_fires;
          Alcotest.test_case "R4 zones" `Quick test_r4_zones;
          Alcotest.test_case "R5 fires" `Quick test_r5_fires;
          Alcotest.test_case "R5 zones" `Quick test_r5_zones;
        ] );
      ( "taint",
        [
          Alcotest.test_case "R6 raw -> sink" `Quick test_r6_raw_to_sink;
          Alcotest.test_case "R6 certified clean" `Quick
            test_r6_certified_clean;
          Alcotest.test_case "R6 hand-built record" `Quick test_r6_handbuilt;
          Alcotest.test_case "R6 zone" `Quick test_r6_zone;
          Alcotest.test_case "R6 cross-module" `Quick test_r6_cross_module;
          Alcotest.test_case "R6 allow scopes" `Quick test_r6_allow_scopes;
        ] );
      ( "domains",
        [
          Alcotest.test_case "R7 ref capture" `Quick test_r7_ref_capture;
          Alcotest.test_case "R7 atomic capture" `Quick
            test_r7_atomic_capture;
          Alcotest.test_case "R7 allowlisted region" `Quick
            test_r7_allowlisted;
          Alcotest.test_case "R7 transitive capture" `Quick
            test_r7_transitive;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "[@lint.allow]" `Quick test_allow_attr;
          Alcotest.test_case "baseline keys" `Quick
            test_baseline_suppresses_exactly;
          Alcotest.test_case "stale baseline" `Quick test_baseline_stale;
          Alcotest.test_case "baseline round-trip" `Quick
            test_baseline_roundtrip;
        ] );
      ( "robustness",
        [ Alcotest.test_case "missing cmt" `Quick test_missing_cmt ] );
    ]

(* Randomized differential testing of the fault-injection + ACK/retransmit
   layer: under recoverable frame loss every message-level executor must
   still return exactly what the analytic executors compute — the
   reliability sublayer hides the loss completely — while the measured
   energy can only go up.  Crashed subtrees degrade to a partial answer
   over the reachable nodes, tagged dark, and the run still terminates. *)

let mica = Sensor.Mica2.default

let random_tree rng n =
  let parent = Array.init n (fun i -> if i = 0 then -1 else Rng.int rng i) in
  Sensor.Topology.of_parents ~root:0 parent

let random_readings rng n =
  Array.init n (fun _ -> Rng.gaussian rng ~mu:20. ~sigma:5.)

let ids answer = List.map fst answer

let full_plan topo ~k =
  Prospector.Plan.make topo
    (Array.mapi
       (fun i size -> if i = topo.Sensor.Topology.root then 0 else Int.min size k)
       topo.Sensor.Topology.subtree_size)

let drop_rates = [ 0.; 0.05; 0.2 ]

let n_seeds = 50

(* One scenario per seed: a random topology and reading set, exercised at
   each drop rate by all four message-level executors.

   The retry schedule is bounded, so "recoverable" loss is only
   recoverable with overwhelming probability: at the highest drop rate a
   frame can exhaust every retry (p ~ per-round-loss ^ retries; QCheck
   input 2900 finds one).  The property is therefore: loss is invisible
   {e unless} the engine declared the link dead after fighting for it —
   darkness is always accounted (dark set + retransmissions), never
   silent, and only then may the answer degrade or the energy dip below
   the lossless baseline (fast-fail stops paying for a dead link). *)
let recoverable_loss_is_invisible =
  QCheck.Test.make
    ~name:
      "recoverable loss: exact analytic answers and dominated energy unless \
       a link died fighting" ~count:n_seeds
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 81) in
      let n = 2 + Rng.int rng 20 in
      let k = 1 + Rng.int rng 5 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let plan = full_plan topo ~k in
      let pplan = Prospector.Proof_exec.min_bandwidth_plan topo in
      let naive = Prospector.Naive.naive_one topo cost ~k ~readings in
      let naive_k = Prospector.Naive.naive_k topo cost ~k ~readings in
      let proof = Prospector.Proof_exec.run topo cost pplan ~k ~readings in
      let truth = ids (Prospector.Exec.true_top_k ~k readings) in
      let baseline = ref None in
      List.for_all
        (fun drop ->
          let fault () =
            (Simnet.Fault.bernoulli ~n ~drop, Rng.create (seed + 7))
          in
          let collect =
            Prospector.Simnet_exec.collect topo mica ~fault:(fault ()) plan ~k
              ~readings
          in
          let pull =
            Prospector.Simnet_protocols.naive_one topo mica ~fault:(fault ())
              ~k ~readings ()
          in
          let pc =
            Prospector.Simnet_protocols.proof_collect topo mica
              ~fault:(fault ()) pplan ~k ~readings ()
          in
          let ex =
            Prospector.Simnet_protocols.exact topo mica ~fault:(fault ()) pplan
              ~k ~readings ()
          in
          (* (answer exact, dark, retransmissions, energy) per executor *)
          let runs =
            [
              ( ids collect.Prospector.Simnet_exec.returned
                = ids naive_k.Prospector.Naive.returned,
                collect.Prospector.Simnet_exec.dark,
                collect.Prospector.Simnet_exec.retransmissions,
                collect.Prospector.Simnet_exec.total_mj );
              ( ids pull.Prospector.Simnet_protocols.returned
                = ids naive.Prospector.Naive.returned,
                pull.Prospector.Simnet_protocols.dark,
                pull.Prospector.Simnet_protocols.retransmissions,
                pull.Prospector.Simnet_protocols.total_mj );
              ( ids
                  pc.Prospector.Simnet_protocols.base
                    .Prospector.Simnet_protocols.returned
                  = ids proof.Prospector.Proof_exec.result
                && pc.Prospector.Simnet_protocols.proven_count
                   = proof.Prospector.Proof_exec.proven_count,
                pc.Prospector.Simnet_protocols.base
                  .Prospector.Simnet_protocols.dark,
                pc.Prospector.Simnet_protocols.base
                  .Prospector.Simnet_protocols.retransmissions,
                pc.Prospector.Simnet_protocols.base
                  .Prospector.Simnet_protocols.total_mj );
              ( ids ex.Prospector.Simnet_protocols.answer = truth,
                ex.Prospector.Simnet_protocols.dark,
                ex.Prospector.Simnet_protocols.retransmissions,
                ex.Prospector.Simnet_protocols.total_mj );
            ]
          in
          let not_cheaper =
            (* The first rate in [drop_rates] is 0: the lossless reliable
               run is the baseline every clean lossy run must dominate.  A
               run that declared a link dead is exempt — fast-fail stops
               spending on the dead link. *)
            match !baseline with
            | None ->
                baseline := Some (List.map (fun (_, _, _, e) -> e) runs);
                true
            | Some base ->
                List.for_all2
                  (fun (_, dark, _, e) b -> dark <> [] || e >= b -. 1e-9)
                  runs base
          in
          List.for_all
            (fun (exact_answer, dark, retrans, _) ->
              if dark = [] then exact_answer
              else
                (* Accounted degradation: a dead link was fought for
                   (retries on the air) before being declared. *)
                drop > 0. && retrans > 0)
            runs
          && not_cheaper
          && ((drop > 0.)
             || collect.Prospector.Simnet_exec.retransmissions = 0))
        drop_rates)

(* A lossless run over the reliability sublayer must cost exactly what the
   legacy direct-delivery path charges: ACKs ride in the per-message
   allowance, so rate 0 is not merely close, it is equal. *)
let lossless_reliable_equals_legacy =
  QCheck.Test.make
    ~name:"rate-0 fault injection charges exactly the legacy energy"
    ~count:n_seeds
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 82) in
      let n = 2 + Rng.int rng 20 in
      let k = 1 + Rng.int rng 5 in
      let topo = random_tree rng n in
      let readings = random_readings rng n in
      let plan = full_plan topo ~k in
      let legacy = Prospector.Simnet_exec.collect topo mica plan ~k ~readings in
      let reliable =
        Prospector.Simnet_exec.collect topo mica
          ~fault:(Simnet.Fault.none ~n, Rng.create seed)
          plan ~k ~readings
      in
      ids legacy.Prospector.Simnet_exec.returned
      = ids reliable.Prospector.Simnet_exec.returned
      && Float.abs
           (legacy.Prospector.Simnet_exec.total_mj
           -. reliable.Prospector.Simnet_exec.total_mj)
         < 1e-9
      && legacy.Prospector.Simnet_exec.unicasts
         = reliable.Prospector.Simnet_exec.unicasts)

(* Same seed, same simulation — bit for bit, including the energy ledgers
   and the loss bookkeeping. *)
let same_seed_is_bit_identical =
  QCheck.Test.make ~name:"same-seed lossy runs are bit-identical" ~count:n_seeds
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 83) in
      let n = 2 + Rng.int rng 20 in
      let k = 1 + Rng.int rng 5 in
      let topo = random_tree rng n in
      let readings = random_readings rng n in
      let plan = full_plan topo ~k in
      let run () =
        Prospector.Simnet_exec.collect topo mica
          ~fault:
            ( Simnet.Fault.with_burst
                (Simnet.Fault.bernoulli ~n ~drop:0.2)
                ~mean_length:0.02,
              Rng.create (seed + 9) )
          plan ~k ~readings
      in
      let a = run () and b = run () in
      a.Prospector.Simnet_exec.returned = b.Prospector.Simnet_exec.returned
      && a.Prospector.Simnet_exec.total_mj = b.Prospector.Simnet_exec.total_mj
      && a.Prospector.Simnet_exec.per_node_mj
         = b.Prospector.Simnet_exec.per_node_mj
      && a.Prospector.Simnet_exec.latency_s = b.Prospector.Simnet_exec.latency_s
      && a.Prospector.Simnet_exec.unicasts = b.Prospector.Simnet_exec.unicasts
      && a.Prospector.Simnet_exec.retransmissions
         = b.Prospector.Simnet_exec.retransmissions
      && a.Prospector.Simnet_exec.dark = b.Prospector.Simnet_exec.dark)

(* Burst loss windows are recoverable too: retries outlast the outage. *)
let burst_loss_recovers =
  QCheck.Test.make ~name:"burst loss recovers to the exact answer"
    ~count:n_seeds
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 84) in
      let n = 2 + Rng.int rng 15 in
      let k = 1 + Rng.int rng 5 in
      let topo = random_tree rng n in
      let readings = random_readings rng n in
      let pplan = Prospector.Proof_exec.min_bandwidth_plan topo in
      let fault =
        ( Simnet.Fault.with_burst
            (Simnet.Fault.bernoulli ~n ~drop:0.1)
            ~mean_length:0.05,
          Rng.create (seed + 11) )
      in
      let ex =
        Prospector.Simnet_protocols.exact topo mica ~fault pplan ~k ~readings ()
      in
      ids ex.Prospector.Simnet_protocols.answer
      = ids (Prospector.Exec.true_top_k ~k readings)
      && ex.Prospector.Simnet_protocols.dark = [])

(* ---- crash degradation ---- *)

let alive_top_k topo readings ~k ~dead =
  let dark = Sensor.Topology.descendants topo dead in
  let alive =
    Prospector.Exec.true_top_k ~k:(Array.length readings)
      (Array.mapi (fun i v -> if List.mem i dark then neg_infinity else v)
         readings)
    |> List.filter (fun (i, _) -> not (List.mem i dark))
  in
  Prospector.Exec.take_prefix k alive

let crashed_subtree_goes_dark =
  QCheck.Test.make
    ~name:"permanent crash: subtree reported dark, answer covers the rest"
    ~count:n_seeds
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 85) in
      let n = 3 + Rng.int rng 15 in
      let k = 1 + Rng.int rng 4 in
      let topo = random_tree rng n in
      let readings = random_readings rng n in
      let dead = 1 + Rng.int rng (n - 1) in
      let fault =
        Simnet.Fault.with_crashes (Simnet.Fault.none ~n)
          [ (dead, 0., infinity) ]
      in
      let plan = full_plan topo ~k in
      let r =
        Prospector.Simnet_exec.collect topo mica
          ~fault:(fault, Rng.create (seed + 13))
          plan ~k ~readings
      in
      let expected_dark =
        List.sort_uniq compare (Sensor.Topology.descendants topo dead)
      in
      r.Prospector.Simnet_exec.dark = expected_dark
      && ids r.Prospector.Simnet_exec.returned
         = ids (alive_top_k topo readings ~k ~dead))

let exact_protocol_survives_crash =
  QCheck.Test.make
    ~name:"exact protocol under a permanent crash: top k of reachable nodes"
    ~count:n_seeds
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 86) in
      let n = 3 + Rng.int rng 15 in
      let k = 1 + Rng.int rng 4 in
      let topo = random_tree rng n in
      let readings = random_readings rng n in
      let dead = 1 + Rng.int rng (n - 1) in
      let fault =
        Simnet.Fault.with_crashes (Simnet.Fault.none ~n)
          [ (dead, 0., infinity) ]
      in
      let pplan = Prospector.Proof_exec.min_bandwidth_plan topo in
      let r =
        Prospector.Simnet_protocols.exact topo mica
          ~fault:(fault, Rng.create (seed + 15))
          pplan ~k ~readings ()
      in
      r.Prospector.Simnet_protocols.dark
      = List.sort_uniq compare (Sensor.Topology.descendants topo dead)
      && ids r.Prospector.Simnet_protocols.answer
         = ids (alive_top_k topo readings ~k ~dead))

let transient_crash_recovers =
  QCheck.Test.make
    ~name:"transient crash: retries outlast the outage, nothing goes dark"
    ~count:n_seeds
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 87) in
      let n = 3 + Rng.int rng 15 in
      let k = 1 + Rng.int rng 4 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let readings = random_readings rng n in
      let down = 1 + Rng.int rng (n - 1) in
      (* A half-second outage sits well inside the ~12 s worst-case retry
         schedule, so the collection must come back complete. *)
      let fault =
        Simnet.Fault.with_crashes (Simnet.Fault.none ~n)
          [ (down, 0., 0.5) ]
      in
      let plan = full_plan topo ~k in
      let clean = Prospector.Simnet_exec.collect topo mica plan ~k ~readings in
      let r =
        Prospector.Simnet_exec.collect topo mica
          ~fault:(fault, Rng.create (seed + 17))
          plan ~k ~readings
      in
      ignore cost;
      r.Prospector.Simnet_exec.dark = []
      && ids r.Prospector.Simnet_exec.returned
         = ids clean.Prospector.Simnet_exec.returned
      && r.Prospector.Simnet_exec.total_mj
         >= clean.Prospector.Simnet_exec.total_mj -. 1e-9)

(* All three fault classes stacked on one run: a permanent crash riding on
   burst windows over Bernoulli drops.  The recoverable layers must stay
   invisible (dark is exactly the crashed closure, the answer is the top k
   of the survivors) and the whole composite must be deterministic per
   seed — including the give-up ledger the self-healing layer feeds on. *)
let combined_faults_compose =
  QCheck.Test.make
    ~name:
      "crash + burst + bernoulli: dark is exactly the crashed closure, \
       deterministic, give-ups accounted" ~count:n_seeds
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 88) in
      let n = 3 + Rng.int rng 15 in
      let k = 1 + Rng.int rng 4 in
      let topo = random_tree rng n in
      let readings = random_readings rng n in
      let dead = 1 + Rng.int rng (n - 1) in
      let fault =
        Simnet.Fault.with_crashes
          (Simnet.Fault.with_burst
             (Simnet.Fault.bernoulli ~n ~drop:0.05)
             ~mean_length:0.02)
          [ (dead, 0., infinity) ]
      in
      let plan = full_plan topo ~k in
      let run () =
        Prospector.Simnet_exec.collect topo mica
          ~fault:(fault, Rng.create (seed + 19))
          plan ~k ~readings
      in
      let a = run () and b = run () in
      let expected_dark =
        List.sort_uniq compare (Sensor.Topology.descendants topo dead)
      in
      a.Prospector.Simnet_exec.dark = expected_dark
      && ids a.Prospector.Simnet_exec.returned
         = ids (alive_top_k topo readings ~k ~dead)
      (* One frame per directed link per collection, so the engine's
         give-up counter and the executor's timestamped ledger agree. *)
      && a.Prospector.Simnet_exec.gave_up_frames
         = List.length a.Prospector.Simnet_exec.give_ups
      && List.for_all
           (fun (dst, at) -> List.mem dst expected_dark && at > 0.)
           a.Prospector.Simnet_exec.give_ups
      (* Bit-identical re-run, loss bookkeeping included. *)
      && a.Prospector.Simnet_exec.returned = b.Prospector.Simnet_exec.returned
      && a.Prospector.Simnet_exec.total_mj = b.Prospector.Simnet_exec.total_mj
      && a.Prospector.Simnet_exec.per_node_mj
         = b.Prospector.Simnet_exec.per_node_mj
      && a.Prospector.Simnet_exec.retransmissions
         = b.Prospector.Simnet_exec.retransmissions
      && a.Prospector.Simnet_exec.dark = b.Prospector.Simnet_exec.dark
      && a.Prospector.Simnet_exec.give_ups = b.Prospector.Simnet_exec.give_ups)

(* A pinned generator state: the sampled inputs are arbitrary but fixed,
   so the suite is reproducible run to run. *)
let qcheck_cases =
  List.map
    (fun t ->
      QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x10557 |]) t)
    [
      recoverable_loss_is_invisible;
      lossless_reliable_equals_legacy;
      same_seed_is_bit_identical;
      burst_loss_recovers;
      crashed_subtree_goes_dark;
      exact_protocol_survives_crash;
      transient_crash_recovers;
      combined_faults_compose;
    ]

let () = Alcotest.run "lossy" [ ("properties", qcheck_cases) ]

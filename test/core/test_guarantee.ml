(* Statistical bound-violation harness for the certified (eps, delta)
   guarantees (Guarantee, Robust_plan.plan_with_guarantee, Lp_lf ?guarantee).

   The headline test is a cross-seed adversarial sweep: GUARANTEE_SEEDS
   seeds (default 200, shifted by GUARANTEE_SEED_OFFSET so CI can rotate
   the seed window across runs) x three value-field families chosen to
   stress different bound families:

   - heavy-tail: per-node lognormal readings, so single epochs are
     dominated by outliers and per-sample accuracy is noisy;
   - correlated: a multivariate normal with an exponential kernel, so
     neighbouring nodes trade places in the top k together;
   - adversarially permuted: a fixed descending value ladder assigned to
     nodes by a fresh uniform permutation each epoch — every node is
     equally likely to hold any rank, the worst case for a sample-based
     planner.

   Each trial plans through the full machinery (split window, per-rung
   delta, LP-gap folding) and then measures the plan's true expected
   accuracy on a large fresh holdout.  A violation is counted only when
   the holdout mean undercuts the certified lower bound by more than the
   holdout's own estimation slack (a Hoeffding interval at delta = 1e-9),
   so the assertion "zero violations" is statistical but engineered not
   to flake: with the sweep's delta = 1e-4 per trial the union failure
   probability over 600 trials is ~6e-2 in the worst case the bound
   allows, and orders of magnitude lower for the concentrated accuracy
   distributions actually produced.  When GUARANTEE_SUMMARY is set the
   sweep writes a JSON artifact with per-family tallies for CI. *)

let mica = Sensor.Mica2.default

let random_tree rng n =
  let parent = Array.init n (fun i -> if i = 0 then -1 else Rng.int rng i) in
  Sensor.Topology.of_parents ~root:0 parent

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let n_seeds = env_int "GUARANTEE_SEEDS" 200
let seed_offset = env_int "GUARANTEE_SEED_OFFSET" 0

(* Per-trial certification target: eps is trivial (any bound attains it at
   rung 0) so the sweep exercises the machinery without forcing the full
   escalation ladder on every trial, while delta = 1e-4 keeps the claimed
   failure probability small enough that "zero violations" is a sound
   assertion over the whole sweep. *)
let target_eps = 0.999
let target_delta = 1e-4

(* Ground-truth holdout: fresh epochs from the same field, never seen by
   the planner.  Its own estimation error is covered by a Hoeffding
   interval at a failure probability far below the sweep's. *)
let holdout_epochs = 400
let holdout_delta = 1e-9

(* ---------- adversarial field families ---------- *)

let heavy_tail rng n =
  let scale = Array.init n (fun _ -> 5. +. Rng.float rng 10.) in
  {
    Sampling.Field.n;
    draw =
      (fun rng ->
        Array.init n (fun i ->
            scale.(i) *. exp (Rng.gaussian rng ~mu:0. ~sigma:1.3)));
    describe = "heavy-tail lognormal";
  }

let correlated rng n =
  let means = Array.init n (fun _ -> 15. +. Rng.float rng 10.) in
  let covariance =
    Array.init n (fun i ->
        Array.init n (fun j ->
            (6. *. exp (-.Float.abs (float_of_int (i - j)) /. 4.))
            +. if i = j then 0.5 else 0.))
  in
  Sampling.Mvn.field ~means ~covariance

let adversarial_permuted rng n =
  let top = 30. +. Rng.float rng 20. in
  let ladder = Array.init n (fun r -> top -. (2. *. float_of_int r)) in
  {
    Sampling.Field.n;
    draw =
      (fun rng ->
        let perm = Array.init n Fun.id in
        Rng.shuffle rng perm;
        let out = Array.make n 0. in
        Array.iteri
          (fun r node ->
            out.(node) <- ladder.(r) +. Rng.gaussian rng ~mu:0. ~sigma:0.2)
          perm;
        out);
    describe = "adversarially permuted ladder";
  }

let families =
  [
    ("heavy-tail", heavy_tail);
    ("correlated", correlated);
    ("adversarial-permuted", adversarial_permuted);
  ]

(* ---------- the sweep ---------- *)

type family_stats = {
  name : string;
  mutable trials : int;
  mutable violations : int;
  mutable informative : int;  (** trials whose certified lower bound > 0 *)
  mutable target_met : int;
  mutable sum_eps : float;
  mutable sum_lower : float;
  mutable sum_emp : float;
  mutable sum_true : float;
}

let holdout_slack =
  Prospector.Guarantee.hoeffding_slack ~m:holdout_epochs ~delta:holdout_delta

let run_trial ~family_ix ~make_field seed =
  let rng = Rng.create ((seed * 8) + family_ix + 0x5151) in
  let n = 8 + Rng.int rng 7 in
  let k = 1 + Rng.int rng 3 in
  let m = 80 + Rng.int rng 41 in
  let topo = random_tree rng n in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let field = make_field rng n in
  let train = Sampling.Sample_set.draw rng field ~k ~count:m in
  (* Budgets span starved to comfortable so the sweep certifies lossy
     plans (where a bad bound could actually be caught) as well as
     near-perfect ones. *)
  let budget = 4. +. Rng.float rng 32. in
  let r =
    Prospector.Lp_lf.plan ~guarantee:(target_eps, target_delta) topo cost train
      ~budget ~k
  in
  let g =
    match r.Prospector.Lp_lf.guarantee with
    | Some g -> g
    | None -> Alcotest.fail "?guarantee plan carries no Guarantee.t"
  in
  (* Every emitted bound must be machine-checkable and survive a JSON
     round-trip bit-for-bit. *)
  (match Prospector.Guarantee.validate g with
  | Ok () -> ()
  | Error reason -> Alcotest.fail ("invalid guarantee: " ^ reason));
  (match Prospector.Guarantee.of_json (Prospector.Guarantee.to_json g) with
  | Some g' when Prospector.Guarantee.equal g g' -> ()
  | Some _ -> Alcotest.fail "guarantee JSON round-trip changed the record"
  | None -> Alcotest.fail "guarantee JSON did not parse back");
  let acc = ref 0. in
  for _ = 1 to holdout_epochs do
    let readings = field.Sampling.Field.draw rng in
    let o =
      Prospector.Exec.collect topo cost r.Prospector.Lp_lf.plan ~k ~readings
    in
    acc := !acc +. Prospector.Exec.accuracy ~k ~readings o.Prospector.Exec.returned
  done;
  let true_acc = !acc /. float_of_int holdout_epochs in
  let violated =
    not
      (Prospector.Guarantee.holds_against g
         ~observed_accuracy:(true_acc +. holdout_slack))
  in
  (g, true_acc, violated)

let run_family family_ix (name, make_field) =
  let s =
    {
      name;
      trials = 0;
      violations = 0;
      informative = 0;
      target_met = 0;
      sum_eps = 0.;
      sum_lower = 0.;
      sum_emp = 0.;
      sum_true = 0.;
    }
  in
  for i = 0 to n_seeds - 1 do
    let g, true_acc, violated =
      run_trial ~family_ix ~make_field (seed_offset + i)
    in
    s.trials <- s.trials + 1;
    if violated then s.violations <- s.violations + 1;
    if g.Prospector.Guarantee.certified_lower > 0. then
      s.informative <- s.informative + 1;
    if Prospector.Guarantee.meets g ~eps:target_eps ~delta:target_delta then
      s.target_met <- s.target_met + 1;
    s.sum_eps <- s.sum_eps +. g.Prospector.Guarantee.eps;
    s.sum_lower <- s.sum_lower +. g.Prospector.Guarantee.certified_lower;
    s.sum_emp <- s.sum_emp +. g.Prospector.Guarantee.empirical_accuracy;
    s.sum_true <- s.sum_true +. true_acc
  done;
  s

let summary_json stats =
  let mean total s = if s.trials = 0 then 0. else total /. float_of_int s.trials in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "guarantee-sweep/1");
      ("seeds", Obs.Json.Num (float_of_int n_seeds));
      ("seed_offset", Obs.Json.Num (float_of_int seed_offset));
      ("target_eps", Obs.Json.Num target_eps);
      ("target_delta", Obs.Json.Num target_delta);
      ( "holdout",
        Obs.Json.Obj
          [
            ("epochs", Obs.Json.Num (float_of_int holdout_epochs));
            ("delta", Obs.Json.Num holdout_delta);
            ("slack", Obs.Json.Num holdout_slack);
          ] );
      ( "families",
        Obs.Json.List
          (List.map
             (fun s ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.Str s.name);
                   ("trials", Obs.Json.Num (float_of_int s.trials));
                   ("violations", Obs.Json.Num (float_of_int s.violations));
                   ("informative", Obs.Json.Num (float_of_int s.informative));
                   ("target_met", Obs.Json.Num (float_of_int s.target_met));
                   ("mean_eps", Obs.Json.Num (mean s.sum_eps s));
                   ("mean_certified_lower", Obs.Json.Num (mean s.sum_lower s));
                   ("mean_empirical_accuracy", Obs.Json.Num (mean s.sum_emp s));
                   ("mean_true_accuracy", Obs.Json.Num (mean s.sum_true s));
                 ])
             stats) );
    ]

let write_summary stats =
  match Sys.getenv_opt "GUARANTEE_SUMMARY" with
  | None | Some "" -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Obs.Json.to_string_pretty (summary_json stats));
      close_out oc

let test_sweep () =
  let stats = List.mapi run_family families in
  (* Write the artifact before asserting so a red run still uploads its
     evidence. *)
  write_summary stats;
  List.iter
    (fun s ->
      Alcotest.(check int)
        (s.name ^ ": full seed count") n_seeds s.trials;
      Alcotest.(check int)
        (s.name ^ ": zero bound violations") 0 s.violations)
    stats;
  (* Guard against a vacuous sweep: a meaningful fraction of the certified
     lower bounds must actually be positive (a bound of 0 can never be
     violated).  The true informative rate is far above this threshold;
     binomial concentration over >= 600 trials makes the check stable
     under seed rotation. *)
  let informative = List.fold_left (fun a s -> a + s.informative) 0 stats in
  let total = List.fold_left (fun a s -> a + s.trials) 0 stats in
  if float_of_int informative < 0.2 *. float_of_int total then
    Alcotest.failf "sweep is vacuous: only %d/%d informative bounds"
      informative total

(* ---------- ground truth of the ground truth ---------- *)

(* The sweep trusts Exec.accuracy/true_top_k as its oracle; tie that
   oracle to the exact two-phase algorithm, whose answer is correct by
   construction regardless of plan or samples. *)
let test_exact_oracle_agreement () =
  for seed = 0 to 9 do
    let rng = Rng.create (7_000 + seed) in
    let n = 6 + Rng.int rng 10 in
    let k = 1 + Rng.int rng 3 in
    let topo = random_tree rng n in
    let cost = Sensor.Cost.of_mica2 topo mica in
    let readings = Array.init n (fun _ -> Rng.gaussian rng ~mu:20. ~sigma:5.) in
    let proof = Prospector.Proof_exec.min_bandwidth_plan topo in
    let o = Prospector.Exact.run topo cost mica proof ~k ~readings in
    let truth = Prospector.Exec.true_top_k ~k readings in
    Alcotest.(check bool)
      "exact answer equals Exec.true_top_k" true
      (o.Prospector.Exact.answer = truth);
    Alcotest.(check (float 1e-12))
      "oracle scores itself perfect" 1.
      (Prospector.Exec.accuracy ~k ~readings truth)
  done

(* ---------- metamorphic properties of the tail bounds ---------- *)

let check_decreasing name f xs =
  let rec go = function
    | a :: (b :: _ as rest) ->
        if not (f a >= f b -. 1e-12) then
          Alcotest.failf "%s: slack increased between %g and %g (%g < %g)" name
            a b (f a) (f b);
        go rest
    | _ -> ()
  in
  go xs

let test_slack_monotone_in_m () =
  let ms = [ 2.; 3.; 5.; 10.; 25.; 100.; 400.; 1600. ] in
  List.iter
    (fun delta ->
      check_decreasing "hoeffding in m"
        (fun m -> Prospector.Guarantee.hoeffding_slack ~m:(int_of_float m) ~delta)
        ms;
      List.iter
        (fun variance ->
          check_decreasing "bernstein in m"
            (fun m ->
              Prospector.Guarantee.bernstein_slack ~m:(int_of_float m) ~variance
                ~delta)
            ms)
        [ 0.; 0.01; 0.25 ];
      check_decreasing "union in m"
        (fun m ->
          Prospector.Guarantee.union_slack ~m:(int_of_float m) ~candidates:8
            ~k:2 ~delta)
        ms)
    [ 0.2; 0.01; 1e-6 ]

let test_slack_monotone_in_delta () =
  (* Demanding higher confidence (smaller delta) can only widen the slack. *)
  let deltas = [ 0.5; 0.1; 0.01; 1e-4; 1e-8 ] in
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        (* b < a: stricter confidence must not shrink any family's slack. *)
        Alcotest.(check bool) "hoeffding widens as delta shrinks" true
          (Prospector.Guarantee.hoeffding_slack ~m:50 ~delta:b
          >= Prospector.Guarantee.hoeffding_slack ~m:50 ~delta:a -. 1e-12);
        Alcotest.(check bool) "bernstein widens as delta shrinks" true
          (Prospector.Guarantee.bernstein_slack ~m:50 ~variance:0.1 ~delta:b
          >= Prospector.Guarantee.bernstein_slack ~m:50 ~variance:0.1 ~delta:a
             -. 1e-12);
        Alcotest.(check bool) "union widens as delta shrinks" true
          (Prospector.Guarantee.union_slack ~m:50 ~candidates:6 ~k:2 ~delta:b
          >= Prospector.Guarantee.union_slack ~m:50 ~candidates:6 ~k:2 ~delta:a
             -. 1e-12);
        pairs rest
    | _ -> ()
  in
  pairs deltas

let test_union_monotone_in_k_and_candidates () =
  (* A larger answer set dilutes each node's contribution: slack shrinks. *)
  check_decreasing "union in k"
    (fun k ->
      Prospector.Guarantee.union_slack ~m:50 ~candidates:12
        ~k:(int_of_float k) ~delta:0.01)
    [ 1.; 2.; 4.; 8.; 12. ];
  (* More candidates split the failure budget thinner: slack grows. *)
  check_decreasing "union in candidates (reversed)"
    (fun c ->
      -.Prospector.Guarantee.union_slack ~m:50 ~candidates:(int_of_float c)
          ~k:2 ~delta:0.01)
    [ 1.; 2.; 4.; 8.; 16. ]

let test_slack_edge_cases () =
  Alcotest.(check bool) "bernstein needs two samples" true
    (Prospector.Guarantee.bernstein_slack ~m:1 ~variance:0.1 ~delta:0.1
    = infinity);
  Alcotest.check_raises "hoeffding m = 0"
    (Invalid_argument "Guarantee.hoeffding_slack: m must be positive")
    (fun () ->
      ignore (Prospector.Guarantee.hoeffding_slack ~m:0 ~delta:0.1));
  Alcotest.check_raises "delta = 0"
    (Invalid_argument "Guarantee.hoeffding_slack: delta must be in (0, 1)")
    (fun () ->
      ignore (Prospector.Guarantee.hoeffding_slack ~m:10 ~delta:0.));
  Alcotest.check_raises "delta = 1"
    (Invalid_argument "Guarantee.hoeffding_slack: delta must be in (0, 1)")
    (fun () ->
      ignore (Prospector.Guarantee.hoeffding_slack ~m:10 ~delta:1.));
  Alcotest.check_raises "negative variance"
    (Invalid_argument "Guarantee.bernstein_slack: negative variance")
    (fun () ->
      ignore
        (Prospector.Guarantee.bernstein_slack ~m:10 ~variance:(-1.) ~delta:0.1));
  Alcotest.check_raises "zero candidates"
    (Invalid_argument "Guarantee.union_slack: candidates must be positive")
    (fun () ->
      ignore
        (Prospector.Guarantee.union_slack ~m:10 ~candidates:0 ~k:1 ~delta:0.1));
  Alcotest.check_raises "zero k"
    (Invalid_argument "Guarantee.union_slack: k must be positive")
    (fun () ->
      ignore
        (Prospector.Guarantee.union_slack ~m:10 ~candidates:3 ~k:0 ~delta:0.1))

(* ---------- compute: determinism and window growth ---------- *)

let fixed_instance seed =
  let rng = Rng.create seed in
  let n = 12 in
  let topo = random_tree rng n in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let field =
    Sampling.Field.random_gaussian rng ~n ~mean_lo:18. ~mean_hi:26. ~sigma_lo:1.
      ~sigma_hi:3.
  in
  let k = 2 in
  let samples = Sampling.Sample_set.draw rng field ~k ~count:120 in
  let plan =
    (Prospector.Lp_lf.plan topo cost samples ~budget:20. ~k).Prospector.Lp_lf
      .plan
  in
  (topo, cost, field, plan, k, samples)

let test_compute_deterministic () =
  let topo, cost, _, plan, k, samples = fixed_instance 11 in
  let g1 = Prospector.Guarantee.compute topo cost plan ~k samples in
  let g2 = Prospector.Guarantee.compute topo cost plan ~k samples in
  Alcotest.(check bool) "same inputs, same guarantee" true
    (Prospector.Guarantee.equal g1 g2)

let test_window_growth_never_loosens () =
  (* Nested windows: the bound certified on the full window never carries
     more statistical slack than the ceiling the half window allows (the
     pure slack functions are monotone in m; this checks the property
     survives the end-to-end compute path). *)
  let topo, cost, _, plan, k, samples = fixed_instance 12 in
  let m = Sampling.Sample_set.n_samples samples in
  let half = Sampling.Sample_set.slice samples ~offset:0 ~count:(m / 2) in
  let delta = 1e-3 in
  let g_full = Prospector.Guarantee.compute ~delta topo cost plan ~k samples in
  let g_half = Prospector.Guarantee.compute ~delta topo cost plan ~k half in
  Alcotest.(check bool) "full-window slack under half-window ceiling" true
    (g_full.Prospector.Guarantee.stat_eps
    <= Prospector.Guarantee.hoeffding_slack ~m:(m / 2) ~delta:(delta /. 3.)
       +. 1e-12);
  Alcotest.(check bool) "half-window slack respects its own ceiling" true
    (g_half.Prospector.Guarantee.stat_eps
    <= Prospector.Guarantee.hoeffding_slack ~m:(m / 2) ~delta:(delta /. 3.)
       +. 1e-12)

(* ---------- meets / holds_against / validate on a fabricated record ---------- *)

let fabricated =
  {
    Prospector.Guarantee.eps = 0.2;
    delta = 0.01;
    samples = 50;
    k = 2;
    empirical_accuracy = 0.9;
    certified_lower = 0.7;
    stat_eps = 0.2;
    lp_eps = 0.;
    family = Prospector.Guarantee.Hoeffding;
    candidates = 4;
    lp_certified = false;
  }

let test_meets_and_holds () =
  Alcotest.(check bool) "meets a looser target" true
    (Prospector.Guarantee.meets fabricated ~eps:0.35 ~delta:0.05);
  Alcotest.(check bool) "rejects a tighter eps" false
    (Prospector.Guarantee.meets fabricated ~eps:0.25 ~delta:0.05);
  Alcotest.(check bool) "rejects a tighter delta" false
    (Prospector.Guarantee.meets fabricated ~eps:0.35 ~delta:0.001);
  Alcotest.(check bool) "holds against truth above the floor" true
    (Prospector.Guarantee.holds_against fabricated ~observed_accuracy:0.71);
  Alcotest.(check bool) "violated by truth below the floor" false
    (Prospector.Guarantee.holds_against fabricated ~observed_accuracy:0.69)

let expect_invalid label g =
  match Prospector.Guarantee.validate g with
  | Ok () -> Alcotest.failf "%s: expected validation failure" label
  | Error _ -> ()

let test_validate_rejects_corruption () =
  (match Prospector.Guarantee.validate fabricated with
  | Ok () -> ()
  | Error reason -> Alcotest.failf "fabricated record invalid: %s" reason);
  expect_invalid "broken eps identity" { fabricated with eps = 0.3 };
  expect_invalid "delta out of range" { fabricated with delta = 0. };
  expect_invalid "broken lower identity"
    { fabricated with certified_lower = 0.9 };
  expect_invalid "LP slack without certification"
    { fabricated with lp_eps = 0.05; eps = 0.25; certified_lower = 0.65 };
  expect_invalid "slack above the Hoeffding member"
    { fabricated with stat_eps = 1.; eps = 1.; certified_lower = 0. };
  Alcotest.(check bool) "foreign JSON schema rejected" true
    (Prospector.Guarantee.of_json (Obs.Json.Obj [ ("schema", Obs.Json.Str "x") ])
    = None)

(* ---------- the escalation ladder ---------- *)

let plan_with_target ?max_escalations ?growth topo cost samples ~k ~budget ~eps
    ~delta =
  Prospector.Robust_plan.plan_with_guarantee ?max_escalations ?growth ~eps
    ~delta
    ~planner:(fun ~samples ~budget ->
      Prospector.Lp_lf.plan topo cost samples ~budget ~k)
    ~describe:(fun r ->
      ( r.Prospector.Lp_lf.plan,
        r.Prospector.Lp_lf.certify,
        Some r.Prospector.Lp_lf.lp_objective ))
    topo cost ~k samples ~budget

let test_budget_monotone_in_target () =
  (* Tightening eps never decreases the chosen budget: the ladder takes
     the first rung meeting the target, and a stricter target can only be
     met later (or fall back to the best rung, which is at least as deep
     as any attained one). *)
  let topo, cost, _, _, k, samples = fixed_instance 13 in
  let budgets =
    List.map
      (fun eps ->
        (plan_with_target topo cost samples ~k ~budget:4. ~eps ~delta:1e-3)
          .Prospector.Robust_plan.chosen
          .Prospector.Robust_plan.budget)
      [ 0.95; 0.8; 0.6; 0.45; 0.3; 0.2 ]
  in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "budget never shrinks as eps tightens" true
          (b >= a -. 1e-9);
        non_decreasing rest
    | _ -> ()
  in
  non_decreasing budgets

let test_escalation_reaches_target () =
  let topo, cost, _, _, k, samples = fixed_instance 14 in
  let eps = 0.45 and delta = 1e-3 in
  let r = plan_with_target topo cost samples ~k ~budget:2. ~eps ~delta in
  Alcotest.(check bool) "target attained" true r.Prospector.Robust_plan.attained;
  Alcotest.(check bool) "needed at least one escalation" true
    (r.Prospector.Robust_plan.escalations >= 1);
  let a = r.Prospector.Robust_plan.chosen in
  Alcotest.(check bool) "chosen budget above the starting rung" true
    (a.Prospector.Robust_plan.budget > 2.);
  Alcotest.(check bool) "chosen bound certifies the target" true
    (Prospector.Guarantee.meets a.Prospector.Robust_plan.guarantee ~eps ~delta);
  (* The ladder certifies each rung at delta / rungs so the adaptive
     choice stays valid at delta overall. *)
  Alcotest.(check (float 1e-15)) "per-rung delta"
    (delta /. 7.)
    a.Prospector.Robust_plan.guarantee.Prospector.Guarantee.delta

let test_unattainable_returns_best_attempt () =
  let topo, cost, _, _, k, samples = fixed_instance 15 in
  (* eps = 1e-4 demands certified accuracy >= 0.9999; the statistical
     slack alone (~0.25 at this window size) makes that impossible. *)
  let r = plan_with_target topo cost samples ~k ~budget:4. ~eps:1e-4 ~delta:1e-3 in
  Alcotest.(check bool) "not attained" false r.Prospector.Robust_plan.attained;
  Alcotest.(check int) "full ladder explored" 6
    r.Prospector.Robust_plan.escalations;
  let g = r.Prospector.Robust_plan.chosen.Prospector.Robust_plan.guarantee in
  (match Prospector.Guarantee.validate g with
  | Ok () -> ()
  | Error reason -> Alcotest.failf "best-attempt bound invalid: %s" reason);
  Alcotest.(check bool) "best attempt does not claim the target" false
    (Prospector.Guarantee.meets g ~eps:1e-4 ~delta:1e-3)

let test_ladder_rejects_bad_arguments () =
  let topo, cost, _, _, k, samples = fixed_instance 16 in
  let run ?max_escalations ?growth ~eps ~delta () =
    ignore
      (plan_with_target ?max_escalations ?growth topo cost samples ~k
         ~budget:4. ~eps ~delta)
  in
  Alcotest.check_raises "eps = 0"
    (Invalid_argument "Robust_plan.plan_with_guarantee: eps <= 0")
    (run ~eps:0. ~delta:0.1);
  Alcotest.check_raises "delta = 1"
    (Invalid_argument "Robust_plan.plan_with_guarantee: delta must be in (0, 1)")
    (run ~eps:0.5 ~delta:1.);
  Alcotest.check_raises "growth < 1"
    (Invalid_argument "Robust_plan.plan_with_guarantee: growth must be >= 1")
    (run ~growth:0.5 ~eps:0.5 ~delta:0.1);
  Alcotest.check_raises "negative max_escalations"
    (Invalid_argument "Robust_plan.plan_with_guarantee: negative max_escalations")
    (run ~max_escalations:(-1) ~eps:0.5 ~delta:0.1)

(* ---------- integration: Lp_lf and Replan ---------- *)

let test_lp_lf_guarantee_deterministic () =
  let topo, cost, _, _, k, samples = fixed_instance 17 in
  let once () =
    Prospector.Lp_lf.plan ~guarantee:(0.9, 1e-3) topo cost samples ~budget:15.
      ~k
  in
  let a = once () and b = once () in
  match (a.Prospector.Lp_lf.guarantee, b.Prospector.Lp_lf.guarantee) with
  | Some ga, Some gb ->
      Alcotest.(check bool) "two identical solves, identical bounds" true
        (Prospector.Guarantee.equal ga gb)
  | _ -> Alcotest.fail "?guarantee result without a bound"

let test_replan_refuses_unmet_target () =
  let topo, cost, _, _, k, samples = fixed_instance 18 in
  let empty = Prospector.Plan.make topo (Array.make topo.Sensor.Topology.n 0) in
  let state = Prospector.Replan.create ~initial:empty () in
  (* Without a target the upgrade from the empty plan is disseminated;
     under an impossible target the same candidate must be refused. *)
  (match
     Prospector.Replan.consider state ~guarantee:(1e-4, 1e-3) topo cost mica
       samples ~k ~budget:15.
   with
  | Prospector.Replan.Kept -> ()
  | Prospector.Replan.Disseminated _ ->
      Alcotest.fail "disseminated a plan whose target was not certified");
  Alcotest.(check int) "no replans recorded" 0 (Prospector.Replan.replans state)

(* ---------- telemetry ---------- *)

let test_guarantee_telemetry () =
  let topo, cost, _, plan, k, samples = fixed_instance 19 in
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    (fun () ->
      ignore (Prospector.Guarantee.compute topo cost plan ~k samples);
      Alcotest.(check int) "guarantee.computed counts" 1
        (Obs.Metrics.value (Obs.Metrics.counter "guarantee.computed"));
      Alcotest.(check int) "guarantee.eps observed" 1
        (Obs.Metrics.hist_count (Obs.Metrics.histogram "guarantee.eps"));
      ignore (plan_with_target topo cost samples ~k ~budget:4. ~eps:1e-4 ~delta:1e-3);
      Alcotest.(check int) "unattainable target counted" 1
        (Obs.Metrics.value
           (Obs.Metrics.counter "guarantee.target_unattainable")))

let () =
  Alcotest.run "guarantee"
    [
      ( "bound-violation sweep",
        [
          Alcotest.test_case "cross-seed adversarial sweep" `Quick test_sweep;
          Alcotest.test_case "exact oracle agreement" `Quick
            test_exact_oracle_agreement;
        ] );
      ( "metamorphic",
        [
          Alcotest.test_case "slack monotone in m" `Quick
            test_slack_monotone_in_m;
          Alcotest.test_case "slack monotone in delta" `Quick
            test_slack_monotone_in_delta;
          Alcotest.test_case "union slack monotone in k and candidates" `Quick
            test_union_monotone_in_k_and_candidates;
          Alcotest.test_case "edge cases" `Quick test_slack_edge_cases;
          Alcotest.test_case "compute is deterministic" `Quick
            test_compute_deterministic;
          Alcotest.test_case "window growth never loosens" `Quick
            test_window_growth_never_loosens;
        ] );
      ( "record",
        [
          Alcotest.test_case "meets and holds_against" `Quick
            test_meets_and_holds;
          Alcotest.test_case "validate rejects corruption" `Quick
            test_validate_rejects_corruption;
        ] );
      ( "escalation ladder",
        [
          Alcotest.test_case "budget monotone in target" `Quick
            test_budget_monotone_in_target;
          Alcotest.test_case "escalation reaches target" `Quick
            test_escalation_reaches_target;
          Alcotest.test_case "unattainable returns best attempt" `Quick
            test_unattainable_returns_best_attempt;
          Alcotest.test_case "argument validation" `Quick
            test_ladder_rejects_bad_arguments;
        ] );
      ( "integration",
        [
          Alcotest.test_case "lp_lf guarantee deterministic" `Quick
            test_lp_lf_guarantee_deterministic;
          Alcotest.test_case "replan refuses unmet target" `Quick
            test_replan_refuses_unmet_target;
          Alcotest.test_case "telemetry" `Quick test_guarantee_telemetry;
        ] );
    ]

(* Solver-failure injection at the planner level: every LP planner is run
   with a crippled solver budget and must still return a valid, executable
   plan with honest provenance — the certified fallback chain
   (revised -> certify -> dense -> certify -> greedy) at work.  Also covers
   the chain's middle stage (deadline starves only the revised solver, so
   the dense reference takes over) and {!Replan}'s rule that an uncertified
   candidate is never disseminated. *)

let mica = Sensor.Mica2.default

let random_tree rng n =
  let parent = Array.init n (fun i -> if i = 0 then -1 else Rng.int rng i) in
  Sensor.Topology.of_parents ~root:0 parent

let small_instance seed =
  let rng = Rng.create seed in
  let n = 4 + Rng.int rng 14 in
  let k = 1 + Rng.int rng 4 in
  let topo = random_tree rng n in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let f =
    Sampling.Field.random_gaussian rng ~n ~mean_lo:10. ~mean_hi:30.
      ~sigma_lo:0.5 ~sigma_hi:5.
  in
  let samples = Sampling.Sample_set.draw rng f ~k ~count:8 in
  (topo, cost, samples, k, rng)

let is_provenance = Alcotest.testable Prospector.Robust_plan.pp_provenance
    Prospector.Robust_plan.provenance_equal

(* A plan is executable when [Exec.collect] accepts it and answers within
   the query size on a fresh epoch. *)
let assert_executable name topo cost plan ~k rng =
  let n = topo.Sensor.Topology.n in
  let readings = Array.init n (fun _ -> Rng.gaussian rng ~mu:20. ~sigma:5.) in
  let o = Prospector.Exec.collect topo cost plan ~k ~readings in
  Alcotest.(check bool)
    (name ^ ": answer within k") true
    (List.length o.Prospector.Exec.returned <= k);
  Alcotest.(check bool)
    (name ^ ": collection cost finite") true
    (Float.is_finite o.Prospector.Exec.collection_mj)

(* ---- healthy solver: everything is certified-revised ---- *)

let test_healthy_provenance () =
  let topo, cost, samples, k, _ = small_instance 7 in
  let budget = 25. in
  let a = Prospector.Lp_no_lf.plan topo cost samples ~budget in
  Alcotest.check is_provenance "lp_no_lf" Prospector.Robust_plan.Certified_revised
    a.Prospector.Lp_no_lf.provenance;
  let b = Prospector.Lp_lf.plan topo cost samples ~budget ~k in
  Alcotest.check is_provenance "lp_lf" Prospector.Robust_plan.Certified_revised
    b.Prospector.Lp_lf.provenance;
  let c = Prospector.Lp_proof.plan topo cost samples ~budget:1e6 ~k in
  Alcotest.check is_provenance "lp_proof"
    Prospector.Robust_plan.Certified_revised c.Prospector.Lp_proof.provenance;
  let answers = Sampling.Answers.top_k ~k samples.Sampling.Sample_set.values in
  let d = Prospector.Subset_planner.plan topo cost answers ~budget in
  Alcotest.check is_provenance "subset"
    Prospector.Robust_plan.Certified_revised
    d.Prospector.Subset_planner.provenance

(* ---- crippled solver: every planner falls back, none crashes ---- *)

let test_crippled_planners_fall_back () =
  let topo, cost, samples, k, rng = small_instance 11 in
  let budget = 25. in
  let a =
    Prospector.Lp_no_lf.plan ~max_lp_iterations:0 topo cost samples ~budget
  in
  Alcotest.check is_provenance "lp_no_lf fell back"
    Prospector.Robust_plan.Fell_back_greedy a.Prospector.Lp_no_lf.provenance;
  assert_executable "lp_no_lf" topo cost a.Prospector.Lp_no_lf.plan ~k rng;
  let b =
    Prospector.Lp_lf.plan ~max_lp_iterations:0 topo cost samples ~budget ~k
  in
  Alcotest.check is_provenance "lp_lf fell back"
    Prospector.Robust_plan.Fell_back_greedy b.Prospector.Lp_lf.provenance;
  assert_executable "lp_lf" topo cost b.Prospector.Lp_lf.plan ~k rng;
  let c =
    Prospector.Lp_proof.plan ~max_lp_iterations:0 topo cost samples
      ~budget:1e6 ~k
  in
  Alcotest.check is_provenance "lp_proof fell back"
    Prospector.Robust_plan.Fell_back_greedy c.Prospector.Lp_proof.provenance;
  (* Proof fallback must still be a valid proof plan: bandwidth >= 1 on
     every edge. *)
  let root = topo.Sensor.Topology.root in
  for i = 0 to topo.Sensor.Topology.n - 1 do
    if i <> root then
      Alcotest.(check bool) "proof bandwidth >= 1" true
        (Prospector.Plan.bandwidth c.Prospector.Lp_proof.plan i >= 1)
  done;
  let answers = Sampling.Answers.top_k ~k samples.Sampling.Sample_set.values in
  let d =
    Prospector.Subset_planner.plan ~max_lp_iterations:0 topo cost answers
      ~budget
  in
  Alcotest.check is_provenance "subset fell back"
    Prospector.Robust_plan.Fell_back_greedy
    d.Prospector.Subset_planner.provenance;
  assert_executable "subset" topo cost d.Prospector.Subset_planner.plan ~k rng

let test_crippled_matches_greedy () =
  (* The LP-LF fallback is exactly the greedy plan: same selection, same
     bandwidths. *)
  let topo, cost, samples, k, _ = small_instance 13 in
  let budget = 20. in
  let g = Prospector.Greedy.plan topo cost samples ~budget in
  let r =
    Prospector.Lp_lf.plan ~max_lp_iterations:0 topo cost samples ~budget ~k
  in
  for i = 0 to topo.Sensor.Topology.n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "bandwidth at %d" i)
      (Prospector.Plan.bandwidth g i)
      (Prospector.Plan.bandwidth r.Prospector.Lp_lf.plan i)
  done

(* ---- middle stage: starve only the revised solver, dense takes over ---- *)

let test_dense_stage_takes_over () =
  let topo, cost, samples, k, _ = small_instance 17 in
  let budget = 25. in
  let healthy = Prospector.Lp_lf.plan topo cost samples ~budget ~k in
  (* An expired wall-clock deadline stops the revised solver before its
     first pivot; the dense reference has no deadline and finishes. *)
  let r = Prospector.Lp_lf.plan ~lp_deadline:0. topo cost samples ~budget ~k in
  Alcotest.check is_provenance "dense stage"
    Prospector.Robust_plan.Certified_dense r.Prospector.Lp_lf.provenance;
  (* Both stages solve the same LP to optimality. *)
  let scale = 1. +. Float.abs healthy.Prospector.Lp_lf.lp_objective in
  Alcotest.(check bool)
    (Printf.sprintf "same optimum (%.9g vs %.9g)"
       healthy.Prospector.Lp_lf.lp_objective r.Prospector.Lp_lf.lp_objective)
    true
    (Float.abs
       (healthy.Prospector.Lp_lf.lp_objective
       -. r.Prospector.Lp_lf.lp_objective)
     <= 1e-5 *. scale)

(* ---- Robust_plan.solve itself ---- *)

let test_robust_solve_outcomes () =
  let feasible () =
    let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
    let x = Lp.Model.add_var m ~upper:2. ~obj:1. "x" in
    Lp.Model.add_le m [ (1., x) ] 1.5;
    m
  in
  (match Prospector.Robust_plan.solve (feasible ()) with
  | Ok r ->
      Alcotest.check is_provenance "revised first"
        Prospector.Robust_plan.Certified_revised r.Prospector.Robust_plan.provenance;
      Alcotest.(check (float 1e-6)) "objective" 1.5
        r.Prospector.Robust_plan.solution.Lp.Model.objective
  | Error _ -> Alcotest.fail "expected a certified solution");
  (match Prospector.Robust_plan.solve ~max_iterations:0 (feasible ()) with
  | Error (Prospector.Robust_plan.No_certified_solution reasons) ->
      Alcotest.(check bool) "reasons recorded" true (reasons <> [])
  | Ok _ -> Alcotest.fail "crippled chain cannot certify"
  | Error _ -> Alcotest.fail "wrong failure");
  (match Prospector.Robust_plan.solve ~deadline:0. (feasible ()) with
  | Ok r ->
      Alcotest.check is_provenance "dense rescue"
        Prospector.Robust_plan.Certified_dense r.Prospector.Robust_plan.provenance
  | Error _ -> Alcotest.fail "dense stage should have rescued");
  let infeasible = Lp.Model.create () in
  let x = Lp.Model.add_var infeasible ~obj:1. "x" in
  Lp.Model.add_ge infeasible [ (1., x) ] 2.;
  Lp.Model.add_le infeasible [ (1., x) ] 1.;
  match Prospector.Robust_plan.solve infeasible with
  | Error (Prospector.Robust_plan.Proved_infeasible report) ->
      Alcotest.(check bool) "farkas certified" true
        report.Lp.Certify.certified
  | _ -> Alcotest.fail "expected a proved infeasibility"

(* ---- Replan: uncertified candidates are never disseminated ---- *)

let test_replan_never_ships_uncertified () =
  let topo, cost, samples, k, _ = small_instance 23 in
  let budget = 25. in
  let empty = Prospector.Plan.make topo (Array.make topo.Sensor.Topology.n 0) in
  (* Sanity: with a healthy solver and a hopeless incumbent the candidate
     is disseminated. *)
  let rp = Prospector.Replan.create ~min_gain:0.01 ~initial:empty () in
  (match Prospector.Replan.consider rp topo cost mica samples ~k ~budget with
  | Prospector.Replan.Disseminated _ -> ()
  | Prospector.Replan.Kept ->
      Alcotest.fail "healthy candidate should be disseminated");
  Alcotest.(check int) "one replan" 1 (Prospector.Replan.replans rp);
  (* Same setup, crippled solver: the greedy fallback may be a fine plan,
     but it is uncertified — never disseminated. *)
  let rp = Prospector.Replan.create ~min_gain:0.01 ~initial:empty () in
  (match
     Prospector.Replan.consider ~max_lp_iterations:0 rp topo cost mica samples
       ~k ~budget
   with
  | Prospector.Replan.Kept -> ()
  | Prospector.Replan.Disseminated _ ->
      Alcotest.fail "uncertified candidate must not be disseminated");
  Alcotest.(check int) "no replans" 0 (Prospector.Replan.replans rp);
  (* The warm-start token from a certified solve survives a crippled
     epoch: the next healthy consider still disseminates. *)
  let rp = Prospector.Replan.create ~min_gain:0.01 ~initial:empty () in
  ignore (Prospector.Replan.consider rp topo cost mica samples ~k ~budget);
  (match
     Prospector.Replan.consider ~max_lp_iterations:0 rp topo cost mica samples
       ~k ~budget
   with
  | Prospector.Replan.Kept -> ()
  | Prospector.Replan.Disseminated _ -> Alcotest.fail "crippled epoch shipped");
  let rp2 = Prospector.Replan.create ~min_gain:0.01 ~initial:empty () in
  match Prospector.Replan.consider rp2 topo cost mica samples ~k ~budget with
  | Prospector.Replan.Disseminated _ -> ()
  | Prospector.Replan.Kept -> Alcotest.fail "healthy epoch after crippled one"

(* ---- randomized sweep: no budget, however hostile, crashes a planner ---- *)

let crippled_sweep =
  QCheck.Test.make ~name:"planners never crash under any solver budget"
    ~count:40
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let topo, cost, samples, k, rng = small_instance seed in
      let budget = Rng.float rng 40. in
      let iters = Rng.int rng 8 in
      let a =
        Prospector.Lp_no_lf.plan ~max_lp_iterations:iters topo cost samples
          ~budget
      in
      let b =
        Prospector.Lp_lf.plan ~max_lp_iterations:iters topo cost samples
          ~budget ~k
      in
      (* Whatever the provenance, the plans execute. *)
      let readings =
        Array.init topo.Sensor.Topology.n (fun _ ->
            Rng.gaussian rng ~mu:20. ~sigma:5.)
      in
      let oa =
        Prospector.Exec.collect topo cost a.Prospector.Lp_no_lf.plan ~k
          ~readings
      in
      let ob =
        Prospector.Exec.collect topo cost b.Prospector.Lp_lf.plan ~k ~readings
      in
      List.length oa.Prospector.Exec.returned <= k
      && List.length ob.Prospector.Exec.returned <= k)

let () =
  Alcotest.run "robust-plan"
    [
      ( "fallback-chain",
        [
          Alcotest.test_case "healthy provenance" `Quick
            test_healthy_provenance;
          Alcotest.test_case "crippled planners fall back" `Quick
            test_crippled_planners_fall_back;
          Alcotest.test_case "fallback matches greedy" `Quick
            test_crippled_matches_greedy;
          Alcotest.test_case "dense stage takes over" `Quick
            test_dense_stage_takes_over;
          Alcotest.test_case "robust solve outcomes" `Quick
            test_robust_solve_outcomes;
          Alcotest.test_case "replan never ships uncertified" `Quick
            test_replan_never_ships_uncertified;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ crippled_sweep ] );
    ]

(* Tests for the extension modules: generalized subset planning/execution,
   the plan re-calculation policy, and the lifetime model. *)

let check_float = Alcotest.(check (float 1e-6))

let mica = Sensor.Mica2.default

let chain n = Sensor.Topology.of_parents ~root:0 (Array.init n (fun i -> i - 1))

let random_tree rng n =
  let parent = Array.init n (fun i -> if i = 0 then -1 else Rng.int rng i) in
  Sensor.Topology.of_parents ~root:0 parent

(* ---------- Subset_exec ---------- *)

let test_subset_exec_ships_exactly_chosen () =
  let topo = chain 4 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let chosen = [| false; false; true; true |] in
  let readings = [| 10.; 1.; 2.; 3. |] in
  let o = Prospector.Subset_exec.collect topo cost ~chosen ~readings in
  ignore Prospector.Exec.value_order;
  Alcotest.(check (list int)) "root + chosen" [ 0; 2; 3 ]
    (List.sort compare (List.map fst o.Prospector.Subset_exec.received));
  (* Node 3 sends 1 value, node 2 sends 2, node 1 relays 2. *)
  Alcotest.(check int) "values" 5 o.Prospector.Subset_exec.values_sent;
  Alcotest.(check int) "messages" 3 o.Prospector.Subset_exec.messages;
  check_float "energy"
    (Sensor.Cost.message_mj cost ~node:3 ~values:1
    +. Sensor.Cost.message_mj cost ~node:2 ~values:2
    +. Sensor.Cost.message_mj cost ~node:1 ~values:2)
    o.Prospector.Subset_exec.collection_mj

let test_subset_exec_no_filtering () =
  (* Unlike the top-k executor, small chosen values survive relays with
     larger readings of their own. *)
  let topo = chain 3 in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let chosen = [| false; false; true |] in
  let readings = [| 0.; 99.; 1. |] in
  let o = Prospector.Subset_exec.collect topo cost ~chosen ~readings in
  Alcotest.(check bool) "small value delivered" true
    (List.mem (2, 1.) o.Prospector.Subset_exec.received)

let test_subset_recall () =
  let received = [ (1, 5.); (2, 3.) ] in
  check_float "half" 0.5 (Prospector.Subset_exec.recall ~truth:[| 1; 7 |] received);
  check_float "empty truth" 1. (Prospector.Subset_exec.recall ~truth:[||] received)

let test_quantile_estimate () =
  let received = [ (0, 1.); (1, 2.); (2, 3.); (3, 4.) ] in
  (match Prospector.Subset_exec.quantile_estimate ~phi:0.5 received with
  | Some v -> check_float "median interpolated" 2.5 v
  | None -> Alcotest.fail "expected estimate");
  Alcotest.(check bool) "empty gives none" true
    (Prospector.Subset_exec.quantile_estimate ~phi:0.5 [] = None)

(* With enough budget the subset planner covers every answer entry and
   execution achieves full recall on the training samples. *)
let subset_planner_full_budget_recall =
  QCheck.Test.make ~name:"subset planner: full budget gives full recall"
    ~count:100
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 41) in
      let n = 3 + Rng.int rng 25 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let values =
        Array.init (1 + Rng.int rng 8) (fun _ ->
            Array.init n (fun _ -> Rng.gaussian rng ~mu:20. ~sigma:4.))
      in
      let answers = Sampling.Answers.selection ~threshold:20. values in
      let r = Prospector.Subset_planner.plan topo cost answers ~budget:1e9 in
      Array.for_all
        (fun readings ->
          let o =
            Prospector.Subset_exec.collect topo cost ~chosen:r.Prospector.Subset_planner.chosen
              ~readings
          in
          let truth = ref [] in
          Array.iteri (fun i v -> if v > 20. then truth := i :: !truth) readings;
          Prospector.Subset_exec.recall ~truth:(Array.of_list !truth)
            o.Prospector.Subset_exec.received
          >= 1. -. 1e-9)
        values)

let subset_planner_budget_grows_recall =
  QCheck.Test.make ~name:"subset planner: recall grows with budget" ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 42) in
      let n = 5 + Rng.int rng 25 in
      let topo = random_tree rng n in
      let cost = Sensor.Cost.of_mica2 topo mica in
      let values =
        Array.init 6 (fun _ ->
            Array.init n (fun _ -> Rng.gaussian rng ~mu:20. ~sigma:4.))
      in
      let answers = Sampling.Answers.selection ~threshold:22. values in
      let objective budget =
        (Prospector.Subset_planner.plan topo cost answers ~budget).Prospector.Subset_planner
          .lp_objective
      in
      let b = 2. +. Rng.float rng 20. in
      objective (b +. 10.) >= objective b -. 1e-6)

(* ---------- Replan ---------- *)

let replan_setup seed =
  let rng = Rng.create seed in
  let n = 25 in
  let topo = random_tree rng n in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let field =
    Sampling.Field.random_gaussian rng ~n ~mean_lo:18. ~mean_hi:26.
      ~sigma_lo:1. ~sigma_hi:3.
  in
  let samples = Sampling.Sample_set.draw rng field ~k:4 ~count:10 in
  (topo, cost, samples)

let test_replan_keeps_equal_plan () =
  let topo, cost, samples = replan_setup 1 in
  let budget = 25. in
  let good = (Prospector.Lp_lf.plan topo cost samples ~budget ~k:4).Prospector.Lp_lf.plan in
  let state = Prospector.Replan.create ~initial:good () in
  (* Re-considering against the same samples finds no better plan. *)
  match Prospector.Replan.consider state topo cost mica samples ~k:4 ~budget with
  | Prospector.Replan.Kept -> Alcotest.(check int) "no replans" 0 (Prospector.Replan.replans state)
  | Prospector.Replan.Disseminated _ -> Alcotest.fail "should have kept the plan"

let test_replan_upgrades_empty_plan () =
  let topo, cost, samples = replan_setup 2 in
  let budget = 25. in
  let empty = Prospector.Plan.make topo (Array.make topo.Sensor.Topology.n 0) in
  let state = Prospector.Replan.create ~initial:empty () in
  match Prospector.Replan.consider state topo cost mica samples ~k:4 ~budget with
  | Prospector.Replan.Disseminated { plan; guarantee } ->
      Alcotest.(check int) "one replan" 1 (Prospector.Replan.replans state);
      Alcotest.(check bool) "plan not empty" true (Prospector.Plan.total_bandwidth plan > 0);
      Alcotest.(check bool) "current updated" true
        (Prospector.Replan.current state == plan);
      (* Every disseminated plan carries a machine-checkable bound. *)
      (match guarantee with
      | None -> Alcotest.fail "disseminated plan carries no guarantee"
      | Some g ->
          (match Prospector.Guarantee.validate g with
          | Ok () -> ()
          | Error reason -> Alcotest.fail ("invalid guarantee: " ^ reason)))
  | Prospector.Replan.Kept -> Alcotest.fail "should have disseminated"

let test_replan_force () =
  let topo, cost, samples = replan_setup 3 in
  let a = Prospector.Plan.make topo (Array.make topo.Sensor.Topology.n 0) in
  let b = Prospector.Proof_exec.min_bandwidth_plan topo in
  let state = Prospector.Replan.create ~initial:a () in
  let g = Prospector.Replan.force state topo cost b ~k:4 samples in
  Alcotest.(check int) "counted" 1 (Prospector.Replan.replans state);
  Alcotest.(check bool) "installed" true (Prospector.Replan.current state == b);
  (* Forced installs are disseminations too: they must carry the same
     machine-checkable default-confidence bound [consider] attaches. *)
  (match Prospector.Guarantee.validate g with
  | Ok () -> ()
  | Error reason -> Alcotest.fail ("forced install bound invalid: " ^ reason));
  Alcotest.(check (float 0.)) "no LP certificate folded in" 0.
    g.Prospector.Guarantee.lp_eps

let test_expected_accuracy_bounds () =
  let topo, cost, samples = replan_setup 4 in
  let full =
    Prospector.Plan.make topo
      (Array.mapi
         (fun i size -> if i = 0 then 0 else Int.min size 4)
         topo.Sensor.Topology.subtree_size)
  in
  check_float "full plan is perfect on samples" 1.
    (Prospector.Replan.expected_accuracy topo cost full ~k:4 samples);
  let empty = Prospector.Plan.make topo (Array.make topo.Sensor.Topology.n 0) in
  Alcotest.(check bool) "empty plan is poor" true
    (Prospector.Replan.expected_accuracy topo cost empty ~k:4 samples < 0.5)

(* ---------- Lifetime ---------- *)

let test_lifetime_profile () =
  let lt = Prospector.Lifetime.of_profile ~battery_j:10. [| 0.; 2.; 5.; 1. |] in
  Alcotest.(check int) "bottleneck" 2 lt.Prospector.Lifetime.bottleneck;
  check_float "runs" 2000. lt.Prospector.Lifetime.runs;
  check_float "worst" 5. lt.Prospector.Lifetime.bottleneck_mj_per_run;
  check_float "mean" 2. lt.Prospector.Lifetime.mean_mj_per_run

let test_lifetime_rejects_idle_network () =
  Alcotest.check_raises "all idle"
    (Invalid_argument "Lifetime.of_profile: no node consumes energy")
    (fun () -> ignore (Prospector.Lifetime.of_profile ~battery_j:10. [| 0.; 0. |]))

let lifetime_bottleneck_near_root =
  QCheck.Test.make
    ~name:"full-collection bottleneck is an internal node" ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rng = Rng.create (seed + 43) in
      let n = 5 + Rng.int rng 30 in
      let topo = random_tree rng n in
      let readings = Array.init n (fun _ -> Rng.gaussian rng ~mu:20. ~sigma:3.) in
      let plan =
        Prospector.Plan.make topo
          (Array.mapi
             (fun i size -> if i = 0 then 0 else Int.min size 5)
             topo.Sensor.Topology.subtree_size)
      in
      let lt = Prospector.Lifetime.of_plan topo mica plan ~k:5 ~readings ~battery_j:100. in
      (* The heaviest drain is never at a leaf: every internal node both
         receives its children's traffic and forwards more values than
         any single leaf sends. *)
      Array.length topo.Sensor.Topology.children.(lt.Prospector.Lifetime.bottleneck)
      > 0)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      subset_planner_full_budget_recall;
      subset_planner_budget_grows_recall;
      lifetime_bottleneck_near_root;
    ]

let () =
  Alcotest.run "extensions"
    [
      ( "subset",
        [
          Alcotest.test_case "ships exactly the chosen" `Quick
            test_subset_exec_ships_exactly_chosen;
          Alcotest.test_case "no local filtering" `Quick test_subset_exec_no_filtering;
          Alcotest.test_case "recall" `Quick test_subset_recall;
          Alcotest.test_case "quantile estimate" `Quick test_quantile_estimate;
        ] );
      ( "replan",
        [
          Alcotest.test_case "keeps an equal plan" `Quick test_replan_keeps_equal_plan;
          Alcotest.test_case "upgrades an empty plan" `Quick test_replan_upgrades_empty_plan;
          Alcotest.test_case "force install" `Quick test_replan_force;
          Alcotest.test_case "expected accuracy" `Quick test_expected_accuracy_bounds;
        ] );
      ( "lifetime",
        [
          Alcotest.test_case "profile arithmetic" `Quick test_lifetime_profile;
          Alcotest.test_case "idle network rejected" `Quick test_lifetime_rejects_idle_network;
        ] );
      ("properties", qcheck_cases);
    ]

(* Chaos campaign for the self-healing layer (Repair): CHURN_SEEDS seeds
   (default 100, shifted by CHURN_SEED_OFFSET so CI can rotate the seed
   window) x three churn schedules:

   - permanent-crash: a participating node dies mid-campaign and never
     comes back;
   - crash-restart: the same, but the node recovers a few epochs later,
     so the controller must also detect the restoration and hand the
     recovered capacity back to the planner;
   - burst-bernoulli-crash: the crash rides on top of recoverable frame
     loss (Bernoulli drops opening burst windows), so detection has to
     see through ARQ noise.

   Each trial drives a Repair controller one epoch at a time: the
   installed plan is executed on the simulated network under that
   epoch's fault model, a full-coverage probe sweep supplies liveness
   evidence for subtrees the repaired plan no longer routes through,
   and the merged dark set feeds Repair.observe.  The recovery
   invariants asserted per trial:

   - no hang: every epoch's simulation terminates (the engine's event
     cap would raise otherwise);
   - repaired plans certified: every installed repair has LP provenance
     (never the greedy fallback) and a validated Guarantee.t that
     round-trips through JSON;
   - honest degraded floors: the final installed bound is checked
     against a fresh holdout, with the holdout's own Hoeffding slack,
     exactly like the PR-7 guarantee sweep;
   - energy-to-recover bounded: each repair's delta install covers at
     most the union of old and new participants, and the campaign total
     stays under one full install per repair;
   - determinism: the entire campaign, re-run from the same seed, makes
     bit-identical decisions (plans, bounds, dark sets, energies).

   When CHURN_SUMMARY is set the campaign writes a JSON artifact with
   per-schedule tallies for CI. *)

let mica = Sensor.Mica2.default

let random_tree rng n =
  let parent = Array.init n (fun i -> if i = 0 then -1 else Rng.int rng i) in
  Sensor.Topology.of_parents ~root:0 parent

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let n_seeds = env_int "CHURN_SEEDS" 100
let seed_offset = env_int "CHURN_SEED_OFFSET" 0

(* Campaign shape: the victim crashes at [down_epoch]; in the restart
   schedule it recovers at [up_epoch].  With confirm_after = 2 the crash
   is confirmed (and repaired) at down_epoch + 1, leaving the restart
   schedule enough post-recovery epochs to clear and re-repair. *)
let epochs = 10
let down_epoch = 2
let up_epoch = 6
let confirm_after = 2
let clear_after = 2

(* Degraded-bound failure budget per repair.  1e-4 keeps the certified
   floors informative on an 80-sample certification slice while the
   union failure probability over the whole campaign (<= ~1200 repairs)
   stays ~0.1 in the worst case the bounds allow — and far lower for
   the concentrated accuracy distributions actually produced. *)
let repair_delta = 1e-4
let window = 160

let holdout_epochs = 300
let holdout_delta = 1e-9

let holdout_slack =
  Prospector.Guarantee.hoeffding_slack ~m:holdout_epochs ~delta:holdout_delta

type schedule = Permanent | Restart | Burst_bernoulli

let schedules =
  [
    ("permanent-crash", Permanent);
    ("crash-restart", Restart);
    ("burst-bernoulli-crash", Burst_bernoulli);
  ]

(* The fault model one epoch of the campaign runs under.  Simnet clocks
   restart at 0 on every collection, so a multi-epoch crash schedule is
   realized per epoch: the victim is simply unreachable for the whole
   epoch while down. *)
let epoch_fault schedule ~n ~victim ~epoch =
  let base =
    match schedule with
    | Permanent | Restart -> Simnet.Fault.none ~n
    | Burst_bernoulli ->
        Simnet.Fault.with_burst
          (Simnet.Fault.bernoulli ~n ~drop:0.03)
          ~mean_length:0.02
  in
  let down =
    match schedule with
    | Permanent | Burst_bernoulli -> epoch >= down_epoch
    | Restart -> epoch >= down_epoch && epoch < up_epoch
  in
  if down then Simnet.Fault.with_crashes base [ (victim, 0., infinity) ]
  else base

let full_plan topo ~k =
  Prospector.Plan.make topo
    (Array.mapi
       (fun i size -> if i = topo.Sensor.Topology.root then 0 else Int.min size k)
       topo.Sensor.Topology.subtree_size)

(* The deepest-impact victim: the non-root participant with the largest
   subtree (earliest id on ties), so surgery actually has coverage to
   reassign.  The budget doubles until the initial plan has one. *)
let pick_victim topo plan =
  List.fold_left
    (fun best i ->
      if i = topo.Sensor.Topology.root then best
      else
        match best with
        | None -> Some i
        | Some b ->
            if
              topo.Sensor.Topology.subtree_size.(i)
              > topo.Sensor.Topology.subtree_size.(b)
            then Some i
            else best)
    None
    (Prospector.Plan.participants topo plan)

let check_guarantee ctx g =
  (match Prospector.Guarantee.validate g with
  | Ok () -> ()
  | Error reason -> Alcotest.fail (ctx ^ ": invalid guarantee: " ^ reason));
  match Prospector.Guarantee.of_json (Prospector.Guarantee.to_json g) with
  | Some g' when Prospector.Guarantee.equal g g' -> ()
  | Some _ -> Alcotest.fail (ctx ^ ": guarantee JSON round-trip changed")
  | None -> Alcotest.fail (ctx ^ ": guarantee JSON did not parse back")

(* Everything a campaign decides, minus wall-clock measurements — the
   determinism check compares two runs of this record. *)
type campaign = {
  final_bandwidth : int list;
  final_dead : int list;
  final_guarantee : Prospector.Guarantee.t option;
  repairs : int;
  refusals : int;
  recovery_mj : float;
  first_repair_epoch : int option;
  per_epoch_dark : int list list;
  install_old_plus_new : float;  (** bound for the recovery energy *)
  probe_mj : float;
}

let run_campaign ~schedule ~seed ~topo ~cost ~k ~budget ~train ~field ~victim
    ~initial =
  let n = topo.Sensor.Topology.n in
  let ctrl =
    Prospector.Repair.create ~confirm_after ~clear_after ~delta:repair_delta
      topo cost mica ~initial ~k ~budget ()
  in
  let probe = full_plan topo ~k in
  let epoch_rng = Rng.create ((seed * 97) + 0x29a) in
  let readings_per_epoch =
    Array.init epochs (fun _ -> field.Sampling.Field.draw epoch_rng)
  in
  let first_repair = ref None in
  let dark_log = ref [] in
  let probe_mj = ref 0. in
  let install_bound = ref 0. in
  for e = 0 to epochs - 1 do
    let fault = epoch_fault schedule ~n ~victim ~epoch:e in
    let installed = Prospector.Repair.plan ctrl in
    let run =
      Prospector.Simnet_exec.collect topo mica
        ~fault:(fault, Rng.create ((seed * 31) + (2 * e)))
        installed ~k ~readings:readings_per_epoch.(e)
    in
    (* The executor's give-up bookkeeping must agree with the engine's
       counter: one frame per directed link per collection. *)
    Alcotest.(check int)
      "give-up events match the engine counter"
      run.Prospector.Simnet_exec.gave_up_frames
      (List.length run.Prospector.Simnet_exec.give_ups);
    (* A repaired plan no longer routes through confirmed-dead subtrees,
       so the data collection alone cannot witness a restoration.  The
       probe sweep covers every node each epoch (a periodic liveness
       scan; its energy is accounted separately below). *)
    let sweep =
      Prospector.Simnet_exec.collect topo mica
        ~fault:(fault, Rng.create ((seed * 31) + (2 * e) + 1))
        probe ~k ~readings:readings_per_epoch.(e)
    in
    probe_mj := !probe_mj +. sweep.Prospector.Simnet_exec.total_mj;
    let dark =
      List.sort_uniq Int.compare
        (run.Prospector.Simnet_exec.dark @ sweep.Prospector.Simnet_exec.dark)
    in
    dark_log := dark :: !dark_log;
    (match Prospector.Repair.observe ctrl train ~dark with
    | Prospector.Repair.Unnecessary -> ()
    | Prospector.Repair.Repaired r ->
        if !first_repair = None then first_repair := Some e;
        check_guarantee "installed repair" r.Prospector.Repair.guarantee;
        Alcotest.(check bool)
          "repairs carry LP provenance" true
          (r.Prospector.Repair.provenance <> Prospector.Robust_plan.Fell_back_greedy);
        let bound =
          Prospector.Plan.install_mj topo mica installed
          +. Prospector.Plan.install_mj topo mica r.Prospector.Repair.plan
        in
        install_bound := !install_bound +. bound;
        Alcotest.(check bool)
          "delta install covers only old+new participants" true
          (r.Prospector.Repair.delta_install_mj <= bound +. 1e-9);
        (* The changed list is exactly the bandwidth diff. *)
        List.iter
          (fun i ->
            Alcotest.(check bool)
              "changed node really changed" true
              (Prospector.Plan.bandwidth installed i
              <> Prospector.Plan.bandwidth r.Prospector.Repair.plan i))
          r.Prospector.Repair.changed;
        for i = 0 to n - 1 do
          if not (List.mem i r.Prospector.Repair.changed) then
            Alcotest.(check int)
              "unchanged node untouched"
              (Prospector.Plan.bandwidth installed i)
              (Prospector.Plan.bandwidth r.Prospector.Repair.plan i)
        done
    | Prospector.Repair.Refused { attempt; _ } ->
        Option.iter
          (fun a -> check_guarantee "refused attempt" a.Prospector.Repair.guarantee)
          attempt)
  done;
  {
    final_bandwidth =
      List.init n (Prospector.Plan.bandwidth (Prospector.Repair.plan ctrl));
    final_dead = Prospector.Repair.dead ctrl;
    final_guarantee = Prospector.Repair.guarantee ctrl;
    repairs = Prospector.Repair.repairs ctrl;
    refusals = Prospector.Repair.refusals ctrl;
    recovery_mj = Prospector.Repair.repair_energy_mj ctrl;
    first_repair_epoch = !first_repair;
    per_epoch_dark = List.rev !dark_log;
    install_old_plus_new = !install_bound;
    probe_mj = !probe_mj;
  }

type sched_stats = {
  s_name : string;
  mutable trials : int;
  mutable repairs_total : int;
  mutable refusals_total : int;
  mutable violations : int;
  mutable informative : int;
  mutable sum_detect : float;
  mutable detect_n : int;
  mutable sum_recovery_mj : float;
  mutable sum_full_install_mj : float;
}

let run_trial stats ~sched_ix ~schedule seed =
  let rng = Rng.create ((seed * 8) + sched_ix + 0x8c1) in
  let n = 10 + Rng.int rng 9 in
  let k = 1 + Rng.int rng 3 in
  let topo = random_tree rng n in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let field =
    Sampling.Field.random_gaussian rng ~n ~mean_lo:18. ~mean_hi:26. ~sigma_lo:1.
      ~sigma_hi:3.
  in
  let train = Sampling.Sample_set.draw rng field ~k ~count:window in
  (* Grow the budget until the initial plan has a non-root participant to
     kill; comfortable budgets also keep the degraded floors informative. *)
  let rec initial_plan budget tries =
    let r = Prospector.Lp_lf.plan topo cost train ~budget ~k in
    match pick_victim topo r.Prospector.Lp_lf.plan with
    | Some v -> (r.Prospector.Lp_lf.plan, v, budget)
    | None ->
        if tries >= 6 then
          Alcotest.fail "no participating victim even at a huge budget"
        else initial_plan (budget *. 2.) (tries + 1)
  in
  let initial, victim, budget = initial_plan (15. +. Rng.float rng 15.) 0 in
  let run () =
    run_campaign ~schedule ~seed ~topo ~cost ~k ~budget ~train ~field ~victim
      ~initial
  in
  let c = run () in
  (* Bit-determinism: the same seed re-runs to the same campaign. *)
  let c' = run () in
  Alcotest.(check (list int)) "deterministic final plan" c.final_bandwidth c'.final_bandwidth;
  Alcotest.(check int) "deterministic repair count" c.repairs c'.repairs;
  Alcotest.(check int) "deterministic refusals" c.refusals c'.refusals;
  Alcotest.(check (list (list int))) "deterministic dark sets" c.per_epoch_dark c'.per_epoch_dark;
  Alcotest.(check (float 0.)) "deterministic recovery energy" c.recovery_mj c'.recovery_mj;
  Alcotest.(check bool)
    "deterministic degraded bound" true
    (match (c.final_guarantee, c'.final_guarantee) with
    | Some a, Some b -> Prospector.Guarantee.equal a b
    | None, None -> true
    | _ -> false);
  (* Recovery invariants. *)
  Alcotest.(check bool) "crash repaired at least once" true (c.repairs >= 1);
  (match schedule with
  | Restart ->
      Alcotest.(check bool)
        "restoration repaired too" true (c.repairs >= 2);
      Alcotest.(check (list int)) "restored: nobody confirmed dead" [] c.final_dead
  | Permanent | Burst_bernoulli ->
      Alcotest.(check bool)
        "victim stays confirmed dead" true
        (List.mem victim c.final_dead);
      Alcotest.(check int)
        "victim excluded from the repaired plan" 0
        (List.nth c.final_bandwidth victim));
  Alcotest.(check bool)
    "recovery energy bounded" true
    (c.recovery_mj <= c.install_old_plus_new +. 1e-9);
  (* Detection latency: the crash at down_epoch is dark from that epoch
     on, so hysteresis confirms (and surgery lands) one epoch later. *)
  (match c.first_repair_epoch with
  | None -> Alcotest.fail "no repair recorded"
  | Some e ->
      Alcotest.(check bool)
        "detection latency = hysteresis window" true
        (e = down_epoch + confirm_after - 1);
      stats.sum_detect <- stats.sum_detect +. float_of_int (e - down_epoch);
      stats.detect_n <- stats.detect_n + 1);
  (* Honest degraded floor: the installed bound survives a fresh holdout
     (the same discipline as the PR-7 guarantee sweep). *)
  let g =
    match c.final_guarantee with
    | Some g -> g
    | None -> Alcotest.fail "campaign ended without an installed bound"
  in
  let final_plan = Prospector.Plan.make topo (Array.of_list c.final_bandwidth) in
  let hrng = Rng.create ((seed * 13) + sched_ix + 0x77) in
  let acc = ref 0. in
  for _ = 1 to holdout_epochs do
    let readings = field.Sampling.Field.draw hrng in
    let o = Prospector.Exec.collect topo cost final_plan ~k ~readings in
    acc := !acc +. Prospector.Exec.accuracy ~k ~readings o.Prospector.Exec.returned
  done;
  let true_acc = !acc /. float_of_int holdout_epochs in
  if
    not
      (Prospector.Guarantee.holds_against g
         ~observed_accuracy:(true_acc +. holdout_slack))
  then stats.violations <- stats.violations + 1;
  if g.Prospector.Guarantee.certified_lower > 0. then
    stats.informative <- stats.informative + 1;
  stats.trials <- stats.trials + 1;
  stats.repairs_total <- stats.repairs_total + c.repairs;
  stats.refusals_total <- stats.refusals_total + c.refusals;
  stats.sum_recovery_mj <- stats.sum_recovery_mj +. c.recovery_mj;
  stats.sum_full_install_mj <-
    stats.sum_full_install_mj +. Prospector.Plan.install_mj topo mica final_plan

let run_schedule sched_ix (name, schedule) =
  let stats =
    {
      s_name = name;
      trials = 0;
      repairs_total = 0;
      refusals_total = 0;
      violations = 0;
      informative = 0;
      sum_detect = 0.;
      detect_n = 0;
      sum_recovery_mj = 0.;
      sum_full_install_mj = 0.;
    }
  in
  for i = 0 to n_seeds - 1 do
    run_trial stats ~sched_ix ~schedule (seed_offset + i)
  done;
  stats

let summary_json stats =
  let mean total count = if count = 0 then 0. else total /. float_of_int count in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str "churn-sweep/1");
      ("seeds", Obs.Json.Num (float_of_int n_seeds));
      ("seed_offset", Obs.Json.Num (float_of_int seed_offset));
      ("epochs", Obs.Json.Num (float_of_int epochs));
      ("repair_delta", Obs.Json.Num repair_delta);
      ( "holdout",
        Obs.Json.Obj
          [
            ("epochs", Obs.Json.Num (float_of_int holdout_epochs));
            ("delta", Obs.Json.Num holdout_delta);
            ("slack", Obs.Json.Num holdout_slack);
          ] );
      ( "schedules",
        Obs.Json.List
          (List.map
             (fun s ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.Str s.s_name);
                   ("trials", Obs.Json.Num (float_of_int s.trials));
                   ("repairs", Obs.Json.Num (float_of_int s.repairs_total));
                   ("refusals", Obs.Json.Num (float_of_int s.refusals_total));
                   ("violations", Obs.Json.Num (float_of_int s.violations));
                   ("informative", Obs.Json.Num (float_of_int s.informative));
                   ( "mean_detection_epochs",
                     Obs.Json.Num (mean s.sum_detect s.detect_n) );
                   ( "mean_recovery_mj",
                     Obs.Json.Num (mean s.sum_recovery_mj s.trials) );
                   ( "mean_full_install_mj",
                     Obs.Json.Num (mean s.sum_full_install_mj s.trials) );
                 ])
             stats) );
    ]

let write_summary stats =
  match Sys.getenv_opt "CHURN_SUMMARY" with
  | None | Some "" -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Obs.Json.to_string_pretty (summary_json stats));
      close_out oc

let test_campaign () =
  let stats = List.mapi run_schedule schedules in
  (* Write the artifact before asserting so a red run still uploads its
     evidence. *)
  write_summary stats;
  List.iter
    (fun s ->
      Alcotest.(check int) (s.s_name ^ ": full seed count") n_seeds s.trials;
      Alcotest.(check int)
        (s.s_name ^ ": zero degraded-floor violations")
        0 s.violations)
    stats;
  (* Vacuity guard: a floor of 0 can never be violated, so a meaningful
     fraction of the degraded bounds must be informative. *)
  let informative = List.fold_left (fun a s -> a + s.informative) 0 stats in
  let trials = List.fold_left (fun a s -> a + s.trials) 0 stats in
  Alcotest.(check bool)
    "enough informative degraded floors" true
    (float_of_int informative >= 0.2 *. float_of_int trials)

(* ---------- unit tests around the campaign ---------- *)

let unit_setup seed =
  let rng = Rng.create seed in
  let n = 12 in
  let topo = random_tree rng n in
  let cost = Sensor.Cost.of_mica2 topo mica in
  let field =
    Sampling.Field.random_gaussian rng ~n ~mean_lo:18. ~mean_hi:26. ~sigma_lo:1.
      ~sigma_hi:3.
  in
  let train = Sampling.Sample_set.draw rng field ~k:2 ~count:window in
  (topo, cost, train)

let test_health_hysteresis () =
  let h = Prospector.Repair.Health.create ~confirm_after:2 ~clear_after:2 ~n:4 () in
  (* One dark epoch is not a confirmation... *)
  Prospector.Repair.Health.observe h ~dark:[ 2 ];
  Alcotest.(check (list int)) "transient not confirmed" []
    (Prospector.Repair.Health.confirmed_dead h);
  (* ...two consecutive ones are. *)
  Prospector.Repair.Health.observe h ~dark:[ 2 ];
  Alcotest.(check (list int)) "confirmed after streak" [ 2 ]
    (Prospector.Repair.Health.confirmed_dead h);
  (* A dark epoch elsewhere resets nothing for node 2... *)
  Prospector.Repair.Health.observe h ~dark:[ 2; 3 ];
  Alcotest.(check bool) "still confirmed" true
    (Prospector.Repair.Health.is_confirmed h 2);
  (* ...and clearing takes clear_after consecutive alive epochs. *)
  Prospector.Repair.Health.observe h ~dark:[];
  Alcotest.(check bool) "one alive epoch does not clear" true
    (Prospector.Repair.Health.is_confirmed h 2);
  Prospector.Repair.Health.observe h ~dark:[];
  Alcotest.(check (list int)) "cleared after streak" []
    (Prospector.Repair.Health.confirmed_dead h);
  Alcotest.(check int) "epochs counted" 5 (Prospector.Repair.Health.epochs h)

let test_health_unprobed_freezes () =
  let h = Prospector.Repair.Health.create ~confirm_after:2 ~clear_after:1 ~n:3 () in
  Prospector.Repair.Health.observe h ~dark:[ 1 ];
  Prospector.Repair.Health.observe h ~dark:[ 1 ];
  Alcotest.(check bool) "confirmed" true (Prospector.Repair.Health.is_confirmed h 1);
  (* An epoch that never probed node 1 must not read as recovery even
     with clear_after = 1. *)
  Prospector.Repair.Health.observe h ~probed:[ 0; 2 ] ~dark:[];
  Alcotest.(check bool) "unprobed stays confirmed" true
    (Prospector.Repair.Health.is_confirmed h 1);
  (* A probed alive epoch clears it. *)
  Prospector.Repair.Health.observe h ~probed:[ 0; 1; 2 ] ~dark:[];
  Alcotest.(check bool) "probed alive clears" false
    (Prospector.Repair.Health.is_confirmed h 1)

let test_surgery_unnecessary_and_root () =
  let topo, cost, train = unit_setup 41 in
  let r = Prospector.Lp_lf.plan topo cost train ~budget:30. ~k:2 in
  let current = r.Prospector.Lp_lf.plan in
  (* No deaths: nothing to do. *)
  (match
     Prospector.Repair.surgery topo cost mica train ~current ~dead:[] ~k:2
       ~budget:30.
   with
  | Prospector.Repair.Unnecessary -> ()
  | _ -> Alcotest.fail "empty dead set must be Unnecessary");
  (* A dead node the plan never used: nothing to do either. *)
  (match
     List.find_opt
       (fun i ->
         i <> topo.Sensor.Topology.root
         && Prospector.Plan.bandwidth current i = 0
         && Sensor.Topology.descendants topo i
            |> List.for_all (fun d -> Prospector.Plan.bandwidth current d = 0))
       (List.init topo.Sensor.Topology.n Fun.id)
   with
  | None -> ()
  | Some spectator -> (
      match
        Prospector.Repair.surgery topo cost mica train ~current
          ~dead:[ spectator ] ~k:2 ~budget:30.
      with
      | Prospector.Repair.Unnecessary -> ()
      | _ -> Alcotest.fail "non-participating death must be Unnecessary"));
  Alcotest.check_raises "root cannot be dead"
    (Invalid_argument "Repair.surgery: the root cannot be dead") (fun () ->
      ignore
        (Prospector.Repair.surgery topo cost mica train ~current
           ~dead:[ topo.Sensor.Topology.root ] ~k:2 ~budget:30.))

let test_surgery_repairs_and_restores () =
  let topo, cost, train = unit_setup 42 in
  let r = Prospector.Lp_lf.plan topo cost train ~budget:30. ~k:2 in
  let current = r.Prospector.Lp_lf.plan in
  let victim =
    match pick_victim topo current with
    | Some v -> v
    | None -> Alcotest.fail "no victim"
  in
  let rep =
    match
      Prospector.Repair.surgery ?warm_start:r.Prospector.Lp_lf.basis topo cost
        mica train ~current ~dead:[ victim ] ~k:2 ~budget:30.
    with
    | Prospector.Repair.Repaired rep -> rep
    | Prospector.Repair.Unnecessary -> Alcotest.fail "victim participates"
    | Prospector.Repair.Refused _ -> Alcotest.fail "unexpected refusal"
  in
  check_guarantee "surgery repair" rep.Prospector.Repair.guarantee;
  List.iter
    (fun d ->
      Alcotest.(check int)
        "dead subtree carries no bandwidth" 0
        (Prospector.Plan.bandwidth rep.Prospector.Repair.plan d))
    (Sensor.Topology.descendants topo victim);
  Alcotest.(check bool)
    "dropped lists the victim's participating subtree" true
    (List.mem victim rep.Prospector.Repair.dropped);
  (* Restoration: handing the node back re-triggers surgery even though
     nothing new died. *)
  (match
     Prospector.Repair.surgery topo cost mica train
       ~assumed_dead:[ victim ] ~current:rep.Prospector.Repair.plan ~dead:[]
       ~k:2 ~budget:30.
   with
  | Prospector.Repair.Repaired r2 ->
      check_guarantee "restoration repair" r2.Prospector.Repair.guarantee
  | Prospector.Repair.Unnecessary -> Alcotest.fail "restoration must re-plan"
  | Prospector.Repair.Refused _ -> Alcotest.fail "restoration refused");
  (* Unchanged dead set: no re-surgery. *)
  match
    Prospector.Repair.surgery topo cost mica train ~assumed_dead:[ victim ]
      ~current:rep.Prospector.Repair.plan ~dead:[ victim ] ~k:2 ~budget:30.
  with
  | Prospector.Repair.Unnecessary -> ()
  | _ -> Alcotest.fail "unchanged dead set must be Unnecessary"

let test_floor_refusal () =
  let topo, cost, train = unit_setup 43 in
  let r = Prospector.Lp_lf.plan topo cost train ~budget:30. ~k:2 in
  let current = r.Prospector.Lp_lf.plan in
  let victim =
    match pick_victim topo current with
    | Some v -> v
    | None -> Alcotest.fail "no victim"
  in
  (* An unattainable floor: every repair must be refused, with the
     attempt still carrying its honest (too-low) bound. *)
  match
    Prospector.Repair.surgery ~min_floor:1.1 topo cost mica train ~current
      ~dead:[ victim ] ~k:2 ~budget:30.
  with
  | Prospector.Repair.Refused
      {
        reason = Prospector.Repair.Floor_below_threshold { floor; threshold };
        attempt = Some a;
      } ->
      Alcotest.(check (float 0.)) "threshold echoed" 1.1 threshold;
      Alcotest.(check bool) "floor below" true (floor < threshold);
      check_guarantee "refused attempt" a.Prospector.Repair.guarantee
  | _ -> Alcotest.fail "expected a floor refusal with an attempt"

let test_controller_refusal_keeps_plan () =
  let topo, cost, train = unit_setup 44 in
  let r = Prospector.Lp_lf.plan topo cost train ~budget:30. ~k:2 in
  let initial = r.Prospector.Lp_lf.plan in
  let victim =
    match pick_victim topo initial with
    | Some v -> v
    | None -> Alcotest.fail "no victim"
  in
  let ctrl =
    Prospector.Repair.create ~confirm_after:1 ~min_floor:1.1 topo cost mica
      ~initial ~k:2 ~budget:30. ()
  in
  (match
     Prospector.Repair.observe ctrl train
       ~dark:(Sensor.Topology.descendants topo victim)
   with
  | Prospector.Repair.Refused _ -> ()
  | _ -> Alcotest.fail "expected refusal");
  Alcotest.(check bool) "installed plan untouched" true
    (Prospector.Repair.plan ctrl == initial);
  Alcotest.(check int) "refusal counted" 1 (Prospector.Repair.refusals ctrl);
  Alcotest.(check int) "no repair counted" 0 (Prospector.Repair.repairs ctrl)

let test_give_up_timestamps () =
  let topo, _cost, _train = unit_setup 45 in
  let n = topo.Sensor.Topology.n in
  let k = 2 in
  let plan = full_plan topo ~k in
  let victim = 1 + Rng.int (Rng.create 9) (n - 1) in
  let fault =
    Simnet.Fault.with_crashes (Simnet.Fault.none ~n) [ (victim, 0., infinity) ]
  in
  let r =
    Prospector.Simnet_exec.collect topo mica
      ~fault:(fault, Rng.create 7)
      plan ~k
      ~readings:(Array.init n (fun i -> float_of_int i))
  in
  Alcotest.(check bool) "at least one give-up" true
    (r.Prospector.Simnet_exec.give_ups <> []);
  Alcotest.(check int) "events match the engine counter"
    r.Prospector.Simnet_exec.gave_up_frames
    (List.length r.Prospector.Simnet_exec.give_ups);
  List.iter
    (fun (dst, at) ->
      Alcotest.(check int) "every give-up is on the crashed node" victim dst;
      Alcotest.(check bool) "give-up takes the full retry schedule" true
        (at > 0.))
    r.Prospector.Simnet_exec.give_ups;
  (* The dark closure is derivable from the give-up endpoints. *)
  Alcotest.(check (list int)) "dark = closure of the give-up endpoints"
    (List.sort_uniq Int.compare
       (List.concat_map
          (fun (dst, _) -> Sensor.Topology.descendants topo dst)
          r.Prospector.Simnet_exec.give_ups))
    r.Prospector.Simnet_exec.dark

let () =
  Alcotest.run "churn"
    [
      ( "chaos campaign",
        [ Alcotest.test_case "cross-seed churn sweep" `Slow test_campaign ] );
      ( "health",
        [
          Alcotest.test_case "hysteresis" `Quick test_health_hysteresis;
          Alcotest.test_case "unprobed freezes" `Quick
            test_health_unprobed_freezes;
        ] );
      ( "surgery",
        [
          Alcotest.test_case "unnecessary and root guard" `Quick
            test_surgery_unnecessary_and_root;
          Alcotest.test_case "repair and restoration" `Quick
            test_surgery_repairs_and_restores;
          Alcotest.test_case "floor refusal" `Quick test_floor_refusal;
          Alcotest.test_case "controller keeps plan on refusal" `Quick
            test_controller_refusal_keeps_plan;
        ] );
      ( "give-ups",
        [
          Alcotest.test_case "timestamps and counter cross-check" `Quick
            test_give_up_timestamps;
        ] );
    ]

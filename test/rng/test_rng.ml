(* Tests for the deterministic PRNG and the statistics toolbox. *)

let test_determinism () =
  let a = Rng.create 1234 and b = Rng.create 1234 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  ignore (Rng.bits64 a);
  ignore (Rng.bits64 a);
  ignore (Rng.bits64 b);
  (* advancing one does not affect the other *)
  let a' = Rng.copy a in
  Alcotest.(check int64) "streams stay in sync only via copy" (Rng.bits64 a)
    (Rng.bits64 a')

let test_split_diverges () =
  let a = Rng.create 99 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 20 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check int) "substream diverges" 0 !same

let test_int_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7)
  done;
  Alcotest.check_raises "zero bound rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_int_covers_all () =
  let rng = Rng.create 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all residues reached" true (Array.for_all Fun.id seen)

let test_float_range () =
  let rng = Rng.create 13 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng 3. in
    Alcotest.(check bool) "in [0,3)" true (x >= 0. && x < 3.)
  done

let test_uniform_moments () =
  let rng = Rng.create 17 in
  let xs = Array.init 50_000 (fun _ -> Rng.uniform rng ~lo:2. ~hi:4.) in
  let m = Sampling.Stats.mean xs in
  Alcotest.(check bool) "mean near 3" true (Float.abs (m -. 3.) < 0.02)

let test_gaussian_moments () =
  let rng = Rng.create 23 in
  let xs = Array.init 100_000 (fun _ -> Rng.gaussian rng ~mu:5. ~sigma:2.) in
  let m = Sampling.Stats.mean xs in
  let v = Sampling.Stats.variance xs in
  Alcotest.(check bool) "mean near 5" true (Float.abs (m -. 5.) < 0.05);
  Alcotest.(check bool) "variance near 4" true (Float.abs (v -. 4.) < 0.15)

let test_exponential_mean () =
  let rng = Rng.create 29 in
  let xs = Array.init 50_000 (fun _ -> Rng.exponential rng ~rate:2.) in
  let m = Sampling.Stats.mean xs in
  Alcotest.(check bool) "mean near 1/2" true (Float.abs (m -. 0.5) < 0.02)

let test_shuffle_permutation () =
  let rng = Rng.create 31 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_choose () =
  let rng = Rng.create 37 in
  let x = Rng.choose rng [| 42 |] in
  Alcotest.(check int) "singleton" 42 x;
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Rng.choose rng [||]))

(* ---- Stats ---- *)

let test_stats_mean_variance () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Sampling.Stats.mean [| 1.; 2.; 3. |]);
  Alcotest.(check (float 1e-9)) "variance" 1.
    (Sampling.Stats.variance [| 1.; 2.; 3. |]);
  Alcotest.check_raises "empty mean raises"
    (Invalid_argument "Stats.mean: empty array") (fun () ->
      ignore (Sampling.Stats.mean [||]));
  Alcotest.(check (float 1e-9)) "singleton variance" 0.
    (Sampling.Stats.variance [| 5. |])

let test_normal_cdf () =
  Alcotest.(check (float 1e-6)) "cdf(0)" 0.5 (Sampling.Stats.normal_cdf 0.);
  Alcotest.(check (float 1e-4)) "cdf(1.96)" 0.975
    (Sampling.Stats.normal_cdf 1.96);
  Alcotest.(check (float 1e-4)) "cdf(-1.96)" 0.025
    (Sampling.Stats.normal_cdf (-1.96))

let test_normal_quantile_roundtrip () =
  List.iter
    (fun p ->
      let z = Sampling.Stats.normal_quantile p in
      Alcotest.(check (float 1e-4))
        (Printf.sprintf "cdf(quantile(%g))" p)
        p
        (Sampling.Stats.normal_cdf z))
    [ 0.001; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ]

let test_percentile () =
  let xs = [| 3.; 1.; 2.; 4. |] in
  Alcotest.(check (float 1e-9)) "min" 1. (Sampling.Stats.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "max" 4. (Sampling.Stats.percentile xs 1.);
  Alcotest.(check (float 1e-9)) "median" 2.5 (Sampling.Stats.percentile xs 0.5)

let () =
  Alcotest.run "rng"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic under seed" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy semantics" `Quick test_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_split_diverges;
          Alcotest.test_case "int range" `Quick test_int_range;
          Alcotest.test_case "int covers residues" `Quick test_int_covers_all;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "uniform moments" `Quick test_uniform_moments;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "choose" `Quick test_choose;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean and variance" `Quick test_stats_mean_variance;
          Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
          Alcotest.test_case "quantile roundtrip" `Quick test_normal_quantile_roundtrip;
          Alcotest.test_case "percentile" `Quick test_percentile;
        ] );
    ]

(* Tests for the experiment scaffolding: series formatting, workload
   setups, and the planner-evaluation glue. *)

let test_series_width_checked () =
  Alcotest.check_raises "ragged rows rejected"
    (Invalid_argument "Series.make: row width mismatch") (fun () ->
      ignore
        (Experiments.Series.make ~title:"t" ~columns:[ "a"; "b" ] [ [ 1. ] ]))

let test_series_csv () =
  let s =
    Experiments.Series.make ~title:"t" ~columns:[ "a"; "b" ]
      [ [ 1.; 2. ]; [ 3.5; -1. ] ]
  in
  Alcotest.(check string) "csv" "a,b\n1.0000,2.0000\n3.5000,-1.0000\n"
    (Experiments.Series.to_csv s)

let test_series_print_shape () =
  let s =
    Experiments.Series.make ~title:"sample" ~columns:[ "x" ]
      ~notes:[ "a note" ] [ [ 42. ] ]
  in
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Experiments.Series.print ppf s;
  Format.pp_print_flush ppf ();
  let text = Buffer.contents buf in
  let has needle =
    let n = String.length needle and ln = String.length text in
    let rec go i = i + n <= ln && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "title shown" true (has "== sample ==");
  Alcotest.(check bool) "value shown" true (has "42.00");
  Alcotest.(check bool) "note shown" true (has "a note")

let test_uniform_setup_shape () =
  let s =
    Experiments.Setup.uniform_gaussian ~seed:1 ~n:30 ~k:5 ~n_samples:8
      ~n_test:4 ()
  in
  Alcotest.(check int) "nodes" 30 s.Experiments.Setup.topo.Sensor.Topology.n;
  Alcotest.(check int) "samples" 8
    (Sampling.Sample_set.n_samples s.Experiments.Setup.samples);
  Alcotest.(check int) "test epochs" 4
    (Array.length s.Experiments.Setup.test_epochs);
  Alcotest.(check int) "k" 5 s.Experiments.Setup.k

let test_contention_setup_zones () =
  let s =
    Experiments.Setup.contention ~seed:2 ~n_zones:3 ~per_zone:6 ~background:10
      ~k:4 ~n_samples:5 ~n_test:3 ()
  in
  Alcotest.(check int) "total nodes" (1 + (3 * 6) + 10)
    (Sensor.Placement.n s.Experiments.Setup.layout)

let test_intel_setup_connected () =
  let s = Experiments.Setup.intel_lab ~seed:3 ~k:5 ~n_samples:10 ~n_test:5 () in
  Alcotest.(check int) "54 motes" 54 s.Experiments.Setup.topo.Sensor.Topology.n;
  Alcotest.(check bool) "deep tree from minimal radio range" true
    (Sensor.Topology.height s.Experiments.Setup.topo > 3)

let test_partial_accuracy () =
  let s =
    Experiments.Setup.uniform_gaussian ~seed:4 ~n:20 ~k:10 ~n_samples:5
      ~n_test:6 ()
  in
  let full = Experiments.Planner_eval.partial_accuracy s ~k_fetched:10 in
  let half = Experiments.Planner_eval.partial_accuracy s ~k_fetched:5 in
  Alcotest.(check (float 1e-9)) "fetching k is exact" 1. full;
  Alcotest.(check (float 1e-9)) "fetching k/2 recalls half" 0.5 half

let test_naive_anchor_positive () =
  let s =
    Experiments.Setup.uniform_gaussian ~seed:5 ~n:25 ~k:5 ~n_samples:5
      ~n_test:3 ()
  in
  Alcotest.(check bool) "anchor cost positive" true
    (Experiments.Planner_eval.naive_k_cost s > 0.)

let test_crippled_lp_still_measures () =
  (* With the LP stages starved ([lp_iterations:0]) the planners fall back
     to greedy (see {!Prospector.Robust_plan}); the evaluation glue must
     still return a sane measured point rather than crash. *)
  let s =
    Experiments.Setup.uniform_gaussian ~seed:8 ~n:20 ~k:4 ~n_samples:6
      ~n_test:3 ()
  in
  let check_point name (p : Prospector.Evaluate.point) =
    Alcotest.(check bool) (name ^ ": accuracy in range") true
      (p.Prospector.Evaluate.accuracy >= 0.
      && p.Prospector.Evaluate.accuracy <= 1.);
    Alcotest.(check bool) (name ^ ": cost finite") true
      (Float.is_finite (Prospector.Evaluate.total_per_run_mj p))
  in
  check_point "lp_lf"
    (Experiments.Planner_eval.lp_lf ~lp_iterations:0 s ~budget:30.);
  check_point "lp_no_lf"
    (Experiments.Planner_eval.lp_no_lf ~lp_iterations:0 s ~budget:30.)

let test_replan_samples_swaps () =
  let s =
    Experiments.Setup.uniform_gaussian ~seed:6 ~n:15 ~k:3 ~n_samples:9
      ~n_test:2 ()
  in
  let restricted =
    Experiments.Setup.replan_samples s
      (Sampling.Sample_set.restrict s.Experiments.Setup.samples ~count:4)
  in
  Alcotest.(check int) "swapped" 4
    (Sampling.Sample_set.n_samples restricted.Experiments.Setup.samples);
  Alcotest.(check int) "topology untouched" 15
    restricted.Experiments.Setup.topo.Sensor.Topology.n

let () =
  Alcotest.run "experiments"
    [
      ( "series",
        [
          Alcotest.test_case "ragged rows rejected" `Quick test_series_width_checked;
          Alcotest.test_case "csv rendering" `Quick test_series_csv;
          Alcotest.test_case "print shape" `Quick test_series_print_shape;
        ] );
      ( "setup",
        [
          Alcotest.test_case "uniform gaussian" `Quick test_uniform_setup_shape;
          Alcotest.test_case "contention zones" `Quick test_contention_setup_zones;
          Alcotest.test_case "intel lab" `Quick test_intel_setup_connected;
        ] );
      ( "planner_eval",
        [
          Alcotest.test_case "partial accuracy" `Quick test_partial_accuracy;
          Alcotest.test_case "naive anchor" `Quick test_naive_anchor_positive;
          Alcotest.test_case "replan samples" `Quick test_replan_samples_swaps;
          Alcotest.test_case "crippled lp still measures" `Quick
            test_crippled_lp_still_measures;
        ] );
    ]

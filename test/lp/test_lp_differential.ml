(* Randomized differential testing of the two simplex implementations.

   Each seed deterministically generates a small bounded-variable LP which
   is then solved three ways: by the sparse revised simplex (cold and
   warm-started from its own basis), and by the independent dense tableau
   simplex with the variable bounds materialized as explicit rows.  The
   verdicts (optimal / infeasible / unbounded) must agree exactly and the
   optimal objectives to 1e-6 — the objective value at an optimum is
   unique even when the optimal vertex is not, so this is a sound oracle.
   A final sweep re-solves perturbed-rhs copies warm vs cold. *)

type spec = {
  maximize : bool;
  lower : float array;
  upper : float array; (* infinity = unbounded above *)
  obj : float array;
  rows : (float array * Lp.Model.sense * float) array;
}

(* Lower bounds are kept non-negative so the dense reference — which bakes
   in x >= 0 — can express every bound as a row without shifting. *)
let gen_spec rng =
  let n = 1 + Rng.int rng 6 in
  let m = 1 + Rng.int rng 6 in
  let lower =
    Array.init n (fun _ -> if Rng.bool rng then 0. else Rng.float rng 2.)
  in
  let upper =
    Array.init n (fun i ->
        if Rng.int rng 3 = 0 then lower.(i) +. Rng.float rng 3. else infinity)
  in
  let obj =
    Array.init n (fun _ ->
        if Rng.int rng 4 = 0 then 0. else Rng.uniform rng ~lo:(-5.) ~hi:5.)
  in
  let rows =
    Array.init m (fun _ ->
        let coeffs =
          Array.init n (fun _ ->
              if Rng.int rng 3 = 0 then 0. else Rng.uniform rng ~lo:(-4.) ~hi:4.)
        in
        let sense =
          match Rng.int rng 5 with
          | 0 | 1 -> Lp.Model.Le
          | 2 | 3 -> Lp.Model.Ge
          | _ -> Lp.Model.Eq
        in
        (coeffs, sense, Rng.uniform rng ~lo:(-10.) ~hi:10.))
  in
  { maximize = Rng.bool rng; lower; upper; obj; rows }

let build_model spec =
  let dir = if spec.maximize then Lp.Model.Maximize else Lp.Model.Minimize in
  let m = Lp.Model.create ~direction:dir () in
  let xs =
    Array.init (Array.length spec.lower) (fun i ->
        Lp.Model.add_var m ~lower:spec.lower.(i) ~upper:spec.upper.(i)
          ~obj:spec.obj.(i)
          (Printf.sprintf "x%d" i))
  in
  Array.iter
    (fun (coeffs, sense, rhs) ->
      let terms =
        Array.to_list (Array.mapi (fun i c -> (c, xs.(i))) coeffs)
        |> List.filter (fun (c, _) -> c <> 0.)
      in
      (* An all-zero row still constrains: 0 <sense> rhs. *)
      let terms = if terms = [] then [ (0., xs.(0)) ] else terms in
      Lp.Model.add_constraint m terms sense rhs)
    spec.rows;
  m

let dense_sense = function
  | Lp.Model.Le -> Lp.Dense_simplex.Le
  | Lp.Model.Ge -> Lp.Dense_simplex.Ge
  | Lp.Model.Eq -> Lp.Dense_simplex.Eq

let solve_dense spec =
  let n = Array.length spec.lower in
  let unit i = Array.init n (fun j -> if j = i then 1. else 0.) in
  let bound_rows =
    List.concat
      (List.init n (fun i ->
           (if spec.lower.(i) > 0. then
              [ (unit i, Lp.Dense_simplex.Ge, spec.lower.(i)) ]
            else [])
           @
           if spec.upper.(i) < infinity then
             [ (unit i, Lp.Dense_simplex.Le, spec.upper.(i)) ]
           else []))
  in
  let rows =
    Array.append
      (Array.map (fun (c, s, r) -> (Array.copy c, dense_sense s, r)) spec.rows)
      (Array.of_list bound_rows)
  in
  Lp.Dense_simplex.solve ~maximize:spec.maximize ~obj:(Array.copy spec.obj)
    ~constraints:rows ()

let model_status_name = function
  | Lp.Model.Optimal -> "optimal"
  | Lp.Model.Infeasible -> "infeasible"
  | Lp.Model.Unbounded -> "unbounded"
  | Lp.Model.Iteration_limit -> "iteration-limit"

let dense_status_name = function
  | Lp.Dense_simplex.Optimal -> "optimal"
  | Lp.Dense_simplex.Infeasible -> "infeasible"
  | Lp.Dense_simplex.Unbounded -> "unbounded"
  | Lp.Dense_simplex.Iteration_limit -> "iteration-limit"

let close a b = Float.abs (a -. b) <= 1e-6 *. (1. +. Float.max (Float.abs a) (Float.abs b))

let check_close ~seed ~what a b =
  if not (close a b) then
    Alcotest.failf "seed %d: %s objectives differ: %.9g vs %.9g" seed what a b

let n_cases = 200

let test_revised_vs_dense () =
  let optimal = ref 0 and infeasible = ref 0 and unbounded = ref 0 in
  for seed = 0 to n_cases - 1 do
    let spec = gen_spec (Rng.create seed) in
    let model = build_model spec in
    let rev = Lp.Model.solve ~solver:`Revised model in
    let dense = solve_dense spec in
    (match (rev.Lp.Model.status, dense.Lp.Dense_simplex.status) with
    | Lp.Model.Optimal, Lp.Dense_simplex.Optimal ->
        incr optimal;
        check_close ~seed ~what:"revised vs dense" rev.Lp.Model.objective
          dense.Lp.Dense_simplex.objective
    | Lp.Model.Infeasible, Lp.Dense_simplex.Infeasible -> incr infeasible
    | Lp.Model.Unbounded, Lp.Dense_simplex.Unbounded -> incr unbounded
    | rs, ds ->
        Alcotest.failf "seed %d: verdicts differ: revised %s vs dense %s" seed
          (model_status_name rs) (dense_status_name ds));
    (* Warm-starting the revised solver from its own final basis must
       reproduce its verdict and objective exactly. *)
    match rev.Lp.Model.basis with
    | None -> ()
    | Some basis ->
        let warm = Lp.Model.solve ~solver:`Revised ~warm_start:basis model in
        if not (Lp.Model.status_equal warm.Lp.Model.status rev.Lp.Model.status)
        then
          Alcotest.failf "seed %d: warm re-solve changed the verdict to %s"
            seed
            (model_status_name warm.Lp.Model.status);
        if rev.Lp.Model.status = Lp.Model.Optimal then
          check_close ~seed ~what:"warm vs cold" warm.Lp.Model.objective
            rev.Lp.Model.objective
  done;
  (* The generator must keep exercising all three verdicts, or the
     differential coverage silently rots. *)
  Alcotest.(check bool)
    (Printf.sprintf "all verdicts covered (opt %d, inf %d, unb %d)" !optimal
       !infeasible !unbounded)
    true
    (!optimal > 0 && !infeasible > 0 && !unbounded > 0)

(* Perturbing every rhs slightly and re-solving from the unperturbed basis
   is the planner's replanning pattern; warm and cold must agree on the
   perturbed model. *)
let test_warm_start_perturbed () =
  for seed = 0 to (n_cases / 4) - 1 do
    let spec = gen_spec (Rng.create (10_000 + seed)) in
    let rev = Lp.Model.solve ~solver:`Revised (build_model spec) in
    match rev.Lp.Model.basis with
    | None -> ()
    | Some basis ->
        let prng = Rng.create (20_000 + seed) in
        let spec' =
          {
            spec with
            rows =
              Array.map
                (fun (c, s, rhs) ->
                  (c, s, rhs +. Rng.uniform prng ~lo:(-0.1) ~hi:0.1))
                spec.rows;
          }
        in
        let model' = build_model spec' in
        let cold = Lp.Model.solve ~solver:`Revised model' in
        let warm = Lp.Model.solve ~solver:`Revised ~warm_start:basis model' in
        if not (Lp.Model.status_equal warm.Lp.Model.status cold.Lp.Model.status)
        then
          Alcotest.failf
            "seed %d: perturbed verdicts differ: warm %s vs cold %s" seed
            (model_status_name warm.Lp.Model.status)
            (model_status_name cold.Lp.Model.status);
        if cold.Lp.Model.status = Lp.Model.Optimal then
          check_close ~seed ~what:"perturbed warm vs cold"
            warm.Lp.Model.objective cold.Lp.Model.objective
  done

let () =
  Alcotest.run "lp_differential"
    [
      ( "differential",
        [
          Alcotest.test_case "revised (cold+warm) vs dense, 200 random LPs"
            `Quick test_revised_vs_dense;
          Alcotest.test_case "perturbed rhs: warm = cold" `Quick
            test_warm_start_perturbed;
        ] );
    ]

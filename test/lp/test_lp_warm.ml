(* Warm-start tests: feeding a previous solve's basis token back into a
   later solve must never change the answer — only (ideally) the work done
   to reach it.  Covers: re-solving the same model, re-solving after an
   rhs/bound perturbation, the Bland's-rule fallback under a warm start,
   structurally incompatible tokens, and a randomized warm = cold sweep. *)

let check_float = Alcotest.(check (float 1e-6))

let iterations (sol : Lp.Model.solution) =
  match sol.Lp.Model.stats with
  | Some s -> s.Lp.Revised.iterations
  | None -> Alcotest.fail "expected revised-solver stats"

let get_basis (sol : Lp.Model.solution) =
  match sol.Lp.Model.basis with
  | Some b -> b
  | None -> Alcotest.fail "expected a basis token"

(* A small shipping-style LP: maximize value collected subject to a budget
   row and per-item capacities.  [budget] is the knob the perturbation
   tests turn. *)
let build_transport ~budget =
  let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let n = 12 in
  let xs =
    Array.init n (fun i ->
        Lp.Model.add_var m ~upper:(1. +. float_of_int (i mod 4))
          ~obj:(1. +. (0.37 *. float_of_int i))
          (Printf.sprintf "x%d" i))
  in
  let cost i = 0.5 +. (0.21 *. float_of_int ((i * 7) mod n)) in
  Lp.Model.add_le m
    (Array.to_list (Array.mapi (fun i x -> (cost i, x)) xs))
    budget;
  for r = 0 to 3 do
    let terms = ref [] in
    Array.iteri (fun i x -> if i mod 4 = r then terms := (1., x) :: !terms) xs;
    Lp.Model.add_le m !terms 3.5
  done;
  m

let test_warm_same_model () =
  let m = build_transport ~budget:6. in
  let cold = Lp.Model.solve m in
  Alcotest.(check bool) "cold optimal" true
    (cold.Lp.Model.status = Lp.Model.Optimal);
  let warm = Lp.Model.solve ~warm_start:(get_basis cold) m in
  Alcotest.(check bool) "optimal" true (warm.Lp.Model.status = Lp.Model.Optimal);
  check_float "same objective" cold.Lp.Model.objective warm.Lp.Model.objective;
  (* Re-solving from the optimal basis must be (near-)free: no more than a
     repair pivot or two, versus a full cold solve. *)
  Alcotest.(check bool)
    (Printf.sprintf "warm iterations (%d) < cold (%d)" (iterations warm)
       (iterations cold))
    true
    (iterations warm < iterations cold || iterations cold = 0)

let test_warm_perturbed_budget () =
  let cold0 = Lp.Model.solve (build_transport ~budget:6.) in
  let basis = get_basis cold0 in
  List.iter
    (fun (budget, expect_cheaper) ->
      let m = build_transport ~budget in
      let cold = Lp.Model.solve m in
      let warm = Lp.Model.solve ~warm_start:basis m in
      Alcotest.(check bool) "optimal" true
        (warm.Lp.Model.status = Lp.Model.Optimal);
      check_float
        (Printf.sprintf "budget %g: warm = cold objective" budget)
        cold.Lp.Model.objective warm.Lp.Model.objective;
      (* A nearby budget should re-solve in no more pivots than a cold
         start; distant budgets only promise correctness. *)
      if expect_cheaper then
        Alcotest.(check bool)
          (Printf.sprintf "budget %g: warm iterations (%d) <= cold (%d)"
             budget (iterations warm) (iterations cold))
          true
          (iterations warm <= iterations cold))
    [ (6.3, true); (5.7, true); (9., false); (2.5, false) ]

let test_warm_bland_fallback () =
  (* A degenerate LP (many redundant rows through the origin) solved with
     [bland_after = 0], so every pivot uses Bland's rule from the start.
     The warm-started path must coexist with the fallback and still agree
     with the dense reference. *)
  let build () =
    let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
    let x = Lp.Model.add_var m ~obj:1. "x" in
    let y = Lp.Model.add_var m ~obj:1. "y" in
    let z = Lp.Model.add_var m ~obj:0.5 "z" in
    Lp.Model.add_le m [ (1., x); (1., y) ] 0.;
    Lp.Model.add_le m [ (1., x); (2., y) ] 0.;
    Lp.Model.add_le m [ (2., x); (1., y) ] 0.;
    Lp.Model.add_le m [ (1., x); (1., y); (1., z) ] 4.;
    m
  in
  let cold = Lp.Model.solve ~bland_after:0 (build ()) in
  Alcotest.(check bool) "cold optimal" true
    (cold.Lp.Model.status = Lp.Model.Optimal);
  check_float "cold objective" 2. cold.Lp.Model.objective;
  let warm = Lp.Model.solve ~bland_after:0 ~warm_start:(get_basis cold) (build ()) in
  Alcotest.(check bool) "warm optimal" true
    (warm.Lp.Model.status = Lp.Model.Optimal);
  check_float "warm objective" 2. warm.Lp.Model.objective

let test_warm_incompatible_ignored () =
  (* A token from a model of a different shape must be silently ignored,
     not crash or corrupt the solve. *)
  let small = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let s = Lp.Model.add_var small ~upper:1. ~obj:1. "s" in
  Lp.Model.add_le small [ (1., s) ] 1.;
  let token = get_basis (Lp.Model.solve small) in
  let m = build_transport ~budget:6. in
  let cold = Lp.Model.solve m in
  let warm = Lp.Model.solve ~warm_start:token m in
  check_float "mismatched token ignored" cold.Lp.Model.objective
    warm.Lp.Model.objective

let warm_equals_cold_random =
  QCheck.Test.make ~name:"warm start never changes the optimum" ~count:80
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rand = Random.State.make [| seed + 7177 |] in
      let nvars = 8 + Random.State.int rand 10 in
      let nrows = 6 + Random.State.int rand 10 in
      let build rhs_scale =
        let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
        let rand = Random.State.make [| seed + 7177 |] in
        let vars =
          Array.init nvars (fun i ->
              Lp.Model.add_var m ~upper:6.
                ~obj:(Random.State.float rand 5. -. 1.)
                (Printf.sprintf "x%d" i))
        in
        for _ = 1 to nrows do
          let terms = ref [] in
          Array.iter
            (fun v ->
              if Random.State.float rand 1. < 0.4 then
                terms := (Random.State.float rand 4. -. 0.5, v) :: !terms)
            vars;
          Lp.Model.add_le m !terms (rhs_scale *. Random.State.float rand 15.)
        done;
        m
      in
      (* Solve the base instance, then warm-start a perturbed-rhs copy and
         compare against its cold solve. *)
      let base = Lp.Model.solve (build 1.) in
      match base.Lp.Model.basis with
      | None -> true (* infeasible/unbounded base: nothing to warm-start *)
      | Some basis ->
          let scale = 0.8 +. Random.State.float rand 0.5 in
          let cold = Lp.Model.solve (build scale) in
          let warm = Lp.Model.solve ~warm_start:basis (build scale) in
          (match (cold.Lp.Model.status, warm.Lp.Model.status) with
          | Lp.Model.Optimal, Lp.Model.Optimal ->
              Float.abs (cold.Lp.Model.objective -. warm.Lp.Model.objective)
              <= 1e-5 *. (1. +. Float.abs cold.Lp.Model.objective)
          | sc, sw -> Lp.Model.status_equal sc sw))

let () =
  Alcotest.run "lp-warm"
    [
      ( "warm-start",
        [
          Alcotest.test_case "same model re-solve" `Quick test_warm_same_model;
          Alcotest.test_case "perturbed budget" `Quick
            test_warm_perturbed_budget;
          Alcotest.test_case "bland fallback" `Quick test_warm_bland_fallback;
          Alcotest.test_case "incompatible token ignored" `Quick
            test_warm_incompatible_ignored;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ warm_equals_cold_random ] );
    ]

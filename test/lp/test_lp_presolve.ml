(* Tests for the presolve reductions and the LP-format exporter. *)

let check_float = Alcotest.(check (float 1e-6))

(* A helper: build a Problem directly (equality form). *)
let problem ~nrows ~cols ~obj ~lower ~upper ~rhs =
  {
    Lp.Problem.nrows;
    ncols = Array.length cols;
    cols = Array.map Lp.Sparse_vec.of_assoc cols;
    obj;
    lower;
    upper;
    rhs;
    basis_hint = None;
  }

let test_presolve_fixed_vars () =
  (* x fixed at 2 by its bounds; row x + y = 5 should reduce to y = 3. *)
  let p =
    problem ~nrows:1
      ~cols:[| [ (0, 1.) ]; [ (0, 1.) ] |]
      ~obj:[| 0.; 1. |] ~lower:[| 2.; 0. |] ~upper:[| 2.; 10. |] ~rhs:[| 5. |]
  in
  match Lp.Presolve.apply p with
  | Lp.Presolve.Reduced (reduced, postsolve) ->
      (* y itself becomes a singleton row and is pinned too. *)
      Alcotest.(check int) "everything pinned" 0 reduced.Lp.Problem.ncols;
      let x = postsolve [||] in
      check_float "x kept" 2. x.(0);
      check_float "y solved" 3. x.(1)
  | _ -> Alcotest.fail "expected Reduced"

let test_presolve_infeasible_fixed () =
  (* Both variables fixed but the row cannot hold. *)
  let p =
    problem ~nrows:1
      ~cols:[| [ (0, 1.) ]; [ (0, 1.) ] |]
      ~obj:[| 0.; 0. |] ~lower:[| 2.; 2. |] ~upper:[| 2.; 2. |] ~rhs:[| 5. |]
  in
  Alcotest.(check bool) "infeasible detected" true
    (Lp.Presolve.apply p = Lp.Presolve.Infeasible_detected)

let test_presolve_empty_row () =
  let p =
    problem ~nrows:2
      ~cols:[| [ (0, 1.) ] |]
      ~obj:[| 1. |] ~lower:[| 0. |] ~upper:[| 9. |] ~rhs:[| 3.; 0. |]
  in
  match Lp.Presolve.apply p with
  | Lp.Presolve.Reduced (_, postsolve) ->
      check_float "singleton row pins x" 3. (postsolve [||]).(0)
  | _ -> Alcotest.fail "expected Reduced"

let test_presolve_empty_row_infeasible () =
  let p =
    problem ~nrows:1 ~cols:[||] ~obj:[||] ~lower:[||] ~upper:[||] ~rhs:[| 1. |]
  in
  Alcotest.(check bool) "empty row with rhs" true
    (Lp.Presolve.apply p = Lp.Presolve.Infeasible_detected)

let test_presolve_unbounded_column () =
  (* A free column with negative cost (minimization) and no rows. *)
  let p =
    problem ~nrows:0 ~cols:[| [] |] ~obj:[| -1. |] ~lower:[| 0. |]
      ~upper:[| infinity |] ~rhs:[||]
  in
  Alcotest.(check bool) "unbounded detected" true
    (Lp.Presolve.apply p = Lp.Presolve.Unbounded_detected)

let test_presolve_empty_column_fixed_at_best () =
  let p =
    problem ~nrows:0
      ~cols:[| []; [] |]
      ~obj:[| 1.; -1. |] ~lower:[| 2.; 0. |] ~upper:[| 9.; 7. |] ~rhs:[||]
  in
  match Lp.Presolve.apply p with
  | Lp.Presolve.Reduced (_, postsolve) ->
      let x = postsolve [||] in
      check_float "positive cost at lower" 2. x.(0);
      check_float "negative cost at upper" 7. x.(1)
  | _ -> Alcotest.fail "expected Reduced"

let presolve_preserves_optimum =
  QCheck.Test.make ~name:"presolve preserves the optimum" ~count:300
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rand = Random.State.make [| seed + 555 |] in
      let nvars = 2 + Random.State.int rand 8 in
      let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
      let vars =
        Array.init nvars (fun i ->
            (* A few variables are fixed outright to feed the reductions. *)
            let fixed = Random.State.float rand 1. < 0.3 in
            let lo = if fixed then Random.State.float rand 3. else 0. in
            let hi = if fixed then lo else float_of_int (2 + Random.State.int rand 8) in
            Lp.Model.add_var m ~lower:lo ~upper:hi
              ~obj:(Random.State.float rand 4. -. 1.)
              (Printf.sprintf "x%d" i))
      in
      for _ = 1 to 1 + Random.State.int rand 6 do
        let terms = ref [] in
        Array.iter
          (fun v ->
            if Random.State.float rand 1. < 0.4 then
              terms := (Random.State.float rand 3., v) :: !terms)
          vars;
        Lp.Model.add_le m !terms (5. +. Random.State.float rand 20.)
      done;
      let plain = Lp.Model.solve m in
      let pre = Lp.Model.solve ~presolve:true m in
      match (plain.Lp.Model.status, pre.Lp.Model.status) with
      | Lp.Model.Optimal, Lp.Model.Optimal ->
          Float.abs (plain.Lp.Model.objective -. pre.Lp.Model.objective)
          <= 1e-5 *. (1. +. Float.abs plain.Lp.Model.objective)
      | a, b -> Lp.Model.status_equal a b)

(* ---------- Lp_format ---------- *)

let test_lp_format_structure () =
  let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let x = Lp.Model.add_var m ~obj:3. ~upper:4. "x" in
  let y = Lp.Model.add_var m ~obj:5. ~lower:neg_infinity "rate (%)" in
  Lp.Model.add_le m ~name:"cap" [ (3., x); (2., y) ] 18.;
  Lp.Model.add_eq m [ (1., y) ] 2.;
  let text = Lp.Lp_format.to_string m in
  let has s =
    let n = String.length s and ln = String.length text in
    let rec go i = i + n <= ln && (String.sub text i n = s || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "maximize header" true (has "Maximize");
  Alcotest.(check bool) "objective terms" true (has "3 x_0");
  Alcotest.(check bool) "named constraint" true (has "cap_0:");
  Alcotest.(check bool) "operator" true (has "<= 18");
  Alcotest.(check bool) "equality" true (has "= 2");
  Alcotest.(check bool) "sanitized name" true (has "rate_____1");
  Alcotest.(check bool) "bounds section" true (has "Bounds");
  Alcotest.(check bool) "upper bound" true (has "x_0 <= 4");
  Alcotest.(check bool) "end marker" true (has "End")

let test_lp_format_free_var () =
  let m = Lp.Model.create () in
  ignore
    (Lp.Model.add_var m ~lower:neg_infinity ~upper:infinity ~obj:1. "f");
  let text = Lp.Lp_format.to_string m in
  let has s =
    let n = String.length s and ln = String.length text in
    let rec go i = i + n <= ln && (String.sub text i n = s || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "free declaration" true (has "f_0 free")

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ presolve_preserves_optimum ]

let () =
  Alcotest.run "lp_presolve"
    [
      ( "presolve",
        [
          Alcotest.test_case "fixed variables substituted" `Quick test_presolve_fixed_vars;
          Alcotest.test_case "infeasible fixed point" `Quick test_presolve_infeasible_fixed;
          Alcotest.test_case "empty/singleton rows" `Quick test_presolve_empty_row;
          Alcotest.test_case "empty row infeasible" `Quick test_presolve_empty_row_infeasible;
          Alcotest.test_case "unbounded column" `Quick test_presolve_unbounded_column;
          Alcotest.test_case "empty columns pinned" `Quick test_presolve_empty_column_fixed_at_best;
        ] );
      ( "lp_format",
        [
          Alcotest.test_case "structure" `Quick test_lp_format_structure;
          Alcotest.test_case "free variables" `Quick test_lp_format_free_var;
        ] );
      ("properties", qcheck_cases);
    ]

(* Deeper LP-solver validation: problem validation, duality, degeneracy,
   larger randomized instances, and LU edge cases. *)

let check_float = Alcotest.(check (float 1e-6))

(* ---------- Problem validation ---------- *)

let base_problem () =
  {
    Lp.Problem.nrows = 1;
    ncols = 2;
    cols =
      [| Lp.Sparse_vec.of_assoc [ (0, 1.) ]; Lp.Sparse_vec.of_assoc [ (0, 1.) ] |];
    obj = [| 1.; 0. |];
    lower = [| 0.; 0. |];
    upper = [| 1.; infinity |];
    rhs = [| 1. |];
    basis_hint = None;
  }

let test_validate_ok () = Lp.Problem.validate (base_problem ())

let test_validate_bad_lengths () =
  let p = { (base_problem ()) with obj = [| 1. |] } in
  (try
     Lp.Problem.validate p;
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ())

let test_validate_row_out_of_range () =
  let p =
    {
      (base_problem ()) with
      cols =
        [|
          Lp.Sparse_vec.of_assoc [ (5, 1.) ]; Lp.Sparse_vec.of_assoc [ (0, 1.) ];
        |];
    }
  in
  (try
     Lp.Problem.validate p;
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ())

let test_validate_bound_order () =
  let p = { (base_problem ()) with lower = [| 2.; 0. |] } in
  (try
     Lp.Problem.validate p;
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ())

let test_validate_bad_hint () =
  (* Column 0 is a unit vector but the hint points at a non-unit column. *)
  let p =
    {
      (base_problem ()) with
      cols =
        [|
          Lp.Sparse_vec.of_assoc [ (0, 2.) ]; Lp.Sparse_vec.of_assoc [ (0, 1.) ];
        |];
      basis_hint = Some [| 0 |];
    }
  in
  (try
     Lp.Problem.validate p;
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ())

let test_problem_helpers () =
  let p = base_problem () in
  let x = [| 0.25; 0.5 |] in
  check_float "activity" 0.75 (Lp.Problem.activity p x).(0);
  check_float "objective" 0.25 (Lp.Problem.objective_value p x);
  check_float "violation" 0.25 (Lp.Problem.max_constraint_violation p x);
  check_float "feasible point" 0.
    (Lp.Problem.max_constraint_violation p [| 0.5; 0.5 |])

(* ---------- Revised solver internals via Model ---------- *)

let test_revised_degenerate_terminates () =
  (* Beale's classic cycling example (degenerate under naive pivoting). *)
  let m = Lp.Model.create () in
  let x1 = Lp.Model.add_var m ~obj:(-0.75) "x1" in
  let x2 = Lp.Model.add_var m ~obj:150. "x2" in
  let x3 = Lp.Model.add_var m ~obj:(-0.02) "x3" in
  let x4 = Lp.Model.add_var m ~obj:6. "x4" in
  Lp.Model.add_le m [ (0.25, x1); (-60., x2); (-0.04, x3); (9., x4) ] 0.;
  Lp.Model.add_le m [ (0.5, x1); (-90., x2); (-0.02, x3); (3., x4) ] 0.;
  Lp.Model.add_le m [ (1., x3) ] 1.;
  let sol = Lp.Model.solve m in
  Alcotest.(check bool) "optimal" true (sol.Lp.Model.status = Lp.Model.Optimal);
  check_float "objective" (-0.05) sol.Lp.Model.objective

let test_revised_duals_strong_duality () =
  (* On a pure <=-form LP with x >= 0, strong duality reads
     c'x = y'b at the optimum (y are the row duals). *)
  let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let x = Lp.Model.add_var m ~obj:3. "x" in
  let y = Lp.Model.add_var m ~obj:5. "y" in
  Lp.Model.add_le m [ (1., x) ] 4.;
  Lp.Model.add_le m [ (2., y) ] 12.;
  Lp.Model.add_le m [ (3., x); (2., y) ] 18.;
  let sol = Lp.Model.solve m in
  match sol.Lp.Model.stats with
  | None -> Alcotest.fail "expected revised stats"
  | Some _ ->
      Alcotest.(check bool) "optimal" true (sol.Lp.Model.status = Lp.Model.Optimal);
      check_float "primal objective" 36. sol.Lp.Model.objective

let test_iteration_limit_status () =
  let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let vars =
    List.init 12 (fun i -> Lp.Model.add_var m ~obj:(1. +. float_of_int i) ~upper:10. (Printf.sprintf "x%d" i))
  in
  List.iteri
    (fun i v ->
      List.iteri
        (fun j w -> if j > i then Lp.Model.add_le m [ (1., v); (1., w) ] 12.)
        vars)
    vars;
  let sol = Lp.Model.solve ~max_iterations:1 m in
  Alcotest.(check bool) "iteration limit reported" true
    (sol.Lp.Model.status = Lp.Model.Iteration_limit)

let test_negative_lower_bounds () =
  (* min x + y with x in [-5, -1], y >= x + 3 -> x = -5, y = -2, obj -7. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~lower:(-5.) ~upper:(-1.) ~obj:1. "x" in
  let y = Lp.Model.add_var m ~lower:neg_infinity ~obj:1. "y" in
  Lp.Model.add_ge m [ (1., y); (-1., x) ] 3.;
  let sol = Lp.Model.solve m in
  check_float "objective" (-7.) sol.Lp.Model.objective;
  check_float "x at lower" (-5.) (Lp.Model.value sol x);
  check_float "y follows" (-2.) (Lp.Model.value sol y)

let test_model_var_names () =
  let m = Lp.Model.create () in
  let a = Lp.Model.add_var m "alpha" in
  let b = Lp.Model.add_var m "beta" in
  Alcotest.(check string) "first name" "alpha" (Lp.Model.var_name m a);
  Alcotest.(check string) "second name" "beta" (Lp.Model.var_name m b);
  Alcotest.(check int) "indices" 1 (Lp.Model.var_index b)

let test_model_set_obj () =
  let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let x = Lp.Model.add_var m ~upper:2. "x" in
  Lp.Model.set_obj m x 5.;
  let sol = Lp.Model.solve m in
  check_float "updated objective used" 10. sol.Lp.Model.objective

let test_model_rejects_foreign_var () =
  let m1 = Lp.Model.create () in
  let m2 = Lp.Model.create () in
  let x = Lp.Model.add_var m1 "x" in
  ignore (Lp.Model.add_var m2 "y");
  ignore x;
  (* Constraint mentioning a var id beyond m2's count must be rejected. *)
  let z = Lp.Model.add_var m1 "z" in
  try
    Lp.Model.add_le m2 [ (1., z) ] 1.;
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

(* ---------- Larger randomized agreement ---------- *)

let bigger_random_agreement =
  QCheck.Test.make ~name:"revised = dense on larger random LPs" ~count:60
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rand = Random.State.make [| seed + 31337 |] in
      let nvars = 10 + Random.State.int rand 15 in
      let nrows = 10 + Random.State.int rand 15 in
      let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
      let vars =
        Array.init nvars (fun i ->
            Lp.Model.add_var m ~upper:8.
              ~obj:(Random.State.float rand 5. -. 1.)
              (Printf.sprintf "x%d" i))
      in
      for _ = 1 to nrows do
        let terms = ref [] in
        Array.iter
          (fun v ->
            if Random.State.float rand 1. < 0.3 then
              terms := (Random.State.float rand 4. -. 1., v) :: !terms)
          vars;
        Lp.Model.add_le m !terms (Random.State.float rand 20.)
      done;
      let a = Lp.Model.solve ~solver:`Revised m in
      let b = Lp.Model.solve ~solver:`Dense m in
      match (a.Lp.Model.status, b.Lp.Model.status) with
      | Lp.Model.Optimal, Lp.Model.Optimal ->
          Float.abs (a.Lp.Model.objective -. b.Lp.Model.objective)
          <= 1e-5 *. (1. +. Float.abs b.Lp.Model.objective)
      | sa, sb -> Lp.Model.status_equal sa sb)

let equality_rows_agreement =
  QCheck.Test.make ~name:"revised = dense with equality rows" ~count:100
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rand = Random.State.make [| seed + 99 |] in
      let nvars = 3 + Random.State.int rand 6 in
      let m = Lp.Model.create () in
      let vars =
        Array.init nvars (fun i ->
            Lp.Model.add_var m ~upper:6.
              ~obj:(Random.State.float rand 4. -. 2.)
              (Printf.sprintf "x%d" i))
      in
      (* One equality over all vars keeps feasibility likely. *)
      Lp.Model.add_eq m
        (Array.to_list (Array.map (fun v -> (1., v)) vars))
        (float_of_int nvars);
      for _ = 1 to 1 + Random.State.int rand 4 do
        let terms = ref [] in
        Array.iter
          (fun v ->
            if Random.State.float rand 1. < 0.5 then
              terms := (Random.State.float rand 3., v) :: !terms)
          vars;
        Lp.Model.add_le m !terms (2. +. Random.State.float rand 15.)
      done;
      let a = Lp.Model.solve ~solver:`Revised m in
      let b = Lp.Model.solve ~solver:`Dense m in
      match (a.Lp.Model.status, b.Lp.Model.status) with
      | Lp.Model.Optimal, Lp.Model.Optimal ->
          Float.abs (a.Lp.Model.objective -. b.Lp.Model.objective)
          <= 1e-5 *. (1. +. Float.abs b.Lp.Model.objective)
      | sa, sb -> Lp.Model.status_equal sa sb)

(* ---------- LU extras ---------- *)

let test_lu_dense_block () =
  (* A fully dense 12x12 system exercises Markowitz fallback (no
     singletons after the first pivots). *)
  let dim = 12 in
  let rand = Random.State.make [| 5 |] in
  let a = Array.init dim (fun _ -> Array.init dim (fun _ -> Random.State.float rand 2. -. 1.)) in
  for i = 0 to dim - 1 do
    a.(i).(i) <- a.(i).(i) +. 10.  (* diagonal dominance *)
  done;
  let cols =
    Array.init dim (fun c ->
        Lp.Sparse_vec.of_assoc (List.init dim (fun r -> (r, a.(r).(c)))))
  in
  let lu = Lp.Lu.factor ~dim cols in
  let b = Array.init dim (fun i -> float_of_int (i + 1)) in
  let x = Lp.Lu.solve lu b in
  (* Verify residual directly. *)
  let max_resid = ref 0. in
  for r = 0 to dim - 1 do
    let acc = ref 0. in
    for c = 0 to dim - 1 do
      acc := !acc +. (a.(r).(c) *. x.(c))
    done;
    max_resid := Float.max !max_resid (Float.abs (!acc -. b.(r)))
  done;
  Alcotest.(check (float 1e-8)) "dense block residual" 0. !max_resid

let test_lu_1x1 () =
  let lu = Lp.Lu.factor ~dim:1 [| Lp.Sparse_vec.of_assoc [ (0, -4.) ] |] in
  check_float "trivial solve" (-0.5) (Lp.Lu.solve lu [| 2. |]).(0)

let test_lu_zero_matrix_singular () =
  (try
     ignore (Lp.Lu.factor ~dim:2 [| Lp.Sparse_vec.empty; Lp.Sparse_vec.empty |]);
     Alcotest.fail "expected Singular"
   with Lp.Lu.Singular _ -> ())

let lu_transpose_consistency =
  (* For random B, b, c:  c . (B^-1 b)  =  (B^-T c) . b. *)
  QCheck.Test.make ~name:"LU solve/transpose adjoint identity" ~count:200
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rand = Random.State.make [| seed + 4242 |] in
      let dim = 1 + Random.State.int rand 30 in
      let cols =
        Array.init dim (fun c ->
            let entries = ref [ (c, 5. +. Random.State.float rand 3.) ] in
            for _ = 1 to 2 do
              let r = Random.State.int rand dim in
              if r <> c then entries := (r, Random.State.float rand 2. -. 1.) :: !entries
            done;
            Lp.Sparse_vec.of_assoc !entries)
      in
      let lu = Lp.Lu.factor ~dim cols in
      let b = Array.init dim (fun _ -> Random.State.float rand 4. -. 2.) in
      let c = Array.init dim (fun _ -> Random.State.float rand 4. -. 2.) in
      let x = Lp.Lu.solve lu b in
      let y = Lp.Lu.solve_transpose lu c in
      let dot u v =
        let acc = ref 0. in
        Array.iteri (fun i ui -> acc := !acc +. (ui *. v.(i))) u;
        !acc
      in
      Float.abs (dot c x -. dot y b) <= 1e-6 *. (1. +. Float.abs (dot c x)))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ bigger_random_agreement; equality_rows_agreement; lu_transpose_consistency ]

let () =
  Alcotest.run ~and_exit:false "lp_extra"
    [
      ( "problem",
        [
          Alcotest.test_case "validate accepts sane problems" `Quick test_validate_ok;
          Alcotest.test_case "bad lengths rejected" `Quick test_validate_bad_lengths;
          Alcotest.test_case "row index out of range" `Quick test_validate_row_out_of_range;
          Alcotest.test_case "bound order checked" `Quick test_validate_bound_order;
          Alcotest.test_case "bad basis hint rejected" `Quick test_validate_bad_hint;
          Alcotest.test_case "activity/objective/violation" `Quick test_problem_helpers;
        ] );
      ( "revised",
        [
          Alcotest.test_case "Beale degeneracy terminates" `Quick
            test_revised_degenerate_terminates;
          Alcotest.test_case "strong duality on textbook LP" `Quick
            test_revised_duals_strong_duality;
          Alcotest.test_case "iteration limit status" `Quick test_iteration_limit_status;
          Alcotest.test_case "negative lower bounds" `Quick test_negative_lower_bounds;
        ] );
      ( "model",
        [
          Alcotest.test_case "variable names" `Quick test_model_var_names;
          Alcotest.test_case "set_obj" `Quick test_model_set_obj;
          Alcotest.test_case "foreign variable rejected" `Quick
            test_model_rejects_foreign_var;
        ] );
      ( "lu_extra",
        [
          Alcotest.test_case "dense block" `Quick test_lu_dense_block;
          Alcotest.test_case "1x1" `Quick test_lu_1x1;
          Alcotest.test_case "zero matrix singular" `Quick test_lu_zero_matrix_singular;
        ] );
      ("properties", qcheck_cases);
    ]

(* Appended: row duals / shadow prices. *)
let test_duals_textbook () =
  (* max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18: the classic duals are
     (0, 3/2, 1). *)
  let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let x = Lp.Model.add_var m ~obj:3. "x" in
  let y = Lp.Model.add_var m ~obj:5. "y" in
  Lp.Model.add_le m [ (1., x) ] 4.;
  Lp.Model.add_le m [ (0., x); (2., y) ] 12.;
  Lp.Model.add_le m [ (3., x); (2., y) ] 18.;
  let sol = Lp.Model.solve m in
  match sol.Lp.Model.row_duals with
  | None -> Alcotest.fail "expected duals"
  | Some d ->
      Alcotest.(check (float 1e-6)) "slack row has zero price" 0. d.(0);
      Alcotest.(check (float 1e-6)) "second row" 1.5 d.(1);
      Alcotest.(check (float 1e-6)) "third row" 1. d.(2)

let duals_bound_rhs_perturbation =
  (* For a maximization LP the value function is concave in the rhs, so
     the realized gain from relaxing one row never exceeds its shadow
     price times the relaxation. *)
  QCheck.Test.make ~name:"shadow prices bound rhs perturbations" ~count:150
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100_000))
    (fun seed ->
      let rand = Random.State.make [| seed + 777 |] in
      let nvars = 2 + Random.State.int rand 6 in
      let build extra_rhs =
        let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
        let rand = Random.State.make [| seed + 777 |] in
        let vars =
          Array.init nvars (fun i ->
              Lp.Model.add_var m ~upper:6.
                ~obj:(Random.State.float rand 4.)
                (Printf.sprintf "x%d" i))
        in
        for r = 0 to 3 do
          let terms = ref [] in
          Array.iter
            (fun v ->
              if Random.State.float rand 1. < 0.5 then
                terms := (Random.State.float rand 3., v) :: !terms)
            vars;
          let rhs = 2. +. Random.State.float rand 10. in
          Lp.Model.add_le m !terms (if r = 0 then rhs +. extra_rhs else rhs)
        done;
        Lp.Model.solve m
      in
      let base = build 0. in
      let bumped = build 0.5 in
      match (base.Lp.Model.status, bumped.Lp.Model.status, base.Lp.Model.row_duals) with
      | Lp.Model.Optimal, Lp.Model.Optimal, Some duals ->
          bumped.Lp.Model.objective -. base.Lp.Model.objective
          <= (duals.(0) *. 0.5) +. 1e-6
          && duals.(0) >= -1e-9
      | _ -> false)

let () =
  Alcotest.run ~and_exit:true "lp_duals"
    [
      ( "duals",
        Alcotest.test_case "textbook duals" `Quick test_duals_textbook
        :: List.map QCheck_alcotest.to_alcotest [ duals_bound_rhs_perturbation ]
      );
    ]

(* Adversarial LP corpus: degenerate, near-singular and badly scaled
   problems, solved and then *independently certified* — the solver is
   treated as an untrusted component and every claim is re-checked against
   nothing but the problem data.  Also covers: tampered solutions being
   rejected, Farkas / unbounded-ray certificates, the strengthened
   [Problem.validate], and iteration-starved solves being explicitly
   rejected rather than silently shipped. *)

let check_float = Alcotest.(check (float 1e-6))

let certified (r : Lp.Certify.report) = r.Lp.Certify.certified

let reasons_of (r : Lp.Certify.report) =
  String.concat "; " r.Lp.Certify.reasons

let assert_certified what (r : Lp.Certify.report) =
  Alcotest.(check bool)
    (Printf.sprintf "%s certified (%s)" what (reasons_of r))
    true (certified r)

(* ---- the corpus ---- *)

(* Heavy primal degeneracy: every objective coefficient ties, every
   capacity row is tight at the same point, and the budget row is an exact
   multiple of the capacities. *)
let degenerate_model () =
  let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let n = 10 in
  let xs =
    Array.init n (fun i ->
        Lp.Model.add_var m ~upper:1. ~obj:1. (Printf.sprintf "x%d" i))
  in
  Array.iter (fun x -> Lp.Model.add_le m [ (1., x) ] 1.) xs;
  Lp.Model.add_le m (Array.to_list (Array.map (fun x -> (1., x)) xs)) 5.;
  Lp.Model.add_le m
    (Array.to_list (Array.map (fun x -> (2., x)) xs))
    10.;
  (m, 5.)

(* Two rows that differ by 1e-9: the basis matrix is nearly singular
   whenever both slacks leave. *)
let near_singular_model () =
  let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let x = Lp.Model.add_var m ~obj:1. "x" in
  let y = Lp.Model.add_var m ~obj:1. "y" in
  Lp.Model.add_le m [ (1., x); (1., y) ] 1.;
  Lp.Model.add_le m [ (1., x); (1. +. 1e-9, y) ] 1.;
  Lp.Model.add_le m [ (1., x); (-1., y) ] 0.5;
  (m, 1.)

(* Coefficients spanning 1e-8 .. 1e8.  The certifier's backward-error
   scaling is what keeps this honest: absolute residuals of order 1e-3 are
   perfectly fine on rows of magnitude 1e8. *)
let badly_scaled_model () =
  let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let a = Lp.Model.add_var m ~obj:1e-8 "a" in
  let b = Lp.Model.add_var m ~obj:1e8 "b" in
  let c = Lp.Model.add_var m ~obj:1. "c" in
  Lp.Model.add_le m [ (1e-8, a) ] 1.;
  Lp.Model.add_le m [ (1e8, b) ] 1.;
  Lp.Model.add_le m [ (1e8, a); (1e-8, b); (1., c) ] 1e8;
  (* 1e8*a <= 1e8 makes a <= 1 binding through a huge row; the optimum
     ships a = 1 despite its tiny objective weight. *)
  (1e-8 *. 1e8) +. (1e8 /. 1e8) |> ignore;
  (m, (1e-8 *. 1e8) +. 1. +. 0.)

let corpus =
  [
    ("degenerate", degenerate_model);
    ("near-singular", near_singular_model);
    ("badly-scaled", badly_scaled_model);
  ]

let test_corpus_certified () =
  List.iter
    (fun (name, build) ->
      let m, _ = build () in
      let sol, report = Lp.Model.solve_certified m in
      Alcotest.(check bool)
        (name ^ " optimal") true
        (sol.Lp.Model.status = Lp.Model.Optimal);
      assert_certified name report)
    corpus

let test_corpus_objectives () =
  (* Expected optima, computed by hand above. *)
  let expected = [ ("degenerate", 5.); ("near-singular", 1.) ] in
  List.iter
    (fun (name, build) ->
      let m, _ = build () in
      let sol, _ = Lp.Model.solve_certified m in
      match List.assoc_opt name expected with
      | Some v -> check_float (name ^ " objective") v sol.Lp.Model.objective
      | None -> ())
    corpus

let test_corpus_agrees_with_dense () =
  List.iter
    (fun (name, build) ->
      let m, _ = build () in
      let rsol, rrep = Lp.Model.solve_certified m in
      let dsol, drep = Lp.Model.solve_dense_certified m in
      assert_certified (name ^ " revised") rrep;
      assert_certified (name ^ " dense") drep;
      let scale = 1. +. Float.abs rsol.Lp.Model.objective in
      Alcotest.(check bool)
        (Printf.sprintf "%s objectives agree (%.9g vs %.9g)" name
           rsol.Lp.Model.objective dsol.Lp.Model.objective)
        true
        (Float.abs (rsol.Lp.Model.objective -. dsol.Lp.Model.objective)
         <= 1e-5 *. scale))
    corpus

(* ---- tampering: the certifier must catch a lying solver ---- *)

let test_tampered_solution_rejected () =
  let m, _ = degenerate_model () in
  let prob = Lp.Model.to_problem m in
  let res = Lp.Revised.solve prob in
  Alcotest.(check bool) "optimal" true (res.Lp.Revised.status = Lp.Revised.Optimal);
  let ok =
    Lp.Certify.certify_optimal prob ~x:res.Lp.Revised.x
      ~duals:res.Lp.Revised.duals
  in
  assert_certified "untampered" ok;
  (* Violate a bound. *)
  let x = Array.copy res.Lp.Revised.x in
  x.(0) <- x.(0) +. 0.5;
  let bad = Lp.Certify.certify_optimal prob ~x ~duals:res.Lp.Revised.duals in
  Alcotest.(check bool) "bound tampering caught" false (certified bad);
  (* A feasible but suboptimal point must fail the gap/dual checks. *)
  let zero = Array.map (fun l -> if Float.is_finite l then l else 0.) prob.Lp.Problem.lower in
  let slack_fixed = Array.copy zero in
  (* Make it satisfy Ax = b by recomputing slacks (columns nvars..) is
     model-specific; instead tamper the duals, which keeps x intact. *)
  ignore slack_fixed;
  let duals = Array.map (fun y -> y +. 0.25) res.Lp.Revised.duals in
  let bad2 = Lp.Certify.certify_optimal prob ~x:res.Lp.Revised.x ~duals in
  Alcotest.(check bool) "dual tampering caught" false (certified bad2)

(* ---- infeasibility and unboundedness carry checkable certificates ---- *)

let test_farkas_certificate () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var m ~obj:1. "x" in
  Lp.Model.add_ge m [ (1., x) ] 2.;
  Lp.Model.add_le m [ (1., x) ] 1.;
  let sol, report = Lp.Model.solve_certified m in
  Alcotest.(check bool)
    "infeasible" true
    (sol.Lp.Model.status = Lp.Model.Infeasible);
  assert_certified "farkas" report;
  (* The raw certificate is exposed at the Revised level too. *)
  let prob = Lp.Model.to_problem m in
  let res = Lp.Revised.solve prob in
  (match res.Lp.Revised.farkas with
  | None -> Alcotest.fail "expected a Farkas certificate"
  | Some farkas ->
      assert_certified "farkas (raw)"
        (Lp.Certify.certify_infeasible prob ~farkas));
  (* A garbage certificate must be rejected. *)
  let junk = Array.make 2 0.1 in
  Alcotest.(check bool) "junk farkas rejected" false
    (certified (Lp.Certify.certify_infeasible prob ~farkas:junk))

let test_unbounded_ray_certificate () =
  let m = Lp.Model.create ~direction:Lp.Model.Maximize () in
  let x = Lp.Model.add_var m ~obj:1. "x" in
  let y = Lp.Model.add_var m "y" in
  Lp.Model.add_le m [ (1., x); (-1., y) ] 0.;
  let sol, report = Lp.Model.solve_certified m in
  Alcotest.(check bool)
    "unbounded" true
    (sol.Lp.Model.status = Lp.Model.Unbounded);
  assert_certified "ray" report;
  let prob = Lp.Model.to_problem m in
  let res = Lp.Revised.solve prob in
  (match res.Lp.Revised.ray with
  | None -> Alcotest.fail "expected an unbounded ray"
  | Some ray ->
      assert_certified "ray (raw)" (Lp.Certify.certify_unbounded prob ~ray));
  (* A direction that violates the constraints is rejected. *)
  let junk = Array.make prob.Lp.Problem.ncols 1. in
  Alcotest.(check bool) "junk ray rejected" false
    (certified (Lp.Certify.certify_unbounded prob ~ray:junk))

(* ---- validation of hostile problem data ---- *)

let test_validate_rejects_bad_data () =
  let expect_invalid what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  in
  let base () =
    let m = Lp.Model.create () in
    let x = Lp.Model.add_var m ~obj:1. "x" in
    Lp.Model.add_le m [ (1., x) ] 1.;
    m
  in
  expect_invalid "NaN objective" (fun () ->
      let m = base () in
      let y = Lp.Model.add_var m ~obj:Float.nan "y" in
      Lp.Model.add_le m [ (1., y) ] 1.;
      Lp.Model.solve m);
  expect_invalid "infinite coefficient" (fun () ->
      let m = base () in
      let y = Lp.Model.add_var m "y" in
      Lp.Model.add_le m [ (Float.infinity, y) ] 1.;
      Lp.Model.solve m);
  expect_invalid "NaN rhs" (fun () ->
      let m = base () in
      let y = Lp.Model.add_var m "y" in
      Lp.Model.add_le m [ (1., y) ] Float.nan;
      Lp.Model.solve m);
  expect_invalid "NaN bound" (fun () ->
      let m = base () in
      let y = Lp.Model.add_var m ~lower:Float.nan "y" in
      Lp.Model.add_le m [ (1., y) ] 1.;
      Lp.Model.solve m);
  expect_invalid "lower = +inf" (fun () ->
      let m = base () in
      let y = Lp.Model.add_var m ~lower:Float.infinity ~upper:Float.infinity "y" in
      Lp.Model.add_le m [ (1., y) ] 1.;
      Lp.Model.solve m);
  (* Empty columns are legal by default... *)
  let m = base () in
  let _free = Lp.Model.add_var m "unused" in
  Lp.Problem.validate (Lp.Model.to_problem m);
  (* ...and rejected in strict mode. *)
  expect_invalid "empty column (strict)" (fun () ->
      Lp.Problem.validate ~strict:true (Lp.Model.to_problem m))

(* ---- iteration starvation: rejected, not silently shipped ---- *)

let test_starved_solver_rejected () =
  let m, _ = degenerate_model () in
  List.iter
    (fun budget ->
      let sol, report = Lp.Model.solve_certified ~max_iterations:budget m in
      if sol.Lp.Model.status <> Lp.Model.Optimal then begin
        Alcotest.(check bool)
          (Printf.sprintf "starved (%d) rejected" budget)
          false (certified report);
        (* Values must be zeroed: nobody may consume a half-converged
           iterate. *)
        Array.iter
          (fun v -> check_float "zeroed value" 0. v)
          sol.Lp.Model.values
      end
      else assert_certified (Printf.sprintf "budget %d" budget) report)
    [ 0; 1; 2; 3; 5; 100 ];
  (* The dense reference obeys its pivot cap the same way. *)
  let sol, report = Lp.Model.solve_dense_certified ~max_pivots:1 m in
  Alcotest.(check bool)
    "dense starved status" true
    (sol.Lp.Model.status = Lp.Model.Iteration_limit);
  Alcotest.(check bool) "dense starved rejected" false (certified report)

let test_deadline_expired_rejected () =
  let m, _ = degenerate_model () in
  (* A deadline that already passed must stop the solve almost at once and
     the result must be explicitly rejected. *)
  let sol, report = Lp.Model.solve_certified ~deadline:0. m in
  Alcotest.(check bool)
    "expired deadline -> iteration limit" true
    (sol.Lp.Model.status = Lp.Model.Iteration_limit);
  Alcotest.(check bool) "rejected" false (certified report);
  (* A generous deadline changes nothing. *)
  let sol, report = Lp.Model.solve_certified ~deadline:60. m in
  Alcotest.(check bool) "optimal" true (sol.Lp.Model.status = Lp.Model.Optimal);
  assert_certified "generous deadline" report

(* ---- randomized corpus: certified-or-detected, never silent ---- *)

let random_model rng =
  let n = 3 + Rng.int rng 8 in
  let rows = 2 + Rng.int rng 6 in
  let dir = if Rng.int rng 2 = 0 then Lp.Model.Minimize else Lp.Model.Maximize in
  let m = Lp.Model.create ~direction:dir () in
  let scale () = Float.pow 10. (float_of_int (Rng.int rng 9 - 4)) in
  let xs =
    Array.init n (fun i ->
        let upper =
          if Rng.int rng 4 = 0 then Float.infinity else scale () *. 2.
        in
        Lp.Model.add_var m ~upper
          ~obj:(Rng.uniform rng ~lo:(-1.) ~hi:1. *. scale ())
          (Printf.sprintf "v%d" i))
  in
  for _ = 1 to rows do
    let terms = ref [] in
    Array.iter
      (fun x ->
        if Rng.int rng 3 > 0 then
          terms := (Rng.uniform rng ~lo:(-1.) ~hi:1. *. scale (), x) :: !terms)
      xs;
    if !terms <> [] then
      Lp.Model.add_le m !terms (Rng.float rng (10. *. scale ()))
  done;
  m

let test_random_sweep () =
  let rng = Rng.create 0x5EED in
  let optimal = ref 0 and certified_n = ref 0 in
  for _ = 1 to 60 do
    let m = random_model rng in
    let sol, report = Lp.Model.solve_certified m in
    (match sol.Lp.Model.status with
    | Lp.Model.Optimal ->
        incr optimal;
        if certified report then incr certified_n
        else
          Alcotest.failf "optimal but uncertified: %s" (reasons_of report)
    | Lp.Model.Infeasible | Lp.Model.Unbounded ->
        (* Claimed with a certificate, or honestly rejected — both are
           acceptable outcomes; silent nonsense is not. *)
        ()
    | Lp.Model.Iteration_limit ->
        Alcotest.(check bool) "limit rejected" false (certified report))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "sweep found optima (%d, %d certified)" !optimal
       !certified_n)
    true
    (!optimal > 10 && !certified_n = !optimal)

let () =
  Alcotest.run "lp-adversarial"
    [
      ( "corpus",
        [
          Alcotest.test_case "corpus certified" `Quick test_corpus_certified;
          Alcotest.test_case "corpus objectives" `Quick test_corpus_objectives;
          Alcotest.test_case "agrees with dense" `Quick
            test_corpus_agrees_with_dense;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "tampered solution rejected" `Quick
            test_tampered_solution_rejected;
          Alcotest.test_case "farkas certificate" `Quick test_farkas_certificate;
          Alcotest.test_case "unbounded ray certificate" `Quick
            test_unbounded_ray_certificate;
        ] );
      ( "defenses",
        [
          Alcotest.test_case "validate rejects bad data" `Quick
            test_validate_rejects_bad_data;
          Alcotest.test_case "starved solver rejected" `Quick
            test_starved_solver_rejected;
          Alcotest.test_case "expired deadline rejected" `Quick
            test_deadline_expired_rejected;
          Alcotest.test_case "random sweep" `Quick test_random_sweep;
        ] );
    ]

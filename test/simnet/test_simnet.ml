(* Tests for the discrete-event engine: event ordering, message delivery,
   energy conservation, failures and timers. *)

let check_float = Alcotest.(check (float 1e-9))

(* ---- Event_queue ---- *)

let test_queue_order () =
  let q = Simnet.Event_queue.create () in
  Simnet.Event_queue.add q ~time:3. "c";
  Simnet.Event_queue.add q ~time:1. "a";
  Simnet.Event_queue.add q ~time:2. "b";
  let order = List.init 3 (fun _ -> snd (Option.get (Simnet.Event_queue.pop q))) in
  Alcotest.(check (list string)) "sorted by time" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "drained" true (Simnet.Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Simnet.Event_queue.create () in
  for i = 0 to 9 do
    Simnet.Event_queue.add q ~time:1. i
  done;
  let order = List.init 10 (fun _ -> snd (Option.get (Simnet.Event_queue.pop q))) in
  Alcotest.(check (list int)) "insertion order on ties" (List.init 10 Fun.id) order

let test_queue_nan_rejected () =
  let q = Simnet.Event_queue.create () in
  Alcotest.check_raises "NaN rejected"
    (Invalid_argument "Event_queue.add: NaN time") (fun () ->
      Simnet.Event_queue.add q ~time:Float.nan ())

let test_queue_fifo_across_pops () =
  (* FIFO on equal timestamps must survive arbitrary add/pop interleavings
     — the pattern retransmission timers produce when they re-arm mid-drain
     at a timestamp that collides with queued deliveries. *)
  let q = Simnet.Event_queue.create () in
  Simnet.Event_queue.add q ~time:1. 0;
  Simnet.Event_queue.add q ~time:1. 1;
  let popped = ref [] in
  let pop () = popped := snd (Option.get (Simnet.Event_queue.pop q)) :: !popped in
  pop ();
  Simnet.Event_queue.add q ~time:1. 2;
  pop ();
  Simnet.Event_queue.add q ~time:1. 3;
  Simnet.Event_queue.add q ~time:0.5 99;
  pop ();
  (* the earlier event jumps the tie group... *)
  pop ();
  pop ();
  Alcotest.(check (list int)) "ties stay FIFO across interleaved adds"
    [ 0; 1; 99; 2; 3 ] (List.rev !popped)

let test_queue_burst_drain () =
  (* A large burst followed by a full drain: ordering holds and the
     backing array shrinks back down (exercised for memory hygiene; the
     capacity itself is not observable). *)
  let q = Simnet.Event_queue.create () in
  for i = 0 to 9_999 do
    Simnet.Event_queue.add q ~time:(float_of_int (i mod 7)) i
  done;
  let last_time = ref neg_infinity and last_seq = ref (-1) and ok = ref true in
  let rec drain count =
    match Simnet.Event_queue.pop q with
    | None -> count
    | Some (t, i) ->
        if t < !last_time then ok := false;
        if t > !last_time then last_seq := -1;
        (* within a tie group, insertion order = increasing payload here *)
        if i <= !last_seq then ok := false;
        last_time := t;
        last_seq := i;
        drain (count + 1)
  in
  let drained = drain 0 in
  Alcotest.(check int) "all events drained" 10_000 drained;
  Alcotest.(check bool) "order respected throughout" true !ok;
  Alcotest.(check int) "empty after drain" 0 (Simnet.Event_queue.length q)

let test_queue_interleaved () =
  let q = Simnet.Event_queue.create () in
  let rng = Rng.create 1 in
  let last = ref neg_infinity in
  for _ = 1 to 200 do
    Simnet.Event_queue.add q ~time:(Rng.float rng 100.) ()
  done;
  let ok = ref true in
  let rec drain () =
    match Simnet.Event_queue.pop q with
    | None -> ()
    | Some (t, ()) ->
        if t < !last then ok := false;
        last := t;
        drain ()
  in
  drain ();
  Alcotest.(check bool) "monotone pops" true !ok

(* ---- Engine ---- *)

let chain n = Sensor.Topology.of_parents ~root:0 (Array.init n (fun i -> i - 1))

let mica = Sensor.Mica2.default

let test_engine_delivery () =
  let topo = chain 3 in
  let engine =
    Simnet.Engine.create topo mica ~payload_bytes:(fun _ -> 4) ()
  in
  let log = ref [] in
  (* Leaf 2 sends "hello" up to 1, which forwards to the root. *)
  Simnet.Engine.on_message engine ~node:1 (fun api ~src msg ->
      log := (1, src, msg) :: !log;
      api.Simnet.Engine.send ~dst:0 msg);
  Simnet.Engine.on_message engine ~node:0 (fun _ ~src msg ->
      log := (0, src, msg) :: !log);
  Simnet.Engine.on_message engine ~node:2 (fun api ~src:_ msg ->
      api.Simnet.Engine.send ~dst:1 msg);
  Simnet.Engine.inject engine ~node:2 "hello";
  let end_time = Simnet.Engine.run engine in
  Alcotest.(check (list (triple int int string)))
    "relay order" [ (0, 1, "hello"); (1, 2, "hello") ] !log;
  Alcotest.(check int) "two unicasts" 2 (Simnet.Engine.unicasts_sent engine);
  Alcotest.(check bool) "time advanced" true (end_time > 0.)

let test_engine_energy_conservation () =
  let topo = chain 2 in
  let engine =
    Simnet.Engine.create topo mica ~payload_bytes:(fun _ -> 10) ()
  in
  Simnet.Engine.on_message engine ~node:1 (fun api ~src:_ () ->
      api.Simnet.Engine.send ~dst:0 ());
  Simnet.Engine.on_message engine ~node:0 (fun _ ~src:_ () -> ());
  Simnet.Engine.inject engine ~node:1 ();
  ignore (Simnet.Engine.run engine);
  check_float "ledgers sum to the unicast cost"
    (Sensor.Mica2.unicast_bytes_mj mica ~bytes:10)
    (Simnet.Engine.total_energy engine)

let test_engine_rejects_non_neighbor () =
  let topo = chain 3 in
  let engine = Simnet.Engine.create topo mica ~payload_bytes:(fun _ -> 0) () in
  let failed = ref false in
  Simnet.Engine.on_message engine ~node:2 (fun api ~src:_ () ->
      try api.Simnet.Engine.send ~dst:0 () with Invalid_argument _ -> failed := true);
  Simnet.Engine.inject engine ~node:2 ();
  ignore (Simnet.Engine.run engine);
  Alcotest.(check bool) "skip-level send rejected" true !failed

let test_engine_broadcast_and_multicast () =
  let topo = Sensor.Topology.of_parents ~root:0 [| -1; 0; 0; 0 |] in
  let engine = Simnet.Engine.create topo mica ~payload_bytes:(fun _ -> 0) () in
  let heard = ref [] in
  for i = 1 to 3 do
    Simnet.Engine.on_message engine ~node:i (fun api ~src:_ () ->
        heard := api.Simnet.Engine.self :: !heard)
  done;
  Simnet.Engine.on_message engine ~node:0 (fun api ~src:_ () ->
      api.Simnet.Engine.multicast ~dsts:[ 1; 3 ] ());
  Simnet.Engine.inject engine ~node:0 ();
  ignore (Simnet.Engine.run engine);
  Alcotest.(check (list int)) "only multicast targets heard" [ 1; 3 ]
    (List.sort compare !heard);
  Alcotest.(check int) "one broadcast" 1 (Simnet.Engine.broadcasts_sent engine);
  check_float "multicast cost"
    (Sensor.Mica2.broadcast_mj mica ~receivers:2 ~bytes:0)
    (Simnet.Engine.total_energy engine)

let test_engine_timer () =
  let topo = chain 1 in
  let engine = Simnet.Engine.create topo mica ~payload_bytes:(fun _ -> 0) () in
  let fired = ref [] in
  Simnet.Engine.on_message engine ~node:0 (fun api ~src:_ () ->
      api.Simnet.Engine.set_timer ~delay:5. (fun () -> fired := 5 :: !fired);
      api.Simnet.Engine.set_timer ~delay:1. (fun () -> fired := 1 :: !fired));
  Simnet.Engine.inject engine ~node:0 ();
  let t = Simnet.Engine.run engine in
  Alcotest.(check (list int)) "timers fire in order" [ 5; 1 ] !fired;
  Alcotest.(check bool) "final time past last timer" true (t >= 5.)

let test_engine_failures_inflate () =
  let topo = chain 2 in
  let failure =
    {
      Sensor.Failure.fail_prob = [| 0.; 1. |];  (* edge 1 always fails *)
      reroute_factor = [| 1.; 2. |];
      drop_prob = [| 0.; 0. |];
    }
  in
  let rng = Rng.create 1 in
  let engine =
    Simnet.Engine.create topo mica ~failure:(failure, rng)
      ~payload_bytes:(fun _ -> 10)
      ()
  in
  Simnet.Engine.on_message engine ~node:1 (fun api ~src:_ () ->
      api.Simnet.Engine.send ~dst:0 ());
  Simnet.Engine.on_message engine ~node:0 (fun _ ~src:_ () -> ());
  Simnet.Engine.inject engine ~node:1 ();
  ignore (Simnet.Engine.run engine);
  Alcotest.(check int) "reroute recorded" 1 (Simnet.Engine.reroutes engine);
  check_float "cost doubled"
    (2. *. Sensor.Mica2.unicast_bytes_mj mica ~bytes:10)
    (Simnet.Engine.total_energy engine)

(* ---- fault injection & the reliability sublayer ---- *)

let test_reliable_lossless_equals_legacy () =
  (* With a fault model that never drops anything, the ACK/retransmit
     machinery must charge exactly what the direct path charges. *)
  let topo = chain 2 in
  let run fault =
    let engine =
      Simnet.Engine.create topo mica ?fault ~payload_bytes:(fun _ -> 10) ()
    in
    Simnet.Engine.on_message engine ~node:1 (fun api ~src:_ () ->
        api.Simnet.Engine.send ~dst:0 ());
    Simnet.Engine.on_message engine ~node:0 (fun _ ~src:_ () -> ());
    Simnet.Engine.inject engine ~node:1 ();
    ignore (Simnet.Engine.run engine);
    engine
  in
  let legacy = run None in
  let reliable = run (Some (Simnet.Fault.none ~n:2, Rng.create 1)) in
  check_float "same total energy"
    (Simnet.Engine.total_energy legacy)
    (Simnet.Engine.total_energy reliable);
  check_float "same split, node 0"
    (Simnet.Engine.energy_of legacy 0)
    (Simnet.Engine.energy_of reliable 0);
  Alcotest.(check int) "no retransmissions" 0
    (Simnet.Engine.retransmissions_sent reliable);
  Alcotest.(check int) "no drops" 0 (Simnet.Engine.dropped_frames reliable)

let test_reliable_in_order_exactly_once () =
  (* 20 messages through a 50%-lossy edge: every one arrives, exactly
     once, in send order — the sublayer restores FIFO with sequence
     numbers and suppresses the duplicates retransmission creates. *)
  let topo = chain 2 in
  let engine =
    Simnet.Engine.create topo mica
      ~fault:(Simnet.Fault.bernoulli ~n:2 ~drop:0.5, Rng.create 42)
      ~payload_bytes:(fun _ -> 4)
      ()
  in
  let received = ref [] in
  Simnet.Engine.on_message engine ~node:0 (fun _ ~src:_ i ->
      received := i :: !received);
  Simnet.Engine.on_message engine ~node:1 (fun api ~src:_ _ ->
      for i = 0 to 19 do
        api.Simnet.Engine.send ~dst:0 i
      done);
  Simnet.Engine.inject engine ~node:1 (-1);
  ignore (Simnet.Engine.run engine);
  Alcotest.(check (list int)) "in order, exactly once" (List.init 20 Fun.id)
    (List.rev !received);
  Alcotest.(check bool) "the loss was real" true
    (Simnet.Engine.retransmissions_sent engine > 0
    && Simnet.Engine.dropped_frames engine > 0);
  Alcotest.(check bool) "loss costs energy" true
    (Simnet.Engine.total_energy engine
    > 20. *. Sensor.Mica2.unicast_bytes_mj mica ~bytes:4)

let test_reliable_ack_loss_duplicates () =
  (* When an ACK dies the sender re-sends a frame the receiver already
     has; the duplicate is paid for (the radio heard it) but suppressed.
     Seed 42 above produces such collisions — pin the counter here. *)
  let topo = chain 2 in
  let engine =
    Simnet.Engine.create topo mica
      ~fault:(Simnet.Fault.bernoulli ~n:2 ~drop:0.5, Rng.create 42)
      ~payload_bytes:(fun _ -> 4)
      ()
  in
  let count = ref 0 in
  Simnet.Engine.on_message engine ~node:0 (fun _ ~src:_ _ -> incr count);
  Simnet.Engine.on_message engine ~node:1 (fun api ~src:_ _ ->
      for i = 0 to 19 do
        api.Simnet.Engine.send ~dst:0 i
      done);
  Simnet.Engine.inject engine ~node:1 (-1);
  ignore (Simnet.Engine.run engine);
  Alcotest.(check int) "handler saw each message once" 20 !count;
  Alcotest.(check bool) "duplicates were suppressed, not delivered" true
    (Simnet.Engine.duplicate_frames engine > 0)

let test_reliable_gives_up_on_dead_link () =
  let topo = chain 2 in
  let engine =
    Simnet.Engine.create topo mica
      ~fault:(Simnet.Fault.bernoulli ~n:2 ~drop:1., Rng.create 3)
      ~payload_bytes:(fun _ -> 4)
      ()
  in
  let delivered = ref 0 and abandoned = ref [] in
  Simnet.Engine.on_message engine ~node:0 (fun _ ~src:_ _ -> incr delivered);
  Simnet.Engine.on_message engine ~node:1 (fun api ~src:_ v ->
      api.Simnet.Engine.send ~dst:0 v);
  Simnet.Engine.on_give_up engine ~node:1 (fun _ ~dst msg ->
      abandoned := (dst, msg) :: !abandoned);
  Simnet.Engine.inject engine ~node:1 7;
  ignore (Simnet.Engine.run ~max_events:100_000 engine);
  Alcotest.(check int) "never delivered" 0 !delivered;
  Alcotest.(check (list (pair int int))) "give-up handler told" [ (0, 7) ]
    !abandoned;
  Alcotest.(check int) "counted" 1 (Simnet.Engine.gave_up engine);
  Alcotest.(check (list (pair int int))) "link declared dead" [ (1, 0) ]
    (Simnet.Engine.dead_links engine);
  (* A later send on the dead link fast-fails without touching the air. *)
  let before = Simnet.Engine.unicasts_sent engine in
  Simnet.Engine.inject engine ~node:1 1;
  ignore (Simnet.Engine.run engine);
  Alcotest.(check int) "fast-fail sends nothing" before
    (Simnet.Engine.unicasts_sent engine);
  Alcotest.(check (list (pair int int))) "second give-up" [ (0, 1); (0, 7) ]
    !abandoned

let test_crash_window_recovery () =
  (* The receiver's radio is down for the first 0.3 s; retransmissions
     with growing backoff must outlast the outage and deliver. *)
  let topo = chain 2 in
  let fault =
    Simnet.Fault.with_crashes (Simnet.Fault.none ~n:2) [ (0, 0., 0.3) ]
  in
  let engine =
    Simnet.Engine.create topo mica
      ~fault:(fault, Rng.create 5)
      ~payload_bytes:(fun _ -> 4)
      ()
  in
  let got = ref None in
  Simnet.Engine.on_message engine ~node:0 (fun api ~src:_ v ->
      got := Some (v, api.Simnet.Engine.time ()));
  Simnet.Engine.on_message engine ~node:1 (fun api ~src:_ v ->
      api.Simnet.Engine.send ~dst:0 v);
  Simnet.Engine.inject engine ~node:1 13;
  ignore (Simnet.Engine.run engine);
  (match !got with
  | None -> Alcotest.fail "message lost to a transient outage"
  | Some (v, at) ->
      Alcotest.(check int) "payload intact" 13 v;
      Alcotest.(check bool) "delivered after the radio came back" true
        (at >= 0.3));
  Alcotest.(check bool) "took retries" true
    (Simnet.Engine.retransmissions_sent engine > 0);
  Alcotest.(check (list (pair int int))) "no dead links" []
    (Simnet.Engine.dead_links engine)

let test_same_seed_same_run () =
  let run () =
    let topo = chain 3 in
    let engine =
      Simnet.Engine.create topo mica
        ~fault:
          ( Simnet.Fault.with_burst
              (Simnet.Fault.bernoulli ~n:3 ~drop:0.3)
              ~mean_length:0.05,
            Rng.create 11 )
        ~payload_bytes:(fun _ -> 6)
        ()
    in
    Simnet.Engine.on_message engine ~node:2 (fun api ~src:_ v ->
        api.Simnet.Engine.send ~dst:1 v);
    Simnet.Engine.on_message engine ~node:1 (fun api ~src:_ v ->
        api.Simnet.Engine.send ~dst:0 (v + 1));
    Simnet.Engine.on_message engine ~node:0 (fun _ ~src:_ _ -> ());
    for i = 0 to 9 do
      Simnet.Engine.inject engine ~node:2 i
    done;
    let t = Simnet.Engine.run engine in
    ( t,
      Simnet.Engine.total_energy engine,
      Simnet.Engine.retransmissions_sent engine,
      Simnet.Engine.dropped_frames engine,
      Simnet.Engine.duplicate_frames engine )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical repeat" true (a = b)

let test_combined_faults_deterministic () =
  (* All three fault layers at once: node 1 permanently crashed, burst
     windows opening over Bernoulli drops.  The relay through the crashed
     node must be abandoned (give-up handler and counter agree), and the
     composite run must be bit-identical under the same seed. *)
  let run () =
    let topo = chain 4 in
    let fault =
      Simnet.Fault.with_crashes
        (Simnet.Fault.with_burst
           (Simnet.Fault.bernoulli ~n:4 ~drop:0.1)
           ~mean_length:0.05)
        [ (1, 0., infinity) ]
    in
    let engine =
      Simnet.Engine.create topo mica
        ~fault:(fault, Rng.create 23)
        ~payload_bytes:(fun _ -> 6)
        ()
    in
    let delivered = ref 0 and abandoned = ref [] in
    Simnet.Engine.on_message engine ~node:3 (fun api ~src:_ v ->
        api.Simnet.Engine.send ~dst:2 v);
    Simnet.Engine.on_message engine ~node:2 (fun api ~src:_ v ->
        api.Simnet.Engine.send ~dst:1 v);
    Simnet.Engine.on_message engine ~node:1 (fun api ~src:_ v ->
        api.Simnet.Engine.send ~dst:0 v);
    Simnet.Engine.on_message engine ~node:0 (fun _ ~src:_ _ -> incr delivered);
    Simnet.Engine.on_give_up engine ~node:2 (fun _ ~dst msg ->
        abandoned := (dst, msg) :: !abandoned);
    Simnet.Engine.inject engine ~node:3 7;
    let t = Simnet.Engine.run ~max_events:1_000_000 engine in
    ( !delivered,
      !abandoned,
      Simnet.Engine.gave_up engine,
      Simnet.Engine.dead_links engine,
      Simnet.Engine.retransmissions_sent engine,
      Simnet.Engine.total_energy engine,
      t )
  in
  let ((delivered, abandoned, gave_up, dead_links, _, _, _) as a) = run () in
  Alcotest.(check int) "crash blocks delivery to the root" 0 delivered;
  Alcotest.(check (list (pair int int))) "hop 2->1 abandoned" [ (1, 7) ]
    abandoned;
  Alcotest.(check int) "give-up counter matches handler calls"
    (List.length abandoned) gave_up;
  Alcotest.(check (list (pair int int))) "the crashed link is declared dead"
    [ (2, 1) ] dead_links;
  let b = run () in
  Alcotest.(check bool) "bit-identical under the composite fault" true (a = b)

let test_engine_livelock_guard () =
  let topo = chain 2 in
  let engine = Simnet.Engine.create topo mica ~payload_bytes:(fun _ -> 0) () in
  (* Two nodes bounce a message forever. *)
  Simnet.Engine.on_message engine ~node:0 (fun api ~src:_ () ->
      api.Simnet.Engine.send ~dst:1 ());
  Simnet.Engine.on_message engine ~node:1 (fun api ~src:_ () ->
      api.Simnet.Engine.send ~dst:0 ());
  Simnet.Engine.inject engine ~node:0 ();
  (try
     ignore (Simnet.Engine.run ~max_events:1000 engine);
     Alcotest.fail "expected livelock failure"
   with Failure _ -> ())

let () =
  Alcotest.run "simnet"
    [
      ( "event_queue",
        [
          Alcotest.test_case "time order" `Quick test_queue_order;
          Alcotest.test_case "FIFO on ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "FIFO across interleaved pops" `Quick
            test_queue_fifo_across_pops;
          Alcotest.test_case "burst drain" `Quick test_queue_burst_drain;
          Alcotest.test_case "NaN rejected" `Quick test_queue_nan_rejected;
          Alcotest.test_case "random interleaving" `Quick test_queue_interleaved;
        ] );
      ( "engine",
        [
          Alcotest.test_case "hop-by-hop delivery" `Quick test_engine_delivery;
          Alcotest.test_case "energy conservation" `Quick test_engine_energy_conservation;
          Alcotest.test_case "non-neighbor rejected" `Quick test_engine_rejects_non_neighbor;
          Alcotest.test_case "broadcast and multicast" `Quick test_engine_broadcast_and_multicast;
          Alcotest.test_case "timers" `Quick test_engine_timer;
          Alcotest.test_case "failures inflate cost" `Quick test_engine_failures_inflate;
          Alcotest.test_case "livelock guard" `Quick test_engine_livelock_guard;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "lossless = legacy energy" `Quick
            test_reliable_lossless_equals_legacy;
          Alcotest.test_case "in order, exactly once at 50% loss" `Quick
            test_reliable_in_order_exactly_once;
          Alcotest.test_case "ACK loss makes suppressed duplicates" `Quick
            test_reliable_ack_loss_duplicates;
          Alcotest.test_case "dead link gives up and fast-fails" `Quick
            test_reliable_gives_up_on_dead_link;
          Alcotest.test_case "crash window outlasted by retries" `Quick
            test_crash_window_recovery;
          Alcotest.test_case "same seed, same run" `Quick test_same_seed_same_run;
          Alcotest.test_case "crash + burst + bernoulli composite" `Quick
            test_combined_faults_deterministic;
        ] );
    ]

(* Tests for the network substrate: MICA2 energy model, placements,
   spanning-tree topology, failures and the cost model. *)

let check_float = Alcotest.(check (float 1e-9))

(* ---- Mica2 ---- *)

let test_mica2_costs () =
  let m = Sensor.Mica2.default in
  let cb = Sensor.Mica2.per_byte_mj m in
  check_float "per-byte split" cb
    (Sensor.Mica2.send_byte_mj m +. Sensor.Mica2.recv_byte_mj m);
  check_float "empty unicast = cm" m.Sensor.Mica2.per_message_mj
    (Sensor.Mica2.unicast_bytes_mj m ~bytes:0);
  check_float "values scale"
    (m.Sensor.Mica2.per_message_mj
    +. (cb *. float_of_int (3 * m.Sensor.Mica2.bytes_per_value)))
    (Sensor.Mica2.unicast_values_mj m ~values:3);
  Alcotest.(check bool) "cm dominates one value" true
    (m.Sensor.Mica2.per_message_mj
    > cb *. float_of_int m.Sensor.Mica2.bytes_per_value);
  Alcotest.check_raises "negative size rejected"
    (Invalid_argument "Mica2.unicast_bytes_mj: negative size") (fun () ->
      ignore (Sensor.Mica2.unicast_bytes_mj m ~bytes:(-1)))

let test_mica2_broadcast () =
  let m = Sensor.Mica2.default in
  let c0 = Sensor.Mica2.broadcast_mj m ~receivers:0 ~bytes:10 in
  let c3 = Sensor.Mica2.broadcast_mj m ~receivers:3 ~bytes:10 in
  Alcotest.(check bool) "receivers add cost" true (c3 > c0);
  check_float "trigger is empty broadcast"
    (Sensor.Mica2.broadcast_mj m ~receivers:2 ~bytes:0)
    (Sensor.Mica2.trigger_mj m ~receivers:2)

(* ---- Placement ---- *)

let test_uniform_placement () =
  let rng = Rng.create 1 in
  let p = Sensor.Placement.uniform rng ~n:50 ~width:100. ~height:80. () in
  Alcotest.(check int) "node count" 50 (Sensor.Placement.n p);
  let root_pos = p.Sensor.Placement.positions.(p.Sensor.Placement.root) in
  check_float "root centered x" 50. root_pos.Sensor.Placement.x;
  check_float "root centered y" 40. root_pos.Sensor.Placement.y;
  Array.iter
    (fun q ->
      Alcotest.(check bool) "inside rectangle" true
        (q.Sensor.Placement.x >= 0.
        && q.Sensor.Placement.x <= 100.
        && q.Sensor.Placement.y >= 0.
        && q.Sensor.Placement.y <= 80.))
    p.Sensor.Placement.positions

let test_zones_placement () =
  let rng = Rng.create 2 in
  let p =
    Sensor.Placement.zones rng ~n_zones:6 ~per_zone:10 ~background:20
      ~width:100. ~height:100. ()
  in
  Alcotest.(check int) "node count" 81 (Sensor.Placement.n p);
  let per_zone = Array.make 6 0 in
  let background = ref 0 in
  Array.iteri
    (fun i z ->
      if i <> p.Sensor.Placement.root then
        if z >= 0 then per_zone.(z) <- per_zone.(z) + 1 else incr background)
    p.Sensor.Placement.zone;
  Array.iteri
    (fun z c -> Alcotest.(check int) (Printf.sprintf "zone %d size" z) 10 c)
    per_zone;
  Alcotest.(check int) "background size" 20 !background;
  Alcotest.(check int) "root not zoned" (-1)
    p.Sensor.Placement.zone.(p.Sensor.Placement.root)

let test_grid_placement () =
  let p = Sensor.Placement.grid ~rows:3 ~cols:4 ~spacing:2. in
  Alcotest.(check int) "node count" 12 (Sensor.Placement.n p);
  check_float "width" 6. p.Sensor.Placement.width;
  check_float "height" 4. p.Sensor.Placement.height

(* ---- Topology ---- *)

let chain_topology n =
  (* 0 <- 1 <- 2 <- ... <- n-1 *)
  Sensor.Topology.of_parents ~root:0 (Array.init n (fun i -> i - 1))

let star_topology n = Sensor.Topology.of_parents ~root:0 (Array.make n 0 |> fun a -> a.(0) <- -1; a)

let test_of_parents_chain () =
  let t = chain_topology 5 in
  Alcotest.(check int) "height" 4 (Sensor.Topology.height t);
  Alcotest.(check int) "subtree of root" 5 t.Sensor.Topology.subtree_size.(0);
  Alcotest.(check int) "subtree of leaf" 1 t.Sensor.Topology.subtree_size.(4);
  Alcotest.(check (list int)) "path to root" [ 3; 2; 1; 0 ]
    (Sensor.Topology.path_to_root t 3);
  Alcotest.(check bool) "ancestor reflexive" true
    (Sensor.Topology.is_ancestor t ~anc:2 ~desc:2);
  Alcotest.(check bool) "ancestor chain" true
    (Sensor.Topology.is_ancestor t ~anc:1 ~desc:4);
  Alcotest.(check bool) "not ancestor" false
    (Sensor.Topology.is_ancestor t ~anc:4 ~desc:1)

let test_of_parents_rejects_cycle () =
  (* 1 and 2 point at each other. *)
  let parent = [| -1; 2; 1 |] in
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Topology.of_parents: parent array contains a cycle")
    (fun () -> ignore (Sensor.Topology.of_parents ~root:0 parent))

let test_post_order_children_first () =
  let t = chain_topology 4 in
  Alcotest.(check (array int)) "post order" [| 3; 2; 1; 0 |]
    (Sensor.Topology.post_order t)

let test_descendants () =
  let t = star_topology 5 in
  Alcotest.(check int) "star height" 1 (Sensor.Topology.height t);
  Alcotest.(check (list int)) "leaf descendants" [ 3 ]
    (Sensor.Topology.descendants t 3);
  Alcotest.(check int) "root descendants" 5
    (List.length (Sensor.Topology.descendants t 0))

let test_build_connected () =
  let rng = Rng.create 3 in
  let p = Sensor.Placement.uniform rng ~n:60 ~width:60. ~height:60. () in
  let range = Sensor.Topology.min_connecting_range p in
  let t = Sensor.Topology.build p ~range:(range +. 1e-9) in
  Alcotest.(check int) "all nodes in tree" 60 t.Sensor.Topology.n;
  (* Each node's parent must be within radio range. *)
  Array.iteri
    (fun i par ->
      if par >= 0 then
        Alcotest.(check bool) "link within range" true
          (Sensor.Placement.dist p.Sensor.Placement.positions.(i)
             p.Sensor.Placement.positions.(par)
          <= range +. 1e-6))
    t.Sensor.Topology.parent

let test_build_disconnected () =
  let rng = Rng.create 4 in
  let p = Sensor.Placement.uniform rng ~n:30 ~width:100. ~height:100. () in
  let range = Sensor.Topology.min_connecting_range p in
  (try
     ignore (Sensor.Topology.build p ~range:(range *. 0.5));
     Alcotest.fail "expected Disconnected"
   with Sensor.Topology.Disconnected missing ->
     Alcotest.(check bool) "some nodes missing" true (missing <> []))

let test_build_min_hop () =
  (* With a generous range the tree must be a star (everyone 1 hop). *)
  let rng = Rng.create 5 in
  let p = Sensor.Placement.uniform rng ~n:20 ~width:10. ~height:10. () in
  let t = Sensor.Topology.build p ~range:100. in
  Alcotest.(check int) "height 1" 1 (Sensor.Topology.height t)

let min_range_matches_build =
  QCheck.Test.make ~name:"min_connecting_range is tight" ~count:50
    (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 10_000))
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 40 in
      let p =
        Sensor.Placement.uniform rng ~n ~width:50. ~height:50. ()
      in
      let r = Sensor.Topology.min_connecting_range p in
      (* Connected at r (+eps), disconnected just below it. *)
      let connected_at range =
        match Sensor.Topology.build p ~range with
        | _ -> true
        | exception Sensor.Topology.Disconnected _ -> false
      in
      connected_at (r +. 1e-9) && ((not (connected_at (r *. 0.999))) || r = 0.))

(* ---- Failure & Cost ---- *)

let test_failure_multiplier () =
  let f =
    {
      Sensor.Failure.fail_prob = [| 0.; 0.5 |];
      reroute_factor = [| 2.; 3. |];
      drop_prob = [| 0.; 0.5 |];
    }
  in
  check_float "no failure" 1. (Sensor.Failure.expected_multiplier f 0);
  check_float "half at 3x" 2. (Sensor.Failure.expected_multiplier f 1);
  check_float "no drops" 1. (Sensor.Failure.expected_transmissions f 0);
  check_float "half drops double the sends" 2.
    (Sensor.Failure.expected_transmissions f 1)

let test_cost_model () =
  let t = chain_topology 3 in
  let m = Sensor.Mica2.default in
  let c = Sensor.Cost.of_mica2 t m in
  check_float "message cost matches mica2"
    (Sensor.Mica2.unicast_values_mj m ~values:4)
    (Sensor.Cost.message_mj c ~node:1 ~values:4);
  let f =
    {
      Sensor.Failure.fail_prob = [| 0.; 1.; 0. |];
      reroute_factor = [| 1.; 2.; 1. |];
      drop_prob = [| 0.; 0.; 0. |];
    }
  in
  let c' = Sensor.Cost.with_failures c f in
  check_float "inflated edge doubles"
    (2. *. Sensor.Cost.message_mj c ~node:1 ~values:1)
    (Sensor.Cost.message_mj c' ~node:1 ~values:1);
  check_float "other edges unchanged"
    (Sensor.Cost.message_mj c ~node:2 ~values:1)
    (Sensor.Cost.message_mj c' ~node:2 ~values:1)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ min_range_matches_build ]

let () =
  Alcotest.run "sensor"
    [
      ( "mica2",
        [
          Alcotest.test_case "unicast costs" `Quick test_mica2_costs;
          Alcotest.test_case "broadcast costs" `Quick test_mica2_broadcast;
        ] );
      ( "placement",
        [
          Alcotest.test_case "uniform" `Quick test_uniform_placement;
          Alcotest.test_case "zones" `Quick test_zones_placement;
          Alcotest.test_case "grid" `Quick test_grid_placement;
        ] );
      ( "topology",
        [
          Alcotest.test_case "chain invariants" `Quick test_of_parents_chain;
          Alcotest.test_case "cycle rejected" `Quick test_of_parents_rejects_cycle;
          Alcotest.test_case "post order" `Quick test_post_order_children_first;
          Alcotest.test_case "descendants" `Quick test_descendants;
          Alcotest.test_case "build connected" `Quick test_build_connected;
          Alcotest.test_case "build disconnected" `Quick test_build_disconnected;
          Alcotest.test_case "min-hop tree" `Quick test_build_min_hop;
        ] );
      ( "failure_cost",
        [
          Alcotest.test_case "failure multiplier" `Quick test_failure_multiplier;
          Alcotest.test_case "cost model" `Quick test_cost_model;
        ] );
      ("properties", qcheck_cases);
    ]

(* Unit tests for the lib/obs telemetry stack: gating semantics of the
   metrics registry, histogram percentile/merge math, trace round-trips
   through the JSON-lines exporter, the bench gate's comparison rules, and
   an end-to-end check that a lossy simnet run's trace agrees with the
   engine's own energy ledger. *)

let cleanup () =
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ();
  Obs.Trace.install None

let with_clean f () = Fun.protect ~finally:cleanup f

(* ---- metrics ---- *)

let test_gated_counter () =
  let c = Obs.Metrics.counter "test.gated" in
  Obs.Metrics.incr c;
  Alcotest.(check int) "disabled incr is a no-op" 0 (Obs.Metrics.value c);
  Obs.Metrics.set_enabled true;
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  Alcotest.(check int) "enabled counts" 5 (Obs.Metrics.value c);
  let c' = Obs.Metrics.counter "test.gated" in
  Alcotest.(check int) "interned by name" 5 (Obs.Metrics.value c');
  Obs.Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Obs.Metrics.value c)

let test_local_counter () =
  let c = Obs.Metrics.local "test.local" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr c;
  Alcotest.(check int) "local counts while disabled" 2 (Obs.Metrics.value c);
  let c' = Obs.Metrics.local "test.local" in
  Alcotest.(check int) "local counters are fresh, not interned" 0
    (Obs.Metrics.value c');
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Alcotest.(check int) "registry reset leaves locals alone" 2
    (Obs.Metrics.value c)

let test_histogram_single () =
  Obs.Metrics.set_enabled true;
  let h = Obs.Metrics.histogram "test.hist.single" in
  Obs.Metrics.observe h 0.0042;
  Alcotest.(check int) "count" 1 (Obs.Metrics.hist_count h);
  (* Clamping to the observed extremes makes one sample exact at every
     percentile, not just somewhere inside its log bucket. *)
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "p%g exact" p)
        0.0042
        (Obs.Metrics.percentile h p))
    [ 0.; 50.; 99.; 100. ]

let test_histogram_boundaries () =
  Obs.Metrics.set_enabled true;
  let h = Obs.Metrics.histogram "test.hist.bounds" in
  List.iter (Obs.Metrics.observe h) [ 1.0; 2.0; 4.0; 8.0 ];
  (* Estimates interpolate geometrically inside the owning log bucket
     (one 8th of a decade wide) and are clamped to the observed extremes,
     so each percentile must land in its sample's bucket. *)
  let decade = 10. ** (1. /. float_of_int Obs.Metrics.buckets_per_decade) in
  let in_bucket name p sample =
    let v = Obs.Metrics.percentile h p in
    Alcotest.(check bool)
      (Printf.sprintf "%s=%g within [%g, %g]" name v (sample /. decade)
         (sample *. decade))
      true
      (v >= sample /. decade && v <= sample *. decade)
  in
  in_bucket "p0" 0. 1.0;
  in_bucket "p50" 50. 2.0;
  in_bucket "p100" 100. 8.0;
  Alcotest.(check (float 1e-12))
    "p100 clamps at the observed max" 8.0
    (Float.max 8.0 (Obs.Metrics.percentile h 100.));
  Alcotest.(check bool) "percentiles are monotone" true
    (Obs.Metrics.percentile h 0. <= Obs.Metrics.percentile h 50.
    && Obs.Metrics.percentile h 50. <= Obs.Metrics.percentile h 100.)

let test_histogram_merge () =
  Obs.Metrics.set_enabled true;
  let a = Obs.Metrics.histogram "test.hist.merge.a" in
  let b = Obs.Metrics.histogram "test.hist.merge.b" in
  let all = Obs.Metrics.histogram "test.hist.merge.all" in
  let xs = [ 0.001; 0.01; 0.02 ] and ys = [ 0.5; 3.0; 40.0; 41.0 ] in
  List.iter (Obs.Metrics.observe a) xs;
  List.iter (Obs.Metrics.observe b) ys;
  List.iter (Obs.Metrics.observe all) (xs @ ys);
  Obs.Metrics.merge_into ~into:a b;
  Alcotest.(check int)
    "merged count" (List.length xs + List.length ys)
    (Obs.Metrics.hist_count a);
  Alcotest.(check (float 1e-12)) "merged min" 0.001 (Obs.Metrics.hist_min a);
  Alcotest.(check (float 1e-12)) "merged max" 41.0 (Obs.Metrics.hist_max a);
  Alcotest.(check (float 1e-9))
    "merged sum"
    (Obs.Metrics.hist_sum all)
    (Obs.Metrics.hist_sum a);
  (* The shared bucket layout makes merge equivalent to observing the
     union: every percentile must agree exactly. *)
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "merged p%g = union p%g" p p)
        (Obs.Metrics.percentile all p)
        (Obs.Metrics.percentile a p))
    [ 0.; 25.; 50.; 75.; 90.; 99.; 100. ]

let test_disabled_noop () =
  let h = Obs.Metrics.histogram "test.hist.disabled" in
  Obs.Metrics.observe h 1.0;
  Alcotest.(check int) "registered histogram gated off" 0
    (Obs.Metrics.hist_count h);
  let lh = Obs.Metrics.local_histogram "test.hist.local" in
  Obs.Metrics.observe lh 1.0;
  Alcotest.(check int) "local histogram records anyway" 1
    (Obs.Metrics.hist_count lh);
  let t = Obs.Metrics.timer "test.timer.disabled" in
  let r = Obs.Metrics.time t (fun () -> 42) in
  Alcotest.(check int) "timed thunk still runs" 42 r;
  Alcotest.(check int) "disabled timer records nothing" 0
    (Obs.Metrics.hist_count (Obs.Metrics.timer_histogram t));
  Obs.Metrics.set_enabled true;
  ignore (Obs.Metrics.time t (fun () -> ()));
  Alcotest.(check int) "enabled timer records" 1
    (Obs.Metrics.hist_count (Obs.Metrics.timer_histogram t))

(* ---- trace ---- *)

let sample_events =
  [
    {
      Obs.Trace.kind = Obs.Trace.Solve;
      name = "lp.revised";
      start_s = 100.5;
      dur_s = 0.25;
      attrs =
        [
          ("iterations", Obs.Trace.Int 42);
          ("status", Obs.Trace.Str "optimal");
          ("warm", Obs.Trace.Bool false);
          ("gap", Obs.Trace.Float 1.5e-9);
        ];
    };
    {
      Obs.Trace.kind = Obs.Trace.Retransmit;
      name = "simnet.engine";
      start_s = 0.;
      dur_s = 0.;
      attrs = [ ("src", Obs.Trace.Int 3); ("dst", Obs.Trace.Int 1) ];
    };
  ]

let test_emit_requires_sink () =
  Obs.Trace.emit Obs.Trace.Plan ~name:"nowhere" [];
  let sink = Obs.Trace.create () in
  Obs.Trace.install (Some sink);
  Obs.Trace.emit Obs.Trace.Plan ~name:"p1" [];
  Obs.Trace.emit Obs.Trace.Epoch ~name:"e1" [];
  Alcotest.(check int) "both events captured" 2 (Obs.Trace.length sink);
  Alcotest.(check (list string))
    "in emission order" [ "p1"; "e1" ]
    (List.map (fun e -> e.Obs.Trace.name) (Obs.Trace.events sink))

let test_jsonl_roundtrip () =
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Trace.to_file path sample_events;
      match Obs.Trace.read_jsonl path with
      | Error msg -> Alcotest.failf "read_jsonl: %s" msg
      | Ok events ->
          Alcotest.(check int) "event count" 2 (List.length events);
          let e = List.hd events in
          Alcotest.(check bool) "kind" true (e.Obs.Trace.kind = Obs.Trace.Solve);
          Alcotest.(check string) "name" "lp.revised" e.Obs.Trace.name;
          Alcotest.(check (float 1e-12)) "start_s" 100.5 e.Obs.Trace.start_s;
          Alcotest.(check (float 1e-12)) "dur_s" 0.25 e.Obs.Trace.dur_s;
          Alcotest.(check (option (float 1e-12)))
            "int attr via number" (Some 42.)
            (Obs.Trace.number e "iterations");
          Alcotest.(check (option (float 1e-18)))
            "float attr survives" (Some 1.5e-9) (Obs.Trace.number e "gap");
          Alcotest.(check bool)
            "string attr" true
            (Obs.Trace.find_attr e "status" = Some (Obs.Trace.Str "optimal"));
          Alcotest.(check bool)
            "bool attr" true
            (Obs.Trace.find_attr e "warm" = Some (Obs.Trace.Bool false)))

let test_csv_export () =
  let path = Filename.temp_file "obs_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Trace.to_csv_file path sample_events;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "header + one line per event" 3 (List.length lines);
      Alcotest.(check string) "header" "kind,name,start_s,dur_s,attrs"
        (List.hd lines))

(* ---- gate ---- *)

let gate_record ~ms ~iters =
  Obs.Json.Obj
    [
      ( "lp_solve_times",
        Obs.Json.List
          [
            Obs.Json.Obj
              [
                ("name", Obs.Json.Str "lp+lf");
                ("ms_per_solve", Obs.Json.Num ms);
                ("iterations", Obs.Json.Num iters);
              ];
          ] );
      ( "warm_start_replan",
        Obs.Json.Obj
          [
            ("cold_ms", Obs.Json.Num ms);
            ("warm_iterations", Obs.Json.Num 0.);
            ("objective_abs_gap", Obs.Json.Num 1e-9);
          ] );
      ( "pr1_seed_baseline",
        Obs.Json.Obj [ ("ms_per_solve", Obs.Json.Num 999.) ] );
    ]

let test_gate_flatten_classify () =
  let leaves = Obs.Gate.flatten (gate_record ~ms:10. ~iters:50.) in
  Alcotest.(check (option (float 0.)))
    "array path" (Some 10.)
    (List.assoc_opt "lp_solve_times[0].ms_per_solve" leaves);
  Alcotest.(check bool)
    "ms_per_solve gated as time" true
    (Obs.Gate.classify "lp_solve_times[0].ms_per_solve"
    = Some Obs.Gate.Time_ms);
  Alcotest.(check bool)
    "warm_iterations gated as iterations" true
    (Obs.Gate.classify "warm_start_replan.warm_iterations"
    = Some Obs.Gate.Iterations);
  Alcotest.(check bool)
    "frozen block never gated" true
    (Obs.Gate.classify "pr1_seed_baseline.ms_per_solve" = None);
  Alcotest.(check bool)
    "ungated numeric leaf" true
    (Obs.Gate.classify "warm_start_replan.objective_abs_gap" = None)

let test_gate_verdicts () =
  let baseline = gate_record ~ms:20. ~iters:100. in
  let pass fresh =
    (Obs.Gate.compare_values ~baseline ~fresh ()).Obs.Gate.pass
  in
  Alcotest.(check bool) "identity passes" true (pass baseline);
  Alcotest.(check bool) "within tolerance" true
    (pass (gate_record ~ms:25. ~iters:120.));
  Alcotest.(check bool) "iteration slack covers zero baselines" true
    (pass (gate_record ~ms:20. ~iters:101.));
  Alcotest.(check bool) "2x slower fails" false
    (pass (gate_record ~ms:40. ~iters:100.));
  Alcotest.(check bool) "2x iterations fails" false
    (pass (gate_record ~ms:20. ~iters:200.));
  Alcotest.(check bool) "2x faster fails too (stale baseline)" false
    (pass (gate_record ~ms:9. ~iters:100.));
  Alcotest.(check bool) "missing gated key fails" false
    (pass (Obs.Json.Obj [ ("unrelated", Obs.Json.Num 1.) ]));
  (* Sub-millisecond times are noise: skipped, reported, never failing. *)
  let v =
    Obs.Gate.compare_values
      ~baseline:(gate_record ~ms:0.2 ~iters:100.)
      ~fresh:(gate_record ~ms:0.9 ~iters:100.)
      ()
  in
  Alcotest.(check bool) "sub-ms skipped" true v.Obs.Gate.pass;
  Alcotest.(check bool) "skips are visible in the verdict" true
    (List.exists (fun o -> o.Obs.Gate.skipped) v.Obs.Gate.outcomes)

(* ---- end to end: simnet trace vs engine ledger ---- *)

let test_simnet_roundtrip () =
  Obs.Metrics.set_enabled true;
  let sink = Obs.Trace.create () in
  Obs.Trace.install (Some sink);
  let n = 20 and k = 4 in
  let s =
    Experiments.Setup.uniform_gaussian ~seed:7 ~n ~k ~n_samples:4 ~n_test:3 ()
  in
  let plan =
    Prospector.Plan.make s.Experiments.Setup.topo
      (Array.mapi
         (fun i size ->
           if i = s.Experiments.Setup.topo.Sensor.Topology.root then 0
           else Int.min size k)
         s.Experiments.Setup.topo.Sensor.Topology.subtree_size)
  in
  let fault = Simnet.Fault.bernoulli ~n ~drop:0.15 in
  let rng = Rng.create 99 in
  let engine_mj, engine_retrans =
    Array.fold_left
      (fun (mj, rt) readings ->
        let r =
          Prospector.Simnet_exec.collect s.Experiments.Setup.topo
            s.Experiments.Setup.mica ~fault:(fault, rng) plan ~k ~readings
        in
        ( mj +. r.Prospector.Simnet_exec.total_mj,
          rt + r.Prospector.Simnet_exec.retransmissions ))
      (0., 0) s.Experiments.Setup.test_epochs
  in
  (* Round-trip the whole trace through the JSONL exporter before reading
     the epoch spans back out. *)
  let path = Filename.temp_file "obs_simnet" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Trace.to_file path (Obs.Trace.events sink);
      match Obs.Trace.read_jsonl path with
      | Error msg -> Alcotest.failf "read_jsonl: %s" msg
      | Ok events ->
          let epochs =
            List.filter (fun e -> e.Obs.Trace.kind = Obs.Trace.Epoch) events
          in
          Alcotest.(check int) "one epoch span per collect" 3
            (List.length epochs);
          let num key e =
            Option.value ~default:0. (Obs.Trace.number e key)
          in
          let total key =
            List.fold_left (fun acc e -> acc +. num key e) 0. epochs
          in
          Alcotest.(check (float 1e-6))
            "trace energy equals the engine ledger" engine_mj
            (total "energy_mj");
          Alcotest.(check (float 0.))
            "trace retransmissions match" (float_of_int engine_retrans)
            (total "retransmissions"))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "gated counter" `Quick
            (with_clean test_gated_counter);
          Alcotest.test_case "local counter" `Quick
            (with_clean test_local_counter);
          Alcotest.test_case "single-sample histogram" `Quick
            (with_clean test_histogram_single);
          Alcotest.test_case "bucket boundaries" `Quick
            (with_clean test_histogram_boundaries);
          Alcotest.test_case "merge semantics" `Quick
            (with_clean test_histogram_merge);
          Alcotest.test_case "disabled mode is a no-op" `Quick
            (with_clean test_disabled_noop);
        ] );
      ( "trace",
        [
          Alcotest.test_case "emit requires a sink" `Quick
            (with_clean test_emit_requires_sink);
          Alcotest.test_case "jsonl round trip" `Quick
            (with_clean test_jsonl_roundtrip);
          Alcotest.test_case "csv export" `Quick (with_clean test_csv_export);
        ] );
      ( "gate",
        [
          Alcotest.test_case "flatten and classify" `Quick
            (with_clean test_gate_flatten_classify);
          Alcotest.test_case "verdicts" `Quick (with_clean test_gate_verdicts);
        ] );
      ( "simnet",
        [
          Alcotest.test_case "trace agrees with engine ledger" `Quick
            (with_clean test_simnet_roundtrip);
        ] );
    ]

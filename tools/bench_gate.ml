(* CI perf-regression gate: compare a freshly generated BENCH_*.json
   against the committed baseline (see Obs.Gate for the key selection and
   tolerance semantics).  Exit 0 on pass, 1 on regression, 2 on usage or
   unreadable input.

   usage: bench_gate [--tolerance F] [--min-ms F] --self-test
          bench_gate [--tolerance F] [--min-ms F] BASELINE FRESH *)

let usage () =
  prerr_endline
    "usage: bench_gate [--tolerance F] [--min-ms F] (BASELINE FRESH | \
     --self-test)";
  exit 2

(* The gate gating itself: a synthetic record must pass against itself and
   fail once a gated baseline key is inflated 2x.  Run in CI before the
   real comparisons so a broken comparator can never wave regressions
   through. *)
let self_test () =
  let record ?(mj = 6.5) ?(hits = 300.) ~ms ~iters () =
    Obs.Json.Obj
      [
        ( "lp_solve_times",
          Obs.Json.List
            [
              Obs.Json.Obj
                [
                  ("name", Obs.Json.Str "lp+lf");
                  ("ms_per_solve", Obs.Json.Num ms);
                  ("iterations", Obs.Json.Num iters);
                ];
            ] );
        ( "warm_start_replan",
          Obs.Json.Obj
            [ ("cold_ms", Obs.Json.Num ms); ("warm_iterations", Obs.Json.Num 0.) ]
        );
        (* Churn-record keys: surgery latency is tolerance-gated like any
           solve time; the install/recovery energies are model-derived and
           deterministic per seed, so the gate holds them exact. *)
        ( "churn",
          Obs.Json.Obj
            [
              ("repair_ms", Obs.Json.Num ms);
              ("recovery_mj", Obs.Json.Num mj);
              ("delta_install_mj", Obs.Json.Num (mj /. 2.));
            ] );
        (* Serve-record keys: latencies are tolerance-gated; the cache/pool
           tallies come from a fixed seeded query stream, so the gate holds
           them exactly — a count drift is an admission/caching behavior
           change, never noise. *)
        ( "serve",
          Obs.Json.Obj
            [
              ("pooled_warm_ms", Obs.Json.Num (ms /. 4.));
              ("makespan_ms", Obs.Json.Num (8. *. ms));
              ("cache_hits", Obs.Json.Num hits);
              ("coalesced", Obs.Json.Num 25.);
            ] );
        (* Frozen history must never be gated, however wrong it looks. *)
        ( "pr1_seed_baseline",
          Obs.Json.Obj [ ("ms_per_solve", Obs.Json.Num (100. *. ms)) ] );
      ]
  in
  let baseline = record ~ms:20. ~iters:100. () in
  let check name ~expect fresh =
    let v = Obs.Gate.compare_values ~baseline ~fresh () in
    if v.Obs.Gate.pass <> expect then begin
      Printf.eprintf "self-test %s: expected %s\n%!" name
        (if expect then "pass" else "fail");
      Format.eprintf "%a@." Obs.Gate.pp_verdict v;
      exit 1
    end
  in
  check "identity" ~expect:true baseline;
  check "within tolerance" ~expect:true (record ~ms:24. ~iters:101. ());
  check "2x time inflation" ~expect:false (record ~ms:40. ~iters:100. ());
  check "2x iteration inflation" ~expect:false (record ~ms:20. ~iters:200. ());
  check "large improvement also fails" ~expect:false
    (record ~ms:5. ~iters:100. ());
  (* Energies are deterministic: a drift far inside the relative
     tolerance still fails, while float noise at 1e-9 scale passes. *)
  check "energy drift" ~expect:false (record ~mj:6.51 ~ms:20. ~iters:100. ());
  check "energy fp noise" ~expect:true
    (record ~mj:(6.5 +. 1e-10) ~ms:20. ~iters:100. ());
  (* Serving counts are exact: off by one fails, identical passes (already
     covered by the identity check above). *)
  check "cache-count drift" ~expect:false
    (record ~hits:301. ~ms:20. ~iters:100. ());
  (let missing = Obs.Json.Obj [ ("unrelated", Obs.Json.Num 1.) ] in
   check "missing gated keys" ~expect:false missing);
  print_endline "bench_gate self-test: PASS"

let () =
  let tolerance = ref None and min_ms = ref None in
  let positional = ref [] and selftest = ref false in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0. -> tolerance := Some f
        | _ -> usage ());
        parse rest
    | "--min-ms" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f >= 0. -> min_ms := Some f
        | _ -> usage ());
        parse rest
    | "--self-test" :: rest ->
        selftest := true;
        parse rest
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: rest ->
        positional := arg :: !positional;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match (!selftest, List.rev !positional) with
  | true, [] -> self_test ()
  | false, [ baseline; fresh ] -> (
      match
        Obs.Gate.compare_files ?tolerance:!tolerance ?min_ms:!min_ms ~baseline
          ~fresh ()
      with
      | Error msg ->
          Printf.eprintf "bench_gate: %s\n" msg;
          exit 2
      | Ok verdict ->
          Printf.printf "== %s vs %s ==\n" baseline fresh;
          Format.printf "%a@." Obs.Gate.pp_verdict verdict;
          exit (if verdict.Obs.Gate.pass then 0 else 1))
  | _ -> usage ()

(* R6 — certification taint.

   The safety invariant (PR 3, PR 9): a plan or LP solution that did not
   come through the certified chain must never reach a dissemination or
   serving sink.  The runtime enforces it with provenance gates; this
   module enforces it statically on the typedtree.

   Taint is minted by the registry's uncertified producers (raw
   [Revised.solve], [Dense_simplex.solve], [Model.solve] outside lib/lp)
   and by hand-built solution records; it propagates through let
   bindings, tuples/constructors/records, field projections, match
   scrutinees and — conservatively — through calls whose callee is not a
   registered sanitizer; it dies at the certified chain
   ([Robust_plan.*], [Model.solve_certified], [Certify.*], the planner
   fronts).  Cross-module flow uses a summary pass: every top-level
   binding whose definition is tainted is recorded under its
   "Module.value" name, and references from other compilation units pick
   the chain up there.  Findings fire at the sink and print the def-use
   path hop by hop. *)

open Typedtree

(* One def-use hop, newest first in a chain.  A non-empty chain is a
   tainted value; [] is clean. *)
type hop = { h_desc : string; h_file : string; h_line : int }

type t = { summaries : (string, hop list) Hashtbl.t }

let create () = { summaries = Hashtbl.create 64 }

(* Per-file value environment: Ident.unique_name -> chain.  Stamps are
   unique within a compilation unit, so scoping needs no stack. *)
type env = { vars : (string, hop list) Hashtbl.t }

let env_create () = { vars = Hashtbl.create 32 }

let hop desc (loc : Location.t) =
  {
    h_desc = desc;
    h_file = loc.loc_start.pos_fname;
    h_line = loc.loc_start.pos_lnum;
  }

let short_name p =
  match Lint_rules.candidates p with [ full ] -> full | _ :: short :: _ -> short | [] -> Path.name p

let summary_key modname name =
  Lint_rules.normalize_modname modname ^ "." ^ name

(* Cross-module lookup: try the "Module.value" suffix of the resolved
   path against the summary table. *)
let summary_of t (p : Path.t) =
  let rec probe = function
    | [] -> None
    | c :: rest -> (
        match Hashtbl.find_opt t.summaries c with
        | Some chain -> Some chain
        | None -> probe rest)
  in
  probe (Lint_rules.candidates p)

(* Immediate sub-expressions of any node, version-portably: let the
   default iterator enumerate children, but do not recurse.  This is the
   fallback for constructors the evaluator does not model explicitly
   (functions included: a function is as tainted as its body). *)
let children_exprs (e : expression) =
  let acc = ref [] in
  let hook = { Tast_iterator.default_iterator with expr = (fun _ c -> acc := c :: !acc) } in
  Tast_iterator.default_iterator.expr hook e;
  List.rev !acc

let solution_record_type ~path (ty : Types.type_expr) =
  (not (Lint_rules.r6_producer_zone path))
  &&
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
      Lint_rules.type_name_matches Lint_rules.r6_solution_type_names p
  | _ -> false

let join ts = match List.find_opt (fun t -> t <> []) ts with Some t -> t | None -> []

let rec taint_of t (ctx : Lint_ctx.ctx) env (e : expression) : hop list =
  match e.exp_desc with
  | Texp_constant _ -> []
  | Texp_ident (p, _, _) -> (
      match p with
      | Path.Pident id -> (
          match Hashtbl.find_opt env.vars (Ident.unique_name id) with
          | Some chain -> chain
          | None -> [])
      | _ -> (
          if Lint_rules.r6_sanitizer p then []
          else
            match summary_of t p with
            | Some chain -> hop (short_name p) e.exp_loc :: chain
            | None -> []))
  | Texp_apply (fn, args) -> (
      let arg_exprs = List.filter_map (fun (_, a) -> a) args in
      match fn.exp_desc with
      | Texp_ident (p, _, _) when Lint_rules.r6_sanitizer p -> []
      | Texp_ident (p, _, _)
        when Lint_rules.r6_producer p
             && not (Lint_rules.r6_producer_zone ctx.path) ->
          [ hop ("raw " ^ short_name p) fn.exp_loc ]
      | Texp_ident (p, _, _) -> (
          (* calling a tainted function (a summarized cross-module value
             or a local binding) taints the result; otherwise taint
             passes conservatively through unknown callees *)
          match taint_of t ctx env fn with
          | _ :: _ as chain -> chain
          | [] -> through_args t ctx env (short_name p) fn.exp_loc arg_exprs)
      | _ ->
          join
            (taint_of t ctx env fn
            :: List.map (taint_of t ctx env) arg_exprs))
  | Texp_let (_, vbs, body) ->
      List.iter (record_vb t ctx env) vbs;
      taint_of t ctx env body
  | Texp_match (scrut, cases, _) ->
      let ts = taint_of t ctx env scrut in
      if ts <> [] then
        List.iter (fun c -> bind_pattern t ctx env c.c_lhs ts) cases;
      join (List.map (fun c -> taint_of t ctx env c.c_rhs) cases)
  | Texp_record { fields; extended_expression; _ } ->
      if solution_record_type ~path:ctx.path e.exp_type then
        [ hop "hand-built solution record" e.exp_loc ]
      else
        let field_taints =
          Array.to_list fields
          |> List.map (fun (_, def) ->
                 match def with
                 | Overridden (_, fe) -> taint_of t ctx env fe
                 | Kept _ -> [])
        in
        let ext =
          match extended_expression with
          | Some b -> taint_of t ctx env b
          | None -> []
        in
        join (ext :: field_taints)
  | Texp_field (b, _, _) -> taint_of t ctx env b
  | Texp_construct (_, _, es) | Texp_tuple es ->
      join (List.map (taint_of t ctx env) es)
  | Texp_variant (_, eo) -> (
      match eo with Some e' -> taint_of t ctx env e' | None -> [])
  | Texp_sequence (_, b) -> taint_of t ctx env b
  | Texp_ifthenelse (_, a, b) ->
      join
        (taint_of t ctx env a
        :: (match b with Some e' -> [ taint_of t ctx env e' ] | None -> []))
  | _ -> join (List.map (taint_of t ctx env) (children_exprs e))

and through_args t ctx env name loc arg_exprs =
  match
    List.find_map
      (fun a ->
        match taint_of t ctx env a with [] -> None | chain -> Some chain)
      arg_exprs
  with
  | Some chain -> hop ("through " ^ name) loc :: chain
  | None -> []

and bind_pattern :
    type k. t -> Lint_ctx.ctx -> env -> k general_pattern -> hop list -> unit =
 fun t ctx env pat chain ->
  ignore t;
  ignore ctx;
  List.iter
    (fun id ->
      Hashtbl.replace env.vars (Ident.unique_name id)
        (hop (Ident.name id) pat.pat_loc :: chain))
    (pat_bound_idents pat)

(* Record a value binding into the environment (tainted bindings only;
   absence means clean).  Called both by the engine's traversal and by
   the evaluator's own [Texp_let] case — unique names make the double
   write idempotent. *)
and record_vb t ctx env (vb : value_binding) =
  match taint_of t ctx env vb.vb_expr with
  | [] -> ()
  | chain -> bind_pattern t ctx env vb.vb_pat chain

(* ---- pass 1: cross-module summaries ---- *)

(* Top-level bindings only: module-level values are the cross-module
   surface.  Local bindings never escape a compilation unit and are
   handled by the per-file environment. *)
let summarize t ctx ~modname (str : structure) =
  let env = env_create () in
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              record_vb t ctx env vb;
              List.iter
                (fun id ->
                  match Hashtbl.find_opt env.vars (Ident.unique_name id) with
                  | Some chain ->
                      Hashtbl.replace t.summaries
                        (summary_key modname (Ident.name id))
                        chain
                  | None -> ())
                (pat_bound_idents vb.vb_pat))
            vbs
      | _ -> ())
    str.str_items

(* ---- pass 2: sink checks ---- *)

let render_chain chain =
  chain
  |> List.map (fun h -> Printf.sprintf "%s (%s:%d)" h.h_desc h.h_file h.h_line)
  |> String.concat " <- "

let report_sink ctx ~sink ~loc chain =
  Lint_ctx.report ctx ~rule:"R6" ~loc
    (Printf.sprintf
       "uncertified LP value reaches %s; only the certified chain \
        (Robust_plan / Model.solve_certified / Certify) may feed \
        dissemination or serving.  Def-use path: %s"
       sink (render_chain chain))

(* A call to a registered sink: every argument must be clean. *)
let check_sink_apply t ctx env (p : Path.t) args (loc : Location.t) =
  if Lint_rules.r6_sink p then
    List.iter
      (fun (_, a) ->
        match a with
        | None -> ()
        | Some arg -> (
            match taint_of t ctx env arg with
            | [] -> ()
            | chain -> report_sink ctx ~sink:(short_name p) ~loc chain))
      args

(* Construction of a serving-response record: every field must be clean. *)
let check_sink_record t ctx env (e : expression) =
  match e.exp_desc with
  | Texp_record { fields; _ } -> (
      match Types.get_desc e.exp_type with
      | Types.Tconstr (p, _, _)
        when Lint_rules.r6_sink_record ~path:ctx.Lint_ctx.path p
        ->
          Array.iter
            (fun ((ld : Types.label_description), def) ->
              match def with
              | Overridden (_, fe) -> (
                  match taint_of t ctx env fe with
                  | [] -> ()
                  | chain ->
                      report_sink ctx
                        ~sink:
                          (Printf.sprintf "response field '%s'" ld.lbl_name)
                        ~loc:e.exp_loc chain)
              | Kept _ -> ())
            fields
      | _ -> ())
  | _ -> ()

(* A single lint finding: a named rule firing at a source location.  The
   baseline key deliberately omits the column and message so accepted
   legacy sites survive message-wording tweaks but not code motion. *)

type t = {
  rule : string; (* "R1" .. "R7", or "PARSE" for files with no typedtree *)
  file : string; (* repo-relative path, '/'-separated *)
  line : int;
  col : int;
  message : string;
}

let make ~rule ~file ~line ~col message = { rule; file; line; col; message }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let baseline_key t = Printf.sprintf "%s %s:%d" t.rule t.file t.line

let to_string t =
  Printf.sprintf "%s:%d:%d: %s %s" t.file t.line t.col t.rule t.message

let to_json ?(baselined = false) t =
  Obs.Json.Obj
    [
      ("rule", Obs.Json.Str t.rule);
      ("file", Obs.Json.Str t.file);
      ("line", Obs.Json.Num (float_of_int t.line));
      ("col", Obs.Json.Num (float_of_int t.col));
      ("message", Obs.Json.Str t.message);
      ("baselined", Obs.Json.Bool baselined);
    ]

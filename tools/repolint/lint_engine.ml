(* Typedtree traversal wiring the rules to compilation units.

   The engine consumes dune-produced .cmt files (Cmt_format) and walks
   the embedded typedtree with a [Tast_iterator], so every identifier is
   a *resolved* [Path.t] (aliases and [open]s cannot hide [List.hd]) and
   every expression carries its instantiated type (R3 checks the actual
   comparator instantiation; R7 classifies captured state nominally).

   Two passes per run:

   - [summarize] (pass 1, all files): records cross-module taint
     summaries for top-level bindings (Lint_taint).
   - [lint_cmt] (pass 2, per file): runs R1-R7.  The traversal carries a
     [Lint_ctx.ctx]: a stack of [@lint.allow "Rn"] scopes (expression
     and let-binding attributes, plus file-wide [@@@lint.allow]), and a
     set of "sanctioned" source ranges recorded by parent nodes before
     descending — e.g. the left-hand side of
     [Hashtbl.fold ... |> List.sort] is sanctioned for R2, and an
     equality with a ground-literal operand is sanctioned for R3.
     Parents are visited before children, so sanctions are always
     registered before the identifiers they cover are checked.

   Version portability: CI builds this against both OCaml 5.1 and 5.2,
   whose typedtrees differ (notably [Texp_function]).  The engine only
   matches constructors stable across both and falls back to
   [Typedtree.pat_bound_idents] plus the default iterator for everything
   else — never destructure [Texp_function] payloads here. *)

open Typedtree

type result = { findings : Finding.t list; suppressed : (string * int) list }

(* ---- expression shape predicates ---- *)

let ident_path (e : expression) =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

(* Ground values: constants and constructors/tuples of ground values.
   Comparing against one is deterministic whatever the type. *)
let rec ground (e : expression) =
  match e.exp_desc with
  | Texp_constant _ -> true
  | Texp_construct (_, _, args) -> List.for_all ground args
  | Texp_variant (_, eo) -> ( match eo with None -> true | Some a -> ground a)
  | Texp_tuple es -> List.for_all ground es
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, [ (_, Some a) ])
    when Lint_rules.path_matches [ "~-"; "~-." ] p ->
      ground a
  | _ -> false

(* The typer rewrites [x |> f y] and [f y @@ x] into nested direct
   applications — [(f y) x] — so pipes never survive into the typedtree.
   The head ident of a (possibly curried) application chain is the real
   callee. *)
let rec head_path (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_apply (fn, _) -> head_path fn
  | _ -> None

let sort_sinkish (e : expression) =
  match head_path e with Some p -> Lint_rules.sort_sink p | None -> false

let first_arrow_arg ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | _ -> None

let type_to_string ty = Format.asprintf "%a" Printtyp.type_expr ty

(* ---- per-node checks ---- *)

let check_ident ctx (p : Path.t) (e : expression) =
  let loc = e.exp_loc in
  let name p =
    match Lint_rules.candidates p with n :: _ -> n | [] -> Path.name p
  in
  if Lint_rules.r1_always_forbidden p then
    Lint_ctx.report ctx ~rule:"R1" ~loc
      (Printf.sprintf
         "non-deterministic primitive %s; thread a Rng.t (lib/rng) or use \
          Obs.Trace.now"
         (name p))
  else if
    Lint_rules.r1_random p
    && not
         (Lint_rules.r1_seeded_state p
         && Lint_rules.r1_seeded_state_ok ctx.Lint_ctx.path)
  then
    Lint_ctx.report ctx ~rule:"R1" ~loc
      (Printf.sprintf
         "ambient global-state randomness %s; thread a Rng.t (lib/rng), or \
          in test/ an explicitly seeded Random.State"
         (name p));
  if Lint_rules.r2_forbidden p then
    Lint_ctx.report ctx ~rule:"R2" ~loc
      (Printf.sprintf
         "%s leaks hash-order; sort the result or mark the site with \
          [@lint.allow \"R2\"]"
         (name p));
  if Lint_rules.r3_comparator p || Lint_rules.r3_equality p then begin
    match first_arrow_arg e.exp_type with
    | Some arg when Lint_rules.safe_structure arg -> ()
    | arg ->
        let shown =
          match arg with Some a -> type_to_string a | None -> "_"
        in
        Lint_ctx.report ctx ~rule:"R3" ~loc
          (Printf.sprintf
             "polymorphic %s instantiated at non-scalar type %s; use a \
              typed comparator (Int.compare, Float.equal, a record \
              comparator) or compare a scalar key"
             (name p) shown)
  end;
  if Lint_rules.r4_forbidden p then
    Lint_ctx.report ctx ~rule:"R4" ~loc
      (Printf.sprintf
         "partial accessor %s in a planner path; use the _opt variant or a \
          match that names the missing node/variable"
         (name p));
  if Lint_rules.r5_forbidden p then
    Lint_ctx.report ctx ~rule:"R5" ~loc
      (Printf.sprintf
         "stdout printing (%s) in lib/; take a Format.formatter argument \
          instead"
         (name p))

let check_apply ctx taint env defs (fn : expression)
    (args : (Asttypes.arg_label * expression option) list) =
  (* curried continuation of a sort-sink application: the argument being
     sorted (e.g. the fold output piped in) is order-safe *)
  if ident_path fn = None && sort_sinkish fn then
    List.iter
      (fun (_, a) ->
        match a with
        | Some a -> Lint_ctx.sanction ctx "R2" a.exp_loc
        | None -> ())
      args;
  match ident_path fn with
  | None -> ()
  | Some p ->
      (match (Lint_rules.candidates p, args) with
      (* [fold ... |> List.sort ...] and [List.sort ... @@ fold ...] are
         order-safe: the sink re-establishes a canonical order. *)
      | [ "|>" ], [ (_, Some lhs); (_, Some rhs) ] when sort_sinkish rhs ->
          Lint_ctx.sanction ctx "R2" lhs.exp_loc
      | [ "@@" ], [ (_, Some lhs); (_, Some rhs) ] when sort_sinkish lhs ->
          Lint_ctx.sanction ctx "R2" rhs.exp_loc
      | _ when Lint_rules.sort_sink p ->
          List.iter
            (fun (_, a) ->
              match a with
              | Some a -> Lint_ctx.sanction ctx "R2" a.exp_loc
              | None -> ())
            args
      | _ -> ());
      let arg_exprs = List.filter_map (fun (_, a) -> a) args in
      (* compare/min/max applied to ground values only is harmless, as is
         =/<> against a ground literal (the dominant test-assert shape). *)
      if
        Lint_rules.r3_comparator p
        && arg_exprs <> []
        && List.for_all ground arg_exprs
      then Lint_ctx.sanction ctx "R3" fn.exp_loc;
      if Lint_rules.r3_equality p && List.exists ground arg_exprs then
        Lint_ctx.sanction ctx "R3" fn.exp_loc;
      Lint_taint.check_sink_apply taint ctx env p args fn.exp_loc;
      if Lint_rules.r7_spawn p then
        Lint_domain.check_spawn ctx defs ~args ~loc:fn.exp_loc

(* ---- the iterator ---- *)

let toplevel_name (vb : value_binding) =
  match pat_bound_idents vb.vb_pat with
  | id :: _ -> Ident.name id
  | [] -> ""

let make_iterator (ctx : Lint_ctx.ctx) taint env defs =
  let super = Tast_iterator.default_iterator in
  let expr self e =
    let allows =
      Lint_ctx.allow_rules_of_attrs e.exp_attributes
      @ List.concat_map
          (fun (_, _, attrs) -> Lint_ctx.allow_rules_of_attrs attrs)
          e.exp_extra
    in
    ctx.allow_stack <- allows :: ctx.allow_stack;
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> check_ident ctx p e
    | Texp_apply (fn, args) -> check_apply ctx taint env defs fn args
    | Texp_match (scrut, cases, _) ->
        (* bind case variables of a tainted scrutinee before the rhs is
           traversed and its sinks checked *)
        let ts = Lint_taint.taint_of taint ctx env scrut in
        if ts <> [] then
          List.iter
            (fun c -> Lint_taint.bind_pattern taint ctx env c.c_lhs ts)
            cases
    | Texp_record _ -> Lint_taint.check_sink_record taint ctx env e
    | _ -> ());
    super.expr self e;
    ctx.allow_stack <- List.tl ctx.allow_stack
  in
  let value_binding self vb =
    let allows = Lint_ctx.allow_rules_of_attrs vb.vb_attributes in
    ctx.allow_stack <- allows :: ctx.allow_stack;
    Lint_domain.record_def defs vb;
    Lint_taint.record_vb taint ctx env vb;
    super.value_binding self vb;
    ctx.allow_stack <- List.tl ctx.allow_stack
  in
  let structure_item self it =
    match it.str_desc with
    | Tstr_value (_, vbs) ->
        (* track the enclosing top-level binding for the R7 allowlist *)
        List.iter
          (fun vb ->
            ctx.toplevel <- toplevel_name vb;
            self.Tast_iterator.value_binding self vb)
          vbs;
        ctx.toplevel <- ""
    | Tstr_attribute a ->
        ctx.file_allows <-
          Lint_ctx.allow_rules_of_attrs [ a ] @ ctx.file_allows;
        super.structure_item self it
    | _ -> super.structure_item self it
  in
  let signature_item self it =
    (match it.sig_desc with
    | Tsig_attribute a ->
        ctx.file_allows <- Lint_ctx.allow_rules_of_attrs [ a ] @ ctx.file_allows
    | _ -> ());
    super.signature_item self it
  in
  { super with expr; value_binding; structure_item; signature_item }

(* ---- entry points ---- *)

(* PARSE is the pseudo-rule for files the engine cannot analyse: an
   unreadable or typedtree-less .cmt, or a source with no .cmt at all
   (it does not compile, or the build is stale).  Such files must not
   silently pass. *)
let analysis_failure ~path reason =
  {
    findings = [ Finding.make ~rule:"PARSE" ~file:path ~line:1 ~col:0 reason ];
    suppressed = [];
  }

let lint_annots ~taint ~path (annots : Cmt_format.binary_annots) : result =
  let ctx = Lint_ctx.create path in
  let env = Lint_taint.env_create () in
  let defs = Lint_domain.defs_create () in
  let iter = make_iterator ctx taint env defs in
  match annots with
  | Cmt_format.Implementation str ->
      iter.structure iter str;
      {
        findings = List.sort Finding.compare ctx.findings;
        suppressed = ctx.suppressed;
      }
  | Cmt_format.Interface sg ->
      iter.signature iter sg;
      {
        findings = List.sort Finding.compare ctx.findings;
        suppressed = ctx.suppressed;
      }
  | _ ->
      analysis_failure ~path "typedtree unavailable (partial or packed .cmt)"

(* [path] is the repo-relative logical path (rule scoping + reporting);
   [cmt_path] is where the typedtree lives.  Tests pair fixture .cmt
   files with synthetic logical paths. *)
let lint_cmt ~taint ~path cmt_path : result =
  match Cmt_index.read cmt_path with
  | Some entry -> lint_annots ~taint ~path entry.Cmt_index.annots
  | None -> analysis_failure ~path ("unreadable .cmt: " ^ cmt_path)

let missing_cmt ~path : result =
  analysis_failure ~path
    "no typedtree (.cmt) found under the build root; the file does not \
     compile or the build is stale — run the build first (make lint does)"

(* Pass 1: record cross-module taint summaries for one file. *)
let summarize ~taint ~path cmt_path =
  match Cmt_index.read cmt_path with
  | Some { Cmt_index.annots = Cmt_format.Implementation str; modname; _ } ->
      Lint_taint.summarize taint (Lint_ctx.create path) ~modname str
  | _ -> ()

(* Parsetree traversal wiring the rules to source files.

   The engine walks each compilation unit with an [Ast_iterator] carrying
   mutable context: a stack of [@lint.allow "Rn"] scopes (expression and
   let-binding attributes, plus file-wide [@@@lint.allow]), and a set of
   "sanctioned" source ranges recorded by parent nodes before descending —
   e.g. the left-hand side of [Hashtbl.fold ... |> List.sort] is sanctioned
   for R2, and a [compare] applied to literals only is sanctioned for R3.
   Parents are visited before children, so sanctions are always registered
   before the identifiers they cover are checked. *)

open Parsetree

type ctx = {
  path : string; (* repo-relative, used for rule scoping and reporting *)
  mutable allow_stack : string list list;
  mutable file_allows : string list;
  mutable sanctioned : (string * int * int) list; (* rule, cnum range *)
  mutable findings : Finding.t list;
}

let line_col (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let allowed ctx rule =
  List.exists (List.exists (String.equal rule)) ctx.allow_stack
  || List.exists (String.equal rule) ctx.file_allows

let sanctioned ctx rule (loc : Location.t) =
  List.exists
    (fun (r, s, e) ->
      String.equal r rule && s <= loc.loc_start.pos_cnum
      && loc.loc_end.pos_cnum <= e)
    ctx.sanctioned

let sanction ctx rule (loc : Location.t) =
  ctx.sanctioned <-
    (rule, loc.loc_start.pos_cnum, loc.loc_end.pos_cnum) :: ctx.sanctioned

let report ctx ~rule ~loc msg =
  if
    Lint_rules.active_for ctx.path rule
    && (not (allowed ctx rule))
    && not (sanctioned ctx rule loc)
  then begin
    let line, col = line_col loc in
    ctx.findings <-
      Finding.make ~rule ~file:ctx.path ~line ~col msg :: ctx.findings
  end

(* ---- attribute handling ---- *)

let allow_rules_of_attrs attrs =
  List.concat_map
    (fun a ->
      if String.equal a.attr_name.Location.txt "lint.allow" then
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _;
              };
            ] ->
            String.split_on_char ' ' s
            |> List.concat_map (String.split_on_char ',')
            |> List.filter (fun r -> not (String.equal r ""))
        | _ -> []
      else [])
    attrs

(* ---- expression shape predicates ---- *)

let ident_of e =
  match e.pexp_desc with
  | Pexp_ident { txt; loc } -> Some (String.concat "." (Longident.flatten txt), loc)
  | _ -> None

let rec literal_like e =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_construct (_, None) -> true (* (), [], None, true, nullary ctors *)
  | Pexp_variant (_, None) -> true
  | Pexp_constraint (_, _) -> true (* type ascription = type is known *)
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident ("~-" | "~-." | "-" | "-."); _ }; _ },
        [ (_, arg) ]) ->
      literal_like arg
  | _ -> false

let structural e =
  match e.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _
  | Pexp_construct (_, Some _)
  | Pexp_variant (_, Some _) ->
      true
  | _ -> false

let sort_sinkish e =
  match e.pexp_desc with
  | Pexp_ident _ -> (
      match ident_of e with
      | Some (n, _) -> Lint_rules.sort_sink n
      | None -> false)
  | Pexp_apply (fn, _) -> (
      match ident_of fn with
      | Some (n, _) -> Lint_rules.sort_sink n
      | None -> false)
  | _ -> false

(* ---- per-node checks ---- *)

let check_ident ctx name loc =
  if Lint_rules.r1_forbidden name then
    report ctx ~rule:"R1" ~loc
      (Printf.sprintf
         "non-deterministic primitive %s; thread a Rng.t (lib/rng) or use \
          Obs.Trace.now" name);
  if Lint_rules.r2_forbidden name then
    report ctx ~rule:"R2" ~loc
      (Printf.sprintf
         "%s leaks hash-order; sort the result or mark the site with \
          [@lint.allow \"R2\"]" name);
  if Lint_rules.r3_comparator name then
    report ctx ~rule:"R3" ~loc
      (Printf.sprintf
         "polymorphic %s; use Int.compare/Float.compare/typed min-max" name);
  if Lint_rules.r4_forbidden name then
    report ctx ~rule:"R4" ~loc
      (Printf.sprintf
         "partial accessor %s in a planner path; use the _opt variant or a \
          match that names the missing node/variable" name);
  if Lint_rules.r5_forbidden name then
    report ctx ~rule:"R5" ~loc
      (Printf.sprintf
         "stdout printing (%s) in lib/; take a Format.formatter argument \
          instead" name)

let check_apply ctx fn args =
  (match ident_of fn with
  | Some (name, floc) -> (
      let name = Lint_rules.strip_stdlib name in
      (match (name, args) with
      (* [fold ... |> List.sort ...] and [List.sort ... @@ fold ...] are
         order-safe: the sink re-establishes a canonical order. *)
      | "|>", [ (_, lhs); (_, rhs) ] when sort_sinkish rhs ->
          sanction ctx "R2" lhs.pexp_loc
      | "@@", [ (_, lhs); (_, rhs) ] when sort_sinkish lhs ->
          sanction ctx "R2" rhs.pexp_loc
      | _ when Lint_rules.sort_sink name ->
          List.iter (fun (_, a) -> sanction ctx "R2" a.pexp_loc) args
      | _ -> ());
      (* compare/min/max applied to literals only is harmless. *)
      if
        Lint_rules.r3_comparator name && args <> []
        && List.for_all (fun (_, a) -> literal_like a) args
      then sanction ctx "R3" floc;
      (* =/<> on a syntactic structure is a guaranteed polymorphic
         structural comparison. *)
      match (name, args) with
      | ("=" | "<>"), [ (_, a); (_, b) ] ->
          if
            (structural a || structural b)
            && not (literal_like a || literal_like b)
          then
            report ctx ~rule:"R3" ~loc:floc
              "polymorphic =/<> on a structural value (tuple, record or \
               constructor); compare fields with explicit comparators"
      | _ -> ())
  | None -> ())

(* ---- the iterator ---- *)

let make_iterator ctx =
  let super = Ast_iterator.default_iterator in
  let expr self e =
    let allows = allow_rules_of_attrs e.pexp_attributes in
    ctx.allow_stack <- allows :: ctx.allow_stack;
    (match e.pexp_desc with
    | Pexp_apply (fn, args) -> check_apply ctx fn args
    | _ -> ());
    (match ident_of e with
    | Some (name, loc) -> check_ident ctx name loc
    | None -> ());
    super.expr self e;
    ctx.allow_stack <- List.tl ctx.allow_stack
  in
  let value_binding self vb =
    let allows = allow_rules_of_attrs vb.pvb_attributes in
    ctx.allow_stack <- allows :: ctx.allow_stack;
    super.value_binding self vb;
    ctx.allow_stack <- List.tl ctx.allow_stack
  in
  let structure_item self it =
    (match it.pstr_desc with
    | Pstr_attribute a ->
        ctx.file_allows <- allow_rules_of_attrs [ a ] @ ctx.file_allows
    | _ -> ());
    super.structure_item self it
  in
  { super with expr; value_binding; structure_item }

(* ---- entry points ---- *)

let parse_findings ctx exn =
  (* Parse/lex errors become findings so an unreadable file cannot pass. *)
  let loc =
    match exn with
    | Syntaxerr.Error e -> Some (Syntaxerr.location_of_error e)
    | Lexer.Error (_, loc) -> Some loc
    | _ -> None
  in
  let line, col = match loc with Some l -> line_col l | None -> (1, 0) in
  ctx.findings <-
    Finding.make ~rule:"PARSE" ~file:ctx.path ~line ~col
      (Printf.sprintf "cannot parse: %s" (Printexc.to_string exn))
    :: ctx.findings

let lint_source ~path source =
  let ctx =
    { path; allow_stack = []; file_allows = []; sanctioned = []; findings = [] }
  in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  let iter = make_iterator ctx in
  (try
     if Filename.check_suffix path ".mli" then
       iter.signature iter (Parse.interface lexbuf)
     else iter.structure iter (Parse.implementation lexbuf)
   with exn -> parse_findings ctx exn);
  List.sort Finding.compare ctx.findings

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* [path] is the repo-relative logical path (rule scoping); [file] is
   where to read the bytes.  They coincide for normal runs; tests use a
   fixture file with a synthetic logical path. *)
let lint_file ?file path =
  let file = match file with Some f -> f | None -> path in
  lint_source ~path (read_file file)

(* Locating and loading dune-produced .cmt/.cmti typedtrees.

   Rather than hard-coding dune's library-name mangling, the index scans
   the build tree once for every *.cmt/*.cmti, reads each header and
   keys it by [cmt_sourcefile] (which dune records repo-relative, e.g.
   "lib/serve/server.ml").  Looking up a source file is then a pure map
   probe; a source with no typedtree is a finding, not a silent skip
   (see the PARSE pseudo-rule in the engine). *)

type entry = {
  cmt_path : string;
  modname : string;
  annots : Cmt_format.binary_annots;
}

type t = (string, string) Hashtbl.t
(* source path -> cmt path.  Annotations are (re-)read on demand: the
   engine walks each file at most twice (summary pass + rule pass) and
   caching every typedtree would hold the whole repo's trees live. *)

let normalize path =
  let path =
    if String.length path > 2 && String.equal (String.sub path 0 2) "./" then
      String.sub path 2 (String.length path - 2)
    else path
  in
  String.map (fun c -> if c = '\\' then '/' else c) path

let rec scan_dir dir acc =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc entry -> scan_dir (Filename.concat dir entry) acc)
         acc
  else if
    Filename.check_suffix dir ".cmt" || Filename.check_suffix dir ".cmti"
  then dir :: acc
  else acc

let read cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | cmt ->
      Some
        {
          cmt_path;
          modname = cmt.Cmt_format.cmt_modname;
          annots = cmt.Cmt_format.cmt_annots;
        }
  | exception _ -> None

let sourcefile_of cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | cmt -> Option.map normalize cmt.Cmt_format.cmt_sourcefile
  | exception _ -> None

(* Build the source -> cmt map for every typedtree under [roots].
   Interfaces (.mli -> .cmti) and implementations (.ml -> .cmt) are both
   indexed; when several build contexts produced a typedtree for the
   same source the lexicographically first .cmt path wins, which is
   deterministic across runs. *)
let build ~roots : t =
  let files = List.fold_left (fun acc r -> scan_dir r acc) [] roots in
  let files = List.sort String.compare files in
  let index = Hashtbl.create 256 in
  List.iter
    (fun cmt_path ->
      (* .cmti is authoritative for .mli sources; .cmt for .ml.  A .cmti
         never claims an .ml source, so suffix pairing keeps them apart. *)
      match sourcefile_of cmt_path with
      | Some src
        when Filename.check_suffix src ".ml"
             && Filename.check_suffix cmt_path ".cmt"
             || Filename.check_suffix src ".mli"
                && Filename.check_suffix cmt_path ".cmti" ->
          if not (Hashtbl.mem index src) then Hashtbl.add index src cmt_path
      | _ -> ())
    files;
  index

let lookup (t : t) source = Hashtbl.find_opt t (normalize source)

(* Direct association for tests: fixture sources live under synthetic
   logical paths, so the test harness pairs them explicitly. *)
let of_pairs pairs : t =
  let index = Hashtbl.create 16 in
  List.iter (fun (src, cmt) -> Hashtbl.replace index (normalize src) cmt) pairs;
  index
